#!/usr/bin/env python3
"""Render a tshmem.blackbox.v1 post-mortem as an incident report.

Reads the flight-recorder dump the runtime (or svc::Service, or a bench
--blackbox-json flag) leaves behind, identifies the triggering incident,
and names:

  * the stuck / failing operation (site + kind + virtual time),
  * the PEs it was talking to (explicit peer field plus the trigger PE's
    recent communication partners from the ring),
  * the last successful synchronization edge the trigger PE completed
    (barrier / ctrl_recv / udn_recv / wait_end with errc == 0) — i.e. the
    last point the system is known to have been globally consistent,
  * what every other PE was doing when the recorder stopped.

Incident selection, in order of preference:
  1. the last kind == "error" event in the merged stream (runtime dumps
     record one at the throw site),
  2. the last wait_begin with no later wait_end on the same PE (a spin
     that never closed — the classic hang signature),
  3. the dump's own reason string (snapshot dumps have no incident; the
     report degrades to a board summary).

Usage:  tools/triage.py BLACKBOX.json
Exit status: 0 = report rendered, 1 = unparseable / wrong schema,
             2 = usage error.

Zero dependencies beyond the Python 3 standard library (CI-safe).
"""

from __future__ import annotations

import json
import sys

SCHEMA = "tshmem.blackbox.v1"

# Sync-edge kinds: completing one of these with errc == 0 proves the PE
# made it through a cross-PE ordering point.
SYNC_KINDS = ("barrier", "ctrl_recv", "udn_recv", "wait_end")

# Kinds whose `peer` field names a communication partner. For the serving
# kinds the "PE" is a replica slot and the peer is the slot (svc_failover)
# or shard (failover routing) the traffic moved to.
PEER_KINDS = ("put", "get", "put_nbi", "get_nbi", "ctrl_send", "ctrl_recv",
              "udn_send", "udn_recv", "atomic", "broadcast", "collect",
              "svc_shed", "svc_failover")

# Serving-layer lifecycle kinds (svc::Service rings): counted into the
# failover-activity block of the report.
SVC_KINDS = ("svc_crash", "svc_failover", "svc_failback",
             "svc_deadline_drop")


def fmt_event(e: dict) -> str:
    parts = [f"vt={e['vt']}ps", f"pe={e['pe']}", e["kind"],
             f"site='{e['site']}'"]
    if e.get("peer", -1) >= 0:
        parts.append(f"peer={e['peer']}")
    if e.get("bytes", 0):
        parts.append(f"bytes={e['bytes']}")
    if e.get("errc", 0):
        parts.append(f"errc={e['errc']}")
    return " ".join(parts)


def find_incident(merged: list[dict]) -> tuple[dict | None, str]:
    """Returns (incident event or None, how it was identified)."""
    for e in reversed(merged):
        if e["kind"] == "error":
            return e, "error event recorded at the throw site"
    # Serving dumps: a replica crash is the incident even though the
    # serve loop itself carries on (failover, not failure).
    for e in reversed(merged):
        if e["kind"] == "svc_crash":
            return e, "replica crash recorded by the serving layer"
    # Unclosed wait: last wait_begin per PE with no later wait_end.
    open_waits: dict[int, dict] = {}
    for e in merged:
        if e["kind"] == "wait_begin":
            open_waits[e["pe"]] = e
        elif e["kind"] == "wait_end":
            open_waits.pop(e["pe"], None)
    if open_waits:
        # The hang is the *earliest* unclosed wait: later ones may just be
        # peers queueing up behind the original stall.
        e = min(open_waits.values(), key=lambda w: (w["vt"], w["pe"]))
        return e, "wait_begin with no matching wait_end (unclosed spin)"
    return None, "no incident event in the ring (snapshot dump)"


def pe_events(merged: list[dict], pe: int) -> list[dict]:
    return [e for e in merged if e["pe"] == pe]


def last_sync_edge(events: list[dict], before: dict | None) -> dict | None:
    """Last completed sync edge on one PE's stream, before the incident."""
    best = None
    for e in events:
        if before is not None and (e["vt"], e["seq"]) >= (before["vt"],
                                                          before["seq"]):
            break
        if e["kind"] in SYNC_KINDS and e.get("errc", 0) == 0:
            best = e
    return best


def recent_peers(events: list[dict], limit: int = 32) -> list[int]:
    peers: list[int] = []
    for e in reversed(events[-limit:]):
        p = e.get("peer", -1)
        if p >= 0 and e["kind"] in PEER_KINDS and p not in peers:
            peers.append(p)
    return sorted(peers)


def main(argv: list[str]) -> int:
    if len(argv) != 2 or argv[1] in ("-h", "--help"):
        print(__doc__.strip().splitlines()[0], file=sys.stderr)
        print("usage: tools/triage.py BLACKBOX.json", file=sys.stderr)
        return 2
    try:
        with open(argv[1], encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        print(f"triage: cannot read {argv[1]}: {exc}", file=sys.stderr)
        return 1
    if not isinstance(doc, dict) or doc.get("schema") != SCHEMA:
        print(f"triage: {argv[1]} is not a {SCHEMA} document "
              f"(schema = {doc.get('schema')!r})", file=sys.stderr)
        return 1
    merged = doc.get("merged", [])
    required = ("source", "reason", "errc", "pes")
    missing = [k for k in required if k not in doc]
    if missing:
        print(f"triage: {argv[1]} missing field(s): {', '.join(missing)}",
              file=sys.stderr)
        return 1

    print("=" * 72)
    print(f"tshmem post-mortem triage — {argv[1]}")
    print("=" * 72)
    print(f"source:      {doc['source']}")
    print(f"reason:      {doc['reason'].splitlines()[0]}")
    errc = doc.get("errc", 0)
    if errc:
        print(f"error:       errc={errc} ({doc.get('errc_name', '?')})")
    plan = doc.get("fault_plan", "")
    if plan:
        print(f"fault plan:  {plan}")
    print(f"recorder:    {doc.get('npes', '?')} PE ring(s), capacity "
          f"{doc.get('capacity', '?')} events each, "
          f"{len(merged)} merged event(s)")
    print()

    incident, how = find_incident(merged)
    if incident is None:
        print(f"incident:    {how}")
    else:
        pe = incident["pe"]
        print(f"incident:    {how}")
        print(f"  stuck op:  '{incident['site']}' ({incident['kind']}) on "
              f"PE {pe} at vt={incident['vt']}ps")
        if incident.get("peer", -1) >= 0:
            print(f"  direct peer: PE {incident['peer']}")
        mine = pe_events(merged, pe)
        peers = recent_peers(mine)
        if peers:
            print(f"  recent communication partners of PE {pe}: "
                  f"{', '.join(f'PE {p}' for p in peers)}")
        edge = last_sync_edge(mine, incident)
        if edge is not None:
            print(f"  last successful sync edge on PE {pe}:")
            print(f"    {fmt_event(edge)}")
        else:
            print(f"  no completed sync edge on PE {pe} inside the ring "
                  f"window")
    print()

    # Serving-layer failover activity (replica crashes, failover routing,
    # failbacks, admission drops) — only for dumps whose rings carry the
    # svc_* lifecycle kinds.
    svc_counts = {k: 0 for k in SVC_KINDS}
    for e in merged:
        if e["kind"] in svc_counts:
            svc_counts[e["kind"]] += 1
    if any(svc_counts.values()):
        print("serving failover activity in the ring window:")
        crashed = sorted({e["pe"] for e in merged
                          if e["kind"] == "svc_crash"})
        for kind in SVC_KINDS:
            if svc_counts[kind]:
                print(f"  {kind:<18} {svc_counts[kind]}")
        if crashed:
            print(f"  crashed replica slot(s): "
                  f"{', '.join(str(p) for p in crashed)}")
        print()

    # What everyone else was doing when the recorder stopped.
    print("last event per PE:")
    active = [p for p in doc.get("pes", []) if p.get("events")]
    for p in active:
        e = p["events"][-1]
        marker = " <-- incident" if (incident is not None
                                     and p["pe"] == incident["pe"]) else ""
        print(f"  PE {p['pe']:>3}: {fmt_event(e)}{marker}")
    print()

    board = doc.get("board", "")
    if board:
        print("diagnostic board at dump time:")
        for line in board.splitlines():
            print(f"  {line}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
