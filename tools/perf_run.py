#!/usr/bin/env python3
"""Perf trajectory harness (docs/PROFILING.md).

Runs the figure benches (fig03..fig14) plus the extension benches
(ext_overlap, ext_faults), recording for each:

  - host wall-clock seconds (time.monotonic around the process), and
  - simulated virtual time + critical-path summary, harvested from the
    bench's own --profile-json output (schema tshmem.profile.v1).

The results land in BENCH_<n>.json at the repo root (schema
tshmem.bench.v1), where <n> is one past the highest existing BENCH index.
When a prior BENCH_*.json exists, the new run is diffed against the newest
one: a bench whose wall-clock grew by more than --max-wall-regression
(default 1.25x) fails the run, and virtual-time changes are reported as
informational drift (virtual time moves only when the model changes, so a
drift line is a review prompt, not an error).

Usage:
  tools/perf_run.py [--build-dir build] [--out PATH]
                    [--max-wall-regression 1.25] [--selftest]

Exit codes: 0 ok, 1 wall-clock regression or failed bench, 2 bad usage.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time

SCHEMA = "tshmem.bench.v1"
PROFILE_SCHEMA = "tshmem.profile.v1"
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Each bench runs on one device where it accepts --device; fig04 measures
# both devices unconditionally (Table III needs the pair), so its profile
# arrives in the multi-run wrapper form.
BENCHES = [
    ("fig03_memcpy_bandwidth", ["--device", "gx36"]),
    ("fig04_udn_latency", []),
    ("fig05_tmc_barriers", ["--device", "gx36"]),
    ("fig06_putget_dynamic", ["--device", "gx36"]),
    ("fig07_putget_static", ["--device", "gx36"]),
    ("fig08_tshmem_barrier", ["--device", "gx36"]),
    ("fig09_broadcast_push", ["--device", "gx36"]),
    ("fig10_broadcast_pull", ["--device", "gx36"]),
    ("fig11_fcollect", ["--device", "gx36"]),
    ("fig12_reduction", ["--device", "gx36"]),
    ("fig13_fft2d", ["--device", "gx36"]),
    ("fig14_cbir", ["--device", "gx36"]),
    ("ext_overlap", ["--device", "gx36"]),
    ("ext_faults", []),
    # Serving subsystem (docs/SERVING.md): a shortened ramp that still
    # exercises cold cache -> warm cache; the full run is the 1M default.
    ("ext_serve", ["--queries", "200000"]),
]

# ext_serve prints one machine-readable summary line; its QPS and tail
# latency land in the bench entry (docs/SERVING.md).
SERVE_LINE = re.compile(
    r"^serve: qps=(?P<qps>[0-9.]+) p50_ps=\d+ p99_ps=(?P<p99>\d+)",
    re.MULTILINE)


def profile_reports(doc):
    """Yields the tshmem.profile.v1 report objects inside `doc`, which is
    either a bare report or the multi-run {"runs": [...]} wrapper."""
    if not isinstance(doc, dict) or doc.get("schema") != PROFILE_SCHEMA:
        return []
    if "runs" in doc:
        return [r["profile"] for r in doc["runs"]]
    return [doc]


def summarize_profile(doc):
    """Extracts (total_vt_ps, dominant_phase, dominant_share, phase_ps)
    from a profile JSON document; null-tolerant (returns Nones)."""
    reports = profile_reports(doc)
    if not reports:
        return None, None, None, None
    total_vt = sum(r.get("total_vt_ps", 0) for r in reports)
    # Dominant phase: from the run with the most virtual time.
    main = max(reports, key=lambda r: r.get("total_vt_ps", 0))
    crit = main.get("critical_path", {})
    phase_ps = {p["phase"]: p["total_ps"] for p in main.get("phases", [])}
    return (total_vt, crit.get("dominant_phase"),
            crit.get("dominant_share"), phase_ps)


def run_bench(build_dir, name, args):
    binary = os.path.join(build_dir, "bench", name)
    entry = {
        "name": name,
        "args": args,
        "exit_code": None,
        "wall_s": None,
        "total_vt_ps": None,
        "dominant_phase": None,
        "dominant_share": None,
        "phase_ps": None,
        "qps": None,
        "p99_latency_ps": None,
    }
    if not os.path.exists(binary):
        entry["exit_code"] = -1
        print(f"  {name}: MISSING ({binary})", file=sys.stderr)
        return entry
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
        profile_path = tf.name
    try:
        cmd = [binary] + args + ["--profile-json", profile_path]
        t0 = time.monotonic()
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.DEVNULL, check=False,
                              text=True, errors="replace")
        entry["wall_s"] = round(time.monotonic() - t0, 4)
        entry["exit_code"] = proc.returncode
        m = SERVE_LINE.search(proc.stdout or "")
        if m:
            entry["qps"] = float(m.group("qps"))
            entry["p99_latency_ps"] = int(m.group("p99"))
        try:
            with open(profile_path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError):
            doc = None
        (entry["total_vt_ps"], entry["dominant_phase"],
         entry["dominant_share"], entry["phase_ps"]) = summarize_profile(doc)
    finally:
        os.unlink(profile_path)
    vt = entry["total_vt_ps"]
    serve = (f", qps {entry['qps']:.0f} p99 {entry['p99_latency_ps']} ps"
             if entry["qps"] is not None else "")
    print(f"  {name}: wall {entry['wall_s']:.2f}s, vt "
          f"{vt if vt is not None else '?'} ps, dominant "
          f"{entry['dominant_phase']}{serve}")
    return entry


def bench_index(out_path):
    """Next BENCH index: one past the highest existing, floor 7."""
    if out_path:
        m = re.search(r"BENCH_(\d+)\.json$", os.path.basename(out_path))
        if m:
            return int(m.group(1))
    best = 6
    for fn in os.listdir(ROOT):
        m = re.fullmatch(r"BENCH_(\d+)\.json", fn)
        if m:
            best = max(best, int(m.group(1)))
    return best + 1


def prior_bench(this_index):
    """Newest BENCH_*.json with index < this_index, or None."""
    best, path = -1, None
    for fn in os.listdir(ROOT):
        m = re.fullmatch(r"BENCH_(\d+)\.json", fn)
        if m and best < int(m.group(1)) < this_index:
            best, path = int(m.group(1)), os.path.join(ROOT, fn)
    return path


def validate(doc):
    """Schema-shape check for tshmem.bench.v1; raises AssertionError."""
    assert doc["schema"] == SCHEMA, doc.get("schema")
    assert isinstance(doc["bench_index"], int)
    assert isinstance(doc["benches"], list) and doc["benches"]
    for b in doc["benches"]:
        assert isinstance(b["name"], str) and b["name"]
        assert isinstance(b["exit_code"], int)
        assert b["wall_s"] is None or isinstance(b["wall_s"], (int, float))
        assert b["total_vt_ps"] is None or isinstance(b["total_vt_ps"], int)
        if b["dominant_share"] is not None:
            assert 0.0 <= b["dominant_share"] <= 1.0
        if b.get("qps") is not None:
            assert b["qps"] > 0.0
            assert isinstance(b["p99_latency_ps"], int)
    t = doc["totals"]
    assert isinstance(t["wall_s"], (int, float))
    assert isinstance(t["total_vt_ps"], int)


def diff_against(prior_path, doc, max_wall_regression):
    """Compares per-bench wall/vt against a prior BENCH file. Returns a
    list of hard failures (wall regressions)."""
    try:
        with open(prior_path) as f:
            prior = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"  prior {prior_path} unreadable ({e}); skipping diff")
        return []
    old = {b["name"]: b for b in prior.get("benches", [])}
    failures = []
    for b in doc["benches"]:
        o = old.get(b["name"])
        if o is None:
            print(f"  {b['name']}: new bench (no prior)")
            continue
        if b["wall_s"] and o.get("wall_s"):
            ratio = b["wall_s"] / o["wall_s"]
            if ratio > max_wall_regression:
                failures.append(
                    f"{b['name']}: wall {o['wall_s']:.2f}s -> "
                    f"{b['wall_s']:.2f}s ({ratio:.2f}x > "
                    f"{max_wall_regression:.2f}x)")
        if (b["total_vt_ps"] is not None and
                o.get("total_vt_ps") is not None and
                b["total_vt_ps"] != o["total_vt_ps"]):
            print(f"  {b['name']}: virtual time drift "
                  f"{o['total_vt_ps']} -> {b['total_vt_ps']} ps (model "
                  f"change? informational)")
    return failures


def selftest():
    """Validates the schema checker and regression math on synthetic data
    (no binaries needed; used by tests/test_profiler.cpp)."""
    doc = {
        "schema": SCHEMA,
        "bench_index": 7,
        "build_dir": "build",
        "benches": [{
            "name": "fig08_tshmem_barrier", "args": [], "exit_code": 0,
            "wall_s": 1.0, "total_vt_ps": 1000, "dominant_phase": "barrier",
            "dominant_share": 0.8, "phase_ps": {"barrier": 800},
        }],
        "totals": {"wall_s": 1.0, "total_vt_ps": 1000},
    }
    validate(doc)
    # The wrapper and bare forms of a profile doc both summarize.
    bare = {"schema": PROFILE_SCHEMA, "total_vt_ps": 5,
            "phases": [{"phase": "compute", "total_ps": 5}],
            "critical_path": {"dominant_phase": "compute",
                              "dominant_share": 1.0}}
    assert summarize_profile(bare)[0] == 5
    wrapped = {"schema": PROFILE_SCHEMA,
               "runs": [{"name": "gx36", "profile": bare},
                        {"name": "pro64", "profile": bare}]}
    assert summarize_profile(wrapped)[0] == 10
    assert summarize_profile(None) == (None, None, None, None)
    # The ext_serve summary line parses into (qps, p99).
    m = SERVE_LINE.search("banner\nserve: qps=51627.4 p50_ps=210000 "
                          "p99_ps=266239913 p999_ps=536870911 "
                          "completed=1000000 shed=0 hung=0 fault_events=0\n")
    assert m and float(m.group("qps")) == 51627.4
    assert int(m.group("p99")) == 266239913
    doc["benches"][0]["qps"] = 51627.4
    doc["benches"][0]["p99_latency_ps"] = 266239913
    validate(doc)
    # Regression math: 1.3x wall on a 1.25x threshold must fail.
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tf:
        json.dump(doc, tf)
        prior = tf.name
    try:
        worse = json.loads(json.dumps(doc))
        worse["benches"][0]["wall_s"] = 1.3
        assert diff_against(prior, worse, 1.25)
        assert not diff_against(prior, worse, 1.5)
    finally:
        os.unlink(prior)
    print("perf_run selftest OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=os.path.join(ROOT, "build"))
    ap.add_argument("--out", default=None,
                    help="output path (default BENCH_<n>.json at repo root)")
    ap.add_argument("--max-wall-regression", type=float, default=1.25,
                    help="fail when wall_s grows past this ratio vs prior")
    ap.add_argument("--selftest", action="store_true",
                    help="validate schema/diff logic on synthetic data")
    opts = ap.parse_args()
    if opts.selftest:
        return selftest()

    index = bench_index(opts.out)
    out_path = opts.out or os.path.join(ROOT, f"BENCH_{index}.json")
    print(f"perf_run: {len(BENCHES)} benches -> {out_path}")

    benches = [run_bench(opts.build_dir, name, args)
               for name, args in BENCHES]
    failed = [b["name"] for b in benches if b["exit_code"] != 0]
    doc = {
        "schema": SCHEMA,
        "bench_index": index,
        "build_dir": os.path.relpath(opts.build_dir, ROOT),
        "benches": benches,
        "totals": {
            "wall_s": round(sum(b["wall_s"] or 0 for b in benches), 4),
            "total_vt_ps": sum(b["total_vt_ps"] or 0 for b in benches),
        },
    }
    validate(doc)
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path} (total wall {doc['totals']['wall_s']:.1f}s, "
          f"total vt {doc['totals']['total_vt_ps']} ps)")

    prior = prior_bench(index)
    failures = []
    if prior:
        print(f"diff vs {os.path.basename(prior)} "
              f"(max wall regression {opts.max_wall_regression:.2f}x):")
        failures = diff_against(prior, doc, opts.max_wall_regression)
        for f_ in failures:
            print(f"  REGRESSION {f_}", file=sys.stderr)
    else:
        print("no prior BENCH_*.json; baseline run")

    if failed:
        print(f"failed benches: {', '.join(failed)}", file=sys.stderr)
    return 1 if (failures or failed) else 0


if __name__ == "__main__":
    sys.exit(main())
