#!/usr/bin/env python3
"""Perf trajectory harness (docs/PROFILING.md).

Runs the figure benches (fig03..fig14) plus the extension benches
(ext_overlap, ext_faults), recording for each:

  - host wall-clock seconds (time.monotonic around the process),
  - simulated virtual time + critical-path summary, harvested from the
    bench's own --profile-json output (schema tshmem.profile.v1), and
  - flight-recorder overhead: each bench is re-run with TSHMEM_FLIGHTREC=1
    and TSHMEM_TIMESERIES_WINDOW_PS set (docs/OBSERVABILITY.md), and the
    wall-clock ratio is gated at --max-recorder-overhead (default 1.05).
    Gated benches take the best of two runs on *both* sides (recorder-on,
    and a fresh recorder-off re-run vs the main run) — single-shot wall
    clocks on a loaded host swing more than the 5% budget being measured.
    Benches faster than the noise floor (0.3 s) are reported but not
    gated — process startup noise dominates there. Virtual time is
    bit-identical on/off by contract; this measures the *host* cost.

The results land in BENCH_<n>.json at the repo root (schema
tshmem.bench.v1), where <n> is one past the highest existing BENCH index.
When a prior BENCH_*.json exists, the new run is diffed against the newest
one: a bench whose wall-clock grew by more than --max-wall-regression
(default 1.25x) fails the run — unless both sides sit under the noise
floor, where a few hundredths of a second of scheduler jitter can exceed
any ratio, or unless up to two fresh re-runs come in under the gate
(a co-tenant load spike during the recorded run is not a code
regression) — and virtual-time changes are reported as informational drift
(virtual time moves only when the model changes, so a drift line is a
review prompt, not an error).

Usage:
  tools/perf_run.py [--build-dir build] [--out PATH]
                    [--max-wall-regression 1.25]
                    [--max-recorder-overhead 1.05] [--selftest]

Exit codes: 0 ok, 1 wall-clock regression or failed bench, 2 bad usage.
"""

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile
import time

SCHEMA = "tshmem.bench.v1"
PROFILE_SCHEMA = "tshmem.profile.v1"
ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Each bench runs on one device where it accepts --device; fig04 measures
# both devices unconditionally (Table III needs the pair), so its profile
# arrives in the multi-run wrapper form.
BENCHES = [
    ("fig03_memcpy_bandwidth", ["--device", "gx36"]),
    ("fig04_udn_latency", []),
    ("fig05_tmc_barriers", ["--device", "gx36"]),
    ("fig06_putget_dynamic", ["--device", "gx36"]),
    ("fig07_putget_static", ["--device", "gx36"]),
    ("fig08_tshmem_barrier", ["--device", "gx36"]),
    ("fig09_broadcast_push", ["--device", "gx36"]),
    ("fig10_broadcast_pull", ["--device", "gx36"]),
    ("fig11_fcollect", ["--device", "gx36"]),
    ("fig12_reduction", ["--device", "gx36"]),
    ("fig13_fft2d", ["--device", "gx36"]),
    ("fig14_cbir", ["--device", "gx36"]),
    ("ext_overlap", ["--device", "gx36"]),
    ("ext_faults", []),
    # Serving subsystem (docs/SERVING.md): a shortened ramp that still
    # exercises cold cache -> warm cache; the full run is the 1M default.
    ("ext_serve", ["--queries", "200000"]),
]

# ext_serve prints one machine-readable summary line; its QPS and tail
# latency land in the bench entry (docs/SERVING.md).
SERVE_LINE = re.compile(
    r"^serve: qps=(?P<qps>[0-9.]+) p50_ps=\d+ p99_ps=(?P<p99>\d+)",
    re.MULTILINE)

# Below this baseline wall time the recorder-overhead ratio is noise
# (process startup and page-cache effects dominate), so it is reported
# but not gated.
OVERHEAD_NOISE_FLOOR_S = 0.3


def profile_reports(doc):
    """Yields the tshmem.profile.v1 report objects inside `doc`, which is
    either a bare report or the multi-run {"runs": [...]} wrapper."""
    if not isinstance(doc, dict) or doc.get("schema") != PROFILE_SCHEMA:
        return []
    if "runs" in doc:
        return [r["profile"] for r in doc["runs"]]
    return [doc]


def summarize_profile(doc):
    """Extracts (total_vt_ps, dominant_phase, dominant_share, phase_ps)
    from a profile JSON document; null-tolerant (returns Nones)."""
    reports = profile_reports(doc)
    if not reports:
        return None, None, None, None
    total_vt = sum(r.get("total_vt_ps", 0) for r in reports)
    # Dominant phase: from the run with the most virtual time.
    main = max(reports, key=lambda r: r.get("total_vt_ps", 0))
    crit = main.get("critical_path", {})
    phase_ps = {p["phase"]: p["total_ps"] for p in main.get("phases", [])}
    return (total_vt, crit.get("dominant_phase"),
            crit.get("dominant_share"), phase_ps)


def run_bench(build_dir, name, args):
    binary = os.path.join(build_dir, "bench", name)
    entry = {
        "name": name,
        "args": args,
        "exit_code": None,
        "wall_s": None,
        "total_vt_ps": None,
        "dominant_phase": None,
        "dominant_share": None,
        "phase_ps": None,
        "qps": None,
        "p99_latency_ps": None,
        "recorder_wall_s": None,
        "recorder_overhead": None,
    }
    if not os.path.exists(binary):
        entry["exit_code"] = -1
        print(f"  {name}: MISSING ({binary})", file=sys.stderr)
        return entry
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
        profile_path = tf.name
    try:
        cmd = [binary] + args + ["--profile-json", profile_path]
        t0 = time.monotonic()
        proc = subprocess.run(cmd, stdout=subprocess.PIPE,
                              stderr=subprocess.DEVNULL, check=False,
                              text=True, errors="replace")
        entry["wall_s"] = round(time.monotonic() - t0, 4)
        entry["exit_code"] = proc.returncode
        m = SERVE_LINE.search(proc.stdout or "")
        if m:
            entry["qps"] = float(m.group("qps"))
            entry["p99_latency_ps"] = int(m.group("p99"))
        try:
            with open(profile_path) as f:
                doc = json.load(f)
        except (OSError, json.JSONDecodeError):
            doc = None
        (entry["total_vt_ps"], entry["dominant_phase"],
         entry["dominant_share"], entry["phase_ps"]) = summarize_profile(doc)
        # Recorder-overhead pass: identical command line, flight recorder
        # + windowed time series forced on via the environment. Only the
        # host wall clock may move; virtual time is contract-identical.
        # Gated benches (above the noise floor) take best-of-2 on both
        # sides so host load spikes don't masquerade as recorder cost.
        if entry["exit_code"] == 0:
            rec_env = dict(os.environ)
            rec_env["TSHMEM_FLIGHTREC"] = "1"
            rec_env["TSHMEM_TIMESERIES_WINDOW_PS"] = "1000000000"

            def timed_run(run_env):
                t0 = time.monotonic()
                r = subprocess.run(cmd, stdout=subprocess.DEVNULL,
                                   stderr=subprocess.DEVNULL, check=False,
                                   env=run_env)
                return (time.monotonic() - t0) if r.returncode == 0 else None

            gated = (entry["wall_s"] or 0) >= OVERHEAD_NOISE_FLOOR_S
            on_walls = [timed_run(rec_env)
                        for _ in range(2 if gated else 1)]
            on_walls = [w for w in on_walls if w is not None]
            base = entry["wall_s"]
            if gated:
                off_again = timed_run(None)
                if off_again is not None and base:
                    base = min(base, off_again)
            if on_walls and base:
                entry["recorder_wall_s"] = round(min(on_walls), 4)
                entry["recorder_overhead"] = round(
                    entry["recorder_wall_s"] / base, 4)
    finally:
        os.unlink(profile_path)
    vt = entry["total_vt_ps"]
    serve = (f", qps {entry['qps']:.0f} p99 {entry['p99_latency_ps']} ps"
             if entry["qps"] is not None else "")
    rec = (f", recorder {entry['recorder_overhead']:.2f}x"
           if entry["recorder_overhead"] is not None else "")
    print(f"  {name}: wall {entry['wall_s']:.2f}s, vt "
          f"{vt if vt is not None else '?'} ps, dominant "
          f"{entry['dominant_phase']}{serve}{rec}")
    return entry


def bench_index(out_path):
    """Next BENCH index: one past the highest existing, floor 7."""
    if out_path:
        m = re.search(r"BENCH_(\d+)\.json$", os.path.basename(out_path))
        if m:
            return int(m.group(1))
    best = 6
    for fn in os.listdir(ROOT):
        m = re.fullmatch(r"BENCH_(\d+)\.json", fn)
        if m:
            best = max(best, int(m.group(1)))
    return best + 1


def prior_bench(this_index):
    """Newest BENCH_*.json with index < this_index, or None."""
    best, path = -1, None
    for fn in os.listdir(ROOT):
        m = re.fullmatch(r"BENCH_(\d+)\.json", fn)
        if m and best < int(m.group(1)) < this_index:
            best, path = int(m.group(1)), os.path.join(ROOT, fn)
    return path


def validate(doc):
    """Schema-shape check for tshmem.bench.v1; raises AssertionError."""
    assert doc["schema"] == SCHEMA, doc.get("schema")
    assert isinstance(doc["bench_index"], int)
    assert isinstance(doc["benches"], list) and doc["benches"]
    for b in doc["benches"]:
        assert isinstance(b["name"], str) and b["name"]
        assert isinstance(b["exit_code"], int)
        assert b["wall_s"] is None or isinstance(b["wall_s"], (int, float))
        assert b["total_vt_ps"] is None or isinstance(b["total_vt_ps"], int)
        if b["dominant_share"] is not None:
            assert 0.0 <= b["dominant_share"] <= 1.0
        if b.get("qps") is not None:
            assert b["qps"] > 0.0
            assert isinstance(b["p99_latency_ps"], int)
        if b.get("recorder_overhead") is not None:
            assert b["recorder_overhead"] > 0.0
            assert isinstance(b["recorder_wall_s"], (int, float))
    t = doc["totals"]
    assert isinstance(t["wall_s"], (int, float))
    assert isinstance(t["total_vt_ps"], int)


def diff_against(prior_path, doc, max_wall_regression, rerun=None):
    """Compares per-bench wall/vt against a prior BENCH file. Returns a
    list of hard failures (wall regressions). `rerun`, when given, is a
    callable mapping a bench name to a fresh wall-clock measurement (or
    None): a tentative regression is confirmed with up to two re-runs
    before it fails the gate, so a transient host-load spike during the
    recorded run doesn't read as a code regression."""
    try:
        with open(prior_path) as f:
            prior = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"  prior {prior_path} unreadable ({e}); skipping diff")
        return []
    old = {b["name"]: b for b in prior.get("benches", [])}
    failures = []
    for b in doc["benches"]:
        o = old.get(b["name"])
        if o is None:
            print(f"  {b['name']}: new bench (no prior)")
            continue
        if b["wall_s"] and o.get("wall_s"):
            wall = b["wall_s"]
            ratio = wall / o["wall_s"]
            if ratio > max_wall_regression:
                if max(wall, o["wall_s"]) < OVERHEAD_NOISE_FLOOR_S:
                    print(f"  {b['name']}: wall {o['wall_s']:.2f}s -> "
                          f"{wall:.2f}s ({ratio:.2f}x) under the "
                          f"noise floor; not gated")
                elif rerun is not None:
                    for _ in range(2):
                        again = rerun(b["name"])
                        if again is None:
                            break
                        wall = min(wall, again)
                        ratio = wall / o["wall_s"]
                        if ratio <= max_wall_regression:
                            break
                    if ratio > max_wall_regression:
                        failures.append(
                            f"{b['name']}: wall {o['wall_s']:.2f}s -> "
                            f"{wall:.2f}s ({ratio:.2f}x > "
                            f"{max_wall_regression:.2f}x, re-run "
                            f"confirmed)")
                    else:
                        print(f"  {b['name']}: recorded wall "
                              f"{b['wall_s']:.2f}s was transient host "
                              f"load (re-run {wall:.2f}s); not gated")
                else:
                    failures.append(
                        f"{b['name']}: wall {o['wall_s']:.2f}s -> "
                        f"{wall:.2f}s ({ratio:.2f}x > "
                        f"{max_wall_regression:.2f}x)")
        if (b["total_vt_ps"] is not None and
                o.get("total_vt_ps") is not None and
                b["total_vt_ps"] != o["total_vt_ps"]):
            print(f"  {b['name']}: virtual time drift "
                  f"{o['total_vt_ps']} -> {b['total_vt_ps']} ps (model "
                  f"change? informational)")
    return failures


def overhead_failures(benches, max_recorder_overhead):
    """Hard failures from the recorder-on re-runs: a bench above the noise
    floor whose recorder-on wall clock exceeds the allowed ratio."""
    failures = []
    for b in benches:
        ratio = b.get("recorder_overhead")
        if ratio is None:
            continue
        if (b["wall_s"] or 0) < OVERHEAD_NOISE_FLOOR_S:
            continue
        if ratio > max_recorder_overhead:
            failures.append(
                f"{b['name']}: recorder overhead {ratio:.2f}x > "
                f"{max_recorder_overhead:.2f}x (wall {b['wall_s']:.2f}s -> "
                f"{b['recorder_wall_s']:.2f}s)")
    return failures


def selftest():
    """Validates the schema checker and regression math on synthetic data
    (no binaries needed; used by tests/test_profiler.cpp)."""
    doc = {
        "schema": SCHEMA,
        "bench_index": 7,
        "build_dir": "build",
        "benches": [{
            "name": "fig08_tshmem_barrier", "args": [], "exit_code": 0,
            "wall_s": 1.0, "total_vt_ps": 1000, "dominant_phase": "barrier",
            "dominant_share": 0.8, "phase_ps": {"barrier": 800},
        }],
        "totals": {"wall_s": 1.0, "total_vt_ps": 1000},
    }
    validate(doc)
    # The wrapper and bare forms of a profile doc both summarize.
    bare = {"schema": PROFILE_SCHEMA, "total_vt_ps": 5,
            "phases": [{"phase": "compute", "total_ps": 5}],
            "critical_path": {"dominant_phase": "compute",
                              "dominant_share": 1.0}}
    assert summarize_profile(bare)[0] == 5
    wrapped = {"schema": PROFILE_SCHEMA,
               "runs": [{"name": "gx36", "profile": bare},
                        {"name": "pro64", "profile": bare}]}
    assert summarize_profile(wrapped)[0] == 10
    assert summarize_profile(None) == (None, None, None, None)
    # The ext_serve summary line parses into (qps, p99).
    m = SERVE_LINE.search("banner\nserve: qps=51627.4 p50_ps=210000 "
                          "p99_ps=266239913 p999_ps=536870911 "
                          "completed=1000000 shed=0 hung=0 fault_events=0\n")
    assert m and float(m.group("qps")) == 51627.4
    assert int(m.group("p99")) == 266239913
    doc["benches"][0]["qps"] = 51627.4
    doc["benches"][0]["p99_latency_ps"] = 266239913
    doc["benches"][0]["recorder_wall_s"] = 1.02
    doc["benches"][0]["recorder_overhead"] = 1.02
    validate(doc)
    # Recorder-overhead gate: 1.08x fails a 1.05x gate above the noise
    # floor; the same ratio on a sub-floor bench is ignored.
    hot = {"name": "x", "wall_s": 1.0, "recorder_wall_s": 1.08,
           "recorder_overhead": 1.08}
    cold = {"name": "y", "wall_s": 0.05, "recorder_wall_s": 0.054,
            "recorder_overhead": 1.08}
    assert overhead_failures([hot], 1.05)
    assert not overhead_failures([hot], 1.10)
    assert not overhead_failures([cold], 1.05)
    assert not overhead_failures([{"name": "z", "wall_s": 1.0,
                                   "recorder_wall_s": None,
                                   "recorder_overhead": None}], 1.05)
    # Regression math: 1.3x wall on a 1.25x threshold must fail.
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tf:
        json.dump(doc, tf)
        prior = tf.name
    try:
        worse = json.loads(json.dumps(doc))
        worse["benches"][0]["wall_s"] = 1.3
        assert diff_against(prior, worse, 1.25)
        assert not diff_against(prior, worse, 1.5)
        # Re-run confirmation: a fresh fast run clears a transient spike; a
        # fresh slow run confirms the regression.
        assert not diff_against(prior, worse, 1.25, rerun=lambda name: 1.0)
        assert diff_against(prior, worse, 1.25, rerun=lambda name: 1.29)
        assert diff_against(prior, worse, 1.25, rerun=lambda name: None)
    finally:
        os.unlink(prior)
    # A big ratio on a sub-noise-floor bench (scheduler jitter on a
    # fraction-of-a-second run) must not gate.
    tiny = json.loads(json.dumps(doc))
    tiny["benches"][0]["wall_s"] = 0.15
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tf:
        json.dump(tiny, tf)
        prior = tf.name
    try:
        jitter = json.loads(json.dumps(tiny))
        jitter["benches"][0]["wall_s"] = 0.25
        assert not diff_against(prior, jitter, 1.25)
        real = json.loads(json.dumps(tiny))
        real["benches"][0]["wall_s"] = 5.0
        assert diff_against(prior, real, 1.25)
    finally:
        os.unlink(prior)
    print("perf_run selftest OK")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--build-dir", default=os.path.join(ROOT, "build"))
    ap.add_argument("--out", default=None,
                    help="output path (default BENCH_<n>.json at repo root)")
    ap.add_argument("--max-wall-regression", type=float, default=1.25,
                    help="fail when wall_s grows past this ratio vs prior")
    ap.add_argument("--max-recorder-overhead", type=float, default=1.05,
                    help="fail when the flight-recorder re-run exceeds this "
                         "wall-clock ratio vs the recorder-off run")
    ap.add_argument("--selftest", action="store_true",
                    help="validate schema/diff logic on synthetic data")
    opts = ap.parse_args()
    if opts.selftest:
        return selftest()

    index = bench_index(opts.out)
    out_path = opts.out or os.path.join(ROOT, f"BENCH_{index}.json")
    print(f"perf_run: {len(BENCHES)} benches -> {out_path}")

    benches = [run_bench(opts.build_dir, name, args)
               for name, args in BENCHES]
    failed = [b["name"] for b in benches if b["exit_code"] != 0]
    doc = {
        "schema": SCHEMA,
        "bench_index": index,
        "build_dir": os.path.relpath(opts.build_dir, ROOT),
        "benches": benches,
        "totals": {
            "wall_s": round(sum(b["wall_s"] or 0 for b in benches), 4),
            "total_vt_ps": sum(b["total_vt_ps"] or 0 for b in benches),
        },
    }
    validate(doc)
    with open(out_path, "w") as f:
        json.dump(doc, f, indent=2)
        f.write("\n")
    print(f"wrote {out_path} (total wall {doc['totals']['wall_s']:.1f}s, "
          f"total vt {doc['totals']['total_vt_ps']} ps)")

    failures = overhead_failures(benches, opts.max_recorder_overhead)
    for f_ in failures:
        print(f"  RECORDER-OVERHEAD {f_}", file=sys.stderr)

    args_by_name = dict(BENCHES)

    def rerun_bench(name):
        binary = os.path.join(opts.build_dir, "bench", name)
        if not os.path.exists(binary):
            return None
        t0 = time.monotonic()
        r = subprocess.run([binary] + args_by_name.get(name, []),
                           stdout=subprocess.DEVNULL,
                           stderr=subprocess.DEVNULL, check=False)
        return (time.monotonic() - t0) if r.returncode == 0 else None

    prior = prior_bench(index)
    if prior:
        print(f"diff vs {os.path.basename(prior)} "
              f"(max wall regression {opts.max_wall_regression:.2f}x):")
        regressions = diff_against(prior, doc, opts.max_wall_regression,
                                   rerun=rerun_bench)
        for f_ in regressions:
            print(f"  REGRESSION {f_}", file=sys.stderr)
        failures += regressions
    else:
        print("no prior BENCH_*.json; baseline run")

    if failed:
        print(f"failed benches: {', '.join(failed)}", file=sys.stderr)
    return 1 if (failures or failed) else 0


if __name__ == "__main__":
    sys.exit(main())
