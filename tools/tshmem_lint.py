#!/usr/bin/env python3
"""tshmem_lint: OpenSHMEM-specific lint rules for the TSHMEM tree.

A small static front-end that complements the dynamic tshmem-check race
detector (src/analysis/, docs/ANALYSIS.md). It enforces repo invariants
that generic tooling (clang-tidy, TSan) cannot express:

  R001 raw-condvar-wait     std::condition_variable wait outside
                            sim/guarded_wait.hpp. Every blocking wait must
                            go through guarded_wait() so the Watchdog can
                            bound it.
  R002 unbounded-spin       std::this_thread::yield / sleep_for spin loop
                            outside sim/guarded_wait.hpp. Same invariant:
                            guarded_spin() is the only sanctioned spin.
  R003 nbi-without-quiet    A function body issues shmem_*_nbi but never
                            reaches a quiet/barrier before returning, so
                            the source buffer may be reused while the DMA
                            engine still reads it. Functions whose own name
                            contains "nbi" are exempt (they deliberately
                            export the non-blocking contract to callers).
  R004 non-symmetric-arg    An address-of-a-local expression (&local) is
                            passed as a remote/symmetric argument of a
                            shmem_* call. Remote addresses must point into
                            the symmetric heap (shmalloc) or static arena.
  R005 raw-obs-mutation     Direct MetricsRegistry mutation (.counter() /
                            .gauge() / .histogram()) or direct ProfileSink
                            callback invocation (->on_span_begin() etc.)
                            outside src/obs/ and sim/profile_hook.hpp.
                            Instrumentation must go through the obs helpers
                            (obs::add_count, obs::counter_handle, ...,
                            tilesim::ProfSpan, tilesim::prof_wait_edge) so
                            every mutation site stays auditable and the
                            profiler's never-advances-a-clock contract has
                            a single enforcement surface.

  R006 raw-flight-mutation  Direct flight-recorder / time-series mutation
                            (.record_event() / .series_add() /
                            .series_sample() / .fold_epoch() / .on_event())
                            outside src/obs/ and sim/flight_hook.hpp.
                            Instrumentation must go through obs::fr_record,
                            obs::ts_add, obs::ts_sample, or
                            tilesim::flight_event so the recorder's
                            zero-virtual-cost contract (docs/OBSERVABILITY.md)
                            has a single enforcement surface.

Suppress a finding with a trailing comment on the offending line:
    do_thing();  // tshmem-lint: allow(R003)

Usage:  tools/tshmem_lint.py [PATHS...]       (default: src bench tests)
        tools/tshmem_lint.py --self-test      (rule regression check)
Exit status: 0 = clean, 1 = findings, 2 = usage error.

Only the Python standard library is used.
"""

from __future__ import annotations

import os
import re
import sys
from dataclasses import dataclass

CXX_EXTS = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h"}

# The one file allowed to contain raw blocking primitives: it implements
# the watchdog-bounded wrappers everything else must use.
GUARDED_WAIT_FILE = os.path.join("sim", "guarded_wait.hpp")

ALLOW_RE = re.compile(r"//\s*tshmem-lint:\s*allow\(([A-Z0-9, ]+)\)")


@dataclass
class Finding:
    rule: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_strings_and_comments(line: str) -> str:
    """Crude but adequate: blank out string/char literals and // comments so
    rule regexes do not fire on text inside them. Block comments spanning
    lines are handled by the caller."""
    out = []
    i, n = 0, len(line)
    while i < n:
        c = line[i]
        if c == "/" and i + 1 < n and line[i + 1] == "/":
            break
        if c in ('"', "'"):
            quote = c
            out.append(" ")
            i += 1
            while i < n:
                if line[i] == "\\":
                    i += 2
                    continue
                if line[i] == quote:
                    i += 1
                    break
                i += 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def allowed_rules(raw_line: str) -> set[str]:
    m = ALLOW_RE.search(raw_line)
    if not m:
        return set()
    return {r.strip() for r in m.group(1).split(",") if r.strip()}


class FileScanner:
    """Per-file scanner. Loads the file once, pre-strips comments, and runs
    every rule over the cleaned lines."""

    def __init__(self, path: str, display_path: str):
        self.path = path
        self.display = display_path
        with open(path, "r", encoding="utf-8", errors="replace") as f:
            self.raw_lines = f.read().splitlines()
        self.lines = self._clean(self.raw_lines)
        self.findings: list[Finding] = []

    @staticmethod
    def _clean(raw: list[str]) -> list[str]:
        cleaned = []
        in_block = False
        for line in raw:
            buf = []
            i, n = 0, len(line)
            while i < n:
                if in_block:
                    end = line.find("*/", i)
                    if end < 0:
                        i = n
                    else:
                        in_block = False
                        i = end + 2
                    continue
                if line.startswith("/*", i):
                    in_block = True
                    i += 2
                    continue
                if line.startswith("//", i):
                    break
                buf.append(line[i])
                i += 1
            cleaned.append(strip_strings_and_comments("".join(buf)))
        return cleaned

    def report(self, rule: str, lineno: int, message: str) -> None:
        if rule in allowed_rules(self.raw_lines[lineno - 1]):
            return
        self.findings.append(Finding(rule, self.display, lineno, message))

    # --- R001 / R002: blocking primitives outside guarded_wait.hpp ---------

    R001_RE = re.compile(r"\.\s*wait(_for|_until)?\s*\(")
    R001_DECL_RE = re.compile(r"condition_variable")
    R002_RE = re.compile(r"this_thread::(yield|sleep_for|sleep_until)\s*\(")

    def rule_guarded_wait(self) -> None:
        if self.display.replace(os.sep, "/").endswith(
            GUARDED_WAIT_FILE.replace(os.sep, "/")
        ):
            return
        uses_condvar = any(self.R001_DECL_RE.search(l) for l in self.lines)
        for i, line in enumerate(self.lines, 1):
            if uses_condvar and self.R001_RE.search(line) and (
                "cv" in line or "cond" in line or "condition_variable" in line
            ):
                self.report(
                    "R001", i,
                    "raw condition-variable wait; use tilesim::guarded_wait() "
                    "(sim/guarded_wait.hpp) so the Watchdog bounds it",
                )
            if self.R002_RE.search(line):
                self.report(
                    "R002", i,
                    "raw yield/sleep spin; use tilesim::guarded_spin() "
                    "(sim/guarded_wait.hpp) so the Watchdog bounds it",
                )

    # --- R003: put_nbi with no reachable quiet in the same function --------

    FUNC_RE = re.compile(
        r"^[^\s#][^=;]*?\b([A-Za-z_][A-Za-z0-9_]*)\s*\([^;]*\)\s*"
        r"(const\s*)?(noexcept\s*)?(->\s*[\w:<>&*\s]+)?\s*\{?\s*$"
    )
    NBI_RE = re.compile(r"\bshmem_[a-z0-9_]*_nbi\s*\(")
    QUIET_RE = re.compile(
        r"\b(shmem_quiet|shmem_fence|quiet|fence|shmem_barrier_all|"
        r"shmem_barrier|barrier_all)\s*\("
    )

    def rule_nbi_quiet(self) -> None:
        """Tracks brace depth to segment the file into top-level function
        bodies; within each body, an _nbi call not followed by a reachable
        quiet/fence/barrier before the body closes is flagged."""
        depth = 0
        func_name = None
        func_start_depth = 0
        pending_nbi: list[int] = []  # line numbers of unquieted _nbi calls

        for i, line in enumerate(self.lines, 1):
            if depth == 0 and func_name is None:
                m = self.FUNC_RE.match(line)
                if m and ("{" in line or (i < len(self.lines)
                                          and self.lines[i].lstrip()
                                          .startswith("{"))):
                    name = m.group(1)
                    if name not in ("if", "for", "while", "switch", "return",
                                    "catch", "sizeof", "static_assert"):
                        func_name = name
                        func_start_depth = depth
                        pending_nbi = []

            if func_name is not None:
                if self.NBI_RE.search(line):
                    pending_nbi.append(i)
                if self.QUIET_RE.search(line):
                    pending_nbi = []

            depth += line.count("{") - line.count("}")

            if func_name is not None and depth <= func_start_depth and (
                "}" in line
            ):
                if "nbi" not in func_name.lower():
                    for ln in pending_nbi:
                        self.report(
                            "R003", ln,
                            f"non-blocking put/get in '{func_name}' with no "
                            "reachable shmem_quiet()/fence/barrier before the "
                            "function returns; the buffer may be reused while "
                            "the transfer is in flight",
                        )
                func_name = None
                pending_nbi = []

    # --- R004: &local passed to a shmem_* remote argument ------------------

    SHMEM_CALL_RE = re.compile(r"\bshmem_[a-z0-9_]+\s*\(")
    ADDR_LOCAL_RE = re.compile(r"[(,]\s*&\s*([a-z_][A-Za-z0-9_]*)\b")
    # Remote-address-taking calls where the FIRST pointer argument must be
    # symmetric. (shmem_*_nbi, put/get, atomics, wait, locks.)
    SYMMETRIC_FIRST_ARG = re.compile(
        r"\bshmem_(put|get|p\b|g\b|putmem|getmem|[a-z0-9_]*_(put|get)"
        r"|swap|cswap|fadd|finc|add|inc|wait_until|set_lock|clear_lock"
        r"|test_lock)[a-z0-9_]*\s*\(\s*&\s*([a-z_][A-Za-z0-9_]*)\b"
    )

    def rule_non_symmetric(self) -> None:
        # Collect local (stack) variable declarations per brace scope, very
        # approximately: `type name` / `type name = ...;` lines inside
        # function bodies, excluding pointers initialized from shmalloc.
        local_decl = re.compile(
            r"^\s*(?:const\s+)?(?:unsigned\s+|signed\s+)?"
            r"(?:int|long|short|char|float|double|bool|std::uint\d+_t|"
            r"std::int\d+_t|std::size_t|size_t|uint\d+_t|int\d+_t)\s+"
            r"([a-z_][A-Za-z0-9_]*)\s*(=[^;]*)?;"
        )
        locals_seen: set[str] = set()
        for line in self.lines:
            m = local_decl.match(line)
            if m and "shmalloc" not in (m.group(2) or ""):
                locals_seen.add(m.group(1))
        for i, line in enumerate(self.lines, 1):
            m = self.SYMMETRIC_FIRST_ARG.search(line)
            if not m:
                continue
            var = m.group(m.lastindex)
            if var in locals_seen:
                self.report(
                    "R004", i,
                    f"'&{var}' (address of a local) passed as the symmetric "
                    "address of a shmem_* call; remote addresses must come "
                    "from shmalloc() or the static arena",
                )

    # --- R005: raw metrics/profiler mutation outside the obs helpers ------

    # Registry mutators. Matched only on lines that look like registry use
    # (`reg.counter(...)`, `registry_->gauge(...)`); the obs:: helper names
    # (counter_handle, add_count, ...) deliberately do not match.
    R005_METRICS_RE = re.compile(
        r"(\.|->)\s*(counter|gauge|histogram)\s*\("
    )
    # Direct ProfileSink callback invocation; only the profiler plumbing
    # (src/obs/, sim/profile_hook.hpp, sim/device.cpp's reset fan-out) may
    # call these — everything else uses ProfSpan / prof_wait_edge.
    R005_PROFILER_RE = re.compile(
        r"(\.|->)\s*on_(span_begin|span_end|wait_edge|clock_reset)\s*\("
    )
    R005_EXEMPT = ("src/obs/", "sim/profile_hook.hpp", "tests/")

    def rule_raw_obs_mutation(self) -> None:
        path = self.display.replace(os.sep, "/")
        if any(e in path for e in self.R005_EXEMPT):
            return
        for i, line in enumerate(self.lines, 1):
            if self.R005_METRICS_RE.search(line):
                self.report(
                    "R005", i,
                    "direct MetricsRegistry mutation; use the obs:: helpers "
                    "(obs::add_count / obs::set_level / obs::record_sample / "
                    "obs::counter_handle, src/obs/metrics.hpp) so "
                    "instrumentation sites stay auditable",
                )
            if self.R005_PROFILER_RE.search(line):
                self.report(
                    "R005", i,
                    "direct ProfileSink callback call; use tilesim::ProfSpan "
                    "/ tilesim::prof_wait_edge (sim/profile_hook.hpp) so the "
                    "profiler's no-clock-advance contract has one "
                    "enforcement surface",
                )

    # --- R006: raw flight-recorder / time-series mutation ------------------

    # Ring/window mutators and the FlightSink callback. The sanctioned
    # spellings (obs::fr_record, obs::ts_add, obs::ts_sample,
    # tilesim::flight_event) are free functions and do not match.
    R006_RE = re.compile(
        r"(\.|->)\s*(record_event|series_add_window|series_add"
        r"|series_sample|fold_epoch|set_flush_hook"
        r"|on_event)\s*\("
    )
    R006_EXEMPT = ("src/obs/", "sim/flight_hook.hpp", "tests/")

    def rule_raw_flight_mutation(self) -> None:
        path = self.display.replace(os.sep, "/")
        if any(e in path for e in self.R006_EXEMPT):
            return
        for i, line in enumerate(self.lines, 1):
            if self.R006_RE.search(line):
                self.report(
                    "R006", i,
                    "direct flight-recorder/time-series mutation; use "
                    "obs::fr_record / obs::ts_add / obs::ts_sample "
                    "(src/obs/flightrec.hpp, src/obs/timeseries.hpp) or "
                    "tilesim::flight_event (sim/flight_hook.hpp) so the "
                    "recorder's zero-virtual-cost contract has one "
                    "enforcement surface",
                )

    def scan(self) -> list[Finding]:
        self.rule_guarded_wait()
        self.rule_nbi_quiet()
        self.rule_non_symmetric()
        self.rule_raw_obs_mutation()
        self.rule_raw_flight_mutation()
        return self.findings


def iter_sources(paths: list[str]) -> list[tuple[str, str]]:
    out = []
    for root in paths:
        if os.path.isfile(root):
            if os.path.splitext(root)[1] in CXX_EXTS:
                out.append((root, root))
            continue
        for dirpath, _dirnames, filenames in os.walk(root):
            for fn in sorted(filenames):
                if os.path.splitext(fn)[1] in CXX_EXTS:
                    full = os.path.join(dirpath, fn)
                    out.append((full, os.path.relpath(full)))
    return sorted(out, key=lambda t: t[1])


def self_test() -> int:
    """Rule regression check: scans synthetic sources from a temp tree and
    asserts each rule fires where expected and honors its suppression."""
    import tempfile

    cases = {
        # (filename, source, expected rule hits as {rule: count})
        "src/tshmem/r006_case.cpp": (
            "void f(obs::FlightRecorder* fr, obs::TimeSeries* ts) {\n"
            "  fr->record_event(0, k, \"s\", 1);\n"           # R006
            "  ts->series_add(\"n\", 1, 1);\n"                # R006
            "  ts->series_sample(\"n\", 1, 2);\n"             # R006
            "  ts->fold_epoch(5);  // tshmem-lint: allow(R006)\n"  # allowed
            "  obs::fr_record(fr, 0, k, \"s\", 1);\n"         # sanctioned
            "  obs::ts_add(ts, \"n\", 1);\n"                  # sanctioned
            "}\n",
            {"R006": 3},
        ),
        # The obs implementation itself is exempt.
        "src/obs/r006_exempt.cpp": (
            "void g(obs::TimeSeries* ts) { ts->series_add(\"n\", 1, 1); }\n",
            {},
        ),
        "src/tshmem/r005_case.cpp": (
            "void h(obs::MetricsRegistry& reg) {\n"
            "  reg.counter(\"x\", 0);\n"                      # R005
            "}\n",
            {"R005": 1},
        ),
    }
    failures = []
    with tempfile.TemporaryDirectory() as tmp:
        for rel, (source, expected) in cases.items():
            full = os.path.join(tmp, rel)
            os.makedirs(os.path.dirname(full), exist_ok=True)
            with open(full, "w", encoding="utf-8") as f:
                f.write(source)
            findings = FileScanner(full, rel).scan()
            got: dict[str, int] = {}
            for finding in findings:
                got[finding.rule] = got.get(finding.rule, 0) + 1
            if got != expected:
                failures.append(f"{rel}: expected {expected}, got {got}")
    for msg in failures:
        print(f"tshmem_lint self-test FAIL: {msg}", file=sys.stderr)
    if not failures:
        print(f"tshmem_lint self-test: {len(cases)} case(s) OK",
              file=sys.stderr)
    return 1 if failures else 0


def main(argv: list[str]) -> int:
    if argv[1:] == ["--self-test"]:
        return self_test()
    paths = argv[1:] or ["src", "bench", "tests"]
    for p in paths:
        if not os.path.exists(p):
            print(f"tshmem_lint: no such path: {p}", file=sys.stderr)
            return 2
    findings: list[Finding] = []
    nfiles = 0
    for full, display in iter_sources(paths):
        nfiles += 1
        findings.extend(FileScanner(full, display).scan())
    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    for f in findings:
        print(f.render())
    print(
        f"tshmem_lint: {nfiles} file(s), {len(findings)} finding(s)",
        file=sys.stderr,
    )
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
