#!/usr/bin/env bash
# Tier-1 CI entry point: configure, build, run the unit/integration test
# suite, then exercise the telemetry path end to end — one metrics-enabled
# bench run whose --metrics-json / --trace-json outputs are validated for
# schema shape and non-emptiness — and finally rebuild the concurrency-
# sensitive suites (NBI/DMA engine, tmc + tshmem barriers) under
# ThreadSanitizer and run them race-clean.
#
# After the sanitizer stages, the fault-injection campaign (bench/ext_faults)
# runs twice per seed over a fixed seed set and the outputs are diffed:
# the deterministic-replay contract (docs/ROBUSTNESS.md) requires the
# injected-event log, recovery counters, and final virtual clocks to be
# bit-identical for the same (seed, plan).
#
# Usage: tools/ci.sh [build-dir]
#   TSHMEM_CI_TSAN=0 skips the ThreadSanitizer stage (e.g. toolchains
#   without libtsan).
#   TSHMEM_CI_ASAN=0 skips the Address/UB-Sanitizer stage (e.g. toolchains
#   without libasan/libubsan).
set -eu

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== configure"
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build"
cmake --build "$BUILD_DIR" -j

echo "== ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== telemetry smoke (fig08_tshmem_barrier --metrics-json/--trace-json)"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT
metrics_json="$tmp_dir/metrics.json"
trace_json="$tmp_dir/trace.json"
"$BUILD_DIR"/bench/fig08_tshmem_barrier \
  --metrics-json "$metrics_json" --trace-json "$trace_json" >/dev/null

python3 - "$metrics_json" "$trace_json" <<'EOF'
import json
import sys

metrics_path, trace_path = sys.argv[1], sys.argv[2]

with open(metrics_path) as f:
    m = json.load(f)
assert m["schema"] == "tshmem.metrics.v1", m.get("schema")
assert m["runs"], "metrics JSON has no runs"
for run in m["runs"]:
    assert run["npes"] > 0
    names = {c["name"] for c in run["counters"]}
    assert "shmem.barrier.calls" in names, sorted(names)
    assert any(h["count"] > 0 for h in run["histograms"]
               if h["name"] == "shmem.barrier.wait_ps"), \
        "no barrier wait samples"

with open(trace_path) as f:
    t = json.load(f)
events = t["traceEvents"]
assert any(e["ph"] == "X" for e in events), "no complete events in trace"
assert any(e["ph"] == "M" for e in events), "no metadata events in trace"
print(f"telemetry OK: {len(m['runs'])} run(s), {len(events)} trace events")
EOF

if [ "${TSHMEM_CI_TSAN:-1}" != "0" ]; then
  echo "== tsan (test_nbi, test_tmc_barrier, test_barrier_sync)"
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS=-fsanitize=thread \
    -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread >/dev/null
  cmake --build "$TSAN_DIR" -j \
    --target test_nbi test_tmc_barrier test_barrier_sync
  # TSan exits non-zero (66) on any reported race even when gtest passes.
  "$TSAN_DIR"/tests/test_nbi
  "$TSAN_DIR"/tests/test_tmc_barrier
  "$TSAN_DIR"/tests/test_barrier_sync
else
  echo "== tsan: skipped (TSHMEM_CI_TSAN=0)"
fi

if [ "${TSHMEM_CI_ASAN:-1}" != "0" ]; then
  echo "== asan+ubsan (test_fault_injection, test_failure_injection, test_nbi)"
  ASAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$ASAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
  cmake --build "$ASAN_DIR" -j \
    --target test_fault_injection test_failure_injection test_nbi
  # ASan/UBSan abort on the first finding, so a clean gtest pass means a
  # clean run (including the error/exception paths the fault tests force).
  "$ASAN_DIR"/tests/test_fault_injection
  "$ASAN_DIR"/tests/test_failure_injection
  "$ASAN_DIR"/tests/test_nbi
else
  echo "== asan+ubsan: skipped (TSHMEM_CI_ASAN=0)"
fi

echo "== fault campaign (deterministic replay across seeds)"
campaign_ok=1
for seed in 1 7 42; do
  "$BUILD_DIR"/bench/ext_faults --seed "$seed" > "$tmp_dir/camp_a_$seed.txt"
  "$BUILD_DIR"/bench/ext_faults --seed "$seed" > "$tmp_dir/camp_b_$seed.txt"
  if diff -u "$tmp_dir/camp_a_$seed.txt" "$tmp_dir/camp_b_$seed.txt"; then
    echo "   seed $seed: bit-identical"
  else
    echo "   seed $seed: REPLAY DIVERGED"
    campaign_ok=0
  fi
done
[ "$campaign_ok" = 1 ]

echo "== ci.sh: all green"
