#!/usr/bin/env bash
# Tier-1 CI entry point: configure, build, run the unit/integration test
# suite, then exercise the telemetry path end to end — one metrics-enabled
# bench run whose --metrics-json / --trace-json outputs are validated for
# schema shape and non-emptiness — and finally rebuild the concurrency-
# sensitive suites (NBI/DMA engine, tmc + tshmem barriers) under
# ThreadSanitizer and run them race-clean.
#
# After the sanitizer stages, the fault-injection campaign (bench/ext_faults)
# runs twice per seed over a fixed seed set and the outputs are diffed:
# the deterministic-replay contract (docs/ROBUSTNESS.md) requires the
# injected-event log, recovery counters, and final virtual clocks to be
# bit-identical for the same (seed, plan).
#
# The static-analysis stages (docs/ANALYSIS.md) follow: the tshmem_lint
# rule pack over the whole tree, clang-tidy over compile_commands.json when
# the binary is available, and the tshmem-check racecheck stage — every
# figure bench plus ext_overlap/ext_faults runs under TSHMEM_RACECHECK=fail
# and its stdout is diffed against the detector-off run (the detector must
# find nothing AND move nothing), then the ext_races gallery asserts the
# detector still flags each seeded bug. The same loop re-runs every bench
# under TSHMEM_PROFILE=1 and requires bit-identical stdout: the
# critical-path profiler observes virtual time but never advances it
# (docs/PROFILING.md). The same loop then runs every bench under
# TSHMEM_FLIGHTREC=1 + TSHMEM_TIMESERIES_WINDOW_PS and requires
# bit-identical stdout again: the flight recorder and windowed time series
# share the profiler's zero-virtual-cost contract (docs/OBSERVABILITY.md).
#
# The serving smoke stage (docs/SERVING.md): a shortened ramped ext_serve
# run must sustain non-zero QPS with nothing hung, and a shard-stall fault
# plan must shed load (structured rejects) rather than hang, replaying
# bit-identically.
#
# The triage smoke closes the run (docs/OBSERVABILITY.md): ext_faults
# --hang-demo strands PE 0 in shmem_wait_until under a short watchdog, the
# aborting runtime must leave a parseable tshmem.blackbox.v1 post-mortem,
# and tools/triage.py must render it naming the stuck operation.
#
# Usage: tools/ci.sh [build-dir]
#   TSHMEM_CI_TSAN=0 skips the ThreadSanitizer stage (e.g. toolchains
#   without libtsan).
#   TSHMEM_CI_ASAN=0 skips the Address/UB-Sanitizer stage (e.g. toolchains
#   without libasan/libubsan).
#   TSHMEM_CI_TIDY=0 skips clang-tidy (it is also skipped, loudly, when
#   no clang-tidy binary is on PATH).
#   TSHMEM_CI_RACECHECK=0 skips the tshmem-check racecheck stage.
#   TSHMEM_CI_PERF=0 skips the perf-trajectory stage (tools/perf_run.py:
#   wall + virtual-time per bench, schema tshmem.bench.v1, failing on a
#   >25% wall-clock regression against the newest committed BENCH_*.json).
set -eu

BUILD_DIR="${1:-build}"
ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

echo "== configure"
cmake -B "$BUILD_DIR" -S . >/dev/null

echo "== build"
cmake --build "$BUILD_DIR" -j

echo "== ctest"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

echo "== telemetry smoke (fig08_tshmem_barrier --metrics-json/--trace-json)"
tmp_dir="$(mktemp -d)"
trap 'rm -rf "$tmp_dir"' EXIT
metrics_json="$tmp_dir/metrics.json"
trace_json="$tmp_dir/trace.json"
"$BUILD_DIR"/bench/fig08_tshmem_barrier \
  --metrics-json "$metrics_json" --trace-json "$trace_json" >/dev/null

python3 - "$metrics_json" "$trace_json" <<'EOF'
import json
import sys

metrics_path, trace_path = sys.argv[1], sys.argv[2]

with open(metrics_path) as f:
    m = json.load(f)
assert m["schema"] == "tshmem.metrics.v1", m.get("schema")
assert m["runs"], "metrics JSON has no runs"
for run in m["runs"]:
    assert run["npes"] > 0
    names = {c["name"] for c in run["counters"]}
    assert "shmem.barrier.calls" in names, sorted(names)
    assert any(h["count"] > 0 for h in run["histograms"]
               if h["name"] == "shmem.barrier.wait_ps"), \
        "no barrier wait samples"

with open(trace_path) as f:
    t = json.load(f)
events = t["traceEvents"]
assert any(e["ph"] == "X" for e in events), "no complete events in trace"
assert any(e["ph"] == "M" for e in events), "no metadata events in trace"
print(f"telemetry OK: {len(m['runs'])} run(s), {len(events)} trace events")
EOF

if [ "${TSHMEM_CI_TSAN:-1}" != "0" ]; then
  echo "== tsan (test_nbi, test_tmc_barrier, test_barrier_sync)"
  TSAN_DIR="${BUILD_DIR}-tsan"
  cmake -B "$TSAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS=-fsanitize=thread \
    -DCMAKE_EXE_LINKER_FLAGS=-fsanitize=thread >/dev/null
  cmake --build "$TSAN_DIR" -j \
    --target test_nbi test_tmc_barrier test_barrier_sync
  # TSan exits non-zero (66) on any reported race even when gtest passes.
  "$TSAN_DIR"/tests/test_nbi
  "$TSAN_DIR"/tests/test_tmc_barrier
  "$TSAN_DIR"/tests/test_barrier_sync
else
  echo "== tsan: skipped (TSHMEM_CI_TSAN=0)"
fi

if [ "${TSHMEM_CI_ASAN:-1}" != "0" ]; then
  echo "== asan+ubsan (test_fault_injection, test_failure_injection, test_nbi)"
  ASAN_DIR="${BUILD_DIR}-asan"
  cmake -B "$ASAN_DIR" -S . \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo \
    -DCMAKE_CXX_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all" \
    -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=address,undefined" >/dev/null
  cmake --build "$ASAN_DIR" -j \
    --target test_fault_injection test_failure_injection test_nbi
  # ASan/UBSan abort on the first finding, so a clean gtest pass means a
  # clean run (including the error/exception paths the fault tests force).
  "$ASAN_DIR"/tests/test_fault_injection
  "$ASAN_DIR"/tests/test_failure_injection
  "$ASAN_DIR"/tests/test_nbi
else
  echo "== asan+ubsan: skipped (TSHMEM_CI_ASAN=0)"
fi

echo "== lint (tools/tshmem_lint.py)"
python3 tools/tshmem_lint.py src bench tests

if [ "${TSHMEM_CI_TIDY:-1}" != "0" ]; then
  if command -v clang-tidy >/dev/null 2>&1; then
    echo "== clang-tidy (.clang-tidy over compile_commands.json)"
    if command -v run-clang-tidy >/dev/null 2>&1; then
      run-clang-tidy -quiet -p "$BUILD_DIR" "src/.*\.cpp"
    else
      # Fall back to invoking clang-tidy directly on the main sources.
      find src -name '*.cpp' -print0 |
        xargs -0 clang-tidy -quiet -p "$BUILD_DIR"
    fi
  else
    echo "== clang-tidy: skipped (no clang-tidy on PATH)"
  fi
else
  echo "== clang-tidy: skipped (TSHMEM_CI_TIDY=0)"
fi

if [ "${TSHMEM_CI_RACECHECK:-1}" != "0" ]; then
  echo "== racecheck (tshmem-check over the figure benches)"
  racecheck_ok=1
  for b in fig03_memcpy_bandwidth fig04_udn_latency fig05_tmc_barriers \
           fig06_putget_dynamic fig07_putget_static fig08_tshmem_barrier \
           fig09_broadcast_push fig10_broadcast_pull fig11_fcollect \
           fig12_reduction fig13_fft2d fig14_cbir ext_overlap ext_faults \
           ext_serve; do
    # The serving bench gets a shortened load so the triple run (off /
    # detector-on / profiler-on) stays cheap; stdout must still be
    # bit-identical in all three.
    args=""
    [ "$b" = ext_serve ] && args="--queries 50000 --images 256 --pes 2"
    "$BUILD_DIR"/bench/"$b" $args > "$tmp_dir/rc_off_$b.txt"
    if ! TSHMEM_RACECHECK=fail "$BUILD_DIR"/bench/"$b" $args \
        > "$tmp_dir/rc_on_$b.txt"; then
      echo "   $b: RACE REPORTED"
      racecheck_ok=0
      continue
    fi
    if diff -u "$tmp_dir/rc_off_$b.txt" "$tmp_dir/rc_on_$b.txt" >/dev/null
    then
      echo "   $b: clean, bit-identical"
    else
      echo "   $b: OUTPUT MOVED UNDER DETECTOR"
      racecheck_ok=0
    fi
    # Profiler identity: the critical-path profiler observes virtual time
    # but must never advance it (docs/PROFILING.md), so profiler-on stdout
    # must be bit-identical too.
    if ! TSHMEM_PROFILE=1 "$BUILD_DIR"/bench/"$b" $args \
        > "$tmp_dir/prof_on_$b.txt"; then
      echo "   $b: FAILED UNDER PROFILER"
      racecheck_ok=0
      continue
    fi
    if diff -u "$tmp_dir/rc_off_$b.txt" "$tmp_dir/prof_on_$b.txt" >/dev/null
    then
      echo "   $b: profiler-on bit-identical"
    else
      echo "   $b: OUTPUT MOVED UNDER PROFILER"
      racecheck_ok=0
    fi
    # Flight-recorder identity: the recorder and the windowed time series
    # observe virtual time but must never advance it
    # (docs/OBSERVABILITY.md), so recorder-on stdout must be bit-identical.
    if ! TSHMEM_FLIGHTREC=1 TSHMEM_TIMESERIES_WINDOW_PS=1000000000 \
        "$BUILD_DIR"/bench/"$b" $args > "$tmp_dir/fr_on_$b.txt"; then
      echo "   $b: FAILED UNDER FLIGHT RECORDER"
      racecheck_ok=0
      continue
    fi
    if diff -u "$tmp_dir/rc_off_$b.txt" "$tmp_dir/fr_on_$b.txt" >/dev/null
    then
      echo "   $b: recorder-on bit-identical"
    else
      echo "   $b: OUTPUT MOVED UNDER FLIGHT RECORDER"
      racecheck_ok=0
    fi
  done
  [ "$racecheck_ok" = 1 ]
  echo "== racecheck gallery (ext_races: seeded bugs must be flagged)"
  "$BUILD_DIR"/bench/ext_races > "$tmp_dir/ext_races.txt" ||
    { cat "$tmp_dir/ext_races.txt"; exit 1; }
  tail -1 "$tmp_dir/ext_races.txt"
else
  echo "== racecheck: skipped (TSHMEM_CI_RACECHECK=0)"
fi

if [ "${TSHMEM_CI_PERF:-1}" != "0" ]; then
  echo "== perf trajectory (tools/perf_run.py -> tshmem.bench.v1)"
  python3 tools/perf_run.py --selftest
  perf_json="$tmp_dir/bench_ci.json"
  # The CI run writes to a temp path (committed BENCH_<n>.json files are
  # produced by explicit perf_run.py invocations); the diff against the
  # newest committed BENCH_*.json still runs and fails the stage on a
  # >25% wall-clock regression when a prior file exists.
  python3 tools/perf_run.py --build-dir "$BUILD_DIR" --out "$perf_json" \
    --max-wall-regression 1.25
  python3 - "$perf_json" <<'EOF'
import json, sys
sys.path.insert(0, "tools")
from perf_run import validate
with open(sys.argv[1]) as f:
    doc = json.load(f)
validate(doc)
ok = [b for b in doc["benches"] if b["exit_code"] == 0]
vt = [b for b in ok if b["total_vt_ps"]]
assert len(ok) == len(doc["benches"]), "bench failures"
assert vt, "no bench produced a virtual-time profile"
print(f"perf OK: {len(ok)} benches, {len(vt)} with profiles, "
      f"total wall {doc['totals']['wall_s']:.1f}s")
EOF
else
  echo "== perf trajectory: skipped (TSHMEM_CI_PERF=0)"
fi

echo "== fault campaign (deterministic replay across seeds)"
campaign_ok=1
for seed in 1 7 42; do
  "$BUILD_DIR"/bench/ext_faults --seed "$seed" > "$tmp_dir/camp_a_$seed.txt"
  "$BUILD_DIR"/bench/ext_faults --seed "$seed" > "$tmp_dir/camp_b_$seed.txt"
  if diff -u "$tmp_dir/camp_a_$seed.txt" "$tmp_dir/camp_b_$seed.txt"; then
    echo "   seed $seed: bit-identical"
  else
    echo "   seed $seed: REPLAY DIVERGED"
    campaign_ok=0
  fi
done
[ "$campaign_ok" = 1 ]

echo "== serving smoke (ext_serve: ramp, shed-not-hang, replay)"
serve_args="--queries 50000 --images 256 --pes 2"
# Healthy ramped run: the service must sustain a non-zero QPS with every
# offered query answered (ext_serve itself exits 1 on hung queries).
"$BUILD_DIR"/bench/ext_serve $serve_args > "$tmp_dir/serve_ok.txt"
# Degraded run: every batch on shard 1 loses 20 ms, far past the backlog
# watchdog. The shed-not-hang verdict (docs/SERVING.md): load is refused
# with a structured error, never stranded. Run twice and diff — one
# (seed, fault plan) pair must replay bit-identically.
serve_plan="seed=7,shard_stall=1.0:20000000000,shard_stall_shard=1"
"$BUILD_DIR"/bench/ext_serve $serve_args --fault-plan "$serve_plan" \
  > "$tmp_dir/serve_fault_a.txt"
"$BUILD_DIR"/bench/ext_serve $serve_args --fault-plan "$serve_plan" \
  > "$tmp_dir/serve_fault_b.txt"
if ! diff -u "$tmp_dir/serve_fault_a.txt" "$tmp_dir/serve_fault_b.txt"; then
  echo "   serving replay DIVERGED"
  exit 1
fi
python3 - "$tmp_dir/serve_ok.txt" "$tmp_dir/serve_fault_a.txt" <<'EOF'
import re
import sys

line = re.compile(r"^serve: qps=(?P<qps>[0-9.]+) p50_ps=\d+ p99_ps=\d+ "
                  r"p999_ps=\d+ completed=(?P<completed>\d+) "
                  r"shed=(?P<shed>\d+) hung=(?P<hung>\d+) "
                  r"fault_events=(?P<faults>\d+)", re.MULTILINE)

def parse(path):
    with open(path) as f:
        m = line.search(f.read())
    assert m, f"{path}: no serve summary line"
    return m

ok = parse(sys.argv[1])
assert float(ok.group("qps")) > 0.0, "healthy run: zero QPS"
assert ok.group("hung") == "0", "healthy run: hung queries"
assert ok.group("shed") == "0", "healthy run: shed without a fault plan"

fault = parse(sys.argv[2])
assert int(fault.group("faults")) > 0, "fault run: no injected stalls"
assert int(fault.group("shed")) > 0, "fault run: degraded shard did not shed"
assert fault.group("hung") == "0", "fault run: hung queries (shed-not-hang)"
print(f"serving OK: healthy qps={ok.group('qps')}, degraded "
      f"shed={fault.group('shed')} hung=0, replay bit-identical")
EOF

echo "== failover smoke (replicas=2: stall absorption, crash replay)"
# Same stall plan as above, but every shard slice now has a backup
# replica: the router fails over instead of shedding, so the shed count
# must drop at least 10x (in practice to zero), still with zero hung.
"$BUILD_DIR"/bench/ext_serve $serve_args --replicas 2 \
  --fault-plan "$serve_plan" > "$tmp_dir/serve_repl.txt"
# Permanent-crash campaign: shard 1's primary dies at a seeded dispatch
# and never returns. The backup absorbs its queue (failover > 0, nothing
# shed or hung) and each (seed, plan) pair must replay bit-identically
# across processes.
crash_ok=1
for seed in 1 7 42; do
  crash_plan="seed=$seed,shard_crash=1.0,shard_crash_shard=1"
  "$BUILD_DIR"/bench/ext_serve $serve_args --replicas 2 \
    --fault-plan "$crash_plan" > "$tmp_dir/crash_a_$seed.txt"
  "$BUILD_DIR"/bench/ext_serve $serve_args --replicas 2 \
    --fault-plan "$crash_plan" > "$tmp_dir/crash_b_$seed.txt"
  if diff -u "$tmp_dir/crash_a_$seed.txt" "$tmp_dir/crash_b_$seed.txt"; then
    echo "   crash seed $seed: bit-identical"
  else
    echo "   crash seed $seed: REPLAY DIVERGED"
    crash_ok=0
  fi
done
[ "$crash_ok" = 1 ]
python3 - "$tmp_dir/serve_fault_a.txt" "$tmp_dir/serve_repl.txt" \
  "$tmp_dir/crash_a_7.txt" <<'EOF'
import re
import sys

line = re.compile(r"^serve: qps=[0-9.]+ p50_ps=\d+ p99_ps=\d+ "
                  r"p999_ps=\d+ completed=\d+ "
                  r"shed=(?P<shed>\d+) hung=(?P<hung>\d+) "
                  r"fault_events=\d+ deadline_drop=\d+ "
                  r"failover=(?P<failover>\d+) requeued=(?P<requeued>\d+)",
                  re.MULTILINE)

def parse(path):
    with open(path) as f:
        m = line.search(f.read())
    assert m, f"{path}: no serve summary line"
    return m

unrepl, repl, crash = (parse(p) for p in sys.argv[1:4])
shed1, shed2 = int(unrepl.group("shed")), int(repl.group("shed"))
assert shed1 > 0, "unreplicated stall run shed nothing to compare against"
assert shed2 * 10 <= shed1, \
    f"replicas=2 shed {shed2}, not >=10x below replicas=1 shed {shed1}"
assert repl.group("hung") == "0", "replicated run: hung queries"
assert int(repl.group("failover")) > 0, "replicated run: no failovers"
assert crash.group("hung") == "0", "crash run: hung queries"
assert int(crash.group("shed")) == 0, "crash run: backup did not absorb"
assert int(crash.group("failover")) > 0, "crash run: no failover routing"
assert int(crash.group("requeued")) > 0, "crash run: no crash requeues"
print(f"failover OK: shed {shed1} -> {shed2} with replicas=2, crash "
      f"failover={crash.group('failover')} "
      f"requeued={crash.group('requeued')} hung=0")
EOF

echo "== triage smoke (hang-demo -> blackbox -> tools/triage.py)"
bb_json="$tmp_dir/blackbox.json"
# A short watchdog keeps the stage fast; the demo exits 0 when (and only
# when) the watchdog tripped and the runtime aborted with kWatchdogTimeout.
"$BUILD_DIR"/bench/ext_faults --hang-demo --watchdog-ms 250 \
  --blackbox-json "$bb_json" > "$tmp_dir/hang_demo.txt"
grep -q "runtime aborted as expected" "$tmp_dir/hang_demo.txt"
python3 - "$bb_json" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    doc = json.load(f)
assert doc["schema"] == "tshmem.blackbox.v1", doc.get("schema")
assert doc["source"] == "runtime", doc["source"]
assert doc["errc_name"] == "watchdog_timeout", doc["errc_name"]
assert doc["merged"], "blackbox has no merged events"
errs = [e for e in doc["merged"] if e["kind"] == "error"]
assert errs and errs[-1]["site"] == "shmem_wait_until", errs
print(f"blackbox OK: {len(doc['merged'])} merged events, incident on "
      f"PE {errs[-1]['pe']}")
EOF
python3 tools/triage.py "$bb_json" > "$tmp_dir/triage.txt"
grep -q "stuck op:  'shmem_wait_until'" "$tmp_dir/triage.txt"
tail -n +3 "$tmp_dir/triage.txt" | head -12

echo "== ci.sh: all green"
