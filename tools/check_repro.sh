#!/usr/bin/env bash
# Runs every figure/table/ablation/extension bench and audits the
# "reproduction check" blocks: any measured/paper ratio outside
# [MIN_RATIO, MAX_RATIO] is reported and fails the script.
#
# Usage: tools/check_repro.sh [build-dir] [min-ratio] [max-ratio]
set -u

BUILD_DIR="${1:-build}"
MIN_RATIO="${2:-0.5}"
MAX_RATIO="${3:-2.0}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found (build the project first)" >&2
  exit 2
fi

tmp_out="$(mktemp)"
trap 'rm -f "$tmp_out"' EXIT

status=0
total_checks=0
bad_checks=0

for bench in "$BUILD_DIR"/bench/*; do
  [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  case "$name" in
    micro_internals) continue ;;  # host-time microbenchmarks: no checks
  esac
  echo "== $name"
  if ! "$bench" > "$tmp_out" 2>&1; then
    echo "   BENCH FAILED (non-zero exit)"
    status=1
    continue
  fi
  # Parse check rows: inside a "reproduction check" block, the last column
  # is the measured/paper ratio (or "-" when no paper value exists).
  in_block=0
  while IFS= read -r line; do
    case "$line" in
      *"reproduction check"*) in_block=1; continue ;;
      "") in_block=0; continue ;;
    esac
    [ "$in_block" = 1 ] || continue
    case "$line" in
      quantity*|---*) continue ;;
    esac
    ratio="$(printf '%s\n' "$line" | awk '{print $NF}')"
    case "$ratio" in
      -|"") continue ;;
    esac
    total_checks=$((total_checks + 1))
    ok="$(awk -v r="$ratio" -v lo="$MIN_RATIO" -v hi="$MAX_RATIO" \
          'BEGIN { print (r >= lo && r <= hi) ? 1 : 0 }')"
    if [ "$ok" != 1 ]; then
      echo "   OUT OF BAND ($ratio): $line"
      bad_checks=$((bad_checks + 1))
      status=1
    fi
  done < "$tmp_out"
done

echo
echo "reproduction audit: $total_checks checks, $bad_checks outside" \
     "[$MIN_RATIO, $MAX_RATIO]"
exit $status
