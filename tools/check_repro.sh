#!/usr/bin/env bash
# Runs every figure/table/ablation/extension bench and audits the
# "reproduction check" blocks: any measured/paper ratio outside
# [MIN_RATIO, MAX_RATIO] is reported and fails the script.
#
# Also writes a machine-readable summary to $SUMMARY_JSON (default
# repro_summary.json in the current directory): per-bench pass/fail, check
# counts, the audited ratios, host wall-clock seconds, and the simulated
# virtual completion time (total_vt_ps, harvested via --profile-json; null
# for benches without profiler support), so CI and cross-PR tooling can
# diff reproduction health and perf trajectory without re-parsing stdout.
# The summary header carries provenance: the git commit the audit ran at
# (git_sha, plus git_dirty when the tree had local edits) and a SHA-256
# over the device-model sources (device_config_sha256, src/sim/config.*) —
# two summaries are comparable only when both hashes match, since virtual
# time moves whenever the device model does.
#
# Usage: tools/check_repro.sh [build-dir] [min-ratio] [max-ratio]
#        SUMMARY_JSON=path tools/check_repro.sh ...
set -u

BUILD_DIR="${1:-build}"
MIN_RATIO="${2:-0.5}"
MAX_RATIO="${3:-2.0}"
SUMMARY_JSON="${SUMMARY_JSON:-repro_summary.json}"

if [ ! -d "$BUILD_DIR/bench" ]; then
  echo "error: $BUILD_DIR/bench not found (build the project first)" >&2
  exit 2
fi

tmp_out="$(mktemp)"
tmp_prof="$(mktemp)"
trap 'rm -f "$tmp_out" "$tmp_prof"' EXIT

ROOT="$(cd "$(dirname "$0")/.." && pwd)"

# Provenance: the commit this audit ran at, and a hash of the device-model
# sources (the timing truth every virtual-time number derives from).
git_sha="$(git -C "$ROOT" rev-parse HEAD 2>/dev/null || echo unknown)"
git_dirty=false
if [ "$git_sha" != unknown ] &&
   ! git -C "$ROOT" diff --quiet HEAD -- 2>/dev/null; then
  git_dirty=true
fi
device_config_sha256="$(cat "$ROOT"/src/sim/config.hpp \
                            "$ROOT"/src/sim/config.cpp 2>/dev/null \
                        | sha256sum | awk '{print $1}')"

status=0
total_checks=0
bad_checks=0
bench_entries=""

# json_str <text> — minimal JSON string escaping (quotes and backslashes;
# bench names and check labels contain nothing wilder).
json_str() {
  printf '%s' "$1" | sed -e 's/\\/\\\\/g' -e 's/"/\\"/g'
}

for bench in "$BUILD_DIR"/bench/*; do
  [ -f "$bench" ] && [ -x "$bench" ] || continue
  name="$(basename "$bench")"
  case "$name" in
    micro_internals) continue ;;  # host-time microbenchmarks: no checks
  esac
  echo "== $name"
  bench_status="pass"
  bench_checks=0
  bench_bad=0
  check_entries=""
  # Wall-clock around the run; virtual completion time via the bench's
  # --profile-json (benches without profiler support ignore the flag and
  # leave the file empty -> total_vt_ps stays null).
  : > "$tmp_prof"
  t0="$(date +%s%N)"
  if ! "$bench" --profile-json "$tmp_prof" > "$tmp_out" 2>&1; then
    t1="$(date +%s%N)"
    wall_s="$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", (b-a)/1e9}')"
    total_vt_ps="null"
    echo "   BENCH FAILED (non-zero exit)"
    bench_status="error"
    status=1
  else
    t1="$(date +%s%N)"
    wall_s="$(awk -v a="$t0" -v b="$t1" 'BEGIN{printf "%.3f", (b-a)/1e9}')"
    total_vt_ps="$(python3 - "$tmp_prof" <<'EOF'
import json, sys
try:
    with open(sys.argv[1]) as f:
        doc = json.load(f)
    if doc.get("schema") != "tshmem.profile.v1":
        raise ValueError
    runs = ([r["profile"] for r in doc["runs"]]
            if "runs" in doc else [doc])
    print(sum(r.get("total_vt_ps", 0) for r in runs))
except Exception:
    print("null")
EOF
)"
    # Parse check rows: inside a "reproduction check" block, the last column
    # is the measured/paper ratio (or "-" when no paper value exists).
    in_block=0
    while IFS= read -r line; do
      case "$line" in
        *"reproduction check"*) in_block=1; continue ;;
        "") in_block=0; continue ;;
      esac
      [ "$in_block" = 1 ] || continue
      case "$line" in
        quantity*|---*) continue ;;
        wrote\ *) continue ;;  # telemetry "wrote ... JSON: path" lines
      esac
      ratio="$(printf '%s\n' "$line" | awk '{print $NF}')"
      case "$ratio" in
        -|"") continue ;;
      esac
      total_checks=$((total_checks + 1))
      bench_checks=$((bench_checks + 1))
      ok="$(awk -v r="$ratio" -v lo="$MIN_RATIO" -v hi="$MAX_RATIO" \
            'BEGIN { print (r >= lo && r <= hi) ? 1 : 0 }')"
      label="$(printf '%s\n' "$line" | awk '{NF -= 4; print}' \
               | sed 's/[[:space:]]*$//')"
      if [ "$ok" != 1 ]; then
        echo "   OUT OF BAND ($ratio): $line"
        bad_checks=$((bad_checks + 1))
        bench_bad=$((bench_bad + 1))
        bench_status="fail"
        status=1
      fi
      entry="{\"quantity\": \"$(json_str "$label")\", \"ratio\": $ratio,"
      entry="$entry \"in_band\": $([ "$ok" = 1 ] && echo true || echo false)}"
      check_entries="$check_entries${check_entries:+, }$entry"
    done < "$tmp_out"
  fi
  bench_entry="{\"bench\": \"$(json_str "$name")\","
  bench_entry="$bench_entry \"status\": \"$bench_status\","
  bench_entry="$bench_entry \"checks\": $bench_checks,"
  bench_entry="$bench_entry \"out_of_band\": $bench_bad,"
  bench_entry="$bench_entry \"wall_s\": $wall_s,"
  bench_entry="$bench_entry \"total_vt_ps\": $total_vt_ps,"
  bench_entry="$bench_entry \"results\": [$check_entries]}"
  bench_entries="$bench_entries${bench_entries:+,
    }$bench_entry"
done

{
  echo "{"
  echo "  \"schema\": \"tshmem.repro_summary.v1\","
  echo "  \"git_sha\": \"$git_sha\","
  echo "  \"git_dirty\": $git_dirty,"
  echo "  \"device_config_sha256\": \"$device_config_sha256\","
  echo "  \"min_ratio\": $MIN_RATIO,"
  echo "  \"max_ratio\": $MAX_RATIO,"
  echo "  \"total_checks\": $total_checks,"
  echo "  \"out_of_band\": $bad_checks,"
  echo "  \"passed\": $([ "$status" = 0 ] && echo true || echo false),"
  echo "  \"benches\": ["
  printf '    %s\n' "$bench_entries"
  echo "  ]"
  echo "}"
} > "$SUMMARY_JSON"

echo
echo "reproduction audit: $total_checks checks, $bad_checks outside" \
     "[$MIN_RATIO, $MAX_RATIO]"
echo "summary written to $SUMMARY_JSON"
exit $status
