#include "compare/msg_passing.hpp"

#include <cstring>
#include <stdexcept>

#include "sim/mem_model.hpp"

namespace compare {

namespace {
constexpr int kDataQueue = 0;
constexpr int kAckQueue = 1;
constexpr int kBarrierQueue = 2;
// Library software overhead per MPI-style call (argument checking, request
// bookkeeping, progress-engine pass) — typical shared-memory MPI adds a few
// hundred nanoseconds per operation on top of the raw transport.
constexpr tilesim::ps_t kCallOverheadPs = 300'000;
}  // namespace

MsgPassing::MsgPassing(Device& device, tmc::CommonMemory& cmem, int ranks,
                       std::size_t max_message_bytes)
    : device_(&device),
      cmem_(&cmem),
      udn_(device),
      ranks_(ranks),
      max_bytes_(max_message_bytes) {
  if (ranks < 1 || ranks > device.tile_count()) {
    throw std::invalid_argument("MsgPassing ranks out of range");
  }
  if (max_message_bytes == 0) {
    throw std::invalid_argument("MsgPassing needs a positive message limit");
  }
  staging_ = static_cast<std::byte*>(
      cmem.map("msg_passing_staging",
               static_cast<std::size_t>(ranks) * ranks * max_bytes_,
               tilesim::Homing::kHashForHome, 0));
  barrier_epoch_.assign(static_cast<std::size_t>(ranks), 0);
  barrier_stash_.resize(static_cast<std::size_t>(ranks));
  data_stash_.resize(static_cast<std::size_t>(ranks));
}

MsgPassing::~MsgPassing() { cmem_->unmap("msg_passing_staging"); }

std::byte* MsgPassing::slot(int src, int dst) const {
  return staging_ +
         (static_cast<std::size_t>(src) * static_cast<std::size_t>(ranks_) +
          static_cast<std::size_t>(dst)) *
             max_bytes_;
}

std::uint64_t MsgPassing::pack_header(int tag, std::size_t bytes) noexcept {
  return (static_cast<std::uint64_t>(tag) << 40) |
         static_cast<std::uint64_t>(bytes);
}

void MsgPassing::send(Tile& self, int dst, int tag,
                      std::span<const std::byte> data) {
  if (dst < 0 || dst >= ranks_) {
    throw std::invalid_argument("MsgPassing send to bad rank");
  }
  if (data.size() > max_bytes_) {
    throw std::length_error("MsgPassing message exceeds the staging slot");
  }
  self.clock().advance(kCallOverheadPs);
  // Copy-in to the staging slot (the first of the two copies a two-sided
  // transfer pays that a one-sided put does not).
  tilesim::CopyRequest req;
  req.bytes = data.size();
  req.src = tilesim::MemSpace::kPrivate;
  req.dst = tilesim::MemSpace::kShared;
  self.charge_copy(req);
  std::memcpy(slot(self.id(), dst), data.data(), data.size());
  udn_.send1(self, dst, kDataQueue, pack_header(tag, data.size()));
  // Rendezvous: wait for the receiver's completion acknowledgment before
  // the staging slot may be reused.
  (void)udn_.recv(self, kAckQueue);
}

std::size_t MsgPassing::recv(Tile& self, int src, int tag,
                             std::span<std::byte> out) {
  if (src < 0 || src >= ranks_) {
    throw std::invalid_argument("MsgPassing recv from bad rank");
  }
  self.clock().advance(kCallOverheadPs);
  // Match (src, tag), stashing notifications from other senders that raced
  // ahead (e.g. reduction-tree children arriving out of program order).
  auto& stash = data_stash_[static_cast<std::size_t>(self.id())];
  for (;;) {
    tmc::UdnPacket pkt;
    bool have = false;
    for (std::size_t i = 0; i < stash.size(); ++i) {
      const int stag = static_cast<int>(stash[i].payload[0] >> 40);
      if (stash[i].src_tile == src && stag == tag) {
        pkt = stash[i];
        stash.erase(stash.begin() + static_cast<std::ptrdiff_t>(i));
        have = true;
        break;
      }
    }
    if (!have) {
      // Clock-neutral receive: only the matching notification gates us.
      pkt = udn_.recv_raw(self, kDataQueue);
      const int msg_tag = static_cast<int>(pkt.payload[0] >> 40);
      if (pkt.src_tile != src || msg_tag != tag) {
        stash.push_back(pkt);
        continue;
      }
    }
    self.clock().advance_to(pkt.arrival_ps);
    const auto bytes =
        static_cast<std::size_t>(pkt.payload[0] & 0xffffffffffull);
    if (bytes > out.size()) {
      // Truncation: the message is consumed and dropped (MPI_ERR_TRUNCATE
      // semantics); the sender must still be released from its rendezvous.
      udn_.send1(self, src, kAckQueue, 0);
      throw std::length_error("MsgPassing recv buffer too small");
    }
    tilesim::CopyRequest req;
    req.bytes = bytes;
    req.src = tilesim::MemSpace::kShared;
    req.dst = tilesim::MemSpace::kPrivate;
    self.charge_copy(req);
    std::memcpy(out.data(), slot(src, self.id()), bytes);
    udn_.send1(self, src, kAckQueue, 1);
    return bytes;
  }
}

void MsgPassing::bcast(Tile& self, int root, std::span<std::byte> data) {
  const int n = ranks_;
  const int rel = (self.id() - root + n) % n;
  if (rel != 0) {
    // Parent in the binomial tree: a node at relative rank r is reached in
    // the round whose span is r's highest set bit, sent by r - bit_floor(r).
    int floor = 1;
    while (floor * 2 <= rel) floor *= 2;
    const int parent = (root + (rel - floor)) % n;
    (void)recv(self, parent, /*tag=*/0x42, data);
  }
  for (int span = 1; span < n; span <<= 1) {
    if (rel < span && rel + span < n) {
      send(self, (root + rel + span) % n, /*tag=*/0x42, data);
    }
  }
}

void MsgPassing::reduce_sum(Tile& self, int root, std::span<long> values) {
  const int n = ranks_;
  const int rel = (self.id() - root + n) % n;
  std::vector<long> incoming(values.size());
  auto* bytes = reinterpret_cast<std::byte*>(values.data());
  const std::size_t len = values.size() * sizeof(long);
  for (int span = 1; span < n; span <<= 1) {
    if (rel % (span << 1) == span) {
      send(self, (root + rel - span) % n, /*tag=*/0x43,
           std::span<const std::byte>(bytes, len));
      return;  // contributed up the tree; done
    }
    if (rel % (span << 1) == 0 && rel + span < n) {
      (void)recv(self, (root + rel + span) % n, /*tag=*/0x43,
                 std::span<std::byte>(
                     reinterpret_cast<std::byte*>(incoming.data()), len));
      for (std::size_t i = 0; i < values.size(); ++i) {
        values[i] += incoming[i];
      }
      self.charge_int_ops(values.size() * 3);
    }
  }
}

void MsgPassing::barrier(Tile& self) {
  // Dissemination barrier: ceil(log2 n) rounds of token exchange. Tokens
  // carry (epoch, round) so a fast neighbor's next-barrier token cannot
  // release this barrier early.
  const int n = ranks_;
  const auto me = static_cast<std::size_t>(self.id());
  const std::uint32_t epoch = barrier_epoch_[me]++;
  int round = 0;
  for (int span = 1; span < n; span <<= 1, ++round) {
    self.clock().advance(kCallOverheadPs);
    const std::uint64_t token =
        (static_cast<std::uint64_t>(epoch) << 8) |
        static_cast<std::uint64_t>(round);
    udn_.send1(self, (self.id() + span) % n, kBarrierQueue, token);
    // Wait for this round's token, stashing any that belong to later
    // rounds/epochs (earlier ones are protocol errors). Stashed tokens do
    // not advance the clock — only the matching round's token gates.
    bool matched = false;
    auto& stash = barrier_stash_[me];
    for (std::size_t i = 0; i < stash.size(); ++i) {
      if (stash[i].first == token) {
        self.clock().advance_to(stash[i].second);
        stash.erase(stash.begin() + static_cast<std::ptrdiff_t>(i));
        matched = true;
        break;
      }
    }
    while (!matched) {
      const tmc::UdnPacket pkt = udn_.recv_raw(self, kBarrierQueue);
      if (pkt.payload[0] == token) {
        self.clock().advance_to(pkt.arrival_ps);
        matched = true;
      } else {
        stash.emplace_back(pkt.payload[0], pkt.arrival_ps);
      }
    }
  }
}

}  // namespace compare
