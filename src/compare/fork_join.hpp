// Fork-join baseline (the "OpenMP" side of the paper's §VI comparison
// plan). Models the costs of an OpenMP-style runtime on the Tilera Linux
// stack: a sequential worker wake-up at region entry (futex wake per
// thread, paid by the master) and a scheduler-assisted join barrier (the
// TMC *sync* barrier — what a pthread/OpenMP barrier maps to), versus
// TSHMEM's UDN token barrier and the TMC spin barrier.
#pragma once

#include <functional>

#include "sim/device.hpp"
#include "tmc/barrier.hpp"

namespace compare {

using tilesim::Device;
using tilesim::ps_t;
using tilesim::Tile;

struct ForkJoinConfig {
  /// Master-side cost to wake one worker (futex + scheduler dispatch).
  ps_t wake_per_worker_ps = 6'000'000;  // ~6 us
  /// Region entry bookkeeping on each worker.
  ps_t worker_entry_ps = 1'500'000;
};

class ForkJoin {
 public:
  ForkJoin(Device& device, int nthreads, ForkJoinConfig cfg = {});

  ForkJoin(const ForkJoin&) = delete;
  ForkJoin& operator=(const ForkJoin&) = delete;

  [[nodiscard]] int nthreads() const noexcept { return nthreads_; }

  /// Executes `body(begin, end, tile)` over [0, n) with static scheduling.
  /// Call from every participating tile inside a Device::run() region.
  /// Charges the fork cost (sequential wake from the master) at entry and
  /// joins through the sync barrier.
  void parallel_for(Tile& self, std::size_t n,
                    const std::function<void(std::size_t, std::size_t,
                                             Tile&)>& body);

  /// The join barrier alone (an OpenMP `#pragma omp barrier`).
  void barrier(Tile& self) { join_.wait(self); }

 private:
  Device* device_;
  int nthreads_;
  ForkJoinConfig cfg_;
  tmc::SyncBarrier join_;
  tmc::VtBarrier fork_;
};

}  // namespace compare
