// Two-sided message-passing baseline (the "MPI" side of the paper's §VI
// comparison plan: "Benchmarking will be expanded to include TSHMEM
// comparisons with other libraries such as OpenMP and MPI").
//
// Built on the same substrate as TSHMEM — UDN control messages plus
// shared-memory staging buffers — but with MPI-style semantics: every
// transfer requires a matching send/recv pair, and the payload moves
// through an intermediate staging buffer (sender copy-in, receiver
// copy-out). The extra copy and the rendezvous handshake are precisely the
// costs the PGAS one-sided model avoids, which is what the ext_libraries
// bench quantifies.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "sim/device.hpp"
#include "tmc/common_memory.hpp"
#include "tmc/udn.hpp"

namespace compare {

using tilesim::Device;
using tilesim::ps_t;
using tilesim::Tile;

class MsgPassing {
 public:
  /// `ranks` communicating peers on `device`; staging space is carved from
  /// `cmem` (one slot per ordered rank pair).
  MsgPassing(Device& device, tmc::CommonMemory& cmem, int ranks,
             std::size_t max_message_bytes);
  ~MsgPassing();

  MsgPassing(const MsgPassing&) = delete;
  MsgPassing& operator=(const MsgPassing&) = delete;

  [[nodiscard]] int ranks() const noexcept { return ranks_; }
  [[nodiscard]] std::size_t max_message_bytes() const noexcept {
    return max_bytes_;
  }

  /// Blocking standard-mode send: stages the payload, notifies the
  /// receiver over the UDN, and waits for the receiver's completion ack
  /// (rendezvous, as unbuffered MPI_Send behaves for large messages).
  void send(Tile& self, int dst, int tag, std::span<const std::byte> data);

  /// Blocking receive with (source, tag) matching. Returns the payload
  /// size; throws std::length_error if `out` is too small.
  std::size_t recv(Tile& self, int src, int tag, std::span<std::byte> out);

  /// Binomial-tree broadcast from `root` (in-place in `data`).
  void bcast(Tile& self, int root, std::span<std::byte> data);

  /// Binomial-tree long-sum reduction to `root`; every rank passes its
  /// contribution in `values`, the root's buffer receives the totals.
  void reduce_sum(Tile& self, int root, std::span<long> values);

  /// Dissemination barrier over the UDN.
  void barrier(Tile& self);

 private:
  Device* device_;
  tmc::CommonMemory* cmem_;
  tmc::UdnFabric udn_;
  int ranks_;
  std::size_t max_bytes_;
  std::byte* staging_ = nullptr;  // ranks*ranks slots of max_bytes_
  // Per-rank barrier state: epoch counter plus a stash for tokens of a
  // *later* barrier that arrive while this rank still waits in an earlier
  // one (fast neighbors may race ahead).
  std::vector<std::uint32_t> barrier_epoch_;
  std::vector<std::vector<std::pair<std::uint64_t, ps_t>>> barrier_stash_;
  // Per-rank stash for data notifications that arrived ahead of the recv
  // that matches them (children of a reduction tree race, for example).
  std::vector<std::vector<tmc::UdnPacket>> data_stash_;

  [[nodiscard]] std::byte* slot(int src, int dst) const;
  [[nodiscard]] static std::uint64_t pack_header(int tag,
                                                 std::size_t bytes) noexcept;
};

}  // namespace compare
