#include "compare/fork_join.hpp"

#include <stdexcept>

namespace compare {

ForkJoin::ForkJoin(Device& device, int nthreads, ForkJoinConfig cfg)
    : device_(&device),
      nthreads_(nthreads),
      cfg_(cfg),
      join_(device, nthreads),
      fork_(nthreads, [](ps_t max_arrival, int) { return max_arrival; }) {
  if (nthreads < 1 || nthreads > device.tile_count()) {
    throw std::invalid_argument("ForkJoin nthreads out of range");
  }
}

void ForkJoin::parallel_for(
    Tile& self, std::size_t n,
    const std::function<void(std::size_t, std::size_t, Tile&)>& body) {
  // Fork: the master wakes workers one after another, so worker i starts
  // only after i sequential wake-ups; the rendezvous pins every thread's
  // clock to the region entry first.
  fork_.wait(self);
  const int tid = self.id();
  if (tid > 0) {
    self.clock().advance(static_cast<ps_t>(tid) * cfg_.wake_per_worker_ps +
                         cfg_.worker_entry_ps);
  }
  // Static schedule: contiguous chunks.
  const auto nt = static_cast<std::size_t>(nthreads_);
  const std::size_t chunk = (n + nt - 1) / nt;
  const std::size_t begin =
      std::min(n, static_cast<std::size_t>(tid) * chunk);
  const std::size_t end = std::min(n, begin + chunk);
  if (begin < end) body(begin, end, self);
  // Join: scheduler-assisted barrier (what pthread/OpenMP barriers cost on
  // the Tilera Linux stack — Fig 5's sync barrier).
  join_.wait(self);
}

}  // namespace compare
