#include "sim/topology.hpp"

#include <cstdlib>
#include <stdexcept>

namespace tilesim {

std::string to_string(Dir d) {
  switch (d) {
    case Dir::kLeft: return "left";
    case Dir::kRight: return "right";
    case Dir::kUp: return "up";
    case Dir::kDown: return "down";
  }
  return "?";
}

Topology::Topology(int width, int height) : width_(width), height_(height) {
  if (width <= 0 || height <= 0) {
    throw std::invalid_argument("Topology dimensions must be positive");
  }
}

void Topology::check_tile(int tile) const {
  if (tile < 0 || tile >= tile_count()) {
    throw std::out_of_range("tile index " + std::to_string(tile) +
                            " outside mesh of " + std::to_string(tile_count()));
  }
}

Coord Topology::coord_of(int tile) const {
  check_tile(tile);
  return Coord{tile % width_, tile / width_};
}

int Topology::tile_at(Coord c) const {
  if (!contains(c)) {
    throw std::out_of_range("coordinate outside mesh");
  }
  return c.y * width_ + c.x;
}

bool Topology::contains(Coord c) const noexcept {
  return c.x >= 0 && c.x < width_ && c.y >= 0 && c.y < height_;
}

int Topology::hops(int from, int to) const {
  const Coord a = coord_of(from);
  const Coord b = coord_of(to);
  return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

std::vector<Dir> Topology::route(int from, int to) const {
  const Coord a = coord_of(from);
  const Coord b = coord_of(to);
  std::vector<Dir> steps;
  steps.reserve(static_cast<std::size_t>(hops(from, to)));
  // Dimension-order: resolve X first, then Y, one unit step per hop.
  for (int x = a.x; x < b.x; ++x) steps.push_back(Dir::kRight);
  for (int x = a.x; x > b.x; --x) steps.push_back(Dir::kLeft);
  for (int y = a.y; y < b.y; ++y) steps.push_back(Dir::kDown);
  for (int y = a.y; y > b.y; --y) steps.push_back(Dir::kUp);
  return steps;
}

bool Topology::route_turns(int from, int to) const {
  const Coord a = coord_of(from);
  const Coord b = coord_of(to);
  return a.x != b.x && a.y != b.y;
}

Dir Topology::first_direction(int from, int to) const {
  const Coord a = coord_of(from);
  const Coord b = coord_of(to);
  if (b.x > a.x) return Dir::kRight;
  if (b.x < a.x) return Dir::kLeft;
  if (b.y > a.y) return Dir::kDown;
  if (b.y < a.y) return Dir::kUp;
  throw std::invalid_argument("first_direction requires from != to");
}

int virtual_to_physical(int virtual_tile, int area_w, int mesh_width) {
  if (virtual_tile < 0 || area_w <= 0 || mesh_width < area_w) {
    throw std::invalid_argument("bad virtual tile mapping arguments");
  }
  return (virtual_tile / area_w) * mesh_width + (virtual_tile % area_w);
}

int physical_to_virtual(int physical_tile, int area_w, int mesh_width) {
  if (physical_tile < 0 || area_w <= 0 || mesh_width < area_w) {
    throw std::invalid_argument("bad virtual tile mapping arguments");
  }
  const int row = physical_tile / mesh_width;
  const int col = physical_tile % mesh_width;
  if (col >= area_w) {
    throw std::out_of_range("physical tile outside the virtual test area");
  }
  return row * area_w + col;
}

}  // namespace tilesim
