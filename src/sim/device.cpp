#include "sim/device.hpp"

#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "sim/flight_hook.hpp"
#include "sim/profile_hook.hpp"
#include "sim/sync_observer.hpp"

namespace tilesim {

namespace {
thread_local Tile* g_current_tile = nullptr;
}  // namespace

namespace {
// Records a charge interval against the device tracer when one is attached.
void trace_charge(Device& device, int tile, TraceKind kind, ps_t begin,
                  ps_t end) {
  if (TraceRecorder* tracer = device.tracer(); tracer != nullptr) {
    tracer->record(tile, kind, begin, end);
  }
}
}  // namespace

Tile::Tile(Device& device, int id)
    : device_(&device),
      id_(id),
      dma_(std::make_unique<DmaEngine>(device.config(), id)) {}

void Tile::charge_int_ops(std::uint64_t n) {
  const ps_t t0 = clock_.now();
  clock_.advance(n * device_->config().compute.int_op_ps);
  trace_charge(*device_, id_, TraceKind::kCompute, t0, clock_.now());
}

void Tile::charge_fp_ops(std::uint64_t n) {
  const ps_t t0 = clock_.now();
  clock_.advance(n * device_->config().compute.fp_op_ps);
  trace_charge(*device_, id_, TraceKind::kCompute, t0, clock_.now());
}

void Tile::charge_mem_ops(std::uint64_t n) {
  const ps_t t0 = clock_.now();
  clock_.advance(n * device_->config().compute.mem_op_ps);
  trace_charge(*device_, id_, TraceKind::kCompute, t0, clock_.now());
}

void Tile::charge_calls(std::uint64_t n) {
  clock_.advance(n * device_->config().compute.call_ps);
}

void Tile::charge_copy(const CopyRequest& req) {
  const ps_t t0 = clock_.now();
  clock_.advance(device_->mem_model().copy_cost_ps(req));
  trace_charge(*device_, id_, TraceKind::kCopy, t0, clock_.now());
  if (probe_) {
    std::scoped_lock lk(probe_mu_);
    std::uint64_t src = req.src_addr;
    std::uint64_t dst = req.dst_addr;
    if (src == 0 && dst == 0) {
      // No endpoint addresses supplied: walk a synthetic fresh-address
      // stream (conservative — counts as streaming new memory).
      src = probe_cursor_;
      dst = probe_cursor_ + req.bytes;
      probe_cursor_ += 2 * req.bytes;
    }
    probe_->observe_copy(src, dst, req.bytes, req.homing);
  }
}

Device::Device(const DeviceConfig& cfg)
    : cfg_(&cfg), topo_(cfg), mem_(cfg) {
  tiles_.reserve(static_cast<std::size_t>(cfg.tile_count()));
  for (int i = 0; i < cfg.tile_count(); ++i) {
    tiles_.push_back(std::make_unique<Tile>(*this, i));
  }
}

Device::~Device() = default;

Tile& Device::tile(int id) {
  if (id < 0 || id >= tile_count()) {
    throw std::out_of_range("tile id out of range");
  }
  return *tiles_[static_cast<std::size_t>(id)];
}

const Tile& Device::tile(int id) const {
  if (id < 0 || id >= tile_count()) {
    throw std::out_of_range("tile id out of range");
  }
  return *tiles_[static_cast<std::size_t>(id)];
}

Tile* Device::current() noexcept { return g_current_tile; }

void Device::attach_flight(FlightSink* flight) noexcept {
  flight_ = flight;
  // DMA engines carry no Device back-pointer (they predate the sink and are
  // constructible standalone), so the attachment is fanned out to them.
  for (auto& t : tiles_) t->dma().set_flight(flight);
}

void Device::enable_cache_probes() {
  if (cache_probes_) return;
  for (auto& t : tiles_) {
    t->probe_ = std::make_unique<CacheSim>(*cfg_);
  }
  cache_probes_ = true;
}

void Device::reset_clocks() {
  // Epoch boundary for the profiler and flight recorder: reset_clocks() is
  // only legal from single-threaded safe points, so the sinks may read every
  // tile's final clock value here, before anything is zeroed.
  if (profiler_ != nullptr) {
    profiler_->on_clock_reset();  // tshmem-lint: allow(R005)
  }
  if (flight_ != nullptr) {
    flight_->on_clock_reset();  // tshmem-lint: allow(R005, R006)
  }
  // DMA engines first: an engine with in-flight transfers must fail the
  // reset *before* any clock is zeroed (stale future completion timestamps
  // would otherwise poison advance_to after the reset).
  for (auto& t : tiles_) t->dma().reset();
  for (auto& t : tiles_) t->clock().reset();
  // Layered components keeping their own timelines (e.g. the interrupt
  // controller's per-target service contexts) re-zero lazily by comparing
  // this generation, so they stay in step with every job/phase boundary.
  clock_generation_.fetch_add(1, std::memory_order_acq_rel);
}

void Device::host_sync() {
  if (!host_barrier_) {
    throw std::logic_error("host_sync called outside Device::run");
  }
  // A host rendezvous is a real synchronization of every active tile (it is
  // how benchmarks separate measurement phases), so it is reported to the
  // sync observer (tshmem-check) as a rendezvous. The arrive callback runs
  // before this thread arrives, and std::barrier opens only after every
  // thread arrived, so all arrive callbacks complete before any release
  // callback — the SyncObserver contract. Each tile participates in every
  // host_sync of a run, so its own call count is a consistent generation.
  SyncObserver* observer = sync_observer_;
  Tile* self = current();
  if (observer != nullptr && self != nullptr) {
    const std::uint64_t gen =
        host_sync_seq_[static_cast<std::size_t>(self->id())]++;
    observer->on_rendezvous_arrive(host_barrier_.get(), gen, self->id());
    host_barrier_->arrive_and_wait();
    observer->on_rendezvous_release(host_barrier_.get(), gen, self->id(),
                                    active_tiles_);
    return;
  }
  host_barrier_->arrive_and_wait();
}

void Device::sync_and_reset_clocks() {
  Tile* self = current();
  if (self == nullptr) {
    throw std::logic_error("sync_and_reset_clocks called outside run()");
  }
  host_sync();
  if (self->id() == 0) reset_clocks();
  host_sync();
}

void Device::run(int active_tiles, const std::function<void(Tile&)>& fn) {
  if (active_tiles < 1 || active_tiles > tile_count()) {
    throw std::invalid_argument("active_tiles must be in [1, tile_count]");
  }
  if (host_barrier_) {
    throw std::logic_error("Device::run is not reentrant");
  }
  active_tiles_ = active_tiles;
  host_barrier_ = std::make_unique<std::barrier<>>(active_tiles);
  host_sync_seq_.assign(tiles_.size(), 0);
  // Force-clear DMA engines: a previous job that threw with outstanding
  // non-blocking transfers must not leak descriptors into this one.
  for (auto& t : tiles_) t->dma().clear();
  reset_clocks();

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(active_tiles));
  std::exception_ptr first_error;
  std::mutex error_mu;

  for (int i = 0; i < active_tiles; ++i) {
    threads.emplace_back([this, i, &fn, &first_error, &error_mu] {
      Tile& self = *tiles_[static_cast<std::size_t>(i)];
      g_current_tile = &self;
      try {
        fn(self);
      } catch (...) {
        std::scoped_lock lk(error_mu);
        if (!first_error) first_error = std::current_exception();
        // A dead tile must not deadlock the others on the host barrier; we
        // cannot cleanly cancel std::barrier waits, so a throwing tile drops
        // its participation. Benchmarks/tests treat any exception as fatal
        // and the rethrow below surfaces it.
        host_barrier_->arrive_and_drop();
      }
      g_current_tile = nullptr;
    });
  }
  for (auto& t : threads) t.join();
  host_barrier_.reset();
  active_tiles_ = 0;
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace tilesim
