// Per-tile asynchronous DMA engine (ISSUE 3 tentpole).
//
// Models the Tilera per-tile DMA offload (mPIPE eDMA/iDMA on the TILE-Gx;
// a software pseudo-DMA loop on the TILEPro): a virtual-time queue of
// in-flight transfer descriptors. The issuing tile pays only a small
// descriptor-post cost; the engine "moves" the data in the background and
// the descriptor's completion timestamp is computed analytically at issue
// time from the same MemModel costs the blocking path charges:
//
//   start_ps    = max(issue_ps, engine_free_ps)       (one channel, FIFO)
//   complete_ps = start_ps + dma_setup_ps + copy_cost_ps(request)
//   engine_free_ps' = complete_ps
//
// Because completion times depend only on virtual-time inputs available at
// issue, results are independent of host scheduling — the same contract as
// SimClock. Completion is merged into tile clocks exclusively through
// SimClock::advance_to() (shmem_quiet on the issuer; last-delivery
// timestamps on the target).
//
// The engine is FIFO with a single channel: descriptors retire in issue
// order, which makes per-destination delivery ordering (shmem_fence)
// inherent — see docs/NBI.md for the full ordering contract.
#pragma once

#include <cstdint>
#include <mutex>
#include <vector>

#include "sim/config.hpp"

namespace tilesim {

class FlightSink;  // sim/flight_hook.hpp

/// One in-flight (or retired) transfer owned by a tile's DMA engine.
struct DmaDescriptor {
  std::uint64_t id = 0;   ///< per-engine monotone issue ordinal
  int peer = -1;          ///< remote PE of the transfer (== self for local)
  bool is_put = false;    ///< direction: put (write remote) / get (read)
  std::size_t bytes = 0;
  ps_t issue_ps = 0;      ///< issuing tile's clock at issue
  ps_t start_ps = 0;      ///< when the engine begins moving data
  ps_t complete_ps = 0;   ///< when the transfer fully retires
};

/// Host-side engine statistics (observability only, never timed).
struct DmaStats {
  std::uint64_t issued = 0;
  std::uint64_t retired = 0;
  std::uint64_t bytes = 0;
  std::uint64_t peak_pending = 0;  ///< high-water mark of the queue depth
};

class DmaEngine {
 public:
  /// `tile_id` names the owning tile in failure diagnostics (reset with
  /// in-flight descriptors); -1 means "unattributed" (standalone tests).
  explicit DmaEngine(const DeviceConfig& cfg, int tile_id = -1)
      : cfg_(&cfg), tile_id_(tile_id) {}

  DmaEngine(const DmaEngine&) = delete;
  DmaEngine& operator=(const DmaEngine&) = delete;

  /// Enqueues a transfer issued at virtual time `issue_ps` whose data
  /// movement costs `transfer_cost_ps` (MemModel::copy_cost_ps of the same
  /// request the blocking path would charge). Returns the full descriptor,
  /// including the computed completion timestamp. `stall_ps` is an injected
  /// channel stall (fault engine): the transfer starts that much later.
  DmaDescriptor issue(int peer, bool is_put, std::size_t bytes, ps_t issue_ps,
                      ps_t transfer_cost_ps, ps_t stall_ps = 0);

  [[nodiscard]] std::size_t pending() const;
  /// Virtual time at which the engine's single channel next goes idle.
  [[nodiscard]] ps_t engine_free_ps() const;

  struct DrainResult {
    ps_t max_complete_ps = 0;  ///< latest completion among retired transfers
    std::uint64_t retired = 0;
    ps_t busy_ps = 0;          ///< sum of (complete - start) over retired
  };

  /// Retires every pending descriptor (shmem_quiet). The caller merges
  /// max_complete_ps into its clock via advance_to().
  DrainResult drain_all();

  /// Copy of the pending queue in issue order (tests/diagnostics).
  [[nodiscard]] std::vector<DmaDescriptor> pending_snapshot() const;

  [[nodiscard]] DmaStats stats() const;

  /// Zeroes the engine timeline and statistics alongside a clock reset
  /// (Device::reset_clocks). Throws std::logic_error when transfers are
  /// still in flight — resetting clocks under outstanding NBI traffic would
  /// leave stale future completion timestamps poisoning advance_to().
  void reset();

  /// Unconditional wipe, including in-flight descriptors. Used at
  /// Device::run() entry so a previous job that aborted with outstanding
  /// transfers cannot leak state into the next one.
  void clear();

  /// Flight-recorder sink, fanned out by Device::attach_flight (the engine
  /// has no Device back-pointer). Nullptr keeps the fast path zero-cost.
  void set_flight(FlightSink* sink) noexcept { flight_ = sink; }

 private:
  const DeviceConfig* cfg_;
  int tile_id_ = -1;
  // The queue is mutex-guarded: the owning tile is the only issuer, but
  // tests and the metrics scrape inspect engines from other host threads.
  mutable std::mutex mu_;
  std::vector<DmaDescriptor> pending_;
  ps_t engine_free_ps_ = 0;
  std::uint64_t next_id_ = 1;
  DmaStats stats_;
  FlightSink* flight_ = nullptr;
};

}  // namespace tilesim
