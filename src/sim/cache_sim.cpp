#include "sim/cache_sim.hpp"

#include <algorithm>
#include <stdexcept>

namespace tilesim {

namespace {
constexpr std::size_t kLineBytes = 64;

[[nodiscard]] bool is_pow2(std::size_t v) { return v && (v & (v - 1)) == 0; }
}  // namespace

SetAssocCache::SetAssocCache(std::size_t capacity_bytes,
                             std::size_t line_bytes, std::size_t ways)
    : capacity_(capacity_bytes), line_(line_bytes), ways_(ways) {
  if (!is_pow2(line_bytes) || line_bytes == 0) {
    throw std::invalid_argument("cache line size must be a power of two");
  }
  if (ways == 0 || capacity_bytes % (line_bytes * ways) != 0) {
    throw std::invalid_argument("cache capacity must be sets*ways*line");
  }
  sets_ = capacity_bytes / (line_bytes * ways);
  if (!is_pow2(sets_)) {
    throw std::invalid_argument("cache set count must be a power of two");
  }
  entries_.resize(sets_ * ways_);
}

std::size_t SetAssocCache::set_index(std::uint64_t addr) const noexcept {
  return static_cast<std::size_t>((addr / line_) & (sets_ - 1));
}

std::uint64_t SetAssocCache::tag_of(std::uint64_t addr) const noexcept {
  return (addr / line_) / sets_;
}

bool SetAssocCache::access(std::uint64_t addr) {
  const std::size_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  Way* begin = entries_.data() + set * ways_;
  ++tick_;
  Way* victim = begin;
  for (std::size_t w = 0; w < ways_; ++w) {
    Way& way = begin[w];
    if (way.valid && way.tag == tag) {
      way.lru = tick_;
      ++hits_;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = tick_;
  ++misses_;
  return false;
}

bool SetAssocCache::probe(std::uint64_t addr) const {
  const std::size_t set = set_index(addr);
  const std::uint64_t tag = tag_of(addr);
  const Way* begin = entries_.data() + set * ways_;
  for (std::size_t w = 0; w < ways_; ++w) {
    if (begin[w].valid && begin[w].tag == tag) return true;
  }
  return false;
}

void SetAssocCache::invalidate_all() {
  for (auto& way : entries_) way.valid = false;
  tick_ = 0;
}

namespace {

/// The DDC capacity seen by one tile is the L2 of every *other* tile.
/// SetAssocCache needs a power-of-two set count; keep the capacity close
/// to the true aggregate by fixing sets at the largest fitting power of
/// two and widening the associativity to absorb the remainder.
SetAssocCache make_ddc(const DeviceConfig& cfg) {
  const std::size_t raw = cfg.l2_bytes * static_cast<std::size_t>(
                                             cfg.tile_count() - 1);
  const std::size_t min_ways = 16;
  std::size_t sets = 1;
  while (sets * 2 * kLineBytes * min_ways <= raw) sets *= 2;
  const std::size_t ways = raw / (sets * kLineBytes);
  return SetAssocCache(sets * ways * kLineBytes, kLineBytes, ways);
}

}  // namespace

CacheSim::CacheSim(const DeviceConfig& cfg, CacheLatencies lat)
    : cfg_(&cfg),
      lat_(lat),
      l1_(cfg.l1d_bytes, kLineBytes, 2),
      l2_(cfg.l2_bytes, kLineBytes, 8),
      ddc_(make_ddc(cfg)) {}

HitLevel CacheSim::access(std::uint64_t addr, Homing homing) {
  if (l1_.access(addr)) {
    ++counts_.l1;
    return HitLevel::kL1;
  }
  if (l2_.access(addr)) {
    ++counts_.l2;
    return HitLevel::kL2;
  }
  // Locally homed pages may not be cached by other tiles, so they can never
  // be serviced from the DDC (paper §III-A: local homing "loses the
  // advantage of DDC").
  if (homing != Homing::kLocal && ddc_.access(addr)) {
    ++counts_.ddc;
    return HitLevel::kDdc;
  }
  if (homing != Homing::kLocal) {
    // Miss already installed the line in the DDC via the access() above.
  }
  ++counts_.dram;
  return HitLevel::kDram;
}

double CacheSim::level_cycles(HitLevel level) const noexcept {
  switch (level) {
    case HitLevel::kL1: return lat_.l1_cycles;
    case HitLevel::kL2: return lat_.l2_cycles;
    case HitLevel::kDdc: return lat_.ddc_cycles;
    case HitLevel::kDram: return lat_.dram_cycles;
  }
  return lat_.dram_cycles;
}

double CacheSim::stream_copy_mbps(std::uint64_t src_base,
                                  std::uint64_t dst_base, std::size_t bytes,
                                  Homing homing) {
  if (bytes == 0) return 0.0;
  double cycles = 0.0;
  for (std::size_t off = 0; off < bytes; off += kLineBytes) {
    const HitLevel r = access(src_base + off, homing);
    const HitLevel w = access(dst_base + off, homing);
    // L1 hits are pipelined with the copy loop itself; misses overlap up to
    // the machine's memory-level parallelism.
    const double rc = level_cycles(r);
    const double wc = level_cycles(w);
    cycles += (rc + wc) / lat_.mlp;
  }
  const double ns = cycles * 1000.0 / (cfg_->clock_ghz * 1000.0);
  if (ns <= 0.0) return 0.0;
  return static_cast<double>(bytes) * 1e3 / ns;  // bytes/ns -> MB/s
}

void CacheSim::observe_copy(std::uint64_t src_base, std::uint64_t dst_base,
                            std::size_t bytes, Homing homing) {
  for (std::size_t off = 0; off < bytes; off += kLineBytes) {
    access(src_base + off, homing);
    access(dst_base + off, homing);
  }
}

AccessCounts CacheSim::sweep(std::uint64_t base, std::size_t bytes, int passes,
                             Homing homing) {
  if (passes <= 0) throw std::invalid_argument("sweep needs passes >= 1");
  for (int p = 0; p < passes - 1; ++p) {
    for (std::size_t off = 0; off < bytes; off += kLineBytes) {
      access(base + off, homing);
    }
  }
  reset_stats();
  for (std::size_t off = 0; off < bytes; off += kLineBytes) {
    access(base + off, homing);
  }
  return counts_;
}

void CacheSim::reset() {
  l1_.invalidate_all();
  l2_.invalidate_all();
  ddc_.invalidate_all();
  counts_ = {};
}

}  // namespace tilesim
