#include "sim/trace.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "sim/clock.hpp"

namespace tilesim {

const char* to_string(TraceKind kind) noexcept {
  switch (kind) {
    case TraceKind::kCompute: return "compute";
    case TraceKind::kCopy: return "copy";
    case TraceKind::kMessage: return "message";
    case TraceKind::kBarrier: return "barrier";
    case TraceKind::kCollective: return "collective";
    case TraceKind::kCustom: return "custom";
  }
  return "?";
}

TraceRecorder::TraceRecorder(int tiles) {
  if (tiles < 1) throw std::invalid_argument("TraceRecorder needs >= 1 tile");
  tiles_.reserve(static_cast<std::size_t>(tiles));
  for (int i = 0; i < tiles; ++i) {
    tiles_.push_back(std::make_unique<PerTile>());
  }
}

void TraceRecorder::record(int tile, TraceKind kind, ps_t begin, ps_t end,
                           std::string label) {
  if (tile < 0 || tile >= static_cast<int>(tiles_.size())) {
    throw std::out_of_range("TraceRecorder: tile out of range");
  }
  PerTile& pt = *tiles_[static_cast<std::size_t>(tile)];
  std::scoped_lock lk(pt.mu);
  pt.events.push_back(TraceEvent{tile, kind, begin, end, std::move(label)});
}

std::vector<TraceEvent> TraceRecorder::events() const {
  std::vector<TraceEvent> out;
  for (const auto& pt : tiles_) {
    std::scoped_lock lk(pt->mu);
    out.insert(out.end(), pt->events.begin(), pt->events.end());
  }
  std::sort(out.begin(), out.end(),
            [](const TraceEvent& a, const TraceEvent& b) {
              return a.begin_ps != b.begin_ps ? a.begin_ps < b.begin_ps
                                              : a.tile < b.tile;
            });
  return out;
}

std::size_t TraceRecorder::event_count() const {
  std::size_t n = 0;
  for (const auto& pt : tiles_) {
    std::scoped_lock lk(pt->mu);
    n += pt->events.size();
  }
  return n;
}

void TraceRecorder::clear() {
  for (const auto& pt : tiles_) {
    std::scoped_lock lk(pt->mu);
    pt->events.clear();
  }
}

std::string csv_escape(const std::string& field) {
  // RFC 4180: fields containing separators, quotes, or line breaks are
  // double-quoted, with embedded quotes doubled.
  if (field.find_first_of(",\"\r\n") == std::string::npos) return field;
  std::string out;
  out.reserve(field.size() + 2);
  out.push_back('"');
  for (const char c : field) {
    if (c == '"') out.push_back('"');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

void TraceRecorder::dump_csv(std::ostream& os) const {
  os << "tile,kind,begin_ps,end_ps,duration_ps,label\n";
  for (const TraceEvent& e : events()) {
    os << e.tile << ',' << to_string(e.kind) << ',' << e.begin_ps << ','
       << e.end_ps << ',' << (e.end_ps - e.begin_ps) << ','
       << csv_escape(e.label) << '\n';
  }
}

TraceSpan::TraceSpan(TraceRecorder* recorder, int tile, const SimClock& clock,
                     TraceKind kind, std::string label)
    : recorder_(recorder),
      tile_(tile),
      clock_(&clock),
      kind_(kind),
      label_(std::move(label)),
      begin_(clock.now()) {}

TraceSpan::~TraceSpan() {
  if (recorder_ != nullptr) {
    recorder_->record(tile_, kind_, begin_, clock_->now(), std::move(label_));
  }
}

}  // namespace tilesim
