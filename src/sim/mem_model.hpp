// Analytic memory-system timing model.
//
// Charges virtual time for memory-copy operations according to the
// bandwidth-vs-size curves calibrated from Fig 3, adjusted for the homing
// strategy (paper §III-A) and for concurrent access to the same partition
// (read/write contention; drives the Fig 10/11 saturation behaviour).
//
// A mechanistic counterpart (CacheSim, sim/cache_sim.hpp) validates that
// the analytic curve's breakpoints coincide with the capacity transitions
// a set-associative L1d/L2 + DDC hierarchy actually produces.
#pragma once

#include <cstddef>

#include "sim/config.hpp"

namespace tilesim {

/// Parameters of one modeled copy.
struct CopyRequest {
  std::size_t bytes = 0;
  MemSpace src = MemSpace::kShared;
  MemSpace dst = MemSpace::kShared;
  Homing homing = Homing::kHashForHome;  ///< homing of the shared page(s)
  int concurrent_readers = 1;  ///< streams concurrently reading the source
  int concurrent_writers = 1;  ///< streams concurrently writing the target
  /// Host addresses of the endpoints — ignored by the analytic model, but
  /// fed to the per-tile cache probe (metrics) so hit/miss counts reflect
  /// the run's actual locality. 0 when the caller has no address (the probe
  /// then uses a synthetic stream).
  std::uint64_t src_addr = 0;
  std::uint64_t dst_addr = 0;
};

class MemModel {
 public:
  explicit MemModel(const DeviceConfig& cfg) : cfg_(&cfg) {}

  /// Effective bandwidth (MB/s) for the copy, after homing and contention
  /// adjustments. Excludes the fixed call overhead.
  [[nodiscard]] double effective_mbps(const CopyRequest& req) const;

  /// Total modeled cost (ps) including the fixed per-call overhead.
  [[nodiscard]] ps_t copy_cost_ps(const CopyRequest& req) const;

  /// Bandwidth curve selected for a src/dst space pairing.
  [[nodiscard]] const BandwidthCurve& curve_for(MemSpace src,
                                                MemSpace dst) const;

  [[nodiscard]] const DeviceConfig& config() const noexcept { return *cfg_; }

 private:
  const DeviceConfig* cfg_;

  [[nodiscard]] double homing_factor(std::size_t bytes, Homing homing) const;
};

}  // namespace tilesim
