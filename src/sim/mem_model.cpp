#include "sim/mem_model.hpp"

#include <algorithm>

#include "util/units.hpp"

namespace tilesim {

const BandwidthCurve& MemModel::curve_for(MemSpace src, MemSpace dst) const {
  if (src == MemSpace::kPrivate && dst == MemSpace::kPrivate) {
    return cfg_->bw_private_to_private;
  }
  if (src == MemSpace::kPrivate) return cfg_->bw_private_to_shared;
  if (dst == MemSpace::kPrivate) return cfg_->bw_shared_to_private;
  return cfg_->bw_shared_to_shared;
}

double MemModel::homing_factor(std::size_t bytes, Homing homing) const {
  switch (homing) {
    case Homing::kHashForHome:
      return 1.0;  // the default strategy the curves are calibrated for
    case Homing::kLocal:
      // Faster hit latency while the working set fits the local L2, but the
      // page cannot be distributed into other tiles' caches (loses DDC).
      return bytes <= cfg_->l2_bytes ? cfg_->local_homing_small_boost
                                     : cfg_->local_homing_large_penalty;
    case Homing::kRemote:
      return cfg_->remote_homing_factor;
  }
  return 1.0;
}

double MemModel::effective_mbps(const CopyRequest& req) const {
  const BandwidthCurve& curve = curve_for(req.src, req.dst);
  double mbps = curve.mbps(req.bytes);
  mbps *= homing_factor(req.bytes, req.homing);
  // Contention applies only to shared-segment endpoints: multiple streams
  // hammering the same partition's home tiles share its cache/mesh ports.
  if (req.src == MemSpace::kShared && req.concurrent_readers > 1) {
    mbps *= cfg_->read_contention.efficiency(req.concurrent_readers);
  }
  if (req.dst == MemSpace::kShared && req.concurrent_writers > 1) {
    mbps *= cfg_->write_contention.efficiency(req.concurrent_writers);
  }
  return std::max(mbps, 1.0);
}

ps_t MemModel::copy_cost_ps(const CopyRequest& req) const {
  if (req.bytes == 0) return cfg_->copy_call_overhead_ps;
  const double mbps = effective_mbps(req);
  return cfg_->copy_call_overhead_ps +
         tshmem_util::transfer_time_ps(req.bytes, mbps);
}

}  // namespace tilesim
