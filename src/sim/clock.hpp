// Per-tile virtual device clock.
//
// Every tile thread owns one SimClock; all reported latencies/bandwidths in
// the benchmark harnesses are differences of these clocks. The clock is
// atomic because other tiles' threads read it concurrently (barrier
// releases, UDN arrival stamps, harness scrapes). Mutation stays with the
// owning thread — even interrupt handlers charge a dedicated per-target
// service clock instead of the target's own (see tmc/interrupt.hpp) — and
// all cross-tile time exchange is via advance_to() (monotone max), so
// results are independent of host scheduling.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/units.hpp"

namespace tilesim {

using tshmem_util::ps_t;

class SimClock {
 public:
  SimClock() = default;

  SimClock(const SimClock&) = delete;
  SimClock& operator=(const SimClock&) = delete;

  [[nodiscard]] ps_t now() const noexcept {
    return now_ps_.load(std::memory_order_acquire);
  }

  /// Advance by a modeled duration.
  void advance(ps_t delta) noexcept {
    now_ps_.fetch_add(delta, std::memory_order_acq_rel);
    busy_ps_.fetch_add(delta, std::memory_order_relaxed);
  }

  /// Advance to at least `t` (no-op if already past). Used when a message
  /// or released barrier carries a timestamp from another tile.
  void advance_to(ps_t t) noexcept {
    ps_t cur = now_ps_.load(std::memory_order_acquire);
    while (cur < t && !now_ps_.compare_exchange_weak(
                          cur, t, std::memory_order_acq_rel,
                          std::memory_order_acquire)) {
    }
    if (cur < t) idle_ps_.fetch_add(t - cur, std::memory_order_relaxed);
  }

  /// Busy/idle attribution of the current clock value: busy time was
  /// explicitly charged via advance() (compute, copies, protocol costs);
  /// idle time is the sum of advance_to() jumps — waiting on messages,
  /// barrier releases, and remote deliveries. busy + idle == now modulo
  /// concurrent interrupt-handler charges landing between the two loads.
  [[nodiscard]] ps_t busy_ps() const noexcept {
    return busy_ps_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] ps_t idle_ps() const noexcept {
    return idle_ps_.load(std::memory_order_relaxed);
  }

  /// Reset to zero — only valid between benchmark phases when no other
  /// thread can be charging this clock.
  void reset() noexcept {
    now_ps_.store(0, std::memory_order_release);
    busy_ps_.store(0, std::memory_order_relaxed);
    idle_ps_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<ps_t> now_ps_{0};
  std::atomic<ps_t> busy_ps_{0};
  std::atomic<ps_t> idle_ps_{0};
};

/// RAII helper measuring virtual elapsed time over a scope.
class ScopedTimer {
 public:
  explicit ScopedTimer(const SimClock& clock, ps_t& out)
      : clock_(clock), out_(out), start_(clock.now()) {}
  ~ScopedTimer() { out_ = clock_.now() - start_; }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  const SimClock& clock_;
  ps_t& out_;
  ps_t start_;
};

}  // namespace tilesim
