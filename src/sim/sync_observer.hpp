// Observer interface for host-level rendezvous synchronization (the TMC
// spin/sync barriers). Mirrors the TraceRecorder/FaultEngine attachment
// pattern: the interface lives in sim — the bottom layer — so tmc can
// notify it without an upward dependency, while the only implementation
// (the tshmem-check race detector, src/analysis/race.hpp) lives above.
//
// Contract: a rendezvous is a *true* barrier — every participant's
// on_rendezvous_arrive completes (host order) before any participant's
// on_rendezvous_release runs, which makes the all-join performed by the
// detector deterministic regardless of host thread scheduling. Callbacks
// must never advance a SimClock (bit-identical on/off contract).
#pragma once

#include <cstdint>

namespace tilesim {

class SyncObserver {
 public:
  virtual ~SyncObserver() = default;

  /// Tile `tile` arrived at rendezvous instance (`barrier`, `generation`).
  virtual void on_rendezvous_arrive(const void* barrier,
                                    std::uint64_t generation, int tile) = 0;

  /// Tile `tile` was released from the same instance; `parties` is the
  /// total participant count (the observer uses it to retire the slot).
  virtual void on_rendezvous_release(const void* barrier,
                                     std::uint64_t generation, int tile,
                                     int parties) = 0;
};

}  // namespace tilesim
