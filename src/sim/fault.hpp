// Deterministic, seeded fault-injection engine (robustness tentpole).
//
// A FaultPlan describes *rates and magnitudes* of injectable faults; the
// FaultEngine turns each runtime "opportunity" (a UDN send attempt, a DMA
// descriptor issue, an interrupt service, a cmem map, ...) into a
// deterministic verdict. Decisions are stateless hashes of
//
//   (plan.seed, fault site, tile id, per-(site,tile) opportunity ordinal)
//
// expanded through SplitMix64. Because each tile consumes its opportunity
// ordinals in SPMD program order — and virtual time itself is independent
// of host scheduling — a (seed, plan) pair replays bit-identically: same
// injected-event log, same final metrics, regardless of how the host OS
// interleaves tile threads. There is no shared RNG stream to race on.
//
// The engine only *decides*; the hardened layers (tmc/udn, sim/dma,
// tmc/interrupt, tmc/common_memory, tshmem/symheap) consume the verdicts
// and either recover (retry, backoff, synchronous fallback — counted in
// recovery.* metrics) or surface a structured tshmem::Error. With an empty
// plan every query returns "no fault" without touching any clock, which is
// what keeps the zero-virtual-cost contract intact.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "sim/config.hpp"

namespace tilesim {

/// Injection sites. Order is part of the event-log sort key; append only.
enum class FaultSite : int {
  kUdnDrop = 0,     ///< packet vanishes in the mesh (sender must retry)
  kUdnCorrupt = 1,  ///< payload bit-flip; receiver checksum rejects it
  kUdnDelay = 2,    ///< packet arrives late by plan.udn_delay_ps
  kDmaStall = 3,    ///< DMA channel start delayed by plan.dma_stall_ps
  kDmaDescFail = 4, ///< descriptor post rejected (NBI falls back to sync)
  kTileStall = 5,   ///< tile loses plan.tile_stall_ps of virtual time
  kCmemMapFail = 6, ///< common-memory map attempt fails
  kHeapCap = 7,     ///< symmetric-heap pressure cap denied an allocation
  kShardStall = 8,  ///< serving shard loses plan.shard_stall_ps per batch
  kShardCrash = 9,  ///< serving replica dies permanently at a seeded point
  kReplicaFlap = 10,  ///< serving replica crashes, recovers, crashes again
};
inline constexpr int kFaultSiteCount = 11;

[[nodiscard]] const char* fault_site_name(FaultSite site) noexcept;

/// One injected fault, as recorded in the replayable event log.
struct FaultEvent {
  FaultSite site = FaultSite::kUdnDrop;
  int tile = 0;
  std::uint64_t seq = 0;  ///< per-(site,tile) opportunity ordinal that fired
  ps_t vt_ps = 0;         ///< injecting tile's virtual time at injection

  friend bool operator==(const FaultEvent&, const FaultEvent&) = default;
};

/// Declarative fault schedule. All rates are per-opportunity probabilities
/// in [0, 1]; magnitudes are virtual-time picoseconds. Defaults are all
/// zero: an empty plan injects nothing.
struct FaultPlan {
  std::uint64_t seed = 1;

  double udn_drop_rate = 0.0;
  double udn_corrupt_rate = 0.0;
  double udn_delay_rate = 0.0;
  ps_t udn_delay_ps = 0;
  int udn_max_retries = 8;         ///< bounded retry before kRetriesExhausted
  ps_t udn_backoff_base_ps = 2000; ///< exponential backoff base (2 ns)

  double dma_stall_rate = 0.0;
  ps_t dma_stall_ps = 0;
  double dma_desc_fail_rate = 0.0;

  double tile_stall_rate = 0.0;
  ps_t tile_stall_ps = 0;

  double cmem_map_fail_rate = 0.0;

  std::size_t heap_cap_bytes = 0;  ///< 0 = uncapped

  /// Serving-layer shard degradation (src/svc; docs/SERVING.md): each batch
  /// a shard serves is one opportunity to lose shard_stall_ps of virtual
  /// time. shard_stall_shard targets one shard index (-1 = every shard).
  double shard_stall_rate = 0.0;
  ps_t shard_stall_ps = 0;
  int shard_stall_shard = -1;

  /// Permanent replica failure (docs/SERVING.md failover): each batch a
  /// replica dispatches is one opportunity to die and never return.
  /// shard_crash_shard targets one replica slot — the global index
  /// replica * shards + shard, so slot s is shard s's primary (-1 = any).
  double shard_crash_rate = 0.0;
  int shard_crash_shard = -1;

  /// Repeated crash/recover cycles: each batch dispatch is one opportunity
  /// to crash for replica_flap_down_ps of virtual time, then recover.
  double replica_flap_rate = 0.0;
  ps_t replica_flap_down_ps = 0;
  int replica_flap_shard = -1;

  /// True when the plan cannot inject anything (all rates/caps zero).
  [[nodiscard]] bool empty() const noexcept;

  /// Parses a TSHMEM_FAULT_PLAN spec: comma-separated key=value entries,
  /// e.g. "seed=42,udn_drop=0.01,udn_delay=0.01:50000,dma_stall=0.02:100000,
  /// dma_fail=0.01,tile_stall=0.005:1000000,cmem_fail=0.1,heap_cap=1048576".
  /// Rate:magnitude pairs use "rate:ps". Optional keys: udn_corrupt,
  /// udn_retries, udn_backoff, shard_stall (rate:ps), shard_stall_shard,
  /// shard_crash (rate), shard_crash_shard, replica_flap (rate:down_ps),
  /// replica_flap_shard. Throws std::invalid_argument on malformed or
  /// unknown entries — including NaN or out-of-[0,1] rates and negative
  /// magnitudes, which std::stod/stoull would otherwise accept.
  static FaultPlan parse(const std::string& spec);

  /// Human-readable one-line summary (diagnostics, bench headers).
  [[nodiscard]] std::string describe() const;

  friend bool operator==(const FaultPlan&, const FaultPlan&) = default;
};

/// Turns runtime opportunities into deterministic fault verdicts and keeps
/// the replayable injected-event log. Thread-safe: per-(site,tile) ordinal
/// counters are atomics owned by exactly one tile thread each in SPMD use,
/// and the log is mutex-guarded.
class FaultEngine {
 public:
  explicit FaultEngine(FaultPlan plan) : plan_(plan) {}

  FaultEngine(const FaultEngine&) = delete;
  FaultEngine& operator=(const FaultEngine&) = delete;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Verdict for one UDN send attempt by `tile` at virtual time `now_ps`.
  /// delay_ps is nonzero only for kDeliver verdicts that drew a delay.
  enum class UdnVerdict { kDeliver, kDrop, kCorrupt };
  struct UdnDecision {
    UdnVerdict verdict = UdnVerdict::kDeliver;
    ps_t delay_ps = 0;
  };
  UdnDecision udn_attempt(int tile, ps_t now_ps);

  /// Extra start-delay for a DMA descriptor issued by `tile` (0 = none).
  ps_t dma_stall(int tile, ps_t now_ps);

  /// True when the descriptor post itself is rejected.
  bool dma_desc_fails(int tile, ps_t now_ps);

  /// Virtual-time stall charged to `tile` while servicing an interrupt
  /// (0 = none).
  ps_t tile_stall(int tile, ps_t now_ps);

  /// True when a common-memory map attempt by `tile` fails.
  bool cmem_map_fails(int tile, ps_t now_ps);

  /// Virtual-time stall added to one serving batch on `shard` (0 = none).
  /// The shard index plays the tile role in the decision hash; a plan with
  /// shard_stall_shard >= 0 stalls only that shard.
  ps_t shard_stall(int shard, ps_t now_ps);

  /// True when `replica` (a global replica slot) dies at this batch
  /// dispatch. The caller owns the permanence: the engine stays stateless
  /// so the (seed, plan) replay contract is untouched.
  bool shard_crash(int replica, ps_t now_ps);

  /// Down-time for a crash/recover flap fired at this batch dispatch on
  /// `replica` (0 = none). The caller schedules the recovery.
  ps_t replica_flap(int replica, ps_t now_ps);

  /// Records a heap-cap denial (the cap verdict itself is a deterministic
  /// threshold check done by the heap so it stays symmetric across PEs).
  void note_heap_cap_denial(int tile, ps_t now_ps);

  [[nodiscard]] std::size_t heap_cap_bytes() const noexcept {
    return plan_.heap_cap_bytes;
  }

  /// Snapshot of every injected event, sorted by (site, tile, seq) so the
  /// log compares equal across replays independent of host interleaving.
  [[nodiscard]] std::vector<FaultEvent> events() const;
  [[nodiscard]] std::uint64_t event_count() const;

  static constexpr int kMaxTiles = 256;

 private:
  [[nodiscard]] bool decide(FaultSite site, int tile, double rate,
                            std::uint64_t n) const noexcept;
  std::uint64_t next_opportunity(FaultSite site, int tile) noexcept;
  void record(FaultSite site, int tile, std::uint64_t seq, ps_t vt_ps);

  FaultPlan plan_;
  std::array<std::array<std::atomic<std::uint64_t>, kMaxTiles>,
             kFaultSiteCount>
      counters_{};
  mutable std::mutex log_mu_;
  std::vector<FaultEvent> log_;
  std::atomic<std::uint64_t> event_count_{0};
};

/// Host-time watchdog attached to the Device and consulted by every
/// blocking virtual-time wait (UDN recv / send-space, barriers,
/// shmem_wait_until, locks). When a wait exceeds `timeout` host
/// milliseconds, the site calls on_timeout(tile, what) — installed by the
/// TSHMEM runtime to throw tshmem::Error(kWatchdogTimeout) carrying the
/// per-PE diagnostic snapshot — instead of hanging forever. A default
/// constructed Watchdog (timeout 0) is disabled.
struct Watchdog {
  std::chrono::milliseconds timeout{0};
  std::function<void(int tile, const char* what)> on_timeout;

  [[nodiscard]] bool enabled() const noexcept {
    return timeout.count() > 0 && static_cast<bool>(on_timeout);
  }
};

}  // namespace tilesim
