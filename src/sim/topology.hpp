// 2D mesh topology and dimension-order (X-then-Y) routing, matching the
// Tilera iMesh. Also provides the paper's "virtual CPU number" mapping: the
// benchmark test area is 6x6 on both devices; on the 8x8 TILEPro64 virtual
// tile v maps to physical tile (v / 6) * 8 + (v % 6) (paper §III-C).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/config.hpp"

namespace tilesim {

/// Tile coordinate in the physical mesh, (0,0) at the top-left.
struct Coord {
  int x = 0;
  int y = 0;

  friend bool operator==(const Coord&, const Coord&) = default;
};

/// One hop of a route, as a unit step in the mesh.
enum class Dir : std::uint8_t { kLeft, kRight, kUp, kDown };

[[nodiscard]] std::string to_string(Dir d);

class Topology {
 public:
  Topology(int width, int height);
  explicit Topology(const DeviceConfig& cfg)
      : Topology(cfg.mesh_width, cfg.mesh_height) {}

  [[nodiscard]] int width() const noexcept { return width_; }
  [[nodiscard]] int height() const noexcept { return height_; }
  [[nodiscard]] int tile_count() const noexcept { return width_ * height_; }

  [[nodiscard]] Coord coord_of(int tile) const;
  [[nodiscard]] int tile_at(Coord c) const;
  [[nodiscard]] bool contains(Coord c) const noexcept;

  /// Manhattan hop count of the dimension-order route between two tiles.
  [[nodiscard]] int hops(int from, int to) const;

  /// Full dimension-order route (X first, then Y) as a sequence of steps.
  [[nodiscard]] std::vector<Dir> route(int from, int to) const;

  /// True if the dimension-order route includes an X->Y turn.
  [[nodiscard]] bool route_turns(int from, int to) const;

  /// First-leg direction of the route; meaningful only when from != to.
  [[nodiscard]] Dir first_direction(int from, int to) const;

 private:
  int width_;
  int height_;
  void check_tile(int tile) const;
};

/// The paper's virtual-CPU mapping: virtual tiles index a `area_w x area_h`
/// test area embedded at the top-left of a physical mesh of width
/// `mesh_width`. On the TILE-Gx36 the area equals the chip so the mapping is
/// the identity; on the TILEPro64 virtual tile 6 is physical tile 8, etc.
[[nodiscard]] int virtual_to_physical(int virtual_tile, int area_w,
                                      int mesh_width);
[[nodiscard]] int physical_to_virtual(int physical_tile, int area_w,
                                      int mesh_width);

}  // namespace tilesim
