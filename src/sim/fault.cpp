#include "sim/fault.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>

#include "util/rng.hpp"

namespace tilesim {

const char* fault_site_name(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kUdnDrop: return "udn.drop";
    case FaultSite::kUdnCorrupt: return "udn.corrupt";
    case FaultSite::kUdnDelay: return "udn.delay";
    case FaultSite::kDmaStall: return "dma.stall";
    case FaultSite::kDmaDescFail: return "dma.desc_fail";
    case FaultSite::kTileStall: return "tile.stall";
    case FaultSite::kCmemMapFail: return "cmem.map_fail";
    case FaultSite::kHeapCap: return "heap.cap";
    case FaultSite::kShardStall: return "shard.stall";
    case FaultSite::kShardCrash: return "shard.crash";
    case FaultSite::kReplicaFlap: return "replica.flap";
  }
  return "unknown";
}

bool FaultPlan::empty() const noexcept {
  return udn_drop_rate == 0.0 && udn_corrupt_rate == 0.0 &&
         udn_delay_rate == 0.0 && dma_stall_rate == 0.0 &&
         dma_desc_fail_rate == 0.0 && tile_stall_rate == 0.0 &&
         cmem_map_fail_rate == 0.0 && heap_cap_bytes == 0 &&
         shard_stall_rate == 0.0 && shard_crash_rate == 0.0 &&
         replica_flap_rate == 0.0;
}

namespace {

[[noreturn]] void bad_spec(const std::string& entry, const char* why) {
  throw std::invalid_argument("FaultPlan::parse: bad entry '" + entry +
                              "': " + why);
}

double parse_rate(const std::string& entry, const std::string& text) {
  std::size_t used = 0;
  double rate = 0.0;
  try {
    rate = std::stod(text, &used);
  } catch (const std::exception&) {
    bad_spec(entry, "expected a rate in [0,1]");
  }
  // The in-range comparison must be written positively: "nan" parses and
  // compares false against both bounds, so `rate < 0 || rate > 1` lets a
  // NaN rate through into every later verdict hash.
  if (used != text.size() || !(rate >= 0.0 && rate <= 1.0)) {
    bad_spec(entry, "expected a rate in [0,1]");
  }
  return rate;
}

std::uint64_t parse_u64(const std::string& entry, const std::string& text) {
  // std::stoull accepts "-50" and wraps it to a huge unsigned value — a
  // negative magnitude must be a spec error, not a ~2^64 ps stall.
  if (text.find('-') != std::string::npos) {
    bad_spec(entry, "expected a non-negative integer");
  }
  std::size_t used = 0;
  unsigned long long v = 0;
  try {
    v = std::stoull(text, &used);
  } catch (const std::exception&) {
    bad_spec(entry, "expected a non-negative integer");
  }
  if (used != text.size()) bad_spec(entry, "expected a non-negative integer");
  return static_cast<std::uint64_t>(v);
}

/// Splits "rate:ps" into its two halves; ps defaults to `fallback_ps` when
/// the entry is a bare rate.
void parse_rate_ps(const std::string& entry, const std::string& text,
                   double& rate, ps_t& ps, ps_t fallback_ps) {
  const std::size_t colon = text.find(':');
  if (colon == std::string::npos) {
    rate = parse_rate(entry, text);
    ps = fallback_ps;
    return;
  }
  rate = parse_rate(entry, text.substr(0, colon));
  ps = static_cast<ps_t>(parse_u64(entry, text.substr(colon + 1)));
}

}  // namespace

FaultPlan FaultPlan::parse(const std::string& spec) {
  FaultPlan plan;
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string entry = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (entry.empty()) continue;
    const std::size_t eq = entry.find('=');
    if (eq == std::string::npos) bad_spec(entry, "missing '='");
    const std::string key = entry.substr(0, eq);
    const std::string value = entry.substr(eq + 1);
    if (key == "seed") {
      plan.seed = parse_u64(entry, value);
    } else if (key == "udn_drop") {
      plan.udn_drop_rate = parse_rate(entry, value);
    } else if (key == "udn_corrupt") {
      plan.udn_corrupt_rate = parse_rate(entry, value);
    } else if (key == "udn_delay") {
      parse_rate_ps(entry, value, plan.udn_delay_rate, plan.udn_delay_ps,
                    plan.udn_delay_ps);
    } else if (key == "udn_retries") {
      plan.udn_max_retries = static_cast<int>(parse_u64(entry, value));
    } else if (key == "udn_backoff") {
      plan.udn_backoff_base_ps = static_cast<ps_t>(parse_u64(entry, value));
    } else if (key == "dma_stall") {
      parse_rate_ps(entry, value, plan.dma_stall_rate, plan.dma_stall_ps,
                    plan.dma_stall_ps);
    } else if (key == "dma_fail") {
      plan.dma_desc_fail_rate = parse_rate(entry, value);
    } else if (key == "tile_stall") {
      parse_rate_ps(entry, value, plan.tile_stall_rate, plan.tile_stall_ps,
                    plan.tile_stall_ps);
    } else if (key == "cmem_fail") {
      plan.cmem_map_fail_rate = parse_rate(entry, value);
    } else if (key == "heap_cap") {
      plan.heap_cap_bytes = static_cast<std::size_t>(parse_u64(entry, value));
    } else if (key == "shard_stall") {
      parse_rate_ps(entry, value, plan.shard_stall_rate, plan.shard_stall_ps,
                    plan.shard_stall_ps);
    } else if (key == "shard_stall_shard") {
      plan.shard_stall_shard = static_cast<int>(parse_u64(entry, value));
    } else if (key == "shard_crash") {
      plan.shard_crash_rate = parse_rate(entry, value);
    } else if (key == "shard_crash_shard") {
      plan.shard_crash_shard = static_cast<int>(parse_u64(entry, value));
    } else if (key == "replica_flap") {
      parse_rate_ps(entry, value, plan.replica_flap_rate,
                    plan.replica_flap_down_ps, plan.replica_flap_down_ps);
    } else if (key == "replica_flap_shard") {
      plan.replica_flap_shard = static_cast<int>(parse_u64(entry, value));
    } else {
      bad_spec(entry, "unknown key");
    }
  }
  return plan;
}

std::string FaultPlan::describe() const {
  std::ostringstream os;
  os << "seed=" << seed;
  if (udn_drop_rate > 0) os << ",udn_drop=" << udn_drop_rate;
  if (udn_corrupt_rate > 0) os << ",udn_corrupt=" << udn_corrupt_rate;
  if (udn_delay_rate > 0) {
    os << ",udn_delay=" << udn_delay_rate << ":" << udn_delay_ps;
  }
  if (dma_stall_rate > 0) {
    os << ",dma_stall=" << dma_stall_rate << ":" << dma_stall_ps;
  }
  if (dma_desc_fail_rate > 0) os << ",dma_fail=" << dma_desc_fail_rate;
  if (tile_stall_rate > 0) {
    os << ",tile_stall=" << tile_stall_rate << ":" << tile_stall_ps;
  }
  if (cmem_map_fail_rate > 0) os << ",cmem_fail=" << cmem_map_fail_rate;
  if (heap_cap_bytes > 0) os << ",heap_cap=" << heap_cap_bytes;
  if (shard_stall_rate > 0) {
    os << ",shard_stall=" << shard_stall_rate << ":" << shard_stall_ps;
    if (shard_stall_shard >= 0) {
      os << ",shard_stall_shard=" << shard_stall_shard;
    }
  }
  if (shard_crash_rate > 0) {
    os << ",shard_crash=" << shard_crash_rate;
    if (shard_crash_shard >= 0) {
      os << ",shard_crash_shard=" << shard_crash_shard;
    }
  }
  if (replica_flap_rate > 0) {
    os << ",replica_flap=" << replica_flap_rate << ":"
       << replica_flap_down_ps;
    if (replica_flap_shard >= 0) {
      os << ",replica_flap_shard=" << replica_flap_shard;
    }
  }
  if (empty()) os << " (empty)";
  return os.str();
}

bool FaultEngine::decide(FaultSite site, int tile, double rate,
                         std::uint64_t n) const noexcept {
  if (rate <= 0.0) return false;
  // Mix (seed, site, tile, ordinal) into one word, then run it through
  // SplitMix64's finalizer for avalanche. Stateless: no stream to race on.
  std::uint64_t h = plan_.seed;
  h ^= (static_cast<std::uint64_t>(site) + 1) * 0x9e3779b97f4a7c15ULL;
  h ^= (static_cast<std::uint64_t>(tile) + 1) * 0xbf58476d1ce4e5b9ULL;
  h ^= (n + 1) * 0x94d049bb133111ebULL;
  tshmem_util::SplitMix64 sm{h};
  const double u = static_cast<double>(sm.next() >> 11) * 0x1.0p-53;
  return u < rate;
}

std::uint64_t FaultEngine::next_opportunity(FaultSite site,
                                            int tile) noexcept {
  auto& cell =
      counters_[static_cast<std::size_t>(site)]
               [static_cast<std::size_t>(tile) % kMaxTiles];
  return cell.fetch_add(1, std::memory_order_relaxed);
}

void FaultEngine::record(FaultSite site, int tile, std::uint64_t seq,
                         ps_t vt_ps) {
  event_count_.fetch_add(1, std::memory_order_relaxed);
  std::scoped_lock lk(log_mu_);
  log_.push_back(FaultEvent{site, tile, seq, vt_ps});
}

FaultEngine::UdnDecision FaultEngine::udn_attempt(int tile, ps_t now_ps) {
  UdnDecision d;
  // Each attempt consumes one opportunity at each UDN site so the ordinal
  // streams stay aligned with program order even when one site fires.
  const std::uint64_t n_drop = next_opportunity(FaultSite::kUdnDrop, tile);
  const std::uint64_t n_corrupt =
      next_opportunity(FaultSite::kUdnCorrupt, tile);
  const std::uint64_t n_delay = next_opportunity(FaultSite::kUdnDelay, tile);
  if (decide(FaultSite::kUdnDrop, tile, plan_.udn_drop_rate, n_drop)) {
    record(FaultSite::kUdnDrop, tile, n_drop, now_ps);
    d.verdict = UdnVerdict::kDrop;
    return d;
  }
  if (decide(FaultSite::kUdnCorrupt, tile, plan_.udn_corrupt_rate,
             n_corrupt)) {
    record(FaultSite::kUdnCorrupt, tile, n_corrupt, now_ps);
    d.verdict = UdnVerdict::kCorrupt;
    return d;
  }
  if (decide(FaultSite::kUdnDelay, tile, plan_.udn_delay_rate, n_delay)) {
    record(FaultSite::kUdnDelay, tile, n_delay, now_ps);
    d.delay_ps = plan_.udn_delay_ps;
  }
  return d;
}

ps_t FaultEngine::dma_stall(int tile, ps_t now_ps) {
  const std::uint64_t n = next_opportunity(FaultSite::kDmaStall, tile);
  if (!decide(FaultSite::kDmaStall, tile, plan_.dma_stall_rate, n)) return 0;
  record(FaultSite::kDmaStall, tile, n, now_ps);
  return plan_.dma_stall_ps;
}

bool FaultEngine::dma_desc_fails(int tile, ps_t now_ps) {
  const std::uint64_t n = next_opportunity(FaultSite::kDmaDescFail, tile);
  if (!decide(FaultSite::kDmaDescFail, tile, plan_.dma_desc_fail_rate, n)) {
    return false;
  }
  record(FaultSite::kDmaDescFail, tile, n, now_ps);
  return true;
}

ps_t FaultEngine::tile_stall(int tile, ps_t now_ps) {
  const std::uint64_t n = next_opportunity(FaultSite::kTileStall, tile);
  if (!decide(FaultSite::kTileStall, tile, plan_.tile_stall_rate, n)) {
    return 0;
  }
  record(FaultSite::kTileStall, tile, n, now_ps);
  return plan_.tile_stall_ps;
}

bool FaultEngine::cmem_map_fails(int tile, ps_t now_ps) {
  const std::uint64_t n = next_opportunity(FaultSite::kCmemMapFail, tile);
  if (!decide(FaultSite::kCmemMapFail, tile, plan_.cmem_map_fail_rate, n)) {
    return false;
  }
  record(FaultSite::kCmemMapFail, tile, n, now_ps);
  return true;
}

ps_t FaultEngine::shard_stall(int shard, ps_t now_ps) {
  // Targeted plans still consume an ordinal per opportunity on every shard
  // so decision streams stay aligned when the target changes.
  const std::uint64_t n = next_opportunity(FaultSite::kShardStall, shard);
  if (plan_.shard_stall_shard >= 0 && shard != plan_.shard_stall_shard) {
    return 0;
  }
  if (!decide(FaultSite::kShardStall, shard, plan_.shard_stall_rate, n)) {
    return 0;
  }
  record(FaultSite::kShardStall, shard, n, now_ps);
  return plan_.shard_stall_ps;
}

bool FaultEngine::shard_crash(int replica, ps_t now_ps) {
  // Like shard_stall: targeted plans still consume an ordinal on every
  // replica so decision streams stay aligned when the target changes.
  const std::uint64_t n = next_opportunity(FaultSite::kShardCrash, replica);
  if (plan_.shard_crash_shard >= 0 && replica != plan_.shard_crash_shard) {
    return false;
  }
  if (!decide(FaultSite::kShardCrash, replica, plan_.shard_crash_rate, n)) {
    return false;
  }
  record(FaultSite::kShardCrash, replica, n, now_ps);
  return true;
}

ps_t FaultEngine::replica_flap(int replica, ps_t now_ps) {
  const std::uint64_t n = next_opportunity(FaultSite::kReplicaFlap, replica);
  if (plan_.replica_flap_shard >= 0 &&
      replica != plan_.replica_flap_shard) {
    return 0;
  }
  if (!decide(FaultSite::kReplicaFlap, replica, plan_.replica_flap_rate,
              n)) {
    return 0;
  }
  record(FaultSite::kReplicaFlap, replica, n, now_ps);
  return plan_.replica_flap_down_ps;
}

void FaultEngine::note_heap_cap_denial(int tile, ps_t now_ps) {
  const std::uint64_t n = next_opportunity(FaultSite::kHeapCap, tile);
  record(FaultSite::kHeapCap, tile, n, now_ps);
}

std::vector<FaultEvent> FaultEngine::events() const {
  std::vector<FaultEvent> out;
  {
    std::scoped_lock lk(log_mu_);
    out = log_;
  }
  std::sort(out.begin(), out.end(),
            [](const FaultEvent& a, const FaultEvent& b) {
              if (a.site != b.site) return a.site < b.site;
              if (a.tile != b.tile) return a.tile < b.tile;
              return a.seq < b.seq;
            });
  return out;
}

std::uint64_t FaultEngine::event_count() const {
  return event_count_.load(std::memory_order_relaxed);
}

}  // namespace tilesim
