// Observer interface for the virtual-time flight recorder (ISSUE 9
// tentpole).
//
// Mirrors the ProfileSink attachment pattern (sim/profile_hook.hpp): the
// interface lives in sim — the bottom layer — so tmc, tshmem and svc can
// report events without an upward dependency, while the only implementation
// (obs::FlightRecorder, src/obs/flightrec.hpp) lives above.
//
// Contract: callbacks must never advance a SimClock (the bit-identical
// recorder-on/off contract, CI-enforced like metrics/profiler/tshmem-check),
// and every event for one tile is reported from that tile's own thread in
// program order, stamped with that tile's own clock — which is what makes
// ring contents deterministic across host schedules. on_clock_reset is only
// invoked from the single-threaded safe points reset_clocks() already
// requires, so the sink may read every tile's clock there to fold the
// finished epoch into its timeline.
//
// Call sites outside src/obs/ must go through flight_event() below (or the
// obs::fr_record/ts_add/ts_sample helpers) — the sanctioned entry points
// lint rule R006 audits (tools/tshmem_lint.py).
#pragma once

#include <cstdint>

#include "sim/device.hpp"

namespace tilesim {

/// Compact taxonomy of a flight-recorder event: what a PE was doing.
enum class FlightKind : std::uint8_t {
  kPut = 0,       ///< blocking shmem_put family
  kGet,           ///< blocking shmem_get family
  kPutNbi,        ///< non-blocking put issue
  kGetNbi,        ///< non-blocking get issue
  kQuiet,         ///< shmem_quiet completion
  kFence,         ///< shmem_fence
  kBarrier,       ///< shmem_barrier / barrier_all exit
  kBroadcast,     ///< broadcast collective exit
  kCollect,       ///< collect / fcollect exit
  kReduce,        ///< reduction exit
  kAtomic,        ///< atomic memory operation
  kLock,          ///< set/clear/test lock completion
  kAlloc,         ///< shmalloc / shrealloc / shmemalign
  kFree,          ///< shfree
  kCtrlSend,      ///< TSHMEM control-message send
  kCtrlRecv,      ///< TSHMEM control-message consume (tag-matched)
  kWaitBegin,     ///< entered a bounded blocking wait (guarded_wait/spin)
  kWaitEnd,       ///< left a bounded blocking wait
  kUdnSend,       ///< UDN packet injected
  kUdnRecv,       ///< UDN packet consumed (clock-advancing receive)
  kDmaIssue,      ///< DMA descriptor posted
  kDmaDrain,      ///< DMA queue drained (quiet)
  kFaultRetry,    ///< recovery retry (UDN backoff, cmem remap, ...)
  kError,         ///< structured tshmem::Error raised at this PE
  kSvcArrival,    ///< serving: query arrived
  kSvcComplete,   ///< serving: query completed
  kSvcShed,       ///< serving: query shed
  kSvcDegraded,   ///< serving: shard marked degraded
  kSvcRecovered,  ///< serving: shard recovered
  kSvcBatch,      ///< serving: batch dispatched to a shard
  kSvcCrash,      ///< serving: replica died (kShardCrash / kReplicaFlap)
  kSvcFailover,   ///< serving: queries moved to a surviving replica
  kSvcFailback,   ///< serving: a primary replica resumed serving
  kSvcDeadlineDrop,  ///< serving: admission control dropped a query
};

inline constexpr int kFlightKindCount = 34;

[[nodiscard]] constexpr const char* fr_kind_name(FlightKind k) noexcept {
  switch (k) {
    case FlightKind::kPut: return "put";
    case FlightKind::kGet: return "get";
    case FlightKind::kPutNbi: return "put_nbi";
    case FlightKind::kGetNbi: return "get_nbi";
    case FlightKind::kQuiet: return "quiet";
    case FlightKind::kFence: return "fence";
    case FlightKind::kBarrier: return "barrier";
    case FlightKind::kBroadcast: return "broadcast";
    case FlightKind::kCollect: return "collect";
    case FlightKind::kReduce: return "reduce";
    case FlightKind::kAtomic: return "atomic";
    case FlightKind::kLock: return "lock";
    case FlightKind::kAlloc: return "alloc";
    case FlightKind::kFree: return "free";
    case FlightKind::kCtrlSend: return "ctrl_send";
    case FlightKind::kCtrlRecv: return "ctrl_recv";
    case FlightKind::kWaitBegin: return "wait_begin";
    case FlightKind::kWaitEnd: return "wait_end";
    case FlightKind::kUdnSend: return "udn_send";
    case FlightKind::kUdnRecv: return "udn_recv";
    case FlightKind::kDmaIssue: return "dma_issue";
    case FlightKind::kDmaDrain: return "dma_drain";
    case FlightKind::kFaultRetry: return "fault_retry";
    case FlightKind::kError: return "error";
    case FlightKind::kSvcArrival: return "svc_arrival";
    case FlightKind::kSvcComplete: return "svc_complete";
    case FlightKind::kSvcShed: return "svc_shed";
    case FlightKind::kSvcDegraded: return "svc_degraded";
    case FlightKind::kSvcRecovered: return "svc_recovered";
    case FlightKind::kSvcBatch: return "svc_batch";
    case FlightKind::kSvcCrash: return "svc_crash";
    case FlightKind::kSvcFailover: return "svc_failover";
    case FlightKind::kSvcFailback: return "svc_failback";
    case FlightKind::kSvcDeadlineDrop: return "svc_deadline_drop";
  }
  return "?";
}

class FlightSink {
 public:
  virtual ~FlightSink() = default;

  /// Tile `tile` performed `kind` at site `site` (static string, stored by
  /// pointer) at virtual time `vt` (epoch-local; the sink folds epochs).
  /// `peer` is the remote PE involved (-1 when none), `bytes` the payload
  /// size (or a kind-specific count), `errc` a tshmem::Errc value (0 = ok).
  virtual void on_event(int tile, FlightKind kind, const char* site, ps_t vt,
                        int peer, std::uint64_t bytes, int errc) = 0;

  /// All tile clocks are about to reset to zero (epoch boundary). Invoked
  /// single-threaded before the reset, so current clock values are final.
  virtual void on_clock_reset() = 0;
};

/// Null-safe sanctioned entry point: zero-cost (one pointer load) when no
/// recorder is attached. The site string must be static.
inline void flight_event(const Device& device, int tile, FlightKind kind,
                         const char* site, ps_t vt, int peer = -1,
                         std::uint64_t bytes = 0, int errc = 0) {
  if (FlightSink* sink = device.flight(); sink != nullptr) {
    sink->on_event(tile, kind, site, vt, peer, bytes, errc);
  }
}

}  // namespace tilesim
