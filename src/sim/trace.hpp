// Virtual-time event tracing.
//
// A TraceRecorder attached to a Device collects per-tile timeline events
// (compute charges, modeled copies, message receives, and custom spans in
// application code) in virtual device time. Benches and examples can dump
// the merged timeline as CSV for offline visualization — the equivalent of
// the per-tile state trackers Tilera's Eclipse IDE provided (paper §III).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace tilesim {

using tshmem_util::ps_t;

enum class TraceKind : std::uint8_t {
  kCompute,
  kCopy,
  kMessage,
  kBarrier,
  kCollective,
  kCustom,
};

[[nodiscard]] const char* to_string(TraceKind kind) noexcept;

/// RFC 4180 field escaping used by dump_csv (exposed for tests).
[[nodiscard]] std::string csv_escape(const std::string& field);

struct TraceEvent {
  int tile = 0;
  TraceKind kind = TraceKind::kCustom;
  ps_t begin_ps = 0;
  ps_t end_ps = 0;
  std::string label;
};

class TraceRecorder {
 public:
  explicit TraceRecorder(int tiles);

  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void record(int tile, TraceKind kind, ps_t begin, ps_t end,
              std::string label = {});

  /// All events across tiles, sorted by (begin, tile).
  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t event_count() const;
  void clear();

  /// CSV: tile,kind,begin_ps,end_ps,duration_ps,label. Fields containing
  /// commas/quotes/newlines are quoted per RFC 4180.
  void dump_csv(std::ostream& os) const;

 private:
  struct PerTile {
    mutable std::mutex mu;
    std::vector<TraceEvent> events;
  };
  std::vector<std::unique_ptr<PerTile>> tiles_;
};

/// RAII span: records [entry clock, exit clock] of a scope against a
/// recorder (used by application code for phase annotation).
class TraceSpan {
 public:
  TraceSpan(TraceRecorder* recorder, int tile, const class SimClock& clock,
            TraceKind kind, std::string label);
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

 private:
  TraceRecorder* recorder_;
  int tile_;
  const SimClock* clock_;
  TraceKind kind_;
  std::string label_;
  ps_t begin_;
};

}  // namespace tilesim
