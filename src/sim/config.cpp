#include "sim/config.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace tilesim {

BandwidthCurve::BandwidthCurve(std::vector<Anchor> anchors)
    : anchors_(std::move(anchors)) {
  if (anchors_.empty()) {
    throw std::invalid_argument("BandwidthCurve needs at least one anchor");
  }
  for (std::size_t i = 1; i < anchors_.size(); ++i) {
    if (anchors_[i].size_bytes <= anchors_[i - 1].size_bytes) {
      throw std::invalid_argument("BandwidthCurve anchors must be increasing");
    }
  }
  for (const auto& a : anchors_) {
    if (a.mbps <= 0.0) {
      throw std::invalid_argument("BandwidthCurve anchors must be positive");
    }
  }
}

double BandwidthCurve::mbps(std::size_t size) const noexcept {
  if (anchors_.empty()) return 0.0;
  if (size <= anchors_.front().size_bytes) return anchors_.front().mbps;
  if (size >= anchors_.back().size_bytes) return anchors_.back().mbps;
  // Find the bracketing anchors and interpolate linearly in log2(size):
  // cache-transition behaviour is close to linear on a log-size axis, which
  // matches how Fig 3 is plotted.
  auto it = std::upper_bound(
      anchors_.begin(), anchors_.end(), size,
      [](std::size_t s, const Anchor& a) { return s < a.size_bytes; });
  const Anchor& hi = *it;
  const Anchor& lo = *(it - 1);
  const double x = std::log2(static_cast<double>(size));
  const double x0 = std::log2(static_cast<double>(lo.size_bytes));
  const double x1 = std::log2(static_cast<double>(hi.size_bytes));
  const double t = (x - x0) / (x1 - x0);
  return lo.mbps + t * (hi.mbps - lo.mbps);
}

ContentionCurve::ContentionCurve(std::vector<Point> points)
    : points_(std::move(points)) {
  if (points_.empty()) {
    throw std::invalid_argument("ContentionCurve needs at least one point");
  }
  for (std::size_t i = 1; i < points_.size(); ++i) {
    if (points_[i].concurrency <= points_[i - 1].concurrency) {
      throw std::invalid_argument("ContentionCurve points must be increasing");
    }
  }
  for (const auto& p : points_) {
    if (p.efficiency <= 0.0 || p.efficiency > 1.0) {
      throw std::invalid_argument("ContentionCurve efficiency must be (0, 1]");
    }
  }
}

double ContentionCurve::efficiency(int concurrency) const noexcept {
  if (points_.empty()) return 1.0;
  if (concurrency <= points_.front().concurrency) {
    return points_.front().efficiency;
  }
  if (concurrency >= points_.back().concurrency) {
    return points_.back().efficiency;
  }
  auto it = std::upper_bound(
      points_.begin(), points_.end(), concurrency,
      [](int c, const Point& p) { return c < p.concurrency; });
  const Point& hi = *it;
  const Point& lo = *(it - 1);
  const double t = static_cast<double>(concurrency - lo.concurrency) /
                   static_cast<double>(hi.concurrency - lo.concurrency);
  return lo.efficiency + t * (hi.efficiency - lo.efficiency);
}

namespace {

// ---------------------------------------------------------------------------
// TILE-Gx8036 calibration.
//
// Bandwidth anchors follow Fig 3's description: ~3100 MB/s plateau through
// the 32 kB L1d, 1900–2700 MB/s through the 256 kB L2, a DDC region falling
// from ~1000 MB/s past 1 MB, converging at 320 MB/s memory-to-memory.
// ---------------------------------------------------------------------------
DeviceConfig make_gx36() {
  DeviceConfig c;
  c.name = "TILE-Gx8036";
  c.short_name = "gx36";
  c.mesh_width = 6;
  c.mesh_height = 6;
  c.word_bytes = 8;
  c.clock_ghz = 1.0;
  c.l1i_bytes = 32 * 1024;
  c.l1d_bytes = 32 * 1024;
  c.l2_bytes = 256 * 1024;
  c.ddr_controllers = 2;
  c.mem_bw_gbps = 500.0;
  c.mesh_bw_tbps = 60.0;
  c.power_watts_lo = 10.0;
  c.power_watts_hi = 55.0;
  c.has_mpipe = true;
  c.has_mica = true;
  c.supports_udn_interrupts = true;
  c.has_stn = false;  // the Gx replaced the STN with a fifth dynamic network

  c.udn_setup_teardown_ps = 21'000;  // ~21 ns derived in paper §III-C
  c.udn_rx_overhead_ps = 0;

  c.bw_shared_to_shared = BandwidthCurve({
      {8, 95},          {32, 350},        {128, 1000},
      {512, 2000},      {2048, 2700},     {8192, 3050},
      {32768, 3100},    // L1d capacity: first transition
      {65536, 2700},    {131072, 2400},
      {262144, 1900},   // L2 capacity: second transition
      {524288, 1400},
      {1048576, 1000},  // DDC region: third transition
      {2097152, 700},   {4194304, 500},   {8388608, 390},
      {16777216, 340},  {67108864, 320},  // memory-to-memory limit
  });
  // Private heap pages are locally homed by default: marginally better hit
  // latency at cache-resident sizes, identical once DRAM-bound.
  c.bw_private_to_shared = BandwidthCurve({
      {8, 100},         {32, 370},        {128, 1050},
      {512, 2100},      {2048, 2850},     {8192, 3200},
      {32768, 3250},    {65536, 2800},    {131072, 2480},
      {262144, 1950},   {524288, 1430},   {1048576, 1010},
      {2097152, 700},   {4194304, 500},   {8388608, 390},
      {16777216, 340},  {67108864, 320},
  });
  c.bw_shared_to_private = c.bw_private_to_shared;
  c.bw_private_to_private = BandwidthCurve({
      {8, 110},         {32, 400},        {128, 1150},
      {512, 2300},      {2048, 3000},     {8192, 3400},
      {32768, 3450},    {65536, 2950},    {131072, 2600},
      {262144, 2050},   {524288, 1500},   {1048576, 1050},
      {2097152, 720},   {4194304, 510},   {8388608, 395},
      {16777216, 345},  {67108864, 325},
  });
  c.copy_call_overhead_ps = 60'000;  // 60 ns fixed memcpy entry cost

  c.local_homing_small_boost = 1.12;
  c.local_homing_large_penalty = 0.55;  // local homing loses the DDC
  c.remote_homing_factor = 0.92;

  // Read contention calibrated against Fig 10: aggregate pull-broadcast
  // bandwidth peaks at 46 GB/s @ 29 tiles and drops to 37 GB/s @ 36.
  c.read_contention = ContentionCurve({
      {1, 1.00}, {2, 0.95}, {4, 0.88}, {8, 0.78}, {16, 0.62},
      {24, 0.55}, {29, 0.51}, {32, 0.40}, {36, 0.33},
  });
  c.write_contention = ContentionCurve({
      {1, 1.00}, {2, 0.92}, {4, 0.82}, {8, 0.70}, {16, 0.55},
      {24, 0.47}, {29, 0.42}, {32, 0.35}, {36, 0.30},
  });

  // Fig 5 anchors: spin 1.5 us @ 36 tiles, sync 321 us @ 36 tiles.
  c.barrier.spin_base_ps = 150'000;
  c.barrier.spin_per_tile_ps = 37'500;
  c.barrier.sync_base_ps = 500'000;
  c.barrier.sync_per_tile_ps = 8'900'000;

  c.shmem_call_overhead_ps = 40'000;
  c.interrupt_dispatch_ps = 1'500'000;
  c.interrupt_service_ps = 800'000;
  c.bounce_alloc_ps = 2'000'000;
  c.barrier_forward_ps = 30'000;

  // mPIPE eDMA/iDMA offload: posting a descriptor costs a handful of
  // stores into the ring; the engine itself pays a fetch+arm latency
  // before data starts moving.
  c.dma_issue_ps = 25'000;   // ~25 ns descriptor post
  c.dma_setup_ps = 150'000;  // ~150 ns engine fetch + channel arm

  c.compute.int_op_ps = 1'000;   // 1 cycle @ 1 GHz
  c.compute.fp_op_ps = 9'000;    // assisted soft-float: ~9 cycles per flop
  c.compute.mem_op_ps = 2'000;
  c.compute.call_ps = 5'000;
  return c;
}

// ---------------------------------------------------------------------------
// TILEPro64 calibration.
//
// Fig 3: ~500 MB/s through the cache-resident sizes, decreasing to a
// 370 MB/s memory-to-memory limit (faster than the Gx's 320 MB/s — the one
// crossover the paper calls out).
// ---------------------------------------------------------------------------
DeviceConfig make_pro64() {
  DeviceConfig c;
  c.name = "TILEPro64";
  c.short_name = "pro64";
  c.mesh_width = 8;
  c.mesh_height = 8;
  c.word_bytes = 4;
  c.clock_ghz = 0.7;
  c.l1i_bytes = 16 * 1024;
  c.l1d_bytes = 8 * 1024;
  c.l2_bytes = 64 * 1024;
  c.ddr_controllers = 4;
  c.mem_bw_gbps = 200.0;
  c.mesh_bw_tbps = 37.0;
  c.power_watts_lo = 19.0;
  c.power_watts_hi = 23.0;
  c.has_mpipe = false;
  c.has_mica = false;
  c.supports_udn_interrupts = false;  // paper §IV-B2: no UDN interrupts
  c.has_stn = true;          // one developer-defined static network (§II-C)
  c.stn_setup_ps = 4'300;    // ~3 cycles: no per-packet route computation

  c.udn_setup_teardown_ps = 18'000;  // ~18 ns derived in paper §III-C
  c.udn_rx_overhead_ps = 0;
  c.udn_dir_bias_ps[2] = -1'000;  // up: Table III shows vertical ~1 ns faster
  c.udn_dir_bias_ps[3] = -1'000;  // down
  c.udn_turn_ps = 1'000;          // corner routes land at ~33 ns

  c.bw_shared_to_shared = BandwidthCurve({
      {8, 45},         {32, 160},       {128, 320},
      {512, 430},      {2048, 490},     {8192, 510},   // L1d (8 kB)
      {65536, 500},    // L2 capacity (64 kB)
      {262144, 490},   {524288, 470},   {1048576, 450},
      {2097152, 420},  {4194304, 400},  {8388608, 385},
      {16777216, 375}, {67108864, 370},  // memory-to-memory limit
  });
  c.bw_private_to_shared = BandwidthCurve({
      {8, 48},         {32, 170},       {128, 335},
      {512, 450},      {2048, 505},     {8192, 525},
      {65536, 512},    {262144, 498},   {524288, 476},
      {1048576, 455},  {2097152, 424},  {4194304, 403},
      {8388608, 388},  {16777216, 377}, {67108864, 371},
  });
  c.bw_shared_to_private = c.bw_private_to_shared;
  c.bw_private_to_private = BandwidthCurve({
      {8, 52},         {32, 180},       {128, 350},
      {512, 465},      {2048, 520},     {8192, 540},
      {65536, 525},    {262144, 505},   {524288, 480},
      {1048576, 460},  {2097152, 428},  {4194304, 405},
      {8388608, 390},  {16777216, 378}, {67108864, 372},
  });
  c.copy_call_overhead_ps = 80'000;

  c.local_homing_small_boost = 1.08;
  c.local_homing_large_penalty = 0.70;
  c.remote_homing_factor = 0.90;

  // Fig 10: pull-broadcast aggregate peaks at 5.1 GB/s @ 36 tiles.
  c.read_contention = ContentionCurve({
      {1, 1.00}, {2, 0.95}, {4, 0.85}, {8, 0.70}, {16, 0.50},
      {32, 0.30}, {36, 0.28}, {64, 0.20},
  });
  c.write_contention = ContentionCurve({
      {1, 1.00}, {2, 0.90}, {4, 0.78}, {8, 0.62}, {16, 0.44},
      {32, 0.27}, {36, 0.25}, {64, 0.18},
  });

  // Fig 5 anchors: spin 47.2 us @ 36 tiles, sync 786 us @ 36 tiles.
  c.barrier.spin_base_ps = 400'000;
  c.barrier.spin_per_tile_ps = 1'300'000;
  c.barrier.sync_base_ps = 4'600'000;
  c.barrier.sync_per_tile_ps = 21'700'000;

  c.shmem_call_overhead_ps = 55'000;
  c.interrupt_dispatch_ps = 0;  // unsupported
  c.interrupt_service_ps = 0;
  c.bounce_alloc_ps = 2'800'000;
  c.barrier_forward_ps = 24'000;

  // No mPIPE on the TILEPro: non-blocking transfers ride the TILE's
  // memory-to-memory DMA hardware, with a slower (700 MHz, narrower
  // descriptor format) post and arm sequence.
  c.dma_issue_ps = 35'000;   // ~35 ns descriptor post
  c.dma_setup_ps = 400'000;  // ~400 ns channel arm

  c.compute.int_op_ps = 1'429;   // 1 cycle @ 700 MHz
  c.compute.fp_op_ps = 90'000;   // pure software floating point: ~10x Gx
  c.compute.mem_op_ps = 2'857;
  c.compute.call_ps = 7'143;
  return c;
}

}  // namespace

const DeviceConfig& tile_gx36() {
  static const DeviceConfig cfg = make_gx36();
  return cfg;
}

const DeviceConfig& tile_pro64() {
  static const DeviceConfig cfg = make_pro64();
  return cfg;
}

const DeviceConfig& device_by_name(const std::string& short_name) {
  if (short_name == "gx36" || short_name == "gx" ||
      short_name == "tile-gx8036") {
    return tile_gx36();
  }
  if (short_name == "pro64" || short_name == "pro" ||
      short_name == "tilepro64") {
    return tile_pro64();
  }
  throw std::invalid_argument("unknown device '" + short_name +
                              "' (expected gx36 or pro64)");
}

std::vector<const DeviceConfig*> all_devices() {
  return {&tile_gx36(), &tile_pro64()};
}

}  // namespace tilesim
