// Simulated device runtime: a mesh of tiles, each driven by one host
// thread. Real data lives in ordinary process memory; the Tile's SimClock
// carries the modeled device time.
#pragma once

#include <barrier>
#include <cstddef>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/cache_sim.hpp"
#include "sim/clock.hpp"
#include "sim/config.hpp"
#include "sim/dma.hpp"
#include "sim/fault.hpp"
#include "sim/mem_model.hpp"
#include "sim/topology.hpp"
#include "sim/trace.hpp"

namespace tilesim {

class Device;
class SyncObserver;  // sim/sync_observer.hpp
class ProfileSink;   // sim/profile_hook.hpp
class FlightSink;    // sim/flight_hook.hpp

/// One tile of the mesh. Owned by Device; bound 1:1 to a host thread for
/// the duration of a Device::run() call.
class Tile {
 public:
  Tile(Device& device, int id);

  Tile(const Tile&) = delete;
  Tile& operator=(const Tile&) = delete;

  [[nodiscard]] int id() const noexcept { return id_; }
  [[nodiscard]] Device& device() const noexcept { return *device_; }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] const SimClock& clock() const noexcept { return clock_; }

  /// Charge compute-model costs to this tile's clock.
  void charge_int_ops(std::uint64_t n);
  void charge_fp_ops(std::uint64_t n);
  void charge_mem_ops(std::uint64_t n);
  void charge_calls(std::uint64_t n);

  /// Charge a modeled memory copy.
  void charge_copy(const CopyRequest& req);

  /// This tile's asynchronous DMA engine (non-blocking TSHMEM transfers).
  [[nodiscard]] DmaEngine& dma() noexcept { return *dma_; }
  [[nodiscard]] const DmaEngine& dma() const noexcept { return *dma_; }

  /// Mechanistic cache probe (metrics only; see Device::enable_cache_probes).
  /// Null unless probes are enabled. Purely observational — it never
  /// contributes to virtual time; the analytic MemModel stays authoritative.
  [[nodiscard]] const CacheSim* cache_probe() const noexcept {
    return probe_.get();
  }

 private:
  friend class Device;

  Device* device_;
  int id_;
  SimClock clock_;
  // Probe state is mutex-guarded because interrupt emulation lets another
  // tile's thread charge copies to this tile (tmc/interrupt.hpp).
  std::mutex probe_mu_;
  std::unique_ptr<CacheSim> probe_;
  std::unique_ptr<DmaEngine> dma_;
  std::uint64_t probe_cursor_ = std::uint64_t{1} << 40;  ///< synthetic addrs
};

/// The whole simulated processor. Construct once per device config; call
/// run() to execute a SPMD function across `active_tiles` tiles.
class Device {
 public:
  explicit Device(const DeviceConfig& cfg);
  ~Device();

  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  [[nodiscard]] const DeviceConfig& config() const noexcept { return *cfg_; }
  [[nodiscard]] const Topology& topology() const noexcept { return topo_; }
  [[nodiscard]] const MemModel& mem_model() const noexcept { return mem_; }

  [[nodiscard]] int tile_count() const noexcept { return cfg_->tile_count(); }
  [[nodiscard]] int active_tiles() const noexcept { return active_tiles_; }

  [[nodiscard]] Tile& tile(int id);
  [[nodiscard]] const Tile& tile(int id) const;

  /// Runs `fn(tile)` on `active_tiles` host threads, one per tile (tiles
  /// 0..active_tiles-1 in *virtual* CPU numbering). Joins all threads and
  /// rethrows the first exception any tile raised. Clocks reset at entry.
  void run(int active_tiles, const std::function<void(Tile&)>& fn);

  /// Harness-level (zero virtual cost) rendezvous of all active tiles.
  /// Valid only inside run().
  void host_sync();

  /// Tile bound to the calling thread, or nullptr outside run().
  [[nodiscard]] static Tile* current() noexcept;

  /// Resets every tile clock to zero. Call only between run()s or from a
  /// single tile after host_sync() (the helper sync_and_reset_clocks does
  /// this safely from inside a run). Also resets each tile's DMA-engine
  /// timeline; throws std::logic_error if any engine still has in-flight
  /// transfers (quiesce before resetting).
  void reset_clocks();

  /// host_sync(); tile 0 resets all clocks; host_sync() again. Benchmarks
  /// use this between measurement phases.
  void sync_and_reset_clocks();

  /// Monotone counter bumped by every reset_clocks(). Components that keep
  /// auxiliary timelines (the interrupt controller's service contexts)
  /// compare it to re-zero themselves lazily at job/phase boundaries.
  [[nodiscard]] std::uint64_t clock_generation() const noexcept {
    return clock_generation_.load(std::memory_order_acquire);
  }

  /// Attach (or detach with nullptr) a virtual-time tracer; compute/copy
  /// charges on every tile are recorded while attached. The recorder must
  /// outlive its attachment and cover tile_count() tiles.
  void attach_tracer(TraceRecorder* tracer) noexcept { tracer_ = tracer; }
  [[nodiscard]] TraceRecorder* tracer() const noexcept { return tracer_; }

  /// Creates one CacheSim per tile and streams every charged copy through
  /// it (metrics instrumentation: per-tile L1/L2/DDC/DRAM hit counts).
  /// Zero virtual-time cost; host-side cost only, so it is opt-in. Idempotent.
  void enable_cache_probes();
  [[nodiscard]] bool cache_probes_enabled() const noexcept {
    return cache_probes_;
  }

  /// Attach (or detach with nullptr) a fault-injection engine. The engine
  /// must outlive its attachment. With no engine attached every hardened
  /// layer takes its zero-cost fast path (same contract as the tracer).
  void attach_fault(FaultEngine* fault) noexcept { fault_ = fault; }
  [[nodiscard]] FaultEngine* fault() const noexcept { return fault_; }

  /// Attach (or detach with nullptr) the blocking-wait watchdog consulted
  /// by UDN receives, barriers, waits, and locks. Must outlive attachment.
  void attach_watchdog(const Watchdog* wd) noexcept { watchdog_ = wd; }
  [[nodiscard]] const Watchdog* watchdog() const noexcept {
    return watchdog_ && watchdog_->enabled() ? watchdog_ : nullptr;
  }

  /// Attach (or detach with nullptr) a rendezvous-synchronization observer
  /// (sim/sync_observer.hpp): the TMC spin/sync barriers report arrival
  /// and release of every participant while attached. Same contract as
  /// the tracer/fault engine: must outlive the attachment, never advances
  /// virtual time, and the nullptr default keeps the fast path zero-cost.
  void attach_sync_observer(SyncObserver* observer) noexcept {
    sync_observer_ = observer;
  }
  [[nodiscard]] SyncObserver* sync_observer() const noexcept {
    return sync_observer_;
  }

  /// Attach (or detach with nullptr) the virtual-time profiler sink
  /// (sim/profile_hook.hpp): span begin/end and wait-for edges are reported
  /// while attached, and reset_clocks() notifies it at every epoch
  /// boundary. Same contract as the tracer/fault engine: must outlive the
  /// attachment, never advances virtual time, and the nullptr default keeps
  /// the fast path zero-cost.
  void attach_profiler(ProfileSink* profiler) noexcept {
    profiler_ = profiler;
  }
  [[nodiscard]] ProfileSink* profiler() const noexcept { return profiler_; }

  /// Attach (or detach with nullptr) the flight-recorder sink
  /// (sim/flight_hook.hpp): instrumented operations report compact event
  /// records while attached, and reset_clocks() notifies it at every epoch
  /// boundary. Also plumbs the sink into each tile's DMA engine (which has
  /// no Device back-pointer). Same contract as the tracer/fault engine:
  /// must outlive the attachment, never advances virtual time, and the
  /// nullptr default keeps the fast path zero-cost.
  void attach_flight(FlightSink* flight) noexcept;
  [[nodiscard]] FlightSink* flight() const noexcept { return flight_; }

 private:
  const DeviceConfig* cfg_;
  Topology topo_;
  MemModel mem_;
  std::vector<std::unique_ptr<Tile>> tiles_;
  std::unique_ptr<std::barrier<>> host_barrier_;
  int active_tiles_ = 0;
  std::vector<std::uint64_t> host_sync_seq_;  // per-tile host_sync phase
  TraceRecorder* tracer_ = nullptr;
  FaultEngine* fault_ = nullptr;
  const Watchdog* watchdog_ = nullptr;
  SyncObserver* sync_observer_ = nullptr;
  ProfileSink* profiler_ = nullptr;
  FlightSink* flight_ = nullptr;
  bool cache_probes_ = false;
  std::atomic<std::uint64_t> clock_generation_{0};
};

}  // namespace tilesim
