// Observer interface for the virtual-time profiler (ISSUE 7 tentpole).
//
// Mirrors the TraceRecorder/FaultEngine/SyncObserver attachment pattern:
// the interface lives in sim — the bottom layer — so tmc and tshmem can
// report spans and wait edges without an upward dependency, while the only
// implementation (obs::Profiler, src/obs/profiler.hpp) lives above.
//
// Contract: callbacks must never advance a SimClock (the bit-identical
// profile-on/off contract, CI-enforced like metrics and tshmem-check), and
// every callback for one tile is invoked from that tile's own thread in
// program order. on_clock_reset is only invoked from the single-threaded
// safe points reset_clocks() already requires (between run()s, or from one
// tile after host_sync), so the sink may read every tile's clock there.
//
// Call sites outside src/obs/ must go through the ProfSpan RAII helper and
// prof_wait_edge() below — the sanctioned entry points lint rule R005
// audits (tools/tshmem_lint.py).
#pragma once

#include <cstdint>

#include "sim/device.hpp"

namespace tilesim {

/// Phase taxonomy of a span / wait edge: where a PE's virtual time goes.
enum class ProfPhase : std::uint8_t {
  kCompute = 0,  ///< residual — time under no instrumented span
  kUdn,          ///< UDN receive / control-message wait
  kDma,          ///< data movement: put/get, NBI issue, quiet drain
  kBarrier,      ///< barrier algorithms (token, broadcast-release, spin)
  kCollective,   ///< broadcast / collect / reduce phases
  kLock,         ///< atomics and OpenSHMEM locks
  kWait,         ///< shmem_wait_until and other guarded waits
};

inline constexpr int kProfPhaseCount = 7;

[[nodiscard]] constexpr const char* prof_phase_name(ProfPhase p) noexcept {
  switch (p) {
    case ProfPhase::kCompute: return "compute";
    case ProfPhase::kUdn: return "udn_wait";
    case ProfPhase::kDma: return "dma";
    case ProfPhase::kBarrier: return "barrier";
    case ProfPhase::kCollective: return "collective";
    case ProfPhase::kLock: return "lock";
    case ProfPhase::kWait: return "guarded_wait";
  }
  return "?";
}

class ProfileSink {
 public:
  virtual ~ProfileSink() = default;

  /// Tile `tile` entered span (`phase`, `site`) at virtual time `now`.
  /// `site` must be a static string (stored by pointer).
  virtual void on_span_begin(int tile, ProfPhase phase, const char* site,
                             ps_t now) = 0;

  /// Tile `tile` left its innermost open span at virtual time `now`.
  virtual void on_span_end(int tile, ps_t now) = 0;

  /// Tile `tile`'s clock jumped from `from_ps` to `to_ps` waiting on a
  /// timestamp produced by `src_tile` (-1 when the producer is unknown,
  /// the tile itself for its own DMA engine). `fallback` classifies the
  /// edge when no span is open on the waiter. Only emitted for real jumps
  /// (to_ps > from_ps).
  virtual void on_wait_edge(int tile, int src_tile, ProfPhase fallback,
                            const char* site, ps_t from_ps, ps_t to_ps) = 0;

  /// All tile clocks are about to reset to zero (epoch boundary). Invoked
  /// single-threaded before the reset, so current clock values are final.
  virtual void on_clock_reset() = 0;
};

/// Null-safe RAII span: zero-cost (one pointer load) when no profiler is
/// attached. The site string must be static.
class ProfSpan {
 public:
  ProfSpan(Tile& tile, ProfPhase phase, const char* site)
      : sink_(tile.device().profiler()), tile_(&tile) {
    if (sink_ != nullptr) {
      sink_->on_span_begin(tile.id(), phase, site, tile.clock().now());
    }
  }

  ~ProfSpan() {
    if (sink_ != nullptr) {
      sink_->on_span_end(tile_->id(), tile_->clock().now());
    }
  }

  ProfSpan(const ProfSpan&) = delete;
  ProfSpan& operator=(const ProfSpan&) = delete;

 private:
  ProfileSink* sink_;
  Tile* tile_;
};

/// Records a wait-for edge against the attached profiler (no-op without
/// one, or when the clock did not actually jump).
inline void prof_wait_edge(Tile& tile, int src_tile, ProfPhase fallback,
                           const char* site, ps_t from_ps, ps_t to_ps) {
  if (ProfileSink* sink = tile.device().profiler();
      sink != nullptr && to_ps > from_ps) {
    sink->on_wait_edge(tile.id(), src_tile, fallback, site, from_ps, to_ps);
  }
}

}  // namespace tilesim
