// Device configurations for the simulated Tilera processors.
//
// The real TILE-Gx8036 and TILEPro64 are unobtainable; every quantity here
// is taken from Table II of the paper or derived in its Section III device
// studies (clock rate, mesh dimensions, word width, cache capacities, UDN
// setup/teardown costs, barrier latency anchors, bandwidth-curve anchors).
// See DESIGN.md §2 and §5 for the calibration table.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace tilesim {

using tshmem_util::ps_t;

/// Which kind of memory an address lives in, from the point of view of the
/// SHMEM process model. Private = a process's own heap/stack (static
/// symmetric objects); Shared = the TMC common-memory segment.
enum class MemSpace : std::uint8_t { kPrivate, kShared };

/// Tilera memory-homing strategy for a page (paper §III-A).
enum class Homing : std::uint8_t { kLocal, kRemote, kHashForHome };

/// A bandwidth-vs-size curve: piecewise log-linear interpolation between
/// (transfer size, MB/s) anchor points. Sizes must be strictly increasing.
class BandwidthCurve {
 public:
  struct Anchor {
    std::size_t size_bytes;
    double mbps;
  };

  BandwidthCurve() = default;
  explicit BandwidthCurve(std::vector<Anchor> anchors);

  /// Effective bandwidth (MB/s) for a transfer of `size` bytes. Clamps to
  /// the first/last anchor outside the covered range.
  [[nodiscard]] double mbps(std::size_t size) const noexcept;

  [[nodiscard]] bool empty() const noexcept { return anchors_.empty(); }
  [[nodiscard]] const std::vector<Anchor>& anchors() const noexcept {
    return anchors_;
  }

 private:
  std::vector<Anchor> anchors_;
};

/// Parameters of the TMC barrier latency models (see tmc/barrier.hpp).
struct BarrierModel {
  ps_t spin_base_ps;      ///< fixed entry/exit cost of the spin barrier
  ps_t spin_per_tile_ps;  ///< incremental cost per participating tile
  ps_t sync_base_ps;      ///< fixed cost of the scheduler-assisted barrier
  ps_t sync_per_tile_ps;  ///< per-tile scheduler round-trip cost
};

/// Concurrency-efficiency curve for simultaneous readers/writers against a
/// single PE's partition (drives Fig 10/11 aggregate-bandwidth saturation).
class ContentionCurve {
 public:
  struct Point {
    int concurrency;
    double efficiency;  ///< per-stream fraction of solo bandwidth
  };

  ContentionCurve() = default;
  explicit ContentionCurve(std::vector<Point> points);

  [[nodiscard]] double efficiency(int concurrency) const noexcept;

 private:
  std::vector<Point> points_;
};

/// Per-device compute cost model (drives the Fig 13/14 application studies).
struct ComputeModel {
  ps_t int_op_ps;    ///< simple integer ALU op
  ps_t fp_op_ps;     ///< floating-point op (TILEPro has no FPU: ~10x TILE-Gx)
  ps_t mem_op_ps;    ///< cache-resident load/store not covered by copy model
  ps_t call_ps;      ///< function-call / loop bookkeeping quantum
};

/// Full description of one simulated device.
struct DeviceConfig {
  std::string name;        ///< "TILE-Gx8036" / "TILEPro64"
  std::string short_name;  ///< "gx36" / "pro64"

  // --- Table II characteristics -------------------------------------------
  int mesh_width = 0;
  int mesh_height = 0;
  int word_bytes = 0;          ///< UDN word width: 8 on Gx, 4 on Pro
  double clock_ghz = 0.0;
  std::size_t l1i_bytes = 0;
  std::size_t l1d_bytes = 0;
  std::size_t l2_bytes = 0;
  int ddr_controllers = 0;
  double mem_bw_gbps = 0.0;    ///< headline memory bandwidth
  double mesh_bw_tbps = 0.0;   ///< headline on-chip interconnect bandwidth
  double power_watts_lo = 0.0;
  double power_watts_hi = 0.0;
  bool has_mpipe = false;
  bool has_mica = false;
  bool supports_udn_interrupts = false;  ///< TILEPro lacks them (paper §IV-B2)
  /// TILEPro carries one developer-defined statically routed network (STN)
  /// alongside its four dynamic networks (paper §II-C); the TILE-Gx
  /// replaced it with a fifth dynamic network.
  bool has_stn = false;
  ps_t stn_setup_ps = 0;  ///< per-message cost on the static network

  // --- UDN timing (paper §III-C) ------------------------------------------
  int udn_demux_queues = 4;
  int udn_max_payload_words = 127;
  ps_t udn_setup_teardown_ps = 0;  ///< ~21 ns Gx / ~18 ns Pro
  ps_t udn_rx_overhead_ps = 0;     ///< receive-side demux cost
  /// Signed adjustment by the route's first-leg direction, indexed
  /// left/right/up/down (matches sim::Dir). Captures the small directional
  /// asymmetries Table III reports (e.g. vertical routes are ~1 ns faster
  /// on the TILEPro64).
  std::int64_t udn_dir_bias_ps[4] = {0, 0, 0, 0};
  /// Extra switch re-arbitration cost when the dimension-order route turns
  /// from the X to the Y dimension.
  ps_t udn_turn_ps = 0;

  /// Cycle time in ps (1000 for 1 GHz, ~1429 for 700 MHz).
  [[nodiscard]] ps_t cycle_ps() const noexcept {
    return static_cast<ps_t>(1000.0 / clock_ghz + 0.5);
  }

  [[nodiscard]] int tile_count() const noexcept {
    return mesh_width * mesh_height;
  }

  // --- Memory system (paper §III-A/B, Fig 3) ------------------------------
  BandwidthCurve bw_shared_to_shared;
  BandwidthCurve bw_private_to_shared;
  BandwidthCurve bw_shared_to_private;
  BandwidthCurve bw_private_to_private;
  ps_t copy_call_overhead_ps = 0;  ///< fixed per-memcpy cost

  /// Multiplier applied to the hash-for-home curve for other homings.
  double local_homing_small_boost = 1.0;   ///< <= L2-resident sizes
  double local_homing_large_penalty = 1.0; ///< beyond L2 (loses DDC)
  double remote_homing_factor = 1.0;

  // --- Contention ----------------------------------------------------------
  ContentionCurve read_contention;   ///< concurrent gets from one partition
  ContentionCurve write_contention;  ///< concurrent puts into one partition

  // --- Barriers (Fig 5 anchors) -------------------------------------------
  BarrierModel barrier;

  // --- TSHMEM library costs ------------------------------------------------
  ps_t shmem_call_overhead_ps = 0;    ///< address classification + dispatch
  ps_t interrupt_dispatch_ps = 0;     ///< raise + vector a UDN interrupt
  ps_t interrupt_service_ps = 0;      ///< remote handler entry/exit
  ps_t bounce_alloc_ps = 0;           ///< temp shared buffer setup (static-static)
  ps_t barrier_forward_ps = 0;        ///< per-tile token-forwarding cost

  // --- Asynchronous DMA engine (sim/dma.hpp) -------------------------------
  /// CPU-side cost to build and post one transfer descriptor (charged to
  /// the issuing tile's clock on every *_nbi call).
  ps_t dma_issue_ps = 0;
  /// Engine-side startup latency per descriptor (fetch + channel arm),
  /// added to the modeled transfer duration, never to the issuing clock.
  ps_t dma_setup_ps = 0;

  // --- Compute -------------------------------------------------------------
  ComputeModel compute;
};

/// The two devices evaluated in the paper.
[[nodiscard]] const DeviceConfig& tile_gx36();
[[nodiscard]] const DeviceConfig& tile_pro64();

/// Lookup by short name ("gx36", "pro64"); throws std::invalid_argument on
/// unknown names.
[[nodiscard]] const DeviceConfig& device_by_name(const std::string& short_name);

/// All known device configurations (for sweeping benches).
[[nodiscard]] std::vector<const DeviceConfig*> all_devices();

}  // namespace tilesim
