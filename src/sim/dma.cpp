#include "sim/dma.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/flight_hook.hpp"

namespace tilesim {

DmaDescriptor DmaEngine::issue(int peer, bool is_put, std::size_t bytes,
                               ps_t issue_ps, ps_t transfer_cost_ps,
                               ps_t stall_ps) {
  std::scoped_lock lk(mu_);
  DmaDescriptor d;
  d.id = next_id_++;
  d.peer = peer;
  d.is_put = is_put;
  d.bytes = bytes;
  d.issue_ps = issue_ps;
  d.start_ps = std::max(issue_ps, engine_free_ps_) + stall_ps;
  d.complete_ps = d.start_ps + cfg_->dma_setup_ps + transfer_cost_ps;
  engine_free_ps_ = d.complete_ps;
  pending_.push_back(d);
  ++stats_.issued;
  stats_.bytes += bytes;
  stats_.peak_pending = std::max(
      stats_.peak_pending, static_cast<std::uint64_t>(pending_.size()));
  // issue() is only ever called by the owning tile's thread, so reporting
  // here preserves per-PE program order; the issue timestamp is the PE's
  // own clock, keeping ring contents host-schedule independent.
  if (flight_ != nullptr && tile_id_ >= 0) {
    flight_->on_event(tile_id_, FlightKind::kDmaIssue,  // tshmem-lint: allow(R006)
                      is_put ? "dma_put" : "dma_get", d.issue_ps, peer,
                      bytes, 0);
  }
  return d;
}

std::size_t DmaEngine::pending() const {
  std::scoped_lock lk(mu_);
  return pending_.size();
}

ps_t DmaEngine::engine_free_ps() const {
  std::scoped_lock lk(mu_);
  return engine_free_ps_;
}

DmaEngine::DrainResult DmaEngine::drain_all() {
  std::scoped_lock lk(mu_);
  DrainResult r;
  for (const DmaDescriptor& d : pending_) {
    r.max_complete_ps = std::max(r.max_complete_ps, d.complete_ps);
    r.busy_ps += d.complete_ps - d.start_ps;
  }
  r.retired = pending_.size();
  stats_.retired += pending_.size();
  pending_.clear();
  // Drains only happen on the owning tile (shmem_quiet); `bytes` carries
  // the retired-descriptor count for this kind.
  if (flight_ != nullptr && tile_id_ >= 0 && r.retired > 0) {
    flight_->on_event(tile_id_, FlightKind::kDmaDrain,  // tshmem-lint: allow(R006)
                      "dma_drain", r.max_complete_ps, -1, r.retired, 0);
  }
  return r;
}

std::vector<DmaDescriptor> DmaEngine::pending_snapshot() const {
  std::scoped_lock lk(mu_);
  return pending_;
}

DmaStats DmaEngine::stats() const {
  std::scoped_lock lk(mu_);
  return stats_;
}

void DmaEngine::reset() {
  std::scoped_lock lk(mu_);
  if (!pending_.empty()) {
    // Name the owning PE and the queue depth: "which engine, how much"
    // is the first thing anyone debugging a stuck reset needs.
    const std::string who =
        tile_id_ >= 0 ? "PE " + std::to_string(tile_id_) : "unattached engine";
    throw std::logic_error(
        "DmaEngine::reset on " + who + " with " +
        std::to_string(pending_.size()) +
        " in-flight descriptor(s): call shmem_quiet() before resetting "
        "clocks");
  }
  engine_free_ps_ = 0;
  next_id_ = 1;
  stats_ = DmaStats{};
}

void DmaEngine::clear() {
  std::scoped_lock lk(mu_);
  pending_.clear();
  engine_free_ps_ = 0;
  next_id_ = 1;
  stats_ = DmaStats{};
}

}  // namespace tilesim
