// Mechanistic cache-hierarchy simulator for one tile's view of the Tilera
// memory system: a set-associative L1d and L2, plus the Dynamic Distributed
// Cache (DDC) — the aggregation of the *other* tiles' L2 capacity that
// hash-for-home pages can occupy (paper §III-A).
//
// This substrate exists to validate the analytic MemModel: streaming a
// working set of size S repeatedly must transition L1-hit -> L2-hit ->
// DDC-hit -> DRAM at the same capacities where Fig 3's bandwidth curve
// breaks. It also powers the homing-strategy ablation (local homing cannot
// spill into the DDC; hash-for-home distributes lines across home tiles).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "sim/config.hpp"

namespace tilesim {

/// Which level serviced an access.
enum class HitLevel : std::uint8_t { kL1, kL2, kDdc, kDram };

/// A single set-associative, write-allocate, LRU cache.
class SetAssocCache {
 public:
  SetAssocCache(std::size_t capacity_bytes, std::size_t line_bytes,
                std::size_t ways);

  /// Returns true on hit; on miss the line is installed (evicting LRU).
  bool access(std::uint64_t addr);

  /// Is the line currently resident (no state change)?
  [[nodiscard]] bool probe(std::uint64_t addr) const;

  void invalidate_all();

  [[nodiscard]] std::size_t capacity_bytes() const noexcept {
    return capacity_;
  }
  [[nodiscard]] std::size_t line_bytes() const noexcept { return line_; }
  [[nodiscard]] std::size_t ways() const noexcept { return ways_; }
  [[nodiscard]] std::size_t sets() const noexcept { return sets_; }

  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  void reset_stats() noexcept { hits_ = misses_ = 0; }

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint64_t lru = 0;  // larger = more recently used
    bool valid = false;
  };

  std::size_t capacity_;
  std::size_t line_;
  std::size_t ways_;
  std::size_t sets_;
  std::uint64_t tick_ = 0;
  std::vector<Way> entries_;  // sets_ * ways_, row-major by set
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;

  [[nodiscard]] std::size_t set_index(std::uint64_t addr) const noexcept;
  [[nodiscard]] std::uint64_t tag_of(std::uint64_t addr) const noexcept;
};

/// Latency parameters (in core cycles) of each hierarchy level.
struct CacheLatencies {
  double l1_cycles = 2.0;
  double l2_cycles = 11.0;
  double ddc_cycles = 40.0;   ///< remote-L2 round trip across the mesh
  double dram_cycles = 100.0;
  /// Overlap factor: outstanding misses the core can keep in flight, which
  /// converts per-access latency into streaming throughput.
  double mlp = 4.0;
};

struct AccessCounts {
  std::uint64_t l1 = 0;
  std::uint64_t l2 = 0;
  std::uint64_t ddc = 0;
  std::uint64_t dram = 0;

  [[nodiscard]] std::uint64_t total() const noexcept {
    return l1 + l2 + ddc + dram;
  }
};

class CacheSim {
 public:
  /// Builds the hierarchy for `cfg`. The DDC is modeled as an additional
  /// cache whose capacity is the L2 capacity of all other tiles; lines only
  /// enter it when their homing strategy allows distribution.
  CacheSim(const DeviceConfig& cfg, CacheLatencies lat = {});

  /// One line-granular access; returns the servicing level and updates all
  /// levels' state (install on miss at every level above the hit).
  HitLevel access(std::uint64_t addr, Homing homing);

  /// Streams a copy of `bytes` from `src_base` to `dst_base` (line-granular
  /// reads + writes) and returns the modeled effective bandwidth in MB/s.
  double stream_copy_mbps(std::uint64_t src_base, std::uint64_t dst_base,
                          std::size_t bytes, Homing homing);

  /// Observation-only variant: walks the same line-granular access stream
  /// purely to update hit/miss counts (the metrics cache probe). No timing
  /// output, never touches any clock.
  void observe_copy(std::uint64_t src_base, std::uint64_t dst_base,
                    std::size_t bytes, Homing homing);

  /// Sweeps one buffer of `bytes` `passes` times and reports the counts of
  /// the final pass — exposes the steady-state residency level.
  AccessCounts sweep(std::uint64_t base, std::size_t bytes, int passes,
                     Homing homing);

  void reset();

  [[nodiscard]] const AccessCounts& counts() const noexcept { return counts_; }
  void reset_stats() noexcept { counts_ = {}; }

  [[nodiscard]] const SetAssocCache& l1() const noexcept { return l1_; }
  [[nodiscard]] const SetAssocCache& l2() const noexcept { return l2_; }
  [[nodiscard]] const SetAssocCache& ddc() const noexcept { return ddc_; }
  [[nodiscard]] const CacheLatencies& latencies() const noexcept {
    return lat_;
  }

  /// Cycles to service one access at the given level (before MLP overlap).
  [[nodiscard]] double level_cycles(HitLevel level) const noexcept;

 private:
  const DeviceConfig* cfg_;
  CacheLatencies lat_;
  SetAssocCache l1_;
  SetAssocCache l2_;
  SetAssocCache ddc_;
  AccessCounts counts_;
};

}  // namespace tilesim
