// Watchdog-aware condition-variable wait, shared by every blocking
// virtual-time rendezvous (UDN queues, barriers). With no watchdog
// attached this is exactly cv.wait(lk, pred); with one attached the wait
// wakes every `timeout` and hands control to on_timeout, which is expected
// to throw a diagnostic tshmem::Error instead of letting the tile hang.
#pragma once

#include <condition_variable>
#include <mutex>

#include "sim/device.hpp"
#include "sim/fault.hpp"

namespace tilesim {

template <typename Pred>
void guarded_wait(const Device& device, std::unique_lock<std::mutex>& lk,
                  std::condition_variable& cv, int tile, const char* what,
                  Pred pred) {
  const Watchdog* wd = device.watchdog();
  if (wd == nullptr) {
    cv.wait(lk, pred);
    return;
  }
  while (!cv.wait_for(lk, wd->timeout, pred)) {
    // Release the wait's lock around the callback: the diagnostic snapshot
    // reads queue depths and per-PE state, which may need this same lock.
    lk.unlock();
    wd->on_timeout(tile, what);
    lk.lock();
  }
}

}  // namespace tilesim
