// Watchdog-aware blocking primitives, shared by every blocking wait in the
// tree (UDN queues, barriers, mPIPE/STN receives, SHMEM waits and locks).
// These are the ONLY place src/ is allowed to block on a condition variable
// or spin-yield: tools/tshmem_lint.py (rules raw-condvar-wait and
// unbounded-spin) machine-checks that every other blocking wait routes
// through here, so the "every blocking wait is bounded by the watchdog"
// invariant of docs/ROBUSTNESS.md holds by construction, not convention.
//
// With no watchdog attached guarded_wait is exactly cv.wait(lk, pred); with
// one attached the wait wakes every `timeout` and hands control to
// on_timeout, which is expected to throw a diagnostic tshmem::Error instead
// of letting the tile hang.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "sim/device.hpp"
#include "sim/fault.hpp"
#include "sim/flight_hook.hpp"

namespace tilesim {

template <typename Pred>
void guarded_wait(const Device& device, std::unique_lock<std::mutex>& lk,
                  std::condition_variable& cv, int tile, const char* what,
                  Pred pred) {
  // Flight-recorder bracket: the clock cannot advance inside a cv wait, so
  // begin and end carry the same virtual time — host-schedule independent.
  const ps_t wait_vt = device.tile(tile).clock().now();
  flight_event(device, tile, FlightKind::kWaitBegin, what, wait_vt);
  const Watchdog* wd = device.watchdog();
  if (wd == nullptr) {
    cv.wait(lk, pred);
    flight_event(device, tile, FlightKind::kWaitEnd, what, wait_vt);
    return;
  }
  while (!cv.wait_for(lk, wd->timeout, pred)) {
    // Release the wait's lock around the callback: the diagnostic snapshot
    // reads queue depths and per-PE state, which may need this same lock.
    lk.unlock();
    wd->on_timeout(tile, what);
    lk.lock();
  }
  flight_event(device, tile, FlightKind::kWaitEnd, what, wait_vt);
}

/// Nullable-device variant for components whose Device is optional (the
/// tmc barriers): a null device degrades to the plain wait.
template <typename Pred>
void guarded_wait(const Device* device, std::unique_lock<std::mutex>& lk,
                  std::condition_variable& cv, int tile, const char* what,
                  Pred pred) {
  if (device == nullptr) {
    cv.wait(lk, pred);
    return;
  }
  guarded_wait(*device, lk, cv, tile, what, pred);
}

/// Watchdog-aware spin loop: retries `attempt` (which may have side
/// effects — e.g. a CAS that advances virtual time per try) until it
/// returns true, yielding between tries. Used by shmem_wait_until and
/// shmem_set_lock, whose progress comes from another PE's plain store
/// rather than a condition variable.
template <typename Attempt>
void guarded_spin(const Device& device, int tile, const char* what,
                  Attempt attempt) {
  // Begin-only bracket: attempts may advance virtual time (a failed lock
  // CAS charges the atomic cost model), so the matching end event belongs
  // to the caller, which records it after merging the final timestamp.
  flight_event(device, tile, FlightKind::kWaitBegin, what,
               device.tile(tile).clock().now());
  const Watchdog* wd = device.watchdog();
  auto deadline = wd != nullptr
                      ? std::chrono::steady_clock::now() + wd->timeout
                      : std::chrono::steady_clock::time_point::max();
  while (!attempt()) {
    std::this_thread::yield();
    if (wd != nullptr && std::chrono::steady_clock::now() >= deadline) {
      wd->on_timeout(tile, what);
      deadline = std::chrono::steady_clock::now() + wd->timeout;
    }
  }
}

}  // namespace tilesim
