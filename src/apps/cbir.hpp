// Content-based image retrieval case study (paper §V-B).
//
// A color-feature-extraction CBIR application based on the autocorrelogram
// of Huang et al. (CVPR'97): each image is characterized by, for each
// quantized color bin and each distance d in {1,3,5,7}, the probability
// that a pixel at distance d from a bin-b pixel is also bin-b. The image
// database is block-distributed across PEs; each PE extracts features for
// its block and scores them against the query; PE 0 then gathers features,
// merges the candidate rankings, and re-ranks the best candidates — the
// serial tail that keeps speedup at 25 (Gx) / 27 (Pro) at 32 tiles.
//
// The paper's 22,000-image database is proprietary; a seeded synthetic
// generator produces 128 x 128 8-bit images with comparable smooth color
// statistics (DESIGN.md §2).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "tshmem/context.hpp"

namespace apps::cbir {

inline constexpr int kBins = 16;
inline constexpr std::array<int, 4> kDistances{1, 3, 5, 7};
inline constexpr int kFeatureLen = kBins * static_cast<int>(kDistances.size());

using Feature = std::array<float, kFeatureLen>;

struct Params {
  int images = 5500;       ///< paper scale is 22,000; default is quarter scale
  int width = 128;
  int height = 128;
  std::uint64_t seed = 0x7351u;
  int query_index = 4242;  ///< database image used as the query
  double rescan_fraction = 0.005;  ///< share of DB re-ranked serially on PE 0
};

/// Deterministic synthetic image: smooth random gradients + speckle.
void generate_image(std::span<std::uint8_t> out, int width, int height,
                    std::uint64_t image_seed);

/// Autocorrelogram feature; charges the device compute model when
/// `charge_to` is non-null (quantization + neighbor comparisons).
[[nodiscard]] Feature autocorrelogram(std::span<const std::uint8_t> img,
                                      int width, int height,
                                      tshmem::Context* charge_to = nullptr);

/// L1 feature distance; charges ~3 ops per component when `charge_to` set.
[[nodiscard]] float feature_distance(const Feature& a, const Feature& b,
                                     tshmem::Context* charge_to = nullptr);

struct QueryResult {
  tilesim::ps_t elapsed_ps = 0;       ///< whole query, measured on PE 0
  tilesim::ps_t extract_ps = 0;       ///< parallel feature extraction phase
  tilesim::ps_t rank_ps = 0;          ///< serial gather + merge + re-rank
  int best_image = -1;                ///< global index of the best match
  float best_distance = 0.0f;
  std::vector<int> top(std::size_t k) const;
  std::vector<std::pair<float, int>> ranking;  ///< PE 0 only, ascending
};

/// SPMD body: run one retrieval query over the synthetic database.
QueryResult run_query(tshmem::Context& ctx, const Params& p);

}  // namespace apps::cbir
