// Content-based image retrieval case study (paper §V-B).
//
// A color-feature-extraction CBIR application based on the autocorrelogram
// of Huang et al. (CVPR'97): each image is characterized by, for each
// quantized color bin and each distance d in {1,3,5,7}, the probability
// that a pixel at distance d from a bin-b pixel is also bin-b. The image
// database is block-distributed across PEs; each PE extracts features for
// its block and scores them against the query; PE 0 then gathers features,
// merges the candidate rankings, and re-ranks the best candidates — the
// serial tail that keeps speedup at 25 (Gx) / 27 (Pro) at 32 tiles.
//
// The paper's 22,000-image database is proprietary; a seeded synthetic
// generator produces 128 x 128 8-bit images with comparable smooth color
// statistics (DESIGN.md §2).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>
#include <vector>

#include "tshmem/context.hpp"

namespace apps::cbir {

inline constexpr int kBins = 16;
inline constexpr std::array<int, 4> kDistances{1, 3, 5, 7};
inline constexpr int kFeatureLen = kBins * static_cast<int>(kDistances.size());

using Feature = std::array<float, kFeatureLen>;

struct Params {
  int images = 5500;       ///< paper scale is 22,000; default is quarter scale
  int width = 128;
  int height = 128;
  std::uint64_t seed = 0x7351u;
  int query_index = 4242;  ///< database image used as the query
  double rescan_fraction = 0.005;  ///< share of DB re-ranked serially on PE 0
};

/// Deterministic synthetic image: smooth random gradients + speckle.
void generate_image(std::span<std::uint8_t> out, int width, int height,
                    std::uint64_t image_seed);

/// Autocorrelogram feature; charges the device compute model when
/// `charge_to` is non-null (quantization + neighbor comparisons).
[[nodiscard]] Feature autocorrelogram(std::span<const std::uint8_t> img,
                                      int width, int height,
                                      tshmem::Context* charge_to = nullptr);

/// A feature plus the integer-op count its extraction would charge. The op
/// count is a pure function of the image, so a cached Extracted can replay
/// the exact compute-model charge without re-running the extraction.
struct Extracted {
  Feature feature{};
  std::uint64_t ops = 0;
};

/// Pure extraction: autocorrelogram plus its op count, no charging.
[[nodiscard]] Extracted extract_feature(std::span<const std::uint8_t> img,
                                        int width, int height);

/// Process-wide memoization of synthetic-image features, keyed by the
/// image's generator seed and dimensions. The database is deterministic
/// (image_seed fully determines the pixels), so every PE, every tile-count
/// sweep, and every serving shard re-extracting image `s` computes the
/// same feature — the cache computes it once and replays the identical
/// op-count charge on every hit, keeping virtual time bit-identical while
/// removing the dominant host cost of fig14 (re-extraction per scoring
/// pass). Thread-safe; entry references stay valid until clear(), which
/// must only run with no job in flight.
class FeatureCache {
 public:
  static FeatureCache& shared();

  /// Returns the cached extraction for (image_seed, width, height),
  /// computing it from `img` on the first call. The caller guarantees
  /// `img` holds the pixels generate_image produces for `image_seed`.
  const Extracted& seeded(std::span<const std::uint8_t> img, int width,
                          int height, std::uint64_t image_seed);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::uint64_t hits() const;
  void clear();

 private:
  struct Key {
    std::uint64_t seed;
    int width;
    int height;
    friend bool operator==(const Key&, const Key&) = default;
  };
  struct KeyHash {
    std::size_t operator()(const Key& k) const noexcept {
      std::uint64_t h = k.seed * 0x9e3779b97f4a7c15ULL;
      h ^= (static_cast<std::uint64_t>(k.width) << 32 |
            static_cast<std::uint32_t>(k.height)) *
           0xbf58476d1ce4e5b9ULL;
      return static_cast<std::size_t>(h ^ (h >> 29));
    }
  };

  mutable std::mutex mu_;
  std::unordered_map<Key, Extracted, KeyHash> map_;
  std::uint64_t hits_ = 0;
};

/// L1 feature distance; charges ~3 ops per component when `charge_to` set.
[[nodiscard]] float feature_distance(const Feature& a, const Feature& b,
                                     tshmem::Context* charge_to = nullptr);

struct QueryResult {
  tilesim::ps_t elapsed_ps = 0;       ///< whole query, measured on PE 0
  tilesim::ps_t extract_ps = 0;       ///< parallel feature extraction phase
  tilesim::ps_t rank_ps = 0;          ///< serial gather + merge + re-rank
  int best_image = -1;                ///< global index of the best match
  float best_distance = 0.0f;
  std::vector<int> top(std::size_t k) const;
  std::vector<std::pair<float, int>> ranking;  ///< PE 0 only, ascending
};

/// SPMD body: run one retrieval query over the synthetic database.
QueryResult run_query(tshmem::Context& ctx, const Params& p);

// ===========================================================================
// Per-query serving path (src/svc; docs/SERVING.md)
// ===========================================================================

/// One scored retrieval answer.
struct Hit {
  int image = -1;       ///< global database index of the best match
  float distance = 0.0f;

  friend bool operator==(const Hit&, const Hit&) = default;
};

/// Shard-resident precomputed feature index: the features of the database
/// slice [first, first + count) extracted once and block-distributed across
/// the job's PEs in symmetric memory. This is the reusable per-query path
/// the serving subsystem batches queries against — build() pays the
/// extraction exactly once per shard, query_batch() then costs one feature
/// scan plus one argmin reduction per batch.
///
/// Collective contract: every PE of the job must call build / query_batch /
/// destroy with identical arguments, in the same order (SPMD symmetry, as
/// with any collective).
class ShardIndex {
 public:
  /// Collective: synthesizes (or reuses cached features of) the slice and
  /// stores each PE's block in its symmetric partition.
  ShardIndex(tshmem::Context& ctx, const Params& p, int first, int count);

  ShardIndex(const ShardIndex&) = delete;
  ShardIndex& operator=(const ShardIndex&) = delete;

  /// Collective: releases the symmetric feature block.
  void destroy(tshmem::Context& ctx);

  [[nodiscard]] int first() const noexcept { return first_; }
  [[nodiscard]] int count() const noexcept { return count_; }

  /// SPMD batch scoring: every PE passes the same `queries` (extracted
  /// query features); each PE scans its feature block, then one argmin
  /// reduction per batch merges the per-PE candidates. `out` receives one
  /// Hit per query on every PE. This is the shard-side service body whose
  /// virtual-time cost the serving simulator calibrates.
  void query_batch(tshmem::Context& ctx, std::span<const Feature> queries,
                   std::span<Hit> out) const;

  /// Single-query convenience wrapper.
  [[nodiscard]] Hit query(tshmem::Context& ctx, const Feature& qf) const;

 private:
  int first_ = 0;
  int count_ = 0;
  int per_pe_ = 0;        ///< slice rows per PE (ceil division)
  int my_count_ = 0;      ///< rows this PE owns
  float* features_ = nullptr;  ///< symmetric: my_count_ * kFeatureLen
};

}  // namespace apps::cbir
