#include "apps/cbir.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "util/rng.hpp"

namespace apps::cbir {

void generate_image(std::span<std::uint8_t> out, int width, int height,
                    std::uint64_t image_seed) {
  if (out.size() != static_cast<std::size_t>(width) *
                        static_cast<std::size_t>(height)) {
    throw std::invalid_argument("generate_image: buffer size mismatch");
  }
  tshmem_util::Xoshiro256 rng(image_seed);
  // Smooth background: a sum of a few random low-frequency gradients gives
  // images with spatially-correlated color regions, which is what makes
  // the autocorrelogram informative on natural photos.
  const double ax = rng.uniform(-1.0, 1.0);
  const double ay = rng.uniform(-1.0, 1.0);
  const double bx = rng.uniform(0.02, 0.12);
  const double by = rng.uniform(0.02, 0.12);
  const double phase = rng.uniform(0.0, 6.28318);
  const double offset = rng.uniform(64.0, 192.0);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double v = offset + 60.0 * ax * (2.0 * x / width - 1.0) +
                 60.0 * ay * (2.0 * y / height - 1.0) +
                 40.0 * std::sin(bx * x + by * y + phase);
      // Sparse speckle noise.
      if ((rng.next() & 0x3f) == 0) v += rng.uniform(-80.0, 80.0);
      v = std::clamp(v, 0.0, 255.0);
      out[static_cast<std::size_t>(y) * width + x] =
          static_cast<std::uint8_t>(v);
    }
  }
}

Feature autocorrelogram(std::span<const std::uint8_t> img, int width,
                        int height, tshmem::Context* charge_to) {
  if (img.size() != static_cast<std::size_t>(width) *
                        static_cast<std::size_t>(height)) {
    throw std::invalid_argument("autocorrelogram: image size mismatch");
  }
  std::array<std::uint32_t, kFeatureLen> hits{};
  std::array<std::uint32_t, kBins> counts{};
  std::uint64_t ops = 0;
  auto bin_at = [&](int x, int y) {
    return img[static_cast<std::size_t>(y) * width + x] >> 4;  // 16 bins
  };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const int b = bin_at(x, y);
      ++counts[static_cast<std::size_t>(b)];
      ops += 2;  // quantize + histogram
      for (std::size_t di = 0; di < kDistances.size(); ++di) {
        const int d = kDistances[di];
        // Sample the four axial neighbors at distance d (the standard
        // banded approximation of the full ring).
        const int nx[4] = {x - d, x + d, x, x};
        const int ny[4] = {y, y, y - d, y + d};
        for (int k = 0; k < 4; ++k) {
          ++ops;
          if (nx[k] < 0 || nx[k] >= width || ny[k] < 0 || ny[k] >= height) {
            continue;
          }
          if (bin_at(nx[k], ny[k]) == b) {
            ++hits[di * kBins + static_cast<std::size_t>(b)];
          }
        }
      }
    }
  }
  if (charge_to != nullptr) charge_to->charge_int_ops(ops);
  Feature f{};
  for (std::size_t di = 0; di < kDistances.size(); ++di) {
    for (int b = 0; b < kBins; ++b) {
      const std::uint32_t total = counts[static_cast<std::size_t>(b)] * 4;
      f[di * kBins + static_cast<std::size_t>(b)] =
          total == 0 ? 0.0f
                     : static_cast<float>(hits[di * kBins +
                                               static_cast<std::size_t>(b)]) /
                           static_cast<float>(total);
    }
  }
  return f;
}

float feature_distance(const Feature& a, const Feature& b,
                       tshmem::Context* charge_to) {
  float d = 0.0f;
  // Normalized L1 distance, as in Huang et al. '97 (d1 measure).
  for (int i = 0; i < kFeatureLen; ++i) {
    d += std::abs(a[i] - b[i]) /
         (1.0f + a[i] + b[i]);
  }
  if (charge_to != nullptr) {
    charge_to->charge_int_ops(static_cast<std::uint64_t>(kFeatureLen) * 3);
  }
  return d;
}

std::vector<int> QueryResult::top(std::size_t k) const {
  std::vector<int> out;
  out.reserve(std::min(k, ranking.size()));
  for (std::size_t i = 0; i < std::min(k, ranking.size()); ++i) {
    out.push_back(ranking[i].second);
  }
  return out;
}

QueryResult run_query(tshmem::Context& ctx, const Params& p) {
  if (p.images < 1) throw std::invalid_argument("cbir: need >= 1 image");
  const int npes = ctx.num_pes();
  const int me = ctx.my_pe();
  const int per_pe = (p.images + npes - 1) / npes;
  const int my_first = std::min(p.images, me * per_pe);
  const int my_count = std::min(p.images - my_first, per_pe);
  const std::size_t px = static_cast<std::size_t>(p.width) *
                         static_cast<std::size_t>(p.height);

  // Symmetric storage: my image block, my feature block, my score block.
  auto* images = ctx.shmalloc_n<std::uint8_t>(
      static_cast<std::size_t>(per_pe) * px);
  auto* features = ctx.shmalloc_n<float>(
      static_cast<std::size_t>(per_pe) * kFeatureLen);
  auto* scores =
      ctx.shmalloc_n<float>(static_cast<std::size_t>(per_pe));
  if (images == nullptr || features == nullptr || scores == nullptr) {
    throw std::runtime_error("cbir: symmetric heap exhausted");
  }

  // Database synthesis happens outside the measured region (the paper's
  // database already resides in memory when the query runs).
  for (int i = 0; i < my_count; ++i) {
    generate_image(
        std::span<std::uint8_t>(images + static_cast<std::size_t>(i) * px, px),
        p.width, p.height, p.seed + static_cast<std::uint64_t>(my_first + i));
  }
  std::vector<std::uint8_t> query_img(px);
  generate_image(query_img, p.width, p.height,
                 p.seed + static_cast<std::uint64_t>(
                              p.query_index % std::max(p.images, 1)));

  ctx.harness_sync_reset();
  QueryResult out;
  const auto t0 = ctx.clock().now();

  // --- parallel phase: extract + score my block ---------------------------
  const Feature qf = autocorrelogram(query_img, p.width, p.height, &ctx);
  for (int i = 0; i < my_count; ++i) {
    const Feature f = autocorrelogram(
        std::span<const std::uint8_t>(
            images + static_cast<std::size_t>(i) * px, px),
        p.width, p.height, &ctx);
    std::memcpy(features + static_cast<std::size_t>(i) * kFeatureLen,
                f.data(), sizeof(Feature));
    scores[i] = feature_distance(qf, f, &ctx);
  }
  ctx.quiet();
  ctx.barrier_all();
  const auto t1 = ctx.clock().now();

  // --- serial phase on PE 0: gather, merge, re-rank ------------------------
  if (me == 0) {
    std::vector<float> all_scores(static_cast<std::size_t>(npes) * per_pe);
    std::vector<float> all_feats(static_cast<std::size_t>(npes) * per_pe *
                                 kFeatureLen);
    for (int pe = 0; pe < npes; ++pe) {
      const int count = std::min(p.images - std::min(p.images, pe * per_pe),
                                 per_pe);
      if (count <= 0) continue;
      ctx.get(all_scores.data() + static_cast<std::size_t>(pe) * per_pe,
              scores, static_cast<std::size_t>(count) * sizeof(float), pe);
      ctx.get(all_feats.data() +
                  static_cast<std::size_t>(pe) * per_pe * kFeatureLen,
              features,
              static_cast<std::size_t>(count) * kFeatureLen * sizeof(float),
              pe);
    }
    // Merge into a global ranking, re-checking each candidate's distance
    // from the gathered features (verification scan).
    out.ranking.reserve(static_cast<std::size_t>(p.images));
    for (int g = 0; g < p.images; ++g) {
      const int pe = g / per_pe;
      const int local = g % per_pe;
      const auto* f = all_feats.data() +
                      (static_cast<std::size_t>(pe) * per_pe + local) *
                          kFeatureLen;
      Feature fv;
      std::memcpy(fv.data(), f, sizeof(Feature));
      const float d = feature_distance(qf, fv, &ctx);
      ctx.charge_int_ops(12);  // candidate bookkeeping / heap insert
      out.ranking.emplace_back(
          (d + all_scores[static_cast<std::size_t>(pe) * per_pe + local]) *
              0.5f,
          g);
    }
    std::sort(out.ranking.begin(), out.ranking.end());
    ctx.charge_int_ops(static_cast<std::uint64_t>(p.images) * 18);  // sort
    // Re-rank the head of the list by re-extracting full features from the
    // original image data (remote reads of the image blocks).
    const int rescan =
        std::max(1, static_cast<int>(p.rescan_fraction * p.images));
    std::vector<std::uint8_t> img(px);
    for (int k = 0; k < std::min<int>(rescan, p.images); ++k) {
      const int g = out.ranking[static_cast<std::size_t>(k)].second;
      const int pe = g / per_pe;
      const int local = g % per_pe;
      ctx.get(img.data(), images + static_cast<std::size_t>(local) * px, px,
              pe);
      const Feature f = autocorrelogram(img, p.width, p.height, &ctx);
      out.ranking[static_cast<std::size_t>(k)].first =
          feature_distance(qf, f, &ctx);
    }
    std::sort(out.ranking.begin(),
              out.ranking.begin() + std::min<int>(rescan, p.images));
    out.best_distance = out.ranking.front().first;
    out.best_image = out.ranking.front().second;
  }
  // Distribute the verdict (a broadcast of the best index).
  auto* verdict = ctx.shmalloc_n<long>(1);
  if (me == 0) *verdict = out.best_image;
  ctx.broadcast(verdict, verdict, sizeof(long), 0, ctx.world());
  out.best_image = static_cast<int>(*verdict);
  ctx.barrier_all();
  const auto t2 = ctx.clock().now();

  if (me == 0) {
    out.extract_ps = t1 - t0;
    out.rank_ps = t2 - t1;
    out.elapsed_ps = t2 - t0;
  }
  ctx.shfree(verdict);
  ctx.shfree(scores);
  ctx.shfree(features);
  ctx.shfree(images);
  return out;
}

}  // namespace apps::cbir
