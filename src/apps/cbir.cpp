#include "apps/cbir.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "util/rng.hpp"

namespace apps::cbir {

void generate_image(std::span<std::uint8_t> out, int width, int height,
                    std::uint64_t image_seed) {
  if (out.size() != static_cast<std::size_t>(width) *
                        static_cast<std::size_t>(height)) {
    throw std::invalid_argument("generate_image: buffer size mismatch");
  }
  tshmem_util::Xoshiro256 rng(image_seed);
  // Smooth background: a sum of a few random low-frequency gradients gives
  // images with spatially-correlated color regions, which is what makes
  // the autocorrelogram informative on natural photos.
  const double ax = rng.uniform(-1.0, 1.0);
  const double ay = rng.uniform(-1.0, 1.0);
  const double bx = rng.uniform(0.02, 0.12);
  const double by = rng.uniform(0.02, 0.12);
  const double phase = rng.uniform(0.0, 6.28318);
  const double offset = rng.uniform(64.0, 192.0);
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      double v = offset + 60.0 * ax * (2.0 * x / width - 1.0) +
                 60.0 * ay * (2.0 * y / height - 1.0) +
                 40.0 * std::sin(bx * x + by * y + phase);
      // Sparse speckle noise.
      if ((rng.next() & 0x3f) == 0) v += rng.uniform(-80.0, 80.0);
      v = std::clamp(v, 0.0, 255.0);
      out[static_cast<std::size_t>(y) * width + x] =
          static_cast<std::uint8_t>(v);
    }
  }
}

Extracted extract_feature(std::span<const std::uint8_t> img, int width,
                          int height) {
  if (img.size() != static_cast<std::size_t>(width) *
                        static_cast<std::size_t>(height)) {
    throw std::invalid_argument("autocorrelogram: image size mismatch");
  }
  std::array<std::uint32_t, kFeatureLen> hits{};
  std::array<std::uint32_t, kBins> counts{};
  std::uint64_t ops = 0;
  auto bin_at = [&](int x, int y) {
    return img[static_cast<std::size_t>(y) * width + x] >> 4;  // 16 bins
  };
  for (int y = 0; y < height; ++y) {
    for (int x = 0; x < width; ++x) {
      const int b = bin_at(x, y);
      ++counts[static_cast<std::size_t>(b)];
      ops += 2;  // quantize + histogram
      for (std::size_t di = 0; di < kDistances.size(); ++di) {
        const int d = kDistances[di];
        // Sample the four axial neighbors at distance d (the standard
        // banded approximation of the full ring).
        const int nx[4] = {x - d, x + d, x, x};
        const int ny[4] = {y, y, y - d, y + d};
        for (int k = 0; k < 4; ++k) {
          ++ops;
          if (nx[k] < 0 || nx[k] >= width || ny[k] < 0 || ny[k] >= height) {
            continue;
          }
          if (bin_at(nx[k], ny[k]) == b) {
            ++hits[di * kBins + static_cast<std::size_t>(b)];
          }
        }
      }
    }
  }
  Extracted e;
  e.ops = ops;
  for (std::size_t di = 0; di < kDistances.size(); ++di) {
    for (int b = 0; b < kBins; ++b) {
      const std::uint32_t total = counts[static_cast<std::size_t>(b)] * 4;
      e.feature[di * kBins + static_cast<std::size_t>(b)] =
          total == 0 ? 0.0f
                     : static_cast<float>(hits[di * kBins +
                                               static_cast<std::size_t>(b)]) /
                           static_cast<float>(total);
    }
  }
  return e;
}

Feature autocorrelogram(std::span<const std::uint8_t> img, int width,
                        int height, tshmem::Context* charge_to) {
  const Extracted e = extract_feature(img, width, height);
  if (charge_to != nullptr) charge_to->charge_int_ops(e.ops);
  return e.feature;
}

FeatureCache& FeatureCache::shared() {
  static FeatureCache cache;
  return cache;
}

const Extracted& FeatureCache::seeded(std::span<const std::uint8_t> img,
                                      int width, int height,
                                      std::uint64_t image_seed) {
  const Key key{image_seed, width, height};
  {
    std::lock_guard<std::mutex> lk(mu_);
    auto it = map_.find(key);
    if (it != map_.end()) {
      ++hits_;
      return it->second;
    }
  }
  // Extract outside the lock so concurrent PEs still parallelize misses.
  // The image is a pure function of (image_seed, width, height), so a lost
  // insertion race produced the identical value; first insert wins.
  Extracted e = extract_feature(img, width, height);
  std::lock_guard<std::mutex> lk(mu_);
  auto [it, inserted] = map_.try_emplace(key, e);
  if (!inserted) ++hits_;
  return it->second;
}

std::size_t FeatureCache::size() const {
  std::lock_guard<std::mutex> lk(mu_);
  return map_.size();
}

std::uint64_t FeatureCache::hits() const {
  std::lock_guard<std::mutex> lk(mu_);
  return hits_;
}

void FeatureCache::clear() {
  std::lock_guard<std::mutex> lk(mu_);
  map_.clear();
  hits_ = 0;
}

float feature_distance(const Feature& a, const Feature& b,
                       tshmem::Context* charge_to) {
  float d = 0.0f;
  // Normalized L1 distance, as in Huang et al. '97 (d1 measure).
  for (int i = 0; i < kFeatureLen; ++i) {
    d += std::abs(a[i] - b[i]) /
         (1.0f + a[i] + b[i]);
  }
  if (charge_to != nullptr) {
    charge_to->charge_int_ops(static_cast<std::uint64_t>(kFeatureLen) * 3);
  }
  return d;
}

std::vector<int> QueryResult::top(std::size_t k) const {
  std::vector<int> out;
  out.reserve(std::min(k, ranking.size()));
  for (std::size_t i = 0; i < std::min(k, ranking.size()); ++i) {
    out.push_back(ranking[i].second);
  }
  return out;
}

QueryResult run_query(tshmem::Context& ctx, const Params& p) {
  if (p.images < 1) throw std::invalid_argument("cbir: need >= 1 image");
  const int npes = ctx.num_pes();
  const int me = ctx.my_pe();
  const int per_pe = (p.images + npes - 1) / npes;
  const int my_first = std::min(p.images, me * per_pe);
  const int my_count = std::min(p.images - my_first, per_pe);
  const std::size_t px = static_cast<std::size_t>(p.width) *
                         static_cast<std::size_t>(p.height);

  // Symmetric storage: my image block, my feature block, my score block.
  auto* images = ctx.shmalloc_n<std::uint8_t>(
      static_cast<std::size_t>(per_pe) * px);
  auto* features = ctx.shmalloc_n<float>(
      static_cast<std::size_t>(per_pe) * kFeatureLen);
  auto* scores =
      ctx.shmalloc_n<float>(static_cast<std::size_t>(per_pe));
  if (images == nullptr || features == nullptr || scores == nullptr) {
    throw std::runtime_error("cbir: symmetric heap exhausted");
  }

  // Database synthesis happens outside the measured region (the paper's
  // database already resides in memory when the query runs).
  for (int i = 0; i < my_count; ++i) {
    generate_image(
        std::span<std::uint8_t>(images + static_cast<std::size_t>(i) * px, px),
        p.width, p.height, p.seed + static_cast<std::uint64_t>(my_first + i));
  }
  const std::uint64_t query_seed =
      p.seed +
      static_cast<std::uint64_t>(p.query_index % std::max(p.images, 1));
  std::vector<std::uint8_t> query_img(px);
  generate_image(query_img, p.width, p.height, query_seed);

  ctx.harness_sync_reset();
  QueryResult out;
  const auto t0 = ctx.clock().now();

  // --- parallel phase: extract + score my block ---------------------------
  // Extraction goes through the seed-keyed FeatureCache: hits replay the
  // cached op count through the same single charge the cold path issues, so
  // virtual time is bit-identical to recomputing while the host skips the
  // (dominant) extraction work on repeat scoring passes.
  FeatureCache& fcache = FeatureCache::shared();
  const Extracted& qe =
      fcache.seeded(query_img, p.width, p.height, query_seed);
  ctx.charge_int_ops(qe.ops);
  const Feature qf = qe.feature;
  for (int i = 0; i < my_count; ++i) {
    const Extracted& e = fcache.seeded(
        std::span<const std::uint8_t>(
            images + static_cast<std::size_t>(i) * px, px),
        p.width, p.height,
        p.seed + static_cast<std::uint64_t>(my_first + i));
    ctx.charge_int_ops(e.ops);
    std::memcpy(features + static_cast<std::size_t>(i) * kFeatureLen,
                e.feature.data(), sizeof(Feature));
    scores[i] = feature_distance(qf, e.feature, &ctx);
  }
  ctx.quiet();
  ctx.barrier_all();
  const auto t1 = ctx.clock().now();

  // --- serial phase on PE 0: gather, merge, re-rank ------------------------
  if (me == 0) {
    std::vector<float> all_scores(static_cast<std::size_t>(npes) * per_pe);
    std::vector<float> all_feats(static_cast<std::size_t>(npes) * per_pe *
                                 kFeatureLen);
    for (int pe = 0; pe < npes; ++pe) {
      const int count = std::min(p.images - std::min(p.images, pe * per_pe),
                                 per_pe);
      if (count <= 0) continue;
      ctx.get(all_scores.data() + static_cast<std::size_t>(pe) * per_pe,
              scores, static_cast<std::size_t>(count) * sizeof(float), pe);
      ctx.get(all_feats.data() +
                  static_cast<std::size_t>(pe) * per_pe * kFeatureLen,
              features,
              static_cast<std::size_t>(count) * kFeatureLen * sizeof(float),
              pe);
    }
    // Merge into a global ranking, re-checking each candidate's distance
    // from the gathered features (verification scan).
    out.ranking.reserve(static_cast<std::size_t>(p.images));
    for (int g = 0; g < p.images; ++g) {
      const int pe = g / per_pe;
      const int local = g % per_pe;
      const auto* f = all_feats.data() +
                      (static_cast<std::size_t>(pe) * per_pe + local) *
                          kFeatureLen;
      Feature fv;
      std::memcpy(fv.data(), f, sizeof(Feature));
      const float d = feature_distance(qf, fv, &ctx);
      ctx.charge_int_ops(12);  // candidate bookkeeping / heap insert
      out.ranking.emplace_back(
          (d + all_scores[static_cast<std::size_t>(pe) * per_pe + local]) *
              0.5f,
          g);
    }
    std::sort(out.ranking.begin(), out.ranking.end());
    ctx.charge_int_ops(static_cast<std::uint64_t>(p.images) * 18);  // sort
    // Re-rank the head of the list by re-extracting full features from the
    // original image data (remote reads of the image blocks).
    const int rescan =
        std::max(1, static_cast<int>(p.rescan_fraction * p.images));
    std::vector<std::uint8_t> img(px);
    for (int k = 0; k < std::min<int>(rescan, p.images); ++k) {
      const int g = out.ranking[static_cast<std::size_t>(k)].second;
      const int pe = g / per_pe;
      const int local = g % per_pe;
      ctx.get(img.data(), images + static_cast<std::size_t>(local) * px, px,
              pe);
      const Extracted& e = fcache.seeded(
          img, p.width, p.height, p.seed + static_cast<std::uint64_t>(g));
      ctx.charge_int_ops(e.ops);
      out.ranking[static_cast<std::size_t>(k)].first =
          feature_distance(qf, e.feature, &ctx);
    }
    std::sort(out.ranking.begin(),
              out.ranking.begin() + std::min<int>(rescan, p.images));
    out.best_distance = out.ranking.front().first;
    out.best_image = out.ranking.front().second;
  }
  // Distribute the verdict (a broadcast of the best index).
  auto* verdict = ctx.shmalloc_n<long>(1);
  if (me == 0) *verdict = out.best_image;
  ctx.broadcast(verdict, verdict, sizeof(long), 0, ctx.world());
  out.best_image = static_cast<int>(*verdict);
  ctx.barrier_all();
  const auto t2 = ctx.clock().now();

  if (me == 0) {
    out.extract_ps = t1 - t0;
    out.rank_ps = t2 - t1;
    out.elapsed_ps = t2 - t0;
  }
  ctx.shfree(verdict);
  ctx.shfree(scores);
  ctx.shfree(features);
  ctx.shfree(images);
  return out;
}

// ===========================================================================
// ShardIndex — precomputed per-shard feature index (serving path)
// ===========================================================================

namespace {

/// Packed per-query candidate for the argmin reduction. Trivially copyable
/// so reduce_custom can move it through symmetric memory byte-wise.
struct ScoredHit {
  float distance;
  std::int32_t image;
};
static_assert(sizeof(ScoredHit) == 8);

/// Fold: min by distance, ties broken toward the lower global image index
/// so the merged verdict is independent of PE order.
void min_hit_apply(void* acc, const void* in, std::size_t n) {
  auto* a = static_cast<ScoredHit*>(acc);
  const auto* b = static_cast<const ScoredHit*>(in);
  for (std::size_t i = 0; i < n; ++i) {
    if (b[i].distance < a[i].distance ||
        (b[i].distance == a[i].distance && b[i].image < a[i].image)) {
      a[i] = b[i];
    }
  }
}

}  // namespace

ShardIndex::ShardIndex(tshmem::Context& ctx, const Params& p, int first,
                       int count)
    : first_(first), count_(count) {
  if (count < 1) throw std::invalid_argument("ShardIndex: need >= 1 image");
  if (first < 0) throw std::invalid_argument("ShardIndex: negative first");
  const int npes = ctx.num_pes();
  const int me = ctx.my_pe();
  per_pe_ = (count + npes - 1) / npes;
  const int my_first = std::min(count, me * per_pe_);
  my_count_ = std::min(count - my_first, per_pe_);
  features_ = ctx.shmalloc_n<float>(static_cast<std::size_t>(per_pe_) *
                                    kFeatureLen);
  if (features_ == nullptr) {
    throw std::runtime_error("ShardIndex: symmetric heap exhausted");
  }
  const std::size_t px = static_cast<std::size_t>(p.width) *
                         static_cast<std::size_t>(p.height);
  std::vector<std::uint8_t> img(px);
  FeatureCache& fcache = FeatureCache::shared();
  for (int i = 0; i < my_count_; ++i) {
    const std::uint64_t s =
        p.seed + static_cast<std::uint64_t>(first + my_first + i);
    generate_image(img, p.width, p.height, s);
    const Extracted& e = fcache.seeded(img, p.width, p.height, s);
    ctx.charge_int_ops(e.ops);
    std::memcpy(features_ + static_cast<std::size_t>(i) * kFeatureLen,
                e.feature.data(), sizeof(Feature));
  }
  ctx.quiet();
  ctx.barrier_all();
}

void ShardIndex::destroy(tshmem::Context& ctx) {
  ctx.barrier_all();
  if (features_ != nullptr) {
    ctx.shfree(features_);
    features_ = nullptr;
  }
}

void ShardIndex::query_batch(tshmem::Context& ctx,
                             std::span<const Feature> queries,
                             std::span<Hit> out) const {
  if (out.size() != queries.size()) {
    throw std::invalid_argument("ShardIndex::query_batch: span mismatch");
  }
  if (queries.empty()) return;
  if (features_ == nullptr) {
    throw std::runtime_error("ShardIndex::query_batch: index destroyed");
  }
  const int me = ctx.my_pe();
  const int my_first = std::min(count_, me * per_pe_);
  // reduce_custom reads every PE's source remotely and pull-broadcasts the
  // target, so both legs live in symmetric memory.
  auto* local = ctx.shmalloc_n<ScoredHit>(queries.size());
  auto* merged = ctx.shmalloc_n<ScoredHit>(queries.size());
  if (local == nullptr || merged == nullptr) {
    throw std::runtime_error("ShardIndex::query_batch: heap exhausted");
  }
  for (std::size_t q = 0; q < queries.size(); ++q) {
    ScoredHit best{std::numeric_limits<float>::max(), -1};
    Feature f;
    for (int i = 0; i < my_count_; ++i) {
      std::memcpy(f.data(),
                  features_ + static_cast<std::size_t>(i) * kFeatureLen,
                  sizeof(Feature));
      const float d = feature_distance(queries[q], f, &ctx);
      const auto g = static_cast<std::int32_t>(first_ + my_first + i);
      if (d < best.distance ||
          (d == best.distance && g < best.image)) {
        best = ScoredHit{d, g};
      }
    }
    // Candidate tracking: compare + conditional update per scanned row.
    ctx.charge_int_ops(static_cast<std::uint64_t>(my_count_) * 2 + 4);
    local[q] = best;
  }
  ctx.quiet();
  ctx.reduce_custom(merged, local, queries.size(), sizeof(ScoredHit),
                    &min_hit_apply, /*is_fp=*/false, ctx.world());
  for (std::size_t q = 0; q < queries.size(); ++q) {
    out[q] = Hit{static_cast<int>(merged[q].image), merged[q].distance};
  }
  ctx.shfree(merged);
  ctx.shfree(local);
}

Hit ShardIndex::query(tshmem::Context& ctx, const Feature& qf) const {
  Hit h;
  query_batch(ctx, std::span<const Feature>(&qf, 1), std::span<Hit>(&h, 1));
  return h;
}

}  // namespace apps::cbir
