#include "apps/fft.hpp"

#include <cmath>
#include <numbers>
#include <stdexcept>

#include "util/rng.hpp"

namespace apps {

namespace {

[[nodiscard]] bool is_pow2(std::size_t v) { return v && (v & (v - 1)) == 0; }

[[nodiscard]] std::size_t log2_of(std::size_t n) {
  std::size_t k = 0;
  while ((std::size_t{1} << k) < n) ++k;
  return k;
}

void bit_reverse_permute(std::span<cfloat> data) {
  const std::size_t n = data.size();
  for (std::size_t i = 1, j = 0; i < n; ++i) {
    std::size_t bit = n >> 1;
    for (; j & bit; bit >>= 1) j ^= bit;
    j ^= bit;
    if (i < j) std::swap(data[i], data[j]);
  }
}

}  // namespace

std::uint64_t fft1d_flops(std::size_t n, bool inverse) {
  if (n < 2) return 0;
  const std::uint64_t butterflies =
      static_cast<std::uint64_t>(n / 2) * log2_of(n);
  std::uint64_t flops = butterflies * 10;  // cmul (6) + two cadds (4)
  if (inverse) flops += static_cast<std::uint64_t>(n) * 2;  // 1/n scaling
  return flops;
}

void fft1d(std::span<cfloat> data, bool inverse, tshmem::Context* charge_to) {
  const std::size_t n = data.size();
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft1d size must be a power of two");
  }
  if (n == 1) return;
  bit_reverse_permute(data);
  const float sign = inverse ? 1.0f : -1.0f;
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const float ang =
        sign * 2.0f * std::numbers::pi_v<float> / static_cast<float>(len);
    const cfloat wlen(std::cos(ang), std::sin(ang));
    for (std::size_t i = 0; i < n; i += len) {
      cfloat w(1.0f, 0.0f);
      for (std::size_t j = 0; j < len / 2; ++j) {
        const cfloat u = data[i + j];
        const cfloat v = data[i + j + len / 2] * w;
        data[i + j] = u + v;
        data[i + j + len / 2] = u - v;
        w *= wlen;
      }
    }
  }
  if (inverse) {
    const float inv_n = 1.0f / static_cast<float>(n);
    for (auto& x : data) x *= inv_n;
  }
  if (charge_to != nullptr) {
    charge_to->charge_fp_ops(fft1d_flops(n, inverse));
  }
}

cfloat fft2d_input(std::size_t r, std::size_t c, std::uint64_t seed) {
  tshmem_util::SplitMix64 sm(seed ^ (r * 0x9e3779b97f4a7c15ULL) ^
                             (c * 0xc2b2ae3d27d4eb4fULL));
  const std::uint64_t bits = sm.next();
  // Map to [-1, 1) real/imag.
  const float re =
      static_cast<float>(static_cast<std::uint32_t>(bits)) / 2147483648.0f -
      1.0f;
  const float im = static_cast<float>(static_cast<std::uint32_t>(bits >> 32)) /
                       2147483648.0f -
                   1.0f;
  return cfloat(re, im);
}

void fft2d_reference(std::vector<cfloat>& matrix, std::size_t n,
                     bool inverse) {
  if (matrix.size() != n * n) {
    throw std::invalid_argument("fft2d_reference: matrix size mismatch");
  }
  for (std::size_t r = 0; r < n; ++r) {
    fft1d(std::span<cfloat>(matrix.data() + r * n, n), inverse);
  }
  std::vector<cfloat> t(n * n);
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) t[c * n + r] = matrix[r * n + c];
  }
  for (std::size_t r = 0; r < n; ++r) {
    fft1d(std::span<cfloat>(t.data() + r * n, n), inverse);
  }
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) matrix[c * n + r] = t[r * n + c];
  }
}

Fft2dResult fft2d_run(tshmem::Context& ctx, std::size_t n,
                      std::uint64_t seed) {
  if (!is_pow2(n)) {
    throw std::invalid_argument("fft2d size must be a power of two");
  }
  const int npes = ctx.num_pes();
  const int me = ctx.my_pe();
  if (static_cast<std::size_t>(npes) > n) {
    throw std::invalid_argument("fft2d needs n >= num_pes");
  }
  const std::size_t rows_pp = (n + static_cast<std::size_t>(npes) - 1) /
                              static_cast<std::size_t>(npes);
  auto row_range = [&](int pe) {
    const std::size_t r0 =
        std::min(n, static_cast<std::size_t>(pe) * rows_pp);
    const std::size_t r1 = std::min(n, r0 + rows_pp);
    return std::pair<std::size_t, std::size_t>(r0, r1);
  };
  const auto [my_r0, my_r1] = row_range(me);
  const std::size_t my_rows = my_r1 - my_r0;

  // Symmetric row blocks: A holds my rows of the input, B my rows of the
  // transposed intermediate.
  auto* a = ctx.shmalloc_n<cfloat>(rows_pp * n);
  auto* b = ctx.shmalloc_n<cfloat>(rows_pp * n);
  if (a == nullptr || b == nullptr) {
    throw std::runtime_error("fft2d: symmetric heap exhausted");
  }
  for (std::size_t r = 0; r < my_rows; ++r) {
    for (std::size_t c = 0; c < n; ++c) {
      a[r * n + c] = fft2d_input(my_r0 + r, c, seed);
    }
  }
  ctx.harness_sync_reset();  // synchronized virtual-time origin

  Fft2dTiming timing;
  const auto t0 = ctx.clock().now();

  // Phase 1: 1D FFTs over my rows.
  for (std::size_t r = 0; r < my_rows; ++r) {
    fft1d(std::span<cfloat>(a + r * n, n), false, &ctx);
  }
  ctx.barrier_all();
  const auto t1 = ctx.clock().now();

  // Phase 2: distributed transpose — for every destination PE, build the
  // transposed sub-tile locally, then put it row-segment by row-segment
  // into the destination's B block (all-to-all communication).
  std::vector<cfloat> scratch(rows_pp * rows_pp);
  for (int q = 0; q < npes; ++q) {
    const auto [q_r0, q_r1] = row_range(q);
    const std::size_t q_rows = q_r1 - q_r0;
    if (q_rows == 0 || my_rows == 0) continue;
    for (std::size_t rp = 0; rp < q_rows; ++rp) {
      for (std::size_t c = 0; c < my_rows; ++c) {
        scratch[rp * my_rows + c] = a[c * n + (q_r0 + rp)];
      }
    }
    ctx.charge_mem_ops(2 * q_rows * my_rows);  // gather/scatter traffic
    for (std::size_t rp = 0; rp < q_rows; ++rp) {
      ctx.put(b + rp * n + my_r0, scratch.data() + rp * my_rows,
              my_rows * sizeof(cfloat), q);
    }
  }
  ctx.barrier_all();
  const auto t2 = ctx.clock().now();

  // Phase 3: 1D FFTs over the columns (rows of the transposed matrix).
  for (std::size_t r = 0; r < my_rows; ++r) {
    fft1d(std::span<cfloat>(b + r * n, n), false, &ctx);
  }
  ctx.barrier_all();
  const auto t3 = ctx.clock().now();

  // Phase 4: final transpose, serialized on PE 0 (paper: "Due to
  // computational serialization in the application's final transpose
  // stage, speedup on TILE-Gx begins to level off around 5").
  Fft2dResult result;
  if (me == 0) {
    result.output.resize(n * n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        const int owner = static_cast<int>(c / rows_pp);
        const std::size_t local = c - static_cast<std::size_t>(owner) * rows_pp;
        // Element-wise remote reads: the unparallelized gather loop.
        result.output[r * n + c] = ctx.g(b + local * n + r, owner);
      }
    }
  }
  ctx.barrier_all();
  const auto t4 = ctx.clock().now();

  if (me == 0) {
    timing.row_fft_ps = t1 - t0;
    timing.transpose_ps = t2 - t1;
    timing.col_fft_ps = t3 - t2;
    timing.final_transpose_ps = t4 - t3;
    timing.total_ps = t4 - t0;
    result.timing = timing;
  }
  ctx.shfree(b);
  ctx.shfree(a);
  return result;
}

}  // namespace apps
