// Parallel 2D FFT case study (paper §V-A).
//
// The application distributes the image's rows across PEs, runs 1D FFTs
// locally, performs a distributed transpose (all-to-all block puts), runs
// 1D FFTs over the columns, and finishes with a serialized transpose that
// gathers the result on PE 0 — the stage whose serialization caps TILE-Gx
// speedup around 5 in Fig 13 (its parallelization is the paper's declared
// future work).
#pragma once

#include <complex>
#include <cstdint>
#include <span>
#include <vector>

#include "tshmem/context.hpp"

namespace apps {

using cfloat = std::complex<float>;

/// In-place iterative radix-2 Cooley–Tukey FFT. `data.size()` must be a
/// power of two. When `charge_to` is non-null the device compute model is
/// charged fft1d_flops(n) floating-point operations.
void fft1d(std::span<cfloat> data, bool inverse = false,
           tshmem::Context* charge_to = nullptr);

/// Modeled flop count of a radix-2 FFT of size n: 10 flops per butterfly,
/// (n/2)·log2(n) butterflies (plus n multiplies for inverse scaling).
[[nodiscard]] std::uint64_t fft1d_flops(std::size_t n, bool inverse = false);

/// Serial reference 2D FFT (row FFTs, transpose, column FFTs, transpose)
/// used by tests to validate the parallel implementation.
void fft2d_reference(std::vector<cfloat>& matrix, std::size_t n,
                     bool inverse = false);

/// Deterministic test pattern: element (r, c) of the n x n input image.
[[nodiscard]] cfloat fft2d_input(std::size_t r, std::size_t c,
                                 std::uint64_t seed);

struct Fft2dTiming {
  tilesim::ps_t total_ps = 0;
  tilesim::ps_t row_fft_ps = 0;
  tilesim::ps_t transpose_ps = 0;
  tilesim::ps_t col_fft_ps = 0;
  tilesim::ps_t final_transpose_ps = 0;
};

struct Fft2dResult {
  Fft2dTiming timing;            ///< measured on PE 0 (job-wide span)
  std::vector<cfloat> output;    ///< full n x n result, only on PE 0
};

/// SPMD body: every PE of the job calls this; n must be a power of two and
/// >= num_pes. Returns the gathered output and timings on PE 0 (empty
/// output elsewhere).
Fft2dResult fft2d_run(tshmem::Context& ctx, std::size_t n,
                      std::uint64_t seed);

}  // namespace apps
