#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>

namespace tshmem_util {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) {
    throw std::invalid_argument("Table needs at least one column");
  }
}

Table& Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw std::invalid_argument("Table row width mismatch");
  }
  rows_.push_back(std::move(cells));
  return *this;
}

std::string Table::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::integer(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  return buf;
}

std::string Table::bytes(std::size_t n) {
  char buf[32];
  if (n >= (1ULL << 20) && n % (1ULL << 20) == 0) {
    std::snprintf(buf, sizeof buf, "%zu MB", n >> 20);
  } else if (n >= (1ULL << 10) && n % (1ULL << 10) == 0) {
    std::snprintf(buf, sizeof buf, "%zu kB", n >> 10);
  } else {
    std::snprintf(buf, sizeof buf, "%zu B", n);
  }
  return buf;
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& row : rows_) widths[c] = std::max(widths[c], row[c].size());
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) {
        os << std::string(widths[c] - cells[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& os) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << cells[c];
      if (c + 1 < cells.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

void print_banner(std::ostream& os, const std::string& experiment_id,
                  const std::string& caption) {
  os << "\n=== " << experiment_id << " — " << caption << " ===\n";
}

}  // namespace tshmem_util
