#include "util/units.hpp"

namespace tshmem_util {

double bandwidth_mbps(std::uint64_t bytes, ps_t elapsed) noexcept {
  if (elapsed == 0) return 0.0;
  // bytes / (elapsed_ps * 1e-12) seconds, scaled to 1e6 bytes.
  return static_cast<double>(bytes) * 1e6 / static_cast<double>(elapsed);
}

double bandwidth_gbps(std::uint64_t bytes, ps_t elapsed) noexcept {
  return bandwidth_mbps(bytes, elapsed) / 1e3;
}

ps_t transfer_time_ps(std::uint64_t bytes, double mbps) noexcept {
  if (mbps <= 0.0) return 0;
  // seconds = bytes / (mbps * 1e6); ps = seconds * 1e12.
  return static_cast<ps_t>(static_cast<double>(bytes) / mbps * 1e6 + 0.5);
}

}  // namespace tshmem_util
