// Unit conversions shared by the simulator and benchmark harnesses.
// Virtual device time is kept in integer picoseconds (ps) to represent both
// a 1 GHz (1000 ps) and a 700 MHz (1428.57… ps ≈ 1429 ps) clock without
// floating-point drift in long accumulations.
#pragma once

#include <cstdint>

namespace tshmem_util {

using ps_t = std::uint64_t;  ///< virtual device time, picoseconds

inline constexpr ps_t kPsPerNs = 1'000;
inline constexpr ps_t kPsPerUs = 1'000'000;
inline constexpr ps_t kPsPerMs = 1'000'000'000;
inline constexpr ps_t kPsPerSec = 1'000'000'000'000ULL;

[[nodiscard]] constexpr double ps_to_ns(ps_t ps) noexcept {
  return static_cast<double>(ps) / static_cast<double>(kPsPerNs);
}
[[nodiscard]] constexpr double ps_to_us(ps_t ps) noexcept {
  return static_cast<double>(ps) / static_cast<double>(kPsPerUs);
}
[[nodiscard]] constexpr double ps_to_ms(ps_t ps) noexcept {
  return static_cast<double>(ps) / static_cast<double>(kPsPerMs);
}
[[nodiscard]] constexpr double ps_to_sec(ps_t ps) noexcept {
  return static_cast<double>(ps) / static_cast<double>(kPsPerSec);
}

[[nodiscard]] constexpr ps_t ns_to_ps(double ns) noexcept {
  return static_cast<ps_t>(ns * static_cast<double>(kPsPerNs) + 0.5);
}
[[nodiscard]] constexpr ps_t us_to_ps(double us) noexcept {
  return static_cast<ps_t>(us * static_cast<double>(kPsPerUs) + 0.5);
}

/// Effective bandwidth in MB/s (decimal MB, as plotted in the paper) for
/// `bytes` moved in `elapsed` virtual time.
[[nodiscard]] double bandwidth_mbps(std::uint64_t bytes, ps_t elapsed) noexcept;

/// Effective bandwidth in GB/s.
[[nodiscard]] double bandwidth_gbps(std::uint64_t bytes, ps_t elapsed) noexcept;

/// Picoseconds to move `bytes` at `mbps` (decimal megabytes per second).
[[nodiscard]] ps_t transfer_time_ps(std::uint64_t bytes, double mbps) noexcept;

}  // namespace tshmem_util
