// Minimal flag parser for examples and benchmark binaries:
//   --pes 16 --device gx36 --size 1048576 --csv
// No external dependencies; unknown flags are an error so typos surface.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace tshmem_util {

class Cli {
 public:
  /// `bool_flags` names flags that never take a value (e.g. "csv"), so a
  /// following token is treated as positional rather than as their value.
  Cli(int argc, char** argv, std::set<std::string> bool_flags = {});

  /// Declares a flag with a default; returns parsed or default value.
  [[nodiscard]] std::string get_string(const std::string& name,
                                       const std::string& def) const;
  [[nodiscard]] long long get_int(const std::string& name, long long def) const;
  [[nodiscard]] double get_double(const std::string& name, double def) const;
  [[nodiscard]] bool get_flag(const std::string& name) const;  ///< presence

  [[nodiscard]] bool has(const std::string& name) const;

  /// Positional (non-flag) arguments in order.
  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

 private:
  std::string program_;
  std::map<std::string, std::string> values_;  // flag -> value ("" for bare)
  std::vector<std::string> positional_;
};

}  // namespace tshmem_util
