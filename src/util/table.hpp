// Fixed-width console table / CSV emitters used by every benchmark binary
// so figure reproductions print uniform, diff-friendly rows.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace tshmem_util {

/// Column-aligned text table. Rows are strings; numeric helpers format with
/// sensible precision. Call print() once all rows are added.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  Table& add_row(std::vector<std::string> cells);

  /// Format helpers producing cells.
  static std::string num(double v, int precision = 2);
  static std::string integer(long long v);
  static std::string bytes(std::size_t n);  ///< "8 B", "64 kB", "2 MB"

  void print(std::ostream& os) const;
  void print_csv(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Prints a "Figure N"-style banner so bench output maps 1:1 to the paper.
void print_banner(std::ostream& os, const std::string& experiment_id,
                  const std::string& caption);

}  // namespace tshmem_util
