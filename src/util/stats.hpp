// Small online/offline statistics helpers used by benchmark harnesses and
// property tests (min/max/mean/stddev/percentiles over samples).
#pragma once

#include <cstddef>
#include <vector>

namespace tshmem_util {

/// Welford online accumulator: numerically stable mean/variance without
/// storing samples. Suitable for long benchmark loops.
class OnlineStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;

  void merge(const OnlineStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Sample container with percentile queries (sorts lazily on demand).
class SampleSet {
 public:
  void add(double x) { samples_.push_back(x); sorted_ = false; }
  void reserve(std::size_t n) { samples_.reserve(n); }
  void clear() { samples_.clear(); sorted_ = false; }

  [[nodiscard]] std::size_t count() const noexcept { return samples_.size(); }
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double min() const;
  [[nodiscard]] double max() const;
  /// Linear-interpolated percentile, p in [0, 100].
  [[nodiscard]] double percentile(double p) const;
  [[nodiscard]] double median() const { return percentile(50.0); }

  [[nodiscard]] const std::vector<double>& raw() const noexcept {
    return samples_;
  }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  void ensure_sorted() const;
};

/// Least-squares slope of y over x; used by shape tests (e.g. "latency is
/// linear in tile count", "stage-2 collect volume grows quadratically").
double linear_slope(const std::vector<double>& x, const std::vector<double>& y);

/// Pearson correlation coefficient.
double correlation(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace tshmem_util
