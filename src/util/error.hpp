// Structured TSHMEM error codes (robustness layer; see docs/ROBUSTNESS.md).
//
// Lives in util — the bottom layer — so sim/tmc/tshmem can all raise
// structured errors without upward dependencies, while the public type
// keeps the library's namespace: tshmem::Error. Header-only; deriving from
// std::runtime_error keeps every pre-existing EXPECT_THROW(runtime_error)
// contract intact while letting callers switch on a stable code.
#pragma once

#include <stdexcept>
#include <string>

namespace tshmem {

/// Stable error codes. The numeric values are part of the documented
/// surface (docs/ROBUSTNESS.md error-code table); append only.
enum class Errc : int {
  kInvalidPe = 1,       ///< PE number outside [0, npes)
  kNotSymmetric = 2,    ///< address is not a symmetric object
  kOutOfBounds = 3,     ///< transfer runs past the symmetric object/region
  kForeignFree = 4,     ///< shfree of a pointer this PE's heap does not own
  kRetriesExhausted = 5,  ///< bounded retry gave up (UDN drop/corrupt storm)
  kCorruptPacket = 6,   ///< UDN per-packet checksum mismatch at the receiver
  kWatchdogTimeout = 7, ///< a blocking wait exceeded the watchdog budget
  kCmemMapFailed = 8,   ///< common-memory mapping failed after bounded retry
  kRunInProgress = 9,   ///< Runtime::run while a job is already running
  kFinalizePending = 10,  ///< finalize with outstanding non-blocking work
  kRaceDetected = 11,   ///< tshmem-check found a data race (kFail mode)
  kShardDegraded = 12,  ///< serving router shed a query from a degraded shard
  kReplicaLost = 13,    ///< a shard replica crashed and no peer could absorb
                        ///< its queries (docs/SERVING.md failover)
  kDeadlineExceeded = 14,  ///< admission control dropped a query whose
                           ///< virtual-time deadline cannot be met
};

[[nodiscard]] constexpr const char* errc_name(Errc c) noexcept {
  switch (c) {
    case Errc::kInvalidPe: return "invalid_pe";
    case Errc::kNotSymmetric: return "not_symmetric";
    case Errc::kOutOfBounds: return "out_of_bounds";
    case Errc::kForeignFree: return "foreign_free";
    case Errc::kRetriesExhausted: return "retries_exhausted";
    case Errc::kCorruptPacket: return "corrupt_packet";
    case Errc::kWatchdogTimeout: return "watchdog_timeout";
    case Errc::kCmemMapFailed: return "cmem_map_failed";
    case Errc::kRunInProgress: return "run_in_progress";
    case Errc::kFinalizePending: return "finalize_pending";
    case Errc::kRaceDetected: return "race_detected";
    case Errc::kShardDegraded: return "shard_degraded";
    case Errc::kReplicaLost: return "replica_lost";
    case Errc::kDeadlineExceeded: return "deadline_exceeded";
  }
  return "unknown";
}

/// Structured runtime error: a stable Errc plus a human-readable message
/// prefixed with the code name ("[watchdog_timeout] ...").
class Error : public std::runtime_error {
 public:
  Error(Errc code, const std::string& message)
      : std::runtime_error(std::string("[") + errc_name(code) + "] " +
                           message),
        code_(code) {}

  [[nodiscard]] Errc code() const noexcept { return code_; }

 private:
  Errc code_;
};

}  // namespace tshmem
