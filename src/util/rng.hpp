// Deterministic, seedable pseudo-random number generation for workload
// synthesis. We avoid std::mt19937 in hot generation paths: xoshiro256**
// is faster, has a tiny state, and gives us identical streams on every
// platform, which the synthetic CBIR image database depends on.
#pragma once

#include <cstdint>
#include <limits>

namespace tshmem_util {

/// SplitMix64: used to expand a single 64-bit seed into generator state.
/// Reference: Steele, Lea, Doug (2014), as published by Vigna.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 by Blackman & Vigna. Not cryptographic; used only for
/// synthetic workload generation and property-test input sweeps.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  explicit Xoshiro256(std::uint64_t seed) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm{seed};
    for (auto& word : s_) word = sm.next();
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  std::uint64_t operator()() noexcept { return next(); }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform integer in [0, bound) via Lemire's multiply-shift rejection.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform01();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
};

}  // namespace tshmem_util
