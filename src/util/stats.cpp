#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace tshmem_util {

void OnlineStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double OnlineStats::stddev() const noexcept { return std::sqrt(variance()); }

void OnlineStats::merge(const OnlineStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
}

double SampleSet::mean() const noexcept {
  if (samples_.empty()) return 0.0;
  double sum = 0.0;
  for (double s : samples_) sum += s;
  return sum / static_cast<double>(samples_.size());
}

double SampleSet::min() const {
  if (samples_.empty()) throw std::logic_error("SampleSet::min on empty set");
  ensure_sorted();
  return samples_.front();
}

double SampleSet::max() const {
  if (samples_.empty()) throw std::logic_error("SampleSet::max on empty set");
  ensure_sorted();
  return samples_.back();
}

double SampleSet::percentile(double p) const {
  if (samples_.empty()) {
    throw std::logic_error("SampleSet::percentile on empty set");
  }
  if (p < 0.0 || p > 100.0) {
    throw std::invalid_argument("percentile must be in [0, 100]");
  }
  ensure_sorted();
  if (samples_.size() == 1) return samples_.front();
  const double rank = p / 100.0 * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const double frac = rank - static_cast<double>(lo);
  if (lo + 1 >= samples_.size()) return samples_.back();
  return samples_[lo] + frac * (samples_[lo + 1] - samples_[lo]);
}

double linear_slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("linear_slope needs >= 2 paired samples");
  }
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) return 0.0;
  return (n * sxy - sx * sy) / denom;
}

double correlation(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    throw std::invalid_argument("correlation needs >= 2 paired samples");
  }
  OnlineStats sx, sy;
  for (double v : x) sx.add(v);
  for (double v : y) sy.add(v);
  double cov = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    cov += (x[i] - sx.mean()) * (y[i] - sy.mean());
  }
  cov /= static_cast<double>(x.size() - 1);
  const double denom = sx.stddev() * sy.stddev();
  if (denom == 0.0) return 0.0;
  return cov / denom;
}

}  // namespace tshmem_util
