#include "util/cli.hpp"

#include <cstdlib>
#include <stdexcept>

namespace tshmem_util {

Cli::Cli(int argc, char** argv, std::set<std::string> bool_flags) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) == 0) {
      std::string name = arg.substr(2);
      std::string value;
      const auto eq = name.find('=');
      if (eq != std::string::npos) {
        value = name.substr(eq + 1);
        name = name.substr(0, eq);
      } else if (bool_flags.count(name) == 0 && i + 1 < argc &&
                 std::string(argv[i + 1]).rfind("--", 0) != 0) {
        value = argv[++i];
      }
      values_[name] = value;
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Cli::has(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string Cli::get_string(const std::string& name,
                            const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

long long Cli::get_int(const std::string& name, long long def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const long long v = std::strtoll(it->second.c_str(), &end, 0);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + name + " expects an integer, got '" +
                                it->second + "'");
  }
  return v;
}

double Cli::get_double(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  char* end = nullptr;
  const double v = std::strtod(it->second.c_str(), &end);
  if (end == it->second.c_str() || *end != '\0') {
    throw std::invalid_argument("flag --" + name + " expects a number, got '" +
                                it->second + "'");
  }
  return v;
}

bool Cli::get_flag(const std::string& name) const { return has(name); }

}  // namespace tshmem_util
