#include "util/rng.hpp"

namespace tshmem_util {

std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless method: widen-multiply and reject the
  // biased low region. Expected < 2 iterations for all bounds.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

}  // namespace tshmem_util
