// TSHMEM runtime: the library's equivalent of the executable launcher plus
// per-PE environment (paper §IV-A).
//
// The paper's launcher creates TMC common memory, sets up the UDN, forks
// one process per tile and exec()s the application; start_pes() then
// partitions the shared space symmetrically. Here Runtime::run() spawns one
// tile thread per PE, carves the symmetric partitions out of CommonMemory,
// and hands each thread a Context. Static symmetric objects (link-time
// layout in the paper) are emulated by a StaticRegistry handing out stable
// offsets into per-PE private arenas.
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "analysis/race.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/profiler.hpp"
#include "obs/timeseries.hpp"
#include "sim/device.hpp"
#include "tmc/barrier.hpp"
#include "tmc/common_memory.hpp"
#include "tmc/interrupt.hpp"
#include "tmc/udn.hpp"
#include "tshmem/types.hpp"

namespace tshmem {

using tilesim::Device;
using tilesim::DeviceConfig;
using tilesim::ps_t;
using tilesim::Tile;

class Context;

/// Emulates the link-time layout of static symmetric variables: every
/// registered name receives a stable offset; each PE's copy lives at that
/// offset inside its private arena (same device virtual address, private
/// physical storage — see DESIGN.md §2).
class StaticRegistry {
 public:
  explicit StaticRegistry(std::size_t arena_bytes);

  struct Entry {
    std::size_t offset;
    std::size_t bytes;
  };

  /// Registers (or looks up) a named object. Re-registration with a
  /// different size throws — the "executable" can only have one layout.
  Entry reserve(const std::string& name, std::size_t bytes,
                std::size_t alignment);

  [[nodiscard]] std::size_t arena_bytes() const noexcept {
    return arena_bytes_;
  }
  [[nodiscard]] std::size_t bytes_used() const;
  [[nodiscard]] std::size_t object_count() const;

 private:
  std::size_t arena_bytes_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::size_t next_offset_ = 0;
};

struct RuntimeOptions {
  std::size_t heap_per_pe = std::size_t{32} << 20;    ///< symmetric partition
  std::size_t private_per_pe = std::size_t{8} << 20;  ///< static arena
  tilesim::Homing partition_homing = tilesim::Homing::kHashForHome;
  BarrierAlgo barrier_algo = BarrierAlgo::kLinearToken;
  /// Debug aid: verify collectively at every shmalloc/shfree that all PEs
  /// passed matching arguments (the symmetry precondition of paper SIV-A).
  /// Uses host-level synchronization only — zero virtual-time cost — so it
  /// can stay on during benchmarking without perturbing results.
  bool validate_symmetry = false;
  /// Enable the metrics/telemetry subsystem (src/obs): per-PE counters,
  /// gauges, and virtual-time histograms, scraped from every layer at the
  /// end of each run(). Purely observational — instrumentation never
  /// advances a SimClock, so virtual-time results are bit-identical with
  /// metrics on or off. The TSHMEM_METRICS environment variable overrides
  /// this field ("0"/"false"/"off" disable, any other value enables).
  bool metrics = false;
  /// Enable the virtual-time critical-path profiler (src/obs/profiler;
  /// docs/PROFILING.md): per-PE span stacks, wait-for edges, and a
  /// critical-path report, exported as tshmem.profile.v1 JSON, collapsed
  /// flamegraph stacks, and Perfetto flow events. Purely observational —
  /// the profiler never advances a SimClock, so virtual-time results are
  /// bit-identical with profiling on or off (CI-enforced). The
  /// TSHMEM_PROFILE environment variable overrides this field.
  bool profile = false;
  /// Opt-in debug validation (docs/ROBUSTNESS.md): put/get/NBI arguments
  /// are checked for invalid PEs, non-symmetric addresses, and
  /// out-of-bounds transfers, surfacing structured tshmem::Error codes.
  /// Host-side checks only — zero virtual-time cost — but they walk heap
  /// metadata per transfer, so they are off by default. The TSHMEM_DEBUG
  /// environment variable overrides this field.
  bool debug_validation = false;
  /// Host-time budget (milliseconds) for any single blocking wait (UDN
  /// receive/send-space, barriers, shmem_wait_until, locks). On expiry the
  /// stuck PE throws tshmem::Error(kWatchdogTimeout) carrying a per-PE
  /// diagnostic snapshot instead of hanging forever. 0 disables. The
  /// TSHMEM_WATCHDOG_MS environment variable overrides this field.
  int watchdog_ms = 120000;
  /// Deterministic fault-injection plan (docs/ROBUSTNESS.md). An empty
  /// plan attaches no engine — the default — and keeps every figure
  /// bit-identical. The TSHMEM_FAULT_PLAN environment variable, when set,
  /// replaces this field (parsed by tilesim::FaultPlan::parse).
  tilesim::FaultPlan fault_plan;
  /// tshmem-check: virtual-time happens-before race detection over the
  /// symmetric heap (src/analysis; docs/ANALYSIS.md). kOff attaches no
  /// detector (zero cost); kReport collects structured RaceReports
  /// (Runtime::race_reports()); kFail additionally throws
  /// Error(kRaceDetected) when a run ends with findings. Instrumentation
  /// never advances a SimClock, so virtual time stays bit-identical in
  /// every mode. The TSHMEM_RACECHECK environment variable overrides this
  /// field ("0"/"off" -> kOff, "fail"/"2" -> kFail, else kReport).
  analysis::RaceMode racecheck = analysis::RaceMode::kOff;
  /// Shadow-memory granule in bytes (power of two in [1, 64]); accesses
  /// to disjoint bytes of one granule never conflict thanks to per-byte
  /// masks, so the granule trades host memory for lookup locality only.
  /// The TSHMEM_RACECHECK_GRANULE environment variable overrides it.
  std::size_t racecheck_granule = 8;
  /// Enable the per-PE flight recorder (src/obs/flightrec;
  /// docs/OBSERVABILITY.md): a fixed-capacity ring of compact event records
  /// per PE, written from every instrumented layer. Purely observational —
  /// recording never advances a SimClock, so virtual-time results are
  /// bit-identical recorder on/off (CI-enforced). The TSHMEM_FLIGHTREC
  /// environment variable overrides this field.
  bool flightrec = false;
  /// Ring capacity per PE (events); the newest overwrite the oldest.
  std::size_t flightrec_capacity = obs::FlightRecorder::kDefaultCapacity;
  /// Fixed virtual-time window width for the time-series aggregator
  /// (src/obs/timeseries): per-window event counts and latency quantiles,
  /// exported as tshmem.timeseries.v1. 0 disables. A positive width
  /// implies flightrec (the recorder feeds the aggregator's "event.*"
  /// series and forwards epoch folds). The TSHMEM_TIMESERIES_WINDOW_PS
  /// environment variable overrides this field.
  ps_t timeseries_window_ps = 0;
  /// When non-empty, any tshmem::Error escaping a job (watchdog timeouts
  /// included) writes a tshmem.blackbox.v1 post-mortem dump to this path
  /// before teardown — the last-N events of every PE, merged by virtual
  /// time, plus the diagnostic board and active fault plan. Render it with
  /// tools/triage.py. Implies flightrec. The TSHMEM_BLACKBOX environment
  /// variable overrides this field.
  std::string blackbox_path;
};

class Runtime {
 public:
  explicit Runtime(const DeviceConfig& cfg, RuntimeOptions opts = {});
  ~Runtime();

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  /// Launch `npes` PEs (bound 1:1 to tiles 0..npes-1) and run `fn` on each.
  /// Blocks until all PEs return; rethrows the first PE exception.
  void run(int npes, const std::function<void(Context&)>& fn);

  // --- topology of the running job ----------------------------------------
  [[nodiscard]] Device& device() noexcept { return device_; }
  [[nodiscard]] const DeviceConfig& config() const noexcept {
    return device_.config();
  }
  [[nodiscard]] tmc::CommonMemory& cmem() noexcept { return cmem_; }
  [[nodiscard]] tmc::UdnFabric& udn() noexcept { return udn_; }
  [[nodiscard]] tmc::InterruptController& interrupts() noexcept {
    return intc_;
  }
  [[nodiscard]] StaticRegistry& statics() noexcept { return statics_; }
  [[nodiscard]] const RuntimeOptions& options() const noexcept {
    return opts_;
  }

  [[nodiscard]] int npes() const noexcept { return npes_; }

  /// Base of PE `pe`'s symmetric partition (valid during run()).
  [[nodiscard]] std::byte* partition_base(int pe) const;
  /// Base of PE `pe`'s private (static symmetric) arena.
  [[nodiscard]] std::byte* private_base(int pe) const;

  [[nodiscard]] Context& context(int pe) const;

  /// Context bound to the calling thread, or nullptr outside run().
  [[nodiscard]] static Context* current() noexcept;

  // --- services used by Context -------------------------------------------
  /// Timestamp (atomic max) of the last completed remote store delivered
  /// into PE `pe`'s memory; shmem_wait uses it to order virtual time.
  void note_delivery(int pe, ps_t completion);
  [[nodiscard]] ps_t last_delivery(int pe) const;

  /// Shared bounce buffer for static-static transfers and collective
  /// staging: a persistent per-PE slot grown on demand, so cmem placement
  /// and statistics replay bit-identically (free_bounce is a no-op; the
  /// slot is recycled and unmapped at job teardown).
  void* alloc_bounce(std::size_t bytes, int tile);
  void free_bounce(void* p);

  /// Cached TMC spin barrier for an active set (BarrierAlgo::kTmcSpin).
  tmc::SpinBarrier& spin_barrier_for(const ActiveSet& as);

  /// Symmetry validation (validate_symmetry option): every PE posts the
  /// argument of its collective allocation call; after a host rendezvous
  /// each PE checks agreement and throws std::logic_error on divergence.
  void check_symmetric_arg(int pe, std::uint64_t value, const char* what);

  /// Runtime-wide default barrier algorithm (settable per Context too).
  [[nodiscard]] BarrierAlgo barrier_algo() const noexcept {
    return opts_.barrier_algo;
  }

  // --- robustness (src/sim/fault.hpp; docs/ROBUSTNESS.md) ------------------
  /// Fault engine attached to this runtime's device; nullptr when the
  /// effective plan is empty (the default — zero-cost hardened paths).
  [[nodiscard]] tilesim::FaultEngine* fault_engine() noexcept {
    return fault_engine_.get();
  }
  [[nodiscard]] bool debug_validation() const noexcept {
    return debug_validation_;
  }

  /// Per-PE liveness board feeding the watchdog diagnostic: each Context
  /// posts the name of the operation it is entering (static strings only)
  /// and its lock hold count. Relaxed atomics; zero virtual-time cost.
  void note_op(int pe, const char* op) noexcept;
  void note_lock_delta(int pe, int delta) noexcept;

  /// Diagnostic snapshot of every PE: last op, op count, virtual clock,
  /// held locks, UDN queue depths, DMA queue depth. Built on watchdog
  /// timeout, usable any time during run().
  [[nodiscard]] std::string watchdog_report() const;

  // --- race checking (src/analysis; docs/ANALYSIS.md) ----------------------
  /// Effective mode after the TSHMEM_RACECHECK override.
  [[nodiscard]] analysis::RaceMode racecheck_mode() const noexcept {
    return racecheck_mode_;
  }
  /// Detector for the running job; nullptr outside run() or when off.
  [[nodiscard]] analysis::RaceDetector* race_detector() noexcept {
    return race_detector_.get();
  }
  /// All findings accumulated across run() calls, canonically ordered.
  [[nodiscard]] const std::vector<analysis::RaceReport>& race_reports()
      const noexcept {
    return race_reports_;
  }
  void clear_race_reports() { race_reports_.clear(); }

  // --- metrics (src/obs) ---------------------------------------------------
  [[nodiscard]] bool metrics_enabled() const noexcept {
    return metrics_enabled_;
  }
  /// Registry the instrumentation records into. Live even when metrics are
  /// disabled (it just stays empty); hot paths gate on metrics_enabled().
  [[nodiscard]] obs::MetricsRegistry& metrics_registry() noexcept {
    return registry_;
  }
  /// Snapshot of everything recorded so far, annotated with the device
  /// short name and the PE count of the most recent job. Valid after
  /// run() returns (the teardown scrape has completed by then).
  [[nodiscard]] obs::MetricsSnapshot metrics() const;

  // --- profiling (src/obs/profiler; docs/PROFILING.md) ---------------------
  [[nodiscard]] bool profile_enabled() const noexcept {
    return profile_enabled_;
  }
  /// Critical-path profiler attached to this runtime's device; nullptr
  /// unless the profile option / TSHMEM_PROFILE enabled it. Call its
  /// report() only outside run().
  [[nodiscard]] obs::Profiler* profiler() noexcept { return profiler_.get(); }

  // --- flight recorder / time series (src/obs; docs/OBSERVABILITY.md) ------
  [[nodiscard]] bool flightrec_enabled() const noexcept {
    return flightrec_enabled_;
  }
  /// Flight recorder attached to this runtime's device; nullptr unless the
  /// flightrec option / TSHMEM_FLIGHTREC (or an implying option) enabled it.
  [[nodiscard]] obs::FlightRecorder* flightrec() noexcept {
    return flightrec_.get();
  }
  /// Windowed time-series aggregator; nullptr unless timeseries_window_ps /
  /// TSHMEM_TIMESERIES_WINDOW_PS is positive.
  [[nodiscard]] obs::TimeSeries* timeseries() noexcept {
    return timeseries_.get();
  }
  /// Writes a tshmem.blackbox.v1 dump describing `reason` to `os`. Returns
  /// false (writing nothing) when no flight recorder is attached. Usable
  /// any time; the runtime calls it itself, to blackbox_path, when a job
  /// dies with an exception.
  bool write_blackbox(std::ostream& os, const std::string& reason,
                      int errc = 0);

 private:
  RuntimeOptions opts_;
  Device device_;
  tmc::CommonMemory cmem_;
  tmc::UdnFabric udn_;
  tmc::InterruptController intc_;
  StaticRegistry statics_;

  // --- robustness state ----------------------------------------------------
  struct PeState {
    std::atomic<const char*> op{"idle"};   // static strings only
    std::atomic<std::uint64_t> op_seq{0};
    std::atomic<int> held_locks{0};
  };
  std::unique_ptr<tilesim::FaultEngine> fault_engine_;  // null = no faults
  tilesim::Watchdog watchdog_;
  bool debug_validation_ = false;
  analysis::RaceMode racecheck_mode_ = analysis::RaceMode::kOff;
  std::size_t racecheck_granule_ = 8;
  std::unique_ptr<analysis::RaceDetector> race_detector_;  // per-run
  std::vector<analysis::RaceReport> race_reports_;
  std::vector<std::unique_ptr<PeState>> pe_states_;
  std::atomic<bool> running_{false};

  int npes_ = 0;
  std::byte* partitions_ = nullptr;  // npes_ * heap_per_pe, in cmem_
  std::vector<std::unique_ptr<std::vector<std::byte>>> private_arenas_;
  std::vector<std::unique_ptr<Context>> contexts_;

  std::vector<std::unique_ptr<std::atomic<ps_t>>> delivery_;
  std::vector<std::uint64_t> symmetry_slots_;

  // Persistent per-PE bounce slots (see alloc_bounce): indexed by PE, each
  // touched only by its own PE's thread during a run.
  std::vector<void*> bounce_slots_;
  std::vector<std::size_t> bounce_slot_bytes_;

  std::mutex spin_mu_;
  std::map<std::uint64_t, std::unique_ptr<tmc::SpinBarrier>> spin_barriers_;

  // --- metrics state -------------------------------------------------------
  bool metrics_enabled_ = false;
  bool profile_enabled_ = false;
  bool flightrec_enabled_ = false;
  ps_t timeseries_window_ps_ = 0;
  std::string blackbox_path_;
  std::unique_ptr<obs::Profiler> profiler_;  // null unless profiling enabled
  std::unique_ptr<obs::TimeSeries> timeseries_;    // null unless windowed
  std::unique_ptr<obs::FlightRecorder> flightrec_; // null unless recording
  obs::MetricsRegistry registry_;
  int last_npes_ = 0;
  // Scrape baselines: the sim/tmc layers keep cumulative internal stats;
  // each end-of-run scrape adds only the delta since the previous scrape so
  // registry counters stay correct across multiple run() calls.
  std::vector<tmc::UdnFabric::TileTraffic> scraped_udn_;
  std::vector<tilesim::AccessCounts> scraped_cache_;
  tmc::CommonMemory::Stats scraped_cmem_;
  std::map<std::pair<int, int>, std::uint64_t> scraped_fault_;  // (site,tile)

  void setup_job(int npes);
  void teardown_job();
  /// Writes the post-mortem dump to blackbox_path_ (no-op when unset or no
  /// recorder). Called before teardown so the diagnostic board still sees
  /// the dying job's PEs.
  void maybe_dump_blackbox(const std::string& reason, int errc);
  /// cmem map with bounded retry against injected map faults (recovered
  /// attempts are counted in recovery.cmem.map_retries).
  void* map_with_retry(const std::string& name, std::size_t bytes,
                       tilesim::Homing homing, int tile);
  /// End-of-run scrape of layer-internal stats into the registry (UDN
  /// traffic, cache-probe counts, busy/idle time, heap/cmem occupancy).
  void scrape_run_stats();
};

/// Convenience: build a runtime for a named device and run one SPMD job.
void run_spmd(const DeviceConfig& cfg, int npes,
              const std::function<void(Context&)>& fn,
              RuntimeOptions opts = {});

}  // namespace tshmem
