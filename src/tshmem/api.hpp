// The OpenSHMEM v1.0 API surface of TSHMEM.
//
// Function names and signatures mirror the specification (Table I of the
// paper lists the basic subset) so SHMEM application code ports with a
// namespace qualifier at most. Every routine forwards to the Context bound
// to the calling tile thread (established by tshmem::Runtime::run).
//
// Usage:
//   tshmem::run_spmd(cfg, npes, [](tshmem::Context&) {
//     using namespace tshmem::api;
//     start_pes(0);
//     int* x = (int*)shmalloc(sizeof(int));
//     shmem_int_p(x, 42, (_my_pe() + 1) % _num_pes());
//     shmem_barrier_all();
//     ...
//   });
#pragma once

#include <complex>
#include <cstddef>

#include "tshmem/context.hpp"

namespace tshmem::api {

/// Context of the calling PE; throws std::logic_error outside a job.
[[nodiscard]] Context& ctx();

// --- environment / setup (spec §8.1) ---------------------------------------
void start_pes(int npes);  ///< npes argument is ignored per the spec
[[nodiscard]] int _my_pe();
[[nodiscard]] int _num_pes();
[[nodiscard]] int shmem_my_pe();
[[nodiscard]] int shmem_n_pes();
[[nodiscard]] int shmem_pe_accessible(int pe);
[[nodiscard]] int shmem_addr_accessible(const void* addr, int pe);
[[nodiscard]] void* shmem_ptr(const void* target, int pe);
/// Proposed extension (paper §IV-E).
void shmem_finalize();

// --- symmetric heap (spec §8.2) ---------------------------------------------
[[nodiscard]] void* shmalloc(std::size_t size);
void shfree(void* ptr);
[[nodiscard]] void* shrealloc(void* ptr, std::size_t size);
[[nodiscard]] void* shmemalign(std::size_t alignment, std::size_t size);

// --- elemental put/get (spec §8.3) -------------------------------------------
#define TSHMEM_DECL_P_G(T, NAME)                 \
  void shmem_##NAME##_p(T* addr, T value, int pe); \
  [[nodiscard]] T shmem_##NAME##_g(const T* addr, int pe);
TSHMEM_DECL_P_G(char, char)
TSHMEM_DECL_P_G(short, short)
TSHMEM_DECL_P_G(int, int)
TSHMEM_DECL_P_G(long, long)
TSHMEM_DECL_P_G(long long, longlong)
TSHMEM_DECL_P_G(float, float)
TSHMEM_DECL_P_G(double, double)
TSHMEM_DECL_P_G(long double, longdouble)
#undef TSHMEM_DECL_P_G

// --- block put/get ------------------------------------------------------------
#define TSHMEM_DECL_PUT_GET(T, NAME)                                          \
  void shmem_##NAME##_put(T* target, const T* source, std::size_t nelems,     \
                          int pe);                                            \
  void shmem_##NAME##_get(T* target, const T* source, std::size_t nelems,     \
                          int pe);
TSHMEM_DECL_PUT_GET(char, char)
TSHMEM_DECL_PUT_GET(short, short)
TSHMEM_DECL_PUT_GET(int, int)
TSHMEM_DECL_PUT_GET(long, long)
TSHMEM_DECL_PUT_GET(long long, longlong)
TSHMEM_DECL_PUT_GET(float, float)
TSHMEM_DECL_PUT_GET(double, double)
TSHMEM_DECL_PUT_GET(long double, longdouble)
#undef TSHMEM_DECL_PUT_GET

void shmem_put32(void* target, const void* source, std::size_t nelems, int pe);
void shmem_put64(void* target, const void* source, std::size_t nelems, int pe);
void shmem_put128(void* target, const void* source, std::size_t nelems,
                  int pe);
void shmem_putmem(void* target, const void* source, std::size_t bytes, int pe);
void shmem_get32(void* target, const void* source, std::size_t nelems, int pe);
void shmem_get64(void* target, const void* source, std::size_t nelems, int pe);
void shmem_get128(void* target, const void* source, std::size_t nelems,
                  int pe);
void shmem_getmem(void* target, const void* source, std::size_t bytes, int pe);

// --- non-blocking put/get (OpenSHMEM 1.3 §9.4; completion at shmem_quiet) ---
// The call returns as soon as the transfer is posted to the calling tile's
// DMA engine; the local buffer (puts) or destination (gets) may only be
// reused/read after shmem_quiet(). See docs/NBI.md.
#define TSHMEM_DECL_PUT_GET_NBI(T, NAME)                                      \
  void shmem_##NAME##_put_nbi(T* target, const T* source, std::size_t nelems, \
                              int pe);                                        \
  void shmem_##NAME##_get_nbi(T* target, const T* source, std::size_t nelems, \
                              int pe);
TSHMEM_DECL_PUT_GET_NBI(char, char)
TSHMEM_DECL_PUT_GET_NBI(short, short)
TSHMEM_DECL_PUT_GET_NBI(int, int)
TSHMEM_DECL_PUT_GET_NBI(long, long)
TSHMEM_DECL_PUT_GET_NBI(long long, longlong)
TSHMEM_DECL_PUT_GET_NBI(float, float)
TSHMEM_DECL_PUT_GET_NBI(double, double)
TSHMEM_DECL_PUT_GET_NBI(long double, longdouble)
#undef TSHMEM_DECL_PUT_GET_NBI

void shmem_put32_nbi(void* target, const void* source, std::size_t nelems,
                     int pe);
void shmem_put64_nbi(void* target, const void* source, std::size_t nelems,
                     int pe);
void shmem_put128_nbi(void* target, const void* source, std::size_t nelems,
                      int pe);
void shmem_putmem_nbi(void* target, const void* source, std::size_t bytes,
                      int pe);
void shmem_get32_nbi(void* target, const void* source, std::size_t nelems,
                     int pe);
void shmem_get64_nbi(void* target, const void* source, std::size_t nelems,
                     int pe);
void shmem_get128_nbi(void* target, const void* source, std::size_t nelems,
                      int pe);
void shmem_getmem_nbi(void* target, const void* source, std::size_t bytes,
                      int pe);

// --- strided put/get -----------------------------------------------------------
#define TSHMEM_DECL_IPUT_IGET(T, NAME)                                      \
  void shmem_##NAME##_iput(T* target, const T* source, std::ptrdiff_t tst,  \
                           std::ptrdiff_t sst, std::size_t nelems, int pe); \
  void shmem_##NAME##_iget(T* target, const T* source, std::ptrdiff_t tst,  \
                           std::ptrdiff_t sst, std::size_t nelems, int pe);
TSHMEM_DECL_IPUT_IGET(short, short)
TSHMEM_DECL_IPUT_IGET(int, int)
TSHMEM_DECL_IPUT_IGET(long, long)
TSHMEM_DECL_IPUT_IGET(long long, longlong)
TSHMEM_DECL_IPUT_IGET(float, float)
TSHMEM_DECL_IPUT_IGET(double, double)
TSHMEM_DECL_IPUT_IGET(long double, longdouble)
#undef TSHMEM_DECL_IPUT_IGET

void shmem_iput32(void* target, const void* source, std::ptrdiff_t tst,
                  std::ptrdiff_t sst, std::size_t nelems, int pe);
void shmem_iput64(void* target, const void* source, std::ptrdiff_t tst,
                  std::ptrdiff_t sst, std::size_t nelems, int pe);
void shmem_iput128(void* target, const void* source, std::ptrdiff_t tst,
                   std::ptrdiff_t sst, std::size_t nelems, int pe);
void shmem_iget32(void* target, const void* source, std::ptrdiff_t tst,
                  std::ptrdiff_t sst, std::size_t nelems, int pe);
void shmem_iget64(void* target, const void* source, std::ptrdiff_t tst,
                  std::ptrdiff_t sst, std::size_t nelems, int pe);
void shmem_iget128(void* target, const void* source, std::ptrdiff_t tst,
                   std::ptrdiff_t sst, std::size_t nelems, int pe);

// --- synchronization (spec §8.4/§8.6) ---------------------------------------
void shmem_barrier_all();
void shmem_barrier(int PE_start, int logPE_stride, int PE_size, long* pSync);
void shmem_fence();
void shmem_quiet();

#define TSHMEM_DECL_WAIT(T, NAME)                               \
  void shmem_##NAME##_wait(volatile T* ivar, T cmp_value);      \
  void shmem_##NAME##_wait_until(volatile T* ivar, int cmp, T cmp_value);
TSHMEM_DECL_WAIT(short, short)
TSHMEM_DECL_WAIT(int, int)
TSHMEM_DECL_WAIT(long, long)
TSHMEM_DECL_WAIT(long long, longlong)
#undef TSHMEM_DECL_WAIT
void shmem_wait(volatile long* ivar, long cmp_value);
void shmem_wait_until(volatile long* ivar, int cmp, long cmp_value);

/// shmem_wait_until comparison constants (spec values).
inline constexpr int SHMEM_CMP_EQ = 0;
inline constexpr int SHMEM_CMP_NE = 1;
inline constexpr int SHMEM_CMP_GT = 2;
inline constexpr int SHMEM_CMP_LE = 3;
inline constexpr int SHMEM_CMP_LT = 4;
inline constexpr int SHMEM_CMP_GE = 5;

/// Work-array constants (spec names keep a leading underscore; these are
/// the same values under identifiers valid in C++).
inline constexpr long SHMEM_SYNC_VALUE = kSyncValue;
inline constexpr std::size_t SHMEM_BCAST_SYNC_SIZE = kBcastSyncSize;
inline constexpr std::size_t SHMEM_COLLECT_SYNC_SIZE = kCollectSyncSize;
inline constexpr std::size_t SHMEM_REDUCE_SYNC_SIZE = kReduceSyncSize;
inline constexpr std::size_t SHMEM_BARRIER_SYNC_SIZE = kBarrierSyncSize;
inline constexpr std::size_t SHMEM_REDUCE_MIN_WRKDATA_SIZE =
    kReduceMinWrkDataSize;

// --- collectives (spec §8.5) -------------------------------------------------
void shmem_broadcast32(void* target, const void* source, std::size_t nelems,
                       int PE_root, int PE_start, int logPE_stride,
                       int PE_size, long* pSync);
void shmem_broadcast64(void* target, const void* source, std::size_t nelems,
                       int PE_root, int PE_start, int logPE_stride,
                       int PE_size, long* pSync);
void shmem_collect32(void* target, const void* source, std::size_t nelems,
                     int PE_start, int logPE_stride, int PE_size, long* pSync);
void shmem_collect64(void* target, const void* source, std::size_t nelems,
                     int PE_start, int logPE_stride, int PE_size, long* pSync);
void shmem_fcollect32(void* target, const void* source, std::size_t nelems,
                      int PE_start, int logPE_stride, int PE_size,
                      long* pSync);
void shmem_fcollect64(void* target, const void* source, std::size_t nelems,
                      int PE_start, int logPE_stride, int PE_size,
                      long* pSync);

// Reductions: bitwise ops over integral types; min/max/sum/prod over all
// arithmetic types; sum/prod additionally over complex floats/doubles.
#define TSHMEM_DECL_REDUCE(T, NAME, OP)                                   \
  void shmem_##NAME##_##OP##_to_all(T* target, T* source, int nreduce,    \
                                    int PE_start, int logPE_stride,       \
                                    int PE_size, T* pWrk, long* pSync);
#define TSHMEM_DECL_REDUCE_BITWISE(T, NAME) \
  TSHMEM_DECL_REDUCE(T, NAME, and)          \
  TSHMEM_DECL_REDUCE(T, NAME, or)           \
  TSHMEM_DECL_REDUCE(T, NAME, xor)
#define TSHMEM_DECL_REDUCE_ARITH(T, NAME) \
  TSHMEM_DECL_REDUCE(T, NAME, min)        \
  TSHMEM_DECL_REDUCE(T, NAME, max)        \
  TSHMEM_DECL_REDUCE(T, NAME, sum)        \
  TSHMEM_DECL_REDUCE(T, NAME, prod)

TSHMEM_DECL_REDUCE_BITWISE(short, short)
TSHMEM_DECL_REDUCE_BITWISE(int, int)
TSHMEM_DECL_REDUCE_BITWISE(long, long)
TSHMEM_DECL_REDUCE_BITWISE(long long, longlong)
TSHMEM_DECL_REDUCE_ARITH(short, short)
TSHMEM_DECL_REDUCE_ARITH(int, int)
TSHMEM_DECL_REDUCE_ARITH(long, long)
TSHMEM_DECL_REDUCE_ARITH(long long, longlong)
TSHMEM_DECL_REDUCE_ARITH(float, float)
TSHMEM_DECL_REDUCE_ARITH(double, double)
TSHMEM_DECL_REDUCE_ARITH(long double, longdouble)

void shmem_complexf_sum_to_all(std::complex<float>* target,
                               std::complex<float>* source, int nreduce,
                               int PE_start, int logPE_stride, int PE_size,
                               std::complex<float>* pWrk, long* pSync);
void shmem_complexd_sum_to_all(std::complex<double>* target,
                               std::complex<double>* source, int nreduce,
                               int PE_start, int logPE_stride, int PE_size,
                               std::complex<double>* pWrk, long* pSync);
void shmem_complexf_prod_to_all(std::complex<float>* target,
                                std::complex<float>* source, int nreduce,
                                int PE_start, int logPE_stride, int PE_size,
                                std::complex<float>* pWrk, long* pSync);
void shmem_complexd_prod_to_all(std::complex<double>* target,
                                std::complex<double>* source, int nreduce,
                                int PE_start, int logPE_stride, int PE_size,
                                std::complex<double>* pWrk, long* pSync);

#undef TSHMEM_DECL_REDUCE
#undef TSHMEM_DECL_REDUCE_BITWISE
#undef TSHMEM_DECL_REDUCE_ARITH

// --- atomics (spec §8.6) -------------------------------------------------------
#define TSHMEM_DECL_ATOMIC_INT(T, NAME)                                \
  [[nodiscard]] T shmem_##NAME##_swap(T* target, T value, int pe);     \
  [[nodiscard]] T shmem_##NAME##_cswap(T* target, T cond, T value,     \
                                       int pe);                        \
  [[nodiscard]] T shmem_##NAME##_fadd(T* target, T value, int pe);     \
  [[nodiscard]] T shmem_##NAME##_finc(T* target, int pe);              \
  void shmem_##NAME##_add(T* target, T value, int pe);                 \
  void shmem_##NAME##_inc(T* target, int pe);
TSHMEM_DECL_ATOMIC_INT(int, int)
TSHMEM_DECL_ATOMIC_INT(long, long)
TSHMEM_DECL_ATOMIC_INT(long long, longlong)
#undef TSHMEM_DECL_ATOMIC_INT
[[nodiscard]] float shmem_float_swap(float* target, float value, int pe);
[[nodiscard]] double shmem_double_swap(double* target, double value, int pe);
[[nodiscard]] long shmem_swap(long* target, long value, int pe);

// --- locks (spec §8.7) ----------------------------------------------------------
void shmem_set_lock(long* lock);
void shmem_clear_lock(long* lock);
[[nodiscard]] int shmem_test_lock(long* lock);

// --- instrumented local access (tshmem-check extension; docs/ANALYSIS.md) ---
// Plain local loads/stores of symmetric objects are invisible to the
// runtime, so checked kernels access their own copies through these to give
// tshmem-check the local side of a conflict. With the detector off they are
// plain (atomic, for 4/8-byte types) accesses with no extra cost.
template <typename T>
[[nodiscard]] T shmem_local_read(const T* p) {
  return ctx().sym_load(p);
}
template <typename T>
void shmem_local_write(T* p, T value) {
  ctx().sym_store(p, value);
}

// --- cache control (spec §8.8, deprecated no-ops on cache-coherent Tilera) ----
void shmem_clear_cache_inv();
void shmem_set_cache_inv();
void shmem_clear_cache_line_inv(void* target);
void shmem_set_cache_line_inv(void* target);
void shmem_udcflush();
void shmem_udcflush_line(void* target);

}  // namespace tshmem::api
