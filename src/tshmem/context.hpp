// Per-PE TSHMEM context: the engine behind every OpenSHMEM routine.
//
// The C-style API in tshmem/api.hpp forwards to the Context bound to the
// calling tile thread. Tests and benches may also use Context directly.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstring>
#include <functional>
#include <map>
#include <span>
#include <stdexcept>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/scoped_timer.hpp"
#include "sim/clock.hpp"
#include "sim/flight_hook.hpp"
#include "sim/guarded_wait.hpp"
#include "sim/profile_hook.hpp"
#include "tshmem/messages.hpp"
#include "tshmem/runtime.hpp"
#include "tshmem/symheap.hpp"
#include "tshmem/types.hpp"

namespace tshmem {

/// Classification of an address from the calling PE's point of view
/// (paper §IV-B: the put/get paths inspect target and source addresses).
enum class AddrClass : std::uint8_t {
  kDynamic,  ///< in my symmetric partition (directly addressable remotely)
  kStatic,   ///< in my private arena (needs UDN-interrupt service remotely)
  kOther,    ///< non-symmetric local memory (stack, plain heap)
};

/// Extra knobs for modeled copies inside collectives.
struct CopyHints {
  int readers = 1;  ///< concurrent streams reading the (shared) source
  int writers = 1;  ///< concurrent streams writing the (shared) target
};

/// Per-PE metric handles, resolved once at Context construction when the
/// runtime has metrics enabled (RuntimeOptions::metrics / TSHMEM_METRICS).
/// Every pointer targets a registry-owned instrument; updates are relaxed
/// atomics and never advance virtual time. See docs/OBSERVABILITY.md for
/// the full metric catalogue.
struct PeMetrics {
  obs::Counter* put_calls;
  obs::Counter* put_bytes;
  obs::Log2Histogram* put_latency_ps;
  obs::Counter* get_calls;
  obs::Counter* get_bytes;
  obs::Log2Histogram* get_latency_ps;
  obs::Counter* barrier_calls;
  obs::Log2Histogram* barrier_wait_ps;
  obs::Counter* broadcast_calls;
  obs::Counter* broadcast_bytes;
  obs::Counter* collect_calls;
  obs::Counter* collect_bytes;
  obs::Counter* reduce_calls;
  obs::Counter* reduce_bytes;
  obs::Log2Histogram* collective_wait_ps;
  obs::Counter* atomic_calls;
  obs::Counter* lock_ops;
  obs::Counter* wait_calls;
  obs::Log2Histogram* wait_ps;
  obs::Counter* alloc_calls;
  obs::Counter* free_calls;
  obs::Counter* interrupt_services;
  obs::Counter* nbi_issued;
  obs::Counter* nbi_retired;
  obs::Counter* nbi_bytes;
  obs::Gauge* nbi_queue_depth;
  obs::Log2Histogram* nbi_quiet_wait_ps;
  obs::Log2Histogram* nbi_overlap_pct;
  obs::Counter* nbi_sync_fallbacks;  ///< recovery.nbi.sync_fallbacks
};

class Context {
 public:
  Context(Runtime& rt, int pe, Tile& tile, std::byte* partition,
          std::size_t partition_bytes, std::byte* private_arena,
          std::size_t private_bytes);

  Context(const Context&) = delete;
  Context& operator=(const Context&) = delete;

  // --- environment ---------------------------------------------------------
  [[nodiscard]] int my_pe() const noexcept { return pe_; }
  [[nodiscard]] int num_pes() const noexcept { return rt_->npes(); }
  [[nodiscard]] Runtime& runtime() noexcept { return *rt_; }
  [[nodiscard]] Tile& tile() noexcept { return *tile_; }
  [[nodiscard]] tilesim::SimClock& clock() noexcept { return tile_->clock(); }
  [[nodiscard]] ActiveSet world() const noexcept {
    return ActiveSet{0, 0, num_pes()};
  }

  /// Proposed shmem_finalize() (paper §IV-E): drains/validates UDN state.
  /// Runtime verifies every PE called it when the job ends.
  void finalize();
  [[nodiscard]] bool finalized() const noexcept { return finalized_; }

  // --- symmetric memory ----------------------------------------------------
  /// Collective; includes an implicit barrier_all (OpenSHMEM semantics).
  [[nodiscard]] void* shmalloc(std::size_t bytes);
  void shfree(void* p);  ///< collective
  [[nodiscard]] void* shrealloc(void* p, std::size_t bytes);   ///< collective
  [[nodiscard]] void* shmemalign(std::size_t alignment,
                                 std::size_t bytes);  ///< collective

  template <typename T>
  [[nodiscard]] T* shmalloc_n(std::size_t count) {
    return static_cast<T*>(shmalloc(count * sizeof(T)));
  }

  /// Static symmetric object: same offset in every PE's private arena.
  /// Must be requested by all PEs (like declaring a global in SPMD code).
  template <typename T>
  [[nodiscard]] T* static_sym(const std::string& name, std::size_t count = 1) {
    const auto entry =
        rt_->statics().reserve(name, count * sizeof(T), alignof(T));
    return reinterpret_cast<T*>(private_base_ + entry.offset);
  }

  [[nodiscard]] SymHeap& heap() noexcept { return heap_; }

  // --- address queries -----------------------------------------------------
  [[nodiscard]] AddrClass classify(const void* p) const noexcept;
  /// Translate my symmetric address to PE `pe`'s copy (dynamic or static).
  [[nodiscard]] void* remote_addr(const void* my_sym, int pe) const;
  /// shmem_ptr(): direct pointer to the remote object, or nullptr when the
  /// object is not directly addressable (static objects on other PEs).
  [[nodiscard]] void* ptr(const void* target, int pe) const;
  [[nodiscard]] bool pe_accessible(int pe) const noexcept;
  [[nodiscard]] bool addr_accessible(const void* addr, int pe) const noexcept;

  // --- RMA -----------------------------------------------------------------
  void put(void* target, const void* source, std::size_t bytes, int pe,
           CopyHints hints = {});
  void get(void* target, const void* source, std::size_t bytes, int pe,
           CopyHints hints = {});

  template <typename T>
  void p(T* target, T value, int pe) {
    put(target, &value, sizeof(T), pe);
  }

  template <typename T>
  [[nodiscard]] T g(const T* source, int pe) {
    T out{};
    get(&out, source, sizeof(T), pe);
    return out;
  }

  template <typename T>
  void iput(T* target, const T* source, std::ptrdiff_t target_stride,
            std::ptrdiff_t source_stride, std::size_t nelems, int pe);
  template <typename T>
  void iget(T* target, const T* source, std::ptrdiff_t target_stride,
            std::ptrdiff_t source_stride, std::size_t nelems, int pe);

  // --- non-blocking RMA (sim/dma.hpp; see docs/NBI.md) ---------------------
  /// Posts the transfer to this tile's DMA engine and returns immediately;
  /// completion (local buffer reuse for puts, valid data for gets) is only
  /// guaranteed after quiet(). Transfers whose remote side is a static
  /// symmetric object need the remote tile's interrupt service and complete
  /// synchronously before returning (a valid NBI implementation; the
  /// descriptor never enters the queue).
  void put_nbi(void* target, const void* source, std::size_t bytes, int pe);
  void get_nbi(void* target, const void* source, std::size_t bytes, int pe);

  /// In-flight descriptors on this PE's DMA engine.
  [[nodiscard]] std::size_t nbi_pending() const noexcept {
    return tile_->dma().pending();
  }

  // --- synchronization -----------------------------------------------------
  void barrier_all();
  void barrier(const ActiveSet& as);
  void barrier(const ActiveSet& as, BarrierAlgo algo);
  void set_barrier_algo(BarrierAlgo algo) noexcept { barrier_algo_ = algo; }
  [[nodiscard]] BarrierAlgo barrier_algo() const noexcept {
    return barrier_algo_;
  }

  /// Orders delivery per destination PE. With no in-flight NBI transfers it
  /// keeps the paper's §IV-C2 behavior (an alias of quiet); with a pending
  /// DMA queue it only drains the CPU store buffer — per-destination FIFO
  /// delivery is inherent to the single-channel DMA engine, so the queue is
  /// NOT drained and the clock never jumps to a completion time.
  void fence();
  /// Completes all outstanding transfers: drains this PE's DMA queue,
  /// advancing the clock to the latest outstanding completion, then drains
  /// the store buffer. With an empty queue this is exactly the pre-NBI
  /// behavior (bit-identical virtual time).
  void quiet();

  template <typename T>
  void wait_until(volatile T* ivar, Cmp cmp, T value);
  template <typename T>
  void wait(volatile T* ivar, T value) {  // block while *ivar == value
    wait_until(ivar, Cmp::kNe, value);
  }

  // --- collectives ---------------------------------------------------------
  /// `root_index` is the zero-based ordinal within the active set.
  void broadcast(void* target, const void* source, std::size_t bytes,
                 int root_index, const ActiveSet& as,
                 BcastAlgo algo = BcastAlgo::kPull);
  void fcollect(void* target, const void* source, std::size_t bytes_per_pe,
                const ActiveSet& as, CollectAlgo algo = CollectAlgo::kNaive);
  void collect(void* target, const void* source, std::size_t my_bytes,
               const ActiveSet& as, CollectAlgo algo = CollectAlgo::kNaive);

  template <typename T>
  void reduce(T* target, const T* source, std::size_t nreduce, RedOp op,
              const ActiveSet& as, ReduceAlgo algo = ReduceAlgo::kNaive);

  /// Type-erased reduction entry point for element types the arithmetic
  /// template cannot express (e.g. std::complex products). `apply` folds
  /// `n` elements of `in` into `acc`.
  using ReduceApply = void (*)(void* acc, const void* in, std::size_t n);
  void reduce_custom(void* target, const void* source, std::size_t nreduce,
                     std::size_t elem_size, ReduceApply apply, bool is_fp,
                     const ActiveSet& as, ReduceAlgo algo = ReduceAlgo::kNaive);

  // --- atomics -------------------------------------------------------------
  template <typename T>
  T swap(T* target, T value, int pe);
  template <typename T>
  T cswap(T* target, T cond, T value, int pe);
  template <typename T>
  T fadd(T* target, T value, int pe);
  template <typename T>
  T finc(T* target, int pe) {
    return fadd(target, T{1}, pe);
  }
  template <typename T>
  void add(T* target, T value, int pe) {
    (void)fadd(target, value, pe);
  }
  template <typename T>
  void inc(T* target, int pe) {
    (void)fadd(target, T{1}, pe);
  }

  // --- locks ---------------------------------------------------------------
  void set_lock(long* lock);
  void clear_lock(long* lock);
  [[nodiscard]] int test_lock(long* lock);

  // --- compute-model passthrough (applications) ----------------------------
  void charge_int_ops(std::uint64_t n) { tile_->charge_int_ops(n); }
  void charge_fp_ops(std::uint64_t n) { tile_->charge_fp_ops(n); }
  void charge_mem_ops(std::uint64_t n) { tile_->charge_mem_ops(n); }
  void charge_calls(std::uint64_t n) { tile_->charge_calls(n); }

  // --- instrumented local access (tshmem-check; docs/ANALYSIS.md) ----------
  /// Local load/store through the race detector: plain local accesses to
  /// symmetric objects are invisible to the runtime, so checked kernels
  /// read/write their own copies via these to give tshmem-check the local
  /// side of a conflict. With the detector off they are plain (atomic, for
  /// 4/8-byte types) accesses with zero extra cost; they never advance
  /// virtual time beyond what the plain access would.
  template <typename T>
  [[nodiscard]] T sym_load(const T* p) {
    static_assert(std::is_trivially_copyable_v<T>);
    T out;
    if constexpr (sizeof(T) == 4 || sizeof(T) == 8) {
      std::atomic_ref<T> ref(*const_cast<T*>(p));
      out = ref.load(std::memory_order_acquire);
    } else {
      std::memcpy(&out, const_cast<const T*>(p), sizeof(T));
    }
    if (race_ != nullptr) {
      race_->on_access(pe_, false, analysis::AccessKind::kRead, p, sizeof(T),
                       "local_read", clock().now());
    }
    return out;
  }
  template <typename T>
  void sym_store(T* p, T value) {
    static_assert(std::is_trivially_copyable_v<T>);
    if constexpr (sizeof(T) == 4 || sizeof(T) == 8) {
      std::atomic_ref<T> ref(*p);
      ref.store(value, std::memory_order_release);
    } else {
      std::memcpy(p, &value, sizeof(T));
    }
    if (race_ != nullptr) {
      race_->on_access(pe_, false, analysis::AccessKind::kWrite, p, sizeof(T),
                       "local_write", clock().now());
    }
  }

  // --- harness helpers -----------------------------------------------------
  /// Zero-virtual-cost rendezvous + clock reset (benchmark phases).
  void harness_sync_reset() { tile_->device().sync_and_reset_clocks(); }
  void harness_sync() { tile_->device().host_sync(); }

  // --- control messaging (used by collectives; exposed for examples) ------
  void send_ctrl(int dst_pe, int queue, const CtrlMsg& msg);
  /// Receives the next control message on `queue` matching `tag` (and
  /// `src_pe` unless -1), stashing non-matching traffic for later.
  CtrlMsg recv_ctrl(int queue, MsgTag tag, int src_pe = -1,
                    int* actual_src = nullptr);

 private:
  Runtime* rt_;
  int pe_;
  Tile* tile_;
  std::byte* partition_base_;
  std::size_t partition_bytes_;
  std::byte* private_base_;
  std::size_t private_bytes_;
  SymHeap heap_;
  BarrierAlgo barrier_algo_;
  bool finalized_ = false;
  std::unique_ptr<PeMetrics> met_;  ///< null when metrics are disabled
  analysis::RaceDetector* race_ = nullptr;  ///< tshmem-check (set by Runtime)
  obs::TimeSeries* ts_ = nullptr;  ///< windowed telemetry (set by Runtime)

  std::map<std::uint32_t, std::uint32_t> barrier_seq_;   // active-set id -> seq
  std::map<std::uint32_t, std::uint32_t> collective_seq_;
  struct StashedCtrl {
    int src_pe;
    tilesim::ps_t arrival_ps;
    CtrlMsg msg;
  };
  std::vector<StashedCtrl> ctrl_stash_[4];  // per demux queue

  // --- engine internals (context.cpp / collectives.cpp) -------------------
  struct ResolvedTransfer {
    // Host pointers the data actually moves between, after translation.
    void* dst;
    const void* src;
    tilesim::MemSpace dst_space;
    tilesim::MemSpace src_space;
    bool needs_interrupt;      // remote tile must service the operation
    bool needs_bounce;         // static-static: shared bounce buffer
    int service_pe;            // PE whose tile services the copy
  };

  void transfer(void* target, const void* source, std::size_t bytes, int pe,
                bool is_put, CopyHints hints);
  void transfer_nbi(void* target, const void* source, std::size_t bytes,
                    int pe, bool is_put);
  /// TSHMEM_DEBUG validation (docs/ROBUSTNESS.md): invalid PE, non-symmetric
  /// remote address, or out-of-bounds range -> structured tshmem::Error.
  /// Host-side only; never advances virtual time.
  void validate_transfer(const void* target, const void* source,
                         std::size_t bytes, int pe, bool is_put,
                         const char* what) const;
  /// Records an injected heap-cap denial in the fault event log.
  void note_heap_denial(const void* p, std::size_t bytes);
  void charge_local_copy(std::size_t bytes, tilesim::MemSpace dst,
                         tilesim::MemSpace src, CopyHints hints);
  void do_memcpy_visible(void* dst, const void* src, std::size_t bytes);

  std::uint32_t next_barrier_seq(const ActiveSet& as);
  std::uint32_t next_collective_seq(const ActiveSet& as);

  void barrier_linear(const ActiveSet& as, std::uint32_t seq);
  void barrier_broadcast_release(const ActiveSet& as, std::uint32_t seq);
  void barrier_tmc_spin(const ActiveSet& as);

  void bcast_push(void* target, const void* source, std::size_t bytes,
                  int root_index, const ActiveSet& as, std::uint32_t seq);
  void bcast_pull(void* target, const void* source, std::size_t bytes,
                  int root_index, const ActiveSet& as, std::uint32_t seq);
  void bcast_binomial(void* target, const void* source, std::size_t bytes,
                      int root_index, const ActiveSet& as, std::uint32_t seq);

  void collect_engine(void* target, const void* source, std::size_t my_bytes,
                      bool fixed_size, const ActiveSet& as, CollectAlgo algo);

  void reduce_engine(void* target, const void* source, std::size_t nreduce,
                     std::size_t elem_size, ReduceApply apply, bool is_fp,
                     const ActiveSet& as, ReduceAlgo algo);

  /// Atomic cost model: round trip to the home tile of the target line.
  void charge_atomic(int pe);
  /// Runs `op` atomically against the symmetric object `target` on `pe`;
  /// used by all atomic ops. `op` receives the resolved host address.
  /// `bytes`/`site` feed tshmem-check's acquire-release shadow check.
  void atomic_engine(void* target, int pe, std::size_t bytes,
                     const char* site,
                     const std::function<void(void*)>& op);

  friend class Runtime;
};

// ===========================================================================
// Template implementations
// ===========================================================================

template <typename T>
void Context::iput(T* target, const T* source, std::ptrdiff_t target_stride,
                   std::ptrdiff_t source_stride, std::size_t nelems, int pe) {
  // Strided transfers are element-wise puts (paper Table I: shmem_int_iput).
  for (std::size_t i = 0; i < nelems; ++i) {
    put(target + static_cast<std::ptrdiff_t>(i) * target_stride,
        source + static_cast<std::ptrdiff_t>(i) * source_stride, sizeof(T),
        pe);
  }
}

template <typename T>
void Context::iget(T* target, const T* source, std::ptrdiff_t target_stride,
                   std::ptrdiff_t source_stride, std::size_t nelems, int pe) {
  for (std::size_t i = 0; i < nelems; ++i) {
    get(target + static_cast<std::ptrdiff_t>(i) * target_stride,
        source + static_cast<std::ptrdiff_t>(i) * source_stride, sizeof(T),
        pe);
  }
}

template <typename T>
void Context::wait_until(volatile T* ivar, Cmp cmp, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  rt_->note_op(pe_, "shmem_wait_until");
  obs::ScopedVtTimer vt_metric(clock(), met_ ? met_->wait_ps : nullptr,
                               met_ ? met_->wait_calls : nullptr);
  tilesim::ProfSpan prof_span(*tile_, tilesim::ProfPhase::kWait,
                              "shmem_wait_until");
  // Point-to-point sync: poll the symmetric variable. Remote elemental puts
  // store atomically (see do_memcpy_visible), so an atomic load here pairs
  // with them. Virtual time: on success the clock advances to the latest
  // remote delivery into this PE, ordering us after the releasing put.
  auto* nv = const_cast<T*>(const_cast<const volatile T*>(ivar));
  std::atomic_ref<T> ref(*nv);
  tilesim::guarded_spin(tile_->device(), pe_, "shmem_wait_until", [&] {
    return compare(cmp, ref.load(std::memory_order_acquire), value);
  });
  {
    const ps_t wait_from = clock().now();
    const ps_t delivered = rt_->last_delivery(pe_);
    clock().advance_to(delivered);
    // The delivering PE is not identifiable from the timestamp slot alone,
    // so the edge's producer is unknown (-1).
    tilesim::prof_wait_edge(*tile_, -1, tilesim::ProfPhase::kWait,
                            "delivery", wait_from, delivered);
  }
  clock().advance(rt_->config().shmem_call_overhead_ps);
  // Closes the kWaitBegin the guarded spin recorded: the spin's attempt
  // count is host-schedule dependent, so only this post-merge timestamp is
  // deterministic.
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kWaitEnd,
                        "shmem_wait_until", clock().now());
  if (race_ != nullptr) {
    // The satisfied wait acquires the release clock the elemental put
    // published on this granule, then counts as an ordered read of it.
    race_->on_acquire(pe_, nv);
    race_->on_access(pe_, false, analysis::AccessKind::kRead, nv, sizeof(T),
                     "shmem_wait_until", clock().now());
  }
}

template <typename T>
void Context::reduce(T* target, const T* source, std::size_t nreduce,
                     RedOp op, const ActiveSet& as, ReduceAlgo algo) {
  static_assert(std::is_arithmetic_v<T> || std::is_same_v<T, long double>);
  ReduceApply apply = nullptr;
  switch (op) {
    case RedOp::kSum:
      apply = [](void* acc, const void* in, std::size_t n) {
        auto* a = static_cast<T*>(acc);
        const auto* b = static_cast<const T*>(in);
        for (std::size_t i = 0; i < n; ++i) a[i] = static_cast<T>(a[i] + b[i]);
      };
      break;
    case RedOp::kProd:
      apply = [](void* acc, const void* in, std::size_t n) {
        auto* a = static_cast<T*>(acc);
        const auto* b = static_cast<const T*>(in);
        for (std::size_t i = 0; i < n; ++i) a[i] = static_cast<T>(a[i] * b[i]);
      };
      break;
    case RedOp::kMin:
      apply = [](void* acc, const void* in, std::size_t n) {
        auto* a = static_cast<T*>(acc);
        const auto* b = static_cast<const T*>(in);
        for (std::size_t i = 0; i < n; ++i) a[i] = b[i] < a[i] ? b[i] : a[i];
      };
      break;
    case RedOp::kMax:
      apply = [](void* acc, const void* in, std::size_t n) {
        auto* a = static_cast<T*>(acc);
        const auto* b = static_cast<const T*>(in);
        for (std::size_t i = 0; i < n; ++i) a[i] = b[i] > a[i] ? b[i] : a[i];
      };
      break;
    case RedOp::kAnd:
    case RedOp::kOr:
    case RedOp::kXor:
      if constexpr (std::is_integral_v<T>) {
        if (op == RedOp::kAnd) {
          apply = [](void* acc, const void* in, std::size_t n) {
            auto* a = static_cast<T*>(acc);
            const auto* b = static_cast<const T*>(in);
            for (std::size_t i = 0; i < n; ++i) a[i] &= b[i];
          };
        } else if (op == RedOp::kOr) {
          apply = [](void* acc, const void* in, std::size_t n) {
            auto* a = static_cast<T*>(acc);
            const auto* b = static_cast<const T*>(in);
            for (std::size_t i = 0; i < n; ++i) a[i] |= b[i];
          };
        } else {
          apply = [](void* acc, const void* in, std::size_t n) {
            auto* a = static_cast<T*>(acc);
            const auto* b = static_cast<const T*>(in);
            for (std::size_t i = 0; i < n; ++i) a[i] ^= b[i];
          };
        }
      } else {
        throw std::invalid_argument(
            "bitwise reductions require an integral type");
      }
      break;
  }
  reduce_engine(target, source, nreduce, sizeof(T), apply,
                std::is_floating_point_v<T>, as, algo);
}

template <typename T>
T Context::swap(T* target, T value, int pe) {
  static_assert(std::is_trivially_copyable_v<T> &&
                (sizeof(T) == 4 || sizeof(T) == 8));
  T old{};
  atomic_engine(target, pe, sizeof(T), "shmem_swap", [&](void* addr) {
    if constexpr (std::is_integral_v<T>) {
      std::atomic_ref<T> ref(*static_cast<T*>(addr));
      old = ref.exchange(value, std::memory_order_acq_rel);
    } else {
      // Floating-point swap via same-width integer exchange (bit pattern).
      using Bits = std::conditional_t<sizeof(T) == 4, std::uint32_t,
                                      std::uint64_t>;
      Bits bits;
      std::memcpy(&bits, &value, sizeof(T));
      std::atomic_ref<Bits> ref(*static_cast<Bits*>(addr));
      const Bits prev = ref.exchange(bits, std::memory_order_acq_rel);
      std::memcpy(&old, &prev, sizeof(T));
    }
  });
  return old;
}

template <typename T>
T Context::cswap(T* target, T cond, T value, int pe) {
  static_assert(std::is_integral_v<T>);
  T old = cond;
  atomic_engine(target, pe, sizeof(T), "shmem_cswap", [&](void* addr) {
    std::atomic_ref<T> ref(*static_cast<T*>(addr));
    T expected = cond;
    if (!ref.compare_exchange_strong(expected, value,
                                     std::memory_order_acq_rel)) {
      old = expected;
    } else {
      old = cond;
    }
  });
  return old;
}

template <typename T>
T Context::fadd(T* target, T value, int pe) {
  static_assert(std::is_integral_v<T>);
  T old{};
  atomic_engine(target, pe, sizeof(T), "shmem_fadd", [&](void* addr) {
    std::atomic_ref<T> ref(*static_cast<T*>(addr));
    old = ref.fetch_add(value, std::memory_order_acq_rel);
  });
  return old;
}

}  // namespace tshmem
