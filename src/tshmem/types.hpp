// Shared TSHMEM types: active sets, comparison operators for point-to-point
// synchronization, reduction operators, and the OpenSHMEM sync constants.
#pragma once

#include <cstddef>
#include <cstdint>
#include <stdexcept>
#include <vector>

namespace tshmem {

/// OpenSHMEM active set: the (PE_start, logPE_stride, PE_size) triplet that
/// selects the PEs participating in a collective.
struct ActiveSet {
  int pe_start = 0;
  int log_pe_stride = 0;
  int pe_size = 1;

  [[nodiscard]] int stride() const noexcept { return 1 << log_pe_stride; }

  [[nodiscard]] bool contains(int pe) const noexcept {
    if (pe < pe_start) return false;
    const int delta = pe - pe_start;
    if (delta % stride() != 0) return false;
    return delta / stride() < pe_size;
  }

  /// Index of `pe` within the set; throws if not a member.
  [[nodiscard]] int index_of(int pe) const {
    if (!contains(pe)) {
      throw std::invalid_argument("PE is not in the active set");
    }
    return (pe - pe_start) / stride();
  }

  /// PE number of the member at `index`.
  [[nodiscard]] int pe_at(int index) const {
    if (index < 0 || index >= pe_size) {
      throw std::out_of_range("active-set index out of range");
    }
    return pe_start + index * stride();
  }

  [[nodiscard]] std::vector<int> members() const {
    std::vector<int> out;
    out.reserve(static_cast<std::size_t>(pe_size));
    for (int i = 0; i < pe_size; ++i) out.push_back(pe_at(i));
    return out;
  }

  /// Stable 32-bit identifier used in barrier tokens.
  [[nodiscard]] std::uint32_t id() const noexcept {
    return static_cast<std::uint32_t>(pe_start) * 2654435761u ^
           static_cast<std::uint32_t>(log_pe_stride) * 40503u ^
           static_cast<std::uint32_t>(pe_size) * 2246822519u;
  }

  friend bool operator==(const ActiveSet&, const ActiveSet&) = default;
};

/// Comparison operators for shmem_wait_until (OpenSHMEM 1.0 table 10).
enum class Cmp : std::uint8_t { kEq, kNe, kGt, kLe, kLt, kGe };

template <typename T>
[[nodiscard]] bool compare(Cmp cmp, T observed, T value) noexcept {
  switch (cmp) {
    case Cmp::kEq: return observed == value;
    case Cmp::kNe: return observed != value;
    case Cmp::kGt: return observed > value;
    case Cmp::kLe: return observed <= value;
    case Cmp::kLt: return observed < value;
    case Cmp::kGe: return observed >= value;
  }
  return false;
}

/// Reduction operators (OpenSHMEM 1.0 §8.5.3). Bitwise ops are only defined
/// for integral types; callers enforce that via the typed API surface.
enum class RedOp : std::uint8_t {
  kAnd, kOr, kXor, kMin, kMax, kSum, kProd,
};

/// OpenSHMEM symmetric work-array size constants (v1.0 names, without the
/// reserved leading underscore that the spec's C macros use).
inline constexpr long kSyncValue = -1;
inline constexpr std::size_t kBcastSyncSize = 2;
inline constexpr std::size_t kCollectSyncSize = 4;
inline constexpr std::size_t kReduceSyncSize = 4;
inline constexpr std::size_t kBarrierSyncSize = 2;
inline constexpr std::size_t kReduceMinWrkDataSize = 8;

/// Broadcast algorithm selector (push/pull per paper §IV-D1; binomial is
/// the §IV-E future-work extension, provided for the ablation bench).
enum class BcastAlgo : std::uint8_t { kPush, kPull, kBinomial };

/// Reduction algorithm selector (naive per §IV-D3; recursive doubling is
/// the §IV-E extension).
enum class ReduceAlgo : std::uint8_t { kNaive, kRecursiveDoubling };

/// Collect algorithm selector (naive per §IV-D2; ring is an extension).
enum class CollectAlgo : std::uint8_t { kNaive, kRing };

/// Barrier release strategy (§IV-C1: linear chosen; broadcast release
/// measured 2x slower — reproduced in the ablation bench).
enum class BarrierAlgo : std::uint8_t { kLinearToken, kBroadcastRelease,
                                        kTmcSpin };

}  // namespace tshmem
