#include "tshmem/symheap.hpp"

#include <cstring>
#include <new>
#include <stdexcept>

namespace tshmem {

SymHeap::SymHeap(std::byte* base, std::size_t bytes)
    : base_(base), capacity_(bytes) {
  if (base == nullptr || bytes < sizeof(Block) + kAlign) {
    throw std::invalid_argument("SymHeap region too small");
  }
  if (reinterpret_cast<std::uintptr_t>(base) % kAlign != 0) {
    throw std::invalid_argument("SymHeap base must be 16-byte aligned");
  }
  head_ = new (base_) Block{bytes - sizeof(Block), nullptr, nullptr, true,
                            kMagic};
}

void* SymHeap::alloc(std::size_t bytes) {
  if (bytes == 0) return nullptr;
  if (cap_would_deny(bytes)) return nullptr;  // injected heap pressure
  const std::size_t want = align_up(bytes);
  for (Block* b = head_; b != nullptr; b = b->next) {
    if (b->free && b->size >= want) {
      split(b, want);
      b->free = false;
      return payload_of(b);
    }
  }
  return nullptr;  // shmalloc returns NULL on exhaustion
}

void* SymHeap::memalign(std::size_t alignment, std::size_t bytes) {
  if (alignment < kAlign || (alignment & (alignment - 1)) != 0) {
    return nullptr;
  }
  if (bytes == 0) return nullptr;
  if (cap_would_deny(bytes)) return nullptr;  // injected heap pressure
  const std::size_t want = align_up(bytes);
  for (Block* b = head_; b != nullptr; b = b->next) {
    if (!b->free) continue;
    auto payload = reinterpret_cast<std::uintptr_t>(payload_of(b));
    const std::uintptr_t aligned = (payload + alignment - 1) & ~(alignment - 1);
    const std::size_t skew = aligned - payload;
    if (b->size < skew + want) continue;
    if (skew != 0) {
      // Carve a leading free block so the aligned payload gets its own
      // header immediately before it.
      if (skew < sizeof(Block) + kAlign) {
        // Not enough room for a split header; try the next candidate
        // alignment position within this block.
        const std::uintptr_t aligned2 = aligned + alignment;
        const std::size_t skew2 = aligned2 - payload;
        if (b->size < skew2 + want || skew2 < sizeof(Block) + kAlign) {
          continue;
        }
        split(b, skew2 - sizeof(Block));
        Block* tail = b->next;
        split(tail, want);
        tail->free = false;
        return payload_of(tail);
      }
      split(b, skew - sizeof(Block));
      Block* tail = b->next;
      split(tail, want);
      tail->free = false;
      return payload_of(tail);
    }
    split(b, want);
    b->free = false;
    return payload_of(b);
  }
  return nullptr;
}

void SymHeap::split(Block* b, std::size_t payload) {
  // Splits `b` (free, size >= payload) so its payload becomes exactly
  // `payload`, creating a trailing free block when worthwhile.
  if (b->size >= payload + sizeof(Block) + kAlign) {
    auto* rest = new (reinterpret_cast<std::byte*>(payload_of(b)) + payload)
        Block{b->size - payload - sizeof(Block), b, b->next, true, kMagic};
    if (b->next != nullptr) b->next->prev = rest;
    b->next = rest;
    b->size = payload;
  }
}

SymHeap::Block* SymHeap::block_of(void* p) const {
  if (!owns(p)) {
    throw std::invalid_argument("pointer outside symmetric heap");
  }
  auto* b = reinterpret_cast<Block*>(static_cast<std::byte*>(p) -
                                     sizeof(Block));
  if (b->magic != kMagic) {
    throw std::invalid_argument("corrupted or invalid symmetric heap block");
  }
  return b;
}

void SymHeap::free(void* p) {
  if (p == nullptr) return;
  Block* b = block_of(p);
  if (b->free) {
    throw std::invalid_argument("double free in symmetric heap");
  }
  b->free = true;
  coalesce(b);
}

void SymHeap::coalesce(Block* b) {
  if (b->next != nullptr && b->next->free) {
    Block* n = b->next;
    b->size += n->size + sizeof(Block);
    b->next = n->next;
    if (n->next != nullptr) n->next->prev = b;
    n->magic = 0;
  }
  if (b->prev != nullptr && b->prev->free) {
    Block* p = b->prev;
    p->size += b->size + sizeof(Block);
    p->next = b->next;
    if (b->next != nullptr) b->next->prev = p;
    b->magic = 0;
  }
}

void* SymHeap::realloc(void* p, std::size_t bytes) {
  if (p == nullptr) return alloc(bytes);
  if (bytes == 0) {
    free(p);
    return nullptr;
  }
  Block* b = block_of(p);
  const std::size_t want = align_up(bytes);
  if (b->size >= want) {
    split(b, want);
    // The split-off remainder may now sit next to an existing free block.
    if (b->next != nullptr && b->next->free) coalesce(b->next);
    return p;
  }
  // Try absorbing the next free block in place.
  if (b->next != nullptr && b->next->free &&
      b->size + sizeof(Block) + b->next->size >= want) {
    Block* n = b->next;
    b->size += n->size + sizeof(Block);
    b->next = n->next;
    if (n->next != nullptr) n->next->prev = b;
    n->magic = 0;
    split(b, want);
    if (b->next != nullptr && b->next->free) coalesce(b->next);
    return p;
  }
  void* moved = alloc(bytes);
  if (moved == nullptr) return nullptr;  // original block untouched
  std::memcpy(moved, p, b->size);
  free(p);
  return moved;
}

std::size_t SymHeap::bytes_in_use() const noexcept {
  std::size_t total = 0;
  for (Block* b = head_; b != nullptr; b = b->next) {
    if (!b->free) total += b->size;
  }
  return total;
}

std::size_t SymHeap::bytes_free() const noexcept {
  std::size_t total = 0;
  for (Block* b = head_; b != nullptr; b = b->next) {
    if (b->free) total += b->size;
  }
  return total;
}

std::size_t SymHeap::block_count() const noexcept {
  std::size_t n = 0;
  for (Block* b = head_; b != nullptr; b = b->next) ++n;
  return n;
}

std::size_t SymHeap::largest_free_block() const noexcept {
  std::size_t best = 0;
  for (Block* b = head_; b != nullptr; b = b->next) {
    if (b->free && b->size > best) best = b->size;
  }
  return best;
}

bool SymHeap::owns(const void* p) const noexcept {
  const auto* bp = static_cast<const std::byte*>(p);
  return bp >= base_ + sizeof(Block) && bp < base_ + capacity_;
}

std::size_t SymHeap::allocation_size(const void* p) const {
  Block* b = block_of(const_cast<void*>(p));
  if (b->free) throw std::invalid_argument("block is free");
  return b->size;
}

bool SymHeap::cap_would_deny(std::size_t bytes) const noexcept {
  return cap_bytes_ != 0 && bytes_in_use() + align_up(bytes) > cap_bytes_;
}

bool SymHeap::contains_range(const void* p, std::size_t bytes) const noexcept {
  const auto* bp = static_cast<const std::byte*>(p);
  for (const Block* b = head_; b != nullptr; b = b->next) {
    if (b->free) continue;
    const auto* payload =
        reinterpret_cast<const std::byte*>(b) + sizeof(Block);
    if (bp >= payload && bp + bytes <= payload + b->size) return true;
  }
  return false;
}

bool SymHeap::validate() const noexcept {
  std::size_t accounted = 0;
  Block* prev = nullptr;
  for (Block* b = head_; b != nullptr; b = b->next) {
    if (b->magic != kMagic) return false;
    if (b->prev != prev) return false;
    if (prev != nullptr && prev->free && b->free) return false;  // uncoalesced
    const auto* start = reinterpret_cast<const std::byte*>(b);
    if (start < base_ || start + sizeof(Block) + b->size > base_ + capacity_) {
      return false;
    }
    accounted += sizeof(Block) + b->size;
    prev = b;
  }
  return accounted == capacity_;
}

}  // namespace tshmem
