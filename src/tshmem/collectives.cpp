// Collective communication engines (paper §IV-D).
//
// All control traffic rides the dedicated collective demux queue; data
// moves through the put/get engine with concurrency hints so the memory
// model reflects simultaneous readers/writers against one partition.
#include <algorithm>
#include <cstring>
#include <vector>

#include "sim/flight_hook.hpp"
#include "tshmem/context.hpp"

namespace tshmem {

namespace {

/// Naive reductions run an unoptimized per-element dispatch loop on the
/// root tile; this constant is the modeled cost per element, calibrated so
/// Fig 12's aggregate bandwidth lands near the paper's 150 MB/s @ 36 tiles.
constexpr std::uint64_t kNaiveReduceOpsPerElement = 26;

/// Chunk size of the naive reduction's repeated gets from each PE.
constexpr std::size_t kReduceChunkBytes = 4096;

int bit_ceil_log2(int n) {
  int k = 0;
  while ((1 << k) < n) ++k;
  return k;
}

}  // namespace

// ===========================================================================
// Broadcast (paper §IV-D1)
// ===========================================================================

void Context::broadcast(void* target, const void* source, std::size_t bytes,
                        int root_index, const ActiveSet& as, BcastAlgo algo) {
  if (!as.contains(pe_)) {
    throw std::invalid_argument("broadcast: calling PE not in active set");
  }
  if (root_index < 0 || root_index >= as.pe_size) {
    throw std::out_of_range("broadcast: root index outside active set");
  }
  obs::ScopedVtTimer vt_metric(tile_->clock(),
                               met_ ? met_->collective_wait_ps : nullptr,
                               met_ ? met_->broadcast_calls : nullptr);
  tilesim::ProfSpan prof(*tile_, tilesim::ProfPhase::kCollective,
                         "shmem_broadcast");
  if (met_) met_->broadcast_bytes->add(bytes);
  tile_->clock().advance(rt_->config().shmem_call_overhead_ps);
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kBroadcast,
                        "shmem_broadcast", tile_->clock().now(),
                        as.pe_at(root_index), bytes);
  const std::uint32_t seq = next_collective_seq(as);
  if (as.pe_size == 1) return;
  switch (algo) {
    case BcastAlgo::kPush:
      bcast_push(target, source, bytes, root_index, as, seq);
      break;
    case BcastAlgo::kPull:
      bcast_pull(target, source, bytes, root_index, as, seq);
      break;
    case BcastAlgo::kBinomial:
      bcast_binomial(target, source, bytes, root_index, as, seq);
      break;
  }
}

void Context::bcast_push(void* target, const void* source, std::size_t bytes,
                         int root_index, const ActiveSet& as,
                         std::uint32_t seq) {
  // Root puts to every other member sequentially, then notifies each; all
  // the work serializes on the root tile, which is exactly why Fig 9 shows
  // no scaling with the number of tiles.
  const int root = as.pe_at(root_index);
  const CtrlMsg note{MsgTag::kPushNotify, as.id() & 0xffffff, seq, 0};
  if (pe_ == root) {
    for (int i = 0; i < as.pe_size; ++i) {
      const int peer = as.pe_at(i);
      if (peer == root) continue;
      // The root writes into one destination at a time: no write contention.
      put(target, source, bytes, peer);
    }
    quiet();
    for (int i = 0; i < as.pe_size; ++i) {
      const int peer = as.pe_at(i);
      if (peer == root) continue;
      send_ctrl(peer, tmc::kUdnCollectiveQueue, note);
    }
  } else {
    const CtrlMsg msg =
        recv_ctrl(tmc::kUdnCollectiveQueue, MsgTag::kPushNotify, root);
    if (msg.seq != seq) {
      throw std::runtime_error("broadcast: stale push notification");
    }
  }
}

void Context::bcast_pull(void* target, const void* source, std::size_t bytes,
                         int root_index, const ActiveSet& as,
                         std::uint32_t seq) {
  // All non-root members get the data from the root concurrently,
  // exploiting the iMesh/DDC aggregate bandwidth (Fig 10).
  const int root = as.pe_at(root_index);
  if (pe_ == root) {
    quiet();  // the source must be globally visible before anyone reads it
    const CtrlMsg ready{MsgTag::kBcastReady, as.id() & 0xffffff, seq, bytes};
    for (int i = 0; i < as.pe_size; ++i) {
      const int peer = as.pe_at(i);
      if (peer == root) continue;
      send_ctrl(peer, tmc::kUdnCollectiveQueue, ready);
    }
    for (int i = 0; i < as.pe_size; ++i) {
      const int peer = as.pe_at(i);
      if (peer == root) continue;
      recv_ctrl(tmc::kUdnCollectiveQueue, MsgTag::kBcastDone, peer);
    }
  } else {
    const CtrlMsg ready =
        recv_ctrl(tmc::kUdnCollectiveQueue, MsgTag::kBcastReady, root);
    if (ready.seq != seq) {
      throw std::runtime_error("broadcast: stale ready notification");
    }
    CopyHints hints;
    hints.readers = as.pe_size - 1;  // everyone pulls from the root at once
    get(target, source, bytes, root, hints);
    send_ctrl(root, tmc::kUdnCollectiveQueue,
              CtrlMsg{MsgTag::kBcastDone, as.id() & 0xffffff, seq, 0});
  }
}

void Context::bcast_binomial(void* target, const void* source,
                             std::size_t bytes, int root_index,
                             const ActiveSet& as, std::uint32_t seq) {
  // §IV-E future-work algorithm: log2(n) rounds; in round k the members
  // with relative rank < 2^k put their block to rank + 2^k.
  const int n = as.pe_size;
  const int rel = (as.index_of(pe_) - root_index + n) % n;
  const int rounds = bit_ceil_log2(n);
  auto abs_pe = [&](int relative) {
    return as.pe_at((relative + root_index) % n);
  };

  const void* block = source;
  if (rel != 0) {
    // Wait for my parent's notification, then forward from `target`.
    const CtrlMsg msg =
        recv_ctrl(tmc::kUdnCollectiveQueue, MsgTag::kTreeNotify, -1);
    if (msg.seq != seq) {
      throw std::runtime_error("broadcast: stale tree notification");
    }
    block = target;
  }
  for (int k = 0; k < rounds; ++k) {
    const int span = 1 << k;
    if (rel < span && rel + span < n) {
      const int child = abs_pe(rel + span);
      put(target, block, bytes, child);
      quiet();
      send_ctrl(child, tmc::kUdnCollectiveQueue,
                CtrlMsg{MsgTag::kTreeNotify, as.id() & 0xffffff, seq, 0});
    }
  }
}

// ===========================================================================
// Collection (paper §IV-D2)
// ===========================================================================

void Context::fcollect(void* target, const void* source,
                       std::size_t bytes_per_pe, const ActiveSet& as,
                       CollectAlgo algo) {
  collect_engine(target, source, bytes_per_pe, /*fixed_size=*/true, as, algo);
}

void Context::collect(void* target, const void* source, std::size_t my_bytes,
                      const ActiveSet& as, CollectAlgo algo) {
  collect_engine(target, source, my_bytes, /*fixed_size=*/false, as, algo);
}

void Context::collect_engine(void* target, const void* source,
                             std::size_t my_bytes, bool fixed_size,
                             const ActiveSet& as, CollectAlgo algo) {
  if (!as.contains(pe_)) {
    throw std::invalid_argument("collect: calling PE not in active set");
  }
  obs::ScopedVtTimer vt_metric(tile_->clock(),
                               met_ ? met_->collective_wait_ps : nullptr,
                               met_ ? met_->collect_calls : nullptr);
  tilesim::ProfSpan prof(*tile_, tilesim::ProfPhase::kCollective,
                         "shmem_collect");
  if (met_) met_->collect_bytes->add(my_bytes);
  tile_->clock().advance(rt_->config().shmem_call_overhead_ps);
  const std::uint32_t seq = next_collective_seq(as);
  const int n = as.pe_size;
  const int idx = as.index_of(pe_);
  const int root = as.pe_at(0);
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kCollect,
                        "shmem_collect", tile_->clock().now(), root,
                        my_bytes);

  if (n == 1) {
    charge_local_copy(my_bytes, tilesim::MemSpace::kShared,
                      tilesim::MemSpace::kShared, {});
    std::memmove(target, source, my_bytes);
    return;
  }

  // Determine my offset in the concatenated result. Fast collect: implicit
  // (idx * size). General collect: a running-offset token circulates
  // linearly so each PE learns where to append (paper: "PEs need to
  // communicate ... to know where and when to append").
  std::size_t my_offset = 0;
  std::size_t total_bytes = 0;
  if (fixed_size) {
    my_offset = static_cast<std::size_t>(idx) * my_bytes;
    total_bytes = static_cast<std::size_t>(n) * my_bytes;
  } else {
    if (idx == 0) {
      my_offset = 0;
      send_ctrl(as.pe_at(1), tmc::kUdnCollectiveQueue,
                CtrlMsg{MsgTag::kCollectOffset, as.id() & 0xffffff, seq,
                        my_bytes});
      // The total comes back around the ring from the last member.
      const CtrlMsg back = recv_ctrl(tmc::kUdnCollectiveQueue,
                                     MsgTag::kCollectOffset,
                                     as.pe_at(n - 1));
      total_bytes = back.aux;
    } else {
      const CtrlMsg tok = recv_ctrl(tmc::kUdnCollectiveQueue,
                                    MsgTag::kCollectOffset,
                                    as.pe_at(idx - 1));
      my_offset = tok.aux;
      const std::uint64_t running = tok.aux + my_bytes;
      send_ctrl(as.pe_at((idx + 1) % n), tmc::kUdnCollectiveQueue,
                CtrlMsg{MsgTag::kCollectOffset, as.id() & 0xffffff, seq,
                        running});
      total_bytes = 0;  // learned from the broadcast READY below
    }
  }

  if (algo == CollectAlgo::kRing) {
    // Extension algorithm: n-1 ring steps; each PE forwards the block it
    // received in the previous step. Only valid for fixed sizes.
    if (!fixed_size) {
      throw std::invalid_argument("ring collect requires fixed block sizes");
    }
    auto* tgt = static_cast<std::byte*>(target);
    charge_local_copy(my_bytes, tilesim::MemSpace::kShared,
                      tilesim::MemSpace::kShared, {});
    std::memmove(tgt + my_offset, source, my_bytes);
    const int next_pe = as.pe_at((idx + 1) % n);
    const int prev_pe = as.pe_at((idx + n - 1) % n);
    int have = idx;  // index of the newest block I hold
    for (int step = 0; step < n - 1; ++step) {
      // Push my newest block to the next PE's target slot.
      put(tgt + static_cast<std::size_t>(have) * my_bytes,
          tgt + static_cast<std::size_t>(have) * my_bytes, my_bytes, next_pe,
          CopyHints{1, 1});
      quiet();
      send_ctrl(next_pe, tmc::kUdnCollectiveQueue,
                CtrlMsg{MsgTag::kCollectPutDone, as.id() & 0xffffff, seq,
                        static_cast<std::uint64_t>(have)});
      const CtrlMsg got = recv_ctrl(tmc::kUdnCollectiveQueue,
                                    MsgTag::kCollectPutDone, prev_pe);
      have = static_cast<int>(got.aux);
    }
    return;
  }

  // Naive algorithm (paper §IV-D2): stage 1 — every PE puts its block into
  // the root's target; stage 2 — pull-broadcast of the concatenation.
  if (pe_ == root) {
    charge_local_copy(my_bytes, tilesim::MemSpace::kShared,
                      tilesim::MemSpace::kShared, {});
    std::memmove(static_cast<std::byte*>(target) + my_offset, source,
                 my_bytes);
    for (int i = 1; i < n; ++i) {
      recv_ctrl(tmc::kUdnCollectiveQueue, MsgTag::kCollectPutDone,
                as.pe_at(i));
    }
    if (!fixed_size) {
      // Tell members the total via the READY aux field of the broadcast.
      bcast_pull(target, target, total_bytes, 0, as, seq);
      return;
    }
    bcast_pull(target, target, total_bytes, 0, as, seq);
  } else {
    // Stage 1: put my block into the root's copy of `target`.
    auto* tgt = static_cast<std::byte*>(target);
    CopyHints hints;
    hints.writers = n - 1;  // all members write the root's partition at once
    put(tgt + my_offset, source, my_bytes, root, hints);
    quiet();
    send_ctrl(root, tmc::kUdnCollectiveQueue,
              CtrlMsg{MsgTag::kCollectPutDone, as.id() & 0xffffff, seq,
                      my_bytes});
    // Stage 2: pull the concatenated result. The READY aux carries the
    // total size, which general collect members do not otherwise know.
    const CtrlMsg ready =
        recv_ctrl(tmc::kUdnCollectiveQueue, MsgTag::kBcastReady, root);
    if (ready.seq != seq) {
      throw std::runtime_error("collect: stale broadcast ready");
    }
    CopyHints pull;
    pull.readers = n - 1;
    get(target, target, static_cast<std::size_t>(ready.aux), root, pull);
    send_ctrl(root, tmc::kUdnCollectiveQueue,
              CtrlMsg{MsgTag::kBcastDone, as.id() & 0xffffff, seq, 0});
  }
}

// ===========================================================================
// Reduction (paper §IV-D3)
// ===========================================================================

void Context::reduce_custom(void* target, const void* source,
                            std::size_t nreduce, std::size_t elem_size,
                            ReduceApply apply, bool is_fp, const ActiveSet& as,
                            ReduceAlgo algo) {
  reduce_engine(target, source, nreduce, elem_size, apply, is_fp, as, algo);
}

void Context::reduce_engine(void* target, const void* source,
                            std::size_t nreduce, std::size_t elem_size,
                            ReduceApply apply, bool is_fp, const ActiveSet& as,
                            ReduceAlgo algo) {
  if (!as.contains(pe_)) {
    throw std::invalid_argument("reduce: calling PE not in active set");
  }
  obs::ScopedVtTimer vt_metric(tile_->clock(),
                               met_ ? met_->collective_wait_ps : nullptr,
                               met_ ? met_->reduce_calls : nullptr);
  tilesim::ProfSpan prof(*tile_, tilesim::ProfPhase::kCollective,
                         "shmem_reduce");
  if (met_) met_->reduce_bytes->add(nreduce * elem_size);
  tile_->clock().advance(rt_->config().shmem_call_overhead_ps);
  const std::uint32_t seq = next_collective_seq(as);
  const int n = as.pe_size;
  const std::size_t bytes = nreduce * elem_size;
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kReduce,
                        "shmem_reduce", tile_->clock().now(), -1, bytes);

  auto charge_reduce_elems = [&](std::uint64_t elems) {
    if (is_fp) {
      tile_->charge_fp_ops(elems * kNaiveReduceOpsPerElement / 4);
      tile_->charge_int_ops(elems * kNaiveReduceOpsPerElement * 3 / 4);
    } else {
      tile_->charge_int_ops(elems * kNaiveReduceOpsPerElement);
    }
  };

  if (n == 1) {
    charge_local_copy(bytes, tilesim::MemSpace::kShared,
                      tilesim::MemSpace::kShared, {});
    std::memmove(target, source, bytes);
    return;
  }

  if (algo == ReduceAlgo::kRecursiveDoubling) {
    // §IV-E extension: binomial-tree combine (log2 n rounds of parallel
    // partial reductions) followed by a pull broadcast of the result.
    const int idx = as.index_of(pe_);
    std::vector<std::byte> acc(bytes);
    std::memcpy(acc.data(), source, bytes);
    std::vector<std::byte> incoming(bytes);
    // Receive buffer must be symmetric for partners to put into; use a
    // bounce allocation in shared memory.
    auto* stage = static_cast<std::byte*>(rt_->alloc_bounce(bytes, pe_));
    for (int span = 1; span < n; span <<= 1) {
      if (idx % (span << 1) == span) {
        const int parent = as.pe_at(idx - span);
        // Push my partial into the parent's stage buffer. Stage buffers are
        // distinct mappings per PE, so translate manually via put to self-
        // addressable shared memory: parent reads my stage directly.
        std::memcpy(stage, acc.data(), bytes);
        charge_local_copy(bytes, tilesim::MemSpace::kShared,
                          tilesim::MemSpace::kPrivate, {});
        quiet();
        send_ctrl(parent, tmc::kUdnCollectiveQueue,
                  CtrlMsg{MsgTag::kReduceReady, as.id() & 0xffffff, seq,
                          reinterpret_cast<std::uint64_t>(stage)});
        break;  // sent up; wait for the broadcast below
      }
      if (idx % (span << 1) == 0 && idx + span < n) {
        const int child = as.pe_at(idx + span);
        const CtrlMsg msg = recv_ctrl(tmc::kUdnCollectiveQueue,
                                      MsgTag::kReduceReady, child);
        const auto* child_stage =
            reinterpret_cast<const std::byte*>(msg.aux);
        charge_local_copy(bytes, tilesim::MemSpace::kPrivate,
                          tilesim::MemSpace::kShared, {});
        std::memcpy(incoming.data(), child_stage, bytes);
        charge_reduce_elems(nreduce);
        apply(acc.data(), incoming.data(), nreduce);
      }
    }
    if (as.index_of(pe_) == 0) {
      charge_local_copy(bytes, tilesim::MemSpace::kShared,
                        tilesim::MemSpace::kPrivate, {});
      std::memcpy(target, acc.data(), bytes);
      quiet();
    }
    bcast_pull(target, target, bytes, 0, as, seq);
    rt_->free_bounce(stage);
    return;
  }

  // Naive design (paper §IV-D3): the root continuously gets data from each
  // remote PE in turn and folds it into the running result — serialized on
  // one tile, hence Fig 12's flat aggregate bandwidth.
  const int root = as.pe_at(0);
  if (pe_ == root) {
    std::vector<std::byte> acc(bytes);
    std::memcpy(acc.data(), source, bytes);
    charge_local_copy(bytes, tilesim::MemSpace::kPrivate,
                      tilesim::MemSpace::kShared, {});
    // Wait for every member's source to be stable.
    for (int i = 1; i < n; ++i) {
      recv_ctrl(tmc::kUdnCollectiveQueue, MsgTag::kReduceReady, as.pe_at(i));
    }
    std::vector<std::byte> chunk(std::min(bytes, kReduceChunkBytes));
    for (int i = 1; i < n; ++i) {
      const int peer = as.pe_at(i);
      for (std::size_t off = 0; off < bytes; off += kReduceChunkBytes) {
        const std::size_t len = std::min(kReduceChunkBytes, bytes - off);
        get(chunk.data(),
            static_cast<const std::byte*>(source) + off, len, peer);
        const std::size_t elems = len / elem_size;
        charge_reduce_elems(elems);
        apply(acc.data() + off, chunk.data(), elems);
      }
    }
    charge_local_copy(bytes, tilesim::MemSpace::kShared,
                      tilesim::MemSpace::kPrivate, {});
    std::memcpy(target, acc.data(), bytes);
    quiet();
    bcast_pull(target, target, bytes, 0, as, seq);
  } else {
    quiet();  // my source must be visible before the root reads it
    send_ctrl(root, tmc::kUdnCollectiveQueue,
              CtrlMsg{MsgTag::kReduceReady, as.id() & 0xffffff, seq, 0});
    bcast_pull(target, target, bytes, 0, as, seq);
  }
}

}  // namespace tshmem
