#include "tshmem/api.hpp"

#include <stdexcept>

namespace tshmem::api {

namespace {

ActiveSet make_set(int pe_start, int log_pe_stride, int pe_size) {
  if (pe_start < 0 || log_pe_stride < 0 || pe_size < 1) {
    throw std::invalid_argument("bad active-set triplet");
  }
  return ActiveSet{pe_start, log_pe_stride, pe_size};
}

Cmp to_cmp(int cmp) {
  switch (cmp) {
    case SHMEM_CMP_EQ: return Cmp::kEq;
    case SHMEM_CMP_NE: return Cmp::kNe;
    case SHMEM_CMP_GT: return Cmp::kGt;
    case SHMEM_CMP_LE: return Cmp::kLe;
    case SHMEM_CMP_LT: return Cmp::kLt;
    case SHMEM_CMP_GE: return Cmp::kGe;
    default:
      throw std::invalid_argument("unknown shmem comparison operator");
  }
}

void require_psync(const long* pSync) {
  if (pSync == nullptr) {
    throw std::invalid_argument("pSync must be a symmetric work array");
  }
}

}  // namespace

Context& ctx() {
  Context* c = Runtime::current();
  if (c == nullptr) {
    throw std::logic_error(
        "TSHMEM API called outside a running SPMD job (no PE context)");
  }
  return *c;
}

// --- environment ------------------------------------------------------------

void start_pes(int /*npes*/) {
  // The launcher (Runtime::run) already set up common memory, the UDN and
  // the symmetric partitions; start_pes only reports partition addresses,
  // which the Runtime did collectively. A barrier matches the rendezvous
  // the paper's implementation performs over the UDN.
  ctx().barrier_all();
}

int _my_pe() { return ctx().my_pe(); }
int _num_pes() { return ctx().num_pes(); }
int shmem_my_pe() { return ctx().my_pe(); }
int shmem_n_pes() { return ctx().num_pes(); }

int shmem_pe_accessible(int pe) { return ctx().pe_accessible(pe) ? 1 : 0; }
int shmem_addr_accessible(const void* addr, int pe) {
  return ctx().addr_accessible(addr, pe) ? 1 : 0;
}
void* shmem_ptr(const void* target, int pe) { return ctx().ptr(target, pe); }
void shmem_finalize() { ctx().finalize(); }

// --- symmetric heap -----------------------------------------------------------

void* shmalloc(std::size_t size) { return ctx().shmalloc(size); }
void shfree(void* ptr) { ctx().shfree(ptr); }
void* shrealloc(void* ptr, std::size_t size) {
  return ctx().shrealloc(ptr, size);
}
void* shmemalign(std::size_t alignment, std::size_t size) {
  return ctx().shmemalign(alignment, size);
}

// --- elemental put/get ----------------------------------------------------------

#define TSHMEM_DEF_P_G(T, NAME)                                   \
  void shmem_##NAME##_p(T* addr, T value, int pe) {               \
    ctx().p(addr, value, pe);                                     \
  }                                                               \
  T shmem_##NAME##_g(const T* addr, int pe) {                     \
    return ctx().g(addr, pe);                                     \
  }
TSHMEM_DEF_P_G(char, char)
TSHMEM_DEF_P_G(short, short)
TSHMEM_DEF_P_G(int, int)
TSHMEM_DEF_P_G(long, long)
TSHMEM_DEF_P_G(long long, longlong)
TSHMEM_DEF_P_G(float, float)
TSHMEM_DEF_P_G(double, double)
TSHMEM_DEF_P_G(long double, longdouble)
#undef TSHMEM_DEF_P_G

// --- block put/get ----------------------------------------------------------------

#define TSHMEM_DEF_PUT_GET(T, NAME)                                        \
  void shmem_##NAME##_put(T* target, const T* source, std::size_t nelems,  \
                          int pe) {                                        \
    ctx().put(target, source, nelems * sizeof(T), pe);                     \
  }                                                                        \
  void shmem_##NAME##_get(T* target, const T* source, std::size_t nelems,  \
                          int pe) {                                        \
    ctx().get(target, source, nelems * sizeof(T), pe);                     \
  }
TSHMEM_DEF_PUT_GET(char, char)
TSHMEM_DEF_PUT_GET(short, short)
TSHMEM_DEF_PUT_GET(int, int)
TSHMEM_DEF_PUT_GET(long, long)
TSHMEM_DEF_PUT_GET(long long, longlong)
TSHMEM_DEF_PUT_GET(float, float)
TSHMEM_DEF_PUT_GET(double, double)
TSHMEM_DEF_PUT_GET(long double, longdouble)
#undef TSHMEM_DEF_PUT_GET

void shmem_put32(void* target, const void* source, std::size_t nelems,
                 int pe) {
  ctx().put(target, source, nelems * 4, pe);
}
void shmem_put64(void* target, const void* source, std::size_t nelems,
                 int pe) {
  ctx().put(target, source, nelems * 8, pe);
}
void shmem_put128(void* target, const void* source, std::size_t nelems,
                  int pe) {
  ctx().put(target, source, nelems * 16, pe);
}
void shmem_putmem(void* target, const void* source, std::size_t bytes,
                  int pe) {
  ctx().put(target, source, bytes, pe);
}
void shmem_get32(void* target, const void* source, std::size_t nelems,
                 int pe) {
  ctx().get(target, source, nelems * 4, pe);
}
void shmem_get64(void* target, const void* source, std::size_t nelems,
                 int pe) {
  ctx().get(target, source, nelems * 8, pe);
}
void shmem_get128(void* target, const void* source, std::size_t nelems,
                  int pe) {
  ctx().get(target, source, nelems * 16, pe);
}
void shmem_getmem(void* target, const void* source, std::size_t bytes,
                  int pe) {
  ctx().get(target, source, bytes, pe);
}

// --- non-blocking put/get ---------------------------------------------------------

#define TSHMEM_DEF_PUT_GET_NBI(T, NAME)                                       \
  void shmem_##NAME##_put_nbi(T* target, const T* source, std::size_t nelems, \
                              int pe) {                                       \
    ctx().put_nbi(target, source, nelems * sizeof(T), pe);                    \
  }                                                                           \
  void shmem_##NAME##_get_nbi(T* target, const T* source, std::size_t nelems, \
                              int pe) {                                       \
    ctx().get_nbi(target, source, nelems * sizeof(T), pe);                    \
  }
TSHMEM_DEF_PUT_GET_NBI(char, char)
TSHMEM_DEF_PUT_GET_NBI(short, short)
TSHMEM_DEF_PUT_GET_NBI(int, int)
TSHMEM_DEF_PUT_GET_NBI(long, long)
TSHMEM_DEF_PUT_GET_NBI(long long, longlong)
TSHMEM_DEF_PUT_GET_NBI(float, float)
TSHMEM_DEF_PUT_GET_NBI(double, double)
TSHMEM_DEF_PUT_GET_NBI(long double, longdouble)
#undef TSHMEM_DEF_PUT_GET_NBI

void shmem_put32_nbi(void* target, const void* source, std::size_t nelems,
                     int pe) {
  ctx().put_nbi(target, source, nelems * 4, pe);
}
void shmem_put64_nbi(void* target, const void* source, std::size_t nelems,
                     int pe) {
  ctx().put_nbi(target, source, nelems * 8, pe);
}
void shmem_put128_nbi(void* target, const void* source, std::size_t nelems,
                      int pe) {
  ctx().put_nbi(target, source, nelems * 16, pe);
}
void shmem_putmem_nbi(void* target, const void* source, std::size_t bytes,
                      int pe) {
  ctx().put_nbi(target, source, bytes, pe);
}
void shmem_get32_nbi(void* target, const void* source, std::size_t nelems,
                     int pe) {
  ctx().get_nbi(target, source, nelems * 4, pe);
}
void shmem_get64_nbi(void* target, const void* source, std::size_t nelems,
                     int pe) {
  ctx().get_nbi(target, source, nelems * 8, pe);
}
void shmem_get128_nbi(void* target, const void* source, std::size_t nelems,
                      int pe) {
  ctx().get_nbi(target, source, nelems * 16, pe);
}
void shmem_getmem_nbi(void* target, const void* source, std::size_t bytes,
                      int pe) {
  ctx().get_nbi(target, source, bytes, pe);
}

// --- strided ----------------------------------------------------------------------

#define TSHMEM_DEF_IPUT_IGET(T, NAME)                                       \
  void shmem_##NAME##_iput(T* target, const T* source, std::ptrdiff_t tst,  \
                           std::ptrdiff_t sst, std::size_t nelems, int pe) { \
    ctx().iput(target, source, tst, sst, nelems, pe);                       \
  }                                                                         \
  void shmem_##NAME##_iget(T* target, const T* source, std::ptrdiff_t tst,  \
                           std::ptrdiff_t sst, std::size_t nelems, int pe) { \
    ctx().iget(target, source, tst, sst, nelems, pe);                       \
  }
TSHMEM_DEF_IPUT_IGET(short, short)
TSHMEM_DEF_IPUT_IGET(int, int)
TSHMEM_DEF_IPUT_IGET(long, long)
TSHMEM_DEF_IPUT_IGET(long long, longlong)
TSHMEM_DEF_IPUT_IGET(float, float)
TSHMEM_DEF_IPUT_IGET(double, double)
TSHMEM_DEF_IPUT_IGET(long double, longdouble)
#undef TSHMEM_DEF_IPUT_IGET

namespace {
template <typename Word>
void sized_iput(void* target, const void* source, std::ptrdiff_t tst,
                std::ptrdiff_t sst, std::size_t nelems, int pe) {
  ctx().iput(static_cast<Word*>(target), static_cast<const Word*>(source),
             tst, sst, nelems, pe);
}
template <typename Word>
void sized_iget(void* target, const void* source, std::ptrdiff_t tst,
                std::ptrdiff_t sst, std::size_t nelems, int pe) {
  ctx().iget(static_cast<Word*>(target), static_cast<const Word*>(source),
             tst, sst, nelems, pe);
}
struct alignas(16) Word128 {
  std::uint64_t lo, hi;
};
}  // namespace

void shmem_iput32(void* target, const void* source, std::ptrdiff_t tst,
                  std::ptrdiff_t sst, std::size_t nelems, int pe) {
  sized_iput<std::uint32_t>(target, source, tst, sst, nelems, pe);
}
void shmem_iput64(void* target, const void* source, std::ptrdiff_t tst,
                  std::ptrdiff_t sst, std::size_t nelems, int pe) {
  sized_iput<std::uint64_t>(target, source, tst, sst, nelems, pe);
}
void shmem_iput128(void* target, const void* source, std::ptrdiff_t tst,
                   std::ptrdiff_t sst, std::size_t nelems, int pe) {
  sized_iput<Word128>(target, source, tst, sst, nelems, pe);
}
void shmem_iget32(void* target, const void* source, std::ptrdiff_t tst,
                  std::ptrdiff_t sst, std::size_t nelems, int pe) {
  sized_iget<std::uint32_t>(target, source, tst, sst, nelems, pe);
}
void shmem_iget64(void* target, const void* source, std::ptrdiff_t tst,
                  std::ptrdiff_t sst, std::size_t nelems, int pe) {
  sized_iget<std::uint64_t>(target, source, tst, sst, nelems, pe);
}
void shmem_iget128(void* target, const void* source, std::ptrdiff_t tst,
                   std::ptrdiff_t sst, std::size_t nelems, int pe) {
  sized_iget<Word128>(target, source, tst, sst, nelems, pe);
}

// --- synchronization -----------------------------------------------------------

void shmem_barrier_all() { ctx().barrier_all(); }

void shmem_barrier(int PE_start, int logPE_stride, int PE_size, long* pSync) {
  require_psync(pSync);
  ctx().barrier(make_set(PE_start, logPE_stride, PE_size));
}

void shmem_fence() { ctx().fence(); }
void shmem_quiet() { ctx().quiet(); }

#define TSHMEM_DEF_WAIT(T, NAME)                                         \
  void shmem_##NAME##_wait(volatile T* ivar, T cmp_value) {              \
    ctx().wait(ivar, cmp_value);                                         \
  }                                                                      \
  void shmem_##NAME##_wait_until(volatile T* ivar, int cmp, T value) {   \
    ctx().wait_until(ivar, to_cmp(cmp), value);                          \
  }
TSHMEM_DEF_WAIT(short, short)
TSHMEM_DEF_WAIT(int, int)
TSHMEM_DEF_WAIT(long, long)
TSHMEM_DEF_WAIT(long long, longlong)
#undef TSHMEM_DEF_WAIT
void shmem_wait(volatile long* ivar, long cmp_value) {
  ctx().wait(ivar, cmp_value);
}
void shmem_wait_until(volatile long* ivar, int cmp, long cmp_value) {
  ctx().wait_until(ivar, to_cmp(cmp), cmp_value);
}

// --- collectives ------------------------------------------------------------------

namespace {
void bcast_sized(void* target, const void* source, std::size_t bytes,
                 int PE_root, int PE_start, int logPE_stride, int PE_size,
                 long* pSync) {
  require_psync(pSync);
  ctx().broadcast(target, source, bytes, PE_root,
                  make_set(PE_start, logPE_stride, PE_size));
}
}  // namespace

void shmem_broadcast32(void* target, const void* source, std::size_t nelems,
                       int PE_root, int PE_start, int logPE_stride,
                       int PE_size, long* pSync) {
  bcast_sized(target, source, nelems * 4, PE_root, PE_start, logPE_stride,
              PE_size, pSync);
}
void shmem_broadcast64(void* target, const void* source, std::size_t nelems,
                       int PE_root, int PE_start, int logPE_stride,
                       int PE_size, long* pSync) {
  bcast_sized(target, source, nelems * 8, PE_root, PE_start, logPE_stride,
              PE_size, pSync);
}
void shmem_collect32(void* target, const void* source, std::size_t nelems,
                     int PE_start, int logPE_stride, int PE_size,
                     long* pSync) {
  require_psync(pSync);
  ctx().collect(target, source, nelems * 4,
                make_set(PE_start, logPE_stride, PE_size));
}
void shmem_collect64(void* target, const void* source, std::size_t nelems,
                     int PE_start, int logPE_stride, int PE_size,
                     long* pSync) {
  require_psync(pSync);
  ctx().collect(target, source, nelems * 8,
                make_set(PE_start, logPE_stride, PE_size));
}
void shmem_fcollect32(void* target, const void* source, std::size_t nelems,
                      int PE_start, int logPE_stride, int PE_size,
                      long* pSync) {
  require_psync(pSync);
  ctx().fcollect(target, source, nelems * 4,
                 make_set(PE_start, logPE_stride, PE_size));
}
void shmem_fcollect64(void* target, const void* source, std::size_t nelems,
                      int PE_start, int logPE_stride, int PE_size,
                      long* pSync) {
  require_psync(pSync);
  ctx().fcollect(target, source, nelems * 8,
                 make_set(PE_start, logPE_stride, PE_size));
}

// --- reductions --------------------------------------------------------------------

#define TSHMEM_DEF_REDUCE(T, NAME, OPNAME, OP)                                \
  void shmem_##NAME##_##OPNAME##_to_all(T* target, T* source, int nreduce,    \
                                        int PE_start, int logPE_stride,       \
                                        int PE_size, T* pWrk, long* pSync) {  \
    require_psync(pSync);                                                     \
    if (pWrk == nullptr) {                                                    \
      throw std::invalid_argument("pWrk must be a symmetric work array");     \
    }                                                                         \
    if (nreduce < 0) throw std::invalid_argument("nreduce must be >= 0");     \
    ctx().reduce(target, source, static_cast<std::size_t>(nreduce), OP,       \
                 make_set(PE_start, logPE_stride, PE_size));                  \
  }

#define TSHMEM_DEF_REDUCE_BITWISE(T, NAME)          \
  TSHMEM_DEF_REDUCE(T, NAME, and, RedOp::kAnd)      \
  TSHMEM_DEF_REDUCE(T, NAME, or, RedOp::kOr)        \
  TSHMEM_DEF_REDUCE(T, NAME, xor, RedOp::kXor)
#define TSHMEM_DEF_REDUCE_ARITH(T, NAME)            \
  TSHMEM_DEF_REDUCE(T, NAME, min, RedOp::kMin)      \
  TSHMEM_DEF_REDUCE(T, NAME, max, RedOp::kMax)      \
  TSHMEM_DEF_REDUCE(T, NAME, sum, RedOp::kSum)      \
  TSHMEM_DEF_REDUCE(T, NAME, prod, RedOp::kProd)

TSHMEM_DEF_REDUCE_BITWISE(short, short)
TSHMEM_DEF_REDUCE_BITWISE(int, int)
TSHMEM_DEF_REDUCE_BITWISE(long, long)
TSHMEM_DEF_REDUCE_BITWISE(long long, longlong)
TSHMEM_DEF_REDUCE_ARITH(short, short)
TSHMEM_DEF_REDUCE_ARITH(int, int)
TSHMEM_DEF_REDUCE_ARITH(long, long)
TSHMEM_DEF_REDUCE_ARITH(long long, longlong)
TSHMEM_DEF_REDUCE_ARITH(float, float)
TSHMEM_DEF_REDUCE_ARITH(double, double)
TSHMEM_DEF_REDUCE_ARITH(long double, longdouble)
#undef TSHMEM_DEF_REDUCE
#undef TSHMEM_DEF_REDUCE_BITWISE
#undef TSHMEM_DEF_REDUCE_ARITH

namespace {
template <typename C>
void complex_reduce(C* target, C* source, int nreduce, int PE_start,
                    int logPE_stride, int PE_size, C* pWrk, long* pSync,
                    bool product) {
  require_psync(pSync);
  if (pWrk == nullptr) {
    throw std::invalid_argument("pWrk must be a symmetric work array");
  }
  if (nreduce < 0) throw std::invalid_argument("nreduce must be >= 0");
  Context::ReduceApply apply =
      product ? +[](void* acc, const void* in, std::size_t n) {
        auto* a = static_cast<C*>(acc);
        const auto* b = static_cast<const C*>(in);
        for (std::size_t i = 0; i < n; ++i) a[i] *= b[i];
      }
              : +[](void* acc, const void* in, std::size_t n) {
        auto* a = static_cast<C*>(acc);
        const auto* b = static_cast<const C*>(in);
        for (std::size_t i = 0; i < n; ++i) a[i] += b[i];
      };
  ctx().reduce_custom(target, source, static_cast<std::size_t>(nreduce),
                      sizeof(C), apply, /*is_fp=*/true,
                      make_set(PE_start, logPE_stride, PE_size));
}
}  // namespace

void shmem_complexf_sum_to_all(std::complex<float>* target,
                               std::complex<float>* source, int nreduce,
                               int PE_start, int logPE_stride, int PE_size,
                               std::complex<float>* pWrk, long* pSync) {
  complex_reduce(target, source, nreduce, PE_start, logPE_stride, PE_size,
                 pWrk, pSync, /*product=*/false);
}
void shmem_complexd_sum_to_all(std::complex<double>* target,
                               std::complex<double>* source, int nreduce,
                               int PE_start, int logPE_stride, int PE_size,
                               std::complex<double>* pWrk, long* pSync) {
  complex_reduce(target, source, nreduce, PE_start, logPE_stride, PE_size,
                 pWrk, pSync, /*product=*/false);
}
void shmem_complexf_prod_to_all(std::complex<float>* target,
                                std::complex<float>* source, int nreduce,
                                int PE_start, int logPE_stride, int PE_size,
                                std::complex<float>* pWrk, long* pSync) {
  complex_reduce(target, source, nreduce, PE_start, logPE_stride, PE_size,
                 pWrk, pSync, /*product=*/true);
}
void shmem_complexd_prod_to_all(std::complex<double>* target,
                                std::complex<double>* source, int nreduce,
                                int PE_start, int logPE_stride, int PE_size,
                                std::complex<double>* pWrk, long* pSync) {
  complex_reduce(target, source, nreduce, PE_start, logPE_stride, PE_size,
                 pWrk, pSync, /*product=*/true);
}

// --- atomics ------------------------------------------------------------------------

#define TSHMEM_DEF_ATOMIC_INT(T, NAME)                              \
  T shmem_##NAME##_swap(T* target, T value, int pe) {               \
    return ctx().swap(target, value, pe);                           \
  }                                                                 \
  T shmem_##NAME##_cswap(T* target, T cond, T value, int pe) {      \
    return ctx().cswap(target, cond, value, pe);                    \
  }                                                                 \
  T shmem_##NAME##_fadd(T* target, T value, int pe) {               \
    return ctx().fadd(target, value, pe);                           \
  }                                                                 \
  T shmem_##NAME##_finc(T* target, int pe) {                        \
    return ctx().finc(target, pe);                                  \
  }                                                                 \
  void shmem_##NAME##_add(T* target, T value, int pe) {             \
    ctx().add(target, value, pe);                                   \
  }                                                                 \
  void shmem_##NAME##_inc(T* target, int pe) { ctx().inc(target, pe); }
TSHMEM_DEF_ATOMIC_INT(int, int)
TSHMEM_DEF_ATOMIC_INT(long, long)
TSHMEM_DEF_ATOMIC_INT(long long, longlong)
#undef TSHMEM_DEF_ATOMIC_INT

float shmem_float_swap(float* target, float value, int pe) {
  return ctx().swap(target, value, pe);
}
double shmem_double_swap(double* target, double value, int pe) {
  return ctx().swap(target, value, pe);
}
long shmem_swap(long* target, long value, int pe) {
  return ctx().swap(target, value, pe);
}

// --- locks --------------------------------------------------------------------------

void shmem_set_lock(long* lock) { ctx().set_lock(lock); }
void shmem_clear_lock(long* lock) { ctx().clear_lock(lock); }
int shmem_test_lock(long* lock) { return ctx().test_lock(lock); }

// --- cache control (deprecated; Tilera devices are cache-coherent) ------------------

void shmem_clear_cache_inv() {}
void shmem_set_cache_inv() {}
void shmem_clear_cache_line_inv(void* /*target*/) {}
void shmem_set_cache_line_inv(void* /*target*/) {}
void shmem_udcflush() {}
void shmem_udcflush_line(void* /*target*/) {}

}  // namespace tshmem::api
