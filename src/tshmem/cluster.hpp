// Multi-device TSHMEM over mPIPE (the paper's §VI future work: "we plan to
// leverage novel architectural features of the TILE-Gx such as the mPIPE
// packet engine as we explore designs for expanding the shared-memory
// abstraction in TSHMEM across multiple many-core devices").
//
// A Cluster runs one TSHMEM job per device and links the devices with a
// 10GbE-class mPIPE path. The global PE space concatenates the per-device
// PE spaces; symmetric-heap offsets are cluster-wide symmetric because all
// PEs execute the same allocation sequence. Cross-device one-sided
// transfers ride the mPIPE eDMA/iDMA path (link serialization + ingress
// pipeline costs); cluster barriers and broadcasts use a hierarchical
// design — local UDN collective + leader exchange over mPIPE notification
// rings.
#pragma once

#include <functional>
#include <latch>
#include <memory>
#include <vector>

#include "tmc/mpipe.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace tshmem {

struct ClusterOptions {
  RuntimeOptions runtime;
  tmc::MpipeConfig mpipe;
};

class ClusterContext;

/// `num_devices` identical TILE-Gx devices joined pairwise by full-duplex
/// mPIPE links (a full mesh: every device can reach every other in one
/// hop).
class Cluster {
 public:
  explicit Cluster(const DeviceConfig& cfg, ClusterOptions opts = {},
                   int num_devices = 2);
  ~Cluster();

  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  /// Runs `fn` as an SPMD job over num_devices * pes_per_device global PEs.
  void run(int pes_per_device,
           const std::function<void(ClusterContext&)>& fn);

  /// Runs `fn` as an SPMD job on ONE device's runtime — the serving layer's
  /// per-shard job hook (one device = one shard; src/svc, docs/SERVING.md).
  /// The job sees a plain single-device Context; cluster links are idle.
  void run_shard(int device, int pes,
                 const std::function<void(Context&)>& fn);

  [[nodiscard]] Runtime& runtime(int device);
  [[nodiscard]] tmc::MpipeEngine& mpipe(int device);
  [[nodiscard]] int num_devices() const noexcept { return num_devices_; }
  [[nodiscard]] int pes_per_device() const noexcept { return pes_per_dev_; }
  [[nodiscard]] int global_npes() const noexcept {
    return num_devices_ * pes_per_dev_;
  }
  [[nodiscard]] const ClusterOptions& options() const noexcept {
    return opts_;
  }

 private:
  ClusterOptions opts_;
  int num_devices_;
  std::vector<std::unique_ptr<Runtime>> runtimes_;
  std::vector<std::unique_ptr<tmc::MpipeEngine>> engines_;
  std::vector<std::unique_ptr<tmc::MpipeLink>> links_;
  int pes_per_dev_ = 0;

  friend class ClusterContext;
};

/// Per-PE view of the cluster job.
class ClusterContext {
 public:
  ClusterContext(Cluster& cluster, int device_index, Context& local);

  [[nodiscard]] Cluster& cluster() noexcept { return *cluster_; }
  [[nodiscard]] Context& local() noexcept { return *local_; }
  [[nodiscard]] int device_index() const noexcept { return device_; }
  [[nodiscard]] int global_pe() const noexcept {
    return device_ * cluster_->pes_per_device() + local_->my_pe();
  }
  [[nodiscard]] int global_npes() const noexcept {
    return cluster_->global_npes();
  }
  [[nodiscard]] int device_of(int global_pe) const {
    return global_pe / cluster_->pes_per_device();
  }
  [[nodiscard]] int local_pe_of(int global_pe) const {
    return global_pe % cluster_->pes_per_device();
  }

  /// One-sided transfers addressing the *global* PE space. Local-device
  /// targets go through the normal TSHMEM path; remote-device targets ride
  /// the mPIPE eDMA/iDMA path. Only dynamic symmetric objects are
  /// cross-device accessible (the eDMA writes shared memory directly).
  void put(void* target, const void* source, std::size_t bytes,
           int global_pe);
  void get(void* target, const void* source, std::size_t bytes,
           int global_pe);

  /// Cluster-wide barrier: local barrier, leader token exchange over
  /// mPIPE, local barrier.
  void barrier_all();

  /// Cluster-wide broadcast from `root_global_pe` (dynamic symmetric
  /// objects): local pull-broadcast on the root device, leader-to-leader
  /// mPIPE transfer, local pull-broadcasts elsewhere.
  void broadcast(void* target, const void* source, std::size_t bytes,
                 int root_global_pe);

 private:
  Cluster* cluster_;
  int device_;
  Context* local_;
  std::uint32_t barrier_seq_ = 0;
  std::uint32_t bcast_seq_ = 0;

  /// Resolve a caller-local dynamic symmetric address on another device.
  [[nodiscard]] void* cross_device_addr(const void* my_sym,
                                        int global_pe) const;
};

}  // namespace tshmem
