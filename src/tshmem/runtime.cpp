#include "tshmem/runtime.hpp"

#include <cstdlib>
#include <stdexcept>
#include <string_view>

#include "tshmem/context.hpp"

namespace tshmem {

namespace {
thread_local Context* g_current_context = nullptr;

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}

bool metrics_env_enabled(bool fallback) {
  const char* v = std::getenv("TSHMEM_METRICS");
  if (v == nullptr) return fallback;
  const std::string_view s(v);
  return !(s.empty() || s == "0" || s == "false" || s == "off");
}
}  // namespace

StaticRegistry::StaticRegistry(std::size_t arena_bytes)
    : arena_bytes_(arena_bytes) {}

StaticRegistry::Entry StaticRegistry::reserve(const std::string& name,
                                              std::size_t bytes,
                                              std::size_t alignment) {
  if (bytes == 0) throw std::invalid_argument("static object of zero bytes");
  if (alignment == 0 || (alignment & (alignment - 1)) != 0) {
    throw std::invalid_argument("static object alignment must be power of 2");
  }
  std::scoped_lock lk(mu_);
  if (const auto it = entries_.find(name); it != entries_.end()) {
    if (it->second.bytes != bytes) {
      throw std::invalid_argument("static symmetric object '" + name +
                                  "' re-registered with a different size");
    }
    return it->second;
  }
  const std::size_t offset = align_up(next_offset_, alignment);
  if (offset + bytes > arena_bytes_) {
    throw std::runtime_error("static symmetric arena exhausted");
  }
  next_offset_ = offset + bytes;
  const Entry e{offset, bytes};
  entries_.emplace(name, e);
  return e;
}

std::size_t StaticRegistry::bytes_used() const {
  std::scoped_lock lk(mu_);
  return next_offset_;
}

std::size_t StaticRegistry::object_count() const {
  std::scoped_lock lk(mu_);
  return entries_.size();
}

Runtime::Runtime(const DeviceConfig& cfg, RuntimeOptions opts)
    : opts_(opts),
      device_(cfg),
      // Size the arena for the largest possible job plus collective bounce
      // buffers and user tmc allocations.
      cmem_(static_cast<std::size_t>(cfg.tile_count()) * opts.heap_per_pe +
            (std::size_t{64} << 20)),
      udn_(device_),
      intc_(device_),
      statics_(opts.private_per_pe) {
  if (opts.heap_per_pe < (std::size_t{1} << 16)) {
    throw std::invalid_argument("heap_per_pe too small");
  }
  metrics_enabled_ = metrics_env_enabled(opts.metrics);
  if (metrics_enabled_) {
    // The analytic MemModel is the timing hot path; the cache probes only
    // mirror the access stream to produce hit/miss counts for the scrape.
    device_.enable_cache_probes();
  }
}

Runtime::~Runtime() = default;

Context* Runtime::current() noexcept { return g_current_context; }

std::byte* Runtime::partition_base(int pe) const {
  if (pe < 0 || pe >= npes_ || partitions_ == nullptr) {
    throw std::out_of_range("partition_base: PE out of range or not running");
  }
  return partitions_ + static_cast<std::size_t>(pe) * opts_.heap_per_pe;
}

std::byte* Runtime::private_base(int pe) const {
  if (pe < 0 || pe >= npes_) {
    throw std::out_of_range("private_base: PE out of range");
  }
  return private_arenas_[static_cast<std::size_t>(pe)]->data();
}

Context& Runtime::context(int pe) const {
  if (pe < 0 || pe >= npes_) {
    throw std::out_of_range("context: PE out of range");
  }
  return *contexts_[static_cast<std::size_t>(pe)];
}

void Runtime::note_delivery(int pe, ps_t completion) {
  auto& slot = *delivery_[static_cast<std::size_t>(pe)];
  ps_t cur = slot.load(std::memory_order_acquire);
  while (cur < completion &&
         !slot.compare_exchange_weak(cur, completion,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
  }
}

ps_t Runtime::last_delivery(int pe) const {
  return delivery_[static_cast<std::size_t>(pe)]->load(
      std::memory_order_acquire);
}

void* Runtime::alloc_bounce(std::size_t bytes, int tile) {
  std::scoped_lock lk(bounce_mu_);
  const std::string name = "tshmem_bounce_" + std::to_string(next_bounce_id_++);
  void* p = cmem_.map(name, bytes, tilesim::Homing::kHashForHome, tile);
  bounce_names_.emplace(p, name);
  return p;
}

void Runtime::free_bounce(void* p) {
  std::scoped_lock lk(bounce_mu_);
  const auto it = bounce_names_.find(p);
  if (it == bounce_names_.end()) {
    throw std::invalid_argument("free_bounce of unknown buffer");
  }
  cmem_.unmap(it->second);
  bounce_names_.erase(it);
}

tmc::SpinBarrier& Runtime::spin_barrier_for(const ActiveSet& as) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(as.pe_start) << 40) |
      (static_cast<std::uint64_t>(as.log_pe_stride) << 32) |
      static_cast<std::uint64_t>(as.pe_size);
  std::scoped_lock lk(spin_mu_);
  auto it = spin_barriers_.find(key);
  if (it == spin_barriers_.end()) {
    it = spin_barriers_
             .emplace(key,
                      std::make_unique<tmc::SpinBarrier>(device_, as.pe_size))
             .first;
  }
  return *it->second;
}

void Runtime::setup_job(int npes) {
  npes_ = npes;
  last_npes_ = npes;
  partitions_ = static_cast<std::byte*>(
      cmem_.map("tshmem_partitions",
                static_cast<std::size_t>(npes) * opts_.heap_per_pe,
                opts_.partition_homing, /*creator_tile=*/0));
  private_arenas_.clear();
  contexts_.clear();
  delivery_.clear();
  symmetry_slots_.assign(static_cast<std::size_t>(npes), 0);
  for (int pe = 0; pe < npes; ++pe) {
    private_arenas_.push_back(
        std::make_unique<std::vector<std::byte>>(opts_.private_per_pe));
    delivery_.push_back(std::make_unique<std::atomic<ps_t>>(0));
  }
  for (int pe = 0; pe < npes; ++pe) {
    contexts_.push_back(std::make_unique<Context>(
        *this, pe, device_.tile(pe), partition_base(pe), opts_.heap_per_pe,
        private_arenas_[static_cast<std::size_t>(pe)]->data(),
        opts_.private_per_pe));
  }
}

void Runtime::teardown_job() {
  contexts_.clear();
  private_arenas_.clear();
  delivery_.clear();
  {
    std::scoped_lock lk(bounce_mu_);
    for (const auto& [p, name] : bounce_names_) cmem_.unmap(name);
    bounce_names_.clear();
  }
  {
    std::scoped_lock lk(spin_mu_);
    spin_barriers_.clear();
  }
  cmem_.unmap("tshmem_partitions");
  partitions_ = nullptr;
  npes_ = 0;
}

void Runtime::run(int npes, const std::function<void(Context&)>& fn) {
  if (npes < 1 || npes > device_.tile_count()) {
    throw std::invalid_argument("npes must be in [1, tile_count]");
  }
  if (npes_ != 0) {
    throw std::logic_error("Runtime::run is not reentrant");
  }
  setup_job(npes);
  try {
    device_.run(npes, [this, &fn](Tile& tile) {
      Context& ctx = *contexts_[static_cast<std::size_t>(tile.id())];
      g_current_context = &ctx;
      try {
        fn(ctx);
      } catch (...) {
        g_current_context = nullptr;
        throw;
      }
      g_current_context = nullptr;
    });
  } catch (...) {
    teardown_job();
    throw;
  }
  scrape_run_stats();
  teardown_job();
}

obs::MetricsSnapshot Runtime::metrics() const {
  return registry_.snapshot(config().short_name, last_npes_);
}

void Runtime::scrape_run_stats() {
  if (!metrics_enabled_) return;
  const auto tiles = static_cast<std::size_t>(device_.tile_count());
  if (scraped_udn_.size() != tiles) {
    scraped_udn_.assign(tiles, {});
    scraped_cache_.assign(tiles, {});
  }
  auto delta = [](std::uint64_t cur, std::uint64_t& prev) {
    const std::uint64_t d = cur - prev;
    prev = cur;
    return d;
  };
  for (int pe = 0; pe < npes_; ++pe) {
    const Tile& tile = device_.tile(pe);
    // busy/idle cover the interval since the last clock reset — with
    // harness_sync_reset() benches, the final measured phase.
    registry_.counter("sim.tile.busy_ps", pe).add(tile.clock().busy_ps());
    registry_.counter("sim.tile.idle_ps", pe).add(tile.clock().idle_ps());

    const auto traffic = udn_.traffic(pe);
    auto& up = scraped_udn_[static_cast<std::size_t>(pe)];
    registry_.counter("udn.packets", pe).add(delta(traffic.packets,
                                                   up.packets));
    registry_.counter("udn.words", pe).add(delta(traffic.words, up.words));
    registry_.counter("udn.hops", pe).add(delta(traffic.hops, up.hops));

    if (const tilesim::CacheSim* probe = tile.cache_probe();
        probe != nullptr) {
      const tilesim::AccessCounts& c = probe->counts();
      auto& cp = scraped_cache_[static_cast<std::size_t>(pe)];
      registry_.counter("cache.l1_hits", pe).add(delta(c.l1, cp.l1));
      registry_.counter("cache.l2_hits", pe).add(delta(c.l2, cp.l2));
      registry_.counter("cache.ddc_hits", pe).add(delta(c.ddc, cp.ddc));
      registry_.counter("cache.dram_accesses", pe).add(delta(c.dram,
                                                             cp.dram));
    }

    Context& ctx = *contexts_[static_cast<std::size_t>(pe)];
    registry_.gauge("shmem.heap.bytes_in_use", pe)
        .set(static_cast<std::int64_t>(ctx.heap().bytes_in_use()));
    registry_.gauge("shmem.heap.blocks", pe)
        .set(static_cast<std::int64_t>(ctx.heap().block_count()));

    // DMA engines are cleared at every Device::run entry, so their stats
    // are already this run's values (peak depth covers the last phase when
    // benches reset clocks mid-run).
    const tilesim::DmaStats dma = tile.dma().stats();
    registry_.gauge("sim.dma.peak_pending", pe)
        .set(static_cast<std::int64_t>(dma.peak_pending));
  }

  // Device-wide aggregates use pe = -1.
  const tmc::CommonMemory::Stats cs = cmem_.stats();
  registry_.counter("tmc.cmem.maps", -1).add(delta(cs.maps,
                                                   scraped_cmem_.maps));
  registry_.counter("tmc.cmem.unmaps", -1).add(delta(cs.unmaps,
                                                     scraped_cmem_.unmaps));
  registry_.gauge("tmc.cmem.peak_bytes", -1)
      .set(static_cast<std::int64_t>(cs.peak_bytes));

  // Spin barriers are per-run objects (cleared in teardown), so their wait
  // totals are already this run's delta.
  std::uint64_t spins = 0;
  {
    std::scoped_lock lk(spin_mu_);
    for (const auto& [key, barrier] : spin_barriers_) {
      spins += barrier->waits();
    }
  }
  registry_.counter("tmc.barrier.spin_waits", -1).add(spins);

  registry_.gauge("shmem.statics.bytes_used", -1)
      .set(static_cast<std::int64_t>(statics_.bytes_used()));
  registry_.gauge("shmem.statics.objects", -1)
      .set(static_cast<std::int64_t>(statics_.object_count()));
}

void Runtime::check_symmetric_arg(int pe, std::uint64_t value,
                                  const char* what) {
  symmetry_slots_[static_cast<std::size_t>(pe)] = value;
  device_.host_sync();
  bool mismatch = false;
  for (const std::uint64_t v : symmetry_slots_) {
    if (v != symmetry_slots_[0]) mismatch = true;
  }
  device_.host_sync();  // everyone read before slots are reused
  if (mismatch) {
    throw std::logic_error(
        std::string("symmetric-allocation mismatch in ") + what +
        ": PEs passed different arguments (paper SIV-A requires identical "
        "calls on every PE)");
  }
}

void run_spmd(const DeviceConfig& cfg, int npes,
              const std::function<void(Context&)>& fn, RuntimeOptions opts) {
  Runtime rt(cfg, opts);
  rt.run(npes, fn);
}

}  // namespace tshmem
