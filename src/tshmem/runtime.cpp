#include "tshmem/runtime.hpp"

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <string_view>

#include "sim/flight_hook.hpp"
#include "tshmem/context.hpp"
#include "util/error.hpp"

namespace tshmem {

namespace {
thread_local Context* g_current_context = nullptr;

std::size_t align_up(std::size_t v, std::size_t a) {
  return (v + a - 1) & ~(a - 1);
}

bool bool_env(const char* name, bool fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const std::string_view s(v);
  return !(s.empty() || s == "0" || s == "false" || s == "off");
}

bool metrics_env_enabled(bool fallback) {
  return bool_env("TSHMEM_METRICS", fallback);
}

int int_env(const char* name, int fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoi(v);
}

long long ll_env(const char* name, long long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  return std::atoll(v);
}

std::string str_env(const char* name, const std::string& fallback) {
  const char* v = std::getenv(name);
  return v == nullptr ? fallback : std::string(v);
}

tilesim::FaultPlan fault_plan_env(const tilesim::FaultPlan& fallback) {
  const char* v = std::getenv("TSHMEM_FAULT_PLAN");
  if (v == nullptr) return fallback;
  return tilesim::FaultPlan::parse(v);
}

analysis::RaceMode racecheck_env(analysis::RaceMode fallback) {
  const char* v = std::getenv("TSHMEM_RACECHECK");
  if (v == nullptr) return fallback;
  const std::string_view s(v);
  if (s.empty() || s == "0" || s == "false" || s == "off") {
    return analysis::RaceMode::kOff;
  }
  if (s == "2" || s == "fail") return analysis::RaceMode::kFail;
  return analysis::RaceMode::kReport;
}
}  // namespace

StaticRegistry::StaticRegistry(std::size_t arena_bytes)
    : arena_bytes_(arena_bytes) {}

StaticRegistry::Entry StaticRegistry::reserve(const std::string& name,
                                              std::size_t bytes,
                                              std::size_t alignment) {
  if (bytes == 0) throw std::invalid_argument("static object of zero bytes");
  if (alignment == 0 || (alignment & (alignment - 1)) != 0) {
    throw std::invalid_argument("static object alignment must be power of 2");
  }
  std::scoped_lock lk(mu_);
  if (const auto it = entries_.find(name); it != entries_.end()) {
    if (it->second.bytes != bytes) {
      throw std::invalid_argument("static symmetric object '" + name +
                                  "' re-registered with a different size");
    }
    return it->second;
  }
  const std::size_t offset = align_up(next_offset_, alignment);
  if (offset + bytes > arena_bytes_) {
    throw std::runtime_error("static symmetric arena exhausted");
  }
  next_offset_ = offset + bytes;
  const Entry e{offset, bytes};
  entries_.emplace(name, e);
  return e;
}

std::size_t StaticRegistry::bytes_used() const {
  std::scoped_lock lk(mu_);
  return next_offset_;
}

std::size_t StaticRegistry::object_count() const {
  std::scoped_lock lk(mu_);
  return entries_.size();
}

Runtime::Runtime(const DeviceConfig& cfg, RuntimeOptions opts)
    : opts_(opts),
      device_(cfg),
      // Size the arena for the largest possible job plus collective bounce
      // buffers and user tmc allocations.
      cmem_(static_cast<std::size_t>(cfg.tile_count()) * opts.heap_per_pe +
            (std::size_t{64} << 20)),
      udn_(device_),
      intc_(device_),
      statics_(opts.private_per_pe) {
  if (opts.heap_per_pe < (std::size_t{1} << 16)) {
    throw std::invalid_argument("heap_per_pe too small");
  }
  metrics_enabled_ = metrics_env_enabled(opts.metrics);
  if (metrics_enabled_) {
    // The analytic MemModel is the timing hot path; the cache probes only
    // mirror the access stream to produce hit/miss counts for the scrape.
    device_.enable_cache_probes();
  }

  profile_enabled_ = bool_env("TSHMEM_PROFILE", opts.profile);
  if (profile_enabled_) {
    profiler_ = std::make_unique<obs::Profiler>(device_);
    device_.attach_profiler(profiler_.get());
  }

  // Flight recorder / time series (docs/OBSERVABILITY.md). A window width
  // or a blackbox path implies the recorder: the aggregator is fed by the
  // recorder's tap, and a post-mortem dump needs rings to dump.
  flightrec_enabled_ = bool_env("TSHMEM_FLIGHTREC", opts.flightrec);
  long long ts_window = ll_env(
      "TSHMEM_TIMESERIES_WINDOW_PS",
      static_cast<long long>(opts.timeseries_window_ps));
  if (ts_window < 0) ts_window = 0;
  timeseries_window_ps_ = static_cast<ps_t>(ts_window);
  blackbox_path_ = str_env("TSHMEM_BLACKBOX", opts.blackbox_path);
  if (timeseries_window_ps_ > 0 || !blackbox_path_.empty()) {
    flightrec_enabled_ = true;
  }
  if (flightrec_enabled_) {
    flightrec_ = std::make_unique<obs::FlightRecorder>(
        device_, opts.flightrec_capacity);
    if (timeseries_window_ps_ > 0) {
      timeseries_ = std::make_unique<obs::TimeSeries>(timeseries_window_ps_);
      flightrec_->set_tap(timeseries_.get());
    }
    device_.attach_flight(flightrec_.get());
  }

  debug_validation_ = bool_env("TSHMEM_DEBUG", opts.debug_validation);

  // Fault injection: only a non-empty effective plan attaches an engine,
  // so the default configuration keeps every hardened fast path zero-cost.
  const tilesim::FaultPlan plan = fault_plan_env(opts.fault_plan);
  if (!plan.empty()) {
    fault_engine_ = std::make_unique<tilesim::FaultEngine>(plan);
    device_.attach_fault(fault_engine_.get());
    cmem_.set_map_fault_hook(
        [this](const std::string&, int creator_tile) {
          return fault_engine_->cmem_map_fails(
              creator_tile,
              creator_tile >= 0 && creator_tile < device_.tile_count()
                  ? device_.tile(creator_tile).clock().now()
                  : 0);
        });
  }

  racecheck_mode_ = racecheck_env(opts.racecheck);
  racecheck_granule_ = static_cast<std::size_t>(
      int_env("TSHMEM_RACECHECK_GRANULE",
              static_cast<int>(opts.racecheck_granule)));

  const int wd_ms = int_env("TSHMEM_WATCHDOG_MS", opts.watchdog_ms);
  if (wd_ms > 0) {
    watchdog_.timeout = std::chrono::milliseconds(wd_ms);
    watchdog_.on_timeout = [this, wd_ms](int tile, const char* what) {
      // Stamp the trigger into the dying PE's ring before throwing, so the
      // blackbox dump and tools/triage.py can name the stalled op directly.
      tilesim::flight_event(device_, tile, tilesim::FlightKind::kError, what,
                            device_.tile(tile).clock().now(), -1, 0,
                            static_cast<int>(Errc::kWatchdogTimeout));
      throw Error(Errc::kWatchdogTimeout,
                  "PE " + std::to_string(tile) + " stuck in '" + what +
                      "' for over " + std::to_string(wd_ms) + " ms\n" +
                      watchdog_report());
    };
    device_.attach_watchdog(&watchdog_);
  }
}

Runtime::~Runtime() = default;

Context* Runtime::current() noexcept { return g_current_context; }

std::byte* Runtime::partition_base(int pe) const {
  if (pe < 0 || pe >= npes_ || partitions_ == nullptr) {
    throw std::out_of_range("partition_base: PE out of range or not running");
  }
  return partitions_ + static_cast<std::size_t>(pe) * opts_.heap_per_pe;
}

std::byte* Runtime::private_base(int pe) const {
  if (pe < 0 || pe >= npes_) {
    throw std::out_of_range("private_base: PE out of range");
  }
  return private_arenas_[static_cast<std::size_t>(pe)]->data();
}

Context& Runtime::context(int pe) const {
  if (pe < 0 || pe >= npes_) {
    throw std::out_of_range("context: PE out of range");
  }
  return *contexts_[static_cast<std::size_t>(pe)];
}

void Runtime::note_delivery(int pe, ps_t completion) {
  auto& slot = *delivery_[static_cast<std::size_t>(pe)];
  ps_t cur = slot.load(std::memory_order_acquire);
  while (cur < completion &&
         !slot.compare_exchange_weak(cur, completion,
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire)) {
  }
}

ps_t Runtime::last_delivery(int pe) const {
  return delivery_[static_cast<std::size_t>(pe)]->load(
      std::memory_order_acquire);
}

void* Runtime::map_with_retry(const std::string& name, std::size_t bytes,
                              tilesim::Homing homing, int tile) {
  // Bounded retry against injected common-memory map failures: transient
  // map faults are recovered (counted in recovery.cmem.map_retries);
  // persistent ones surface the structured kCmemMapFailed error.
  constexpr int kMaxMapRetries = 4;
  for (int attempt = 0;; ++attempt) {
    try {
      return cmem_.map(name, bytes, homing, tile);
    } catch (const Error& e) {
      if (e.code() != Errc::kCmemMapFailed || attempt >= kMaxMapRetries) {
        throw;
      }
      if (metrics_enabled_) {
        obs::add_count(registry_, "recovery.cmem.map_retries", tile, 1);
      }
    }
  }
}

void* Runtime::alloc_bounce(std::size_t bytes, int tile) {
  // Persistent per-PE bounce slot, grown geometrically and unmapped only at
  // teardown. Placement and the cmem map/unmap/peak statistics therefore
  // depend on each PE's own request sequence alone — never on how the host
  // interleaves PEs — which keeps metrics snapshots bit-identical across
  // replays (docs/ROBUSTNESS.md). Only PE `tile`'s thread uses its slot,
  // so no lock is needed.
  if (tile < 0 || tile >= static_cast<int>(bounce_slots_.size())) {
    throw std::invalid_argument("alloc_bounce outside a running job");
  }
  void*& slot = bounce_slots_[static_cast<std::size_t>(tile)];
  std::size_t& cap = bounce_slot_bytes_[static_cast<std::size_t>(tile)];
  if (slot == nullptr || cap < bytes) {
    std::size_t want = cap == 0 ? std::size_t{4096} : cap;
    while (want < bytes) want *= 2;
    const std::string name = "tshmem_bounce_pe" + std::to_string(tile);
    if (slot != nullptr) {
      cmem_.unmap(name);
      slot = nullptr;
      cap = 0;
    }
    slot = map_with_retry(name, want, tilesim::Homing::kHashForHome, tile);
    cap = want;
  }
  return slot;
}

void Runtime::free_bounce(void*) {
  // Slots persist for reuse (see alloc_bounce); teardown_job unmaps them.
}

tmc::SpinBarrier& Runtime::spin_barrier_for(const ActiveSet& as) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(as.pe_start) << 40) |
      (static_cast<std::uint64_t>(as.log_pe_stride) << 32) |
      static_cast<std::uint64_t>(as.pe_size);
  std::scoped_lock lk(spin_mu_);
  auto it = spin_barriers_.find(key);
  if (it == spin_barriers_.end()) {
    it = spin_barriers_
             .emplace(key,
                      std::make_unique<tmc::SpinBarrier>(device_, as.pe_size))
             .first;
  }
  return *it->second;
}

void Runtime::note_op(int pe, const char* op) noexcept {
  if (pe < 0 || static_cast<std::size_t>(pe) >= pe_states_.size()) return;
  PeState& st = *pe_states_[static_cast<std::size_t>(pe)];
  st.op.store(op, std::memory_order_relaxed);
  st.op_seq.fetch_add(1, std::memory_order_relaxed);
}

void Runtime::note_lock_delta(int pe, int delta) noexcept {
  if (pe < 0 || static_cast<std::size_t>(pe) >= pe_states_.size()) return;
  pe_states_[static_cast<std::size_t>(pe)]->held_locks.fetch_add(
      delta, std::memory_order_relaxed);
}

std::string Runtime::watchdog_report() const {
  std::ostringstream os;
  os << "per-PE diagnostic snapshot (" << npes_ << " PE(s)):";
  for (int pe = 0; pe < npes_ && static_cast<std::size_t>(pe) <
                                     pe_states_.size();
       ++pe) {
    const PeState& st = *pe_states_[static_cast<std::size_t>(pe)];
    const Tile& tile = device_.tile(pe);
    os << "\n  PE " << pe
       << ": op=" << st.op.load(std::memory_order_relaxed)
       << " ops=" << st.op_seq.load(std::memory_order_relaxed)
       << " vt_ps=" << tile.clock().now()
       << " held_locks=" << st.held_locks.load(std::memory_order_relaxed)
       << " nbi_pending=" << tile.dma().pending() << " udn_words=[";
    for (int q = 0; q < device_.config().udn_demux_queues; ++q) {
      if (q != 0) os << ' ';
      os << udn_.queued_words(pe, q);
    }
    os << ']';
  }
  return os.str();
}

void Runtime::setup_job(int npes) {
  npes_ = npes;
  last_npes_ = npes;
  partitions_ = static_cast<std::byte*>(
      map_with_retry("tshmem_partitions",
                     static_cast<std::size_t>(npes) * opts_.heap_per_pe,
                     opts_.partition_homing, /*creator_tile=*/0));
  private_arenas_.clear();
  contexts_.clear();
  delivery_.clear();
  symmetry_slots_.assign(static_cast<std::size_t>(npes), 0);
  for (int pe = 0; pe < npes; ++pe) {
    private_arenas_.push_back(
        std::make_unique<std::vector<std::byte>>(opts_.private_per_pe));
    delivery_.push_back(std::make_unique<std::atomic<ps_t>>(0));
  }
  pe_states_.clear();
  for (int pe = 0; pe < npes; ++pe) {
    pe_states_.push_back(std::make_unique<PeState>());
  }
  bounce_slots_.assign(static_cast<std::size_t>(npes), nullptr);
  bounce_slot_bytes_.assign(static_cast<std::size_t>(npes), 0);
  for (int pe = 0; pe < npes; ++pe) {
    contexts_.push_back(std::make_unique<Context>(
        *this, pe, device_.tile(pe), partition_base(pe), opts_.heap_per_pe,
        private_arenas_[static_cast<std::size_t>(pe)]->data(),
        opts_.private_per_pe));
    if (fault_engine_ != nullptr && fault_engine_->heap_cap_bytes() != 0) {
      contexts_.back()->heap().set_alloc_cap(fault_engine_->heap_cap_bytes());
    }
  }
  if (racecheck_mode_ != analysis::RaceMode::kOff) {
    analysis::RaceDetector::Options ropts;
    ropts.granule = racecheck_granule_;
    race_detector_ = std::make_unique<analysis::RaceDetector>(npes, ropts);
    for (int pe = 0; pe < npes; ++pe) {
      race_detector_->add_region(pe, /*is_static=*/false, partition_base(pe),
                                 opts_.heap_per_pe);
      race_detector_->add_region(pe, /*is_static=*/true, private_base(pe),
                                 opts_.private_per_pe);
    }
    device_.attach_sync_observer(race_detector_.get());
    for (auto& ctx : contexts_) {
      ctx->race_ = race_detector_.get();
    }
  }
  if (timeseries_ != nullptr) {
    for (auto& ctx : contexts_) {
      ctx->ts_ = timeseries_.get();
    }
  }
}

void Runtime::teardown_job() {
  if (race_detector_ != nullptr) {
    // Harvest before the per-run detector dies; reports accumulate across
    // run() calls until clear_race_reports().
    auto found = race_detector_->reports();
    race_reports_.insert(race_reports_.end(),
                         std::make_move_iterator(found.begin()),
                         std::make_move_iterator(found.end()));
    device_.attach_sync_observer(nullptr);
    race_detector_.reset();
  }
  contexts_.clear();
  private_arenas_.clear();
  delivery_.clear();
  for (std::size_t pe = 0; pe < bounce_slots_.size(); ++pe) {
    if (bounce_slots_[pe] != nullptr) {
      cmem_.unmap("tshmem_bounce_pe" + std::to_string(pe));
    }
  }
  bounce_slots_.clear();
  bounce_slot_bytes_.clear();
  {
    std::scoped_lock lk(spin_mu_);
    spin_barriers_.clear();
  }
  cmem_.unmap("tshmem_partitions");
  partitions_ = nullptr;
  npes_ = 0;
}

void Runtime::run(int npes, const std::function<void(Context&)>& fn) {
  if (npes < 1 || npes > device_.tile_count()) {
    throw std::invalid_argument("npes must be in [1, tile_count]");
  }
  if (running_.exchange(true, std::memory_order_acq_rel)) {
    throw Error(Errc::kRunInProgress,
                "Runtime::run called while another job is already running on "
                "this runtime (one job at a time; see docs/ROBUSTNESS.md)");
  }
  const std::size_t reports_before = race_reports_.size();
  try {
    setup_job(npes);
  } catch (...) {
    running_.store(false, std::memory_order_release);
    throw;
  }
  try {
    device_.run(npes, [this, &fn](Tile& tile) {
      Context& ctx = *contexts_[static_cast<std::size_t>(tile.id())];
      g_current_context = &ctx;
      try {
        fn(ctx);
      } catch (...) {
        g_current_context = nullptr;
        throw;
      }
      g_current_context = nullptr;
    });
  } catch (const Error& e) {
    // Post-mortem before teardown: the diagnostic board and per-PE rings
    // still describe the dying job here.
    maybe_dump_blackbox(e.what(), static_cast<int>(e.code()));
    teardown_job();
    running_.store(false, std::memory_order_release);
    throw;
  } catch (const std::exception& e) {
    maybe_dump_blackbox(e.what(), 0);
    teardown_job();
    running_.store(false, std::memory_order_release);
    throw;
  } catch (...) {
    maybe_dump_blackbox("unknown exception", 0);
    teardown_job();
    running_.store(false, std::memory_order_release);
    throw;
  }
  scrape_run_stats();
  teardown_job();
  running_.store(false, std::memory_order_release);
  if (racecheck_mode_ == analysis::RaceMode::kFail &&
      race_reports_.size() > reports_before) {
    const std::size_t found = race_reports_.size() - reports_before;
    std::ostringstream os;
    os << "tshmem-check found " << found << " data race(s) (TSHMEM_RACECHECK="
       << "fail; docs/ANALYSIS.md):";
    for (std::size_t i = reports_before; i < race_reports_.size(); ++i) {
      os << "\n  " << race_reports_[i].describe();
    }
    throw Error(Errc::kRaceDetected, os.str());
  }
}

obs::MetricsSnapshot Runtime::metrics() const {
  return registry_.snapshot(config().short_name, last_npes_);
}

bool Runtime::write_blackbox(std::ostream& os, const std::string& reason,
                             int errc) {
  if (flightrec_ == nullptr) return false;
  obs::BlackboxInfo info;
  info.reason = reason;
  info.errc = errc;
  info.errc_name = errc != 0 ? errc_name(static_cast<Errc>(errc)) : "";
  info.board = watchdog_report();
  if (fault_engine_ != nullptr) {
    info.fault_plan = fault_engine_->plan().describe();
  }
  info.source = "runtime";
  obs::write_blackbox_json(os, *flightrec_, info);
  return true;
}

void Runtime::maybe_dump_blackbox(const std::string& reason, int errc) {
  if (flightrec_ == nullptr || blackbox_path_.empty()) return;
  std::ofstream os(blackbox_path_);
  if (!os) return;  // an unwritable dump path must not mask the real error
  write_blackbox(os, reason, errc);
}

void Runtime::scrape_run_stats() {
  if (!metrics_enabled_) return;
  const auto tiles = static_cast<std::size_t>(device_.tile_count());
  if (scraped_udn_.size() != tiles) {
    scraped_udn_.assign(tiles, {});
    scraped_cache_.assign(tiles, {});
  }
  auto delta = [](std::uint64_t cur, std::uint64_t& prev) {
    const std::uint64_t d = cur - prev;
    prev = cur;
    return d;
  };
  for (int pe = 0; pe < npes_; ++pe) {
    const Tile& tile = device_.tile(pe);
    // busy/idle cover the interval since the last clock reset — with
    // harness_sync_reset() benches, the final measured phase.
    obs::add_count(registry_, "sim.tile.busy_ps", pe, tile.clock().busy_ps());
    obs::add_count(registry_, "sim.tile.idle_ps", pe, tile.clock().idle_ps());

    const auto traffic = udn_.traffic(pe);
    auto& up = scraped_udn_[static_cast<std::size_t>(pe)];
    obs::add_count(registry_, "udn.packets", pe,
                   delta(traffic.packets, up.packets));
    obs::add_count(registry_, "udn.words", pe, delta(traffic.words, up.words));
    obs::add_count(registry_, "udn.hops", pe, delta(traffic.hops, up.hops));
    if (fault_engine_ != nullptr) {
      obs::add_count(registry_, "recovery.udn.retries", pe,
                     delta(traffic.retries, up.retries));
      obs::add_count(registry_, "recovery.udn.backoff_ps", pe,
                     delta(traffic.backoff_ps, up.backoff_ps));
    } else {
      up.retries = traffic.retries;
      up.backoff_ps = traffic.backoff_ps;
    }

    if (const tilesim::CacheSim* probe = tile.cache_probe();
        probe != nullptr) {
      const tilesim::AccessCounts& c = probe->counts();
      auto& cp = scraped_cache_[static_cast<std::size_t>(pe)];
      obs::add_count(registry_, "cache.l1_hits", pe, delta(c.l1, cp.l1));
      obs::add_count(registry_, "cache.l2_hits", pe, delta(c.l2, cp.l2));
      obs::add_count(registry_, "cache.ddc_hits", pe, delta(c.ddc, cp.ddc));
      obs::add_count(registry_, "cache.dram_accesses", pe,
                     delta(c.dram, cp.dram));
    }

    Context& ctx = *contexts_[static_cast<std::size_t>(pe)];
    obs::set_level(registry_, "shmem.heap.bytes_in_use", pe,
                   static_cast<std::int64_t>(ctx.heap().bytes_in_use()));
    obs::set_level(registry_, "shmem.heap.blocks", pe,
                   static_cast<std::int64_t>(ctx.heap().block_count()));

    // DMA engines are cleared at every Device::run entry, so their stats
    // are already this run's values (peak depth covers the last phase when
    // benches reset clocks mid-run).
    const tilesim::DmaStats dma = tile.dma().stats();
    obs::set_level(registry_, "sim.dma.peak_pending", pe,
                   static_cast<std::int64_t>(dma.peak_pending));
  }

  // Device-wide aggregates use pe = -1.
  const tmc::CommonMemory::Stats cs = cmem_.stats();
  obs::add_count(registry_, "tmc.cmem.maps", -1,
                 delta(cs.maps, scraped_cmem_.maps));
  obs::add_count(registry_, "tmc.cmem.unmaps", -1,
                 delta(cs.unmaps, scraped_cmem_.unmaps));
  obs::set_level(registry_, "tmc.cmem.peak_bytes", -1,
                 static_cast<std::int64_t>(cs.peak_bytes));

  // Spin barriers are per-run objects (cleared in teardown), so their wait
  // totals are already this run's delta.
  std::uint64_t spins = 0;
  {
    std::scoped_lock lk(spin_mu_);
    for (const auto& [key, barrier] : spin_barriers_) {
      spins += barrier->waits();
    }
  }
  obs::add_count(registry_, "tmc.barrier.spin_waits", -1, spins);

  obs::set_level(registry_, "shmem.statics.bytes_used", -1,
                 static_cast<std::int64_t>(statics_.bytes_used()));
  obs::set_level(registry_, "shmem.statics.objects", -1,
                 static_cast<std::int64_t>(statics_.object_count()));

  // tshmem-check accounting (docs/ANALYSIS.md). The detector is per-run,
  // so its stats are already this run's values.
  if (race_detector_ != nullptr) {
    const analysis::RaceDetector::Stats rs = race_detector_->stats();
    obs::add_count(registry_, "analysis.accesses.checked", -1,
                   rs.checked_accesses);
    obs::add_count(registry_, "analysis.sync.edges", -1, rs.sync_edges);
    obs::add_count(registry_, "analysis.races.reported", -1, rs.race_pairs);
    obs::add_count(registry_, "analysis.races.dropped", -1,
                   rs.dropped_reports);
  }

  // Injected-fault families: one counter per (site, tile) that fired. The
  // engine log is cumulative across runs, so scrape deltas per key.
  if (fault_engine_ != nullptr) {
    std::map<std::pair<int, int>, std::uint64_t> counts;
    for (const tilesim::FaultEvent& ev : fault_engine_->events()) {
      ++counts[{static_cast<int>(ev.site), ev.tile}];
    }
    for (const auto& [key, cur] : counts) {
      std::uint64_t& prev = scraped_fault_[key];
      if (cur > prev) {
        obs::add_count(registry_,
                       std::string("fault.") +
                           tilesim::fault_site_name(
                               static_cast<tilesim::FaultSite>(key.first)),
                       key.second, cur - prev);
        prev = cur;
      }
    }
  }
}

void Runtime::check_symmetric_arg(int pe, std::uint64_t value,
                                  const char* what) {
  symmetry_slots_[static_cast<std::size_t>(pe)] = value;
  device_.host_sync();
  bool mismatch = false;
  for (const std::uint64_t v : symmetry_slots_) {
    if (v != symmetry_slots_[0]) mismatch = true;
  }
  device_.host_sync();  // everyone read before slots are reused
  if (mismatch) {
    throw std::logic_error(
        std::string("symmetric-allocation mismatch in ") + what +
        ": PEs passed different arguments (paper SIV-A requires identical "
        "calls on every PE)");
  }
}

void run_spmd(const DeviceConfig& cfg, int npes,
              const std::function<void(Context&)>& fn, RuntimeOptions opts) {
  Runtime rt(cfg, opts);
  rt.run(npes, fn);
}

}  // namespace tshmem
