// Symmetric-heap allocator (paper §IV-A).
//
// TSHMEM manages each PE's symmetric partition with a doubly-linked list of
// segment headers embedded in the partition itself — the classic boundary-
// tag allocator. Symmetry across PEs is implicit: shmalloc() is collective
// and every PE performs the identical allocation sequence, so a block's
// offset from the partition base is the same on every PE.
#pragma once

#include <cstddef>
#include <cstdint>

namespace tshmem {

class SymHeap {
 public:
  /// Manages `bytes` of memory at `base`. The region must stay alive for
  /// the heap's lifetime; headers are stored in-band.
  SymHeap(std::byte* base, std::size_t bytes);

  SymHeap(const SymHeap&) = delete;
  SymHeap& operator=(const SymHeap&) = delete;

  /// First-fit allocation; returns nullptr when no block fits (matching
  /// shmalloc's null-on-failure contract). Payload is 16-byte aligned.
  [[nodiscard]] void* alloc(std::size_t bytes);

  /// Aligned allocation (shmemalign). `alignment` must be a power of two
  /// and at least 16.
  [[nodiscard]] void* memalign(std::size_t alignment, std::size_t bytes);

  /// Frees a block previously returned by alloc/memalign/realloc; nullptr
  /// is a no-op. Coalesces with free neighbors. Throws std::invalid_argument
  /// for pointers this heap does not own.
  void free(void* p);

  /// shrealloc semantics: grow/shrink preserving contents; nullptr acts as
  /// alloc, size 0 acts as free (returning nullptr).
  [[nodiscard]] void* realloc(void* p, std::size_t bytes);

  // --- introspection (tests, diagnostics) ---------------------------------
  [[nodiscard]] std::size_t bytes_in_use() const noexcept;
  [[nodiscard]] std::size_t bytes_free() const noexcept;
  [[nodiscard]] std::size_t block_count() const noexcept;
  [[nodiscard]] std::size_t largest_free_block() const noexcept;
  [[nodiscard]] bool owns(const void* p) const noexcept;
  [[nodiscard]] std::size_t allocation_size(const void* p) const;

  /// Walks the block list verifying every invariant (link symmetry, size
  /// accounting, no adjacent free blocks). Returns true when consistent.
  [[nodiscard]] bool validate() const noexcept;

  /// Heap-pressure cap (fault injection): allocations that would push
  /// bytes_in_use past the cap are denied. 0 disables the cap. The cap
  /// check is a deterministic threshold, identical on every PE, so denial
  /// stays symmetric across a collective shmalloc.
  void set_alloc_cap(std::size_t cap_bytes) noexcept { cap_bytes_ = cap_bytes; }
  [[nodiscard]] std::size_t alloc_cap() const noexcept { return cap_bytes_; }
  [[nodiscard]] bool cap_would_deny(std::size_t bytes) const noexcept;

  /// True when [p, p+bytes) lies entirely within one live allocation
  /// (debug-mode out-of-bounds transfer validation).
  [[nodiscard]] bool contains_range(const void* p,
                                    std::size_t bytes) const noexcept;

  [[nodiscard]] std::byte* base() const noexcept { return base_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

 private:
  struct Block {
    std::size_t size;  ///< payload bytes (excluding the header)
    Block* prev;
    Block* next;
    bool free;
    std::uint32_t magic;  ///< corruption canary
  };

  static constexpr std::uint32_t kMagic = 0x7355e3au;
  static constexpr std::size_t kAlign = 16;

  std::byte* base_;
  std::size_t capacity_;
  Block* head_;
  std::size_t cap_bytes_ = 0;

  [[nodiscard]] static std::size_t align_up(std::size_t v) noexcept {
    return (v + kAlign - 1) & ~(kAlign - 1);
  }
  [[nodiscard]] Block* block_of(void* p) const;
  [[nodiscard]] static void* payload_of(Block* b) noexcept {
    return reinterpret_cast<std::byte*>(b) + sizeof(Block);
  }
  void split(Block* b, std::size_t payload);
  void coalesce(Block* b);
};

}  // namespace tshmem
