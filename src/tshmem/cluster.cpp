#include "tshmem/cluster.hpp"

#include <array>
#include <atomic>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace tshmem {

namespace {

// Classification tags for the leader-protocol packets. Each traffic class
// gets its OWN notification ring: recv() is FIFO-any-tag within a ring, and
// packets from different senders have no cross-device ordering guarantee —
// on one ring, a fast leader's broadcast data can overtake another leader's
// still-unsent barrier release and be consumed as it (observed as a rare
// ThreeDeviceBroadcastFromMiddleDevice failure under host load).
constexpr std::uint32_t kTagBarrier = 0x7001;
constexpr std::uint32_t kTagBarrierRelease = 0x7002;
constexpr std::uint32_t kTagBcastData = 0x7003;
constexpr int kBarrierRing = 0;  ///< gather tokens at device 0's leader
constexpr int kReleaseRing = 1;  ///< device 0's releases to other leaders
constexpr int kBcastRing = 2;    ///< broadcast data chunks

}  // namespace

Cluster::Cluster(const DeviceConfig& cfg, ClusterOptions opts,
                 int num_devices)
    : opts_(opts), num_devices_(num_devices) {
  if (!cfg.has_mpipe) {
    throw std::invalid_argument(
        "cluster expansion requires mPIPE (TILE-Gx only, paper SVI)");
  }
  if (num_devices < 2) {
    throw std::invalid_argument("a cluster needs at least two devices");
  }
  for (int d = 0; d < num_devices_; ++d) {
    runtimes_.push_back(std::make_unique<Runtime>(cfg, opts_.runtime));
    engines_.push_back(std::make_unique<tmc::MpipeEngine>(
        runtimes_.back()->device(), d, opts_.mpipe));
    engines_.back()->add_rule(kTagBarrier, kBarrierRing);
    engines_.back()->add_rule(kTagBarrierRelease, kReleaseRing);
    engines_.back()->add_rule(kTagBcastData, kBcastRing);
  }
  // Full mesh: one link per device pair.
  for (int a = 0; a < num_devices_; ++a) {
    for (int b = a + 1; b < num_devices_; ++b) {
      links_.push_back(std::make_unique<tmc::MpipeLink>(
          *engines_[static_cast<std::size_t>(a)],
          *engines_[static_cast<std::size_t>(b)]));
    }
  }
}

Cluster::~Cluster() = default;

Runtime& Cluster::runtime(int device) {
  if (device < 0 || device >= num_devices_) {
    throw std::out_of_range("cluster device index");
  }
  return *runtimes_[static_cast<std::size_t>(device)];
}

tmc::MpipeEngine& Cluster::mpipe(int device) {
  if (device < 0 || device >= num_devices_) {
    throw std::out_of_range("cluster device index");
  }
  return *engines_[static_cast<std::size_t>(device)];
}

void Cluster::run_shard(int device, int pes,
                        const std::function<void(Context&)>& fn) {
  runtime(device).run(pes, fn);
}

void Cluster::run(int pes_per_device,
                  const std::function<void(ClusterContext&)>& fn) {
  pes_per_dev_ = pes_per_device;
  std::latch started(num_devices_);
  std::latch finished(num_devices_ * pes_per_device);
  // Per-device bookkeeping so a throwing device can release exactly the
  // latch counts it still owes (count_down past zero is undefined).
  std::vector<std::atomic<bool>> started_counted(
      static_cast<std::size_t>(num_devices_));
  std::vector<std::atomic<int>> finish_counted(
      static_cast<std::size_t>(num_devices_));
  std::exception_ptr first_error;
  std::mutex error_mu;

  std::vector<std::thread> device_threads;
  device_threads.reserve(static_cast<std::size_t>(num_devices_));
  for (int d = 0; d < num_devices_; ++d) {
    device_threads.emplace_back([&, d] {
      try {
        runtimes_[static_cast<std::size_t>(d)]->run(
            pes_per_device, [&, d](Context& ctx) {
              // All devices' partitions must exist before any PE touches a
              // remote one.
              if (ctx.my_pe() == 0 && !started_counted[d].exchange(true)) {
                started.count_down();
              }
              started.wait();
              ClusterContext cctx(*this, d, ctx);
              // A throwing PE must still settle the finished latch before
              // unwinding, or its sibling PEs (and the other device) would
              // block in finished.wait() forever.
              auto settle = [&] {
                finish_counted[d].fetch_add(1);
                finished.count_down();
              };
              try {
                fn(cctx);
              } catch (...) {
                settle();
                throw;
              }
              // Hold partitions alive until every PE cluster-wide is done
              // issuing cross-device operations.
              settle();
              finished.wait();
            });
      } catch (...) {
        {
          std::scoped_lock lk(error_mu);
          if (!first_error) first_error = std::current_exception();
        }
        // Unblock peers waiting on the latches.
        if (!started_counted[d].exchange(true)) started.count_down();
        const int owed = pes_per_device - finish_counted[d].load();
        for (int i = 0; i < owed; ++i) finished.count_down();
      }
    });
  }
  for (auto& t : device_threads) t.join();
  pes_per_dev_ = 0;
  if (first_error) std::rethrow_exception(first_error);
}

ClusterContext::ClusterContext(Cluster& cluster, int device_index,
                               Context& local)
    : cluster_(&cluster), device_(device_index), local_(&local) {}

void* ClusterContext::cross_device_addr(const void* my_sym,
                                        int global_pe) const {
  if (local_->classify(my_sym) != AddrClass::kDynamic) {
    throw std::invalid_argument(
        "cross-device transfers require dynamic symmetric objects (the "
        "mPIPE eDMA addresses shared memory only)");
  }
  Runtime& remote_rt = cluster_->runtime(device_of(global_pe));
  const auto* b = static_cast<const std::byte*>(my_sym);
  const std::size_t offset = static_cast<std::size_t>(
      b - static_cast<const std::byte*>(
              local_->runtime().partition_base(local_->my_pe())));
  return remote_rt.partition_base(local_pe_of(global_pe)) + offset;
}

void ClusterContext::put(void* target, const void* source, std::size_t bytes,
                         int global_pe) {
  if (global_pe < 0 || global_pe >= global_npes()) {
    throw std::out_of_range("cluster put: global PE out of range");
  }
  if (device_of(global_pe) == device_) {
    local_->put(target, source, bytes, local_pe_of(global_pe));
    return;
  }
  if (bytes == 0) return;
  void* remote = cross_device_addr(target, global_pe);
  tmc::MpipeEngine& engine = cluster_->mpipe(device_);
  // The eDMA streams the payload onto the wire; the iDMA on the remote
  // engine writes it into the (hash-for-home) shared segment. The put
  // completes locally once the last byte is serialized + lands.
  local_->tile().clock().advance(
      local_->runtime().config().shmem_call_overhead_ps);
  std::memcpy(remote, source, bytes);
  local_->tile().clock().advance(engine.one_way_ps(bytes));
  cluster_->runtime(device_of(global_pe))
      .note_delivery(local_pe_of(global_pe),
                     local_->tile().clock().now());
}

void ClusterContext::get(void* target, const void* source, std::size_t bytes,
                         int global_pe) {
  if (global_pe < 0 || global_pe >= global_npes()) {
    throw std::out_of_range("cluster get: global PE out of range");
  }
  if (device_of(global_pe) == device_) {
    local_->get(target, source, bytes, local_pe_of(global_pe));
    return;
  }
  if (bytes == 0) return;
  const void* remote = cross_device_addr(source, global_pe);
  tmc::MpipeEngine& engine = cluster_->mpipe(device_);
  tmc::MpipeEngine& remote_engine = cluster_->mpipe(device_of(global_pe));
  local_->tile().clock().advance(
      local_->runtime().config().shmem_call_overhead_ps);
  std::memcpy(target, remote, bytes);
  // Round trip: a small read request out, the data back.
  local_->tile().clock().advance(engine.one_way_ps(64) +
                                 remote_engine.one_way_ps(bytes));
}

void ClusterContext::barrier_all() {
  const std::uint32_t seq = barrier_seq_++;
  local_->barrier_all();
  if (local_->my_pe() == 0) {
    tmc::MpipeEngine& engine = cluster_->mpipe(device_);
    tmc::MpipePacket token;
    token.l2_tag = kTagBarrier;
    token.flow_hash = seq;
    token.payload.resize(8);
    if (device_ == 0) {
      // Device 0's leader collects every other leader's token, then
      // releases them.
      for (int d = 1; d < cluster_->num_devices(); ++d) {
        (void)engine.recv(local_->tile(), kBarrierRing);
      }
      tmc::MpipePacket release = token;
      release.l2_tag = kTagBarrierRelease;
      for (int d = 1; d < cluster_->num_devices(); ++d) {
        engine.egress(local_->tile(), d, release);
      }
    } else {
      engine.egress(local_->tile(), 0, token);
      (void)engine.recv(local_->tile(), kReleaseRing);
    }
  }
  // Second local barrier propagates the leader's release (and its virtual
  // timestamp) to every PE on the device.
  local_->barrier_all();
}

void ClusterContext::broadcast(void* target, const void* source,
                               std::size_t bytes, int root_global_pe) {
  if (root_global_pe < 0 || root_global_pe >= global_npes()) {
    throw std::out_of_range("cluster broadcast: root out of range");
  }
  const std::uint32_t seq = bcast_seq_++;
  const int root_device = device_of(root_global_pe);
  const std::size_t jumbo = cluster_->mpipe(device_).config().max_packet_bytes;

  if (device_ == root_device) {
    // Local broadcast first so the leader holds the data.
    local_->broadcast(target, source, bytes, local_pe_of(root_global_pe),
                      local_->world(), BcastAlgo::kPull);
    if (local_->my_pe() == 0) {
      const auto* data = static_cast<const std::byte*>(
          local_->my_pe() == local_pe_of(root_global_pe) ? source : target);
      tmc::MpipeEngine& engine = cluster_->mpipe(device_);
      for (int d = 0; d < cluster_->num_devices(); ++d) {
        if (d == device_) continue;
        for (std::size_t off = 0; off < bytes; off += jumbo) {
          const std::size_t len = std::min(jumbo, bytes - off);
          tmc::MpipePacket pkt;
          pkt.l2_tag = kTagBcastData;
          pkt.flow_hash = (static_cast<std::uint64_t>(seq) << 32) | off;
          pkt.payload.assign(data + off, data + off + len);
          engine.egress(local_->tile(), d, pkt);
        }
      }
    }
  } else {
    if (local_->my_pe() == 0) {
      tmc::MpipeEngine& engine = cluster_->mpipe(device_);
      auto* out = static_cast<std::byte*>(target);
      for (std::size_t off = 0; off < bytes; off += jumbo) {
        const tmc::MpipePacket pkt = engine.recv(local_->tile(), kBcastRing);
        const std::size_t len = std::min(jumbo, bytes - off);
        if (pkt.payload.size() != len) {
          throw std::runtime_error("cluster broadcast: chunk size mismatch");
        }
        std::memcpy(out + off, pkt.payload.data(), len);
      }
      local_->quiet();
    }
    // Fan out within the device from the leader.
    local_->broadcast(target, target, bytes, 0, local_->world(),
                      BcastAlgo::kPull);
  }
}

}  // namespace tshmem
