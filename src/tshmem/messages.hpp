// Control-message encoding for TSHMEM's UDN protocol traffic (barrier
// tokens, collective handshakes). Each control message is two UDN words:
//   word0 = [seq:32][set_id:24][tag:8]   word1 = aux payload
#pragma once

#include <cstdint>

namespace tshmem {

enum class MsgTag : std::uint8_t {
  kBarrierWait = 1,
  kBarrierRelease = 2,
  kBarrierAck = 3,      // broadcast-release ablation: per-tile ack
  kBcastReady = 4,      // pull broadcast: root's data is readable
  kBcastDone = 5,       // pull broadcast: member finished its get
  kPushNotify = 6,      // push broadcast: root's put to you completed
  kCollectOffset = 7,   // collect: running offset token
  kCollectPutDone = 8,  // collect/fcollect: member's put into root landed
  kReduceReady = 9,     // reduction: member's source array is stable
  kTreeNotify = 10,     // binomial tree: parent's block is visible
  kAppMsg = 11,         // application-level messages (examples)
};

struct CtrlMsg {
  MsgTag tag = MsgTag::kAppMsg;
  std::uint32_t set_id = 0;  ///< low 24 bits used
  std::uint32_t seq = 0;
  std::uint64_t aux = 0;

  [[nodiscard]] std::uint64_t word0() const noexcept {
    return (static_cast<std::uint64_t>(seq) << 32) |
           ((static_cast<std::uint64_t>(set_id) & 0xffffff) << 8) |
           static_cast<std::uint64_t>(tag);
  }

  static CtrlMsg decode(std::uint64_t w0, std::uint64_t w1) noexcept {
    CtrlMsg m;
    m.tag = static_cast<MsgTag>(w0 & 0xff);
    m.set_id = static_cast<std::uint32_t>((w0 >> 8) & 0xffffff);
    m.seq = static_cast<std::uint32_t>(w0 >> 32);
    m.aux = w1;
    return m;
  }
};

}  // namespace tshmem
