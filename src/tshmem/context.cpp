#include "tshmem/context.hpp"

#include <algorithm>
#include <cstring>

#include "obs/timeseries.hpp"
#include "sim/fault.hpp"
#include "sim/flight_hook.hpp"
#include "sim/mem_model.hpp"
#include "sim/profile_hook.hpp"
#include "tmc/barrier.hpp"
#include "util/error.hpp"

namespace tshmem {

using tilesim::CopyRequest;
using tilesim::MemSpace;

Context::Context(Runtime& rt, int pe, Tile& tile, std::byte* partition,
                 std::size_t partition_bytes, std::byte* private_arena,
                 std::size_t private_bytes)
    : rt_(&rt),
      pe_(pe),
      tile_(&tile),
      partition_base_(partition),
      partition_bytes_(partition_bytes),
      private_base_(private_arena),
      private_bytes_(private_bytes),
      heap_(partition, partition_bytes),
      barrier_algo_(rt.barrier_algo()) {
  if (rt.metrics_enabled()) {
    obs::MetricsRegistry& reg = rt.metrics_registry();
    met_ = std::make_unique<PeMetrics>(PeMetrics{
        obs::counter_handle(reg, "shmem.put.calls", pe),
        obs::counter_handle(reg, "shmem.put.bytes", pe),
        obs::histogram_handle(reg, "shmem.put.latency_ps", pe),
        obs::counter_handle(reg, "shmem.get.calls", pe),
        obs::counter_handle(reg, "shmem.get.bytes", pe),
        obs::histogram_handle(reg, "shmem.get.latency_ps", pe),
        obs::counter_handle(reg, "shmem.barrier.calls", pe),
        obs::histogram_handle(reg, "shmem.barrier.wait_ps", pe),
        obs::counter_handle(reg, "shmem.broadcast.calls", pe),
        obs::counter_handle(reg, "shmem.broadcast.bytes", pe),
        obs::counter_handle(reg, "shmem.collect.calls", pe),
        obs::counter_handle(reg, "shmem.collect.bytes", pe),
        obs::counter_handle(reg, "shmem.reduce.calls", pe),
        obs::counter_handle(reg, "shmem.reduce.bytes", pe),
        obs::histogram_handle(reg, "shmem.collective.wait_ps", pe),
        obs::counter_handle(reg, "shmem.atomic.calls", pe),
        obs::counter_handle(reg, "shmem.lock.ops", pe),
        obs::counter_handle(reg, "shmem.wait.calls", pe),
        obs::histogram_handle(reg, "shmem.wait.latency_ps", pe),
        obs::counter_handle(reg, "shmem.heap.alloc.calls", pe),
        obs::counter_handle(reg, "shmem.heap.free.calls", pe),
        obs::counter_handle(reg, "shmem.interrupt.services", pe),
        obs::counter_handle(reg, "shmem.nbi.issued", pe),
        obs::counter_handle(reg, "shmem.nbi.retired", pe),
        obs::counter_handle(reg, "shmem.nbi.bytes", pe),
        obs::gauge_handle(reg, "shmem.nbi.queue_depth", pe),
        obs::histogram_handle(reg, "shmem.nbi.quiet_wait_ps", pe),
        obs::histogram_handle(reg, "shmem.nbi.overlap_pct", pe),
        obs::counter_handle(reg, "recovery.nbi.sync_fallbacks", pe),
    });
  }
}

// ===========================================================================
// Address classification & translation (paper §IV-B)
// ===========================================================================

AddrClass Context::classify(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  if (b >= partition_base_ && b < partition_base_ + partition_bytes_) {
    return AddrClass::kDynamic;
  }
  if (b >= private_base_ && b < private_base_ + private_bytes_) {
    return AddrClass::kStatic;
  }
  return AddrClass::kOther;
}

void* Context::remote_addr(const void* my_sym, int pe) const {
  if (pe < 0 || pe >= num_pes()) {
    throw std::out_of_range("remote_addr: PE out of range");
  }
  const auto* b = static_cast<const std::byte*>(my_sym);
  switch (classify(my_sym)) {
    case AddrClass::kDynamic: {
      // Offset from my partition base + target partition base (§IV-B1).
      const std::size_t offset =
          static_cast<std::size_t>(b - partition_base_);
      return rt_->partition_base(pe) + offset;
    }
    case AddrClass::kStatic: {
      const std::size_t offset = static_cast<std::size_t>(b - private_base_);
      return rt_->private_base(pe) + offset;
    }
    case AddrClass::kOther:
      throw std::invalid_argument(
          "remote_addr: address is not a symmetric object");
  }
  return nullptr;
}

void* Context::ptr(const void* target, int pe) const {
  if (pe < 0 || pe >= num_pes()) return nullptr;
  // Only dynamic symmetric objects are directly addressable across PEs:
  // static objects live in another process's private memory on hardware.
  if (classify(target) != AddrClass::kDynamic) return nullptr;
  return remote_addr(target, pe);
}

bool Context::pe_accessible(int pe) const noexcept {
  return pe >= 0 && pe < num_pes();
}

bool Context::addr_accessible(const void* addr, int pe) const noexcept {
  if (!pe_accessible(pe)) return false;
  return classify(addr) != AddrClass::kOther;
}

// ===========================================================================
// Symmetric memory (paper §IV-A)
// ===========================================================================

void* Context::shmalloc(std::size_t bytes) {
  // All PEs call with the same size at the same point, keeping the heaps
  // implicitly symmetric; the implicit barrier enforces the rendezvous.
  rt_->note_op(pe_, "shmalloc");
  if (met_) met_->alloc_calls->inc();
  tile_->charge_calls(1);
  if (rt_->options().validate_symmetry) {
    rt_->check_symmetric_arg(pe_, bytes, "shmalloc(size)");
  }
  void* p = heap_.alloc(bytes);
  note_heap_denial(p, bytes);
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kAlloc,
                        "shmalloc", tile_->clock().now(), -1, bytes);
  barrier_all();
  return p;
}

void Context::note_heap_denial(const void* p, std::size_t bytes) {
  // Injected heap pressure (FaultPlan::heap_cap_bytes): the denial itself is
  // the heap's deterministic threshold check — symmetric across PEs — but it
  // must land in the replayable event log and the fault.heap_cap counter.
  if (p != nullptr || bytes == 0) return;
  if (!heap_.cap_would_deny(bytes)) return;
  if (tilesim::FaultEngine* fault = tile_->device().fault();
      fault != nullptr) {
    fault->note_heap_cap_denial(pe_, tile_->clock().now());
  }
}

void Context::shfree(void* p) {
  rt_->note_op(pe_, "shfree");
  if (met_) met_->free_calls->inc();
  tile_->charge_calls(1);
  if (rt_->options().validate_symmetry) {
    const std::uint64_t offset =
        p == nullptr ? ~0ull
                     : static_cast<std::uint64_t>(
                           static_cast<const std::byte*>(p) - partition_base_);
    rt_->check_symmetric_arg(pe_, offset, "shfree(offset)");
  }
  try {
    if (race_ != nullptr && p != nullptr) {
      // Forget shadow state for the block: a recycled allocation must not
      // inherit stale epochs from its previous life.
      race_->on_heap_free(p, heap_.allocation_size(p));
    }
    heap_.free(p);
  } catch (const std::invalid_argument& e) {
    // Foreign or corrupted pointer: surface the structured error instead of
    // the heap's internal exception. No barrier on the error path — peers
    // freeing a valid pointer proceed; the watchdog catches a PE that then
    // waits on this one.
    throw Error(Errc::kForeignFree,
                "shfree on PE " + std::to_string(pe_) + ": " + e.what());
  }
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kFree,
                        "shfree", tile_->clock().now());
  barrier_all();
}

void* Context::shrealloc(void* p, std::size_t bytes) {
  if (met_) met_->alloc_calls->inc();
  tile_->charge_calls(1);
  if (race_ != nullptr && p != nullptr) {
    race_->on_heap_free(p, heap_.allocation_size(p));
  }
  void* out = heap_.realloc(p, bytes);
  barrier_all();
  return out;
}

void* Context::shmemalign(std::size_t alignment, std::size_t bytes) {
  if (met_) met_->alloc_calls->inc();
  tile_->charge_calls(1);
  void* p = heap_.memalign(alignment, bytes);
  note_heap_denial(p, bytes);
  barrier_all();
  return p;
}

// ===========================================================================
// Data movement engine (paper §IV-B)
// ===========================================================================

void Context::do_memcpy_visible(void* dst, const void* src,
                                std::size_t bytes) {
  // Elemental-size stores are made atomic so shmem_wait pollers never see
  // torn values; larger copies use plain memcpy.
  const auto addr = reinterpret_cast<std::uintptr_t>(dst);
  switch (bytes) {
    case 4:
      if (addr % 4 == 0) {
        std::uint32_t v;
        std::memcpy(&v, src, 4);
        std::atomic_ref<std::uint32_t>(*static_cast<std::uint32_t*>(dst))
            .store(v, std::memory_order_release);
        return;
      }
      break;
    case 8:
      if (addr % 8 == 0) {
        std::uint64_t v;
        std::memcpy(&v, src, 8);
        std::atomic_ref<std::uint64_t>(*static_cast<std::uint64_t*>(dst))
            .store(v, std::memory_order_release);
        return;
      }
      break;
    default:
      break;
  }
  std::memcpy(dst, src, bytes);
  std::atomic_thread_fence(std::memory_order_release);
}

void Context::charge_local_copy(std::size_t bytes, MemSpace dst, MemSpace src,
                                CopyHints hints) {
  CopyRequest req;
  req.bytes = bytes;
  req.src = src;
  req.dst = dst;
  req.homing = rt_->options().partition_homing;
  req.concurrent_readers = hints.readers;
  req.concurrent_writers = hints.writers;
  tile_->charge_copy(req);
}

void Context::validate_transfer(const void* target, const void* source,
                                std::size_t bytes, int pe, bool is_put,
                                const char* what) const {
  auto where = [&](const char* detail) {
    return std::string(what) + " on PE " + std::to_string(pe_) + ": " +
           detail;
  };
  if (pe < 0 || pe >= num_pes()) {
    throw Error(Errc::kInvalidPe,
                where("remote PE ") + std::to_string(pe) +
                    " outside [0, " + std::to_string(num_pes()) + ")");
  }
  const void* remote = is_put ? target : source;
  const AddrClass remote_cls = classify(remote);
  if (remote_cls == AddrClass::kOther) {
    throw Error(Errc::kNotSymmetric,
                where(is_put ? "target is not a symmetric object"
                             : "source is not a symmetric object"));
  }
  if (bytes == 0) return;
  const auto* rb = static_cast<const std::byte*>(remote);
  if (remote_cls == AddrClass::kStatic) {
    if (static_cast<std::size_t>(rb - private_base_) + bytes >
        private_bytes_) {
      throw Error(Errc::kOutOfBounds,
                  where("transfer of ") + std::to_string(bytes) +
                      " bytes runs past the static symmetric arena");
    }
  } else if (!heap_.contains_range(remote, bytes)) {
    throw Error(Errc::kOutOfBounds,
                where("transfer of ") + std::to_string(bytes) +
                    " bytes is not contained in one live symmetric-heap "
                    "allocation");
  }
}

void Context::transfer(void* target, const void* source, std::size_t bytes,
                       int pe, bool is_put, CopyHints hints) {
  rt_->note_op(pe_, is_put ? "shmem_put" : "shmem_get");
  if (rt_->debug_validation()) {
    validate_transfer(target, source, bytes, pe, is_put,
                      is_put ? "shmem put" : "shmem get");
  }
  if (pe < 0 || pe >= num_pes()) {
    throw std::out_of_range("put/get: PE out of range");
  }
  obs::ScopedVtTimer vt_metric(
      tile_->clock(),
      met_ ? (is_put ? met_->put_latency_ps : met_->get_latency_ps)
           : nullptr);
  tilesim::ProfSpan prof(*tile_, tilesim::ProfPhase::kDma,
                         is_put ? "shmem_put" : "shmem_get");
  if (met_) {
    (is_put ? met_->put_calls : met_->get_calls)->inc();
    (is_put ? met_->put_bytes : met_->get_bytes)->add(bytes);
  }
  tile_->clock().advance(rt_->config().shmem_call_overhead_ps);
  // One event per call at issue time, regardless of which servicing path
  // (local copy / interrupt / bounce) the transfer takes below.
  tilesim::flight_event(tile_->device(), pe_,
                        is_put ? tilesim::FlightKind::kPut
                               : tilesim::FlightKind::kGet,
                        is_put ? "shmem_put" : "shmem_get",
                        tile_->clock().now(), pe, bytes);
  if (bytes == 0) return;

  // `target` is the destination *on PE pe* for puts / locally for gets;
  // `source` is local for puts / on PE pe for gets. Classification always
  // happens with the caller's own addresses (SHMEM symmetric semantics).
  const AddrClass remote_cls = classify(is_put ? target : source);
  const AddrClass local_cls = classify(is_put ? source : target);

  if (remote_cls == AddrClass::kOther) {
    throw std::invalid_argument(
        is_put ? "shmem put: target is not a symmetric object"
               : "shmem get: source is not a symmetric object");
  }

  if (race_ != nullptr) {
    // tshmem-check: record both sides before the copy (non-symmetric local
    // sides are ignored by the detector). Elemental puts also publish a
    // release clock on the target granule, pairing with shmem_wait_until.
    const char* site = is_put ? "shmem_put" : "shmem_get";
    const std::uint64_t vt = tile_->clock().now();
    if (is_put) {
      void* rem = remote_addr(target, pe);
      race_->on_access(pe_, false, analysis::AccessKind::kRead, source,
                       bytes, site, vt);
      race_->on_access(pe_, false, analysis::AccessKind::kWrite, rem, bytes,
                       site, vt);
      if (bytes == 4 || bytes == 8) race_->on_release(pe_, rem);
    } else {
      race_->on_access(pe_, false, analysis::AccessKind::kRead,
                       remote_addr(source, pe), bytes, site, vt);
      race_->on_access(pe_, false, analysis::AccessKind::kWrite, target,
                       bytes, site, vt);
    }
  }

  const bool remote_is_dynamic = remote_cls == AddrClass::kDynamic;
  const bool local_is_dynamic = local_cls == AddrClass::kDynamic;

  auto space_of = [](AddrClass c) {
    return c == AddrClass::kDynamic ? MemSpace::kShared : MemSpace::kPrivate;
  };

  if (pe == pe_ || remote_is_dynamic) {
    // The local tile can service the whole operation itself: the remote
    // side of the transfer is directly addressable (dynamic symmetric), or
    // the "remote" PE is us (§IV-B1 and the dynamic-* rows of Fig 7).
    void* dst = is_put ? remote_addr(target, pe) : target;
    const void* src =
        is_put ? source
               : static_cast<const void*>(remote_addr(source, pe));
    const MemSpace dst_space =
        is_put ? space_of(remote_cls) : space_of(local_cls);
    const MemSpace src_space =
        is_put ? space_of(local_cls) : space_of(remote_cls);
    charge_local_copy(bytes, dst_space, src_space, hints);
    do_memcpy_visible(dst, src, bytes);
    if (is_put && pe != pe_) {
      rt_->note_delivery(pe, tile_->clock().now());
    }
    return;
  }

  // Remote side is a static symmetric object on another PE: the local tile
  // cannot touch it. The remote tile must service the operation via a UDN
  // interrupt (§IV-B2) — unsupported on the TILEPro.
  if (local_is_dynamic) {
    // One side is dynamic: the interrupted remote tile services the request
    // with a single copy (static-dynamic put / dynamic-static get paths;
    // "minor performance degradation").
    void* dst = is_put ? remote_addr(target, pe) : target;
    const void* src =
        is_put ? source
               : static_cast<const void*>(remote_addr(source, pe));
    if (met_) met_->interrupt_services->inc();
    rt_->interrupts().raise(*tile_, pe, [&](Tile& remote) {
      CopyRequest req;
      req.bytes = bytes;
      req.src = is_put ? MemSpace::kShared : MemSpace::kPrivate;
      req.dst = is_put ? MemSpace::kPrivate : MemSpace::kShared;
      req.homing = rt_->options().partition_homing;
      req.concurrent_readers = hints.readers;
      req.concurrent_writers = hints.writers;
      remote.charge_copy(req);
      do_memcpy_visible(dst, src, bytes);
    });
    // Wait: for a put with a *dynamic local source*, the local source is in
    // shared memory, so the remote can read it directly — handled above.
    if (is_put) rt_->note_delivery(pe, tile_->clock().now());
    return;
  }

  // Both sides are static (or local non-symmetric with a static remote):
  // neither tile can address the other's private memory directly, so a
  // temporary shared bounce buffer bridges the transfer at the cost of an
  // extra copy (§IV-B2: "major performance penalty ... static-static").
  tile_->clock().advance(rt_->config().bounce_alloc_ps);
  void* bounce = rt_->alloc_bounce(bytes, pe_);
  if (is_put) {
    // Local: private source -> shared bounce; remote: bounce -> its static.
    charge_local_copy(bytes, MemSpace::kShared, MemSpace::kPrivate, hints);
    std::memcpy(bounce, source, bytes);
    void* dst = remote_addr(target, pe);
    if (met_) met_->interrupt_services->inc();
    rt_->interrupts().raise(*tile_, pe, [&](Tile& remote) {
      CopyRequest req;
      req.bytes = bytes;
      req.src = MemSpace::kShared;
      req.dst = MemSpace::kPrivate;
      req.homing = tilesim::Homing::kHashForHome;
      remote.charge_copy(req);
      do_memcpy_visible(dst, bounce, bytes);
    });
    rt_->note_delivery(pe, tile_->clock().now());
  } else {
    // Remote: its static source -> shared bounce; local: bounce -> target.
    const void* src = remote_addr(source, pe);
    if (met_) met_->interrupt_services->inc();
    rt_->interrupts().raise(*tile_, pe, [&](Tile& remote) {
      CopyRequest req;
      req.bytes = bytes;
      req.src = MemSpace::kPrivate;
      req.dst = MemSpace::kShared;
      req.homing = tilesim::Homing::kHashForHome;
      remote.charge_copy(req);
      std::memcpy(bounce, src, bytes);
    });
    charge_local_copy(bytes, MemSpace::kPrivate, MemSpace::kShared, hints);
    do_memcpy_visible(target, bounce, bytes);
  }
  rt_->free_bounce(bounce);
}

void Context::put(void* target, const void* source, std::size_t bytes, int pe,
                  CopyHints hints) {
  transfer(target, source, bytes, pe, /*is_put=*/true, hints);
}

void Context::get(void* target, const void* source, std::size_t bytes, int pe,
                  CopyHints hints) {
  transfer(target, source, bytes, pe, /*is_put=*/false, hints);
}

// ===========================================================================
// Non-blocking data movement (sim/dma.hpp; docs/NBI.md)
// ===========================================================================

void Context::transfer_nbi(void* target, const void* source,
                           std::size_t bytes, int pe, bool is_put) {
  rt_->note_op(pe_, is_put ? "shmem_put_nbi" : "shmem_get_nbi");
  if (rt_->debug_validation()) {
    validate_transfer(target, source, bytes, pe, is_put,
                      is_put ? "shmem put_nbi" : "shmem get_nbi");
  }
  if (pe < 0 || pe >= num_pes()) {
    throw std::out_of_range("put/get nbi: PE out of range");
  }
  const AddrClass remote_cls = classify(is_put ? target : source);
  if (remote_cls == AddrClass::kOther) {
    throw std::invalid_argument(
        is_put ? "shmem put_nbi: target is not a symmetric object"
               : "shmem get_nbi: source is not a symmetric object");
  }
  if (pe != pe_ && remote_cls != AddrClass::kDynamic) {
    // The remote side is a static symmetric object: only the remote tile's
    // interrupt handler can touch it, so the DMA engine cannot service the
    // descriptor. Complete synchronously — a blocking transfer is a valid
    // NBI implementation — and never enqueue (counts as a blocking op in
    // the metrics; see docs/NBI.md).
    transfer(target, source, bytes, pe, is_put, {});
    return;
  }
  tilesim::ProfSpan prof(*tile_, tilesim::ProfPhase::kDma,
                         is_put ? "shmem_put_nbi" : "shmem_get_nbi");
  const AddrClass local_cls = classify(is_put ? source : target);
  tile_->clock().advance(rt_->config().shmem_call_overhead_ps +
                         rt_->config().dma_issue_ps);
  if (bytes == 0) return;

  tilesim::FaultEngine* fault = tile_->device().fault();
  if (fault != nullptr &&
      fault->dma_desc_fails(pe_, tile_->clock().now())) {
    // Injected descriptor-post failure: degrade gracefully to a blocking
    // transfer (a valid NBI implementation) instead of losing the data.
    if (met_) met_->nbi_sync_fallbacks->inc();
    transfer(target, source, bytes, pe, is_put, {});
    return;
  }

  auto space_of = [](AddrClass c) {
    return c == AddrClass::kDynamic ? MemSpace::kShared : MemSpace::kPrivate;
  };
  void* dst = is_put ? remote_addr(target, pe) : target;
  const void* src =
      is_put ? source : static_cast<const void*>(remote_addr(source, pe));
  CopyRequest req;
  req.bytes = bytes;
  req.src = is_put ? space_of(local_cls) : space_of(remote_cls);
  req.dst = is_put ? space_of(remote_cls) : space_of(local_cls);
  req.homing = rt_->options().partition_homing;
  const ps_t cost = tile_->device().mem_model().copy_cost_ps(req);

  const ps_t stall_ps =
      fault != nullptr ? fault->dma_stall(pe_, tile_->clock().now()) : 0;
  const tilesim::DmaDescriptor d = tile_->dma().issue(
      pe, is_put, bytes, tile_->clock().now(), cost, stall_ps);
  // The host-side copy happens eagerly; virtual time defers delivery to the
  // descriptor's completion timestamp (the same host-eager/virtual-deferred
  // split every blocking path already relies on). The DMA engine bypasses
  // the issuing tile's caches, so no cache probe sees this stream.
  do_memcpy_visible(dst, src, bytes);
  if (is_put && pe != pe_) rt_->note_delivery(pe, d.complete_ps);
  if (race_ != nullptr) {
    // The DMA pseudo-actor performs the transfer: unordered with this PE's
    // subsequent program until shmem_quiet joins the engine back.
    race_->on_nbi_issue(pe_, src, dst, bytes,
                        is_put ? "shmem_put_nbi" : "shmem_get_nbi",
                        d.start_ps, d.complete_ps);
  }
  if (tilesim::TraceRecorder* tracer = tile_->device().tracer();
      tracer != nullptr) {
    tracer->record(pe_, tilesim::TraceKind::kCopy, d.start_ps, d.complete_ps,
                   std::string("dma ") + (is_put ? "put" : "get") + " pe" +
                       std::to_string(pe));
  }
  if (met_) {
    met_->nbi_issued->inc();
    met_->nbi_bytes->add(bytes);
    met_->nbi_queue_depth->set(
        static_cast<std::int64_t>(tile_->dma().pending()));
  }
  tilesim::flight_event(tile_->device(), pe_,
                        is_put ? tilesim::FlightKind::kPutNbi
                               : tilesim::FlightKind::kGetNbi,
                        is_put ? "shmem_put_nbi" : "shmem_get_nbi",
                        tile_->clock().now(), pe, bytes);
}

void Context::put_nbi(void* target, const void* source, std::size_t bytes,
                      int pe) {
  transfer_nbi(target, source, bytes, pe, /*is_put=*/true);
}

void Context::get_nbi(void* target, const void* source, std::size_t bytes,
                      int pe) {
  transfer_nbi(target, source, bytes, pe, /*is_put=*/false);
}

// ===========================================================================
// Fence / quiet (paper §IV-C2, extended for the DMA queue)
// ===========================================================================

void Context::quiet() {
  rt_->note_op(pe_, "shmem_quiet");
  tilesim::ProfSpan prof(*tile_, tilesim::ProfPhase::kDma, "shmem_quiet");
  tilesim::DmaEngine& dma = tile_->dma();
  if (dma.pending() != 0) {
    const ps_t before = tile_->clock().now();
    const tilesim::DmaEngine::DrainResult drained = dma.drain_all();
    tile_->clock().advance_to(drained.max_complete_ps);
    // The engine is this PE's own DMA pseudo-actor, so the wait edge points
    // at ourselves: the bound is our earlier issue stream, not another PE.
    tilesim::prof_wait_edge(*tile_, pe_, tilesim::ProfPhase::kDma,
                            "dma_drain", before, drained.max_complete_ps);
    if (met_) {
      met_->nbi_retired->add(drained.retired);
      met_->nbi_queue_depth->set(0);
      const ps_t wait = drained.max_complete_ps > before
                            ? drained.max_complete_ps - before
                            : 0;
      met_->nbi_quiet_wait_ps->record(wait);
      if (drained.busy_ps > 0) {
        // How much of the engine's transfer time was hidden behind
        // computation since issue (100 = fully overlapped).
        const ps_t hidden =
            drained.busy_ps > wait ? drained.busy_ps - wait : 0;
        met_->nbi_overlap_pct->record(100 * hidden / drained.busy_ps);
      }
    }
  }
  // tmc_mem_fence(): blocks until all memory stores are visible. With an
  // empty DMA queue this is the whole operation — the pre-NBI behavior,
  // bit-identical with the paper's figures.
  tmc::mem_fence(*tile_);
  if (race_ != nullptr) race_->on_quiet(pe_);
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kQuiet,
                        "shmem_quiet", tile_->clock().now());
}

void Context::fence() {
  tilesim::ProfSpan prof(*tile_, tilesim::ProfPhase::kDma, "shmem_fence");
  if (tile_->dma().pending() == 0) {
    // §IV-C2: with nothing in flight shmem_fence() stays an alias of
    // shmem_quiet(), keeping existing figure results bit-identical.
    quiet();
    return;
  }
  // Per-destination ordering only: the single-channel DMA engine retires
  // descriptors in issue order, so delivery to any one PE is already FIFO.
  // A fence therefore drains the CPU store buffer but NOT the engine — the
  // clock never jumps to a completion timestamp here.
  tmc::mem_fence(*tile_);
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kFence,
                        "shmem_fence", tile_->clock().now());
}

// ===========================================================================
// Control messaging
// ===========================================================================

void Context::send_ctrl(int dst_pe, int queue, const CtrlMsg& msg) {
  if (race_ != nullptr) {
    race_->on_ctrl_send(pe_, dst_pe, queue, static_cast<int>(msg.tag));
  }
  const std::uint64_t words[2] = {msg.word0(), msg.aux};
  rt_->udn().send(*tile_, dst_pe, queue, words);
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kCtrlSend,
                        "ctrl_send", tile_->clock().now(), dst_pe,
                        sizeof(words));
}

CtrlMsg Context::recv_ctrl(int queue, MsgTag tag, int src_pe,
                           int* actual_src) {
  // The clock advances only when the *matching* message is consumed; a
  // message stashed for later must not drag this PE's clock to its own
  // arrival time (virtual time would then depend on host scheduling).
  const tilesim::ps_t wait_begin = tile_->clock().now();
  auto consume = [&](int src, tilesim::ps_t arrival) {
    if (race_ != nullptr) {
      // Join the clock snapshot of the *matched* message: the tag+FIFO
      // discipline mirrors this function's own stash-or-match logic, so the
      // edge is protocol-determined, not host-schedule-determined.
      race_->on_ctrl_consume(pe_, src, queue, static_cast<int>(tag));
    }
    tile_->clock().advance_to(arrival);
    // No span here on purpose: the wait time must attribute to whatever
    // enclosing phase (barrier/collective) issued the receive; the edge
    // records which PE's send bounded us.
    tilesim::prof_wait_edge(*tile_, src, tilesim::ProfPhase::kUdn, "ctrl",
                            wait_begin, arrival);
    if (tilesim::TraceRecorder* tracer = tile_->device().tracer();
        tracer != nullptr) {
      tracer->record(pe_, tilesim::TraceKind::kMessage, wait_begin,
                     tile_->clock().now(),
                     "ctrl q" + std::to_string(queue) + " from " +
                         std::to_string(src));
    }
    // Recorded on *match*, not packet arrival: the tag+FIFO discipline makes
    // this edge protocol-determined even when arrivals race.
    tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kCtrlRecv,
                          "ctrl_recv", tile_->clock().now(), src);
  };
  auto& stash = ctrl_stash_[queue];
  for (std::size_t i = 0; i < stash.size(); ++i) {
    if (stash[i].msg.tag == tag &&
        (src_pe < 0 || stash[i].src_pe == src_pe)) {
      const CtrlMsg msg = stash[i].msg;
      if (actual_src != nullptr) *actual_src = stash[i].src_pe;
      consume(stash[i].src_pe, stash[i].arrival_ps);
      stash.erase(stash.begin() + static_cast<std::ptrdiff_t>(i));
      return msg;
    }
  }
  for (;;) {
    tmc::UdnPacket pkt = rt_->udn().recv_raw(*tile_, queue);
    if (pkt.payload.size() != 2) {
      throw std::runtime_error("malformed TSHMEM control message");
    }
    const CtrlMsg msg = CtrlMsg::decode(pkt.payload[0], pkt.payload[1]);
    if (msg.tag == tag && (src_pe < 0 || pkt.src_tile == src_pe)) {
      if (actual_src != nullptr) *actual_src = pkt.src_tile;
      consume(pkt.src_tile, pkt.arrival_ps);
      return msg;
    }
    stash.push_back(StashedCtrl{pkt.src_tile, pkt.arrival_ps, msg});
  }
}

// ===========================================================================
// Barriers (paper §IV-C1)
// ===========================================================================

std::uint32_t Context::next_barrier_seq(const ActiveSet& as) {
  return barrier_seq_[as.id()]++;
}

std::uint32_t Context::next_collective_seq(const ActiveSet& as) {
  return collective_seq_[as.id()]++;
}

void Context::barrier_all() { barrier(world()); }

void Context::barrier(const ActiveSet& as) { barrier(as, barrier_algo_); }

void Context::barrier(const ActiveSet& as, BarrierAlgo algo) {
  rt_->note_op(pe_, "shmem_barrier");
  if (!as.contains(pe_)) {
    throw std::invalid_argument("barrier: calling PE not in active set");
  }
  // Wait time = virtual time across the whole barrier (arrival skew plus
  // the algorithm's release latency).
  obs::ScopedVtTimer vt_metric(tile_->clock(),
                               met_ ? met_->barrier_wait_ps : nullptr,
                               met_ ? met_->barrier_calls : nullptr);
  tilesim::ProfSpan prof(*tile_, tilesim::ProfPhase::kBarrier,
                         "shmem_barrier");
  const ps_t bar_begin = tile_->clock().now();
  // A barrier also completes outstanding puts (OpenSHMEM semantics).
  quiet();
  if (as.pe_size > 1) {
    const std::uint32_t seq = next_barrier_seq(as);
    switch (algo) {
      case BarrierAlgo::kLinearToken:
        barrier_linear(as, seq);
        break;
      case BarrierAlgo::kBroadcastRelease:
        barrier_broadcast_release(as, seq);
        break;
      case BarrierAlgo::kTmcSpin:
        barrier_tmc_spin(as);
        break;
    }
  }
  // bytes carries the barrier's virtual duration (arrival skew + release).
  const ps_t bar_end = tile_->clock().now();
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kBarrier,
                        "shmem_barrier", bar_end, -1,
                        static_cast<std::uint64_t>(bar_end - bar_begin));
  obs::ts_sample(ts_, "shmem.barrier.ps", bar_end,
                 static_cast<std::uint64_t>(bar_end - bar_begin));
}

void Context::barrier_linear(const ActiveSet& as, std::uint32_t seq) {
  // The start tile generates a token identifying this barrier instance; a
  // WAIT signal circulates linearly through the active set and back to the
  // start, then a RELEASE signal makes the same loop. Tokens travel on the
  // dedicated barrier demux queue.
  const int idx = as.index_of(pe_);
  const int n = as.pe_size;
  const int next = as.pe_at((idx + 1) % n);
  const int prev = as.pe_at((idx + n - 1) % n);
  const auto forward_cost = rt_->config().barrier_forward_ps;

  auto expect = [&](MsgTag tag) {
    const CtrlMsg msg = recv_ctrl(tmc::kUdnBarrierQueue, tag, prev);
    if (msg.set_id != (as.id() & 0xffffff) || msg.seq != seq) {
      throw std::runtime_error(
          "TSHMEM barrier token mismatch (overlapping barriers?)");
    }
  };
  auto token = [&](MsgTag tag) {
    return CtrlMsg{tag, as.id() & 0xffffff, seq, 0};
  };

  if (idx == 0) {
    tile_->clock().advance(forward_cost);
    send_ctrl(next, tmc::kUdnBarrierQueue, token(MsgTag::kBarrierWait));
    expect(MsgTag::kBarrierWait);  // everyone has arrived
    tile_->clock().advance(forward_cost);
    send_ctrl(next, tmc::kUdnBarrierQueue, token(MsgTag::kBarrierRelease));
    expect(MsgTag::kBarrierRelease);  // start tile exits last
  } else {
    expect(MsgTag::kBarrierWait);
    tile_->clock().advance(forward_cost);
    send_ctrl(next, tmc::kUdnBarrierQueue, token(MsgTag::kBarrierWait));
    expect(MsgTag::kBarrierRelease);
    tile_->clock().advance(forward_cost);
    send_ctrl(next, tmc::kUdnBarrierQueue, token(MsgTag::kBarrierRelease));
    // Non-start tiles resume as soon as they forwarded the release.
  }
}

void Context::barrier_broadcast_release(const ActiveSet& as,
                                        std::uint32_t seq) {
  // The §IV-C1 alternative the paper measured 2x slower: the WAIT phase is
  // the same linear loop, but the start tile then broadcasts the RELEASE
  // individually, requiring an acknowledgment per tile before its UDN
  // resources can be reused — serializing a round trip per member.
  const int idx = as.index_of(pe_);
  const int n = as.pe_size;
  const int next = as.pe_at((idx + 1) % n);
  const int prev = as.pe_at((idx + n - 1) % n);
  const int start = as.pe_at(0);
  const auto forward_cost = rt_->config().barrier_forward_ps;
  auto token = [&](MsgTag tag) {
    return CtrlMsg{tag, as.id() & 0xffffff, seq, 0};
  };

  if (idx == 0) {
    tile_->clock().advance(forward_cost);
    send_ctrl(next, tmc::kUdnBarrierQueue, token(MsgTag::kBarrierWait));
    recv_ctrl(tmc::kUdnBarrierQueue, MsgTag::kBarrierWait, prev);
    for (int i = 1; i < n; ++i) {
      tile_->clock().advance(forward_cost);
      send_ctrl(as.pe_at(i), tmc::kUdnBarrierQueue,
                token(MsgTag::kBarrierRelease));
      recv_ctrl(tmc::kUdnBarrierQueue, MsgTag::kBarrierAck, as.pe_at(i));
      // Draining each acknowledgment from the demux queue costs the root a
      // software-loop iteration, further serializing the release phase.
      tile_->clock().advance(forward_cost);
    }
  } else {
    recv_ctrl(tmc::kUdnBarrierQueue, MsgTag::kBarrierWait, prev);
    tile_->clock().advance(forward_cost);
    send_ctrl(next, tmc::kUdnBarrierQueue, token(MsgTag::kBarrierWait));
    recv_ctrl(tmc::kUdnBarrierQueue, MsgTag::kBarrierRelease, start);
    tile_->clock().advance(forward_cost);
    send_ctrl(start, tmc::kUdnBarrierQueue, token(MsgTag::kBarrierAck));
  }
}

void Context::barrier_tmc_spin(const ActiveSet& as) {
  // §IV-E: on the TILE-Gx the TMC spin barrier beats the UDN token design;
  // this variant adopts it (usable only when each PE owns its tile, which
  // is always true under this runtime).
  rt_->spin_barrier_for(as).wait(*tile_);
}

// ===========================================================================
// Atomics
// ===========================================================================

void Context::charge_atomic(int pe) {
  const auto& cfg = rt_->config();
  // Round trip to the target line's home tile. Hash-for-home scatters lines
  // pseudo-randomly, so charge the mean mesh distance.
  const int avg_hops = (cfg.mesh_width + cfg.mesh_height) / 3;
  ps_t cost = cfg.shmem_call_overhead_ps + cfg.udn_setup_teardown_ps +
              2 * static_cast<ps_t>(avg_hops) * cfg.cycle_ps();
  if (pe == pe_) cost = cfg.shmem_call_overhead_ps + 4 * cfg.cycle_ps();
  tile_->clock().advance(cost);
}

void Context::atomic_engine(void* target, int pe, std::size_t bytes,
                            const char* site,
                            const std::function<void(void*)>& op) {
  if (pe < 0 || pe >= num_pes()) {
    throw std::out_of_range("atomic: PE out of range");
  }
  const AddrClass cls = classify(target);
  if (cls == AddrClass::kOther) {
    throw std::invalid_argument("atomic: target is not a symmetric object");
  }
  if (met_) met_->atomic_calls->inc();
  tilesim::ProfSpan prof(*tile_, tilesim::ProfPhase::kLock, site);
  charge_atomic(pe);
  if (race_ != nullptr) {
    // Acquire-check-release on the target granule; even a failed CAS
    // acquires, which is what makes lock spin loops race-free.
    race_->on_atomic(pe_, remote_addr(target, pe), bytes, site,
                     tile_->clock().now());
  }
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kAtomic,
                        site, tile_->clock().now(), pe, bytes);
  if (cls == AddrClass::kDynamic || pe == pe_) {
    op(remote_addr(target, pe));
    if (pe != pe_) rt_->note_delivery(pe, tile_->clock().now());
    return;
  }
  // Static symmetric object on a remote PE: service via UDN interrupt.
  void* addr = remote_addr(target, pe);
  if (met_) met_->interrupt_services->inc();
  rt_->interrupts().raise(*tile_, pe, [&](Tile& remote) {
    remote.clock().advance(rt_->config().cycle_ps() * 8);
    op(addr);
  });
  rt_->note_delivery(pe, tile_->clock().now());
}

// ===========================================================================
// Locks (OpenSHMEM §8.7): the lock lives on PE 0's copy of the symmetric
// variable; value 0 = unlocked, 1 + owner = locked.
// ===========================================================================

void Context::set_lock(long* lock) {
  rt_->note_op(pe_, "shmem_set_lock");
  if (met_) met_->lock_ops->inc();
  // Each failed CAS is a full attempt (it advances virtual time via the
  // atomic cost model); the guarded spin bounds the retry loop with the
  // watchdog like every other blocking wait in the tree.
  tilesim::guarded_spin(tile_->device(), pe_, "shmem_set_lock", [&] {
    long prev = 0;
    atomic_engine(lock, 0, sizeof(long), "shmem_set_lock", [&](void* addr) {
      std::atomic_ref<long> ref(*static_cast<long*>(addr));
      long expected = 0;
      if (ref.compare_exchange_strong(expected, 1 + pe_,
                                      std::memory_order_acq_rel)) {
        prev = 0;
      } else {
        prev = expected;
      }
    });
    return prev == 0;
  });
  // Close the guarded spin's kWaitBegin: the acquiring CAS's timestamp is
  // the deterministic end of the lock wait.
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kWaitEnd,
                        "shmem_set_lock", tile_->clock().now());
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kLock,
                        "shmem_set_lock", tile_->clock().now(), 0);
  rt_->note_lock_delta(pe_, +1);
}

void Context::clear_lock(long* lock) {
  rt_->note_op(pe_, "shmem_clear_lock");
  if (met_) met_->lock_ops->inc();
  quiet();  // spec: releases after outstanding stores complete
  atomic_engine(lock, 0, sizeof(long), "shmem_clear_lock", [&](void* addr) {
    std::atomic_ref<long> ref(*static_cast<long*>(addr));
    const long cur = ref.load(std::memory_order_acquire);
    if (cur != 1 + pe_) {
      throw std::logic_error("clear_lock by non-owner PE");
    }
    ref.store(0, std::memory_order_release);
  });
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kLock,
                        "shmem_clear_lock", tile_->clock().now(), 0);
  rt_->note_lock_delta(pe_, -1);
}

int Context::test_lock(long* lock) {
  if (met_) met_->lock_ops->inc();
  long prev = 0;
  atomic_engine(lock, 0, sizeof(long), "shmem_test_lock", [&](void* addr) {
    std::atomic_ref<long> ref(*static_cast<long*>(addr));
    long expected = 0;
    if (!ref.compare_exchange_strong(expected, 1 + pe_,
                                     std::memory_order_acq_rel)) {
      prev = expected;
    }
  });
  tilesim::flight_event(tile_->device(), pe_, tilesim::FlightKind::kLock,
                        "shmem_test_lock", tile_->clock().now(), 0);
  if (prev == 0) rt_->note_lock_delta(pe_, +1);
  return prev == 0 ? 0 : 1;
}

// ===========================================================================
// Finalize (proposed extension, paper §IV-E)
// ===========================================================================

void Context::finalize() {
  rt_->note_op(pe_, "shmem_finalize");
  if (finalized_) {
    throw std::logic_error("shmem_finalize called twice");
  }
  // Outstanding non-blocking transfers at finalize are a program error (the
  // OpenSHMEM spec requires quiescence before teardown): surface it rather
  // than silently dropping descriptors whose completion nobody will await.
  if (const std::size_t n = tile_->dma().pending(); n != 0) {
    throw Error(
        Errc::kFinalizePending,
        "shmem_finalize: PE " + std::to_string(pe_) + " has " +
            std::to_string(n) +
            " outstanding non-blocking transfer(s); call shmem_quiet() "
            "before shmem_finalize()");
  }
  // Proper teardown requires the UDN to be fully disengaged: any packet
  // still queued here indicates a protocol bug that would lock up a real
  // Tilera device.
  for (int q = 0; q < rt_->config().udn_demux_queues; ++q) {
    if (rt_->udn().queued_words(pe_, q) != 0 || !ctrl_stash_[q].empty()) {
      throw std::runtime_error(
          "shmem_finalize: UDN demux queue not drained on PE " +
          std::to_string(pe_));
    }
  }
  finalized_ = true;
}

}  // namespace tshmem
