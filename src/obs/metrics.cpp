#include "obs/metrics.hpp"

#include <algorithm>
#include <bit>
#include <map>
#include <stdexcept>

namespace obs {

// ===========================================================================
// Log2Histogram
// ===========================================================================

int Log2Histogram::bucket_of(std::uint64_t sample) noexcept {
  return std::bit_width(sample);  // 0 for 0, else floor(log2(v)) + 1
}

std::uint64_t Log2Histogram::bucket_lower(int bucket) noexcept {
  if (bucket <= 0) return 0;
  return std::uint64_t{1} << (bucket - 1);
}

std::uint64_t Log2Histogram::bucket_upper(int bucket) noexcept {
  if (bucket <= 0) return 0;
  if (bucket >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

void Log2Histogram::record(std::uint64_t sample) noexcept {
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(sample, std::memory_order_relaxed);
  buckets_[static_cast<std::size_t>(bucket_of(sample))].fetch_add(
      1, std::memory_order_relaxed);
  std::uint64_t cur = min_.load(std::memory_order_relaxed);
  while (sample < cur &&
         !min_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (sample > cur &&
         !max_.compare_exchange_weak(cur, sample, std::memory_order_relaxed)) {
  }
}

// ===========================================================================
// MetricsRegistry
// ===========================================================================

struct MetricsRegistry::Shard {
  mutable std::mutex mu;
  // Ordered map so per-shard iteration is already sorted; the final
  // snapshot merge only re-sorts across shards.
  std::map<std::pair<std::string, int>, Cell> cells;
};

namespace {
std::size_t shard_index(std::string_view name, int pe, std::size_t shards) {
  const std::size_t h =
      std::hash<std::string_view>{}(name) * 31 +
      std::hash<int>{}(pe);
  return h % shards;
}
}  // namespace

MetricsRegistry::~MetricsRegistry() = default;

MetricsRegistry::MetricsRegistry(int shards) {
  if (shards < 1) {
    throw std::invalid_argument("MetricsRegistry needs >= 1 shard");
  }
  shards_.reserve(static_cast<std::size_t>(shards));
  for (int i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

MetricsRegistry::Cell& MetricsRegistry::cell_for(std::string_view name, int pe,
                                                 Kind kind) {
  Shard& shard = *shards_[shard_index(name, pe, shards_.size())];
  std::scoped_lock lk(shard.mu);
  auto [it, inserted] =
      shard.cells.try_emplace({std::string(name), pe});
  Cell& cell = it->second;
  if (inserted) {
    cell.kind = kind;
    switch (kind) {
      case Kind::kCounter: cell.counter = std::make_unique<Counter>(); break;
      case Kind::kGauge: cell.gauge = std::make_unique<Gauge>(); break;
      case Kind::kHistogram:
        cell.histogram = std::make_unique<Log2Histogram>();
        break;
    }
  } else if (cell.kind != kind) {
    throw std::logic_error("metric '" + std::string(name) +
                           "' re-registered with a different kind");
  }
  return cell;
}

Counter& MetricsRegistry::counter(std::string_view name, int pe) {
  return *cell_for(name, pe, Kind::kCounter).counter;
}

Gauge& MetricsRegistry::gauge(std::string_view name, int pe) {
  return *cell_for(name, pe, Kind::kGauge).gauge;
}

Log2Histogram& MetricsRegistry::histogram(std::string_view name, int pe) {
  return *cell_for(name, pe, Kind::kHistogram).histogram;
}

std::size_t MetricsRegistry::metric_count() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::scoped_lock lk(shard->mu);
    n += shard->cells.size();
  }
  return n;
}

MetricsSnapshot MetricsRegistry::snapshot(std::string device, int npes) const {
  MetricsSnapshot snap;
  snap.device = std::move(device);
  snap.npes = npes;
  for (const auto& shard : shards_) {
    std::scoped_lock lk(shard->mu);
    for (const auto& [key, cell] : shard->cells) {
      switch (cell.kind) {
        case Kind::kCounter:
          snap.counters.push_back(
              {key.first, key.second, cell.counter->value()});
          break;
        case Kind::kGauge:
          snap.gauges.push_back({key.first, key.second, cell.gauge->value()});
          break;
        case Kind::kHistogram: {
          const Log2Histogram& h = *cell.histogram;
          HistogramSample s;
          s.name = key.first;
          s.pe = key.second;
          s.count = h.count();
          s.sum = h.sum();
          s.min = s.count == 0 ? 0 : h.min();
          s.max = h.max();
          for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
            if (const std::uint64_t c = h.bucket_count(b); c != 0) {
              s.buckets.push_back({b, c});
            }
          }
          snap.histograms.push_back(std::move(s));
          break;
        }
      }
    }
  }
  const auto by_name_pe = [](const auto& a, const auto& b) {
    return a.name != b.name ? a.name < b.name : a.pe < b.pe;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name_pe);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name_pe);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name_pe);
  return snap;
}

}  // namespace obs
