#include "obs/exporters.hpp"

#include <cinttypes>
#include <cstdio>
#include <ostream>

namespace obs {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void write_snapshot(std::ostream& os, const MetricsSnapshot& snap,
                    const char* indent) {
  os << indent << "{\n";
  os << indent << "  \"device\": \"" << json_escape(snap.device) << "\",\n";
  os << indent << "  \"npes\": " << snap.npes << ",\n";

  os << indent << "  \"counters\": [";
  for (std::size_t i = 0; i < snap.counters.size(); ++i) {
    const auto& c = snap.counters[i];
    os << (i == 0 ? "\n" : ",\n") << indent << "    {\"name\": \""
       << json_escape(c.name) << "\", \"pe\": " << c.pe
       << ", \"value\": " << c.value << "}";
  }
  os << (snap.counters.empty() ? "" : "\n") << indent
     << (snap.counters.empty() ? "],\n" : "  ],\n");

  os << indent << "  \"gauges\": [";
  for (std::size_t i = 0; i < snap.gauges.size(); ++i) {
    const auto& g = snap.gauges[i];
    os << (i == 0 ? "\n" : ",\n") << indent << "    {\"name\": \""
       << json_escape(g.name) << "\", \"pe\": " << g.pe
       << ", \"value\": " << g.value << "}";
  }
  os << (snap.gauges.empty() ? "" : "\n") << indent
     << (snap.gauges.empty() ? "],\n" : "  ],\n");

  os << indent << "  \"histograms\": [";
  for (std::size_t i = 0; i < snap.histograms.size(); ++i) {
    const auto& h = snap.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << indent << "    {\"name\": \""
       << json_escape(h.name) << "\", \"pe\": " << h.pe
       << ", \"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"min\": " << h.min << ", \"max\": " << h.max
       << ", \"buckets\": [";
    for (std::size_t b = 0; b < h.buckets.size(); ++b) {
      if (b != 0) os << ", ";
      os << "{\"log2\": " << h.buckets[b].bucket
         << ", \"count\": " << h.buckets[b].count << "}";
    }
    os << "]}";
  }
  os << (snap.histograms.empty() ? "" : "\n") << indent
     << (snap.histograms.empty() ? "]\n" : "  ]\n");
  os << indent << "}";
}

}  // namespace

void write_metrics_json(std::ostream& os,
                        const std::vector<MetricsSnapshot>& runs) {
  os << "{\n  \"schema\": \"" << kMetricsSchema << "\",\n  \"runs\": [";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n");
    write_snapshot(os, runs[i], "    ");
  }
  os << (runs.empty() ? "" : "\n  ") << "]\n}\n";
}

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot) {
  write_metrics_json(os, std::vector<MetricsSnapshot>{snapshot});
}

namespace {

/// Virtual picoseconds -> trace microseconds (fractional, ns resolution).
double ps_to_trace_us(tilesim::ps_t ps) {
  return static_cast<double>(ps) / 1e6;
}

void write_trace_event(std::ostream& os, int pid,
                       const tilesim::TraceEvent& e, bool first) {
  char ts[64];
  char dur[64];
  std::snprintf(ts, sizeof(ts), "%.6f", ps_to_trace_us(e.begin_ps));
  std::snprintf(dur, sizeof(dur), "%.6f",
                ps_to_trace_us(e.end_ps - e.begin_ps));
  const std::string name =
      e.label.empty() ? std::string(tilesim::to_string(e.kind)) : e.label;
  os << (first ? "\n" : ",\n") << "    {\"name\": \"" << json_escape(name)
     << "\", \"cat\": \"" << tilesim::to_string(e.kind)
     << "\", \"ph\": \"X\", \"ts\": " << ts << ", \"dur\": " << dur
     << ", \"pid\": " << pid << ", \"tid\": " << e.tile << "}";
}

}  // namespace

void write_chrome_trace_json(std::ostream& os,
                             const std::vector<TraceTrack>& tracks) {
  write_chrome_trace_json(os, tracks, {});
}

void write_chrome_trace_json(std::ostream& os,
                             const std::vector<TraceTrack>& tracks,
                             const std::vector<TraceFlow>& flows) {
  os << "{\n  \"displayTimeUnit\": \"ns\",\n  \"traceEvents\": [";
  bool first = true;
  for (const TraceTrack& track : tracks) {
    // Metadata events name the process (device) and each tile track.
    os << (first ? "\n" : ",\n")
       << "    {\"name\": \"process_name\", \"ph\": \"M\", \"pid\": "
       << track.pid << ", \"args\": {\"name\": \""
       << json_escape(track.process_name) << "\"}}";
    first = false;
    int max_tile = -1;
    for (const auto& e : track.events) max_tile = std::max(max_tile, e.tile);
    for (int t = 0; t <= max_tile; ++t) {
      os << ",\n    {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": "
         << track.pid << ", \"tid\": " << t
         << ", \"args\": {\"name\": \"tile " << t << "\"}}";
    }
    for (const auto& e : track.events) {
      write_trace_event(os, track.pid, e, false);
    }
  }
  for (const TraceFlow& f : flows) {
    char sts[64];
    char fts[64];
    std::snprintf(sts, sizeof(sts), "%.6f", ps_to_trace_us(f.src_ps));
    std::snprintf(fts, sizeof(fts), "%.6f", ps_to_trace_us(f.dst_ps));
    os << (first ? "\n" : ",\n") << "    {\"name\": \""
       << json_escape(f.name) << "\", \"cat\": \"wait_edge\", \"ph\": \"s\""
       << ", \"id\": " << f.id << ", \"ts\": " << sts << ", \"pid\": "
       << f.pid << ", \"tid\": " << f.src_tile << "}";
    first = false;
    os << ",\n    {\"name\": \"" << json_escape(f.name)
       << "\", \"cat\": \"wait_edge\", \"ph\": \"f\", \"bp\": \"e\""
       << ", \"id\": " << f.id << ", \"ts\": " << fts << ", \"pid\": "
       << f.pid << ", \"tid\": " << f.dst_tile << "}";
  }
  os << (first ? "" : "\n  ") << "]\n}\n";
}

void write_chrome_trace_json(std::ostream& os,
                             const std::vector<tilesim::TraceEvent>& events,
                             const std::string& process_name) {
  std::vector<TraceTrack> tracks(1);
  tracks[0].pid = 0;
  tracks[0].process_name = process_name;
  tracks[0].events = events;
  write_chrome_trace_json(os, tracks);
}

}  // namespace obs
