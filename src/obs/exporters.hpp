// Telemetry exporters (ISSUE 2 tentpole).
//
// Two machine-readable views of a run:
//   - a metrics JSON dump of MetricsSnapshot(s) with a stable, sorted
//     schema ("tshmem.metrics.v1"), suitable for diffing across PRs and for
//     feeding BENCH_*.json comparison tooling;
//   - a Chrome trace-event / Perfetto JSON export of TraceRecorder events:
//     virtual picoseconds mapped to trace microseconds, one pid per device
//     run, one tid (track) per tile. Load in https://ui.perfetto.dev or
//     chrome://tracing.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/trace.hpp"

namespace obs {

inline constexpr const char* kMetricsSchema = "tshmem.metrics.v1";

/// One device run's timeline: `pid`/`process_name` label the trace process
/// (benches sweeping several devices emit one track group per device).
struct TraceTrack {
  int pid = 0;
  std::string process_name;
  std::vector<tilesim::TraceEvent> events;
};

/// Writes `{"schema": ..., "runs": [snapshot, ...]}`. Counters, gauges and
/// histograms are sorted by (name, pe) inside each run; keys are emitted in
/// a fixed order, so byte-level diffs of two dumps are meaningful.
void write_metrics_json(std::ostream& os,
                        const std::vector<MetricsSnapshot>& runs);

/// Single-run convenience overload.
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snapshot);

/// A wait-for dependency rendered as a Perfetto flow arrow: producer
/// (src_tile @ src_ps) -> consumer (dst_tile @ dst_ps) inside process
/// `pid`. Emitted as paired "s"/"f" events by write_chrome_trace_json.
struct TraceFlow {
  int pid = 0;
  std::uint64_t id = 0;  ///< flow id, unique within the trace
  std::string name;
  int src_tile = 0;
  tilesim::ps_t src_ps = 0;
  int dst_tile = 0;
  tilesim::ps_t dst_ps = 0;
};

/// Writes Chrome trace-event JSON ("X" complete events plus process/thread
/// metadata). Event timestamps/durations convert ps -> us (fractional).
void write_chrome_trace_json(std::ostream& os,
                             const std::vector<TraceTrack>& tracks);

/// As above, plus profiler wait-edge flow arrows ("s"/"f" events) layered
/// onto the tracks.
void write_chrome_trace_json(std::ostream& os,
                             const std::vector<TraceTrack>& tracks,
                             const std::vector<TraceFlow>& flows);

/// Single-device convenience overload (pid 0).
void write_chrome_trace_json(std::ostream& os,
                             const std::vector<tilesim::TraceEvent>& events,
                             const std::string& process_name = "device");

/// JSON string escaping per RFC 8259 (shared with the exporters; exposed
/// for tests).
[[nodiscard]] std::string json_escape(std::string_view s);

}  // namespace obs
