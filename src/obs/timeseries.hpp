// Fixed-width virtual-time window aggregation (ISSUE 9 tentpole).
//
// A TimeSeries buckets named observations into consecutive windows of
// `window_ps` virtual picoseconds. Two ingestion forms:
//   - series_add: a counter delta (arrivals, sheds, retries, ...);
//   - series_sample: a value recorded into the window's log2 histogram
//     (latencies, barrier durations), with p50/p99/p999 extracted via
//     obs::quantiles at report time.
//
// Virtual times are epoch-local at ingestion: Device::reset_clocks()
// boundaries are folded in via fold_epoch(extent), which offsets every
// subsequent observation by the finished epoch's extent so one run's
// phases line up on a single monotone timeline (the profiler's epoch
// model, docs/PROFILING.md).
//
// Host-side cost only, zero virtual cost: ingestion never touches a
// SimClock, and the recorder-on/off bit-identity loop in tools/ci.sh
// covers it. Mutation outside src/obs/ must go through the null-safe
// obs::ts_add / obs::ts_sample helpers (lint rule R006).
#pragma once

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/config.hpp"

namespace obs {

inline constexpr const char* kTimeseriesSchema = "tshmem.timeseries.v1";

/// One window of one series, as reported.
struct SeriesWindow {
  std::uint64_t index = 0;        ///< window ordinal (start_ps / window_ps)
  tilesim::ps_t start_ps = 0;     ///< inclusive window start
  std::uint64_t count = 0;        ///< counter deltas + histogram samples
  bool has_samples = false;       ///< true when the histogram is populated
  std::uint64_t sum = 0;          ///< histogram sample sum
  std::uint64_t min = 0;          ///< histogram min (0 when empty)
  std::uint64_t max = 0;          ///< histogram max (0 when empty)
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;
};

struct SeriesTimeline {
  std::string name;
  std::uint64_t total_count = 0;  ///< sum of window counts
  std::vector<SeriesWindow> windows;  ///< sorted by index; gaps elided
};

struct TimeSeriesReport {
  tilesim::ps_t window_ps = 0;
  std::vector<SeriesTimeline> series;  ///< sorted by name
};

class TimeSeries {
 public:
  /// `window_ps` must be positive.
  explicit TimeSeries(tilesim::ps_t window_ps);

  TimeSeries(const TimeSeries&) = delete;
  TimeSeries& operator=(const TimeSeries&) = delete;

  [[nodiscard]] tilesim::ps_t window_ps() const noexcept {
    return window_ps_;
  }

  /// Raw counter mutator: adds `delta` to series `name` in the window
  /// containing epoch-local virtual time `vt`. Call through obs::ts_add
  /// outside src/obs/ (lint rule R006).
  void series_add(const std::string& name, tilesim::ps_t vt,
                  std::uint64_t delta);

  /// Raw histogram mutator: records `value` into series `name`'s window
  /// histogram (and bumps its count). Call through obs::ts_sample outside
  /// src/obs/ (lint rule R006).
  void series_sample(const std::string& name, tilesim::ps_t vt,
                     std::uint64_t value);

  /// Raw bulk-counter mutator: adds `delta` directly to the cell of
  /// absolute window `window_index` (no epoch-base fold — the caller has
  /// already resolved the window). This is the FlightRecorder tap's flush
  /// path; it exists so the per-event hot path can batch counts per
  /// (PE, kind, window) instead of taking mu_ per event. Raw mutator under
  /// lint rule R006.
  void series_add_window(const std::string& name, std::uint64_t window_index,
                         std::uint64_t delta);

  /// Registers a callback invoked at the top of every report(), before the
  /// snapshot is taken. The FlightRecorder registers its tap flush here so
  /// batched event counts are always folded in no matter which call site
  /// asks for the report. Pass nullptr (default-constructed function) to
  /// clear.
  void set_flush_hook(std::function<void()> hook);

  /// Epoch boundary: every later observation's vt is offset by the
  /// finished epoch's `extent` (the max tile clock at reset). Raw mutator
  /// under lint rule R006; the FlightRecorder forwards its own fold here.
  void fold_epoch(tilesim::ps_t extent);

  [[nodiscard]] tilesim::ps_t epoch_base_ps() const;

  /// Stable snapshot: series sorted by name, windows by index, quantiles
  /// extracted from each window histogram.
  [[nodiscard]] TimeSeriesReport report() const;

 private:
  struct Cell {
    std::uint64_t count = 0;
    std::unique_ptr<Log2Histogram> hist;  ///< lazily created on first sample
  };

  Cell& cell_at(const std::string& name, tilesim::ps_t vt);

  tilesim::ps_t window_ps_;
  mutable std::mutex mu_;
  tilesim::ps_t epoch_base_ps_ = 0;
  std::map<std::string, std::map<std::uint64_t, Cell>> series_;
  std::function<void()> flush_hook_;  ///< guarded by mu_; run outside it
};

/// Writes the `tshmem.timeseries.v1` JSON document: schema, window width,
/// and every series timeline with per-window counts and quantiles. Keys are
/// emitted in a fixed order so byte-level diffs are meaningful.
void write_timeseries_json(std::ostream& os, const TimeSeriesReport& report);

/// Null-safe sanctioned entry points (the only way code outside src/obs/
/// may mutate a TimeSeries — lint rule R006).
inline void ts_add(TimeSeries* ts, const std::string& name, tilesim::ps_t vt,
                   std::uint64_t delta = 1) {
  if (ts != nullptr) ts->series_add(name, vt, delta);
}

inline void ts_sample(TimeSeries* ts, const std::string& name,
                      tilesim::ps_t vt, std::uint64_t value) {
  if (ts != nullptr) ts->series_sample(name, vt, value);
}

}  // namespace obs
