#include "obs/quantiles.hpp"

#include <algorithm>
#include <stdexcept>

namespace obs {

namespace {

struct BucketView {
  int bucket;
  std::uint64_t count;
};

/// Shared engine: type-7 (linear interpolation between order statistics)
/// quantile over log2 buckets. `buckets` must be ascending by index and
/// hold only non-zero counts summing to `total`.
std::uint64_t quantile_engine(const BucketView* buckets, std::size_t nbuckets,
                              std::uint64_t total, std::uint64_t lo,
                              std::uint64_t hi, double q) {
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("histogram_quantile: q outside [0, 1]");
  }
  if (total == 0 || nbuckets == 0) return 0;
  // Rank of the interpolated order statistic among N sorted samples. The
  // extreme order statistics are known exactly from the envelope — the
  // first sample IS the min and the last IS the max — which also tames
  // the top bucket, whose nominal range would otherwise dominate.
  const double rank = q * static_cast<double>(total - 1);
  if (rank <= 0.0) return lo;
  if (rank >= static_cast<double>(total - 1)) return hi;
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < nbuckets; ++i) {
    const std::uint64_t n = buckets[i].count;
    const double last_in_bucket = static_cast<double>(before + n - 1);
    if (rank <= last_in_bucket) {
      // Spread the bucket's samples uniformly across its value range and
      // interpolate. Within-bucket position in [0, 1]:
      const double pos =
          n > 1 ? (rank - static_cast<double>(before)) /
                      static_cast<double>(n - 1)
                : 0.5;
      const std::uint64_t lower = Log2Histogram::bucket_lower(buckets[i].bucket);
      std::uint64_t upper = Log2Histogram::bucket_upper(buckets[i].bucket);
      // The exact envelope tightens the edge buckets (and tames bucket 64,
      // whose nominal upper bound is 2^64 - 1).
      upper = std::min(upper, hi);
      const std::uint64_t lo_b = std::max(lower, lo);
      if (upper <= lo_b) return std::clamp(lo_b, lo, hi);
      const double v = static_cast<double>(lo_b) +
                       pos * static_cast<double>(upper - lo_b);
      return std::clamp(static_cast<std::uint64_t>(v), lo, hi);
    }
    before += n;
  }
  return hi;  // q == 1 or floating-point slop past the last bucket
}

}  // namespace

std::uint64_t histogram_quantile(const Log2Histogram& h, double q) {
  BucketView views[Log2Histogram::kBuckets];
  std::size_t n = 0;
  for (int b = 0; b < Log2Histogram::kBuckets; ++b) {
    const std::uint64_t c = h.bucket_count(b);
    if (c > 0) views[n++] = BucketView{b, c};
  }
  const std::uint64_t total = h.count();
  const std::uint64_t lo = total > 0 ? h.min() : 0;
  return quantile_engine(views, n, total, lo, h.max(), q);
}

std::uint64_t histogram_quantile(const HistogramSample& s, double q) {
  std::vector<BucketView> views;
  views.reserve(s.buckets.size());
  for (const HistogramBucket& b : s.buckets) {
    if (b.count > 0) views.push_back(BucketView{b.bucket, b.count});
  }
  return quantile_engine(views.data(), views.size(), s.count, s.min, s.max,
                         q);
}

LatencyQuantiles latency_quantiles(const Log2Histogram& h) {
  return LatencyQuantiles{histogram_quantile(h, 0.50),
                          histogram_quantile(h, 0.99),
                          histogram_quantile(h, 0.999)};
}

LatencyQuantiles latency_quantiles(const HistogramSample& s) {
  return LatencyQuantiles{histogram_quantile(s, 0.50),
                          histogram_quantile(s, 0.99),
                          histogram_quantile(s, 0.999)};
}

}  // namespace obs
