#include "obs/timeseries.hpp"

#include <ostream>
#include <stdexcept>

#include "obs/exporters.hpp"
#include "obs/quantiles.hpp"

namespace obs {

TimeSeries::TimeSeries(tilesim::ps_t window_ps) : window_ps_(window_ps) {
  if (window_ps <= 0) {
    throw std::invalid_argument("TimeSeries window_ps must be positive");
  }
}

TimeSeries::Cell& TimeSeries::cell_at(const std::string& name,
                                      tilesim::ps_t vt) {
  const auto folded = static_cast<std::uint64_t>(epoch_base_ps_ + vt);
  const std::uint64_t window =
      folded / static_cast<std::uint64_t>(window_ps_);
  return series_[name][window];
}

void TimeSeries::series_add(const std::string& name, tilesim::ps_t vt,
                            std::uint64_t delta) {
  std::scoped_lock lk(mu_);
  cell_at(name, vt).count += delta;
}

void TimeSeries::series_sample(const std::string& name, tilesim::ps_t vt,
                               std::uint64_t value) {
  std::scoped_lock lk(mu_);
  Cell& c = cell_at(name, vt);
  c.count += 1;
  if (!c.hist) c.hist = std::make_unique<Log2Histogram>();
  c.hist->record(value);
}

void TimeSeries::series_add_window(const std::string& name,
                                   std::uint64_t window_index,
                                   std::uint64_t delta) {
  std::scoped_lock lk(mu_);
  series_[name][window_index].count += delta;
}

void TimeSeries::set_flush_hook(std::function<void()> hook) {
  std::scoped_lock lk(mu_);
  flush_hook_ = std::move(hook);
}

void TimeSeries::fold_epoch(tilesim::ps_t extent) {
  std::scoped_lock lk(mu_);
  epoch_base_ps_ += extent;
}

tilesim::ps_t TimeSeries::epoch_base_ps() const {
  std::scoped_lock lk(mu_);
  return epoch_base_ps_;
}

TimeSeriesReport TimeSeries::report() const {
  // Run the flush hook (the FlightRecorder's batched tap) outside mu_ —
  // flushing re-enters through series_add_window, which locks it.
  std::function<void()> hook;
  {
    std::scoped_lock lk(mu_);
    hook = flush_hook_;
  }
  if (hook) hook();
  std::scoped_lock lk(mu_);
  TimeSeriesReport rep;
  rep.window_ps = window_ps_;
  rep.series.reserve(series_.size());
  for (const auto& [name, windows] : series_) {
    SeriesTimeline tl;
    tl.name = name;
    tl.windows.reserve(windows.size());
    for (const auto& [index, cell] : windows) {
      SeriesWindow w;
      w.index = index;
      w.start_ps = static_cast<tilesim::ps_t>(
          index * static_cast<std::uint64_t>(window_ps_));
      w.count = cell.count;
      if (cell.hist && cell.hist->count() > 0) {
        w.has_samples = true;
        w.sum = cell.hist->sum();
        w.min = cell.hist->min();
        w.max = cell.hist->max();
        const LatencyQuantiles q = latency_quantiles(*cell.hist);
        w.p50 = q.p50;
        w.p99 = q.p99;
        w.p999 = q.p999;
      }
      tl.total_count += cell.count;
      tl.windows.push_back(w);
    }
    rep.series.push_back(std::move(tl));
  }
  return rep;
}

void write_timeseries_json(std::ostream& os, const TimeSeriesReport& report) {
  os << "{\"schema\": \"" << kTimeseriesSchema << "\",\n";
  os << " \"window_ps\": " << report.window_ps << ",\n";
  os << " \"series\": [";
  bool first_series = true;
  for (const SeriesTimeline& tl : report.series) {
    if (!first_series) os << ",";
    first_series = false;
    os << "\n  {\"name\": \"" << json_escape(tl.name) << "\", "
       << "\"total_count\": " << tl.total_count << ", \"windows\": [";
    bool first_window = true;
    for (const SeriesWindow& w : tl.windows) {
      if (!first_window) os << ",";
      first_window = false;
      os << "\n    {\"index\": " << w.index << ", \"start_ps\": "
         << w.start_ps << ", \"count\": " << w.count;
      if (w.has_samples) {
        os << ", \"sum\": " << w.sum << ", \"min\": " << w.min
           << ", \"max\": " << w.max << ", \"p50\": " << w.p50
           << ", \"p99\": " << w.p99 << ", \"p999\": " << w.p999;
      }
      os << "}";
    }
    os << "]}";
  }
  os << "\n ]}\n";
}

}  // namespace obs
