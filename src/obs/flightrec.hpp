// Per-PE flight recorder: fixed-capacity ring buffers of compact event
// records, plus the tshmem.blackbox.v1 post-mortem dump (ISSUE 9 tentpole).
//
// The recorder is the only implementation of tilesim::FlightSink
// (sim/flight_hook.hpp). Each PE owns a ring of `capacity` FrEvent records;
// recording overwrites the oldest. Because every event is reported from the
// owning PE's thread in program order with that PE's own virtual time, ring
// contents are deterministic across host schedules for deterministic
// protocols — the property the blackbox dump relies on to be a faithful
// reproduction artifact.
//
// Epoch model: virtual times arrive epoch-local; at every
// Device::reset_clocks() the recorder folds the finished epoch (max tile
// clock) into epoch_base_ps_, so stored vts form one monotone timeline per
// run and cross-PE merges are meaningful. The fold is forwarded to the
// optional TimeSeries tap, which also receives one "event.<kind>" count per
// recorded event.
//
// Zero virtual cost: nothing here touches a SimClock; the recorder-on/off
// bit-identity loop in tools/ci.sh enforces it. Mutation outside src/obs/
// must go through obs::fr_record / tilesim::flight_event (lint rule R006).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "sim/flight_hook.hpp"

namespace obs {

class TimeSeries;

/// One recorded event. `vt` is epoch-folded (monotone within a run).
struct FrEvent {
  tilesim::ps_t vt = 0;
  std::uint64_t seq = 0;  ///< per-PE monotone ordinal (0-based)
  int pe = 0;
  tilesim::FlightKind kind = tilesim::FlightKind::kPut;
  const char* site = "";
  std::int32_t peer = -1;
  std::uint64_t bytes = 0;
  std::int32_t errc = 0;
};

class FlightRecorder final : public tilesim::FlightSink {
 public:
  static constexpr std::size_t kDefaultCapacity = 256;

  /// Standalone form (the svc serve loop, unit tests): `npes` rings, no
  /// device — on_clock_reset folds nothing (there are no tile clocks).
  explicit FlightRecorder(int npes,
                          std::size_t capacity = kDefaultCapacity);

  /// Device-attached form: on_clock_reset reads every tile's final clock
  /// (legal — reset_clocks runs single-threaded) and folds the max into
  /// the epoch base. One ring per tile.
  explicit FlightRecorder(const tilesim::Device& device,
                          std::size_t capacity = kDefaultCapacity);

  /// Flushes and detaches the tap (equivalent to set_tap(nullptr)).
  ~FlightRecorder() override;

  // tilesim::FlightSink
  void on_event(int tile, tilesim::FlightKind kind, const char* site,
                tilesim::ps_t vt, int peer, std::uint64_t bytes,
                int errc) override;
  void on_clock_reset() override;

  /// Raw mutator (lint rule R006): records one event with an epoch-local
  /// `vt`. Call through obs::fr_record / tilesim::flight_event outside
  /// src/obs/.
  void record_event(int pe, tilesim::FlightKind kind, const char* site,
                    tilesim::ps_t vt, int peer, std::uint64_t bytes,
                    int errc);

  /// Forward every recorded event as an "event.<kind>" count (and every
  /// epoch fold) to `ts`. Counts are batched per (PE, kind, window) in the
  /// hot path and flushed as window aggregates when a PE's window
  /// advances, when the tap is detached, and — via the flush hook this
  /// registers on `ts` — at the top of every TimeSeries::report(), so
  /// reports reconcile exactly regardless of call site. The tap must
  /// outlive the attachment (the destructor detaches). Pass nullptr to
  /// flush and detach.
  void set_tap(TimeSeries* ts);

  [[nodiscard]] int npes() const noexcept { return npes_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  [[nodiscard]] tilesim::ps_t epoch_base_ps() const;

  /// Events ever recorded for `pe` (ring overwrites don't decrement).
  [[nodiscard]] std::uint64_t total_recorded(int pe) const;

  /// Surviving events of one PE, oldest to newest.
  [[nodiscard]] std::vector<FrEvent> snapshot(int pe) const;

  /// All PEs' surviving events merged by (vt, pe, seq).
  [[nodiscard]] std::vector<FrEvent> merged() const;

 private:
  // Single-writer ring: the FlightSink contract guarantees every event for
  // one PE is reported from that PE's own thread, so the write path needs
  // no lock — slot stores are published by a release store of next_seq,
  // and a concurrent snapshot drops any prefix the writer may have
  // overwritten during the copy (see snapshot()). A mutex here measurably
  // throttles put-heavy benches (one lock per shmem op per PE).
  // Batched tap counts for one PE: events land in counts[kind] for the
  // PE's current window and are flushed to the TimeSeries as one
  // series_add_window per (kind, window). Written only by the owning PE's
  // thread; read by flush_tap(), which runs only at quiesced points (tap
  // detach, TimeSeries::report() after PEs join).
  struct TapCell {
    std::uint64_t window = 0;
    bool dirty = false;
    std::array<std::uint64_t, tilesim::kFlightKindCount> counts{};
  };

  struct PeRing {
    std::vector<FrEvent> ring;  ///< capacity_ slots, seq % capacity_
    std::atomic<std::uint64_t> next_seq{0};
    TapCell tap;
  };

  void flush_cell(PeRing& r);
  void flush_tap();

  int npes_;
  std::size_t capacity_;
  const tilesim::Device* device_ = nullptr;
  TimeSeries* tap_ = nullptr;
  tilesim::ps_t tap_window_ps_ = 0;  ///< cached tap_->window_ps()
  // Atomic, not mutex-guarded: record_event reads it on every event from
  // every PE thread (a shared mutex here measurably throttles put-heavy
  // benches), while stores only happen at the single-threaded safe points
  // on_clock_reset() is contractually confined to.
  std::atomic<tilesim::ps_t> epoch_base_ps_{0};
  std::vector<std::unique_ptr<PeRing>> rings_;
};

/// Null-safe sanctioned entry point (the only way code outside src/obs/
/// may mutate a FlightRecorder directly — lint rule R006). Prefer
/// tilesim::flight_event when a Device is at hand.
inline void fr_record(FlightRecorder* fr, int pe, tilesim::FlightKind kind,
                      const char* site, tilesim::ps_t vt, int peer = -1,
                      std::uint64_t bytes = 0, int errc = 0) {
  if (fr != nullptr) fr->record_event(pe, kind, site, vt, peer, bytes, errc);
}

inline constexpr const char* kBlackboxSchema = "tshmem.blackbox.v1";

/// Context of a post-mortem dump: why it was taken and what the runtime
/// knew at that moment.
struct BlackboxInfo {
  std::string reason;     ///< human-readable trigger description
  int errc = 0;           ///< tshmem::Errc value (0 when not an Error)
  std::string errc_name;  ///< tshmem::errc_name(errc) (empty when 0)
  std::string board;      ///< per-PE diagnostic board (watchdog_report)
  std::string fault_plan; ///< active TSHMEM_FAULT_PLAN spec ("" when none)
  std::string source = "runtime";  ///< "runtime" or "svc"
};

/// Writes the `tshmem.blackbox.v1` JSON document: the trigger info, every
/// PE's surviving ring (oldest to newest), and the merged cross-PE
/// timeline. Keys are emitted in a fixed order.
void write_blackbox_json(std::ostream& os, const FlightRecorder& fr,
                         const BlackboxInfo& info);

}  // namespace obs
