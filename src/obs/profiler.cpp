#include "obs/profiler.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <ostream>
#include <tuple>

namespace obs {

namespace {

using tilesim::ProfPhase;
using tilesim::kProfPhaseCount;

// Per-epoch caps: a runaway workload must degrade (dropped counters) rather
// than exhaust host memory.
constexpr std::size_t kMaxTimeline = std::size_t{1} << 20;
constexpr std::size_t kMaxEdges = std::size_t{1} << 20;
constexpr std::size_t kMaxStack = 256;
constexpr std::size_t kMaxPathSegments = 512;

/// Saturating a - b for unsigned virtual time.
[[nodiscard]] ps_t sub_sat(ps_t a, ps_t b) noexcept {
  return a > b ? a - b : 0;
}

}  // namespace

Profiler::Profiler(const tilesim::Device& device) : device_(&device) {
  const int n = device.tile_count();
  pes_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    pes_.push_back(std::make_unique<PeState>());
  }
}

Profiler::~Profiler() = default;

void Profiler::on_span_begin(int tile, ProfPhase phase, const char* site,
                             ps_t now) {
  PeState& st = *pes_[static_cast<std::size_t>(tile)];
  std::scoped_lock lk(st.mu);
  if (st.epoch.stack.size() >= kMaxStack ||
      st.epoch.timeline.size() >= kMaxTimeline) {
    ++st.cum.dropped;
    // Push a sentinel frame anyway so the matching on_span_end stays
    // balanced (it is attributed, just without a timeline entry).
    if (st.epoch.stack.size() < 2 * kMaxStack) {
      st.epoch.stack.push_back({phase, site, now, 0});
    }
    return;
  }
  st.epoch.stack.push_back({phase, site, now, 0});
  st.epoch.timeline.emplace_back(now, static_cast<std::uint8_t>(phase));
}

void Profiler::on_span_end(int tile, ps_t now) {
  PeState& st = *pes_[static_cast<std::size_t>(tile)];
  std::scoped_lock lk(st.mu);
  if (st.epoch.stack.empty()) {
    ++st.cum.dropped;  // unbalanced end (reset mid-span); nothing to close
    return;
  }
  const OpenSpan top = st.epoch.stack.back();
  st.epoch.stack.pop_back();
  const ps_t dur = sub_sat(now, top.begin_ps);
  const ps_t self = sub_sat(dur, top.child_ps);

  ProfileSite& agg =
      st.cum.agg[{static_cast<std::uint8_t>(top.phase), top.site}];
  agg.calls += 1;
  agg.self_ps += self;
  agg.total_ps += dur;

  std::string key = "pe" + std::to_string(tile);
  for (const OpenSpan& s : st.epoch.stack) {
    key += ';';
    key += tilesim::prof_phase_name(s.phase);
    key += ':';
    key += s.site;
  }
  key += ';';
  key += tilesim::prof_phase_name(top.phase);
  key += ':';
  key += top.site;
  st.cum.folded[key] += self;

  if (!st.epoch.stack.empty()) {
    st.epoch.stack.back().child_ps += dur;
  }
  if (st.epoch.timeline.size() < kMaxTimeline) {
    const std::uint8_t outer =
        st.epoch.stack.empty()
            ? static_cast<std::uint8_t>(ProfPhase::kCompute)
            : static_cast<std::uint8_t>(st.epoch.stack.back().phase);
    st.epoch.timeline.emplace_back(now, outer);
  } else {
    ++st.cum.dropped;
  }
}

void Profiler::on_wait_edge(int tile, int src_tile, ProfPhase fallback,
                            const char* site, ps_t from_ps, ps_t to_ps) {
  PeState& st = *pes_[static_cast<std::size_t>(tile)];
  std::scoped_lock lk(st.mu);
  if (st.epoch.edges.size() >= kMaxEdges) {
    ++st.cum.dropped;
    return;
  }
  const ProfPhase phase =
      st.epoch.stack.empty() ? fallback : st.epoch.stack.back().phase;
  st.epoch.edges.push_back({src_tile, phase, site, from_ps, to_ps});
}

namespace {

/// Integrates a timeline's piecewise-constant innermost phase over
/// [from, to] into `out`. Phase before the first change point is kCompute.
void integrate(const std::vector<std::pair<ps_t, std::uint8_t>>& timeline,
               ps_t from, ps_t to, std::array<ps_t, kProfPhaseCount>& out) {
  if (to <= from) return;
  ps_t cursor = from;
  std::uint8_t phase = static_cast<std::uint8_t>(ProfPhase::kCompute);
  for (const auto& [t, p] : timeline) {
    if (t <= cursor) {
      phase = p;
      continue;
    }
    const ps_t seg_end = std::min(t, to);
    if (seg_end > cursor) {
      out[phase] += seg_end - cursor;
      cursor = seg_end;
    }
    phase = p;
    if (cursor >= to) break;
  }
  if (to > cursor) out[phase] += to - cursor;
}

[[nodiscard]] int argmax_phase(
    const std::array<ps_t, kProfPhaseCount>& a) noexcept {
  int best = 0;
  for (int i = 1; i < kProfPhaseCount; ++i) {
    if (a[static_cast<std::size_t>(i)] > a[static_cast<std::size_t>(best)]) {
      best = i;
    }
  }
  return best;
}

}  // namespace

void Profiler::critical_path(
    const std::vector<ps_t>& final_vts, const std::vector<PeEpoch>& epochs,
    ps_t total, std::vector<CritSegment>& path,
    std::array<ps_t, kProfPhaseCount>& attr) {
  path.clear();
  attr.fill(0);
  if (total == 0) return;
  const int npes = static_cast<int>(epochs.size());

  int pe = 0;
  for (int i = 1; i < npes; ++i) {
    if (final_vts[static_cast<std::size_t>(i)] >
        final_vts[static_cast<std::size_t>(pe)]) {
      pe = i;
    }
  }
  ps_t t = total;
  std::vector<std::size_t> cursor(static_cast<std::size_t>(npes));
  for (int i = 0; i < npes; ++i) {
    cursor[static_cast<std::size_t>(i)] =
        epochs[static_cast<std::size_t>(i)].edges.size();
  }

  // Emits a local (executing) segment [a, b] on `who`, attributed to the
  // dominant innermost phase over the interval.
  const auto emit_local = [&](int who, ps_t a, ps_t b) {
    if (b <= a) return;
    std::array<ps_t, kProfPhaseCount> local{};
    integrate(epochs[static_cast<std::size_t>(who)].timeline, a, b, local);
    for (int p = 0; p < kProfPhaseCount; ++p) {
      attr[static_cast<std::size_t>(p)] += local[static_cast<std::size_t>(p)];
    }
    const int dom = argmax_phase(local);
    path.push_back({"local", who, -1,
                    tilesim::prof_phase_name(static_cast<ProfPhase>(dom)), "",
                    a, b});
  };

  // Backward walk: from the last-finishing PE at `total`, follow the most
  // recent wait edge ending at-or-before the frontier; cross-PE edges hop
  // to the producer, self/unknown edges stay (the wait itself is on-path).
  while (path.size() < kMaxPathSegments && t > 0) {
    const auto& edges = epochs[static_cast<std::size_t>(pe)].edges;
    std::size_t& cur = cursor[static_cast<std::size_t>(pe)];
    std::size_t idx = cur;
    while (idx > 0 && edges[idx - 1].to_ps > t) --idx;
    if (idx == 0) {
      emit_local(pe, 0, t);
      break;
    }
    const Edge& e = edges[idx - 1];
    cur = idx - 1;
    emit_local(pe, e.to_ps, t);
    path.push_back({"wait", pe, e.src, tilesim::prof_phase_name(e.phase),
                    e.site, e.from_ps, e.to_ps});
    const bool hop = e.src >= 0 && e.src < npes && e.src != pe;
    if (hop) {
      // The producer's activity covers this interval; the wait segment is
      // attribution metadata, not on-path time (no double counting).
      pe = e.src;
      t = e.to_ps;
    } else {
      attr[static_cast<std::size_t>(e.phase)] += sub_sat(e.to_ps, e.from_ps);
      t = e.from_ps;
    }
  }
  std::reverse(path.begin(), path.end());
}

void Profiler::fold_epoch(const std::vector<ps_t>& final_vts,
                          std::vector<PeEpoch>& epochs,
                          std::vector<PeCum*>& cum, Globals& g) {
  const int npes = static_cast<int>(epochs.size());
  ps_t total = 0;
  for (const ps_t v : final_vts) total = std::max(total, v);

  for (int i = 0; i < npes; ++i) {
    PeEpoch& ep = epochs[static_cast<std::size_t>(i)];
    PeCum& c = *cum[static_cast<std::size_t>(i)];
    const ps_t fin = final_vts[static_cast<std::size_t>(i)];

    // Force-close any spans still open at the epoch boundary at `fin`
    // (attributing their time), innermost first.
    while (!ep.stack.empty()) {
      const OpenSpan top = ep.stack.back();
      ep.stack.pop_back();
      const ps_t dur = sub_sat(fin, top.begin_ps);
      const ps_t self = sub_sat(dur, top.child_ps);
      ProfileSite& agg =
          c.agg[{static_cast<std::uint8_t>(top.phase), top.site}];
      agg.calls += 1;
      agg.self_ps += self;
      agg.total_ps += dur;
      std::string key = "pe" + std::to_string(i);
      for (const OpenSpan& s : ep.stack) {
        key += ';';
        key += tilesim::prof_phase_name(s.phase);
        key += ':';
        key += s.site;
      }
      key += ';';
      key += tilesim::prof_phase_name(top.phase);
      key += ':';
      key += top.site;
      c.folded[key] += self;
      if (!ep.stack.empty()) ep.stack.back().child_ps += dur;
      const std::uint8_t outer =
          ep.stack.empty()
              ? static_cast<std::uint8_t>(ProfPhase::kCompute)
              : static_cast<std::uint8_t>(ep.stack.back().phase);
      ep.timeline.emplace_back(fin, outer);
    }

    std::array<ps_t, kProfPhaseCount> epoch_phase{};
    integrate(ep.timeline, 0, fin, epoch_phase);
    for (int p = 0; p < kProfPhaseCount; ++p) {
      c.phase_ps[static_cast<std::size_t>(p)] +=
          epoch_phase[static_cast<std::size_t>(p)];
    }
    // The compute residual (time under no span) gets an explicit site so
    // it shows up in the site table and flamegraph alongside real spans.
    const ps_t residual = epoch_phase[static_cast<std::size_t>(
        ProfPhase::kCompute)];
    if (residual > 0) {
      ProfileSite& agg = c.agg[{
          static_cast<std::uint8_t>(ProfPhase::kCompute), "compute"}];
      agg.calls += 1;
      agg.self_ps += residual;
      agg.total_ps += residual;
      c.folded["pe" + std::to_string(i) + ";compute"] += residual;
    }

    for (const Edge& e : ep.edges) {
      auto& [count, wait] = c.edge_agg[{e.src, e.site}];
      count += 1;
      wait += sub_sat(e.to_ps, e.from_ps);
    }
  }

  if (total > 0) {
    g.total_vt_ps += total;
    g.epochs += 1;
    if (total > g.best_epoch_vt) {
      g.best_epoch_vt = total;
      critical_path(final_vts, epochs, total, g.best_path, g.best_crit);
    }
  }
}

std::vector<ps_t> Profiler::final_clock_snapshot() const {
  std::vector<ps_t> vts(pes_.size(), 0);
  for (std::size_t i = 0; i < pes_.size(); ++i) {
    vts[i] = device_->tile(static_cast<int>(i)).clock().now();
    const PeEpoch& ep = pes_[i]->epoch;
    if (!ep.timeline.empty()) {
      vts[i] = std::max(vts[i], ep.timeline.back().first);
    }
    if (!ep.edges.empty()) {
      vts[i] = std::max(vts[i], ep.edges.back().to_ps);
    }
  }
  return vts;
}

void Profiler::on_clock_reset() {
  std::scoped_lock g_lk(global_mu_);
  // Single-threaded safe point (Device::reset_clocks contract): tile
  // clocks still hold the finished epoch's final values.
  std::vector<ps_t> final_vts = final_clock_snapshot();

  bool empty = true;
  for (std::size_t i = 0; i < pes_.size() && empty; ++i) {
    std::scoped_lock lk(pes_[i]->mu);
    const PeEpoch& ep = pes_[i]->epoch;
    if (final_vts[i] != 0 || !ep.timeline.empty() || !ep.edges.empty() ||
        !ep.stack.empty()) {
      empty = false;
    }
  }
  if (empty) return;  // back-to-back resets; not a measured epoch

  std::vector<PeEpoch> moved(pes_.size());
  std::vector<PeCum*> cum(pes_.size());
  for (std::size_t i = 0; i < pes_.size(); ++i) {
    PeState& st = *pes_[i];
    std::scoped_lock lk(st.mu);
    moved[i] = std::move(st.epoch);
    st.epoch = PeEpoch{};
    // Spans that stay open across the reset restart at virtual time zero
    // in the new epoch.
    for (const OpenSpan& s : moved[i].stack) {
      st.epoch.stack.push_back({s.phase, s.site, 0, 0});
      st.epoch.timeline.emplace_back(0, static_cast<std::uint8_t>(s.phase));
    }
    cum[i] = &st.cum;
  }
  fold_epoch(final_vts, moved, cum, globals_);
}

ProfileReport Profiler::report() const {
  std::scoped_lock g_lk(global_mu_);
  // Copy everything, then fold the still-open tail epoch on the copies so
  // the live state is untouched (more runs may follow this report).
  Globals g = globals_;
  std::vector<PeEpoch> epochs(pes_.size());
  std::vector<PeCum> cums(pes_.size());
  for (std::size_t i = 0; i < pes_.size(); ++i) {
    std::scoped_lock lk(pes_[i]->mu);
    epochs[i] = pes_[i]->epoch;
    cums[i] = pes_[i]->cum;
  }
  std::vector<ps_t> final_vts = final_clock_snapshot();

  bool tail = false;
  for (std::size_t i = 0; i < pes_.size() && !tail; ++i) {
    if (final_vts[i] != 0 || !epochs[i].timeline.empty() ||
        !epochs[i].edges.empty() || !epochs[i].stack.empty()) {
      tail = true;
    }
  }
  if (tail) {
    std::vector<PeCum*> cum_ptrs(pes_.size());
    for (std::size_t i = 0; i < pes_.size(); ++i) cum_ptrs[i] = &cums[i];
    fold_epoch(final_vts, epochs, cum_ptrs, g);
  }

  ProfileReport r;
  r.npes = static_cast<int>(pes_.size());
  r.epochs = g.epochs;
  r.total_vt_ps = g.total_vt_ps;

  std::map<std::pair<std::uint8_t, std::string>, ProfileSite> site_merge;
  std::map<std::tuple<int, int, std::string>, std::pair<std::uint64_t, ps_t>>
      edge_merge;
  for (std::size_t i = 0; i < cums.size(); ++i) {
    const PeCum& c = cums[i];
    r.dropped_events += c.dropped;
    ps_t pe_total = 0;
    for (int p = 0; p < kProfPhaseCount; ++p) {
      const ps_t v = c.phase_ps[static_cast<std::size_t>(p)];
      r.phase_ps[static_cast<std::size_t>(p)] += v;
      pe_total += v;
    }
    if (pe_total > 0) {
      r.pe_phase_ps.emplace_back(static_cast<int>(i), c.phase_ps);
    }
    for (const auto& [key, site] : c.agg) {
      ProfileSite& m = site_merge[key];
      m.calls += site.calls;
      m.self_ps += site.self_ps;
      m.total_ps += site.total_ps;
    }
    for (const auto& [key, val] : c.edge_agg) {
      auto& [count, wait] =
          edge_merge[{static_cast<int>(i), key.first, key.second}];
      count += val.first;
      wait += val.second;
    }
    for (const auto& [key, ps] : c.folded) r.folded[key] += ps;
  }

  for (const auto& [key, site] : site_merge) {
    ProfileSite s = site;
    s.phase = tilesim::prof_phase_name(static_cast<ProfPhase>(key.first));
    s.site = key.second;
    r.sites.push_back(std::move(s));
  }
  std::sort(r.sites.begin(), r.sites.end(),
            [](const ProfileSite& a, const ProfileSite& b) {
              if (a.total_ps != b.total_ps) return a.total_ps > b.total_ps;
              if (a.phase != b.phase) return a.phase < b.phase;
              return a.site < b.site;
            });

  for (const auto& [key, val] : edge_merge) {
    ProfileWaitEdge e;
    e.dst_pe = std::get<0>(key);
    e.src_pe = std::get<1>(key);
    e.site = std::get<2>(key);
    e.count = val.first;
    e.wait_ps = val.second;
    r.top_edges.push_back(std::move(e));
  }
  std::sort(r.top_edges.begin(), r.top_edges.end(),
            [](const ProfileWaitEdge& a, const ProfileWaitEdge& b) {
              if (a.wait_ps != b.wait_ps) return a.wait_ps > b.wait_ps;
              if (a.dst_pe != b.dst_pe) return a.dst_pe < b.dst_pe;
              if (a.src_pe != b.src_pe) return a.src_pe < b.src_pe;
              return a.site < b.site;
            });
  if (r.top_edges.size() > top_k_) r.top_edges.resize(top_k_);

  r.crit_epoch_vt_ps = g.best_epoch_vt;
  r.critical_path = std::move(g.best_path);
  r.crit_phase_ps = g.best_crit;
  ps_t crit_sum = 0;
  for (const ps_t v : r.crit_phase_ps) crit_sum += v;
  const int dom = argmax_phase(r.crit_phase_ps);
  r.dominant_phase = tilesim::prof_phase_name(static_cast<ProfPhase>(dom));
  r.dominant_share =
      crit_sum > 0 ? static_cast<double>(
                         r.crit_phase_ps[static_cast<std::size_t>(dom)]) /
                         static_cast<double>(crit_sum)
                   : 0.0;
  return r;
}

// ===========================================================================
// Exporters
// ===========================================================================

namespace {

[[nodiscard]] std::string fixed6(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

void write_profile_json(std::ostream& os, const ProfileReport& r) {
  os << "{\n  \"schema\": \"" << kProfileSchema << "\",\n";
  os << "  \"npes\": " << r.npes << ",\n";
  os << "  \"epochs\": " << r.epochs << ",\n";
  os << "  \"total_vt_ps\": " << r.total_vt_ps << ",\n";
  os << "  \"dropped_events\": " << r.dropped_events << ",\n";

  os << "  \"phases\": [";
  for (int p = 0; p < kProfPhaseCount; ++p) {
    os << (p == 0 ? "\n" : ",\n") << "    {\"phase\": \""
       << tilesim::prof_phase_name(static_cast<ProfPhase>(p))
       << "\", \"total_ps\": " << r.phase_ps[static_cast<std::size_t>(p)]
       << "}";
  }
  os << "\n  ],\n";

  os << "  \"pes\": [";
  for (std::size_t i = 0; i < r.pe_phase_ps.size(); ++i) {
    const auto& [pe, phases] = r.pe_phase_ps[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"pe\": " << pe << ", \"phases\": {";
    for (int p = 0; p < kProfPhaseCount; ++p) {
      os << (p == 0 ? "" : ", ") << "\""
         << tilesim::prof_phase_name(static_cast<ProfPhase>(p))
         << "\": " << phases[static_cast<std::size_t>(p)];
    }
    os << "}}";
  }
  os << (r.pe_phase_ps.empty() ? "" : "\n  ") << "],\n";

  os << "  \"sites\": [";
  for (std::size_t i = 0; i < r.sites.size(); ++i) {
    const ProfileSite& s = r.sites[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"phase\": \""
       << json_escape(s.phase) << "\", \"site\": \"" << json_escape(s.site)
       << "\", \"calls\": " << s.calls << ", \"self_ps\": " << s.self_ps
       << ", \"total_ps\": " << s.total_ps << "}";
  }
  os << (r.sites.empty() ? "" : "\n  ") << "],\n";

  os << "  \"top_wait_edges\": [";
  for (std::size_t i = 0; i < r.top_edges.size(); ++i) {
    const ProfileWaitEdge& e = r.top_edges[i];
    os << (i == 0 ? "\n" : ",\n") << "    {\"dst_pe\": " << e.dst_pe
       << ", \"src_pe\": " << e.src_pe << ", \"site\": \""
       << json_escape(e.site) << "\", \"count\": " << e.count
       << ", \"wait_ps\": " << e.wait_ps << "}";
  }
  os << (r.top_edges.empty() ? "" : "\n  ") << "],\n";

  os << "  \"critical_path\": {\n";
  os << "    \"epoch_vt_ps\": " << r.crit_epoch_vt_ps << ",\n";
  os << "    \"dominant_phase\": \"" << json_escape(r.dominant_phase)
     << "\",\n";
  os << "    \"dominant_share\": " << fixed6(r.dominant_share) << ",\n";
  os << "    \"phases\": [";
  for (int p = 0; p < kProfPhaseCount; ++p) {
    os << (p == 0 ? "\n" : ",\n") << "      {\"phase\": \""
       << tilesim::prof_phase_name(static_cast<ProfPhase>(p))
       << "\", \"ps\": " << r.crit_phase_ps[static_cast<std::size_t>(p)]
       << "}";
  }
  os << "\n    ],\n";
  os << "    \"segments\": [";
  for (std::size_t i = 0; i < r.critical_path.size(); ++i) {
    const CritSegment& s = r.critical_path[i];
    os << (i == 0 ? "\n" : ",\n") << "      {\"kind\": \""
       << json_escape(s.kind) << "\", \"pe\": " << s.pe
       << ", \"src_pe\": " << s.src_pe << ", \"phase\": \""
       << json_escape(s.phase) << "\", \"site\": \"" << json_escape(s.site)
       << "\", \"from_ps\": " << s.from_ps << ", \"to_ps\": " << s.to_ps
       << "}";
  }
  os << (r.critical_path.empty() ? "" : "\n    ") << "]\n";
  os << "  }\n}\n";
}

void write_profile_folded(std::ostream& os, const ProfileReport& r) {
  for (const auto& [stack, self_ps] : r.folded) {
    os << stack << ' ' << self_ps << '\n';
  }
}

std::vector<TraceFlow> profile_flow_events(const ProfileReport& r, int pid,
                                           std::uint64_t first_id) {
  std::vector<TraceFlow> flows;
  std::uint64_t id = first_id;
  for (const CritSegment& s : r.critical_path) {
    if (s.kind != "wait") continue;
    TraceFlow f;
    f.pid = pid;
    f.id = id++;
    f.name = s.site.empty() ? s.phase : s.site;
    f.src_tile = s.src_pe >= 0 ? s.src_pe : s.pe;
    f.src_ps = s.from_ps;
    f.dst_tile = s.pe;
    f.dst_ps = s.to_ps;
    flows.push_back(std::move(f));
  }
  return flows;
}

}  // namespace obs
