#include "obs/flightrec.hpp"

#include <algorithm>
#include <ostream>
#include <stdexcept>

#include "obs/exporters.hpp"
#include "obs/timeseries.hpp"

namespace obs {

namespace {

// Static "event.<kind>" series labels so the per-event tap does not
// allocate. Index = FlightKind value.
const std::string& event_series_name(tilesim::FlightKind kind) {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> v;
    v.reserve(tilesim::kFlightKindCount);
    for (int i = 0; i < tilesim::kFlightKindCount; ++i) {
      v.emplace_back(std::string("event.") +
                     fr_kind_name(static_cast<tilesim::FlightKind>(i)));
    }
    return v;
  }();
  return names[static_cast<std::size_t>(kind)];
}

}  // namespace

FlightRecorder::FlightRecorder(int npes, std::size_t capacity)
    : npes_(npes), capacity_(capacity) {
  if (npes < 1) throw std::invalid_argument("FlightRecorder: npes < 1");
  if (capacity < 1) {
    throw std::invalid_argument("FlightRecorder: capacity < 1");
  }
  rings_.reserve(static_cast<std::size_t>(npes));
  for (int i = 0; i < npes; ++i) {
    rings_.push_back(std::make_unique<PeRing>());
    rings_.back()->ring.resize(capacity);
  }
}

FlightRecorder::FlightRecorder(const tilesim::Device& device,
                               std::size_t capacity)
    : FlightRecorder(device.tile_count(), capacity) {
  device_ = &device;
}

FlightRecorder::~FlightRecorder() { set_tap(nullptr); }

void FlightRecorder::set_tap(TimeSeries* ts) {
  if (tap_ == ts) return;
  if (tap_ != nullptr) {
    flush_tap();
    tap_->set_flush_hook(nullptr);
  }
  tap_ = ts;
  tap_window_ps_ = 0;
  if (tap_ != nullptr) {
    tap_window_ps_ = tap_->window_ps();
    tap_->set_flush_hook([this] { flush_tap(); });
  }
}

void FlightRecorder::flush_cell(PeRing& r) {
  TapCell& c = r.tap;
  if (!c.dirty) return;
  for (int k = 0; k < tilesim::kFlightKindCount; ++k) {
    std::uint64_t& n = c.counts[static_cast<std::size_t>(k)];
    if (n == 0) continue;
    tap_->series_add_window(
        event_series_name(static_cast<tilesim::FlightKind>(k)), c.window, n);
    n = 0;
  }
  c.dirty = false;
}

void FlightRecorder::flush_tap() {
  if (tap_ == nullptr) return;
  for (const std::unique_ptr<PeRing>& r : rings_) flush_cell(*r);
}

void FlightRecorder::on_event(int tile, tilesim::FlightKind kind,
                              const char* site, tilesim::ps_t vt, int peer,
                              std::uint64_t bytes, int errc) {
  record_event(tile, kind, site, vt, peer, bytes, errc);
}

void FlightRecorder::on_clock_reset() {
  if (device_ == nullptr) return;
  // Single-threaded safe point (the FlightSink contract): every tile's
  // clock is final, so the finished epoch's extent is their max.
  tilesim::ps_t extent = 0;
  for (int i = 0; i < device_->tile_count(); ++i) {
    extent = std::max(extent, device_->tile(i).clock().now());
  }
  if (extent == 0) return;
  epoch_base_ps_.fetch_add(extent, std::memory_order_relaxed);
  if (tap_ != nullptr) tap_->fold_epoch(extent);
}

void FlightRecorder::record_event(int pe, tilesim::FlightKind kind,
                                  const char* site, tilesim::ps_t vt,
                                  int peer, std::uint64_t bytes, int errc) {
  if (pe < 0 || pe >= npes_) return;  // unattributed (standalone engines)
  const tilesim::ps_t folded =
      epoch_base_ps_.load(std::memory_order_relaxed) + vt;
  PeRing& r = *rings_[static_cast<std::size_t>(pe)];
  // Single writer (this PE's thread): plain slot stores, published by the
  // release store of next_seq below.
  const std::uint64_t seq = r.next_seq.load(std::memory_order_relaxed);
  FrEvent& slot = r.ring[static_cast<std::size_t>(seq % capacity_)];
  slot.vt = folded;
  slot.seq = seq;
  slot.pe = pe;
  slot.kind = kind;
  slot.site = site;
  slot.peer = peer;
  slot.bytes = bytes;
  slot.errc = static_cast<std::int32_t>(errc);
  r.next_seq.store(seq + 1, std::memory_order_release);
  if (tap_ != nullptr) {
    // Batched tap: bump the local (kind, window) count; flush the cell's
    // aggregates only when this PE's window advances. The window is
    // resolved here from the recorder's own fold (identical to the tap's —
    // folds are forwarded), so the flush path skips the epoch-base add.
    TapCell& c = r.tap;
    const std::uint64_t w = static_cast<std::uint64_t>(folded) /
                            static_cast<std::uint64_t>(tap_window_ps_);
    if (c.dirty && c.window != w) flush_cell(r);
    c.window = w;
    c.counts[static_cast<std::size_t>(kind)] += 1;
    c.dirty = true;
  }
}

tilesim::ps_t FlightRecorder::epoch_base_ps() const {
  return epoch_base_ps_.load(std::memory_order_relaxed);
}

std::uint64_t FlightRecorder::total_recorded(int pe) const {
  if (pe < 0 || pe >= npes_) return 0;
  const PeRing& r = *rings_[static_cast<std::size_t>(pe)];
  return r.next_seq.load(std::memory_order_acquire);
}

std::vector<FrEvent> FlightRecorder::snapshot(int pe) const {
  if (pe < 0 || pe >= npes_) {
    throw std::out_of_range("FlightRecorder::snapshot: pe out of range");
  }
  const PeRing& r = *rings_[static_cast<std::size_t>(pe)];
  // Lock-free read racing a lock-free writer: the acquire load makes
  // every slot below `n` fully visible; slots the writer overwrote while
  // we copied are exactly those whose seq fell below the post-copy window
  // start, so they are dropped. In practice dumps race a writer only when
  // a blackbox is taken while peer PEs still run; post-run snapshots see
  // a quiescent ring and lose nothing.
  std::vector<FrEvent> out;
  const std::uint64_t n = r.next_seq.load(std::memory_order_acquire);
  const std::uint64_t first = n > capacity_ ? n - capacity_ : 0;
  out.reserve(static_cast<std::size_t>(n - first));
  for (std::uint64_t s = first; s < n; ++s) {
    out.push_back(r.ring[static_cast<std::size_t>(s % capacity_)]);
  }
  const std::uint64_t n2 = r.next_seq.load(std::memory_order_acquire);
  const std::uint64_t safe_first = n2 > capacity_ ? n2 - capacity_ : 0;
  if (safe_first > first) {
    const std::uint64_t drop = std::min(safe_first - first,
                                        static_cast<std::uint64_t>(out.size()));
    out.erase(out.begin(),
              out.begin() + static_cast<std::ptrdiff_t>(drop));
  }
  return out;
}

std::vector<FrEvent> FlightRecorder::merged() const {
  std::vector<FrEvent> all;
  for (int pe = 0; pe < npes_; ++pe) {
    const std::vector<FrEvent> s = snapshot(pe);
    all.insert(all.end(), s.begin(), s.end());
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const FrEvent& a, const FrEvent& b) {
                     if (a.vt != b.vt) return a.vt < b.vt;
                     if (a.pe != b.pe) return a.pe < b.pe;
                     return a.seq < b.seq;
                   });
  return all;
}

namespace {

void write_event_json(std::ostream& os, const FrEvent& e) {
  os << "{\"vt\": " << e.vt << ", \"seq\": " << e.seq << ", \"pe\": "
     << e.pe << ", \"kind\": \"" << fr_kind_name(e.kind) << "\", \"site\": \""
     << json_escape(e.site) << "\", \"peer\": " << e.peer << ", \"bytes\": "
     << e.bytes << ", \"errc\": " << e.errc << "}";
}

}  // namespace

void write_blackbox_json(std::ostream& os, const FlightRecorder& fr,
                         const BlackboxInfo& info) {
  os << "{\"schema\": \"" << kBlackboxSchema << "\",\n";
  os << " \"source\": \"" << json_escape(info.source) << "\",\n";
  os << " \"reason\": \"" << json_escape(info.reason) << "\",\n";
  os << " \"errc\": " << info.errc << ",\n";
  os << " \"errc_name\": \"" << json_escape(info.errc_name) << "\",\n";
  os << " \"board\": \"" << json_escape(info.board) << "\",\n";
  os << " \"fault_plan\": \"" << json_escape(info.fault_plan) << "\",\n";
  os << " \"npes\": " << fr.npes() << ",\n";
  os << " \"capacity\": " << fr.capacity() << ",\n";
  os << " \"pes\": [";
  for (int pe = 0; pe < fr.npes(); ++pe) {
    if (pe != 0) os << ",";
    os << "\n  {\"pe\": " << pe << ", \"total_recorded\": "
       << fr.total_recorded(pe) << ", \"events\": [";
    const std::vector<FrEvent> events = fr.snapshot(pe);
    for (std::size_t i = 0; i < events.size(); ++i) {
      if (i != 0) os << ",";
      os << "\n    ";
      write_event_json(os, events[i]);
    }
    os << "]}";
  }
  os << "\n ],\n";
  os << " \"merged\": [";
  const std::vector<FrEvent> merged = fr.merged();
  for (std::size_t i = 0; i < merged.size(); ++i) {
    if (i != 0) os << ",";
    os << "\n  ";
    write_event_json(os, merged[i]);
  }
  os << "\n ]}\n";
}

}  // namespace obs
