// RAII virtual-time measurement into a metrics histogram.
//
// Reads a tile's SimClock at scope entry and exit and records the elapsed
// virtual time into a Log2Histogram (optionally bumping a call counter).
// Purely observational: it never advances the clock, so instrumented code
// produces bit-identical virtual-time results with metrics on or off.
#pragma once

#include "obs/metrics.hpp"
#include "sim/clock.hpp"

namespace obs {

class ScopedVtTimer {
 public:
  /// Null `hist` disables the timer entirely (the disabled-metrics path).
  ScopedVtTimer(const tilesim::SimClock& clock, Log2Histogram* hist,
                Counter* calls = nullptr)
      : clock_(&clock), hist_(hist), begin_(hist ? clock.now() : 0) {
    if (calls != nullptr && hist != nullptr) calls->inc();
  }

  ~ScopedVtTimer() {
    if (hist_ != nullptr) hist_->record(clock_->now() - begin_);
  }

  ScopedVtTimer(const ScopedVtTimer&) = delete;
  ScopedVtTimer& operator=(const ScopedVtTimer&) = delete;

 private:
  const tilesim::SimClock* clock_;
  Log2Histogram* hist_;
  ps_t begin_;
};

}  // namespace obs
