// Virtual-time metrics core (ISSUE 2 tentpole).
//
// The paper's evaluation is built on per-tile device-time measurement, and
// Tilera's Eclipse IDE shipped per-tile state trackers (paper §III). This
// subsystem is the library equivalent: a process-wide MetricsRegistry owns
// per-PE counters, gauges, and log2-bucketed virtual-time histograms that
// the runtime, tmc, and sim layers feed. Everything here is host-side only
// — recording a metric never touches a SimClock, so enabling metrics can
// never perturb modeled virtual-time results (the same contract as
// RuntimeOptions::validate_symmetry).
//
// Hot-path cost: a metric handle is a stable pointer resolved once through
// the sharded registry; updates are relaxed atomics on that handle. The
// registry itself is lock-sharded so concurrent registration from many PE
// threads does not serialize.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "util/units.hpp"

namespace obs {

using tshmem_util::ps_t;

// ===========================================================================
// Instruments
// ===========================================================================

/// Monotone event/byte counter.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Instantaneous signed level (bytes in use, blocks live, ...).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    v_.store(v, std::memory_order_relaxed);
  }
  void add(std::int64_t delta) noexcept {
    v_.fetch_add(delta, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Log2-bucketed histogram of unsigned samples (virtual-time durations in
/// ps, transfer sizes in bytes). Bucket 0 holds exact zeros; bucket b >= 1
/// holds samples in [2^(b-1), 2^b - 1] — i.e. the bucket index is the bit
/// width of the sample. 64-bit samples therefore need 65 buckets.
class Log2Histogram {
 public:
  static constexpr int kBuckets = 65;

  void record(std::uint64_t sample) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  /// Smallest/largest recorded sample; min() is UINT64_MAX and max() is 0
  /// while the histogram is empty.
  [[nodiscard]] std::uint64_t min() const noexcept {
    return min_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const noexcept {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket_count(int bucket) const noexcept {
    return buckets_[static_cast<std::size_t>(bucket)].load(
        std::memory_order_relaxed);
  }

  /// Bucket index a sample lands in (the sample's bit width).
  [[nodiscard]] static int bucket_of(std::uint64_t sample) noexcept;
  /// Inclusive [lower, upper] value range of a bucket.
  [[nodiscard]] static std::uint64_t bucket_lower(int bucket) noexcept;
  [[nodiscard]] static std::uint64_t bucket_upper(int bucket) noexcept;

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~std::uint64_t{0}};
  std::atomic<std::uint64_t> max_{0};
  std::atomic<std::uint64_t> buckets_[kBuckets]{};
};

// ===========================================================================
// Snapshot (the stable, diffable view the JSON exporter serializes)
// ===========================================================================

struct CounterSample {
  std::string name;
  int pe = 0;
  std::uint64_t value = 0;

  friend bool operator==(const CounterSample&, const CounterSample&) = default;
};

struct GaugeSample {
  std::string name;
  int pe = 0;
  std::int64_t value = 0;

  friend bool operator==(const GaugeSample&, const GaugeSample&) = default;
};

struct HistogramBucket {
  int bucket = 0;  ///< log2 bucket index (see Log2Histogram)
  std::uint64_t count = 0;

  friend bool operator==(const HistogramBucket&,
                         const HistogramBucket&) = default;
};

struct HistogramSample {
  std::string name;
  int pe = 0;
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t min = 0;  ///< 0 when empty
  std::uint64_t max = 0;
  std::vector<HistogramBucket> buckets;  ///< only non-empty buckets

  friend bool operator==(const HistogramSample&,
                         const HistogramSample&) = default;
};

/// Point-in-time view of every metric, sorted by (name, pe) so two
/// snapshots (or their JSON dumps) diff cleanly across PRs.
struct MetricsSnapshot {
  std::string device;  ///< short device name ("gx36"); may be empty
  int npes = 0;
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  friend bool operator==(const MetricsSnapshot&,
                         const MetricsSnapshot&) = default;
};

// ===========================================================================
// Registry
// ===========================================================================

/// Lock-sharded owner of all per-PE metrics. Registration (name, pe) hashes
/// to one of `shards` independently locked maps; the returned handle is
/// stable for the registry's lifetime, so hot paths resolve once and then
/// update lock-free. Re-registering the same (name, pe) returns the same
/// instrument; re-registering under a different kind throws.
class MetricsRegistry {
 public:
  explicit MetricsRegistry(int shards = 16);
  ~MetricsRegistry();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  [[nodiscard]] Counter& counter(std::string_view name, int pe);
  [[nodiscard]] Gauge& gauge(std::string_view name, int pe);
  [[nodiscard]] Log2Histogram& histogram(std::string_view name, int pe);

  [[nodiscard]] std::size_t metric_count() const;

  /// Sorted, stable snapshot of every registered metric. `device`/`npes`
  /// annotate the snapshot header (exporter metadata).
  [[nodiscard]] MetricsSnapshot snapshot(std::string device = {},
                                         int npes = 0) const;

 private:
  enum class Kind : std::uint8_t { kCounter, kGauge, kHistogram };

  struct Cell {
    Kind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Log2Histogram> histogram;
  };

  struct Shard;

  Cell& cell_for(std::string_view name, int pe, Kind kind);

  std::vector<std::unique_ptr<Shard>> shards_;
};

// ===========================================================================
// Sanctioned instrumentation entry points (lint rule R005)
// ===========================================================================
//
// Instrumentation sites outside src/obs/ must resolve handles and mutate
// metrics through these helpers, not by calling MetricsRegistry::counter /
// gauge / histogram directly — tools/tshmem_lint.py rule R005 audits that,
// which keeps every instrumentation site greppable and reviewable in one
// place. (Inside src/obs/ and in tests the raw registry API is fine.)

/// Resolves a stable counter handle (hot paths resolve once, then update
/// lock-free through the pointer).
[[nodiscard]] inline Counter* counter_handle(MetricsRegistry& reg,
                                             std::string_view name, int pe) {
  return &reg.counter(name, pe);
}

[[nodiscard]] inline Gauge* gauge_handle(MetricsRegistry& reg,
                                         std::string_view name, int pe) {
  return &reg.gauge(name, pe);
}

[[nodiscard]] inline Log2Histogram* histogram_handle(MetricsRegistry& reg,
                                                     std::string_view name,
                                                     int pe) {
  return &reg.histogram(name, pe);
}

/// One-shot counter add for cold paths (scrapes, error paths) that have no
/// cached handle.
inline void add_count(MetricsRegistry& reg, std::string_view name, int pe,
                      std::uint64_t delta) {
  reg.counter(name, pe).add(delta);
}

/// One-shot gauge set for cold paths.
inline void set_level(MetricsRegistry& reg, std::string_view name, int pe,
                      std::int64_t v) {
  reg.gauge(name, pe).set(v);
}

/// One-shot histogram sample for cold paths.
inline void record_sample(MetricsRegistry& reg, std::string_view name, int pe,
                          std::uint64_t sample) {
  reg.histogram(name, pe).record(sample);
}

}  // namespace obs
