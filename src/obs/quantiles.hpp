// Quantile extraction from log2-bucketed histograms (serving tentpole).
//
// A Log2Histogram stores only bucket counts plus exact min/max/sum, so a
// quantile is necessarily an estimate: the rank is located in its bucket
// and linearly interpolated across the bucket's value range. The error is
// bounded by the bucket width (a factor of 2), and the estimate is clamped
// to the exact [min, max] envelope, which makes single-sample and
// single-bucket histograms exact and keeps the saturated top bucket
// (whose upper bound is 2^64-1) from producing absurd tails.
//
// Shared by the svc serving report (p50/p99/p999 virtual-time latency) and
// any bench that wants tail percentiles out of an obs histogram.
#pragma once

#include <cstdint>

#include "obs/metrics.hpp"

namespace obs {

/// Interpolated quantile of the recorded samples; `q` in [0, 1].
/// q=0 returns min(), q=1 returns max(). An empty histogram returns 0.
/// Throws std::invalid_argument when q is outside [0, 1].
[[nodiscard]] std::uint64_t histogram_quantile(const Log2Histogram& h,
                                               double q);

/// Snapshot variant (sparse bucket list, as exported to metrics JSON).
[[nodiscard]] std::uint64_t histogram_quantile(const HistogramSample& s,
                                               double q);

/// The three tail points every serving report carries.
struct LatencyQuantiles {
  std::uint64_t p50 = 0;
  std::uint64_t p99 = 0;
  std::uint64_t p999 = 0;

  friend bool operator==(const LatencyQuantiles&,
                         const LatencyQuantiles&) = default;
};

[[nodiscard]] LatencyQuantiles latency_quantiles(const Log2Histogram& h);
[[nodiscard]] LatencyQuantiles latency_quantiles(const HistogramSample& s);

}  // namespace obs
