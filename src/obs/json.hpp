// Minimal JSON document model + recursive-descent parser.
//
// Exists so the exporters' output can be validated in-process (schema
// round-trip tests, the ci.sh telemetry check, and the Perfetto smoke
// test) without an external JSON dependency. Supports the full JSON value
// grammar; numbers are held as double plus an exact int64 when the token
// is integral (virtual-time counters exceed double's 2^53 mantissa only in
// pathological runs, but exactness is free to keep).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace obs {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_null() const noexcept { return type_ == Type::kNull; }

  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] std::int64_t as_int() const;
  [[nodiscard]] std::uint64_t as_uint() const;
  [[nodiscard]] const std::string& as_string() const;
  [[nodiscard]] const std::vector<JsonValue>& as_array() const;
  [[nodiscard]] const std::map<std::string, JsonValue>& as_object() const;

  /// Object member access; throws std::out_of_range when missing.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] bool contains(const std::string& key) const;
  /// Array element access.
  [[nodiscard]] const JsonValue& at(std::size_t index) const;
  [[nodiscard]] std::size_t size() const;

  /// Parses a complete JSON document (trailing garbage is an error).
  /// Throws std::invalid_argument with position info on malformed input.
  static JsonValue parse(std::string_view text);

 private:
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::int64_t int_ = 0;
  bool int_exact_ = false;  ///< token was integral and fits int64/uint64
  std::uint64_t uint_ = 0;
  bool uint_exact_ = false;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::map<std::string, JsonValue> obj_;
};

}  // namespace obs
