#include "obs/json.hpp"

#include <cctype>
#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace obs {

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) throw std::logic_error("JSON value is not a bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (type_ != Type::kNumber) {
    throw std::logic_error("JSON value is not a number");
  }
  return num_;
}

std::int64_t JsonValue::as_int() const {
  if (type_ != Type::kNumber) {
    throw std::logic_error("JSON value is not a number");
  }
  if (int_exact_) return int_;
  return static_cast<std::int64_t>(num_);
}

std::uint64_t JsonValue::as_uint() const {
  if (type_ != Type::kNumber) {
    throw std::logic_error("JSON value is not a number");
  }
  if (uint_exact_) return uint_;
  if (num_ < 0) throw std::logic_error("JSON number is negative");
  return static_cast<std::uint64_t>(num_);
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) {
    throw std::logic_error("JSON value is not a string");
  }
  return str_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (type_ != Type::kArray) {
    throw std::logic_error("JSON value is not an array");
  }
  return arr_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (type_ != Type::kObject) {
    throw std::logic_error("JSON value is not an object");
  }
  return obj_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::out_of_range("JSON object has no member '" + key + "'");
  }
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return type_ == Type::kObject && obj_.count(key) != 0;
}

const JsonValue& JsonValue::at(std::size_t index) const {
  const auto& arr = as_array();
  if (index >= arr.size()) {
    throw std::out_of_range("JSON array index out of range");
  }
  return arr[index];
}

std::size_t JsonValue::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  throw std::logic_error("JSON value has no size");
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  std::string_view text_;
  std::size_t pos_ = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw std::invalid_argument("JSON parse error at offset " +
                                std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.type_ = JsonValue::Type::kString;
        v.str_ = parse_string();
        return v;
      }
      case 't': {
        if (!consume_literal("true")) fail("bad literal");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        v.bool_ = true;
        return v;
      }
      case 'f': {
        if (!consume_literal("false")) fail("bad literal");
        JsonValue v;
        v.type_ = JsonValue::Type::kBool;
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.type_ = JsonValue::Type::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.obj_.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.type_ = JsonValue::Type::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.arr_.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("bad \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad hex digit in \\u escape");
          }
          // UTF-8 encode the code point (surrogate pairs are passed through
          // as separate code points — the exporters never emit them).
          if (cp < 0x80) {
            out.push_back(static_cast<char>(cp));
          } else if (cp < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
            out.push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (cp & 0x3F)));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0 ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    const std::string_view tok = text_.substr(start, pos_ - start);
    if (tok.empty() || tok == "-") fail("malformed number");
    JsonValue v;
    v.type_ = JsonValue::Type::kNumber;
    const std::string owned(tok);
    char* end = nullptr;
    v.num_ = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size()) fail("malformed number");
    if (tok.find_first_of(".eE") == std::string_view::npos) {
      std::int64_t i = 0;
      if (std::from_chars(tok.data(), tok.data() + tok.size(), i).ec ==
          std::errc{}) {
        v.int_ = i;
        v.int_exact_ = true;
      }
      std::uint64_t u = 0;
      if (std::from_chars(tok.data(), tok.data() + tok.size(), u).ec ==
          std::errc{}) {
        v.uint_ = u;
        v.uint_exact_ = true;
      }
    }
    return v;
  }
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

}  // namespace obs
