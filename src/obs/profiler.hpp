// Virtual-time critical-path profiler (ISSUE 7 tentpole).
//
// The only implementation of tilesim::ProfileSink. Records per-PE span
// stacks (compute / UDN wait / DMA / barrier / collective / lock / guarded
// wait) plus wait-for edges — "PE d's clock jumped from A to B waiting on a
// timestamp produced by PE s" — and computes the critical path of a run:
// the chain of ops and PEs that bounds completion virtual time.
//
// Epoch model: every Device::reset_clocks() closes an *epoch* (a
// measurement phase between clock zeroes). The profiler reads each tile's
// final clock at that single-threaded safe point, integrates the epoch's
// span timeline into per-phase totals, folds self-times into cumulative
// flamegraph stacks, accumulates wait-edge totals, walks the critical path
// backward from the last-finishing PE, and keeps the path of the longest
// epoch seen so far. report() additionally folds the still-open tail epoch
// non-destructively (on copies), so it can be called after the last run
// without an explicit reset.
//
// Contract (CI-enforced, like metrics and tshmem-check): the profiler
// never advances a SimClock — every fig03–fig14 output is bit-identical
// with TSHMEM_PROFILE on or off.
//
// Exports (docs/PROFILING.md):
//   - write_profile_json: "tshmem.profile.v1" summary (per-phase totals,
//     critical-path segments, top-k wait edges);
//   - write_profile_folded: collapsed stacks ("pe0;barrier:shmem_barrier N")
//     for flamegraph.pl / speedscope / inferno;
//   - profile_flow_events: Perfetto flow arrows for the critical path's
//     wait edges, layered onto the Chrome trace exporter.
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/exporters.hpp"
#include "sim/profile_hook.hpp"

namespace obs {

inline constexpr const char* kProfileSchema = "tshmem.profile.v1";

/// Per-(phase, site) virtual-time attribution, aggregated across PEs and
/// epochs. `self_ps` excludes nested spans; `total_ps` includes them.
struct ProfileSite {
  std::string phase;
  std::string site;
  std::uint64_t calls = 0;
  ps_t self_ps = 0;
  ps_t total_ps = 0;
};

/// Aggregated wait-for edge: PE `dst_pe` spent `wait_ps` (over `count`
/// waits) blocked on timestamps produced by `src_pe` at `site`. src_pe is
/// -1 when the producer is unknown (pure delivery waits).
struct ProfileWaitEdge {
  int dst_pe = 0;
  int src_pe = -1;
  std::string site;
  std::uint64_t count = 0;
  ps_t wait_ps = 0;
};

/// One segment of the critical path, in forward virtual-time order.
/// kind "local": PE `pe` was executing (phase = dominant phase over the
/// interval). kind "wait": PE `pe` was blocked on `src_pe` at `site`; for
/// cross-PE edges the path hops to the producer, so the wait itself is
/// off-path attribution (the arrow Perfetto draws).
struct CritSegment {
  std::string kind;  ///< "local" | "wait"
  int pe = 0;
  int src_pe = -1;
  std::string phase;
  std::string site;
  ps_t from_ps = 0;
  ps_t to_ps = 0;
};

/// Everything report() derives; serialized by the exporters below.
struct ProfileReport {
  int npes = 0;
  std::uint64_t epochs = 0;
  ps_t total_vt_ps = 0;  ///< sum over epochs of max-PE completion vt
  std::uint64_t dropped_events = 0;

  /// Per-phase virtual-time totals across all PEs/epochs, indexed by
  /// tilesim::ProfPhase. "compute" is the residual under no open span.
  std::array<ps_t, tilesim::kProfPhaseCount> phase_ps{};
  /// Per-PE totals, same indexing; only PEs with activity appear.
  std::vector<std::pair<int, std::array<ps_t, tilesim::kProfPhaseCount>>>
      pe_phase_ps;

  std::vector<ProfileSite> sites;          ///< sorted by total_ps desc, name
  std::vector<ProfileWaitEdge> top_edges;  ///< sorted by wait_ps desc, top-k

  /// Critical path of the longest epoch.
  ps_t crit_epoch_vt_ps = 0;
  std::vector<CritSegment> critical_path;
  std::array<ps_t, tilesim::kProfPhaseCount> crit_phase_ps{};
  std::string dominant_phase;   ///< phase with the largest on-path share
  double dominant_share = 0.0;  ///< its fraction of on-path virtual time

  /// Collapsed flamegraph stacks: "pe0;barrier:shmem_barrier" -> self ps.
  std::map<std::string, ps_t> folded;
};

/// The profiler. Attach with Device::attach_profiler; one instance per
/// Device. All span/edge callbacks for a PE arrive from that PE's own host
/// thread; epoch folding happens at reset_clocks()'s single-threaded safe
/// points (per-PE mutexes keep the handoff TSan-clean).
class Profiler final : public tilesim::ProfileSink {
 public:
  explicit Profiler(const tilesim::Device& device);
  ~Profiler() override;

  Profiler(const Profiler&) = delete;
  Profiler& operator=(const Profiler&) = delete;

  void on_span_begin(int tile, tilesim::ProfPhase phase, const char* site,
                     ps_t now) override;
  void on_span_end(int tile, ps_t now) override;
  void on_wait_edge(int tile, int src_tile, tilesim::ProfPhase fallback,
                    const char* site, ps_t from_ps, ps_t to_ps) override;
  void on_clock_reset() override;

  /// Builds the cumulative report, folding the still-open tail epoch on a
  /// snapshot copy (the live state is untouched, so more runs may follow).
  /// Call from outside Device::run() only.
  [[nodiscard]] ProfileReport report() const;

  /// How many wait edges to keep in ProfileReport::top_edges.
  void set_top_k(std::size_t k) noexcept { top_k_ = k; }

 private:
  struct OpenSpan {
    tilesim::ProfPhase phase;
    const char* site;
    ps_t begin_ps;
    ps_t child_ps;  ///< virtual time consumed by nested spans
  };

  struct Edge {
    int src;
    tilesim::ProfPhase phase;
    const char* site;
    ps_t from_ps;
    ps_t to_ps;
  };

  /// State of the current (open) epoch for one PE. Written only by the
  /// owning PE's thread; read/consumed at epoch boundaries.
  struct PeEpoch {
    std::vector<OpenSpan> stack;
    /// Piecewise-constant innermost phase: (vt, phase-after-vt) change
    /// points; phase before the first entry is kCompute.
    std::vector<std::pair<ps_t, std::uint8_t>> timeline;
    std::vector<Edge> edges;  ///< to_ps monotone in program order
  };

  /// Cumulative (across epochs) state for one PE.
  struct PeCum {
    std::array<ps_t, tilesim::kProfPhaseCount> phase_ps{};
    std::map<std::pair<std::uint8_t, std::string>, ProfileSite> agg;
    std::map<std::string, ps_t> folded;
    /// (src_pe, site) -> (count, wait_ps)
    std::map<std::pair<int, std::string>,
             std::pair<std::uint64_t, ps_t>>
        edge_agg;
    std::uint64_t dropped = 0;
  };

  struct Globals {
    ps_t total_vt_ps = 0;
    std::uint64_t epochs = 0;
    ps_t best_epoch_vt = 0;
    std::vector<CritSegment> best_path;
    std::array<ps_t, tilesim::kProfPhaseCount> best_crit{};
  };

  struct PeState {
    mutable std::mutex mu;
    PeEpoch epoch;
    PeCum cum;
  };

  /// Folds one finished epoch (final_vts = per-PE completion clocks) into
  /// `cum`/`g`. Consumes `epochs` (timelines walked, stacks force-closed).
  static void fold_epoch(const std::vector<ps_t>& final_vts,
                         std::vector<PeEpoch>& epochs,
                         std::vector<PeCum*>& cum, Globals& g);

  static void critical_path(const std::vector<ps_t>& final_vts,
                            const std::vector<PeEpoch>& epochs, ps_t total,
                            std::vector<CritSegment>& path,
                            std::array<ps_t, tilesim::kProfPhaseCount>& attr);

  [[nodiscard]] std::vector<ps_t> final_clock_snapshot() const;

  const tilesim::Device* device_;
  std::vector<std::unique_ptr<PeState>> pes_;
  mutable std::mutex global_mu_;  ///< guards globals_ and epoch folding
  Globals globals_;
  std::size_t top_k_ = 16;
};

/// Writes the "tshmem.profile.v1" JSON summary. Deterministic: fixed key
/// order, sorted containers, fixed-precision floats.
void write_profile_json(std::ostream& os, const ProfileReport& report);

/// Writes collapsed-stack lines ("stack;frames self_ps"), sorted by stack.
void write_profile_folded(std::ostream& os, const ProfileReport& report);

/// Perfetto flow arrows for the critical path's wait edges (one "s"/"f"
/// pair per wait segment), for layering onto write_chrome_trace_json.
[[nodiscard]] std::vector<TraceFlow> profile_flow_events(
    const ProfileReport& report, int pid, std::uint64_t first_id = 0);

}  // namespace obs
