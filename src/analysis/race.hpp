// tshmem-check: a vector-clock happens-before race detector operating in
// *virtual time* over the symmetric heap (docs/ANALYSIS.md).
//
// Why a custom detector: ThreadSanitizer sees host threads and host
// synchronization, so a shmem_put that lands before the target PE's
// shmem_barrier_all is invisible to it — host-eager data movement means
// the host ordering is always "fine" even when the SHMEM-level ordering
// is a race. tshmem-check instead tracks the *modeled* happens-before
// relation:
//   - barriers (UDN token protocols and the TMC spin barrier) join the
//     participants' clocks,
//   - every control message carries the sender's clock snapshot, so
//     collectives inherit exactly the edges their real communication
//     pattern creates,
//   - shmem_quiet joins a PE's DMA pseudo-actor back into the PE,
//     ordering `_nbi` buffer reuse,
//   - elemental (4/8-byte) puts publish a release clock on the target
//     granule and shmem_wait_until acquires it (point-to-point sync),
//   - atomics and locks are acquire-release operations on their target
//     granule.
// Shadow memory at a configurable granule (default 8 B) records the last
// writer/reader epochs per symmetric-heap granule with per-byte masks;
// a conflicting, unordered access pair produces a structured RaceReport.
//
// The detector is opt-in (RuntimeOptions::racecheck / TSHMEM_RACECHECK)
// and never touches a SimClock: virtual time is bit-identical with the
// detector on or off.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "analysis/vector_clock.hpp"
#include "sim/sync_observer.hpp"

namespace tshmem::analysis {

/// Detector mode (RuntimeOptions::racecheck / TSHMEM_RACECHECK).
enum class RaceMode : std::uint8_t {
  kOff = 0,     ///< no detector (zero cost)
  kReport = 1,  ///< collect RaceReports (Runtime::race_reports())
  kFail = 2,    ///< kReport + throw Error(kRaceDetected) after the run
};

enum class AccessKind : std::uint8_t { kRead = 0, kWrite = 1, kAtomic = 2 };

[[nodiscard]] const char* access_kind_name(AccessKind k) noexcept;

/// One side of a racing pair.
struct RaceEndpoint {
  int pe = -1;           ///< owning PE of the acting engine
  bool via_dma = false;  ///< access performed by the PE's DMA engine (_nbi)
  AccessKind kind = AccessKind::kRead;
  std::string site;           ///< operation name, e.g. "shmem_put"
  std::uint64_t vt_ps = 0;    ///< virtual timestamp of the access
};

/// A conflicting, unordered access pair on the symmetric heap. Reports are
/// canonicalized (endpoint order, merged extents) so the set returned by
/// RaceDetector::reports() is deterministic across host thread schedules.
struct RaceReport {
  RaceEndpoint first;   ///< canonical order: see RaceDetector::reports()
  RaceEndpoint second;
  int owner_pe = -1;        ///< PE whose copy of the object conflicted
  bool is_static = false;   ///< static arena vs dynamic partition
  std::uint64_t offset = 0; ///< lowest conflicting byte offset in the region
  std::uint64_t bytes = 0;  ///< extent of the conflicting range
  std::string suggestion;   ///< the sync op that would order the pair

  /// One-line human-readable rendering (stable; used by bench/ext_races
  /// and the determinism tests).
  [[nodiscard]] std::string describe() const;
};

[[nodiscard]] bool operator==(const RaceEndpoint& a, const RaceEndpoint& b);
[[nodiscard]] bool operator==(const RaceReport& a, const RaceReport& b);

/// JSON exporter ("tshmem.races.v1" schema).
void write_race_reports_json(std::ostream& os,
                             const std::vector<RaceReport>& reports);

class RaceDetector final : public tilesim::SyncObserver {
 public:
  struct Options {
    std::size_t granule = 8;       ///< shadow granule, bytes; [1, 64]
    std::size_t max_reports = 256; ///< distinct reports kept (rest counted)
  };

  /// Host-side accounting; scraped into `analysis.*` metrics.
  struct Stats {
    std::uint64_t checked_accesses = 0;  ///< instrumented accesses observed
    std::uint64_t checked_granules = 0;  ///< shadow cells examined
    std::uint64_t sync_edges = 0;        ///< happens-before joins performed
    std::uint64_t race_pairs = 0;        ///< raw conflicting pairs observed
    std::uint64_t dropped_reports = 0;   ///< pairs beyond max_reports keys
  };

  explicit RaceDetector(int npes);
  RaceDetector(int npes, Options opts);

  RaceDetector(const RaceDetector&) = delete;
  RaceDetector& operator=(const RaceDetector&) = delete;

  /// Registers a symmetric region (one call per PE partition / arena).
  /// Accesses outside every registered region are ignored.
  void add_region(int owner_pe, bool is_static, std::byte* base,
                  std::size_t bytes);

  // --- data accesses -------------------------------------------------------
  /// An access by PE `pe` (or, with via_dma, by its DMA engine) to
  /// [p, p+bytes). Non-symmetric addresses are ignored.
  void on_access(int pe, bool via_dma, AccessKind kind, const void* p,
                 std::size_t bytes, const char* site, std::uint64_t vt_ps);

  /// A non-blocking transfer issued to the PE's DMA engine: the engine
  /// (pseudo-actor) inherits the issuing PE's clock, then performs a read
  /// of `read_side` and a write of `write_side` that stay unordered with
  /// the PE's subsequent program until on_quiet.
  void on_nbi_issue(int pe, const void* read_side, const void* write_side,
                    std::size_t bytes, const char* site,
                    std::uint64_t issue_ps, std::uint64_t complete_ps);

  // --- synchronization edges ----------------------------------------------
  /// shmem_quiet: joins the PE's DMA pseudo-actor clock into the PE.
  void on_quiet(int pe);

  /// Control-message channel (UDN demux queues): the sender's clock
  /// snapshot rides a per-(src, dst, queue) FIFO keyed by tag; the
  /// receiver joins the exact snapshot of the message it consumed, so the
  /// detector follows the protocol's real communication edges.
  void on_ctrl_send(int src_pe, int dst_pe, int queue, int tag);
  void on_ctrl_consume(int dst_pe, int src_pe, int queue, int tag);

  /// Release-publish on the granule holding `p` (elemental puts; the
  /// writing PE's clock is joined into the granule's release clock).
  void on_release(int pe, const void* p);
  /// Acquire from the granule holding `p` (shmem_wait_until observers).
  void on_acquire(int pe, const void* p);

  /// Atomic op on `p`: acquire + shadow check (atomic kind) + release.
  void on_atomic(int pe, const void* p, std::size_t bytes, const char* site,
                 std::uint64_t vt_ps);

  /// shfree/shrealloc: forget shadow state and release clocks for the
  /// range (stale epochs on recycled blocks must not produce reports).
  void on_heap_free(const void* p, std::size_t bytes);

  // --- SyncObserver (TMC spin/sync barriers) -------------------------------
  void on_rendezvous_arrive(const void* barrier, std::uint64_t generation,
                            int tile) override;
  void on_rendezvous_release(const void* barrier, std::uint64_t generation,
                             int tile, int parties) override;

  // --- results -------------------------------------------------------------
  /// Deduplicated reports in a canonical, schedule-independent order.
  [[nodiscard]] std::vector<RaceReport> reports() const;
  [[nodiscard]] Stats stats() const;

  [[nodiscard]] int npes() const noexcept { return npes_; }
  [[nodiscard]] std::size_t granule() const noexcept { return opts_.granule; }

  /// Current clock of actor `a` (PE a, or npes + pe for a DMA engine);
  /// exposed for the unit tests.
  [[nodiscard]] VectorClock clock_of(int actor) const;

 private:
  /// One recorded access epoch in a shadow cell. `mask` marks the bytes of
  /// the granule the access covered (granule <= 64 keeps it in a word):
  /// disjoint-byte accesses to one granule must not be reported.
  struct AccessRec {
    std::int32_t actor = -1;
    AccessKind kind = AccessKind::kRead;
    std::uint64_t clk = 0;
    std::uint64_t vt_ps = 0;
    const char* site = "";
    std::uint64_t mask = 0;
  };

  struct Cell {
    std::vector<AccessRec> writers;  // includes atomics (kind disambiguates)
    std::vector<AccessRec> readers;
  };

  struct Region {
    int owner_pe;
    bool is_static;
    std::byte* base;
    std::size_t bytes;
    std::unordered_map<std::uint64_t, Cell> cells;  // granule index -> cell
  };

  struct Resolved {
    Region* region = nullptr;
    std::size_t offset = 0;  // byte offset within the region
  };

  /// Dedup key: the unordered pair of (pe, via_dma, kind, site) endpoints
  /// plus the region. Merged values keep component-wise minima so the
  /// final report is independent of which access was observed second.
  struct PairKey {
    int region;
    std::int32_t actor_a, actor_b;
    std::uint8_t kind_a, kind_b;
    std::string site_a, site_b;
    bool operator<(const PairKey& o) const;
  };
  struct PairAgg {
    std::uint64_t min_offset;
    std::uint64_t max_end;
    std::uint64_t vt_a;
    std::uint64_t vt_b;
  };

  [[nodiscard]] Resolved resolve(const void* p) noexcept;
  [[nodiscard]] int dma_actor(int pe) const noexcept { return npes_ + pe; }
  void record_conflict(std::size_t region_idx, const AccessRec& prev,
                       const AccessRec& cur, std::uint64_t offset,
                       std::uint64_t end);
  void access_locked(int actor, AccessKind kind, const Resolved& r,
                     std::size_t bytes, const char* site,
                     std::uint64_t vt_ps);
  [[nodiscard]] static std::uint64_t byte_mask(std::size_t first,
                                               std::size_t last);

  int npes_;
  Options opts_;

  mutable std::mutex mu_;
  std::vector<VectorClock> clocks_;  // [0, npes): PEs; [npes, 2*npes): DMA
  std::vector<Region> regions_;

  // Release clocks per (region, granule) — elemental puts, atomics, locks.
  std::map<std::pair<int, std::uint64_t>, VectorClock> release_clocks_;

  // Control-message clock snapshots: (src, dst, queue) -> FIFO of
  // (tag, snapshot). Matching is protocol-determined, hence deterministic.
  std::map<std::uint64_t, std::deque<std::pair<int, VectorClock>>> channels_;

  // Rendezvous all-join slots: (barrier, generation) -> accumulator.
  struct RendezvousSlot {
    VectorClock joined;
    int released = 0;
  };
  std::map<std::pair<const void*, std::uint64_t>, RendezvousSlot>
      rendezvous_;

  std::map<PairKey, PairAgg> pairs_;
  Stats stats_;
};

}  // namespace tshmem::analysis
