// Vector clocks for the tshmem-check happens-before race detector
// (docs/ANALYSIS.md). One logical clock component per *actor*: PE i owns
// component i, PE i's asynchronous DMA engine owns component npes + i, so
// `_nbi` traffic is ordered independently of the issuing PE until a
// shmem_quiet joins the engine's clock back into its owner.
//
// Header-only and dependency-free: the detector (race.hpp) and its unit
// tests are the only intended users.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace tshmem::analysis {

/// A release epoch: actor `actor` at its local clock value `clk`. Shadow
/// cells store epochs instead of whole clocks (FastTrack-style): the access
/// happened-before a later event iff that event's vector clock has caught
/// up with the actor's component.
struct Epoch {
  std::int32_t actor = -1;
  std::uint64_t clk = 0;
};

class VectorClock {
 public:
  VectorClock() = default;
  explicit VectorClock(std::size_t actors) : c_(actors, 0) {}

  [[nodiscard]] std::size_t size() const noexcept { return c_.size(); }

  [[nodiscard]] std::uint64_t at(std::size_t actor) const noexcept {
    return actor < c_.size() ? c_[actor] : 0;
  }

  /// Bumps `actor`'s own component (a release creates a new epoch).
  void tick(std::size_t actor) {
    grow(actor + 1);
    ++c_[actor];
  }

  void set(std::size_t actor, std::uint64_t value) {
    grow(actor + 1);
    c_[actor] = value;
  }

  /// Component-wise max (the happens-before join).
  void join(const VectorClock& other) {
    grow(other.c_.size());
    for (std::size_t i = 0; i < other.c_.size(); ++i) {
      c_[i] = std::max(c_[i], other.c_[i]);
    }
  }

  /// True when the event that produced `e` happened-before the point in
  /// time this clock represents.
  [[nodiscard]] bool covers(const Epoch& e) const noexcept {
    return e.actor >= 0 && at(static_cast<std::size_t>(e.actor)) >= e.clk;
  }

  /// True when every component of this clock is <= the other's (this
  /// point-in-time happened-before or equals the other).
  [[nodiscard]] bool dominated_by(const VectorClock& other) const noexcept {
    for (std::size_t i = 0; i < c_.size(); ++i) {
      if (c_[i] > other.at(i)) return false;
    }
    return true;
  }

  [[nodiscard]] Epoch epoch_of(std::size_t actor) const noexcept {
    return Epoch{static_cast<std::int32_t>(actor), at(actor)};
  }

  friend bool operator==(const VectorClock& a, const VectorClock& b) {
    const std::size_t n = std::max(a.c_.size(), b.c_.size());
    for (std::size_t i = 0; i < n; ++i) {
      if (a.at(i) != b.at(i)) return false;
    }
    return true;
  }

 private:
  void grow(std::size_t n) {
    if (c_.size() < n) c_.resize(n, 0);
  }

  std::vector<std::uint64_t> c_;
};

}  // namespace tshmem::analysis
