#include "analysis/race.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <tuple>

namespace tshmem::analysis {

namespace {

/// Suggests the missing sync op for a conflicting pair. Pure function of
/// the (canonicalized) endpoints, so merged reports stay deterministic.
std::string suggest_fix(const RaceEndpoint& a, const RaceEndpoint& b) {
  if (a.via_dma || b.via_dma) {
    return "call shmem_quiet() before reusing or reading buffers touched "
           "by outstanding _nbi transfers";
  }
  if (a.kind == AccessKind::kAtomic || b.kind == AccessKind::kAtomic) {
    return "make both accesses atomic (or guard the plain access with "
           "shmem_set_lock/shmem_clear_lock)";
  }
  if (a.kind == AccessKind::kWrite && b.kind == AccessKind::kWrite) {
    return "order the writers with shmem_barrier_all()/shmem_barrier() or "
           "serialize them with shmem_set_lock/shmem_clear_lock";
  }
  return "separate the write from the read with shmem_barrier_all() or a "
         "shmem_wait_until() on a flag written after the data";
}

std::uint64_t channel_key(int src, int dst, int queue) {
  return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(src))
          << 36) |
         (static_cast<std::uint64_t>(static_cast<std::uint32_t>(dst))
          << 8) |
         static_cast<std::uint64_t>(static_cast<std::uint32_t>(queue));
}

}  // namespace

const char* access_kind_name(AccessKind k) noexcept {
  switch (k) {
    case AccessKind::kRead: return "read";
    case AccessKind::kWrite: return "write";
    case AccessKind::kAtomic: return "atomic";
  }
  return "unknown";
}

bool operator==(const RaceEndpoint& a, const RaceEndpoint& b) {
  return a.pe == b.pe && a.via_dma == b.via_dma && a.kind == b.kind &&
         a.site == b.site && a.vt_ps == b.vt_ps;
}

bool operator==(const RaceReport& a, const RaceReport& b) {
  return a.first == b.first && a.second == b.second &&
         a.owner_pe == b.owner_pe && a.is_static == b.is_static &&
         a.offset == b.offset && a.bytes == b.bytes &&
         a.suggestion == b.suggestion;
}

std::string RaceReport::describe() const {
  auto endpoint = [](const RaceEndpoint& e) {
    std::ostringstream os;
    os << access_kind_name(e.kind) << " by PE " << e.pe
       << (e.via_dma ? " (dma)" : "") << " in " << e.site << " @"
       << e.vt_ps << "ps";
    return os.str();
  };
  std::ostringstream os;
  os << "race on PE " << owner_pe << "'s "
     << (is_static ? "static arena" : "symmetric partition") << " [+"
     << offset << ", " << bytes << "B): " << endpoint(first) << " vs "
     << endpoint(second) << "; fix: " << suggestion;
  return os.str();
}

void write_race_reports_json(std::ostream& os,
                             const std::vector<RaceReport>& reports) {
  auto endpoint = [&os](const char* name, const RaceEndpoint& e) {
    os << '"' << name << "\":{\"pe\":" << e.pe
       << ",\"via_dma\":" << (e.via_dma ? "true" : "false") << ",\"kind\":\""
       << access_kind_name(e.kind) << "\",\"site\":\"" << e.site
       << "\",\"vt_ps\":" << e.vt_ps << '}';
  };
  os << "{\"schema\":\"tshmem.races.v1\",\"reports\":[";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    const RaceReport& r = reports[i];
    if (i != 0) os << ',';
    os << '{';
    endpoint("first", r.first);
    os << ',';
    endpoint("second", r.second);
    os << ",\"owner_pe\":" << r.owner_pe << ",\"is_static\":"
       << (r.is_static ? "true" : "false") << ",\"offset\":" << r.offset
       << ",\"bytes\":" << r.bytes << ",\"suggestion\":\"" << r.suggestion
       << "\"}";
  }
  os << "]}\n";
}

// ===========================================================================
// RaceDetector
// ===========================================================================

bool RaceDetector::PairKey::operator<(const PairKey& o) const {
  return std::tie(region, actor_a, actor_b, kind_a, kind_b, site_a,
                  site_b) < std::tie(o.region, o.actor_a, o.actor_b,
                                     o.kind_a, o.kind_b, o.site_a, o.site_b);
}

RaceDetector::RaceDetector(int npes) : RaceDetector(npes, Options{}) {}

RaceDetector::RaceDetector(int npes, Options opts)
    : npes_(npes), opts_(opts) {
  if (npes < 1) throw std::invalid_argument("RaceDetector: npes < 1");
  if (opts_.granule < 1 || opts_.granule > 64 ||
      (opts_.granule & (opts_.granule - 1)) != 0) {
    throw std::invalid_argument(
        "RaceDetector: granule must be a power of two in [1, 64]");
  }
  clocks_.assign(static_cast<std::size_t>(2 * npes),
                 VectorClock(static_cast<std::size_t>(2 * npes)));
  // Epochs start at 1: a peer that has synchronized with nobody holds an
  // all-zero view, which must NOT cover anyone's first access.
  for (std::size_t i = 0; i < clocks_.size(); ++i) clocks_[i].tick(i);
}

void RaceDetector::add_region(int owner_pe, bool is_static, std::byte* base,
                              std::size_t bytes) {
  std::scoped_lock lk(mu_);
  regions_.push_back(Region{owner_pe, is_static, base, bytes, {}});
}

RaceDetector::Resolved RaceDetector::resolve(const void* p) noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  for (Region& r : regions_) {
    if (b >= r.base && b < r.base + r.bytes) {
      return Resolved{&r, static_cast<std::size_t>(b - r.base)};
    }
  }
  return Resolved{};
}

std::uint64_t RaceDetector::byte_mask(std::size_t first, std::size_t last) {
  // Bits [first, last) set; `last - first` is at most 64.
  const std::size_t n = last - first;
  const std::uint64_t bits =
      n >= 64 ? ~std::uint64_t{0} : ((std::uint64_t{1} << n) - 1);
  return bits << first;
}

void RaceDetector::record_conflict(std::size_t region_idx,
                                   const AccessRec& prev,
                                   const AccessRec& cur,
                                   std::uint64_t offset, std::uint64_t end) {
  ++stats_.race_pairs;
  // Canonicalize the endpoint order by (actor, kind, site) so the merged
  // report does not depend on which access the detector observed second.
  auto as_tuple = [](const AccessRec& a) {
    return std::make_tuple(a.actor, static_cast<int>(a.kind),
                           std::string_view(a.site));
  };
  const AccessRec& a = as_tuple(prev) <= as_tuple(cur) ? prev : cur;
  const AccessRec& b = as_tuple(prev) <= as_tuple(cur) ? cur : prev;
  PairKey key{static_cast<int>(region_idx), a.actor, b.actor,
              static_cast<std::uint8_t>(a.kind),
              static_cast<std::uint8_t>(b.kind), a.site, b.site};
  auto it = pairs_.find(key);
  if (it == pairs_.end()) {
    if (pairs_.size() >= opts_.max_reports) {
      ++stats_.dropped_reports;
      return;
    }
    pairs_.emplace(std::move(key), PairAgg{offset, end, a.vt_ps, b.vt_ps});
    return;
  }
  PairAgg& agg = it->second;
  agg.min_offset = std::min(agg.min_offset, offset);
  agg.max_end = std::max(agg.max_end, end);
  agg.vt_a = std::min(agg.vt_a, a.vt_ps);
  agg.vt_b = std::min(agg.vt_b, b.vt_ps);
}

void RaceDetector::access_locked(int actor, AccessKind kind,
                                 const Resolved& r, std::size_t bytes,
                                 const char* site, std::uint64_t vt_ps) {
  Region& region = *r.region;
  const std::size_t region_idx =
      static_cast<std::size_t>(r.region - regions_.data());
  const VectorClock& my = clocks_[static_cast<std::size_t>(actor)];
  const std::uint64_t my_clk = my.at(static_cast<std::size_t>(actor));

  const std::size_t g = opts_.granule;
  const std::size_t begin = r.offset;
  const std::size_t end = std::min(r.offset + bytes, region.bytes);
  for (std::size_t gran = begin / g; gran * g < end; ++gran) {
    ++stats_.checked_granules;
    const std::size_t lo = std::max(begin, gran * g) - gran * g;
    const std::size_t hi = std::min(end, (gran + 1) * g) - gran * g;
    const std::uint64_t mask = byte_mask(lo, hi);
    const AccessRec cur{actor, kind, my_clk, vt_ps, site, mask};
    Cell& cell = region.cells[gran];

    auto conflicts = [&](const AccessRec& prev) {
      if (prev.actor == actor) return false;
      if ((prev.mask & mask) == 0) return false;
      if (prev.kind == AccessKind::kRead && kind == AccessKind::kRead) {
        return false;
      }
      if (prev.kind == AccessKind::kAtomic && kind == AccessKind::kAtomic) {
        return false;
      }
      return !my.covers(Epoch{prev.actor, prev.clk});
    };
    auto scan = [&](std::vector<AccessRec>& list) {
      for (const AccessRec& prev : list) {
        if (conflicts(prev)) {
          record_conflict(region_idx, prev, cur, gran * g + lo,
                          gran * g + hi);
        }
      }
    };
    // Reads conflict with prior writes; writes/atomics with everything.
    scan(cell.writers);
    if (kind != AccessKind::kRead) scan(cell.readers);

    // Update the shadow cell. Entries by the same actor are replaced
    // (program order makes the old epoch redundant for the covered bytes);
    // ordered entries fully covered by this access are superseded.
    auto update = [&](std::vector<AccessRec>& list) {
      std::erase_if(list, [&](const AccessRec& prev) {
        if (prev.actor == actor) return (prev.mask & ~mask) == 0;
        return kind != AccessKind::kRead && (prev.mask & ~mask) == 0 &&
               my.covers(Epoch{prev.actor, prev.clk});
      });
      list.push_back(cur);
    };
    if (kind == AccessKind::kRead) {
      update(cell.readers);
    } else {
      update(cell.writers);
    }
  }
}

void RaceDetector::on_access(int pe, bool via_dma, AccessKind kind,
                             const void* p, std::size_t bytes,
                             const char* site, std::uint64_t vt_ps) {
  if (bytes == 0) return;
  std::scoped_lock lk(mu_);
  const Resolved r = resolve(p);
  if (r.region == nullptr) return;
  ++stats_.checked_accesses;
  access_locked(via_dma ? dma_actor(pe) : pe, kind, r, bytes, site, vt_ps);
}

void RaceDetector::on_nbi_issue(int pe, const void* read_side,
                                const void* write_side, std::size_t bytes,
                                const char* site, std::uint64_t issue_ps,
                                std::uint64_t complete_ps) {
  std::scoped_lock lk(mu_);
  const std::size_t d = static_cast<std::size_t>(dma_actor(pe));
  // The engine inherits the issuing PE's history, then starts a new epoch
  // of its own: subsequent PE-side accesses are unordered with the
  // transfer until on_quiet joins the engine back.
  clocks_[d].join(clocks_[static_cast<std::size_t>(pe)]);
  clocks_[d].tick(d);
  ++stats_.sync_edges;
  if (const Resolved r = resolve(read_side); r.region != nullptr) {
    ++stats_.checked_accesses;
    access_locked(static_cast<int>(d), AccessKind::kRead, r, bytes, site,
                  issue_ps);
  }
  if (const Resolved r = resolve(write_side); r.region != nullptr) {
    ++stats_.checked_accesses;
    access_locked(static_cast<int>(d), AccessKind::kWrite, r, bytes, site,
                  complete_ps);
  }
}

void RaceDetector::on_quiet(int pe) {
  std::scoped_lock lk(mu_);
  clocks_[static_cast<std::size_t>(pe)].join(
      clocks_[static_cast<std::size_t>(dma_actor(pe))]);
  ++stats_.sync_edges;
}

void RaceDetector::on_ctrl_send(int src_pe, int dst_pe, int queue, int tag) {
  std::scoped_lock lk(mu_);
  VectorClock& c = clocks_[static_cast<std::size_t>(src_pe)];
  channels_[channel_key(src_pe, dst_pe, queue)].emplace_back(tag, c);
  c.tick(static_cast<std::size_t>(src_pe));
}

void RaceDetector::on_ctrl_consume(int dst_pe, int src_pe, int queue,
                                   int tag) {
  std::scoped_lock lk(mu_);
  auto it = channels_.find(channel_key(src_pe, dst_pe, queue));
  if (it == channels_.end()) return;
  auto& fifo = it->second;
  // Consumption is matched by tag in FIFO order per channel — exactly the
  // order recv_ctrl's stash-or-match logic consumes messages, which is
  // protocol-determined and therefore schedule-independent.
  for (auto entry = fifo.begin(); entry != fifo.end(); ++entry) {
    if (entry->first == tag) {
      clocks_[static_cast<std::size_t>(dst_pe)].join(entry->second);
      ++stats_.sync_edges;
      fifo.erase(entry);
      return;
    }
  }
}

void RaceDetector::on_release(int pe, const void* p) {
  std::scoped_lock lk(mu_);
  const Resolved r = resolve(p);
  if (r.region == nullptr) return;
  const auto key = std::make_pair(
      static_cast<int>(r.region - regions_.data()),
      static_cast<std::uint64_t>(r.offset / opts_.granule));
  VectorClock& c = clocks_[static_cast<std::size_t>(pe)];
  release_clocks_[key].join(c);
  c.tick(static_cast<std::size_t>(pe));
  ++stats_.sync_edges;
}

void RaceDetector::on_acquire(int pe, const void* p) {
  std::scoped_lock lk(mu_);
  const Resolved r = resolve(p);
  if (r.region == nullptr) return;
  const auto key = std::make_pair(
      static_cast<int>(r.region - regions_.data()),
      static_cast<std::uint64_t>(r.offset / opts_.granule));
  if (const auto it = release_clocks_.find(key);
      it != release_clocks_.end()) {
    clocks_[static_cast<std::size_t>(pe)].join(it->second);
    ++stats_.sync_edges;
  }
}

void RaceDetector::on_atomic(int pe, const void* p, std::size_t bytes,
                             const char* site, std::uint64_t vt_ps) {
  std::scoped_lock lk(mu_);
  const Resolved r = resolve(p);
  if (r.region == nullptr) return;
  const auto key = std::make_pair(
      static_cast<int>(r.region - regions_.data()),
      static_cast<std::uint64_t>(r.offset / opts_.granule));
  VectorClock& c = clocks_[static_cast<std::size_t>(pe)];
  // Acquire: even a failed CAS observes the location, ordering us after
  // every prior release on it (this is what makes lock spin loops sound).
  if (const auto it = release_clocks_.find(key);
      it != release_clocks_.end()) {
    c.join(it->second);
  }
  ++stats_.checked_accesses;
  access_locked(pe, AccessKind::kAtomic, r, bytes, site, vt_ps);
  // Release: publish the joined clock back to the location.
  release_clocks_[key].join(c);
  c.tick(static_cast<std::size_t>(pe));
  ++stats_.sync_edges;
}

void RaceDetector::on_heap_free(const void* p, std::size_t bytes) {
  if (p == nullptr || bytes == 0) return;
  std::scoped_lock lk(mu_);
  const Resolved r = resolve(p);
  if (r.region == nullptr) return;
  const int region_idx = static_cast<int>(r.region - regions_.data());
  const std::size_t g = opts_.granule;
  const std::size_t end = std::min(r.offset + bytes, r.region->bytes);
  for (std::size_t gran = r.offset / g; gran * g < end; ++gran) {
    r.region->cells.erase(gran);
    release_clocks_.erase({region_idx, gran});
  }
}

void RaceDetector::on_rendezvous_arrive(const void* barrier,
                                        std::uint64_t generation, int tile) {
  if (tile < 0 || tile >= npes_) return;
  std::scoped_lock lk(mu_);
  rendezvous_[{barrier, generation}].joined.join(
      clocks_[static_cast<std::size_t>(tile)]);
}

void RaceDetector::on_rendezvous_release(const void* barrier,
                                         std::uint64_t generation, int tile,
                                         int parties) {
  if (tile < 0 || tile >= npes_) return;
  std::scoped_lock lk(mu_);
  const auto it = rendezvous_.find({barrier, generation});
  if (it == rendezvous_.end()) return;
  VectorClock& c = clocks_[static_cast<std::size_t>(tile)];
  c.join(it->second.joined);
  c.tick(static_cast<std::size_t>(tile));
  ++stats_.sync_edges;
  if (++it->second.released >= parties) rendezvous_.erase(it);
}

std::vector<RaceReport> RaceDetector::reports() const {
  std::scoped_lock lk(mu_);
  std::vector<RaceReport> out;
  out.reserve(pairs_.size());
  for (const auto& [key, agg] : pairs_) {
    const Region& region = regions_[static_cast<std::size_t>(key.region)];
    auto endpoint = [this](std::int32_t actor, std::uint8_t kind,
                           const std::string& site, std::uint64_t vt) {
      RaceEndpoint e;
      e.pe = actor % npes_;
      e.via_dma = actor >= npes_;
      e.kind = static_cast<AccessKind>(kind);
      e.site = site;
      e.vt_ps = vt;
      return e;
    };
    RaceReport r;
    r.first = endpoint(key.actor_a, key.kind_a, key.site_a, agg.vt_a);
    r.second = endpoint(key.actor_b, key.kind_b, key.site_b, agg.vt_b);
    r.owner_pe = region.owner_pe;
    r.is_static = region.is_static;
    r.offset = agg.min_offset;
    r.bytes = agg.max_end - agg.min_offset;
    r.suggestion = suggest_fix(r.first, r.second);
    out.push_back(std::move(r));
  }
  // pairs_ is an ordered map keyed by the canonical PairKey, so `out` is
  // already in a deterministic, schedule-independent order.
  return out;
}

RaceDetector::Stats RaceDetector::stats() const {
  std::scoped_lock lk(mu_);
  return stats_;
}

VectorClock RaceDetector::clock_of(int actor) const {
  std::scoped_lock lk(mu_);
  return clocks_.at(static_cast<std::size_t>(actor));
}

}  // namespace tshmem::analysis
