// mPIPE (multicore Programmable Intelligent Packet Engine) model.
//
// The TILE-Gx's mPIPE accelerator performs wire-speed packet
// classification, distribution, and load balancing (paper Table II); the
// paper's §VI future work proposes leveraging it to expand TSHMEM's
// shared-memory abstraction across multiple many-core devices. This module
// models the data path needed for that extension:
//
//   egress eDMA -> 10GbE-class link (serialization at link_gbps)
//     -> ingress classification pipeline (exact-match rules, else flow
//        hashing for load balancing) -> per-worker notification rings.
//
// Functionally, packets travel through real blocking queues between the
// two devices' thread pools; virtual arrival timestamps carry the link
// serialization + classification + notification costs.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "sim/device.hpp"

namespace tmc {

using tilesim::Device;
using tilesim::ps_t;
using tilesim::Tile;

struct MpipeConfig {
  double link_gbps = 10.0;     ///< XAUI/10GbE wire rate
  ps_t egress_dma_ps = 250'000;     ///< eDMA descriptor post + fetch
  ps_t classify_ps = 300'000;       ///< classification pipeline latency
  ps_t notif_ps = 450'000;          ///< notification ring delivery
  int notif_rings = 16;             ///< distribution targets
  std::size_t max_packet_bytes = 9000;  ///< jumbo frame limit
};

struct MpipePacket {
  int src_device = 0;
  int src_tile = 0;
  std::uint32_t l2_tag = 0;     ///< classification key
  std::uint64_t flow_hash = 0;  ///< load-balancing key
  std::vector<std::byte> payload;
  ps_t arrival_ps = 0;          ///< set by the ingress pipeline
  int ring = -1;                ///< set by classification
};

class MpipeEngine;

/// Full-duplex point-to-point link between two devices' mPIPE engines.
/// An engine may carry one link per remote device (full-mesh clusters).
class MpipeLink {
 public:
  MpipeLink(MpipeEngine& a, MpipeEngine& b);

  MpipeLink(const MpipeLink&) = delete;
  MpipeLink& operator=(const MpipeLink&) = delete;

 private:
  friend class MpipeEngine;
};

class MpipeEngine {
 public:
  MpipeEngine(Device& device, int device_index, MpipeConfig cfg = {});

  MpipeEngine(const MpipeEngine&) = delete;
  MpipeEngine& operator=(const MpipeEngine&) = delete;

  [[nodiscard]] const MpipeConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] int device_index() const noexcept { return device_index_; }
  [[nodiscard]] Device& device() const noexcept { return *device_; }

  /// Installs an exact-match classification rule: packets whose l2_tag
  /// matches are delivered to `ring`. Unmatched packets load-balance by
  /// flow hash across all rings.
  void add_rule(std::uint32_t l2_tag, int ring);

  /// Sends a packet toward `dst_device` over the corresponding link. The
  /// sending tile is charged the eDMA post; serialization/classification
  /// ride on the packet's arrival timestamp. Throws if no link to that
  /// device is attached, the device lacks mPIPE, or the payload exceeds
  /// the jumbo limit. The one-link overload keeps the common two-device
  /// case terse.
  void egress(Tile& sender, int dst_device, MpipePacket pkt);
  void egress(Tile& sender, MpipePacket pkt);

  [[nodiscard]] int link_count() const;

  /// Blocking receive from one notification ring; advances the caller's
  /// clock to the packet arrival time.
  MpipePacket recv(Tile& receiver, int ring);
  std::optional<MpipePacket> try_recv(Tile& receiver, int ring);

  /// Virtual time to move `bytes` across the link (serialization only).
  [[nodiscard]] ps_t serialization_ps(std::size_t bytes) const;

  /// One-way latency for a packet of `bytes` (dma + wire + classify +
  /// notification).
  [[nodiscard]] ps_t one_way_ps(std::size_t bytes) const;

  [[nodiscard]] std::size_t queued(int ring) const;
  [[nodiscard]] std::uint64_t packets_ingressed() const;

 private:
  struct Ring {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<MpipePacket> packets;
  };

  Device* device_;
  int device_index_;
  MpipeConfig cfg_;
  std::map<int, MpipeEngine*> peers_;  // remote device index -> engine

  mutable std::mutex rules_mu_;
  std::map<std::uint32_t, int> rules_;
  std::vector<std::unique_ptr<Ring>> rings_;
  std::atomic<std::uint64_t> ingressed_{0};

  friend class MpipeLink;

  /// Ingress path run on the *receiving* engine: classify and enqueue.
  void ingress(MpipePacket pkt);
  [[nodiscard]] int classify(const MpipePacket& pkt) const;
};

}  // namespace tmc
