// TMC spin and sync barriers (paper §III-D).
//
// Functionally both are real rendezvous barriers over mutex/condvar. Their
// virtual-time models differ:
//   - the spin barrier polls a shared counter: low overhead, cost grows
//     with the number of participating tiles (coherence traffic on the
//     counter line);
//   - the sync barrier round-trips through the Linux scheduler and pays a
//     large per-tile penalty (Fig 5: 321 us / 786 us at 36 tiles).
// Every participant leaves with clock = max(arrival clocks) + model(n).
#pragma once

#include <condition_variable>
#include <functional>
#include <mutex>

#include "sim/device.hpp"

namespace tmc {

using tilesim::Device;
using tilesim::ps_t;
using tilesim::Tile;

/// Reusable rendezvous that gathers the participants' virtual arrival times
/// and releases everyone at `release_fn(max_arrival, parties)`.
class VtBarrier {
 public:
  using ReleaseFn = std::function<ps_t(ps_t max_arrival, int parties)>;

  /// `device` (optional) enables the blocking-wait watchdog: a party stuck
  /// waiting longer than the device watchdog's budget gets a diagnostic
  /// timeout instead of hanging. nullptr keeps the plain wait.
  VtBarrier(int parties, ReleaseFn release_fn,
            const Device* device = nullptr);

  VtBarrier(const VtBarrier&) = delete;
  VtBarrier& operator=(const VtBarrier&) = delete;

  /// Blocks until all parties arrive; advances the caller's clock to the
  /// computed release time. Reusable across generations.
  void wait(Tile& self);

  [[nodiscard]] int parties() const noexcept { return parties_; }

  /// Total wait() calls across all participants (metrics scrape).
  [[nodiscard]] std::uint64_t waits() const;

 private:
  int parties_;
  ReleaseFn release_fn_;
  const Device* device_ = nullptr;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  int arrived_ = 0;
  std::uint64_t generation_ = 0;
  std::uint64_t waits_ = 0;
  ps_t max_arrival_ = 0;
  int max_arrival_tile_ = -1;  ///< last arriver (min-id tie-break)
  ps_t release_time_ = 0;
  int release_src_ = -1;  ///< producer of release_time_ (profiler edge)
};

/// TMC spin barrier: use only with one task per tile (paper §III-D).
class SpinBarrier {
 public:
  SpinBarrier(Device& device, int parties);
  void wait(Tile& self) { barrier_.wait(self); }
  [[nodiscard]] int parties() const noexcept { return barrier_.parties(); }
  [[nodiscard]] std::uint64_t waits() const { return barrier_.waits(); }

  /// Modeled one-shot latency for `parties` tiles (for Fig 5 tables).
  [[nodiscard]] static ps_t model_latency_ps(const tilesim::DeviceConfig& cfg,
                                             int parties);

 private:
  VtBarrier barrier_;
};

/// TMC sync barrier: interacts with the scheduler; usable when tiles are
/// oversubscribed, at a large latency cost.
class SyncBarrier {
 public:
  SyncBarrier(Device& device, int parties);
  void wait(Tile& self) { barrier_.wait(self); }
  [[nodiscard]] int parties() const noexcept { return barrier_.parties(); }
  [[nodiscard]] std::uint64_t waits() const { return barrier_.waits(); }

  [[nodiscard]] static ps_t model_latency_ps(const tilesim::DeviceConfig& cfg,
                                             int parties);

 private:
  VtBarrier barrier_;
};

/// tmc_mem_fence(): blocks until all outstanding stores are visible.
/// Real fence plus a small modeled drain cost.
void mem_fence(Tile& self);

}  // namespace tmc
