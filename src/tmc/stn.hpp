// STN — the TILEPro's developer-defined statically routed network.
//
// The paper (§II-C) notes the TILEPro's iMesh consists of "four dynamically
// dimension-order-routed networks and one developer-defined statically
// routed network"; the TILE-Gx replaced the latter with a fifth dynamic
// network. On the STN, routes are configured once (each switch is
// programmed with fixed input->output port mappings), so messages carry no
// header and pay no per-packet route computation — a few cycles of setup
// instead of the UDN's ~18 ns — at the price of static, conflict-free
// route planning.
//
// This module models route configuration (validated against mesh
// adjacency, with switch-port conflict detection), transfer timing
// (setup + hops * cycle + (words-1) * cycle), and real inter-thread
// delivery through per-route queues.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "sim/device.hpp"
#include "sim/topology.hpp"

namespace tmc {

using tilesim::Device;
using tilesim::ps_t;
using tilesim::Tile;

struct StnMessage {
  int route = -1;
  int src_tile = 0;
  std::vector<std::uint64_t> payload;  // 4-byte words on TILEPro (modeled 64)
  ps_t arrival_ps = 0;
};

class StaticNetwork {
 public:
  explicit StaticNetwork(Device& device);

  StaticNetwork(const StaticNetwork&) = delete;
  StaticNetwork& operator=(const StaticNetwork&) = delete;

  /// Programs a unidirectional route through the given ordered tile path
  /// (every consecutive pair must be mesh-adjacent; length >= 2). Each
  /// switch's directional ports are exclusive resources: two routes may not
  /// enter-and-leave the same tile through the same port pair. Returns the
  /// route id.
  int configure_route(const std::vector<int>& path);

  [[nodiscard]] int route_count() const;
  [[nodiscard]] const std::vector<int>& route_path(int route) const;

  /// Sends `words` along `route`; the caller must sit at the route's head.
  void send(Tile& sender, int route, std::span<const std::uint64_t> words);

  /// Blocking receive at the route's tail; advances the caller's clock to
  /// the arrival time.
  StnMessage recv(Tile& receiver, int route);
  std::optional<StnMessage> try_recv(Tile& receiver, int route);

  /// One-way latency on the route for `words` payload words.
  [[nodiscard]] ps_t route_latency_ps(int route, int words) const;

 private:
  struct Route {
    std::vector<int> path;
    mutable std::mutex mu;
    std::condition_variable cv;
    std::deque<StnMessage> messages;
  };

  Device* device_;
  mutable std::mutex routes_mu_;
  std::vector<std::unique_ptr<Route>> routes_;
  // Occupied switch ports: (tile, direction) pairs, direction encoding the
  // outgoing port used by some route.
  std::vector<std::pair<int, tilesim::Dir>> occupied_ports_;

  [[nodiscard]] Route& route_at(int route) const;
};

}  // namespace tmc
