#include "tmc/alloc.hpp"

#include <cstdlib>
#include <stdexcept>

namespace tmc {

Allocator::~Allocator() {
  std::scoped_lock lk(mu_);
  for (void* p : private_allocs_) ::operator delete(p);
}

void* Allocator::alloc(const AllocAttr& attr, std::size_t bytes, int tile) {
  if (bytes == 0) throw std::invalid_argument("alloc of zero bytes");
  std::scoped_lock lk(mu_);
  if (attr.shared) {
    const std::string name = "tmc_alloc_" + std::to_string(next_id_++);
    void* p = cmem_->map(name, bytes, attr.homing, tile);
    shared_names_.insert(name);
    shared_by_ptr_.emplace(p, name);
    return p;
  }
  void* p = ::operator new(bytes, std::align_val_t{attr.alignment});
  // operator new with alignment must be paired with the aligned delete;
  // store the alignment implicitly by always using 64 in free().
  if (attr.alignment != 64) {
    ::operator delete(p, std::align_val_t{attr.alignment});
    throw std::invalid_argument("private allocations support 64-byte alignment");
  }
  private_allocs_.insert(p);
  return p;
}

void Allocator::free(void* p) {
  if (p == nullptr) return;
  std::scoped_lock lk(mu_);
  if (auto it = shared_by_ptr_.find(p); it != shared_by_ptr_.end()) {
    cmem_->unmap(it->second);
    shared_names_.erase(it->second);
    shared_by_ptr_.erase(it);
    return;
  }
  if (private_allocs_.erase(p) == 0) {
    throw std::invalid_argument("free of pointer not owned by Allocator");
  }
  ::operator delete(p, std::align_val_t{64});
}

std::size_t Allocator::live_allocations() const {
  std::scoped_lock lk(mu_);
  return private_allocs_.size() + shared_by_ptr_.size();
}

}  // namespace tmc
