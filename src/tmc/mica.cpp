#include "tmc/mica.hpp"

#include <stdexcept>

#include "util/rng.hpp"

namespace tmc {

MicaEngine::MicaEngine(Device& device, MicaConfig cfg)
    : device_(&device), cfg_(cfg) {
  if (!device.config().has_mica) {
    throw std::invalid_argument(device.config().name +
                                " has no MiCA accelerator (paper Table II)");
  }
}

ps_t MicaEngine::offload_ps(std::size_t bytes, double gbps) const {
  const double secs = static_cast<double>(bytes) * 8.0 / (gbps * 1e9);
  return cfg_.setup_ps + static_cast<ps_t>(secs * 1e12 + 0.5);
}

void MicaEngine::charge_offload(Tile& tile, std::size_t bytes, double gbps) {
  // The engine is a shared resource: an operation starts when both the
  // caller has issued it and the engine is free, and the caller blocks
  // until completion (synchronous offload).
  const ps_t issue = tile.clock().now();
  ps_t complete;
  {
    std::scoped_lock lk(engine_mu_);
    const ps_t start = std::max(issue, engine_free_);
    complete = start + offload_ps(bytes, gbps);
    engine_free_ = complete;
  }
  tile.clock().advance_to(complete);
  completed_.fetch_add(1, std::memory_order_relaxed);
}

void MicaEngine::reset() noexcept {
  std::scoped_lock lk(engine_mu_);
  engine_free_ = 0;
}

std::uint32_t MicaEngine::crc32_impl(
    std::span<const std::byte> data) noexcept {
  // Standard CRC-32 (IEEE 802.3) bitwise, reflected.
  std::uint32_t crc = 0xffffffffu;
  for (const std::byte b : data) {
    crc ^= static_cast<std::uint32_t>(b);
    for (int k = 0; k < 8; ++k) {
      crc = (crc >> 1) ^ (0xedb88320u & (0u - (crc & 1u)));
    }
  }
  return ~crc;
}

void MicaEngine::cipher_impl(std::span<std::byte> data,
                             std::uint64_t key) noexcept {
  tshmem_util::Xoshiro256 keystream(key);
  std::size_t i = 0;
  while (i + 8 <= data.size()) {
    const std::uint64_t ks = keystream.next();
    for (int k = 0; k < 8; ++k) {
      data[i + static_cast<std::size_t>(k)] ^=
          static_cast<std::byte>(ks >> (8 * k));
    }
    i += 8;
  }
  if (i < data.size()) {
    const std::uint64_t ks = keystream.next();
    for (int k = 0; i < data.size(); ++i, ++k) {
      data[i] ^= static_cast<std::byte>(ks >> (8 * k));
    }
  }
}

std::uint32_t MicaEngine::crc32(Tile& tile, std::span<const std::byte> data) {
  charge_offload(tile, data.size(), cfg_.crc_gbps);
  return crc32_impl(data);
}

void MicaEngine::cipher(Tile& tile, std::span<std::byte> data,
                        std::uint64_t key) {
  charge_offload(tile, data.size(), cfg_.crypto_gbps);
  cipher_impl(data, key);
}

std::size_t MicaEngine::compress(Tile& tile, std::span<const std::byte> in,
                                 std::span<std::byte> out) {
  charge_offload(tile, in.size(), cfg_.comp_gbps);
  std::size_t o = 0;
  std::size_t i = 0;
  while (i < in.size()) {
    const std::byte value = in[i];
    std::size_t run = 1;
    while (i + run < in.size() && in[i + run] == value && run < 255) ++run;
    if (o + 2 > out.size()) {
      throw std::length_error("MiCA compress: output buffer too small");
    }
    out[o++] = static_cast<std::byte>(run);
    out[o++] = value;
    i += run;
  }
  return o;
}

std::size_t MicaEngine::decompress(Tile& tile, std::span<const std::byte> in,
                                   std::span<std::byte> out) {
  charge_offload(tile, in.size(), cfg_.comp_gbps);
  if (in.size() % 2 != 0) {
    throw std::invalid_argument("MiCA decompress: truncated RLE stream");
  }
  std::size_t o = 0;
  for (std::size_t i = 0; i < in.size(); i += 2) {
    const auto run = static_cast<std::size_t>(in[i]);
    if (run == 0) {
      throw std::invalid_argument("MiCA decompress: zero-length run");
    }
    if (o + run > out.size()) {
      throw std::invalid_argument("MiCA decompress: output overflow");
    }
    for (std::size_t k = 0; k < run; ++k) out[o++] = in[i + 1];
  }
  return o;
}

std::uint32_t MicaEngine::crc32_software(Tile& tile,
                                         std::span<const std::byte> data,
                                         MicaSoftwareCosts costs) {
  tile.charge_int_ops(data.size() * costs.crc_ops_per_byte);
  return crc32_impl(data);
}

void MicaEngine::cipher_software(Tile& tile, std::span<std::byte> data,
                                 std::uint64_t key, MicaSoftwareCosts costs) {
  tile.charge_int_ops(data.size() * costs.cipher_ops_per_byte);
  cipher_impl(data, key);
}

}  // namespace tmc
