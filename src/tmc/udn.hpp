// User Dynamic Network (UDN) model (paper §III-C).
//
// Real Tilera tiles exchange packets over a dimension-order-routed dynamic
// network: a 1-word header carrying the destination plus up to 127 payload
// words land in one of four demultiplexing queues at the destination tile.
// Here packets travel through blocking inter-thread queues (functional
// behaviour) and carry a virtual arrival timestamp computed from the wire
// model (timing behaviour):
//
//   arrival = departure + setup_teardown + hops*cycle + (words-1)*cycle
//             + turn_cost + first_leg_direction_bias
//
// The receiver's clock advances to max(now, arrival) + rx_overhead, so the
// halved round-trip measurement of Fig 4 / Table III reproduces the paper's
// derivation exactly.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <vector>

#include "sim/device.hpp"

namespace tmc {

using tilesim::Device;
using tilesim::ps_t;
using tilesim::Tile;

/// Demux queue identifiers. TSHMEM reserves queue 3 for barrier tokens and
/// queue 2 for collective control so application traffic on 0/1 cannot
/// stall synchronization.
inline constexpr int kUdnQueue0 = 0;
inline constexpr int kUdnQueue1 = 1;
inline constexpr int kUdnCollectiveQueue = 2;
inline constexpr int kUdnBarrierQueue = 3;

/// The 1-word UDN header: destination tile, demux queue tag, payload words.
struct UdnHeader {
  int dest_tile = 0;
  int demux_queue = 0;
  int payload_words = 0;

  [[nodiscard]] std::uint64_t encode() const noexcept;
  static UdnHeader decode(std::uint64_t word) noexcept;

  friend bool operator==(const UdnHeader&, const UdnHeader&) = default;
};

struct UdnPacket {
  int src_tile = 0;
  UdnHeader header;
  ps_t arrival_ps = 0;
  std::vector<std::uint64_t> payload;
  /// Per-packet checksum over (src, header, payload), computed at send and
  /// verified at every receive (robustness layer). Host-side only: it never
  /// costs virtual time.
  std::uint64_t checksum = 0;
};

/// The checksum both endpoints compute (exposed for tests).
[[nodiscard]] std::uint64_t udn_checksum(int src_tile, const UdnHeader& header,
                                         std::span<const std::uint64_t> words)
    noexcept;

class UdnFabric {
 public:
  explicit UdnFabric(Device& device);

  UdnFabric(const UdnFabric&) = delete;
  UdnFabric& operator=(const UdnFabric&) = delete;

  /// Sends `words` from `sender` to demux queue `queue` on `dst_tile`.
  /// Blocks while the destination queue lacks buffer space (each queue can
  /// hold udn_max_payload_words words, as on hardware). Throws
  /// std::invalid_argument for oversized payloads or bad destinations.
  ///
  /// When a fault engine is attached to the device, each send attempt may
  /// draw a drop/corrupt verdict (link-level CRC catches the bad flit at
  /// injection): the sender backs off exponentially in virtual time and
  /// retries, up to plan.udn_max_retries, then throws
  /// tshmem::Error(kRetriesExhausted). Delivered packets may additionally
  /// draw an arrival delay. No engine / empty plan ⇒ byte-identical
  /// behaviour to the unhardened path.
  void send(Tile& sender, int dst_tile, int queue,
            std::span<const std::uint64_t> words);

  /// Convenience: single-word message.
  void send1(Tile& sender, int dst_tile, int queue, std::uint64_t word);

  /// Blocking receive from one of the caller's demux queues. Advances the
  /// receiving tile's clock to the packet arrival time.
  UdnPacket recv(Tile& receiver, int queue);

  /// Non-blocking receive; std::nullopt when the queue is empty. On success
  /// the clock advances exactly as in recv().
  std::optional<UdnPacket> try_recv(Tile& receiver, int queue);

  /// Blocking receive that does NOT advance the receiver's clock. For
  /// protocol layers that match packets out of order: a packet that gets
  /// stashed for later must not drag the clock to its arrival time (that
  /// would make virtual time depend on host scheduling). The caller
  /// advances to pkt.arrival_ps when it actually consumes a packet.
  UdnPacket recv_raw(Tile& receiver, int queue);

  /// Pure wire-latency query (no state change): virtual time for a packet
  /// of `words` payload words from src to dst.
  [[nodiscard]] ps_t wire_latency_ps(int src_tile, int dst_tile,
                                     int words) const;

  /// Total words currently buffered in a destination queue (for tests).
  [[nodiscard]] std::size_t queued_words(int tile, int queue) const;

  /// Cumulative traffic injected by a tile since fabric construction
  /// (metrics scrape): packets, payload words, mesh hops traversed, plus
  /// recovery accounting (fault-injected retries and the virtual-time
  /// backoff they cost the sender).
  struct TileTraffic {
    std::uint64_t packets = 0;
    std::uint64_t words = 0;
    std::uint64_t hops = 0;
    std::uint64_t retries = 0;
    std::uint64_t backoff_ps = 0;
  };
  [[nodiscard]] TileTraffic traffic(int tile) const;

  [[nodiscard]] Device& device() const noexcept { return *device_; }

 private:
  struct TrafficCell {
    std::atomic<std::uint64_t> packets{0};
    std::atomic<std::uint64_t> words{0};
    std::atomic<std::uint64_t> hops{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> backoff_ps{0};
  };

  struct Queue {
    mutable std::mutex mu;
    std::condition_variable cv_data;   // signaled when a packet arrives
    std::condition_variable cv_space;  // signaled when space frees up
    std::deque<UdnPacket> packets;
    std::size_t buffered_words = 0;
  };

  Device* device_;
  int queues_per_tile_;
  std::vector<std::unique_ptr<Queue>> queues_;  // tile * queues_per_tile_
  std::vector<std::unique_ptr<TrafficCell>> traffic_;  // per sender tile

  [[nodiscard]] Queue& queue_at(int tile, int queue) const;
  void check_queue_args(int tile, int queue) const;
};

}  // namespace tmc
