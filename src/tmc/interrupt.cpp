#include "tmc/interrupt.hpp"

#include <algorithm>
#include <stdexcept>

namespace tmc {

InterruptController::InterruptController(Device& device) : device_(&device) {
  per_tile_.reserve(static_cast<std::size_t>(device.tile_count()));
  for (int i = 0; i < device.tile_count(); ++i) {
    per_tile_.push_back(std::make_unique<PerTile>());
  }
}

void InterruptController::raise(Tile& requester, int target_tile,
                                const std::function<void(Tile&)>& handler) {
  if (!supported()) {
    throw std::runtime_error(
        "UDN interrupts are not supported on " + device_->config().name +
        " (static symmetric transfers unavailable, paper SIV-B2)");
  }
  if (target_tile < 0 || target_tile >= device_->tile_count()) {
    throw std::invalid_argument("interrupt target tile out of range");
  }
  if (target_tile == requester.id()) {
    throw std::invalid_argument("a tile cannot interrupt itself");
  }
  const auto& cfg = device_->config();
  Tile& target = device_->tile(target_tile);
  PerTile& state = *per_tile_[static_cast<std::size_t>(target_tile)];

  // Dispatch: the requester pays to form and route the interrupt packet.
  requester.clock().advance(cfg.interrupt_dispatch_ps);
  const ps_t raise_time = requester.clock().now();

  ps_t completion;
  {
    std::scoped_lock lk(state.mu);
    // The handler cannot start before the interrupt arrives at the target,
    // nor before the target finishes whatever its clock says it is doing.
    target.clock().advance_to(raise_time);
    target.clock().advance(cfg.interrupt_service_ps);
    handler(target);
    completion = target.clock().now();
    ++state.serviced;
  }
  // The requester learns of completion (an acknowledgment over the UDN).
  requester.clock().advance_to(completion);
}

std::uint64_t InterruptController::serviced(int tile) const {
  if (tile < 0 || tile >= device_->tile_count()) {
    throw std::invalid_argument("tile out of range");
  }
  std::scoped_lock lk(per_tile_[static_cast<std::size_t>(tile)]->mu);
  return per_tile_[static_cast<std::size_t>(tile)]->serviced;
}

}  // namespace tmc
