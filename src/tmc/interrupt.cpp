#include "tmc/interrupt.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/fault.hpp"
#include "sim/profile_hook.hpp"

namespace tmc {

InterruptController::InterruptController(Device& device) : device_(&device) {
  per_tile_.reserve(static_cast<std::size_t>(device.tile_count()));
  for (int i = 0; i < device.tile_count(); ++i) {
    per_tile_.push_back(std::make_unique<PerTile>());
  }
}

void InterruptController::raise(Tile& requester, int target_tile,
                                const std::function<void(Tile&)>& handler) {
  if (!supported()) {
    throw std::runtime_error(
        "UDN interrupts are not supported on " + device_->config().name +
        " (static symmetric transfers unavailable, paper SIV-B2)");
  }
  if (target_tile < 0 || target_tile >= device_->tile_count()) {
    throw std::invalid_argument("interrupt target tile out of range");
  }
  if (target_tile == requester.id()) {
    throw std::invalid_argument("a tile cannot interrupt itself");
  }
  const auto& cfg = device_->config();
  PerTile& state = *per_tile_[static_cast<std::size_t>(target_tile)];

  // Dispatch: the requester pays to form and route the interrupt packet.
  requester.clock().advance(cfg.interrupt_dispatch_ps);
  const ps_t raise_time = requester.clock().now();

  ps_t completion;
  {
    std::scoped_lock lk(state.mu);
    // The handler runs in the target's interrupt service context. Its
    // clock is only ever touched under state.mu — never raced by the
    // target's own thread — so service timing (and therefore any replayed
    // run) is independent of host scheduling. Back-to-back services on
    // the same target queue on this timeline.
    if (!state.service) {
      state.service = std::make_unique<Tile>(*device_, target_tile);
      state.clock_gen = device_->clock_generation();
    } else if (state.clock_gen != device_->clock_generation()) {
      state.service->clock().reset();
      state.clock_gen = device_->clock_generation();
    }
    Tile& service = *state.service;
    // The handler cannot start before the interrupt arrives at the target
    // nor before the previous service on this target completed.
    service.clock().advance_to(raise_time);
    // Injected tile stall: the servicing tile loses a window of virtual
    // time (modeling an OS preemption / competing interrupt) before the
    // handler runs. Decided deterministically by the fault engine.
    if (tilesim::FaultEngine* fault = device_->fault(); fault != nullptr) {
      const ps_t stall =
          fault->tile_stall(target_tile, service.clock().now());
      if (stall > 0) service.clock().advance(stall);
    }
    service.clock().advance(cfg.interrupt_service_ps);
    handler(service);
    completion = service.clock().now();
    ++state.serviced;
  }
  // The requester learns of completion (an acknowledgment over the UDN).
  tilesim::prof_wait_edge(requester, target_tile, tilesim::ProfPhase::kDma,
                          "interrupt", raise_time, completion);
  requester.clock().advance_to(completion);
}

std::uint64_t InterruptController::serviced(int tile) const {
  if (tile < 0 || tile >= device_->tile_count()) {
    throw std::invalid_argument("tile out of range");
  }
  std::scoped_lock lk(per_tile_[static_cast<std::size_t>(tile)]->mu);
  return per_tile_[static_cast<std::size_t>(tile)]->serviced;
}

}  // namespace tmc
