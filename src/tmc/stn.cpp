#include "tmc/stn.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/guarded_wait.hpp"

namespace tmc {

namespace {

tilesim::Dir step_direction(const tilesim::Topology& topo, int from, int to) {
  if (topo.hops(from, to) != 1) {
    throw std::invalid_argument(
        "STN route path must consist of mesh-adjacent tiles");
  }
  return topo.first_direction(from, to);
}

}  // namespace

StaticNetwork::StaticNetwork(Device& device) : device_(&device) {
  if (!device.config().has_stn) {
    throw std::invalid_argument(
        device.config().name +
        " has no static network (the TILE-Gx replaced it with a fifth "
        "dynamic network, paper SII-C)");
  }
}

int StaticNetwork::configure_route(const std::vector<int>& path) {
  if (path.size() < 2) {
    throw std::invalid_argument("STN route needs at least two tiles");
  }
  const auto& topo = device_->topology();
  for (const int tile : path) {
    if (tile < 0 || tile >= device_->tile_count()) {
      throw std::invalid_argument("STN route tile out of range");
    }
  }
  // Validate adjacency and collect the switch ports the route claims.
  std::vector<std::pair<int, tilesim::Dir>> claims;
  claims.reserve(path.size() - 1);
  for (std::size_t i = 0; i + 1 < path.size(); ++i) {
    claims.emplace_back(path[i], step_direction(topo, path[i], path[i + 1]));
  }
  std::scoped_lock lk(routes_mu_);
  for (const auto& claim : claims) {
    if (std::find(occupied_ports_.begin(), occupied_ports_.end(), claim) !=
        occupied_ports_.end()) {
      throw std::invalid_argument(
          "STN route conflicts with an existing route's switch port (tile " +
          std::to_string(claim.first) + ", " +
          tilesim::to_string(claim.second) + ")");
    }
  }
  occupied_ports_.insert(occupied_ports_.end(), claims.begin(), claims.end());
  auto route = std::make_unique<Route>();
  route->path = path;
  routes_.push_back(std::move(route));
  return static_cast<int>(routes_.size()) - 1;
}

StaticNetwork::Route& StaticNetwork::route_at(int route) const {
  std::scoped_lock lk(routes_mu_);
  if (route < 0 || route >= static_cast<int>(routes_.size())) {
    throw std::out_of_range("STN route id out of range");
  }
  return *routes_[static_cast<std::size_t>(route)];
}

int StaticNetwork::route_count() const {
  std::scoped_lock lk(routes_mu_);
  return static_cast<int>(routes_.size());
}

const std::vector<int>& StaticNetwork::route_path(int route) const {
  return route_at(route).path;
}

ps_t StaticNetwork::route_latency_ps(int route, int words) const {
  const Route& r = route_at(route);
  const auto& cfg = device_->config();
  const auto hops = static_cast<ps_t>(r.path.size() - 1);
  ps_t lat = cfg.stn_setup_ps + hops * cfg.cycle_ps();
  if (words > 1) {
    lat += static_cast<ps_t>(words - 1) * cfg.cycle_ps();
  }
  return lat;
}

void StaticNetwork::send(Tile& sender, int route,
                         std::span<const std::uint64_t> words) {
  Route& r = route_at(route);
  if (r.path.front() != sender.id()) {
    throw std::invalid_argument(
        "STN send must originate at the route's head tile");
  }
  if (words.empty()) {
    throw std::invalid_argument("STN message needs at least one word");
  }
  StnMessage msg;
  msg.route = route;
  msg.src_tile = sender.id();
  msg.payload.assign(words.begin(), words.end());
  msg.arrival_ps =
      sender.clock().now() + route_latency_ps(route, static_cast<int>(words.size()));
  {
    std::scoped_lock lk(r.mu);
    r.messages.push_back(std::move(msg));
  }
  r.cv.notify_one();
  sender.clock().advance(static_cast<ps_t>(words.size()) *
                         device_->config().cycle_ps());
}

StnMessage StaticNetwork::recv(Tile& receiver, int route) {
  Route& r = route_at(route);
  if (r.path.back() != receiver.id()) {
    throw std::invalid_argument(
        "STN recv must happen at the route's tail tile");
  }
  StnMessage msg;
  {
    std::unique_lock lk(r.mu);
    tilesim::guarded_wait(*device_, lk, r.cv, receiver.id(), "stn recv",
                          [&] { return !r.messages.empty(); });
    msg = std::move(r.messages.front());
    r.messages.pop_front();
  }
  receiver.clock().advance_to(msg.arrival_ps);
  return msg;
}

std::optional<StnMessage> StaticNetwork::try_recv(Tile& receiver, int route) {
  Route& r = route_at(route);
  if (r.path.back() != receiver.id()) {
    throw std::invalid_argument(
        "STN recv must happen at the route's tail tile");
  }
  StnMessage msg;
  {
    std::scoped_lock lk(r.mu);
    if (r.messages.empty()) return std::nullopt;
    msg = std::move(r.messages.front());
    r.messages.pop_front();
  }
  receiver.clock().advance_to(msg.arrival_ps);
  return msg;
}

}  // namespace tmc
