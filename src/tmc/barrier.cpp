#include "tmc/barrier.hpp"

#include <atomic>
#include <stdexcept>

#include "sim/guarded_wait.hpp"
#include "sim/profile_hook.hpp"
#include "sim/sync_observer.hpp"

namespace tmc {

VtBarrier::VtBarrier(int parties, ReleaseFn release_fn, const Device* device)
    : parties_(parties), release_fn_(std::move(release_fn)), device_(device) {
  if (parties < 1) {
    throw std::invalid_argument("VtBarrier needs at least one party");
  }
  if (!release_fn_) {
    throw std::invalid_argument("VtBarrier needs a release function");
  }
}

std::uint64_t VtBarrier::waits() const {
  std::scoped_lock lk(mu_);
  return waits_;
}

void VtBarrier::wait(Tile& self) {
  const ps_t arrival = self.clock().now();
  // Rendezvous observer (tshmem-check): arrivals are reported under the
  // barrier lock — every arrive completes before any release — so the
  // detector's all-join is deterministic. Purely observational; never
  // touches a SimClock.
  tilesim::SyncObserver* observer =
      device_ != nullptr ? device_->sync_observer() : nullptr;
  std::unique_lock lk(mu_);
  ++waits_;
  // Track which tile produced max_arrival_ so the profiler's release edge
  // can name its producer. Strictly-later arrival wins; ties keep the
  // lowest tile id so the attribution is deterministic across schedules.
  if (arrived_ == 0 || arrival > max_arrival_ ||
      (arrival == max_arrival_ && self.id() < max_arrival_tile_)) {
    max_arrival_ = std::max(max_arrival_, arrival);
    max_arrival_tile_ = self.id();
  }
  const std::uint64_t my_generation = generation_;
  if (observer != nullptr) {
    observer->on_rendezvous_arrive(this, my_generation, self.id());
  }
  if (++arrived_ == parties_) {
    release_time_ = release_fn_(max_arrival_, parties_);
    release_src_ = max_arrival_tile_;
    arrived_ = 0;
    max_arrival_ = 0;
    max_arrival_tile_ = -1;
    ++generation_;
    const int release_src = release_src_;
    lk.unlock();
    cv_.notify_all();
    if (observer != nullptr) {
      observer->on_rendezvous_release(this, my_generation, self.id(),
                                      parties_);
    }
    self.clock().advance_to(release_time_);
    tilesim::prof_wait_edge(self, release_src, tilesim::ProfPhase::kBarrier,
                            "tmc_barrier", arrival, self.clock().now());
    return;
  }
  tilesim::guarded_wait(device_, lk, cv_, self.id(), "barrier wait",
                        [&] { return generation_ != my_generation; });
  const ps_t release = release_time_;
  const int release_src = release_src_;
  lk.unlock();
  if (observer != nullptr) {
    observer->on_rendezvous_release(this, my_generation, self.id(),
                                    parties_);
  }
  self.clock().advance_to(release);
  tilesim::prof_wait_edge(self, release_src, tilesim::ProfPhase::kBarrier,
                          "tmc_barrier", arrival, self.clock().now());
}

SpinBarrier::SpinBarrier(Device& device, int parties)
    : barrier_(
          parties,
          [cfg = &device.config()](ps_t max_arrival, int n) -> ps_t {
            return max_arrival + model_latency_ps(*cfg, n);
          },
          &device) {}

ps_t SpinBarrier::model_latency_ps(const tilesim::DeviceConfig& cfg,
                                   int parties) {
  return cfg.barrier.spin_base_ps +
         static_cast<ps_t>(parties) * cfg.barrier.spin_per_tile_ps;
}

SyncBarrier::SyncBarrier(Device& device, int parties)
    : barrier_(
          parties,
          [cfg = &device.config()](ps_t max_arrival, int n) -> ps_t {
            return max_arrival + model_latency_ps(*cfg, n);
          },
          &device) {}

ps_t SyncBarrier::model_latency_ps(const tilesim::DeviceConfig& cfg,
                                   int parties) {
  return cfg.barrier.sync_base_ps +
         static_cast<ps_t>(parties) * cfg.barrier.sync_per_tile_ps;
}

void mem_fence(Tile& self) {
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // Draining the store buffer costs a handful of cycles when no DMA is
  // outstanding; all TSHMEM copies complete synchronously in this model.
  self.clock().advance(self.device().config().cycle_ps() * 8);
}

}  // namespace tmc
