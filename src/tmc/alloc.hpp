// tmc_alloc-style attribute allocation: pick the memory space and homing
// strategy for an allocation, mirroring tmc_alloc_set_home() and
// tmc_alloc_map(). Shared allocations are carved from CommonMemory; private
// ones from the process heap (tracked so they can be classified).
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <set>
#include <string>

#include "tmc/common_memory.hpp"

namespace tmc {

struct AllocAttr {
  bool shared = true;
  Homing homing = Homing::kHashForHome;
  std::size_t alignment = 64;
};

/// Allocator facade over CommonMemory + the heap.
class Allocator {
 public:
  explicit Allocator(CommonMemory& cmem) : cmem_(&cmem) {}

  Allocator(const Allocator&) = delete;
  Allocator& operator=(const Allocator&) = delete;

  ~Allocator();

  /// Allocates `bytes` with the given attributes, on behalf of `tile`.
  void* alloc(const AllocAttr& attr, std::size_t bytes, int tile);
  void free(void* p);

  [[nodiscard]] bool is_shared(const void* p) const noexcept {
    return cmem_->contains(p);
  }
  [[nodiscard]] std::size_t live_allocations() const;

 private:
  CommonMemory* cmem_;
  mutable std::mutex mu_;
  std::set<void*> private_allocs_;
  std::set<std::string> shared_names_;
  std::uint64_t next_id_ = 0;

  // Reverse map from pointer to the CommonMemory mapping name.
  std::map<const void*, std::string> shared_by_ptr_;
};

}  // namespace tmc
