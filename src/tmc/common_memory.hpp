// TMC "common memory" equivalent (paper §III-B).
//
// Tilera's tmc_cmem gives cooperating processes a shared-memory region
// mapped at the same virtual address in every process, so pointers can be
// shared directly, and lets *any* process create new mappings that become
// visible to the others. With tiles as threads both properties are native;
// this class provides the allocation/mapping API, the address classifier
// (shared vs private) TSHMEM's put/get paths depend on, and per-mapping
// homing attributes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "sim/config.hpp"

namespace tmc {

using tilesim::Homing;

class CommonMemory {
 public:
  /// One backing arena of `bytes`. All mappings are carved from it, so the
  /// classifier is a simple range check.
  explicit CommonMemory(std::size_t bytes);
  ~CommonMemory();

  CommonMemory(const CommonMemory&) = delete;
  CommonMemory& operator=(const CommonMemory&) = delete;

  struct Mapping {
    std::string name;
    void* addr = nullptr;
    std::size_t bytes = 0;
    Homing homing = Homing::kHashForHome;
    int creator_tile = -1;
  };

  /// Creates a new named mapping visible to every tile; returns its base.
  /// Alignment is at least 64 bytes. Throws std::bad_alloc when the arena
  /// is exhausted, std::invalid_argument on duplicate names, and
  /// tshmem::Error(kCmemMapFailed) when an installed map-fault hook fires.
  void* map(const std::string& name, std::size_t bytes, Homing homing,
            int creator_tile);

  /// Fault-injection hook consulted at every map() attempt: return true to
  /// make that attempt fail with tshmem::Error(kCmemMapFailed). The runtime
  /// installs one forwarding to the device's FaultEngine; nullptr (the
  /// default) disables injection entirely.
  using MapFaultHook = std::function<bool(const std::string& name,
                                          int creator_tile)>;
  void set_map_fault_hook(MapFaultHook hook);

  /// Removes a mapping and returns its space to the arena.
  void unmap(const std::string& name);

  [[nodiscard]] std::optional<Mapping> lookup(const std::string& name) const;

  /// True if `p` points into the common-memory arena (i.e. is shared).
  [[nodiscard]] bool contains(const void* p) const noexcept;

  /// Homing attribute of the mapping containing `p`; kHashForHome when the
  /// pointer is not in any mapping (the device default).
  [[nodiscard]] Homing homing_of(const void* p) const;

  [[nodiscard]] void* base() const noexcept {
    return static_cast<void*>(arena_.get());
  }
  [[nodiscard]] std::size_t size() const noexcept { return arena_bytes_; }
  [[nodiscard]] std::size_t bytes_mapped() const;
  [[nodiscard]] std::size_t mapping_count() const;

  /// Cumulative allocation activity since construction (metrics scrape).
  struct Stats {
    std::uint64_t maps = 0;          // successful map() calls
    std::uint64_t unmaps = 0;        // successful unmap() calls
    std::size_t peak_bytes = 0;      // high-water mark of bytes_mapped()
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct FreeBlock {
    std::size_t offset;
    std::size_t bytes;
  };

  mutable std::mutex mu_;
  // Deliberately uninitialized backing storage (no value-init): arenas can
  // be gigabytes and zero-filling them would dominate Runtime startup.
  // Allocated with 64-byte alignment so mapped segments stay line-aligned.
  struct ArenaDeleter {
    void operator()(std::byte* p) const noexcept {
      ::operator delete[](p, std::align_val_t{64});
    }
  };
  std::unique_ptr<std::byte[], ArenaDeleter> arena_;
  std::size_t arena_bytes_ = 0;
  std::vector<FreeBlock> free_list_;              // sorted by offset
  std::map<std::string, Mapping> mappings_;       // by name
  std::map<std::size_t, std::string> by_offset_;  // mapping start -> name
  std::size_t mapped_bytes_ = 0;                  // current bytes mapped
  Stats stats_;
  MapFaultHook map_fault_hook_;

  [[nodiscard]] std::size_t offset_of(const void* p) const noexcept;
  void coalesce();
};

}  // namespace tmc
