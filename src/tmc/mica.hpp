// MiCA (Multicore iMesh Coprocessing Accelerator) model.
//
// The TILE-Gx ships a crypto/compression offload engine (paper Table II);
// the TILEPro does not. This module provides functional implementations of
// representative operations — CRC32, a keystream cipher (stand-in for the
// engine's AES modes), and RLE compression — plus the offload timing model:
// the accelerator is a shared resource, so an operation completes at
//
//   max(caller_now, engine_free) + setup + bytes / engine_rate
//
// and `engine_free` advances, modeling queuing when multiple tiles offload
// concurrently. A software fallback path charges the tile's own compute
// model instead, so benches can report the offload speedup.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <span>

#include "sim/device.hpp"

namespace tmc {

using tilesim::Device;
using tilesim::ps_t;
using tilesim::Tile;

struct MicaConfig {
  double crypto_gbps = 40.0;   ///< keystream/AES-class throughput
  double crc_gbps = 60.0;      ///< checksum pipeline
  double comp_gbps = 20.0;     ///< compression/decompression
  ps_t setup_ps = 600'000;     ///< descriptor post + context acquire
};

/// Software-path per-byte op counts (charged to the tile's compute model
/// when offload is bypassed).
struct MicaSoftwareCosts {
  std::uint64_t crc_ops_per_byte = 6;
  std::uint64_t cipher_ops_per_byte = 14;
  std::uint64_t rle_ops_per_byte = 5;
};

class MicaEngine {
 public:
  explicit MicaEngine(Device& device, MicaConfig cfg = {});

  MicaEngine(const MicaEngine&) = delete;
  MicaEngine& operator=(const MicaEngine&) = delete;

  [[nodiscard]] const MicaConfig& config() const noexcept { return cfg_; }

  // --- offloaded operations (charged via the accelerator model) -----------
  [[nodiscard]] std::uint32_t crc32(Tile& tile,
                                    std::span<const std::byte> data);
  /// In-place xoshiro-keystream cipher; applying twice with the same key
  /// restores the plaintext.
  void cipher(Tile& tile, std::span<std::byte> data, std::uint64_t key);
  /// Byte-level RLE: emits (count, value) pairs. Returns compressed size;
  /// throws std::length_error when `out` is too small (worst case 2x).
  std::size_t compress(Tile& tile, std::span<const std::byte> in,
                       std::span<std::byte> out);
  /// Inverse of compress(); returns decompressed size; throws
  /// std::invalid_argument on malformed input or overflow.
  std::size_t decompress(Tile& tile, std::span<const std::byte> in,
                         std::span<std::byte> out);

  // --- software fallback (same results, tile compute-model cost) ----------
  [[nodiscard]] std::uint32_t crc32_software(Tile& tile,
                                             std::span<const std::byte> data,
                                             MicaSoftwareCosts costs = {});
  void cipher_software(Tile& tile, std::span<std::byte> data,
                       std::uint64_t key, MicaSoftwareCosts costs = {});

  /// Modeled offload latency for `bytes` at `gbps` when the engine is idle.
  [[nodiscard]] ps_t offload_ps(std::size_t bytes, double gbps) const;

  [[nodiscard]] std::uint64_t operations_completed() const noexcept {
    return completed_.load(std::memory_order_relaxed);
  }

  /// Clears the engine's queuing state. Call whenever the device's virtual
  /// clocks are reset (e.g. between benchmark phases) — the engine-free
  /// timestamp lives on the same timeline as the tile clocks.
  void reset() noexcept;

 private:
  Device* device_;
  MicaConfig cfg_;
  std::mutex engine_mu_;
  ps_t engine_free_ = 0;  ///< virtual time the engine next becomes idle
  std::atomic<std::uint64_t> completed_{0};

  void charge_offload(Tile& tile, std::size_t bytes, double gbps);

  static std::uint32_t crc32_impl(std::span<const std::byte> data) noexcept;
  static void cipher_impl(std::span<std::byte> data,
                          std::uint64_t key) noexcept;
};

}  // namespace tmc
