// UDN interrupt emulation (paper §IV-B2).
//
// On the TILE-Gx a tile can raise an interrupt on a remote tile over the
// UDN, forcing it to service an operation it alone can perform (access to
// its private static symmetric variables). The TILEPro lacks this feature,
// which is why TSHMEM does not support static-variable transfers there.
//
// Emulation: the requesting thread executes the handler on the remote
// tile's *behalf* (all memory is reachable in-process). Timing runs on a
// dedicated per-target *service context* — a Tile whose clock is only ever
// touched under the per-target mutex: the handler cannot start before the
// interrupt arrives (the requester's raise timestamp) nor before the
// previous service on that target completed, and the requester then waits
// (in virtual time) for the handler completion. Because the service clock
// is never raced by the target's own thread, replayed runs are
// bit-identical regardless of host scheduling (docs/ROBUSTNESS.md); the
// target's main-line clock is not billed — the handler executes in its
// interrupt context, and the requester carries the full cost forward.
// A per-tile mutex serializes handlers, as a real tile services one
// interrupt at a time.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "sim/device.hpp"

namespace tmc {

using tilesim::Device;
using tilesim::ps_t;
using tilesim::Tile;

class InterruptController {
 public:
  explicit InterruptController(Device& device);

  InterruptController(const InterruptController&) = delete;
  InterruptController& operator=(const InterruptController&) = delete;

  [[nodiscard]] bool supported() const noexcept {
    return device_->config().supports_udn_interrupts;
  }

  /// Raises an interrupt on `target_tile` and runs `handler(service)` under
  /// its identity. `handler` receives the target's interrupt service
  /// context (a Tile with the target's id) and may charge additional costs
  /// (e.g. the serviced copy) to its clock. Returns after the handler
  /// completes; the requester's clock advances to the service completion
  /// time. Throws std::runtime_error when the device lacks UDN interrupts
  /// (TILEPro64).
  void raise(Tile& requester, int target_tile,
             const std::function<void(Tile&)>& handler);

  /// Count of interrupts serviced per tile (for tests/diagnostics).
  [[nodiscard]] std::uint64_t serviced(int tile) const;

 private:
  struct PerTile {
    std::mutex mu;
    std::uint64_t serviced = 0;
    /// Interrupt service context: carries the service timeline for this
    /// target. Created on first raise; its clock re-zeroes lazily when the
    /// device's clock generation moves (job/phase boundaries).
    std::unique_ptr<Tile> service;
    std::uint64_t clock_gen = 0;
  };

  Device* device_;
  std::vector<std::unique_ptr<PerTile>> per_tile_;
};

}  // namespace tmc
