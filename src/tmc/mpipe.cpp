#include "tmc/mpipe.hpp"

#include <stdexcept>

#include "sim/guarded_wait.hpp"

namespace tmc {

MpipeLink::MpipeLink(MpipeEngine& a, MpipeEngine& b) {
  if (&a == &b) {
    throw std::invalid_argument("MpipeLink endpoints must differ");
  }
  if (a.device_index_ == b.device_index_) {
    throw std::invalid_argument("MpipeLink endpoints need distinct indices");
  }
  if (a.peers_.count(b.device_index_) != 0 ||
      b.peers_.count(a.device_index_) != 0) {
    throw std::logic_error("MpipeEngine pair already linked");
  }
  a.peers_[b.device_index_] = &b;
  b.peers_[a.device_index_] = &a;
}

MpipeEngine::MpipeEngine(Device& device, int device_index, MpipeConfig cfg)
    : device_(&device), device_index_(device_index), cfg_(cfg) {
  if (!device.config().has_mpipe) {
    throw std::invalid_argument(device.config().name +
                                " has no mPIPE engine (paper Table II)");
  }
  if (cfg_.notif_rings < 1) {
    throw std::invalid_argument("mPIPE needs at least one notification ring");
  }
  rings_.reserve(static_cast<std::size_t>(cfg_.notif_rings));
  for (int i = 0; i < cfg_.notif_rings; ++i) {
    rings_.push_back(std::make_unique<Ring>());
  }
}

void MpipeEngine::add_rule(std::uint32_t l2_tag, int ring) {
  if (ring < 0 || ring >= cfg_.notif_rings) {
    throw std::invalid_argument("classification rule targets a bad ring");
  }
  std::scoped_lock lk(rules_mu_);
  rules_[l2_tag] = ring;
}

ps_t MpipeEngine::serialization_ps(std::size_t bytes) const {
  // bits / (gbps * 1e9 bits/s) seconds -> ps.
  const double secs =
      static_cast<double>(bytes) * 8.0 / (cfg_.link_gbps * 1e9);
  return static_cast<ps_t>(secs * 1e12 + 0.5);
}

ps_t MpipeEngine::one_way_ps(std::size_t bytes) const {
  return cfg_.egress_dma_ps + serialization_ps(bytes) + cfg_.classify_ps +
         cfg_.notif_ps;
}

int MpipeEngine::classify(const MpipePacket& pkt) const {
  std::scoped_lock lk(rules_mu_);
  if (const auto it = rules_.find(pkt.l2_tag); it != rules_.end()) {
    return it->second;
  }
  return static_cast<int>(pkt.flow_hash %
                          static_cast<std::uint64_t>(cfg_.notif_rings));
}

void MpipeEngine::egress(Tile& sender, int dst_device, MpipePacket pkt) {
  const auto it = peers_.find(dst_device);
  if (it == peers_.end()) {
    throw std::logic_error("mPIPE egress without a link to device " +
                           std::to_string(dst_device));
  }
  MpipeEngine& peer = *it->second;
  if (pkt.payload.size() > cfg_.max_packet_bytes) {
    throw std::invalid_argument("mPIPE packet exceeds the jumbo-frame limit");
  }
  pkt.src_device = device_index_;
  pkt.src_tile = sender.id();
  // The sender posts the eDMA descriptor and returns; the wire and the
  // remote ingress pipeline ride on the arrival timestamp.
  sender.clock().advance(cfg_.egress_dma_ps);
  pkt.arrival_ps = sender.clock().now() + serialization_ps(pkt.payload.size()) +
                   peer.cfg_.classify_ps + peer.cfg_.notif_ps;
  peer.ingress(std::move(pkt));
}

void MpipeEngine::egress(Tile& sender, MpipePacket pkt) {
  if (peers_.size() != 1) {
    throw std::logic_error(
        "destination-less mPIPE egress requires exactly one link");
  }
  egress(sender, peers_.begin()->first, std::move(pkt));
}

int MpipeEngine::link_count() const {
  return static_cast<int>(peers_.size());
}

void MpipeEngine::ingress(MpipePacket pkt) {
  pkt.ring = classify(pkt);
  Ring& ring = *rings_[static_cast<std::size_t>(pkt.ring)];
  {
    std::scoped_lock lk(ring.mu);
    ring.packets.push_back(std::move(pkt));
  }
  ring.cv.notify_one();
  ingressed_.fetch_add(1, std::memory_order_relaxed);
}

MpipePacket MpipeEngine::recv(Tile& receiver, int ring_index) {
  if (ring_index < 0 || ring_index >= cfg_.notif_rings) {
    throw std::invalid_argument("mPIPE recv from a bad ring");
  }
  Ring& ring = *rings_[static_cast<std::size_t>(ring_index)];
  MpipePacket pkt;
  {
    std::unique_lock lk(ring.mu);
    tilesim::guarded_wait(*device_, lk, ring.cv, receiver.id(), "mpipe recv",
                          [&] { return !ring.packets.empty(); });
    pkt = std::move(ring.packets.front());
    ring.packets.pop_front();
  }
  receiver.clock().advance_to(pkt.arrival_ps);
  return pkt;
}

std::optional<MpipePacket> MpipeEngine::try_recv(Tile& receiver,
                                                 int ring_index) {
  if (ring_index < 0 || ring_index >= cfg_.notif_rings) {
    throw std::invalid_argument("mPIPE recv from a bad ring");
  }
  Ring& ring = *rings_[static_cast<std::size_t>(ring_index)];
  MpipePacket pkt;
  {
    std::scoped_lock lk(ring.mu);
    if (ring.packets.empty()) return std::nullopt;
    pkt = std::move(ring.packets.front());
    ring.packets.pop_front();
  }
  receiver.clock().advance_to(pkt.arrival_ps);
  return pkt;
}

std::size_t MpipeEngine::queued(int ring_index) const {
  if (ring_index < 0 || ring_index >= cfg_.notif_rings) {
    throw std::invalid_argument("bad ring index");
  }
  const Ring& ring = *rings_[static_cast<std::size_t>(ring_index)];
  std::scoped_lock lk(ring.mu);
  return ring.packets.size();
}

std::uint64_t MpipeEngine::packets_ingressed() const {
  return ingressed_.load(std::memory_order_relaxed);
}

}  // namespace tmc
