#include "tmc/udn.hpp"

#include <stdexcept>

#include "sim/topology.hpp"

namespace tmc {

namespace {
// Header layout (64-bit word): [payload_words:16][demux_queue:8][dest:16].
constexpr std::uint64_t kDestMask = 0xffff;
constexpr std::uint64_t kQueueMask = 0xff;
constexpr std::uint64_t kWordsMask = 0xffff;
}  // namespace

std::uint64_t UdnHeader::encode() const noexcept {
  return (static_cast<std::uint64_t>(payload_words) & kWordsMask) << 24 |
         (static_cast<std::uint64_t>(demux_queue) & kQueueMask) << 16 |
         (static_cast<std::uint64_t>(dest_tile) & kDestMask);
}

UdnHeader UdnHeader::decode(std::uint64_t word) noexcept {
  UdnHeader h;
  h.dest_tile = static_cast<int>(word & kDestMask);
  h.demux_queue = static_cast<int>((word >> 16) & kQueueMask);
  h.payload_words = static_cast<int>((word >> 24) & kWordsMask);
  return h;
}

UdnFabric::UdnFabric(Device& device)
    : device_(&device),
      queues_per_tile_(device.config().udn_demux_queues) {
  const int total = device.tile_count() * queues_per_tile_;
  queues_.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  traffic_.reserve(static_cast<std::size_t>(device.tile_count()));
  for (int i = 0; i < device.tile_count(); ++i) {
    traffic_.push_back(std::make_unique<TrafficCell>());
  }
}

UdnFabric::TileTraffic UdnFabric::traffic(int tile) const {
  if (tile < 0 || tile >= device_->tile_count()) {
    throw std::invalid_argument("UDN traffic query: tile out of range");
  }
  const TrafficCell& c = *traffic_[static_cast<std::size_t>(tile)];
  return TileTraffic{c.packets.load(std::memory_order_relaxed),
                     c.words.load(std::memory_order_relaxed),
                     c.hops.load(std::memory_order_relaxed)};
}

void UdnFabric::check_queue_args(int tile, int queue) const {
  if (tile < 0 || tile >= device_->tile_count()) {
    throw std::invalid_argument("UDN destination tile out of range");
  }
  if (queue < 0 || queue >= queues_per_tile_) {
    throw std::invalid_argument("UDN demux queue out of range");
  }
}

UdnFabric::Queue& UdnFabric::queue_at(int tile, int queue) const {
  return *queues_[static_cast<std::size_t>(tile * queues_per_tile_ + queue)];
}

ps_t UdnFabric::wire_latency_ps(int src_tile, int dst_tile, int words) const {
  const auto& cfg = device_->config();
  const auto& topo = device_->topology();
  const ps_t cycle = cfg.cycle_ps();
  std::int64_t lat = static_cast<std::int64_t>(cfg.udn_setup_teardown_ps);
  if (src_tile != dst_tile) {
    const int hops = topo.hops(src_tile, dst_tile);
    lat += static_cast<std::int64_t>(hops) * static_cast<std::int64_t>(cycle);
    lat += cfg.udn_dir_bias_ps[static_cast<int>(
        topo.first_direction(src_tile, dst_tile))];
    if (topo.route_turns(src_tile, dst_tile)) {
      lat += static_cast<std::int64_t>(cfg.udn_turn_ps);
    }
  }
  // The header word is consumed by routing; each additional payload word
  // follows cut-through at one word per cycle.
  if (words > 1) {
    lat += static_cast<std::int64_t>(words - 1) *
           static_cast<std::int64_t>(cycle);
  }
  return lat < 0 ? 0 : static_cast<ps_t>(lat);
}

void UdnFabric::send(Tile& sender, int dst_tile, int queue,
                     std::span<const std::uint64_t> words) {
  check_queue_args(dst_tile, queue);
  const auto& cfg = device_->config();
  if (words.size() >
      static_cast<std::size_t>(cfg.udn_max_payload_words)) {
    throw std::invalid_argument("UDN payload exceeds 127 words");
  }
  if (words.empty()) {
    throw std::invalid_argument("UDN payload must have at least one word");
  }

  UdnPacket pkt;
  pkt.src_tile = sender.id();
  pkt.header = UdnHeader{dst_tile, queue,
                         static_cast<int>(words.size())};
  pkt.payload.assign(words.begin(), words.end());
  pkt.arrival_ps = sender.clock().now() +
                   wire_latency_ps(sender.id(), dst_tile,
                                   static_cast<int>(words.size()));

  Queue& q = queue_at(dst_tile, queue);
  {
    std::unique_lock lk(q.mu);
    q.cv_space.wait(lk, [&] {
      return q.buffered_words + words.size() <=
             static_cast<std::size_t>(cfg.udn_max_payload_words);
    });
    q.buffered_words += words.size();
    q.packets.push_back(std::move(pkt));
  }
  q.cv_data.notify_one();
  // Sender-side cost: injecting header+payload into the switch takes one
  // cycle per word; the wire latency itself is charged to the receiver via
  // the arrival timestamp.
  sender.clock().advance(static_cast<ps_t>(words.size()) * cfg.cycle_ps());
  // Traffic accounting (metrics scrape): host-side only, zero virtual cost.
  TrafficCell& traffic = *traffic_[static_cast<std::size_t>(sender.id())];
  traffic.packets.fetch_add(1, std::memory_order_relaxed);
  traffic.words.fetch_add(words.size(), std::memory_order_relaxed);
  if (sender.id() != dst_tile) {
    traffic.hops.fetch_add(
        static_cast<std::uint64_t>(
            device_->topology().hops(sender.id(), dst_tile)),
        std::memory_order_relaxed);
  }
}

void UdnFabric::send1(Tile& sender, int dst_tile, int queue,
                      std::uint64_t word) {
  send(sender, dst_tile, queue, std::span<const std::uint64_t>(&word, 1));
}

UdnPacket UdnFabric::recv(Tile& receiver, int queue) {
  check_queue_args(receiver.id(), queue);
  Queue& q = queue_at(receiver.id(), queue);
  UdnPacket pkt;
  const tilesim::ps_t wait_begin = receiver.clock().now();
  {
    std::unique_lock lk(q.mu);
    q.cv_data.wait(lk, [&] { return !q.packets.empty(); });
    pkt = std::move(q.packets.front());
    q.packets.pop_front();
    q.buffered_words -= pkt.payload.size();
  }
  q.cv_space.notify_all();
  receiver.clock().advance_to(pkt.arrival_ps);
  receiver.clock().advance(device_->config().udn_rx_overhead_ps);
  if (tilesim::TraceRecorder* tracer = device_->tracer(); tracer != nullptr) {
    tracer->record(receiver.id(), tilesim::TraceKind::kMessage, wait_begin,
                   receiver.clock().now(),
                   "udn q" + std::to_string(queue) + " from " +
                       std::to_string(pkt.src_tile));
  }
  return pkt;
}

UdnPacket UdnFabric::recv_raw(Tile& receiver, int queue) {
  check_queue_args(receiver.id(), queue);
  Queue& q = queue_at(receiver.id(), queue);
  UdnPacket pkt;
  {
    std::unique_lock lk(q.mu);
    q.cv_data.wait(lk, [&] { return !q.packets.empty(); });
    pkt = std::move(q.packets.front());
    q.packets.pop_front();
    q.buffered_words -= pkt.payload.size();
  }
  q.cv_space.notify_all();
  return pkt;
}

std::optional<UdnPacket> UdnFabric::try_recv(Tile& receiver, int queue) {
  check_queue_args(receiver.id(), queue);
  Queue& q = queue_at(receiver.id(), queue);
  UdnPacket pkt;
  {
    std::scoped_lock lk(q.mu);
    if (q.packets.empty()) return std::nullopt;
    pkt = std::move(q.packets.front());
    q.packets.pop_front();
    q.buffered_words -= pkt.payload.size();
  }
  q.cv_space.notify_all();
  receiver.clock().advance_to(pkt.arrival_ps);
  receiver.clock().advance(device_->config().udn_rx_overhead_ps);
  return pkt;
}

std::size_t UdnFabric::queued_words(int tile, int queue) const {
  check_queue_args(tile, queue);
  Queue& q = queue_at(tile, queue);
  std::scoped_lock lk(q.mu);
  return q.buffered_words;
}

}  // namespace tmc
