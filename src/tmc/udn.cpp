#include "tmc/udn.hpp"

#include <stdexcept>
#include <string>

#include "sim/fault.hpp"
#include "sim/flight_hook.hpp"
#include "sim/guarded_wait.hpp"
#include "sim/profile_hook.hpp"
#include "sim/topology.hpp"
#include "util/error.hpp"

namespace tmc {

namespace {
// Header layout (64-bit word): [payload_words:16][demux_queue:8][dest:16].
constexpr std::uint64_t kDestMask = 0xffff;
constexpr std::uint64_t kQueueMask = 0xff;
constexpr std::uint64_t kWordsMask = 0xffff;

// SplitMix64 finalizer — one avalanche round per mixed word.
constexpr std::uint64_t mix64(std::uint64_t z) noexcept {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

using tilesim::guarded_wait;
}  // namespace

std::uint64_t udn_checksum(int src_tile, const UdnHeader& header,
                           std::span<const std::uint64_t> words) noexcept {
  std::uint64_t h = mix64(header.encode() ^
                          (static_cast<std::uint64_t>(src_tile) + 1) *
                              0x9e3779b97f4a7c15ULL);
  for (std::uint64_t w : words) h = mix64(h ^ w);
  return h;
}

std::uint64_t UdnHeader::encode() const noexcept {
  return (static_cast<std::uint64_t>(payload_words) & kWordsMask) << 24 |
         (static_cast<std::uint64_t>(demux_queue) & kQueueMask) << 16 |
         (static_cast<std::uint64_t>(dest_tile) & kDestMask);
}

UdnHeader UdnHeader::decode(std::uint64_t word) noexcept {
  UdnHeader h;
  h.dest_tile = static_cast<int>(word & kDestMask);
  h.demux_queue = static_cast<int>((word >> 16) & kQueueMask);
  h.payload_words = static_cast<int>((word >> 24) & kWordsMask);
  return h;
}

UdnFabric::UdnFabric(Device& device)
    : device_(&device),
      queues_per_tile_(device.config().udn_demux_queues) {
  const int total = device.tile_count() * queues_per_tile_;
  queues_.reserve(static_cast<std::size_t>(total));
  for (int i = 0; i < total; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  traffic_.reserve(static_cast<std::size_t>(device.tile_count()));
  for (int i = 0; i < device.tile_count(); ++i) {
    traffic_.push_back(std::make_unique<TrafficCell>());
  }
}

UdnFabric::TileTraffic UdnFabric::traffic(int tile) const {
  if (tile < 0 || tile >= device_->tile_count()) {
    throw std::invalid_argument("UDN traffic query: tile out of range");
  }
  const TrafficCell& c = *traffic_[static_cast<std::size_t>(tile)];
  return TileTraffic{c.packets.load(std::memory_order_relaxed),
                     c.words.load(std::memory_order_relaxed),
                     c.hops.load(std::memory_order_relaxed),
                     c.retries.load(std::memory_order_relaxed),
                     c.backoff_ps.load(std::memory_order_relaxed)};
}

void UdnFabric::check_queue_args(int tile, int queue) const {
  if (tile < 0 || tile >= device_->tile_count()) {
    throw std::invalid_argument("UDN destination tile out of range");
  }
  if (queue < 0 || queue >= queues_per_tile_) {
    throw std::invalid_argument("UDN demux queue out of range");
  }
}

UdnFabric::Queue& UdnFabric::queue_at(int tile, int queue) const {
  return *queues_[static_cast<std::size_t>(tile * queues_per_tile_ + queue)];
}

ps_t UdnFabric::wire_latency_ps(int src_tile, int dst_tile, int words) const {
  const auto& cfg = device_->config();
  const auto& topo = device_->topology();
  const ps_t cycle = cfg.cycle_ps();
  std::int64_t lat = static_cast<std::int64_t>(cfg.udn_setup_teardown_ps);
  if (src_tile != dst_tile) {
    const int hops = topo.hops(src_tile, dst_tile);
    lat += static_cast<std::int64_t>(hops) * static_cast<std::int64_t>(cycle);
    lat += cfg.udn_dir_bias_ps[static_cast<int>(
        topo.first_direction(src_tile, dst_tile))];
    if (topo.route_turns(src_tile, dst_tile)) {
      lat += static_cast<std::int64_t>(cfg.udn_turn_ps);
    }
  }
  // The header word is consumed by routing; each additional payload word
  // follows cut-through at one word per cycle.
  if (words > 1) {
    lat += static_cast<std::int64_t>(words - 1) *
           static_cast<std::int64_t>(cycle);
  }
  return lat < 0 ? 0 : static_cast<ps_t>(lat);
}

void UdnFabric::send(Tile& sender, int dst_tile, int queue,
                     std::span<const std::uint64_t> words) {
  check_queue_args(dst_tile, queue);
  const auto& cfg = device_->config();
  if (words.size() >
      static_cast<std::size_t>(cfg.udn_max_payload_words)) {
    throw std::invalid_argument("UDN payload exceeds 127 words");
  }
  if (words.empty()) {
    throw std::invalid_argument("UDN payload must have at least one word");
  }

  UdnPacket pkt;
  pkt.src_tile = sender.id();
  pkt.header = UdnHeader{dst_tile, queue,
                         static_cast<int>(words.size())};
  pkt.payload.assign(words.begin(), words.end());
  pkt.checksum = udn_checksum(pkt.src_tile, pkt.header, words);

  TrafficCell& traffic = *traffic_[static_cast<std::size_t>(sender.id())];

  // Fault injection: every injection attempt may be dropped or corrupted
  // at the link (link-level CRC catches the bad flit); the sender backs
  // off exponentially in virtual time and retries, bounded by the plan.
  ps_t inject_delay_ps = 0;
  if (tilesim::FaultEngine* fault = device_->fault(); fault != nullptr) {
    const tilesim::FaultPlan& plan = fault->plan();
    int attempt = 0;
    for (;;) {
      const auto d = fault->udn_attempt(sender.id(), sender.clock().now());
      if (d.verdict == tilesim::FaultEngine::UdnVerdict::kDeliver) {
        inject_delay_ps = d.delay_ps;
        break;
      }
      if (attempt >= plan.udn_max_retries) {
        tilesim::flight_event(
            *device_, sender.id(), tilesim::FlightKind::kError, "udn_send",
            sender.clock().now(), dst_tile, 0,
            static_cast<int>(tshmem::Errc::kRetriesExhausted));
        throw tshmem::Error(
            tshmem::Errc::kRetriesExhausted,
            "UDN send from PE " + std::to_string(sender.id()) + " to PE " +
                std::to_string(dst_tile) + " queue " + std::to_string(queue) +
                ": " + std::to_string(attempt + 1) +
                " attempt(s) dropped/corrupted; retry budget exhausted");
      }
      const ps_t backoff = plan.udn_backoff_base_ps
                           << (attempt < 20 ? attempt : 20);
      sender.clock().advance(backoff);
      traffic.retries.fetch_add(1, std::memory_order_relaxed);
      traffic.backoff_ps.fetch_add(static_cast<std::uint64_t>(backoff),
                                   std::memory_order_relaxed);
      tilesim::flight_event(*device_, sender.id(),
                            tilesim::FlightKind::kFaultRetry, "udn_retry",
                            sender.clock().now(), dst_tile,
                            static_cast<std::uint64_t>(backoff));
      ++attempt;
    }
  }

  pkt.arrival_ps = sender.clock().now() +
                   wire_latency_ps(sender.id(), dst_tile,
                                   static_cast<int>(words.size())) +
                   inject_delay_ps;

  Queue& q = queue_at(dst_tile, queue);
  {
    std::unique_lock lk(q.mu);
    guarded_wait(*device_, lk, q.cv_space, sender.id(),
                 "udn send: destination queue full", [&] {
                   return q.buffered_words + words.size() <=
                          static_cast<std::size_t>(cfg.udn_max_payload_words);
                 });
    q.buffered_words += words.size();
    q.packets.push_back(std::move(pkt));
  }
  q.cv_data.notify_one();
  // Sender-side cost: injecting header+payload into the switch takes one
  // cycle per word; the wire latency itself is charged to the receiver via
  // the arrival timestamp.
  sender.clock().advance(static_cast<ps_t>(words.size()) * cfg.cycle_ps());
  // Traffic accounting (metrics scrape): host-side only, zero virtual cost.
  traffic.packets.fetch_add(1, std::memory_order_relaxed);
  traffic.words.fetch_add(words.size(), std::memory_order_relaxed);
  if (sender.id() != dst_tile) {
    traffic.hops.fetch_add(
        static_cast<std::uint64_t>(
            device_->topology().hops(sender.id(), dst_tile)),
        std::memory_order_relaxed);
  }
  tilesim::flight_event(*device_, sender.id(), tilesim::FlightKind::kUdnSend,
                        "udn_send", sender.clock().now(), dst_tile,
                        words.size() * sizeof(std::uint64_t));
}

void UdnFabric::send1(Tile& sender, int dst_tile, int queue,
                      std::uint64_t word) {
  send(sender, dst_tile, queue, std::span<const std::uint64_t>(&word, 1));
}

namespace {
// Receiver-side integrity check. A mismatch means a corrupted packet made
// it past every link-level retry — surface it, never deliver silently.
void verify_checksum(const UdnPacket& pkt, int receiver_tile) {
  if (pkt.checksum ==
      udn_checksum(pkt.src_tile, pkt.header, pkt.payload)) {
    return;
  }
  throw tshmem::Error(
      tshmem::Errc::kCorruptPacket,
      "UDN packet from PE " + std::to_string(pkt.src_tile) + " to PE " +
          std::to_string(receiver_tile) + " queue " +
          std::to_string(pkt.header.demux_queue) +
          " failed its checksum at delivery");
}
}  // namespace

UdnPacket UdnFabric::recv(Tile& receiver, int queue) {
  check_queue_args(receiver.id(), queue);
  Queue& q = queue_at(receiver.id(), queue);
  UdnPacket pkt;
  const tilesim::ps_t wait_begin = receiver.clock().now();
  {
    std::unique_lock lk(q.mu);
    guarded_wait(*device_, lk, q.cv_data, receiver.id(), "udn recv",
                 [&] { return !q.packets.empty(); });
    pkt = std::move(q.packets.front());
    q.packets.pop_front();
    q.buffered_words -= pkt.payload.size();
  }
  q.cv_space.notify_all();
  verify_checksum(pkt, receiver.id());
  tilesim::prof_wait_edge(receiver, pkt.src_tile, tilesim::ProfPhase::kUdn,
                          "udn_recv", receiver.clock().now(), pkt.arrival_ps);
  receiver.clock().advance_to(pkt.arrival_ps);
  receiver.clock().advance(device_->config().udn_rx_overhead_ps);
  if (tilesim::TraceRecorder* tracer = device_->tracer(); tracer != nullptr) {
    tracer->record(receiver.id(), tilesim::TraceKind::kMessage, wait_begin,
                   receiver.clock().now(),
                   "udn q" + std::to_string(queue) + " from " +
                       std::to_string(pkt.src_tile));
  }
  // recv_raw/try_recv are deliberately NOT reported: tag-matched consumers
  // (recv_ctrl) pull packets in host-arrival order before matching, so only
  // the clock-advancing receive here is program-order deterministic.
  tilesim::flight_event(*device_, receiver.id(),
                        tilesim::FlightKind::kUdnRecv, "udn_recv",
                        receiver.clock().now(), pkt.src_tile,
                        pkt.payload.size() * sizeof(std::uint64_t));
  return pkt;
}

UdnPacket UdnFabric::recv_raw(Tile& receiver, int queue) {
  check_queue_args(receiver.id(), queue);
  Queue& q = queue_at(receiver.id(), queue);
  UdnPacket pkt;
  {
    std::unique_lock lk(q.mu);
    guarded_wait(*device_, lk, q.cv_data, receiver.id(), "udn recv",
                 [&] { return !q.packets.empty(); });
    pkt = std::move(q.packets.front());
    q.packets.pop_front();
    q.buffered_words -= pkt.payload.size();
  }
  q.cv_space.notify_all();
  verify_checksum(pkt, receiver.id());
  return pkt;
}

std::optional<UdnPacket> UdnFabric::try_recv(Tile& receiver, int queue) {
  check_queue_args(receiver.id(), queue);
  Queue& q = queue_at(receiver.id(), queue);
  UdnPacket pkt;
  {
    std::scoped_lock lk(q.mu);
    if (q.packets.empty()) return std::nullopt;
    pkt = std::move(q.packets.front());
    q.packets.pop_front();
    q.buffered_words -= pkt.payload.size();
  }
  q.cv_space.notify_all();
  verify_checksum(pkt, receiver.id());
  tilesim::prof_wait_edge(receiver, pkt.src_tile, tilesim::ProfPhase::kUdn,
                          "udn_recv", receiver.clock().now(), pkt.arrival_ps);
  receiver.clock().advance_to(pkt.arrival_ps);
  receiver.clock().advance(device_->config().udn_rx_overhead_ps);
  return pkt;
}

std::size_t UdnFabric::queued_words(int tile, int queue) const {
  check_queue_args(tile, queue);
  Queue& q = queue_at(tile, queue);
  std::scoped_lock lk(q.mu);
  return q.buffered_words;
}

}  // namespace tmc
