#include "tmc/common_memory.hpp"

#include <algorithm>
#include <new>
#include <stdexcept>

#include "util/error.hpp"

namespace tmc {

namespace {
constexpr std::size_t kAlign = 64;

std::size_t align_up(std::size_t v) { return (v + kAlign - 1) & ~(kAlign - 1); }
}  // namespace

CommonMemory::CommonMemory(std::size_t bytes) {
  if (bytes == 0) {
    throw std::invalid_argument("CommonMemory needs a non-empty arena");
  }
  arena_bytes_ = align_up(bytes);
  arena_.reset(static_cast<std::byte*>(
      ::operator new[](arena_bytes_, std::align_val_t{64})));
  free_list_.push_back(FreeBlock{0, arena_bytes_});
}

CommonMemory::~CommonMemory() = default;

std::size_t CommonMemory::offset_of(const void* p) const noexcept {
  return static_cast<std::size_t>(static_cast<const std::byte*>(p) -
                                  arena_.get());
}

void CommonMemory::set_map_fault_hook(MapFaultHook hook) {
  std::scoped_lock lk(mu_);
  map_fault_hook_ = std::move(hook);
}

void* CommonMemory::map(const std::string& name, std::size_t bytes,
                        Homing homing, int creator_tile) {
  if (bytes == 0) throw std::invalid_argument("cannot map zero bytes");
  std::scoped_lock lk(mu_);
  if (map_fault_hook_ && map_fault_hook_(name, creator_tile)) {
    throw tshmem::Error(
        tshmem::Errc::kCmemMapFailed,
        "common-memory map of '" + name + "' (" + std::to_string(bytes) +
            " bytes) by PE " + std::to_string(creator_tile) +
            " failed (injected)");
  }
  if (mappings_.count(name) != 0) {
    throw std::invalid_argument("duplicate common-memory mapping '" + name +
                                "'");
  }
  const std::size_t want = align_up(bytes);
  // First-fit over the sorted free list.
  for (std::size_t i = 0; i < free_list_.size(); ++i) {
    FreeBlock& blk = free_list_[i];
    if (blk.bytes >= want) {
      const std::size_t offset = blk.offset;
      blk.offset += want;
      blk.bytes -= want;
      if (blk.bytes == 0) {
        free_list_.erase(free_list_.begin() + static_cast<std::ptrdiff_t>(i));
      }
      Mapping m;
      m.name = name;
      m.addr = arena_.get() + offset;
      m.bytes = want;
      m.homing = homing;
      m.creator_tile = creator_tile;
      mappings_.emplace(name, m);
      by_offset_.emplace(offset, name);
      mapped_bytes_ += want;
      ++stats_.maps;
      stats_.peak_bytes = std::max(stats_.peak_bytes, mapped_bytes_);
      return m.addr;
    }
  }
  throw std::bad_alloc();
}

void CommonMemory::unmap(const std::string& name) {
  std::scoped_lock lk(mu_);
  const auto it = mappings_.find(name);
  if (it == mappings_.end()) {
    throw std::invalid_argument("unmap of unknown mapping '" + name + "'");
  }
  const std::size_t offset = offset_of(it->second.addr);
  free_list_.push_back(FreeBlock{offset, it->second.bytes});
  by_offset_.erase(offset);
  mapped_bytes_ -= it->second.bytes;
  ++stats_.unmaps;
  mappings_.erase(it);
  coalesce();
}

void CommonMemory::coalesce() {
  std::sort(free_list_.begin(), free_list_.end(),
            [](const FreeBlock& a, const FreeBlock& b) {
              return a.offset < b.offset;
            });
  std::vector<FreeBlock> merged;
  for (const FreeBlock& blk : free_list_) {
    if (!merged.empty() &&
        merged.back().offset + merged.back().bytes == blk.offset) {
      merged.back().bytes += blk.bytes;
    } else {
      merged.push_back(blk);
    }
  }
  free_list_ = std::move(merged);
}

std::optional<CommonMemory::Mapping> CommonMemory::lookup(
    const std::string& name) const {
  std::scoped_lock lk(mu_);
  const auto it = mappings_.find(name);
  if (it == mappings_.end()) return std::nullopt;
  return it->second;
}

bool CommonMemory::contains(const void* p) const noexcept {
  const auto* b = static_cast<const std::byte*>(p);
  return b >= arena_.get() && b < arena_.get() + arena_bytes_;
}

Homing CommonMemory::homing_of(const void* p) const {
  if (!contains(p)) return Homing::kHashForHome;
  std::scoped_lock lk(mu_);
  const std::size_t off = offset_of(p);
  auto it = by_offset_.upper_bound(off);
  if (it == by_offset_.begin()) return Homing::kHashForHome;
  --it;
  const Mapping& m = mappings_.at(it->second);
  const std::size_t start = offset_of(m.addr);
  if (off < start + m.bytes) return m.homing;
  return Homing::kHashForHome;
}

std::size_t CommonMemory::bytes_mapped() const {
  std::scoped_lock lk(mu_);
  std::size_t total = 0;
  for (const auto& [name, m] : mappings_) total += m.bytes;
  return total;
}

std::size_t CommonMemory::mapping_count() const {
  std::scoped_lock lk(mu_);
  return mappings_.size();
}

CommonMemory::Stats CommonMemory::stats() const {
  std::scoped_lock lk(mu_);
  return stats_;
}

}  // namespace tmc
