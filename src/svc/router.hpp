// Query router for the serving subsystem (docs/SERVING.md).
//
// Hashes each query key to its home shard slice and picks a serving
// replica from that slice's ReplicaSet. Each shard slice owns R replicas
// (one cluster device each); the set prefers the primary (replica 0),
// fails over to the lowest-index healthy backup when the primary is
// degraded or crashed, and fails back automatically once the primary is
// healthy again. Only when a slice has no healthy replica at all does the
// shed policy apply: under kReject its traffic is refused outright (the
// client gets a structured tshmem::Error reply); under kReroute the shard
// ring is scanned for the next slice with a healthy replica and only an
// entirely unavailable fleet sheds.
//
// The router is pure policy — no counters, no clocks — so routing
// decisions are trivially deterministic and unit-testable. Health state is
// pushed in by the service's virtual-time backlog watchdog and crash
// handling.
#pragma once

#include <cstdint>
#include <vector>

namespace svc {

enum class ShedPolicy {
  kReject,   ///< unavailable home shard: refuse the query
  kReroute,  ///< unavailable home shard: try the next available shard
};

[[nodiscard]] const char* shed_policy_name(ShedPolicy p) noexcept;

/// Health of one replica, as the service's watchdog / crash handling sees
/// it. kDegraded replicas may still drain accepted work; kCrashed replicas
/// are gone until explicitly revived (replica-flap recovery).
enum class ReplicaHealth : std::uint8_t {
  kHealthy = 0,
  kDegraded = 1,
  kCrashed = 2,
};

[[nodiscard]] const char* replica_health_name(ReplicaHealth h) noexcept;

/// Health-tracked replica group of one shard slice. Primary-preferring:
/// pick() returns replica 0 whenever it is healthy, else the lowest-index
/// healthy backup (the failover), else -1 (the slice is unavailable).
class ReplicaSet {
 public:
  explicit ReplicaSet(int replicas);

  [[nodiscard]] int size() const noexcept {
    return static_cast<int>(state_.size());
  }
  void set_state(int replica, ReplicaHealth h);
  [[nodiscard]] ReplicaHealth state(int replica) const;

  /// Serving replica under the current health picture (-1 = none).
  [[nodiscard]] int pick() const noexcept;

  /// True when pick() would find a replica.
  [[nodiscard]] bool available() const noexcept { return pick() >= 0; }

 private:
  std::vector<ReplicaHealth> state_;
};

class Router {
 public:
  Router(int num_shards, ShedPolicy policy, int replicas = 1);

  [[nodiscard]] int num_shards() const noexcept {
    return static_cast<int>(sets_.size());
  }
  [[nodiscard]] int replicas() const noexcept { return replicas_; }
  [[nodiscard]] ShedPolicy policy() const noexcept { return policy_; }

  /// Home shard of a key: SplitMix64 finalizer over the key, mod shards.
  [[nodiscard]] int home_shard(int key) const noexcept;

  /// Single-replica convenience (the PR-6 surface): sets the primary's
  /// health. healthy(shard) reports whether the slice can serve at all.
  void set_health(int shard, bool healthy);
  [[nodiscard]] bool healthy(int shard) const;

  void set_replica_health(int shard, int replica, ReplicaHealth h);
  [[nodiscard]] ReplicaHealth replica_health(int shard, int replica) const;
  [[nodiscard]] const ReplicaSet& replica_set(int shard) const;

  struct Route {
    int shard = -1;         ///< -1 = shed (no shard accepts the query)
    int replica = -1;       ///< serving replica within the shard
    bool rerouted = false;  ///< true when shard != the unavailable home
    bool failover = false;  ///< true when replica != the shard's primary
  };

  /// Routing verdict for one query under the current health picture.
  [[nodiscard]] Route route(int key) const noexcept;

 private:
  ShedPolicy policy_;
  int replicas_;
  std::vector<ReplicaSet> sets_;
};

}  // namespace svc
