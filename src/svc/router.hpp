// Query router for the serving subsystem (docs/SERVING.md).
//
// Hashes each query key to its home shard (one cluster device = one
// shard) and consumes the shard-health signals the service derives from
// virtual-time backlog watchdogs. A degraded shard sheds load instead of
// hanging: under kReject its traffic is refused outright (the client gets
// a structured tshmem::Error(kShardDegraded) reply); under kReroute the
// ring is scanned for the next healthy shard and only an entirely
// degraded fleet sheds.
//
// The router is pure policy — no counters, no clocks — so routing
// decisions are trivially deterministic and unit-testable.
#pragma once

#include <cstdint>
#include <vector>

namespace svc {

enum class ShedPolicy {
  kReject,   ///< degraded home shard: refuse the query
  kReroute,  ///< degraded home shard: try the next healthy shard
};

[[nodiscard]] const char* shed_policy_name(ShedPolicy p) noexcept;

class Router {
 public:
  Router(int num_shards, ShedPolicy policy);

  [[nodiscard]] int num_shards() const noexcept {
    return static_cast<int>(healthy_.size());
  }
  [[nodiscard]] ShedPolicy policy() const noexcept { return policy_; }

  /// Home shard of a key: SplitMix64 finalizer over the key, mod shards.
  [[nodiscard]] int home_shard(int key) const noexcept;

  void set_health(int shard, bool healthy);
  [[nodiscard]] bool healthy(int shard) const;

  struct Route {
    int shard = -1;         ///< -1 = shed (no shard accepts the query)
    bool rerouted = false;  ///< true when shard != the degraded home
  };

  /// Routing verdict for one query under the current health picture.
  [[nodiscard]] Route route(int key) const noexcept;

 private:
  ShedPolicy policy_;
  std::vector<bool> healthy_;
};

}  // namespace svc
