// Seeded query load generator for the serving subsystem (docs/SERVING.md).
//
// Produces a deterministic virtual-time arrival sequence: Poisson
// interarrivals at a rate that ramps linearly from start_qps to end_qps
// over the run, with query keys drawn from a Zipf-skewed popularity
// distribution over the image database. Two drive modes share the same
// key stream:
//
//   - open loop:   next() advances an internal virtual clock by the drawn
//                  interarrival and stamps the arrival (clients send at
//                  their own pace, regardless of service backlog);
//   - closed loop: the service keeps a fixed number of queries in flight
//                  and calls next_key() at each completion (clients wait
//                  for their reply before sending again).
//
// Determinism: the generator consumes only its own Xoshiro256 stream in
// program order, so one (seed, config) pair always yields the same
// arrivals — the foundation of the serve loop's bit-identical replay.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"
#include "util/rng.hpp"

namespace svc {

using tilesim::ps_t;

struct LoadGenConfig {
  std::uint64_t seed = 1;
  std::uint64_t queries = 1'000'000;  ///< total arrivals to emit
  double start_qps = 100'000.0;       ///< arrival rate at the first query
  double end_qps = 0.0;               ///< 0 = flat; else linear ramp target
  double zipf_s = 0.9;                ///< key skew exponent (0 = uniform)
  int key_space = 5500;               ///< distinct query keys (db images)
};

struct Arrival {
  ps_t at_ps = 0;
  int key = 0;          ///< database image index being queried
  std::uint64_t id = 0; ///< emission ordinal (0-based)
};

class LoadGen {
 public:
  explicit LoadGen(const LoadGenConfig& cfg);

  [[nodiscard]] bool exhausted() const noexcept {
    return emitted_ >= cfg_.queries;
  }
  [[nodiscard]] std::uint64_t emitted() const noexcept { return emitted_; }

  /// Open-loop arrival: draws an interarrival at the current ramped rate,
  /// advances the generator clock, and draws the key.
  Arrival next();

  /// Closed-loop draw: consumes only the key stream (the caller stamps the
  /// arrival at the completion that triggered it).
  Arrival next_keyed(ps_t at_ps);

  /// Arrival rate (queries per virtual second) for emission ordinal `i`.
  [[nodiscard]] double rate_at(std::uint64_t i) const noexcept;

 private:
  int draw_key();

  LoadGenConfig cfg_;
  tshmem_util::Xoshiro256 rng_;
  std::vector<double> key_cdf_;  ///< cumulative Zipf weights, normalized
  ps_t now_ps_ = 0;
  std::uint64_t emitted_ = 0;
};

}  // namespace svc
