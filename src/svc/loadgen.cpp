#include "svc/loadgen.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace svc {

LoadGen::LoadGen(const LoadGenConfig& cfg) : cfg_(cfg), rng_(cfg.seed) {
  if (cfg_.key_space < 1) {
    throw std::invalid_argument("loadgen: key_space must be >= 1");
  }
  if (cfg_.start_qps <= 0.0) {
    throw std::invalid_argument("loadgen: start_qps must be > 0");
  }
  if (cfg_.end_qps < 0.0 || cfg_.zipf_s < 0.0) {
    throw std::invalid_argument("loadgen: negative rate/skew");
  }
  key_cdf_.resize(static_cast<std::size_t>(cfg_.key_space));
  double acc = 0.0;
  for (int k = 0; k < cfg_.key_space; ++k) {
    acc += 1.0 / std::pow(static_cast<double>(k + 1), cfg_.zipf_s);
    key_cdf_[static_cast<std::size_t>(k)] = acc;
  }
  for (double& c : key_cdf_) c /= acc;
}

double LoadGen::rate_at(std::uint64_t i) const noexcept {
  if (cfg_.end_qps <= 0.0 || cfg_.queries <= 1) return cfg_.start_qps;
  const double t = static_cast<double>(i) /
                   static_cast<double>(cfg_.queries - 1);
  return cfg_.start_qps + (cfg_.end_qps - cfg_.start_qps) * t;
}

int LoadGen::draw_key() {
  const double u = rng_.uniform01();
  const auto it = std::lower_bound(key_cdf_.begin(), key_cdf_.end(), u);
  const auto idx = static_cast<int>(it - key_cdf_.begin());
  return std::min(idx, cfg_.key_space - 1);
}

Arrival LoadGen::next() {
  if (exhausted()) throw std::logic_error("loadgen: arrival stream drained");
  // Exponential interarrival at the ramped rate; 1 - u keeps the argument
  // of log strictly positive (uniform01 can return exactly 0).
  const double u = rng_.uniform01();
  const double rate = rate_at(emitted_);
  const double sec = -std::log1p(-u) / rate;
  const auto dt = static_cast<ps_t>(std::max(1.0, sec * 1e12));
  now_ps_ += dt;
  Arrival a;
  a.at_ps = now_ps_;
  a.key = draw_key();
  a.id = emitted_++;
  return a;
}

Arrival LoadGen::next_keyed(ps_t at_ps) {
  if (exhausted()) throw std::logic_error("loadgen: arrival stream drained");
  Arrival a;
  a.at_ps = at_ps;
  a.key = draw_key();
  a.id = emitted_++;
  return a;
}

}  // namespace svc
