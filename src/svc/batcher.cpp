#include "svc/batcher.hpp"

#include <stdexcept>
#include <utility>

namespace svc {

Batcher::Batcher(const BatcherConfig& cfg) : cfg_(cfg) {
  if (cfg_.max_batch < 1) {
    throw std::invalid_argument("batcher: max_batch must be >= 1");
  }
  open_.reserve(static_cast<std::size_t>(cfg_.max_batch));
}

Batcher::AddResult Batcher::add(const PendingQuery& q, ps_t now_ps) {
  open_.push_back(q);
  AddResult r;
  r.generation = generation_;
  if (static_cast<int>(open_.size()) >= cfg_.max_batch) {
    r.full = true;
  } else if (open_.size() == 1) {
    r.arm_timer = true;
    r.deadline_ps = now_ps + cfg_.timeout_ps;
  }
  return r;
}

std::vector<PendingQuery> Batcher::close() {
  if (open_.empty()) throw std::logic_error("batcher: close of empty batch");
  ++generation_;
  std::vector<PendingQuery> out = std::move(open_);
  open_.clear();
  open_.reserve(static_cast<std::size_t>(cfg_.max_batch));
  return out;
}

}  // namespace svc
