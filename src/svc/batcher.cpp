#include "svc/batcher.hpp"

#include <cmath>
#include <stdexcept>
#include <utility>

namespace svc {

CodelAdmission::CodelAdmission(const CodelConfig& cfg) : cfg_(cfg) {
  if (cfg_.target_ps > 0 && cfg_.interval_ps < 1) {
    throw std::invalid_argument("codel: interval must be >= 1 ps");
  }
}

bool CodelAdmission::admit(ps_t sojourn_ps, ps_t now_ps) {
  if (cfg_.target_ps <= 0) return true;
  if (sojourn_ps <= cfg_.target_ps) {
    // Queue healthy again: leave the dropping state entirely.
    first_above_ps_ = 0;
    drop_streak_ = 0;
    return true;
  }
  if (first_above_ps_ == 0) {
    // First sighting above target: give the queue one full interval.
    first_above_ps_ = now_ps + cfg_.interval_ps;
    return true;
  }
  if (now_ps < first_above_ps_) return true;
  // Above target for a full interval: drop the newest arrival and shorten
  // the next interval (CoDel control law — interval / sqrt(streak)).
  ++drop_streak_;
  ++drops_;
  const double shrink =
      std::sqrt(static_cast<double>(drop_streak_ + 1));
  first_above_ps_ =
      now_ps + std::max<ps_t>(1, static_cast<ps_t>(
                                     static_cast<double>(cfg_.interval_ps) /
                                     shrink));
  return false;
}

Batcher::Batcher(const BatcherConfig& cfg) : cfg_(cfg) {
  if (cfg_.max_batch < 1) {
    throw std::invalid_argument("batcher: max_batch must be >= 1");
  }
  open_.reserve(static_cast<std::size_t>(cfg_.max_batch));
}

Batcher::AddResult Batcher::add(const PendingQuery& q, ps_t now_ps) {
  open_.push_back(q);
  AddResult r;
  r.generation = generation_;
  if (static_cast<int>(open_.size()) >= cfg_.max_batch) {
    r.full = true;
  } else if (open_.size() == 1) {
    r.arm_timer = true;
    r.deadline_ps = now_ps + cfg_.timeout_ps;
  }
  return r;
}

std::vector<PendingQuery> Batcher::close() {
  if (open_.empty()) throw std::logic_error("batcher: close of empty batch");
  ++generation_;
  std::vector<PendingQuery> out = std::move(open_);
  open_.clear();
  open_.reserve(static_cast<std::size_t>(cfg_.max_batch));
  return out;
}

}  // namespace svc
