// Serving-report exporters (docs/SERVING.md).
//
// Two views of a ServiceReport:
//   - write_report_json: the machine-readable "tshmem.serve.v2" document
//     (stable key order, so byte-level diffs across replays are
//     meaningful — CI's serve smoke diffs two runs of one seed/plan; v2
//     added replication, failover and admission-control fields);
//   - print_summary: the human block bench/ext_serve prints, including the
//     one-line "serve:" record tools/perf_run.py harvests QPS and tail
//     latency from (new fields append after fault_events so the existing
//     prefix regexes keep matching).
#pragma once

#include <iosfwd>

#include "svc/service.hpp"

namespace svc {

inline constexpr const char* kServeSchema = "tshmem.serve.v2";

/// Writes the full report as deterministic JSON (schema tshmem.serve.v2).
void write_report_json(std::ostream& os, const ServiceReport& rep,
                       const ServiceConfig& cfg);

/// Human-readable summary plus the machine-parsable "serve:" line.
void print_summary(std::ostream& os, const ServiceReport& rep,
                   const ServiceConfig& cfg);

}  // namespace svc
