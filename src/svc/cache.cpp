#include "svc/cache.hpp"

namespace svc {

const apps::cbir::Hit* LruCache::get(int key) {
  if (cap_ == 0) {
    ++misses_;
    return nullptr;
  }
  const auto it = map_.find(key);
  if (it == map_.end()) {
    ++misses_;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++hits_;
  return &it->second->second;
}

void LruCache::put(int key, const apps::cbir::Hit& value) {
  if (cap_ == 0) return;
  const auto it = map_.find(key);
  if (it != map_.end()) {
    it->second->second = value;
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  if (map_.size() >= cap_) {
    map_.erase(lru_.back().first);
    lru_.pop_back();
    ++evictions_;
  }
  lru_.emplace_front(key, value);
  map_.emplace(key, lru_.begin());
}

}  // namespace svc
