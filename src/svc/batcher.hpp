// Per-shard request batcher for the serving subsystem (docs/SERVING.md).
//
// Coalesces routed queries into batches the shard serves as one
// ShardIndex::query_batch call, trading a little queueing latency for the
// batch's amortized per-query cost (one argmin reduction per batch instead
// of per query). Two knobs close a batch:
//
//   max_batch  — the batch closes the moment it reaches this size;
//   timeout_ps — a partial batch closes this long (virtual time) after its
//                first query arrived, so a lull can't strand queries.
//
// The batcher holds no timers itself: add() tells the caller when to arm
// one (first query into an empty batch) and close() bumps a generation
// counter so a stale timer event — one whose batch already closed full —
// is recognized and dropped by the event loop.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"

namespace svc {

using tilesim::ps_t;

struct BatcherConfig {
  int max_batch = 8;
  ps_t timeout_ps = 2'000'000;  ///< 2 µs
};

/// One routed query waiting in (or moving through) a shard.
struct PendingQuery {
  std::uint64_t id = 0;
  int key = 0;
  ps_t arrival_ps = 0;
  ps_t deadline_ps = 0;  ///< virtual-time completion deadline (0 = none);
                         ///< re-checked when a crash requeues the query
};

/// CoDel-style admission control over one batcher queue
/// (docs/SERVING.md). The queue's *sojourn time* — the service's
/// virtual-time backlog estimate, i.e. how long a newly admitted query
/// would wait — must stay above target_ps for a full interval_ps before
/// the newest arrival is dropped; once dropping, the control law shortens
/// the next interval by 1/sqrt(consecutive drops) so a standing queue is
/// drained firmly, while a transient burst inside one interval is left
/// alone. Dropping the newest arrival (not the head) keeps already
/// accepted queries on their original replicas, which is what preserves
/// the offered == completed + shed + deadline_dropped accounting.
struct CodelConfig {
  ps_t target_ps = 0;                  ///< acceptable sojourn (0 = off)
  ps_t interval_ps = 10'000'000'000;   ///< 10 ms of virtual time
};

class CodelAdmission {
 public:
  explicit CodelAdmission(const CodelConfig& cfg);

  /// Verdict for the newest arrival given the queue's estimated sojourn
  /// at virtual time `now_ps`: true = admit, false = drop it.
  bool admit(ps_t sojourn_ps, ps_t now_ps);

  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] bool enabled() const noexcept { return cfg_.target_ps > 0; }

 private:
  CodelConfig cfg_;
  ps_t first_above_ps_ = 0;     ///< deadline for the current interval
  std::uint64_t drop_streak_ = 0;  ///< consecutive drops (control law)
  std::uint64_t drops_ = 0;
};

class Batcher {
 public:
  explicit Batcher(const BatcherConfig& cfg);

  struct AddResult {
    bool full = false;        ///< batch hit max_batch: close it now
    bool arm_timer = false;   ///< first query of a fresh batch
    ps_t deadline_ps = 0;     ///< timeout deadline when arm_timer is set
    std::uint64_t generation = 0;  ///< guard for the armed timer
  };

  /// Adds one query to the open batch at virtual time `now_ps`.
  AddResult add(const PendingQuery& q, ps_t now_ps);

  /// Takes the open batch (callers check open_size() first) and bumps the
  /// generation so armed timers for it become stale.
  [[nodiscard]] std::vector<PendingQuery> close();

  [[nodiscard]] std::size_t open_size() const noexcept {
    return open_.size();
  }
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }
  [[nodiscard]] const BatcherConfig& config() const noexcept { return cfg_; }

 private:
  BatcherConfig cfg_;
  std::vector<PendingQuery> open_;
  std::uint64_t generation_ = 0;
};

}  // namespace svc
