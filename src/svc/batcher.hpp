// Per-shard request batcher for the serving subsystem (docs/SERVING.md).
//
// Coalesces routed queries into batches the shard serves as one
// ShardIndex::query_batch call, trading a little queueing latency for the
// batch's amortized per-query cost (one argmin reduction per batch instead
// of per query). Two knobs close a batch:
//
//   max_batch  — the batch closes the moment it reaches this size;
//   timeout_ps — a partial batch closes this long (virtual time) after its
//                first query arrived, so a lull can't strand queries.
//
// The batcher holds no timers itself: add() tells the caller when to arm
// one (first query into an empty batch) and close() bumps a generation
// counter so a stale timer event — one whose batch already closed full —
// is recognized and dropped by the event loop.
#pragma once

#include <cstdint>
#include <vector>

#include "sim/config.hpp"

namespace svc {

using tilesim::ps_t;

struct BatcherConfig {
  int max_batch = 8;
  ps_t timeout_ps = 2'000'000;  ///< 2 µs
};

/// One routed query waiting in (or moving through) a shard.
struct PendingQuery {
  std::uint64_t id = 0;
  int key = 0;
  ps_t arrival_ps = 0;
};

class Batcher {
 public:
  explicit Batcher(const BatcherConfig& cfg);

  struct AddResult {
    bool full = false;        ///< batch hit max_batch: close it now
    bool arm_timer = false;   ///< first query of a fresh batch
    ps_t deadline_ps = 0;     ///< timeout deadline when arm_timer is set
    std::uint64_t generation = 0;  ///< guard for the armed timer
  };

  /// Adds one query to the open batch at virtual time `now_ps`.
  AddResult add(const PendingQuery& q, ps_t now_ps);

  /// Takes the open batch (callers check open_size() first) and bumps the
  /// generation so armed timers for it become stale.
  [[nodiscard]] std::vector<PendingQuery> close();

  [[nodiscard]] std::size_t open_size() const noexcept {
    return open_.size();
  }
  [[nodiscard]] std::uint64_t generation() const noexcept {
    return generation_;
  }
  [[nodiscard]] const BatcherConfig& config() const noexcept { return cfg_; }

 private:
  BatcherConfig cfg_;
  std::vector<PendingQuery> open_;
  std::uint64_t generation_ = 0;
};

}  // namespace svc
