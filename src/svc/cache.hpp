// LRU result cache for the serving subsystem (docs/SERVING.md).
//
// Maps a query key (database image index) to its retrieval result so
// repeat queries — the common case under Zipf-skewed traffic — are
// answered without touching a shard. Classic list + hash-map LRU;
// capacity 0 disables the cache entirely (every get misses, put is a
// no-op), which is how the bench measures the uncached path.
#pragma once

#include <cstdint>
#include <list>
#include <unordered_map>
#include <utility>

#include "apps/cbir.hpp"

namespace svc {

class LruCache {
 public:
  explicit LruCache(std::size_t capacity) : cap_(capacity) {}

  /// Returns the cached result and promotes the key to most-recent, or
  /// nullptr on a miss. The pointer stays valid until the next put().
  [[nodiscard]] const apps::cbir::Hit* get(int key);

  /// Inserts or refreshes a result, evicting the least-recently-used
  /// entry when at capacity.
  void put(int key, const apps::cbir::Hit& value);

  [[nodiscard]] std::size_t size() const noexcept { return map_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return cap_; }
  [[nodiscard]] std::uint64_t hits() const noexcept { return hits_; }
  [[nodiscard]] std::uint64_t misses() const noexcept { return misses_; }
  [[nodiscard]] std::uint64_t evictions() const noexcept {
    return evictions_;
  }

 private:
  using Entry = std::pair<int, apps::cbir::Hit>;

  std::size_t cap_;
  std::list<Entry> lru_;  ///< front = most recently used
  std::unordered_map<int, std::list<Entry>::iterator> map_;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace svc
