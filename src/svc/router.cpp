#include "svc/router.hpp"

#include <stdexcept>

namespace svc {

namespace {

/// SplitMix64 finalizer: a well-mixed stateless hash so consecutive image
/// indices spread evenly across shards.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* shed_policy_name(ShedPolicy p) noexcept {
  switch (p) {
    case ShedPolicy::kReject: return "reject";
    case ShedPolicy::kReroute: return "reroute";
  }
  return "unknown";
}

Router::Router(int num_shards, ShedPolicy policy) : policy_(policy) {
  if (num_shards < 1) {
    throw std::invalid_argument("router: need >= 1 shard");
  }
  healthy_.assign(static_cast<std::size_t>(num_shards), true);
}

int Router::home_shard(int key) const noexcept {
  return static_cast<int>(mix(static_cast<std::uint64_t>(key)) %
                          healthy_.size());
}

void Router::set_health(int shard, bool healthy) {
  if (shard < 0 || shard >= num_shards()) {
    throw std::out_of_range("router: shard index");
  }
  healthy_[static_cast<std::size_t>(shard)] = healthy;
}

bool Router::healthy(int shard) const {
  if (shard < 0 || shard >= num_shards()) {
    throw std::out_of_range("router: shard index");
  }
  return healthy_[static_cast<std::size_t>(shard)];
}

Router::Route Router::route(int key) const noexcept {
  const int home = home_shard(key);
  if (healthy_[static_cast<std::size_t>(home)]) return Route{home, false};
  if (policy_ == ShedPolicy::kReject) return Route{-1, false};
  const int n = num_shards();
  for (int step = 1; step < n; ++step) {
    const int s = (home + step) % n;
    if (healthy_[static_cast<std::size_t>(s)]) return Route{s, true};
  }
  return Route{-1, false};  // the whole fleet is degraded
}

}  // namespace svc
