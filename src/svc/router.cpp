#include "svc/router.hpp"

#include <stdexcept>

namespace svc {

namespace {

/// SplitMix64 finalizer: a well-mixed stateless hash so consecutive image
/// indices spread evenly across shards.
std::uint64_t mix(std::uint64_t x) noexcept {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

const char* shed_policy_name(ShedPolicy p) noexcept {
  switch (p) {
    case ShedPolicy::kReject: return "reject";
    case ShedPolicy::kReroute: return "reroute";
  }
  return "unknown";
}

const char* replica_health_name(ReplicaHealth h) noexcept {
  switch (h) {
    case ReplicaHealth::kHealthy: return "healthy";
    case ReplicaHealth::kDegraded: return "degraded";
    case ReplicaHealth::kCrashed: return "crashed";
  }
  return "unknown";
}

ReplicaSet::ReplicaSet(int replicas) {
  if (replicas < 1) {
    throw std::invalid_argument("replica_set: need >= 1 replica");
  }
  state_.assign(static_cast<std::size_t>(replicas),
                ReplicaHealth::kHealthy);
}

void ReplicaSet::set_state(int replica, ReplicaHealth h) {
  if (replica < 0 || replica >= size()) {
    throw std::out_of_range("replica_set: replica index");
  }
  state_[static_cast<std::size_t>(replica)] = h;
}

ReplicaHealth ReplicaSet::state(int replica) const {
  if (replica < 0 || replica >= size()) {
    throw std::out_of_range("replica_set: replica index");
  }
  return state_[static_cast<std::size_t>(replica)];
}

int ReplicaSet::pick() const noexcept {
  for (std::size_t r = 0; r < state_.size(); ++r) {
    if (state_[r] == ReplicaHealth::kHealthy) return static_cast<int>(r);
  }
  return -1;
}

Router::Router(int num_shards, ShedPolicy policy, int replicas)
    : policy_(policy), replicas_(replicas) {
  if (num_shards < 1) {
    throw std::invalid_argument("router: need >= 1 shard");
  }
  sets_.reserve(static_cast<std::size_t>(num_shards));
  for (int s = 0; s < num_shards; ++s) sets_.emplace_back(replicas);
}

int Router::home_shard(int key) const noexcept {
  return static_cast<int>(mix(static_cast<std::uint64_t>(key)) %
                          sets_.size());
}

void Router::set_health(int shard, bool healthy) {
  set_replica_health(shard, 0,
                     healthy ? ReplicaHealth::kHealthy
                             : ReplicaHealth::kDegraded);
}

bool Router::healthy(int shard) const {
  return replica_set(shard).available();
}

void Router::set_replica_health(int shard, int replica, ReplicaHealth h) {
  if (shard < 0 || shard >= num_shards()) {
    throw std::out_of_range("router: shard index");
  }
  sets_[static_cast<std::size_t>(shard)].set_state(replica, h);
}

ReplicaHealth Router::replica_health(int shard, int replica) const {
  return replica_set(shard).state(replica);
}

const ReplicaSet& Router::replica_set(int shard) const {
  if (shard < 0 || shard >= num_shards()) {
    throw std::out_of_range("router: shard index");
  }
  return sets_[static_cast<std::size_t>(shard)];
}

Router::Route Router::route(int key) const noexcept {
  const int home = home_shard(key);
  const int r = sets_[static_cast<std::size_t>(home)].pick();
  if (r >= 0) return Route{home, r, false, r != 0};
  if (policy_ == ShedPolicy::kReject) return Route{-1, -1, false, false};
  const int n = num_shards();
  for (int step = 1; step < n; ++step) {
    const int s = (home + step) % n;
    const int rr = sets_[static_cast<std::size_t>(s)].pick();
    if (rr >= 0) return Route{s, rr, true, rr != 0};
  }
  return Route{-1, -1, false, false};  // the whole fleet is unavailable
}

}  // namespace svc
