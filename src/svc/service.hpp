// Sharded CBIR query-serving service over the mPIPE cluster (tentpole of
// docs/SERVING.md; the ROADMAP's "production-scale serving scenario").
//
// One cluster device = one shard; each shard holds a block of the image
// database as a precomputed apps::cbir::ShardIndex spread over its PEs.
// Serving proceeds in two phases, both in virtual time:
//
//   1. Calibrate — per shard, a real TSHMEM job (Cluster::run_shard)
//      builds the ShardIndex and times query_batch at batch sizes 1 and
//      max_batch, yielding the linear batch cost model
//      t(b) = setup_ps + b * per_query_ps.
//   2. Serve — a deterministic discrete-event loop drives millions of
//      generated arrivals through router -> LRU cache -> batcher -> the
//      calibrated shard model, recording per-query latency into log2
//      histograms. Events are ordered by (virtual time, sequence), so a
//      (seed, fault plan) pair replays bit-identically.
//
// Degradation (PR-3 fault engine, FaultSite::kShardStall): a stalling
// shard's virtual-time backlog crosses unhealthy_backlog_ps and the
// router stops feeding it — queries are refused with a structured
// tshmem::Error(kShardDegraded) or rerouted per ShedPolicy — until the
// backlog drains below recover_backlog_ps, which is recorded as a
// recovery. Accepted batches always run to completion, so a degraded
// shard sheds load rather than hanging: zero hung queries, bounded tail
// latency.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "apps/cbir.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/quantiles.hpp"
#include "obs/timeseries.hpp"
#include "sim/fault.hpp"
#include "svc/batcher.hpp"
#include "svc/loadgen.hpp"
#include "svc/router.hpp"
#include "tshmem/cluster.hpp"

namespace svc {

struct ServiceConfig {
  int pes_per_shard = 4;
  apps::cbir::Params db;  ///< db.images = total database, blocked by shard
  LoadGenConfig load;
  BatcherConfig batch;
  std::size_t cache_capacity = 4096;
  ShedPolicy policy = ShedPolicy::kReject;
  bool closed_loop = false;
  int concurrency = 64;           ///< in-flight window in closed-loop mode
  ps_t cache_hit_ps = 150'000;    ///< modeled lookup + reply cost (150 ns)
  /// Backlog watchdog: degrade above ~5 default batches of queued service
  /// time, recover once the queue is nearly drained.
  ps_t unhealthy_backlog_ps = 5'000'000'000;  ///< 5 ms
  ps_t recover_backlog_ps = 1'000'000'000;    ///< 1 ms
  tilesim::FaultPlan fault_plan;  ///< kShardStall is the serving site
  /// Flight recorder over the serve loop: one ring per shard, fed by the
  /// deterministic event loop (docs/OBSERVABILITY.md). Zero virtual cost.
  bool flightrec = false;
  std::size_t flightrec_capacity = obs::FlightRecorder::kDefaultCapacity;
  ps_t timeseries_window_ps = 0;  ///< >0 adds windowed svc.* telemetry
                                  ///< (implies flightrec)
  std::string blackbox_path;      ///< dump a post-mortem here on the first
                                  ///< shard degradation (implies flightrec)
};

/// Batch cost model measured on the real shard (virtual time).
struct ShardCalibration {
  ps_t build_ps = 0;      ///< ShardIndex construction
  ps_t setup_ps = 0;      ///< fixed per-batch cost (collectives, dispatch)
  ps_t per_query_ps = 0;  ///< marginal cost per query in a batch
  int first = 0;          ///< database slice this shard owns
  int count = 0;
};

struct ShardStats {
  std::uint64_t batches = 0;
  std::uint64_t queries = 0;
  std::uint64_t stall_events = 0;  ///< injected kShardStall hits
  ps_t stall_ps = 0;               ///< total injected stall
  std::uint64_t degraded_episodes = 0;
  std::uint64_t recoveries = 0;
  ps_t busy_ps = 0;                ///< total batch service time
  ps_t last_recovery_ps = 0;       ///< virtual time of the last recovery
};

struct ServiceReport {
  int shards = 0;
  std::vector<ShardCalibration> calibration;
  std::vector<ShardStats> shard_stats;
  ps_t duration_ps = 0;       ///< first arrival to last reply
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;  ///< answered (cache hits included)
  std::uint64_t cache_hits = 0;
  std::uint64_t shed = 0;       ///< refused with kShardDegraded
  std::uint64_t rerouted = 0;
  std::uint64_t hung = 0;       ///< offered - completed - shed (must be 0)
  double qps = 0.0;             ///< completed per virtual second
  obs::LatencyQuantiles latency{};  ///< p50/p99/p999 over completed (ps)
  std::uint64_t max_latency_ps = 0;
  std::uint64_t fault_events = 0;   ///< injected-event log size
  std::string fault_plan;           ///< FaultPlan::describe()
  std::string shed_error;           ///< sample structured shed error ("" if
                                    ///< nothing was shed)
};

class Service {
 public:
  Service(tshmem::Cluster& cluster, ServiceConfig cfg);

  /// Phase 1 for one shard: real cluster job, returns the cost model.
  ShardCalibration calibrate_shard(int shard);

  /// Calibrates every shard, then runs the serve loop to completion.
  ServiceReport run();

  /// svc.* metrics recorded by the last run() (docs/OBSERVABILITY.md).
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Last-N serve-loop events per shard (null unless cfg.flightrec).
  [[nodiscard]] obs::FlightRecorder* flightrec() noexcept {
    return flightrec_.get();
  }

  /// Windowed svc.* telemetry (null unless cfg.timeseries_window_ps > 0).
  [[nodiscard]] obs::TimeSeries* timeseries() noexcept {
    return timeseries_.get();
  }

  /// Writes a tshmem.blackbox.v1 post-mortem (source "svc") to `os`.
  /// Returns false when the flight recorder is disabled.
  bool write_blackbox(std::ostream& os, const std::string& reason,
                      int errc = 0);

 private:
  void dump_blackbox(const std::string& reason, int errc);

  tshmem::Cluster& cluster_;
  ServiceConfig cfg_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::FlightRecorder> flightrec_;
  std::unique_ptr<obs::TimeSeries> timeseries_;
  bool blackbox_written_ = false;
};

}  // namespace svc
