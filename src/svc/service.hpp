// Sharded CBIR query-serving service over the mPIPE cluster (tentpole of
// docs/SERVING.md; the ROADMAP's "production-scale serving scenario").
//
// One cluster device = one shard; each shard holds a block of the image
// database as a precomputed apps::cbir::ShardIndex spread over its PEs.
// Serving proceeds in two phases, both in virtual time:
//
//   1. Calibrate — per shard, a real TSHMEM job (Cluster::run_shard)
//      builds the ShardIndex and times query_batch at batch sizes 1 and
//      max_batch, yielding the linear batch cost model
//      t(b) = setup_ps + b * per_query_ps.
//   2. Serve — a deterministic discrete-event loop drives millions of
//      generated arrivals through router -> LRU cache -> batcher -> the
//      calibrated shard model, recording per-query latency into log2
//      histograms. Events are ordered by (virtual time, sequence), so a
//      (seed, fault plan) pair replays bit-identically.
//
// Replication (docs/SERVING.md failover): each shard slice owns
// `replicas` devices — replica r of shard s is cluster device
// r * shards + s, so replicas = 1 reproduces the PR-6 layout exactly and
// device s is always shard s's primary. Every replica is calibrated
// independently and carries its own batcher, queue, backlog watchdog and
// health state; the Router's per-shard ReplicaSet prefers the primary,
// fails over to a healthy backup when the primary degrades or crashes,
// and fails back once it recovers.
//
// Degradation (PR-3 fault engine, FaultSite::kShardStall): a stalling
// replica's virtual-time backlog crosses unhealthy_backlog_ps and the
// router stops feeding it — with a healthy peer replica the slice keeps
// completing queries; only a slice with no healthy replica sheds, with a
// structured tshmem::Error (kShardDegraded, or kReplicaLost when every
// replica crashed) or a reroute per ShedPolicy — until the backlog drains
// below recover_backlog_ps, which is recorded as a recovery. Crashes
// (FaultSite::kShardCrash / kReplicaFlap) kill a replica at a seeded
// point; its queued queries are re-dispatched to surviving replicas
// (requeues) and flap victims revive after their down time. Accepted
// batches always run to completion, so a degraded shard sheds load rather
// than hanging: zero hung queries, bounded tail latency.
//
// Admission control (CoDel-style, svc::CodelAdmission): with a nonzero
// deadline_ps every query carries a virtual-time completion deadline and
// is dropped at admission (kDeadlineExceeded) when the chosen replica's
// backlog already exceeds it; with a nonzero codel.target_ps the newest
// arrival is dropped once the queue's sojourn estimate has exceeded the
// target for a full interval. Both default off, keeping stock runs
// bit-identical.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "apps/cbir.hpp"
#include "obs/flightrec.hpp"
#include "obs/metrics.hpp"
#include "obs/quantiles.hpp"
#include "obs/timeseries.hpp"
#include "sim/fault.hpp"
#include "svc/batcher.hpp"
#include "svc/loadgen.hpp"
#include "svc/router.hpp"
#include "tshmem/cluster.hpp"

namespace svc {

struct ServiceConfig {
  int pes_per_shard = 4;
  /// Replicas per shard slice: the cluster must hold shards * replicas
  /// devices; replica r of shard s is device r * shards + s. 1 = the
  /// unreplicated PR-6 deployment (bit-identical); 2 is the deployment
  /// the failover CI stage and docs exercise.
  int replicas = 1;
  apps::cbir::Params db;  ///< db.images = total database, blocked by shard
  LoadGenConfig load;
  BatcherConfig batch;
  /// Deadline-aware admission: a query arriving at virtual time t carries
  /// deadline t + deadline_ps and is refused (kDeadlineExceeded) whenever
  /// the serving replica's backlog estimate already overruns it — also
  /// re-checked when a crash requeues the query. 0 = no deadlines.
  ps_t deadline_ps = 0;
  /// CoDel-style sojourn control on each replica's batcher queue
  /// (svc::CodelAdmission). codel.target_ps = 0 disables it.
  CodelConfig codel;
  std::size_t cache_capacity = 4096;
  ShedPolicy policy = ShedPolicy::kReject;
  bool closed_loop = false;
  int concurrency = 64;           ///< in-flight window in closed-loop mode
  ps_t cache_hit_ps = 150'000;    ///< modeled lookup + reply cost (150 ns)
  /// Backlog watchdog: degrade above ~5 default batches of queued service
  /// time, recover once the queue is nearly drained.
  ps_t unhealthy_backlog_ps = 5'000'000'000;  ///< 5 ms
  ps_t recover_backlog_ps = 1'000'000'000;    ///< 1 ms
  tilesim::FaultPlan fault_plan;  ///< kShardStall is the serving site
  /// Flight recorder over the serve loop: one ring per shard, fed by the
  /// deterministic event loop (docs/OBSERVABILITY.md). Zero virtual cost.
  bool flightrec = false;
  std::size_t flightrec_capacity = obs::FlightRecorder::kDefaultCapacity;
  ps_t timeseries_window_ps = 0;  ///< >0 adds windowed svc.* telemetry
                                  ///< (implies flightrec)
  std::string blackbox_path;      ///< dump a post-mortem here on the first
                                  ///< shard degradation (implies flightrec)
};

/// Batch cost model measured on the real replica device (virtual time).
/// Indexed by global replica slot (replica * shards + shard).
struct ShardCalibration {
  int shard = 0;          ///< shard slice this replica serves
  int replica = 0;        ///< 0 = primary
  ps_t build_ps = 0;      ///< ShardIndex construction
  ps_t setup_ps = 0;      ///< fixed per-batch cost (collectives, dispatch)
  ps_t per_query_ps = 0;  ///< marginal cost per query in a batch
  int first = 0;          ///< database slice this shard owns
  int count = 0;
};

/// Per-replica serving stats, indexed by global replica slot.
struct ShardStats {
  int shard = 0;
  int replica = 0;
  std::uint64_t batches = 0;
  std::uint64_t queries = 0;
  std::uint64_t stall_events = 0;  ///< injected kShardStall hits
  ps_t stall_ps = 0;               ///< total injected stall
  std::uint64_t degraded_episodes = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t crashes = 0;       ///< kShardCrash + kReplicaFlap deaths
  std::uint64_t flaps = 0;         ///< kReplicaFlap deaths (recoverable)
  std::uint64_t requeued = 0;      ///< queries moved off this replica after
                                   ///< it crashed
  ps_t busy_ps = 0;                ///< total batch service time
  ps_t last_recovery_ps = 0;       ///< virtual time of the last recovery
};

struct ServiceReport {
  int shards = 0;
  int replicas = 1;
  std::vector<ShardCalibration> calibration;  ///< one per replica slot
  std::vector<ShardStats> shard_stats;        ///< one per replica slot
  ps_t duration_ps = 0;       ///< first arrival to last reply
  std::uint64_t offered = 0;
  std::uint64_t completed = 0;  ///< answered (cache hits included)
  std::uint64_t cache_hits = 0;
  std::uint64_t shed = 0;       ///< refused (kShardDegraded / kReplicaLost)
  std::uint64_t rerouted = 0;
  std::uint64_t failover_routed = 0;  ///< queries served by a backup replica
  std::uint64_t requeued = 0;    ///< queries re-dispatched after a crash
  std::uint64_t failbacks = 0;   ///< a primary resumed after backups served
  std::uint64_t replica_crashes = 0;  ///< crash events (incl. flaps)
  std::uint64_t replica_lost = 0;     ///< shed with kReplicaLost
  std::uint64_t deadline_dropped = 0;  ///< admission drops (deadline+CoDel)
  std::uint64_t codel_dropped = 0;     ///< subset dropped by the CoDel law
  std::uint64_t hung = 0;  ///< offered - completed - shed - deadline_dropped
                           ///< (must be 0; run() throws on wrap-around)
  double qps = 0.0;             ///< completed per virtual second
  obs::LatencyQuantiles latency{};  ///< p50/p99/p999 over completed (ps)
  std::uint64_t max_latency_ps = 0;
  std::uint64_t fault_events = 0;   ///< injected-event log size
  std::string fault_plan;           ///< FaultPlan::describe()
  std::string shed_error;           ///< sample structured shed error ("" if
                                    ///< nothing was shed)
};

class Service {
 public:
  Service(tshmem::Cluster& cluster, ServiceConfig cfg);

  /// Shard slices (cluster devices / replicas).
  [[nodiscard]] int num_shards() const noexcept { return shards_; }

  /// Phase 1 for one replica: a real cluster job on its own device,
  /// returning that replica's independent cost model.
  ShardCalibration calibrate_replica(int shard, int replica);

  /// Primary-replica convenience (the PR-6 surface).
  ShardCalibration calibrate_shard(int shard) {
    return calibrate_replica(shard, 0);
  }

  /// Calibrates every shard, then runs the serve loop to completion.
  ServiceReport run();

  /// svc.* metrics recorded by the last run() (docs/OBSERVABILITY.md).
  [[nodiscard]] obs::MetricsRegistry& metrics() noexcept { return metrics_; }

  /// Last-N serve-loop events per shard (null unless cfg.flightrec).
  [[nodiscard]] obs::FlightRecorder* flightrec() noexcept {
    return flightrec_.get();
  }

  /// Windowed svc.* telemetry (null unless cfg.timeseries_window_ps > 0).
  [[nodiscard]] obs::TimeSeries* timeseries() noexcept {
    return timeseries_.get();
  }

  /// Writes a tshmem.blackbox.v1 post-mortem (source "svc") to `os`.
  /// Returns false when the flight recorder is disabled.
  bool write_blackbox(std::ostream& os, const std::string& reason,
                      int errc = 0);

 private:
  void dump_blackbox(const std::string& reason, int errc);

  tshmem::Cluster& cluster_;
  ServiceConfig cfg_;
  int shards_ = 0;  ///< cluster devices / replicas
  obs::MetricsRegistry metrics_;
  std::unique_ptr<obs::FlightRecorder> flightrec_;
  std::unique_ptr<obs::TimeSeries> timeseries_;
  bool blackbox_written_ = false;
};

}  // namespace svc
