#include "svc/report.hpp"

#include <iomanip>
#include <ostream>
#include <sstream>

#include "obs/exporters.hpp"

namespace svc {

namespace {

/// Fixed-format double: JSON-safe, deterministic across platforms for the
/// magnitudes a serve run produces.
std::string fmt(double v, int precision = 3) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

}  // namespace

void write_report_json(std::ostream& os, const ServiceReport& rep,
                       const ServiceConfig& cfg) {
  os << "{\n";
  os << "  \"schema\": \"" << kServeSchema << "\",\n";
  os << "  \"config\": {\n";
  os << "    \"shards\": " << rep.shards << ",\n";
  os << "    \"replicas\": " << rep.replicas << ",\n";
  os << "    \"pes_per_shard\": " << cfg.pes_per_shard << ",\n";
  os << "    \"images\": " << cfg.db.images << ",\n";
  os << "    \"seed\": " << cfg.load.seed << ",\n";
  os << "    \"queries\": " << cfg.load.queries << ",\n";
  os << "    \"start_qps\": " << fmt(cfg.load.start_qps, 1) << ",\n";
  os << "    \"end_qps\": " << fmt(cfg.load.end_qps, 1) << ",\n";
  os << "    \"zipf_s\": " << fmt(cfg.load.zipf_s) << ",\n";
  os << "    \"key_space\": " << cfg.load.key_space << ",\n";
  os << "    \"closed_loop\": " << (cfg.closed_loop ? "true" : "false")
     << ",\n";
  os << "    \"concurrency\": " << cfg.concurrency << ",\n";
  os << "    \"max_batch\": " << cfg.batch.max_batch << ",\n";
  os << "    \"batch_timeout_ps\": " << cfg.batch.timeout_ps << ",\n";
  os << "    \"cache_capacity\": " << cfg.cache_capacity << ",\n";
  os << "    \"policy\": \"" << shed_policy_name(cfg.policy) << "\",\n";
  os << "    \"unhealthy_backlog_ps\": " << cfg.unhealthy_backlog_ps
     << ",\n";
  os << "    \"recover_backlog_ps\": " << cfg.recover_backlog_ps << ",\n";
  os << "    \"deadline_ps\": " << cfg.deadline_ps << ",\n";
  os << "    \"codel_target_ps\": " << cfg.codel.target_ps << ",\n";
  os << "    \"codel_interval_ps\": " << cfg.codel.interval_ps << ",\n";
  os << "    \"fault_plan\": \"" << obs::json_escape(rep.fault_plan)
     << "\"\n";
  os << "  },\n";
  os << "  \"calibration\": [\n";
  for (std::size_t s = 0; s < rep.calibration.size(); ++s) {
    const ShardCalibration& c = rep.calibration[s];
    os << "    {\"shard\": " << c.shard << ", \"replica\": " << c.replica
       << ", \"first\": " << c.first
       << ", \"count\": " << c.count << ", \"build_ps\": " << c.build_ps
       << ", \"setup_ps\": " << c.setup_ps
       << ", \"per_query_ps\": " << c.per_query_ps << "}"
       << (s + 1 < rep.calibration.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"shards\": [\n";
  for (std::size_t s = 0; s < rep.shard_stats.size(); ++s) {
    const ShardStats& st = rep.shard_stats[s];
    os << "    {\"shard\": " << st.shard << ", \"replica\": " << st.replica
       << ", \"batches\": " << st.batches
       << ", \"queries\": " << st.queries
       << ", \"stall_events\": " << st.stall_events
       << ", \"stall_ps\": " << st.stall_ps
       << ", \"degraded_episodes\": " << st.degraded_episodes
       << ", \"recoveries\": " << st.recoveries
       << ", \"crashes\": " << st.crashes << ", \"flaps\": " << st.flaps
       << ", \"requeued\": " << st.requeued
       << ", \"last_recovery_ps\": " << st.last_recovery_ps
       << ", \"busy_ps\": " << st.busy_ps << "}"
       << (s + 1 < rep.shard_stats.size() ? "," : "") << "\n";
  }
  os << "  ],\n";
  os << "  \"totals\": {\n";
  os << "    \"duration_ps\": " << rep.duration_ps << ",\n";
  os << "    \"offered\": " << rep.offered << ",\n";
  os << "    \"completed\": " << rep.completed << ",\n";
  os << "    \"cache_hits\": " << rep.cache_hits << ",\n";
  os << "    \"shed\": " << rep.shed << ",\n";
  os << "    \"rerouted\": " << rep.rerouted << ",\n";
  os << "    \"failover_routed\": " << rep.failover_routed << ",\n";
  os << "    \"requeued\": " << rep.requeued << ",\n";
  os << "    \"failbacks\": " << rep.failbacks << ",\n";
  os << "    \"replica_crashes\": " << rep.replica_crashes << ",\n";
  os << "    \"replica_lost\": " << rep.replica_lost << ",\n";
  os << "    \"deadline_dropped\": " << rep.deadline_dropped << ",\n";
  os << "    \"codel_dropped\": " << rep.codel_dropped << ",\n";
  os << "    \"hung\": " << rep.hung << ",\n";
  os << "    \"qps\": " << fmt(rep.qps, 1) << ",\n";
  os << "    \"p50_latency_ps\": " << rep.latency.p50 << ",\n";
  os << "    \"p99_latency_ps\": " << rep.latency.p99 << ",\n";
  os << "    \"p999_latency_ps\": " << rep.latency.p999 << ",\n";
  os << "    \"max_latency_ps\": " << rep.max_latency_ps << ",\n";
  os << "    \"fault_events\": " << rep.fault_events << "\n";
  os << "  },\n";
  os << "  \"shed_error\": \"" << obs::json_escape(rep.shed_error)
     << "\"\n";
  os << "}\n";
}

void print_summary(std::ostream& os, const ServiceReport& rep,
                   const ServiceConfig& cfg) {
  os << "--- serving summary ---\n";
  os << "shards " << rep.shards << " x " << rep.replicas << " replicas x "
     << cfg.pes_per_shard << " PEs, db " << cfg.db.images << " images, "
     << (cfg.closed_loop ? "closed" : "open") << "-loop, policy "
     << shed_policy_name(cfg.policy) << "\n";
  for (std::size_t s = 0; s < rep.calibration.size(); ++s) {
    const ShardCalibration& c = rep.calibration[s];
    os << "shard " << c.shard << "/r" << c.replica << ": images ["
       << c.first << ", " << c.first + c.count << "), build " << c.build_ps
       << " ps, batch " << c.setup_ps << " + n*" << c.per_query_ps
       << " ps\n";
  }
  os << "offered " << rep.offered << ", completed " << rep.completed
     << " (cache " << rep.cache_hits << "), shed " << rep.shed
     << ", rerouted " << rep.rerouted << ", hung " << rep.hung << "\n";
  if (rep.replicas > 1 || rep.replica_crashes > 0 ||
      rep.deadline_dropped > 0) {
    os << "failover: routed " << rep.failover_routed << ", requeued "
       << rep.requeued << ", failbacks " << rep.failbacks << ", crashes "
       << rep.replica_crashes << ", lost " << rep.replica_lost
       << "; admission drops " << rep.deadline_dropped << " (codel "
       << rep.codel_dropped << ")\n";
  }
  for (std::size_t s = 0; s < rep.shard_stats.size(); ++s) {
    const ShardStats& st = rep.shard_stats[s];
    os << "shard " << st.shard << "/r" << st.replica << ": " << st.batches
       << " batches / " << st.queries << " queries, stalls "
       << st.stall_events << " (" << st.stall_ps << " ps), degraded "
       << st.degraded_episodes << ", recovered " << st.recoveries;
    if (st.crashes > 0) {
      os << ", crashes " << st.crashes << " (flaps " << st.flaps
         << "), requeued " << st.requeued;
    }
    os << "\n";
  }
  if (!rep.shed_error.empty()) {
    os << "sample shed reply: " << rep.shed_error << "\n";
  }
  // The machine-parsable record (tools/perf_run.py, tools/ci.sh). New
  // fields append after fault_events: the harvesters match the prefix.
  os << "serve: qps=" << fmt(rep.qps, 1) << " p50_ps=" << rep.latency.p50
     << " p99_ps=" << rep.latency.p99 << " p999_ps=" << rep.latency.p999
     << " completed=" << rep.completed << " shed=" << rep.shed
     << " hung=" << rep.hung << " fault_events=" << rep.fault_events
     << " deadline_drop=" << rep.deadline_dropped
     << " failover=" << rep.failover_routed << " requeued=" << rep.requeued
     << "\n";
}

}  // namespace svc
