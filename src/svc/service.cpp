#include "svc/service.hpp"

#include <algorithm>
#include <deque>
#include <fstream>
#include <functional>
#include <queue>
#include <span>
#include <sstream>
#include <stdexcept>
#include <vector>

#include "sim/flight_hook.hpp"
#include "svc/cache.hpp"
#include "util/error.hpp"

namespace svc {

using apps::cbir::Feature;
using apps::cbir::FeatureCache;
using apps::cbir::Hit;
using apps::cbir::ShardIndex;

Service::Service(tshmem::Cluster& cluster, ServiceConfig cfg)
    : cluster_(cluster), cfg_(cfg) {
  if (cfg_.pes_per_shard < 1) {
    throw std::invalid_argument("service: pes_per_shard must be >= 1");
  }
  if (cfg_.replicas < 1) {
    throw std::invalid_argument("service: replicas must be >= 1");
  }
  if (cluster_.num_devices() < cfg_.replicas ||
      cluster_.num_devices() % cfg_.replicas != 0) {
    throw std::invalid_argument(
        "service: cluster devices must be shards * replicas");
  }
  shards_ = cluster_.num_devices() / cfg_.replicas;
  if (cfg_.db.images < shards_) {
    throw std::invalid_argument("service: fewer images than shards");
  }
  if (cfg_.recover_backlog_ps > cfg_.unhealthy_backlog_ps) {
    throw std::invalid_argument(
        "service: recover threshold above the degrade threshold");
  }
  if (cfg_.load.key_space > cfg_.db.images) {
    throw std::invalid_argument("service: key_space exceeds the database");
  }
  if (cfg_.closed_loop && cfg_.concurrency < 1) {
    throw std::invalid_argument("service: closed loop needs concurrency>=1");
  }
  if (cfg_.deadline_ps < 0 || cfg_.codel.target_ps < 0) {
    throw std::invalid_argument("service: negative admission thresholds");
  }
  if (cfg_.timeseries_window_ps > 0 || !cfg_.blackbox_path.empty()) {
    cfg_.flightrec = true;
  }
  if (cfg_.flightrec) {
    flightrec_ = std::make_unique<obs::FlightRecorder>(
        cluster_.num_devices(), cfg_.flightrec_capacity);
    if (cfg_.timeseries_window_ps > 0) {
      timeseries_ =
          std::make_unique<obs::TimeSeries>(cfg_.timeseries_window_ps);
      flightrec_->set_tap(timeseries_.get());
    }
  }
}

bool Service::write_blackbox(std::ostream& os, const std::string& reason,
                             int errc) {
  if (flightrec_ == nullptr) return false;
  obs::BlackboxInfo info;
  info.reason = reason;
  info.errc = errc;
  info.errc_name =
      errc != 0 ? tshmem::errc_name(static_cast<tshmem::Errc>(errc)) : "";
  info.fault_plan = cfg_.fault_plan.describe();
  info.source = "svc";
  obs::write_blackbox_json(os, *flightrec_, info);
  return true;
}

void Service::dump_blackbox(const std::string& reason, int errc) {
  if (flightrec_ == nullptr || cfg_.blackbox_path.empty()) return;
  if (blackbox_written_) return;  // keep the *first* incident's rings
  std::ofstream os(cfg_.blackbox_path);
  if (!os) return;
  blackbox_written_ = write_blackbox(os, reason, errc);
}

ShardCalibration Service::calibrate_replica(int shard, int replica) {
  if (shard < 0 || shard >= shards_) {
    throw std::out_of_range("service: shard index");
  }
  if (replica < 0 || replica >= cfg_.replicas) {
    throw std::out_of_range("service: replica index");
  }
  const int device = replica * shards_ + shard;
  const int per_shard = (cfg_.db.images + shards_ - 1) / shards_;
  ShardCalibration cal;
  cal.shard = shard;
  cal.replica = replica;
  cal.first = std::min(cfg_.db.images, shard * per_shard);
  cal.count = std::min(cfg_.db.images - cal.first, per_shard);
  const int probes = std::max(2, cfg_.batch.max_batch);
  const apps::cbir::Params db = cfg_.db;

  cluster_.run_shard(device, cfg_.pes_per_shard, [&](tshmem::Context& ctx) {
    const auto b0 = ctx.clock().now();
    ShardIndex index(ctx, db, cal.first, cal.count);
    const auto b1 = ctx.clock().now();
    // Probe query features are client-side work: extracted outside the
    // timed region and not charged to the shard.
    const std::size_t px = static_cast<std::size_t>(db.width) *
                           static_cast<std::size_t>(db.height);
    std::vector<std::uint8_t> img(px);
    std::vector<Feature> queries(static_cast<std::size_t>(probes));
    for (int i = 0; i < probes; ++i) {
      const int key = cal.first + (i * 911) % cal.count;
      const std::uint64_t s = db.seed + static_cast<std::uint64_t>(key);
      apps::cbir::generate_image(img, db.width, db.height, s);
      queries[static_cast<std::size_t>(i)] =
          FeatureCache::shared().seeded(img, db.width, db.height, s).feature;
    }
    std::vector<Hit> out(static_cast<std::size_t>(probes));
    ctx.barrier_all();
    const auto t0 = ctx.clock().now();
    index.query_batch(ctx, std::span<const Feature>(queries.data(), 1),
                      std::span<Hit>(out.data(), 1));
    const auto t1 = ctx.clock().now();
    index.query_batch(ctx, queries, out);
    const auto t2 = ctx.clock().now();
    index.destroy(ctx);
    if (ctx.my_pe() == 0) {
      const ps_t one = t1 - t0;
      const ps_t many = t2 - t1;
      cal.build_ps = b1 - b0;
      cal.per_query_ps =
          probes > 1 ? std::max<ps_t>(1, (many - one) / (probes - 1)) : one;
      cal.setup_ps = one > cal.per_query_ps ? one - cal.per_query_ps : 0;
    }
  });
  return cal;
}

namespace {

struct Event {
  enum class Kind { kArrival, kBatchTimeout, kBatchDone, kReplicaRecover };

  ps_t at = 0;
  std::uint64_t seq = 0;  ///< monotone tiebreak: total event order
  Kind kind = Kind::kArrival;
  int rid = -1;  ///< global replica slot (replica * shards + shard)
  std::uint64_t generation = 0;  ///< batch-timeout staleness guard
  Arrival arrival;
};

struct EventAfter {
  bool operator()(const Event& a, const Event& b) const noexcept {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

/// Serve-loop state of one replica (one cluster device).
struct ReplicaState {
  ReplicaState(const BatcherConfig& bcfg, const CodelConfig& ccfg)
      : batcher(bcfg), codel(ccfg) {}

  Batcher batcher;
  CodelAdmission codel;  ///< sojourn controller over `queue`
  std::deque<std::vector<PendingQuery>> queue;  ///< closed, waiting batches
  std::vector<PendingQuery> running;            ///< batch being served
  bool busy = false;
  ps_t busy_until = 0;
  ps_t queued_est_ps = 0;  ///< estimated service time of `queue`
  bool degraded = false;
  bool crashed = false;  ///< kShardCrash (forever) or kReplicaFlap (down)
};

}  // namespace

ServiceReport Service::run() {
  const int replicas = cfg_.replicas;
  const int nrep = shards_ * replicas;
  ServiceReport rep;
  rep.shards = shards_;
  rep.replicas = replicas;
  rep.calibration.reserve(static_cast<std::size_t>(nrep));
  for (int rid = 0; rid < nrep; ++rid) {
    rep.calibration.push_back(
        calibrate_replica(rid % shards_, rid / shards_));
  }
  rep.shard_stats.assign(static_cast<std::size_t>(nrep), ShardStats{});
  for (int rid = 0; rid < nrep; ++rid) {
    rep.shard_stats[static_cast<std::size_t>(rid)].shard = rid % shards_;
    rep.shard_stats[static_cast<std::size_t>(rid)].replica = rid / shards_;
  }
  rep.fault_plan = cfg_.fault_plan.describe();

  // --- serve phase: deterministic discrete-event loop ---------------------
  tilesim::FaultEngine faults(cfg_.fault_plan);
  LoadGen gen(cfg_.load);
  LruCache cache(cfg_.cache_capacity);
  Router router(shards_, cfg_.policy, replicas);
  std::vector<ReplicaState> st;
  st.reserve(static_cast<std::size_t>(nrep));
  for (int rid = 0; rid < nrep; ++rid) {
    st.emplace_back(cfg_.batch, cfg_.codel);
  }

  // Sanctioned instrumentation handles (lint rule R005).
  auto* m_offered = obs::counter_handle(metrics_, "svc.offered", 0);
  auto* m_completed = obs::counter_handle(metrics_, "svc.completed", 0);
  auto* m_shed = obs::counter_handle(metrics_, "svc.shed", 0);
  auto* m_rerouted = obs::counter_handle(metrics_, "svc.rerouted", 0);
  auto* m_deadline = obs::counter_handle(metrics_, "svc.deadline_drop", 0);
  auto* m_latency = obs::histogram_handle(metrics_, "svc.latency.ps", 0);
  auto* m_fill = obs::histogram_handle(metrics_, "svc.batch.fill", 0);
  // Flight-recorder / time-series handles are null-safe: when disabled the
  // helpers are no-ops and the serve loop is untouched (rule R006).
  obs::FlightRecorder* fr = flightrec_.get();
  obs::TimeSeries* ts = timeseries_.get();

  std::priority_queue<Event, std::vector<Event>, EventAfter> heap;
  std::uint64_t next_seq = 0;
  auto push = [&](Event e) {
    e.seq = next_seq++;
    heap.push(e);
  };

  ps_t first_arrival_ps = 0;
  bool seen_arrival = false;
  ps_t last_reply_ps = 0;
  std::uint64_t in_flight = 0;  // accepted or shed-pending window (closed)

  auto shard_of = [&](int rid) { return rid % shards_; };
  auto replica_of = [&](int rid) { return rid / shards_; };

  auto est_ps = [&](int rid, std::size_t n) {
    const ShardCalibration& c = rep.calibration[static_cast<std::size_t>(rid)];
    return c.setup_ps + static_cast<ps_t>(n) * c.per_query_ps;
  };

  auto backlog_ps = [&](int rid, ps_t now) {
    const ReplicaState& s = st[static_cast<std::size_t>(rid)];
    const ps_t busy = s.busy ? s.busy_until - now : 0;
    return busy + s.queued_est_ps;
  };

  auto update_health = [&](int rid, ps_t now) {
    ReplicaState& s = st[static_cast<std::size_t>(rid)];
    if (s.crashed) return;  // a dead replica has no backlog to watch
    ShardStats& stats = rep.shard_stats[static_cast<std::size_t>(rid)];
    const ps_t backlog = backlog_ps(rid, now);
    obs::set_level(metrics_, "svc.shard.backlog.ps", rid,
                   static_cast<std::int64_t>(backlog));
    if (!s.degraded && backlog > cfg_.unhealthy_backlog_ps) {
      s.degraded = true;
      router.set_replica_health(shard_of(rid), replica_of(rid),
                                ReplicaHealth::kDegraded);
      ++stats.degraded_episodes;
      obs::add_count(metrics_, "svc.shard.degraded", rid, 1);
      obs::fr_record(fr, rid, tilesim::FlightKind::kSvcDegraded,
                     "svc_degrade", now, -1, 0,
                     static_cast<int>(tshmem::Errc::kShardDegraded));
      obs::ts_add(ts, "svc.degraded", now);
      dump_blackbox("shard " + std::to_string(shard_of(rid)) + " replica " +
                        std::to_string(replica_of(rid)) +
                        " degraded: virtual-time backlog crossed "
                        "unhealthy_backlog_ps",
                    static_cast<int>(tshmem::Errc::kShardDegraded));
    } else if (s.degraded && backlog <= cfg_.recover_backlog_ps) {
      s.degraded = false;
      router.set_replica_health(shard_of(rid), replica_of(rid),
                                ReplicaHealth::kHealthy);
      ++stats.recoveries;
      stats.last_recovery_ps = now;
      obs::add_count(metrics_, "svc.shard.recovered", rid, 1);
      obs::fr_record(fr, rid, tilesim::FlightKind::kSvcRecovered,
                     "svc_recover", now);
      obs::ts_add(ts, "svc.recovered", now);
      if (replica_of(rid) == 0 && replicas > 1) {
        // The primary is back: the ReplicaSet prefers it again.
        ++rep.failbacks;
        obs::add_count(metrics_, "svc.failover.failbacks", rid, 1);
        obs::fr_record(fr, rid, tilesim::FlightKind::kSvcFailback,
                       "svc_failback", now);
        obs::ts_add(ts, "svc.failback", now);
      }
    }
  };

  auto inject_closed = [&](ps_t now) {
    while (!gen.exhausted() && in_flight < static_cast<std::uint64_t>(
                                   cfg_.concurrency)) {
      push(Event{now, 0, Event::Kind::kArrival, -1, 0, gen.next_keyed(now)});
      ++in_flight;
    }
  };

  auto reply = [&](ps_t at) {
    last_reply_ps = std::max(last_reply_ps, at);
    if (cfg_.closed_loop) {
      --in_flight;
      inject_closed(at);
    }
  };

  auto complete = [&](const PendingQuery& q, ps_t now, int rid) {
    const auto latency = static_cast<std::uint64_t>(now - q.arrival_ps);
    m_latency->record(latency);
    rep.max_latency_ps = std::max(rep.max_latency_ps, latency);
    ++rep.completed;
    m_completed->add(1);
    obs::fr_record(fr, rid, tilesim::FlightKind::kSvcComplete,
                   "svc_complete", now, -1, 1);
    obs::ts_add(ts, "svc.completed", now);
    obs::ts_sample(ts, "svc.latency.ps", now, latency);
    // A query key is a database image, so the exact answer is
    // self-retrieval at distance 0 (the test_apps_cbir contract).
    cache.put(q.key, Hit{q.key, 0.0f});
    reply(now);
  };

  auto record_shed = [&](std::uint64_t id, int key, ps_t now, int rid,
                         tshmem::Errc errc, const char* why) {
    ++rep.shed;
    m_shed->add(1);
    if (errc == tshmem::Errc::kReplicaLost) {
      ++rep.replica_lost;
      obs::add_count(metrics_, "svc.replica.lost", 0, 1);
    }
    obs::fr_record(fr, rid, tilesim::FlightKind::kSvcShed, "svc_shed", now,
                   -1, 1, static_cast<int>(errc));
    obs::ts_add(ts, "svc.shed", now);
    if (rep.shed_error.empty()) {
      std::ostringstream msg;
      msg << "query " << id << " (key " << key << ") shed at " << now
          << " ps: " << why;
      rep.shed_error = tshmem::Error(errc, msg.str()).what();
    }
    reply(now);
  };

  auto shed_arrival = [&](const Arrival& a, ps_t now) {
    const int home = router.home_shard(a.key);
    // Distinguish a slice that is merely backlogged from one whose every
    // replica is gone: clients can retry the former, not the latter.
    bool all_crashed = true;
    for (int r = 0; r < replicas; ++r) {
      if (router.replica_health(home, r) != ReplicaHealth::kCrashed) {
        all_crashed = false;
        break;
      }
    }
    std::ostringstream why;
    why << "home shard " << home
        << (all_crashed ? " lost every replica" : " degraded")
        << " and no healthy shard accepts " << shed_policy_name(cfg_.policy)
        << " traffic";
    record_shed(a.id, a.key, now, home,
                all_crashed ? tshmem::Errc::kReplicaLost
                            : tshmem::Errc::kShardDegraded,
                why.str().c_str());
  };

  auto drop_deadline = [&](const PendingQuery& q, ps_t now, int rid,
                           bool codel) {
    ++rep.deadline_dropped;
    if (codel) ++rep.codel_dropped;
    m_deadline->add(1);
    if (codel) obs::add_count(metrics_, "svc.codel.drop", rid, 1);
    obs::fr_record(fr, rid, tilesim::FlightKind::kSvcDeadlineDrop,
                   codel ? "svc_codel_drop" : "svc_deadline_drop", now, -1,
                   1, static_cast<int>(tshmem::Errc::kDeadlineExceeded));
    obs::ts_add(ts, "svc.deadline_drop", now);
    reply(now);
  };

  // Forward declarations for the mutually recursive dispatch helpers: a
  // crash inside try_start requeues onto peers, whose own try_start runs.
  std::function<void(int, ps_t)> try_start;
  std::function<void(int, ps_t)> crash_replica;

  auto close_batch = [&](int rid, ps_t now) {
    ReplicaState& s = st[static_cast<std::size_t>(rid)];
    std::vector<PendingQuery> batch = s.batcher.close();
    s.queued_est_ps += est_ps(rid, batch.size());
    s.queue.push_back(std::move(batch));
    update_health(rid, now);
    try_start(rid, now);
  };

  /// Admission + enqueue of one query onto `rid`. Returns false when the
  /// query was dropped by deadline / CoDel admission control.
  auto enqueue = [&](int rid, const PendingQuery& q, ps_t now) {
    const ps_t backlog = backlog_ps(rid, now);
    if (q.deadline_ps > 0 && now + backlog > q.deadline_ps) {
      drop_deadline(q, now, rid, false);
      return false;
    }
    ReplicaState& s = st[static_cast<std::size_t>(rid)];
    if (!s.codel.admit(backlog, now)) {
      drop_deadline(q, now, rid, true);
      return false;
    }
    const Batcher::AddResult added = s.batcher.add(q, now);
    if (added.full) {
      close_batch(rid, now);
    } else if (added.arm_timer) {
      push(Event{added.deadline_ps, 0, Event::Kind::kBatchTimeout, rid,
                 added.generation, {}});
    }
    return true;
  };

  /// Failover path: re-dispatch one query stranded on a dead replica.
  auto requeue = [&](const PendingQuery& q, ps_t now, int from_rid) {
    const Router::Route route = router.route(q.key);
    if (route.shard < 0) {
      record_shed(q.id, q.key, now, from_rid, tshmem::Errc::kReplicaLost,
                  "its replica crashed and no surviving replica accepts "
                  "failover traffic");
      return;
    }
    const int to_rid = route.replica * shards_ + route.shard;
    ++rep.requeued;
    ++rep.shard_stats[static_cast<std::size_t>(from_rid)].requeued;
    obs::add_count(metrics_, "svc.failover.requeued", from_rid, 1);
    obs::fr_record(fr, from_rid, tilesim::FlightKind::kSvcFailover,
                   "svc_requeue", now, to_rid, 1);
    obs::ts_add(ts, "svc.failover", now);
    enqueue(to_rid, q, now);
  };

  crash_replica = [&](int rid, ps_t now) {
    // Shared by kShardCrash (permanent: no recovery is ever scheduled)
    // and kReplicaFlap (the caller schedules the revival).
    ReplicaState& s = st[static_cast<std::size_t>(rid)];
    ShardStats& stats = rep.shard_stats[static_cast<std::size_t>(rid)];
    s.crashed = true;
    s.degraded = false;
    router.set_replica_health(shard_of(rid), replica_of(rid),
                              ReplicaHealth::kCrashed);
    ++stats.crashes;
    ++rep.replica_crashes;
    obs::add_count(metrics_, "svc.replica.crashed", rid, 1);
    obs::fr_record(fr, rid, tilesim::FlightKind::kSvcCrash, "svc_crash",
                   now, -1, 0,
                   static_cast<int>(tshmem::Errc::kReplicaLost));
    obs::ts_add(ts, "svc.crash", now);
    dump_blackbox("shard " + std::to_string(shard_of(rid)) + " replica " +
                      std::to_string(replica_of(rid)) +
                      " crashed (seeded fault site)",
                  static_cast<int>(tshmem::Errc::kReplicaLost));
    // Strand nothing: every query this replica still held fails over,
    // oldest first (queued closed batches, then the open batch).
    std::vector<PendingQuery> strays;
    for (const auto& b : s.queue) {
      strays.insert(strays.end(), b.begin(), b.end());
    }
    s.queue.clear();
    s.queued_est_ps = 0;
    if (s.batcher.open_size() > 0) {
      std::vector<PendingQuery> open = s.batcher.close();
      strays.insert(strays.end(), open.begin(), open.end());
    }
    obs::set_level(metrics_, "svc.shard.backlog.ps", rid, 0);
    for (const PendingQuery& q : strays) requeue(q, now, rid);
  };

  try_start = [&](int rid, ps_t now) {
    ReplicaState& s = st[static_cast<std::size_t>(rid)];
    if (s.busy || s.crashed || s.queue.empty()) return;
    // Each dispatch is one crash/flap opportunity — consumed on every
    // attempt so the ordinal streams stay aligned across plans.
    ShardStats& stats = rep.shard_stats[static_cast<std::size_t>(rid)];
    if (faults.shard_crash(rid, now)) {
      crash_replica(rid, now);
      return;
    }
    if (const ps_t down = faults.replica_flap(rid, now); down > 0) {
      ++stats.flaps;
      obs::add_count(metrics_, "svc.replica.flaps", rid, 1);
      crash_replica(rid, now);
      push(Event{now + down, 0, Event::Kind::kReplicaRecover, rid, 0, {}});
      return;
    }
    s.running = std::move(s.queue.front());
    s.queue.pop_front();
    const ps_t est = est_ps(rid, s.running.size());
    s.queued_est_ps -= est;
    const ps_t stall = faults.shard_stall(rid, now);
    if (stall > 0) {
      ++stats.stall_events;
      stats.stall_ps += stall;
      obs::add_count(metrics_, "svc.shard.stall.events", rid, 1);
      obs::add_count(metrics_, "svc.shard.stall.ps", rid,
                     static_cast<std::uint64_t>(stall));
    }
    const ps_t service = est + stall;
    s.busy = true;
    s.busy_until = now + service;
    stats.busy_ps += service;
    ++stats.batches;
    stats.queries += s.running.size();
    obs::add_count(metrics_, "svc.shard.batches", rid, 1);
    obs::add_count(metrics_, "svc.shard.queries", rid, s.running.size());
    m_fill->record(s.running.size());
    obs::fr_record(fr, rid, tilesim::FlightKind::kSvcBatch, "svc_batch",
                   now, -1, s.running.size());
    push(Event{s.busy_until, 0, Event::Kind::kBatchDone, rid, 0, {}});
  };

  // Seed the arrival stream.
  if (cfg_.load.queries == 0) {
    throw std::invalid_argument("service: zero queries");
  }
  if (cfg_.closed_loop) {
    inject_closed(0);
  } else {
    const Arrival a = gen.next();
    push(Event{a.at_ps, 0, Event::Kind::kArrival, -1, 0, a});
  }

  while (!heap.empty()) {
    const Event e = heap.top();
    heap.pop();
    const ps_t now = e.at;
    switch (e.kind) {
      case Event::Kind::kArrival: {
        const Arrival a{now, e.arrival.key, e.arrival.id};
        if (!seen_arrival) {
          seen_arrival = true;
          first_arrival_ps = now;
        }
        ++rep.offered;
        m_offered->add(1);
        const int home = router.home_shard(a.key);
        obs::fr_record(fr, home, tilesim::FlightKind::kSvcArrival,
                       "svc_arrival", now, -1, 1);
        obs::ts_add(ts, "svc.offered", now);
        // Open loop: keep the arrival stream going regardless of outcome.
        if (!cfg_.closed_loop && !gen.exhausted()) {
          const Arrival next = gen.next();
          push(Event{next.at_ps, 0, Event::Kind::kArrival, -1, 0, next});
        }
        if (const Hit* hit = cache.get(a.key); hit != nullptr) {
          ++rep.cache_hits;
          const ps_t done = now + cfg_.cache_hit_ps;
          m_latency->record(static_cast<std::uint64_t>(cfg_.cache_hit_ps));
          rep.max_latency_ps = std::max(
              rep.max_latency_ps,
              static_cast<std::uint64_t>(cfg_.cache_hit_ps));
          ++rep.completed;
          m_completed->add(1);
          obs::fr_record(fr, home, tilesim::FlightKind::kSvcComplete,
                         "svc_cache_hit", done, -1, 1);
          obs::ts_add(ts, "svc.completed", done);
          obs::ts_sample(ts, "svc.latency.ps", done,
                         static_cast<std::uint64_t>(cfg_.cache_hit_ps));
          reply(done);
          break;
        }
        const Router::Route route = router.route(a.key);
        if (route.shard < 0) {
          shed_arrival(a, now);
          break;
        }
        const int rid = route.replica * shards_ + route.shard;
        if (route.rerouted) {
          ++rep.rerouted;
          m_rerouted->add(1);
        }
        if (route.failover) {
          ++rep.failover_routed;
          obs::add_count(metrics_, "svc.failover.routed", rid, 1);
          obs::fr_record(fr, rid, tilesim::FlightKind::kSvcFailover,
                         "svc_failover_route", now, route.shard, 1);
          obs::ts_add(ts, "svc.failover", now);
        }
        const PendingQuery q{
            a.id, a.key, now,
            cfg_.deadline_ps > 0 ? now + cfg_.deadline_ps : 0};
        enqueue(rid, q, now);
        break;
      }
      case Event::Kind::kBatchTimeout: {
        ReplicaState& s = st[static_cast<std::size_t>(e.rid)];
        if (s.crashed || s.batcher.generation() != e.generation ||
            s.batcher.open_size() == 0) {
          break;  // stale: the batch already closed full (or died)
        }
        close_batch(e.rid, now);
        break;
      }
      case Event::Kind::kBatchDone: {
        ReplicaState& s = st[static_cast<std::size_t>(e.rid)];
        std::vector<PendingQuery> batch = std::move(s.running);
        s.running.clear();
        s.busy = false;
        for (const PendingQuery& q : batch) complete(q, now, e.rid);
        update_health(e.rid, now);
        try_start(e.rid, now);
        break;
      }
      case Event::Kind::kReplicaRecover: {
        ReplicaState& s = st[static_cast<std::size_t>(e.rid)];
        if (!s.crashed) break;
        s.crashed = false;
        s.degraded = false;  // its queue failed over at the crash
        router.set_replica_health(shard_of(e.rid), replica_of(e.rid),
                                  ReplicaHealth::kHealthy);
        ShardStats& stats = rep.shard_stats[static_cast<std::size_t>(e.rid)];
        ++stats.recoveries;
        stats.last_recovery_ps = now;
        obs::add_count(metrics_, "svc.replica.recovered", e.rid, 1);
        obs::fr_record(fr, e.rid, tilesim::FlightKind::kSvcRecovered,
                       "svc_flap_recover", now);
        obs::ts_add(ts, "svc.recovered", now);
        if (replica_of(e.rid) == 0 && replicas > 1) {
          ++rep.failbacks;
          obs::add_count(metrics_, "svc.failover.failbacks", e.rid, 1);
          obs::fr_record(fr, e.rid, tilesim::FlightKind::kSvcFailback,
                         "svc_failback", now);
          obs::ts_add(ts, "svc.failback", now);
        }
        break;
      }
    }
  }

  // Every accepted query must have drained: stranded open batches or
  // queued work would be a shed-not-hang violation.
  std::uint64_t stranded = 0;
  for (const ReplicaState& s : st) {
    stranded += s.batcher.open_size() + s.running.size();
    for (const auto& b : s.queue) stranded += b.size();
  }
  // Guard the unsigned subtraction: a double-counted completion would
  // otherwise wrap into a near-2^64 "hung" figure that reads like noise
  // instead of the accounting bug it is.
  const std::uint64_t answered =
      rep.completed + rep.shed + rep.deadline_dropped;
  if (answered > rep.offered) {
    std::ostringstream msg;
    msg << "service: completion accounting wrapped: offered " << rep.offered
        << " < completed " << rep.completed << " + shed " << rep.shed
        << " + deadline_dropped " << rep.deadline_dropped;
    throw std::logic_error(msg.str());
  }
  rep.hung = rep.offered - answered;
  if (stranded != rep.hung) {
    throw std::logic_error("service: completion accounting diverged");
  }
  obs::add_count(metrics_, "svc.hung", 0, rep.hung);
  obs::add_count(metrics_, "svc.cache.hits", 0, cache.hits());
  obs::add_count(metrics_, "svc.cache.misses", 0, cache.misses());
  obs::add_count(metrics_, "svc.cache.evictions", 0, cache.evictions());
  rep.cache_hits = cache.hits();
  rep.fault_events = faults.event_count();
  rep.duration_ps =
      last_reply_ps > first_arrival_ps ? last_reply_ps - first_arrival_ps : 0;
  if (rep.duration_ps > 0) {
    rep.qps = static_cast<double>(rep.completed) /
              (static_cast<double>(rep.duration_ps) * 1e-12);
  }
  rep.latency = obs::latency_quantiles(*m_latency);
  return rep;
}

}  // namespace svc
