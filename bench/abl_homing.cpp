// Ablation C — memory-homing strategies (paper §III-A and the §VI future
// work on homing): local vs remote vs hash-for-home bandwidth across
// transfer sizes, on both devices.
//
// Shows the paper's qualitative claims: local homing wins while the working
// set fits the local L2 (faster hit latency) and collapses beyond it (no
// DDC); hash-for-home is the right default for shared data.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/mem_model.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  tshmem_util::print_banner(std::cout, "Ablation C",
                            "Memory-homing strategies (SIII-A)");

  tshmem_util::Table table({"size", "device", "hash-for-home (MB/s)",
                            "local (MB/s)", "remote (MB/s)"});
  std::vector<bench::PaperCheck> checks;

  for (const auto* cfg : bench::devices_from_cli(cli)) {
    const tilesim::MemModel model(*cfg);
    double local_small = 0, hash_small = 0, local_big = 0, hash_big = 0;
    for (const std::size_t size : bench::pow2_sizes(1024, 16 << 20)) {
      auto mbps = [&](tilesim::Homing h) {
        tilesim::CopyRequest req;
        req.bytes = size;
        req.src = tilesim::MemSpace::kShared;
        req.dst = tilesim::MemSpace::kShared;
        req.homing = h;
        return model.effective_mbps(req);
      };
      const double hash = mbps(tilesim::Homing::kHashForHome);
      const double local = mbps(tilesim::Homing::kLocal);
      const double remote = mbps(tilesim::Homing::kRemote);
      table.add_row({tshmem_util::Table::bytes(size), cfg->short_name,
                     tshmem_util::Table::num(hash, 1),
                     tshmem_util::Table::num(local, 1),
                     tshmem_util::Table::num(remote, 1)});
      if (size == 32 * 1024) {
        local_small = local;
        hash_small = hash;
      }
      if (size == (4 << 20)) {
        local_big = local;
        hash_big = hash;
      }
    }
    checks.push_back({std::string(cfg->short_name) +
                          " local/hash at 32 kB (local wins)",
                      local_small / hash_small, cfg->local_homing_small_boost,
                      "x"});
    checks.push_back({std::string(cfg->short_name) +
                          " local/hash at 4 MB (local loses DDC)",
                      local_big / hash_big, cfg->local_homing_large_penalty,
                      "x"});
  }

  bench::emit(cli, table);
  bench::print_checks("Ablation C (homing)", checks);
  return 0;
}
