// Table II — architectural comparison of the TILE-Gx8036 and TILEPro64.
// Prints the simulated devices' configured characteristics side by side.
#include <iostream>

#include "bench_common.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  tshmem_util::print_banner(std::cout, "Table II",
                            "Arch. comparison for TILE-Gx8036 and TILEPro64");
  const auto& gx = tilesim::tile_gx36();
  const auto& pro = tilesim::tile_pro64();
  tshmem_util::Table t({"characteristic", gx.name, pro.name});
  auto yes_no = [](bool b) { return b ? std::string("yes") : std::string("-"); };
  using T = tshmem_util::Table;
  t.add_row({"tiles", T::integer(gx.tile_count()), T::integer(pro.tile_count())});
  t.add_row({"mesh", "6 x 6", "8 x 8"});
  t.add_row({"core word width (bits)", T::integer(gx.word_bytes * 8),
             T::integer(pro.word_bytes * 8)});
  t.add_row({"clock (GHz)", T::num(gx.clock_ghz, 1), T::num(pro.clock_ghz, 1)});
  t.add_row({"L1i per tile (kB)", T::integer(static_cast<long long>(gx.l1i_bytes / 1024)),
             T::integer(static_cast<long long>(pro.l1i_bytes / 1024))});
  t.add_row({"L1d per tile (kB)", T::integer(static_cast<long long>(gx.l1d_bytes / 1024)),
             T::integer(static_cast<long long>(pro.l1d_bytes / 1024))});
  t.add_row({"L2 per tile (kB)", T::integer(static_cast<long long>(gx.l2_bytes / 1024)),
             T::integer(static_cast<long long>(pro.l2_bytes / 1024))});
  t.add_row({"mesh interconnect (Tbps)", T::num(gx.mesh_bw_tbps, 0),
             T::num(pro.mesh_bw_tbps, 0)});
  t.add_row({"memory bandwidth (Gbps)", T::num(gx.mem_bw_gbps, 0),
             T::num(pro.mem_bw_gbps, 0)});
  t.add_row({"DDR controllers", T::integer(gx.ddr_controllers),
             T::integer(pro.ddr_controllers)});
  t.add_row({"power (W)", T::num(gx.power_watts_lo, 0) + " to " +
                              T::num(gx.power_watts_hi, 0),
             T::num(pro.power_watts_lo, 0) + " to " +
                 T::num(pro.power_watts_hi, 0)});
  t.add_row({"mPIPE packet engine", yes_no(gx.has_mpipe), yes_no(pro.has_mpipe)});
  t.add_row({"MiCA crypto/compression", yes_no(gx.has_mica), yes_no(pro.has_mica)});
  t.add_row({"UDN interrupts", yes_no(gx.supports_udn_interrupts),
             yes_no(pro.supports_udn_interrupts)});
  bench::emit(cli, t);
  return 0;
}
