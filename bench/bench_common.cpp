#include "bench_common.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace bench {

std::vector<const DeviceConfig*> devices_from_cli(const Cli& cli) {
  const std::string which = cli.get_string("device", "both");
  if (which == "both" || which == "all") return tilesim::all_devices();
  return {&tilesim::device_by_name(which)};
}

std::vector<std::size_t> pow2_sizes(std::size_t lo, std::size_t hi) {
  std::vector<std::size_t> out;
  for (std::size_t s = lo; s <= hi; s *= 2) out.push_back(s);
  return out;
}

std::vector<int> collective_tile_counts() { return {2, 4, 8, 16, 24, 32, 36}; }

void print_checks(const std::string& experiment,
                  const std::vector<PaperCheck>& checks) {
  std::cout << "\n--- reproduction check: " << experiment << " ---\n";
  Table t({"quantity", "measured", "paper", "unit", "ratio"});
  for (const auto& c : checks) {
    t.add_row({c.what, Table::num(c.measured, 2), Table::num(c.paper, 2),
               c.unit,
               c.paper != 0.0 ? Table::num(c.measured / c.paper, 2) : "-"});
  }
  t.print(std::cout);
}

void emit(const Cli& cli, const Table& table) {
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

// ===========================================================================
// Telemetry (--metrics-json / --trace-json)
// ===========================================================================

Telemetry::Telemetry(const Cli& cli)
    : metrics_path_(cli.get_string("metrics-json", "")),
      trace_path_(cli.get_string("trace-json", "")) {}

void Telemetry::configure(tshmem::RuntimeOptions& opts) const {
  if (metrics_requested()) opts.metrics = true;
}

void Telemetry::attach(tshmem::Runtime& rt) {
  if (!trace_requested()) return;
  if (attached_ != nullptr) {
    throw std::logic_error(
        "Telemetry::attach: collect() the previous runtime first");
  }
  recorder_ =
      std::make_unique<tilesim::TraceRecorder>(rt.device().tile_count());
  rt.device().attach_tracer(recorder_.get());
  attached_ = &rt;
}

void Telemetry::collect(tshmem::Runtime& rt) {
  if (metrics_requested()) snapshots_.push_back(rt.metrics());
  if (attached_ == &rt && recorder_ != nullptr) {
    rt.device().attach_tracer(nullptr);
    tracks_.push_back(obs::TraceTrack{
        next_pid_++, std::string(rt.config().short_name),
        recorder_->events()});
    recorder_.reset();
    attached_ = nullptr;
  }
}

void Telemetry::write() {
  if (metrics_requested()) {
    std::ofstream os(metrics_path_);
    if (!os) {
      throw std::runtime_error("cannot write metrics JSON to " +
                               metrics_path_);
    }
    obs::write_metrics_json(os, snapshots_);
    std::cout << "wrote metrics JSON: " << metrics_path_ << "\n";
  }
  if (trace_requested()) {
    std::ofstream os(trace_path_);
    if (!os) {
      throw std::runtime_error("cannot write trace JSON to " + trace_path_);
    }
    obs::write_chrome_trace_json(os, tracks_);
    std::cout << "wrote trace JSON: " << trace_path_ << "\n";
  }
}

}  // namespace bench
