#include "bench_common.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace bench {

std::vector<const DeviceConfig*> devices_from_cli(const Cli& cli) {
  const std::string which = cli.get_string("device", "both");
  if (which == "both" || which == "all") return tilesim::all_devices();
  return {&tilesim::device_by_name(which)};
}

std::vector<std::size_t> pow2_sizes(std::size_t lo, std::size_t hi) {
  std::vector<std::size_t> out;
  for (std::size_t s = lo; s <= hi; s *= 2) out.push_back(s);
  return out;
}

std::vector<int> collective_tile_counts() { return {2, 4, 8, 16, 24, 32, 36}; }

void print_checks(const std::string& experiment,
                  const std::vector<PaperCheck>& checks) {
  std::cout << "\n--- reproduction check: " << experiment << " ---\n";
  Table t({"quantity", "measured", "paper", "unit", "ratio"});
  for (const auto& c : checks) {
    t.add_row({c.what, Table::num(c.measured, 2), Table::num(c.paper, 2),
               c.unit,
               c.paper != 0.0 ? Table::num(c.measured / c.paper, 2) : "-"});
  }
  t.print(std::cout);
}

void emit(const Cli& cli, const Table& table) {
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

// ===========================================================================
// Telemetry (--metrics-json / --trace-json / --profile-json /
//            --profile-folded)
// ===========================================================================

Telemetry::Telemetry(const Cli& cli)
    : metrics_path_(cli.get_string("metrics-json", "")),
      trace_path_(cli.get_string("trace-json", "")),
      profile_json_path_(cli.get_string("profile-json", "")),
      profile_folded_path_(cli.get_string("profile-folded", "")),
      timeseries_path_(cli.get_string("timeseries-json", "")),
      blackbox_path_(cli.get_string("blackbox-json", "")),
      timeseries_window_ps_(
          cli.get_int("timeseries-window-ps", 1'000'000'000)) {}

void Telemetry::configure(tshmem::RuntimeOptions& opts) const {
  if (metrics_requested()) opts.metrics = true;
  if (profile_requested()) opts.profile = true;
  if (timeseries_requested()) {
    opts.timeseries_window_ps = timeseries_window_ps_;
  }
  if (blackbox_requested()) {
    // Doubles as the Runtime's crash-dump path: a tshmem::Error or watchdog
    // timeout mid-run leaves its post-mortem at the same file the bench
    // would have written.
    opts.blackbox_path = blackbox_path_;
  }
}

void Telemetry::attach(tshmem::Runtime& rt) {
  if (!trace_requested()) return;
  if (attached_ != nullptr || attached_device_ != nullptr) {
    throw std::logic_error(
        "Telemetry::attach: collect() the previous runtime first");
  }
  recorder_ =
      std::make_unique<tilesim::TraceRecorder>(rt.device().tile_count());
  rt.device().attach_tracer(recorder_.get());
  attached_ = &rt;
}

void Telemetry::collect(tshmem::Runtime& rt) {
  if (metrics_requested()) snapshots_.push_back(rt.metrics());
  if (timeseries_requested() && rt.timeseries() != nullptr) {
    timeseries_.emplace_back(std::string(rt.config().short_name),
                             rt.timeseries()->report());
  }
  if (blackbox_requested()) {
    std::ostringstream os;
    if (rt.write_blackbox(os, "bench snapshot (end of run)", 0)) {
      blackbox_doc_ = os.str();
    }
  }
  const obs::Profiler* profiler =
      profile_requested() ? rt.profiler() : nullptr;
  std::vector<std::pair<std::string, obs::ProfileReport>> harvested;
  if (profiler != nullptr) {
    harvested.emplace_back(std::string(rt.config().short_name),
                           profiler->report());
  }
  if (attached_ == &rt && recorder_ != nullptr) {
    rt.device().attach_tracer(nullptr);
    if (!harvested.empty()) {
      // Layer the critical path's wait edges onto this runtime's track as
      // Perfetto flow arrows (same pid as the track created below).
      std::vector<obs::TraceFlow> flows = obs::profile_flow_events(
          harvested.front().second, next_pid_, next_flow_id_);
      next_flow_id_ += flows.size();
      flows_.insert(flows_.end(), flows.begin(), flows.end());
    }
    tracks_.push_back(obs::TraceTrack{
        next_pid_++, std::string(rt.config().short_name),
        recorder_->events()});
    recorder_.reset();
    attached_ = nullptr;
  }
  for (auto& named : harvested) reports_.push_back(std::move(named));
}

void Telemetry::attach(tilesim::Device& device) {
  if (attached_ != nullptr || attached_device_ != nullptr) {
    throw std::logic_error(
        "Telemetry::attach: collect() the previous device first");
  }
  if (trace_requested()) {
    recorder_ = std::make_unique<tilesim::TraceRecorder>(device.tile_count());
    device.attach_tracer(recorder_.get());
  }
  if (profile_requested()) {
    device_profiler_ = std::make_unique<obs::Profiler>(device);
    device.attach_profiler(device_profiler_.get());
  }
  attached_device_ = &device;
}

void Telemetry::collect(tilesim::Device& device, const std::string& name) {
  if (attached_device_ != &device) return;
  std::vector<std::pair<std::string, obs::ProfileReport>> harvested;
  if (device_profiler_ != nullptr) {
    harvested.emplace_back(name, device_profiler_->report());
    device.attach_profiler(nullptr);
    device_profiler_.reset();
  }
  if (recorder_ != nullptr) {
    device.attach_tracer(nullptr);
    if (!harvested.empty()) {
      std::vector<obs::TraceFlow> flows = obs::profile_flow_events(
          harvested.front().second, next_pid_, next_flow_id_);
      next_flow_id_ += flows.size();
      flows_.insert(flows_.end(), flows.begin(), flows.end());
    }
    tracks_.push_back(
        obs::TraceTrack{next_pid_++, name, recorder_->events()});
    recorder_.reset();
  }
  for (auto& named : harvested) reports_.push_back(std::move(named));
  attached_device_ = nullptr;
}

void Telemetry::write() {
  if (metrics_requested()) {
    std::ofstream os(metrics_path_);
    if (!os) {
      throw std::runtime_error("cannot write metrics JSON to " +
                               metrics_path_);
    }
    obs::write_metrics_json(os, snapshots_);
    std::cout << "wrote metrics JSON: " << metrics_path_ << "\n";
  }
  if (trace_requested()) {
    std::ofstream os(trace_path_);
    if (!os) {
      throw std::runtime_error("cannot write trace JSON to " + trace_path_);
    }
    obs::write_chrome_trace_json(os, tracks_, flows_);
    std::cout << "wrote trace JSON: " << trace_path_ << "\n";
  }
  if (!profile_json_path_.empty()) {
    std::ofstream os(profile_json_path_);
    if (!os) {
      throw std::runtime_error("cannot write profile JSON to " +
                               profile_json_path_);
    }
    if (reports_.size() == 1) {
      obs::write_profile_json(os, reports_.front().second);
    } else {
      // Several runtimes in one process (device sweeps): wrap each run's
      // report under its name so the file stays a single JSON document.
      os << "{\n  \"schema\": \"" << obs::kProfileSchema
         << "\",\n  \"runs\": [";
      bool first = true;
      for (const auto& [name, report] : reports_) {
        os << (first ? "\n" : ",\n") << "    {\"name\": \"" << name
           << "\", \"profile\": ";
        obs::write_profile_json(os, report);
        os << "}";
        first = false;
      }
      os << "\n  ]\n}\n";
    }
    std::cout << "wrote profile JSON: " << profile_json_path_ << "\n";
  }
  if (timeseries_requested()) {
    std::ofstream os(timeseries_path_);
    if (!os) {
      throw std::runtime_error("cannot write timeseries JSON to " +
                               timeseries_path_);
    }
    if (timeseries_.size() == 1) {
      obs::write_timeseries_json(os, timeseries_.front().second);
    } else {
      // Several runtimes in one process (device sweeps): wrap each run.
      os << "{\n  \"schema\": \"" << obs::kTimeseriesSchema
         << "\",\n  \"runs\": [";
      bool first = true;
      for (const auto& [name, report] : timeseries_) {
        os << (first ? "\n" : ",\n") << "    {\"name\": \"" << name
           << "\", \"timeseries\": ";
        obs::write_timeseries_json(os, report);
        os << "}";
        first = false;
      }
      os << "\n  ]\n}\n";
    }
    std::cout << "wrote timeseries JSON: " << timeseries_path_ << "\n";
  }
  if (blackbox_requested() && !blackbox_doc_.empty()) {
    std::ofstream os(blackbox_path_);
    if (!os) {
      throw std::runtime_error("cannot write blackbox JSON to " +
                               blackbox_path_);
    }
    os << blackbox_doc_;
    std::cout << "wrote blackbox JSON: " << blackbox_path_ << "\n";
  }
  if (!profile_folded_path_.empty()) {
    std::ofstream os(profile_folded_path_);
    if (!os) {
      throw std::runtime_error("cannot write folded profile to " +
                               profile_folded_path_);
    }
    for (const auto& [name, report] : reports_) {
      if (reports_.size() == 1) {
        obs::write_profile_folded(os, report);
      } else {
        // Prefix each stack with the run name to keep sweeps separable.
        std::ostringstream ss;
        obs::write_profile_folded(ss, report);
        std::istringstream is(ss.str());
        for (std::string line; std::getline(is, line);) {
          os << name << ";" << line << "\n";
        }
      }
    }
    std::cout << "wrote folded profile: " << profile_folded_path_ << "\n";
  }
}

}  // namespace bench
