#include "bench_common.hpp"

#include <cstdio>

namespace bench {

std::vector<const DeviceConfig*> devices_from_cli(const Cli& cli) {
  const std::string which = cli.get_string("device", "both");
  if (which == "both" || which == "all") return tilesim::all_devices();
  return {&tilesim::device_by_name(which)};
}

std::vector<std::size_t> pow2_sizes(std::size_t lo, std::size_t hi) {
  std::vector<std::size_t> out;
  for (std::size_t s = lo; s <= hi; s *= 2) out.push_back(s);
  return out;
}

std::vector<int> collective_tile_counts() { return {2, 4, 8, 16, 24, 32, 36}; }

void print_checks(const std::string& experiment,
                  const std::vector<PaperCheck>& checks) {
  std::cout << "\n--- reproduction check: " << experiment << " ---\n";
  Table t({"quantity", "measured", "paper", "unit", "ratio"});
  for (const auto& c : checks) {
    t.add_row({c.what, Table::num(c.measured, 2), Table::num(c.paper, 2),
               c.unit,
               c.paper != 0.0 ? Table::num(c.measured / c.paper, 2) : "-"});
  }
  t.print(std::cout);
}

void emit(const Cli& cli, const Table& table) {
  if (cli.get_flag("csv")) {
    table.print_csv(std::cout);
  } else {
    table.print(std::cout);
  }
}

}  // namespace bench
