// Ablation D — the mechanistic cache simulator versus the analytic memory
// model: verifies that both substrates break at the same working-set sizes
// (the L1d / L2 / DDC capacities Fig 3's transitions sit on).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/cache_sim.hpp"
#include "sim/mem_model.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  tshmem_util::print_banner(
      std::cout, "Ablation D",
      "Mechanistic cache simulator vs analytic bandwidth model");

  tshmem_util::Table table({"working set", "device", "analytic (MB/s)",
                            "cache-sim (MB/s)", "l1%", "l2%", "ddc%",
                            "dram%"});
  std::vector<bench::PaperCheck> checks;

  for (const auto* cfg : bench::devices_from_cli(cli)) {
    const tilesim::MemModel model(*cfg);
    for (const std::size_t size : bench::pow2_sizes(4096, 32 << 20)) {
      tilesim::CacheSim sim(*cfg);
      // Warm pass then steady-state pass, mirroring a repeated memcpy of
      // one buffer (what Fig 3's microbenchmark loop does).
      (void)sim.stream_copy_mbps(0, 1ull << 40, size,
                                 tilesim::Homing::kHashForHome);
      sim.reset_stats();
      const double sim_mbps = sim.stream_copy_mbps(
          0, 1ull << 40, size, tilesim::Homing::kHashForHome);
      const auto counts = sim.counts();
      const double total = static_cast<double>(counts.total());
      tilesim::CopyRequest req;
      req.bytes = size;
      req.src = tilesim::MemSpace::kShared;
      req.dst = tilesim::MemSpace::kShared;
      const double analytic = model.effective_mbps(req);
      auto pct = [&](std::uint64_t v) {
        return tshmem_util::Table::num(100.0 * static_cast<double>(v) / total,
                                       0);
      };
      table.add_row({tshmem_util::Table::bytes(size), cfg->short_name,
                     tshmem_util::Table::num(analytic, 1),
                     tshmem_util::Table::num(sim_mbps, 1), pct(counts.l1),
                     pct(counts.l2), pct(counts.ddc), pct(counts.dram)});
    }
    // Transition agreement: both substrates must show a bandwidth *drop*
    // across each capacity boundary. Absolute magnitudes differ by design
    // (the analytic curve folds in the copy-loop core limit; the cache sim
    // isolates hierarchy latency), so the check is on the drop's existence
    // and location, not its size.
    tilesim::CacheSim sim(*cfg);
    auto steady = [&](std::size_t size) {
      sim.reset();
      (void)sim.stream_copy_mbps(0, 1ull << 40, size,
                                 tilesim::Homing::kHashForHome);
      return sim.stream_copy_mbps(0, 1ull << 40, size,
                                  tilesim::Homing::kHashForHome);
    };
    auto analytic = [&](std::size_t size) {
      tilesim::CopyRequest req;
      req.bytes = size;
      req.src = tilesim::MemSpace::kShared;
      req.dst = tilesim::MemSpace::kShared;
      return model.effective_mbps(req);
    };
    const std::size_t ddc_cap =
        cfg->l2_bytes * static_cast<std::size_t>(cfg->tile_count() - 1);
    const struct {
      const char* name;
      std::size_t below;
      std::size_t above;
    } boundaries[] = {
        {"L1d", cfg->l1d_bytes / 2, cfg->l2_bytes / 2},
        {"L2", cfg->l2_bytes / 2, 4 * cfg->l2_bytes},
        {"DDC", ddc_cap / 2, 8 * ddc_cap},
    };
    // Soundness condition: every transition the measured (analytic) curve
    // shows must be explained by a capacity transition in the mechanistic
    // hierarchy. The converse need not hold — the TILEPro64's measured
    // memcpy curve is flat through its cache sizes (paper Fig 3) because
    // the copy loop, not the hierarchy, limits it there.
    for (const auto& b : boundaries) {
      const double sim_drop = steady(b.below) / steady(b.above);
      const double ana_drop = analytic(b.below) / analytic(b.above);
      const bool explained = ana_drop <= 1.02 || sim_drop > 1.02;
      checks.push_back({std::string(cfg->short_name) + " " + b.name +
                            " transition explained (sim drop " +
                            tshmem_util::Table::num(sim_drop, 1) +
                            "x, measured " +
                            tshmem_util::Table::num(ana_drop, 1) + "x)",
                        explained ? 1.0 : 0.0, 1.0, "bool"});
    }
  }

  bench::emit(cli, table);
  bench::print_checks("Ablation D (cache sim)", checks);
  return 0;
}
