// Extension — deterministic fault-injection campaign (docs/ROBUSTNESS.md).
//
// Not a paper figure: the TSHMEM paper benchmarks healthy hardware. This
// bench drives the fault engine end to end and prints a fully
// deterministic report — the injected-event log, per-site injection
// counts, recovery counters, and final per-PE virtual clocks — so CI can
// run the same (seed, plan) twice and require bit-identical output
// (tools/ci.sh fault-campaign stage). The bench also replays the campaign
// in-process and checks the replay reproduces the first run exactly.
//
// Flags: --seed N   campaign seed (default 1; ci.sh sweeps several)
//        --pes N    PEs to run (default 4)
//        --csv      CSV table output
//        --hang-demo       instead of the campaign, deliberately hang PE 0
//                          under a tile_stall plan until the host-time
//                          watchdog trips; with --blackbox-json the runtime
//                          leaves a tshmem.blackbox.v1 post-mortem there
//                          (the tools/ci.sh triage smoke feeds it to
//                          tools/triage.py)
//        --watchdog-ms N   hang-demo watchdog (default 2000; the
//                          TSHMEM_WATCHDOG_MS env var still overrides)
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "sim/fault.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"
#include "util/error.hpp"

namespace {

using tilesim::FaultEvent;
using tilesim::FaultPlan;
using tshmem::Context;

// Every fault site at a rate that recovers (bounded retries, synchronous
// NBI fallback, capped heap denial) rather than killing the run.
FaultPlan campaign_plan(std::uint64_t seed) {
  FaultPlan plan = FaultPlan::parse(
      "udn_drop=0.05,udn_corrupt=0.03,udn_delay=0.10:20000,"
      "dma_stall=0.20:50000,dma_fail=0.15,tile_stall=0.10:100000,"
      "cmem_fail=0.20,heap_cap=262144");
  plan.seed = seed;
  return plan;
}

// Touches every hardened layer: UDN puts and barriers, NBI traffic with
// quiet, interrupt-serviced static transfers (bounce buffers -> cmem
// maps), heap pressure against the injected cap, and collective frees.
void campaign_workload(Context& ctx) {
  const int npes = ctx.num_pes();
  int* dyn = ctx.shmalloc_n<int>(512);
  int* stat = ctx.static_sym<int>("ext_faults_stat", 64);
  for (int i = 0; i < 64; ++i) stat[i] = ctx.my_pe();
  ctx.barrier_all();
  for (int round = 0; round < 6; ++round) {
    const int peer = (ctx.my_pe() + 1 + round) % npes;
    std::vector<int> src(512, ctx.my_pe() * 1000 + round);
    ctx.put(dyn, src.data(), 512 * sizeof(int), peer);
    ctx.barrier_all();
    ctx.put_nbi(dyn, src.data(), 256 * sizeof(int), peer);
    ctx.quiet();
    // Interrupt/bounce path. Source and destination halves of the static
    // object are disjoint: inside one barrier phase every PE reads its own
    // lower half while a peer writes its upper half, so overlapping them
    // would be a genuine SHMEM-level race (tshmem-check flags it).
    ctx.put(stat + 32, stat, 32 * sizeof(int), peer);
    ctx.barrier_all();
    // Heap pressure: a big symmetric request the injected cap denies on
    // every PE at once (a denial is collective, like the allocation).
    void* big = ctx.shmalloc(1 << 20);
    if (big != nullptr) ctx.shfree(big);
    ctx.barrier_all();
  }
  ctx.shfree(dyn);
}

struct CampaignResult {
  std::vector<FaultEvent> events;
  obs::MetricsSnapshot metrics;
  std::vector<tilesim::ps_t> final_clocks;
};

// `telemetry` (nullable) gates profiling/tracing: the first campaign run
// carries it, the in-process replay runs bare so the identity check stays
// a comparison between a telemetry-on and telemetry-off run.
CampaignResult run_campaign(const FaultPlan& plan, int npes,
                            bench::Telemetry* telemetry) {
  tshmem::RuntimeOptions opts;
  opts.metrics = true;
  opts.fault_plan = plan;
  if (telemetry != nullptr) telemetry->configure(opts);
  tshmem::Runtime rt(tilesim::tile_gx36(), opts);
  if (telemetry != nullptr) telemetry->attach(rt);
  CampaignResult r;
  r.final_clocks.assign(static_cast<std::size_t>(npes), 0);
  rt.run(npes, [&](Context& ctx) {
    campaign_workload(ctx);
    r.final_clocks[static_cast<std::size_t>(ctx.my_pe())] =
        ctx.clock().now();
  });
  if (telemetry != nullptr) telemetry->collect(rt);
  if (rt.fault_engine() != nullptr) r.events = rt.fault_engine()->events();
  r.metrics = rt.metrics();
  return r;
}

std::uint64_t counter_total(const obs::MetricsSnapshot& m,
                            const std::string& name) {
  std::uint64_t total = 0;
  for (const auto& c : m.counters) {
    if (c.name == name) total += c.value;
  }
  return total;
}

// --hang-demo: a genuine host-time hang (the campaign's tile_stall site is
// virtual-time only and can never trip the wall-clock watchdog). PE 0
// blocks in shmem_wait_until on a flag no peer ever sets; the watchdog
// throws Error(kWatchdogTimeout), and with --blackbox-json the aborting
// runtime dumps its flight-recorder post-mortem there on the way out.
int run_hang_demo(const tshmem_util::Cli& cli, std::uint64_t seed,
                  int npes) {
  bench::Telemetry telemetry(cli);
  tshmem::RuntimeOptions opts;
  FaultPlan plan = FaultPlan::parse("tile_stall=0.5:200000");
  plan.seed = seed;
  opts.fault_plan = plan;
  opts.watchdog_ms = static_cast<int>(cli.get_int("watchdog-ms", 2000));
  telemetry.configure(opts);
  std::cout << "hang demo: PE 0 waits on a flag no peer ever sets under "
               "plan " << plan.describe() << "\n";
  tshmem::Runtime rt(tilesim::tile_gx36(), opts);
  telemetry.attach(rt);
  try {
    rt.run(npes, [&](Context& ctx) {
      long* flag = ctx.shmalloc_n<long>(1);
      *flag = 0;
      ctx.barrier_all();
      if (ctx.my_pe() == 0) {
        ctx.wait_until(flag, tshmem::Cmp::kNe, 0L);  // never satisfied
      }
    });
  } catch (const tshmem::Error& e) {
    std::cout << "hang demo: runtime aborted as expected: " << e.what()
              << "\n";
    return 0;
  }
  std::cerr << "hang demo: watchdog did not trip\n";
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv", "hang-demo"});
  const auto seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  const int npes = static_cast<int>(cli.get_int("pes", 4));
  if (cli.get_flag("hang-demo")) {
    return run_hang_demo(cli, seed, npes);
  }
  tshmem_util::print_banner(
      std::cout, "Fault campaign",
      "deterministic fault injection + recovery on TILE-Gx36 (seed " +
          std::to_string(seed) + ", " + std::to_string(npes) + " PEs)");

  const FaultPlan plan = campaign_plan(seed);
  std::cout << "plan: " << plan.describe() << "\n\n";

  bench::Telemetry telemetry(cli);
  const CampaignResult first = run_campaign(plan, npes, &telemetry);
  const CampaignResult replay = run_campaign(plan, npes, nullptr);
  const bool identical = first.events == replay.events &&
                         first.metrics == replay.metrics &&
                         first.final_clocks == replay.final_clocks;

  // Per-site injection counts (diff-stable ordering: site enum order).
  tshmem_util::Table sites({"site", "injected"});
  std::vector<std::uint64_t> per_site(tilesim::kFaultSiteCount, 0);
  for (const FaultEvent& e : first.events) {
    ++per_site[static_cast<std::size_t>(e.site)];
  }
  for (int s = 0; s < tilesim::kFaultSiteCount; ++s) {
    sites.add_row({tilesim::fault_site_name(
                       static_cast<tilesim::FaultSite>(s)),
                   std::to_string(per_site[static_cast<std::size_t>(s)])});
  }
  bench::emit(cli, sites);

  // Recovery counters (summed over PEs).
  tshmem_util::Table recovery({"counter", "total"});
  for (const char* name :
       {"recovery.udn.retries", "recovery.udn.backoff_ps",
        "recovery.cmem.map_retries", "recovery.nbi.sync_fallbacks"}) {
    recovery.add_row({name, std::to_string(counter_total(first.metrics,
                                                         name))});
  }
  bench::emit(cli, recovery);

  // The injected-event log and final clocks: the bit-diffable campaign
  // record ci.sh compares across repeated invocations.
  std::cout << "\ninjected events (site tile seq vt_ps):\n";
  for (const FaultEvent& e : first.events) {
    std::cout << "  " << tilesim::fault_site_name(e.site) << " " << e.tile
              << " " << e.seq << " " << e.vt_ps << "\n";
  }
  std::cout << "final clocks (ps):";
  for (const tilesim::ps_t c : first.final_clocks) std::cout << " " << c;
  std::cout << "\n";

  std::vector<bench::PaperCheck> checks;
  checks.push_back({"in-process replay identical (1 = yes)",
                    identical ? 1.0 : 0.0, 1.0, "x"});
  checks.push_back({"faults injected (>0 expected)",
                    first.events.empty() ? 0.0 : 1.0, 1.0, "x"});
  const double retries =
      static_cast<double>(counter_total(first.metrics,
                                        "recovery.udn.retries"));
  const double drops = static_cast<double>(per_site[0] + per_site[1]);
  checks.push_back({"udn retries cover drops+corrupts",
                    drops > 0 ? retries / drops : 1.0, 1.0, "x"});
  bench::print_checks("Fault campaign", checks);
  telemetry.write();
  return identical ? 0 : 1;
}
