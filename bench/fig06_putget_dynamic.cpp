// Figure 6 — effective bandwidth of TSHMEM put/get transfers for
// dynamic-dynamic symmetric objects on both devices, plus the static-static
// curve on the TILE-Gx36 (which the paper overlays for comparison against
// TILEPro64 performance).
//
// Reproduces: put tracks get on both devices; dynamic-dynamic transfers
// closely match Fig 3's shared-to-shared memcpy bandwidth (the "low
// overhead" claim); the static-static Gx36 curve sits far below.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::Context;

double putget_mbps(tshmem::Runtime& rt, std::size_t bytes, bool is_put,
                   bool use_static, std::size_t static_capacity) {
  double mbps = 0.0;
  rt.run(2, [&](Context& ctx) {
    std::byte* sym;
    if (use_static) {
      // Static objects have one link-time size; register the full capacity
      // once and reuse it across the sweep.
      sym = ctx.static_sym<std::byte>("fig06_static", static_capacity);
    } else {
      sym = static_cast<std::byte*>(ctx.shmalloc(bytes));
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      // Warm, then one measured transfer (virtual time is deterministic).
      if (is_put) {
        ctx.put(sym, sym, bytes, 1);
      } else {
        ctx.get(sym, sym, bytes, 1);
      }
      const auto t0 = ctx.clock().now();
      if (is_put) {
        ctx.put(sym, sym, bytes, 1);
      } else {
        ctx.get(sym, sym, bytes, 1);
      }
      mbps = tshmem_util::bandwidth_mbps(bytes, ctx.clock().now() - t0);
    }
    ctx.barrier_all();
    if (!use_static) ctx.shfree(sym);
  });
  return mbps;
}

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  const auto max_bytes =
      static_cast<std::size_t>(cli.get_int("max-bytes", 8 << 20));
  tshmem_util::print_banner(
      std::cout, "Figure 6",
      "TSHMEM put/get bandwidth, dynamic-dynamic (+ static-static on Gx36)");

  tshmem_util::Table table(
      {"size", "device", "put dd (MB/s)", "get dd (MB/s)", "put ss (MB/s)"});
  std::vector<bench::PaperCheck> checks;
  bench::Telemetry telemetry(cli);

  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tshmem::RuntimeOptions opts;
    opts.heap_per_pe = 2 * max_bytes + (1 << 20);
    opts.private_per_pe = max_bytes + (1 << 20);
    telemetry.configure(opts);
    tshmem::Runtime rt(*cfg, opts);
    telemetry.attach(rt);
    const bool gx = cfg->supports_udn_interrupts;
    for (const std::size_t size : bench::pow2_sizes(8, max_bytes)) {
      const double put_dd = putget_mbps(rt, size, true, false, max_bytes);
      const double get_dd = putget_mbps(rt, size, false, false, max_bytes);
      const double put_ss =
          gx ? putget_mbps(rt, size, true, true, max_bytes) : 0.0;
      table.add_row({tshmem_util::Table::bytes(size), cfg->short_name,
                     tshmem_util::Table::num(put_dd, 1),
                     tshmem_util::Table::num(get_dd, 1),
                     gx ? tshmem_util::Table::num(put_ss, 1) : "n/a"});
      if (size == 32 * 1024) {
        // "Realizable performance ... closely matches the shared-to-shared
        // performance from the common memory microbenchmark in Figure 3."
        const double fig3 = cfg->bw_shared_to_shared.mbps(size);
        checks.push_back({std::string(cfg->short_name) + " put dd vs Fig3 @32kB",
                          put_dd, fig3, "MB/s"});
        checks.push_back({std::string(cfg->short_name) + " put~get ratio @32kB",
                          put_dd / get_dd, 1.0, "x"});
      }
    }
    telemetry.collect(rt);
  }

  bench::emit(cli, table);
  bench::print_checks("Figure 6", checks);
  telemetry.write();
  return 0;
}
