// Figure 4 + Table III — average one-way UDN latencies between tile pairs
// at varying distances (neighbors / side-to-side / corners) on the 6x6
// effective test area of both devices.
//
// Methodology matches §III-C: timing on the sender tile as the halved
// average of a 1-word send and a 1-word acknowledgment; virtual-CPU numbers
// index the 6x6 area (identity on the Gx36; row-remapped on the Pro64).
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/device.hpp"
#include "sim/topology.hpp"
#include "tmc/udn.hpp"
#include "util/stats.hpp"

namespace {

struct Case {
  const char* type;
  const char* direction;
  int sender_virtual;
  int receiver_virtual;
};

// The exact sender/receiver virtual CPU pairs of Table III.
constexpr Case kCases[] = {
    {"Neighbors", "left", 14, 13},      {"Neighbors", "right", 14, 15},
    {"Neighbors", "up", 14, 8},         {"Neighbors", "down", 14, 20},
    {"Neighbors", "left", 28, 27},      {"Neighbors", "right", 28, 29},
    {"Neighbors", "up", 28, 22},        {"Neighbors", "down", 28, 34},
    {"Side-to-Side", "right", 6, 11},   {"Side-to-Side", "left", 11, 6},
    {"Side-to-Side", "down", 1, 31},    {"Side-to-Side", "up", 31, 1},
    {"Side-to-Side", "right", 23, 18},  {"Side-to-Side", "left", 18, 23},
    {"Side-to-Side", "down", 33, 3},    {"Side-to-Side", "up", 3, 33},
    {"Corners", "down-right", 0, 35},   {"Corners", "up-left", 35, 0},
    {"Corners", "down-left", 5, 30},    {"Corners", "up-right", 30, 5},
};

constexpr int kAreaWidth = 6;

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  tshmem_util::print_banner(std::cout, "Figure 4 / Table III",
                            "One-way latencies on UDN (6x6 test area)");

  tshmem_util::Table table(
      {"type", "direction", "sender", "receiver", "gx36 (ns)", "pro64 (ns)"});
  std::vector<bench::PaperCheck> checks;
  bench::Telemetry telemetry(cli);

  // Measure all cases on one device; returns ns per case.
  auto measure = [&](const tilesim::DeviceConfig& cfg) {
    tilesim::Device device(cfg);
    telemetry.attach(device);
    tmc::UdnFabric udn(device);
    std::vector<double> ns(std::size(kCases), 0.0);
    // Map virtual CPU numbers of the 6x6 area onto the physical mesh.
    auto phys = [&](int virt) {
      return tilesim::virtual_to_physical(virt, kAreaWidth, cfg.mesh_width);
    };
    // Run with all tiles active; only the case participants act per case.
    device.run(cfg.tile_count(), [&](tilesim::Tile& tile) {
      for (std::size_t i = 0; i < std::size(kCases); ++i) {
        const int s = phys(kCases[i].sender_virtual);
        const int r = phys(kCases[i].receiver_virtual);
        if (tile.id() == s) {
          const auto t0 = tile.clock().now();
          udn.send1(tile, r, 0, 0xbeef);
          (void)udn.recv(tile, 0);  // acknowledgment
          const auto rtt = tile.clock().now() - t0;
          ns[i] = tshmem_util::ps_to_ns(rtt) / 2.0;
        } else if (tile.id() == r) {
          (void)udn.recv(tile, 0);
          udn.send1(tile, s, 0, 0xcafe);
        }
        device.host_sync();
      }
    });
    telemetry.collect(device, std::string(cfg.short_name));
    return ns;
  };

  const auto gx = measure(tilesim::tile_gx36());
  const auto pro = measure(tilesim::tile_pro64());

  tshmem_util::OnlineStats gx_by_type[3], pro_by_type[3];
  auto type_index = [](const std::string& t) {
    return t == "Neighbors" ? 0 : t == "Side-to-Side" ? 1 : 2;
  };
  for (std::size_t i = 0; i < std::size(kCases); ++i) {
    table.add_row({kCases[i].type, kCases[i].direction,
                   tshmem_util::Table::integer(kCases[i].sender_virtual),
                   tshmem_util::Table::integer(kCases[i].receiver_virtual),
                   tshmem_util::Table::num(gx[i], 0),
                   tshmem_util::Table::num(pro[i], 0)});
    gx_by_type[type_index(kCases[i].type)].add(gx[i]);
    pro_by_type[type_index(kCases[i].type)].add(pro[i]);
  }
  bench::emit(cli, table);

  std::cout << "\nFigure 4 averages (one-way latency, ns):\n";
  tshmem_util::Table avg({"distance", "gx36 (ns)", "pro64 (ns)"});
  const char* kTypes[] = {"neighbors", "side-to-side", "corners"};
  for (int t = 0; t < 3; ++t) {
    avg.add_row({kTypes[t], tshmem_util::Table::num(gx_by_type[t].mean(), 1),
                 tshmem_util::Table::num(pro_by_type[t].mean(), 1)});
  }
  bench::emit(cli, avg);

  checks.push_back({"gx36 neighbors", gx_by_type[0].mean(), 21.5, "ns"});
  checks.push_back({"gx36 side-to-side", gx_by_type[1].mean(), 25.5, "ns"});
  checks.push_back({"gx36 corners", gx_by_type[2].mean(), 31.5, "ns"});
  checks.push_back({"pro64 neighbors", pro_by_type[0].mean(), 18.5, "ns"});
  checks.push_back({"pro64 side-to-side", pro_by_type[1].mean(), 24.5, "ns"});
  checks.push_back({"pro64 corners", pro_by_type[2].mean(), 33.0, "ns"});

  // §III-C effective data throughput per distance class (Mbps).
  std::cout << "\nEffective data throughput (Mbps, minimum payload):\n";
  tshmem_util::Table thr({"distance", "gx36 (Mbps)", "pro64 (Mbps)"});
  const double paper_gx[] = {2900, 2500, 2000};
  const double paper_pro[] = {1700, 1300, 980};
  for (int t = 0; t < 3; ++t) {
    const double g = 8.0 * 8.0 / gx_by_type[t].mean() * 1000.0;
    const double p = 4.0 * 8.0 / pro_by_type[t].mean() * 1000.0;
    thr.add_row({kTypes[t], tshmem_util::Table::num(g, 0),
                 tshmem_util::Table::num(p, 0)});
    checks.push_back({std::string("gx36 throughput ") + kTypes[t], g,
                      paper_gx[t], "Mbps"});
    checks.push_back({std::string("pro64 throughput ") + kTypes[t], p,
                      paper_pro[t], "Mbps"});
  }
  bench::emit(cli, thr);

  bench::print_checks("Figure 4 / Table III", checks);
  telemetry.write();
  return 0;
}
