// Extension bench — on-chip accelerator and static-network models:
//   (a) MiCA offload vs software (CRC32 / cipher / RLE throughput on the
//       TILE-Gx, Table II's "MiCA for crypto and compression");
//   (b) the TILEPro static network vs UDN message latency (the §II-C
//       "developer-defined statically routed network").
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/device.hpp"
#include "tmc/mica.hpp"
#include "tmc/stn.hpp"
#include "tmc/udn.hpp"
#include "util/rng.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  tshmem_util::print_banner(
      std::cout, "Extension (Table II / SII-C)",
      "MiCA offload vs software; STN vs UDN latency");

  std::vector<bench::PaperCheck> checks;

  // --- MiCA (TILE-Gx only) --------------------------------------------------
  {
    tilesim::Device gx(tilesim::tile_gx36());
    tmc::MicaEngine mica(gx);
    tshmem_util::Table table({"operation", "size", "offload (MB/s)",
                              "software (MB/s)", "speedup"});
    double crc_speedup_1m = 0;
    for (const std::size_t size : bench::pow2_sizes(4096, 4 << 20)) {
      std::vector<std::byte> data(size);
      tshmem_util::Xoshiro256 rng(size);
      for (auto& b : data) b = static_cast<std::byte>(rng.below(256));
      mica.reset();  // clocks restart at zero on every run
      gx.run(1, [&](tilesim::Tile& tile) {
        auto timed = [&](auto&& fn) {
          const auto t0 = tile.clock().now();
          fn();
          return tshmem_util::bandwidth_mbps(size, tile.clock().now() - t0);
        };
        const double hw_crc = timed([&] { (void)mica.crc32(tile, data); });
        const double sw_crc =
            timed([&] { (void)mica.crc32_software(tile, data); });
        const double hw_cipher = timed([&] { mica.cipher(tile, data, 7); });
        const double sw_cipher =
            timed([&] { mica.cipher_software(tile, data, 7); });
        table.add_row({"crc32", tshmem_util::Table::bytes(size),
                       tshmem_util::Table::num(hw_crc, 0),
                       tshmem_util::Table::num(sw_crc, 0),
                       tshmem_util::Table::num(hw_crc / sw_crc, 1)});
        table.add_row({"cipher", tshmem_util::Table::bytes(size),
                       tshmem_util::Table::num(hw_cipher, 0),
                       tshmem_util::Table::num(sw_cipher, 0),
                       tshmem_util::Table::num(hw_cipher / sw_cipher, 1)});
        if (size == (1 << 20)) crc_speedup_1m = hw_crc / sw_crc;
      });
    }
    bench::emit(cli, table);
    checks.push_back({"MiCA crc32 offload speedup @1MB (60 Gbps vs 6 ops/B)",
                      crc_speedup_1m, 42.0, "x"});
  }

  // --- STN vs UDN (TILEPro only) ---------------------------------------------
  {
    tilesim::Device pro(tilesim::tile_pro64());
    tmc::StaticNetwork stn(pro);
    tmc::UdnFabric udn(pro);
    tshmem_util::Table table({"hops", "stn (ns)", "udn (ns)", "udn/stn"});
    double ratio_1hop = 0;
    // One route per mesh row: switch ports are exclusive, so routes of
    // different lengths cannot share a row's links.
    for (int hops = 1; hops <= 7; ++hops) {
      const int start = 8 * (hops - 1);
      std::vector<int> path;
      for (int i = 0; i <= hops; ++i) path.push_back(start + i);
      const int route = stn.configure_route(path);
      const double stn_ns =
          tshmem_util::ps_to_ns(stn.route_latency_ps(route, 1));
      const double udn_ns =
          tshmem_util::ps_to_ns(udn.wire_latency_ps(start, start + hops, 1));
      table.add_row({tshmem_util::Table::integer(hops),
                     tshmem_util::Table::num(stn_ns, 1),
                     tshmem_util::Table::num(udn_ns, 1),
                     tshmem_util::Table::num(udn_ns / stn_ns, 1)});
      if (hops == 1) ratio_1hop = udn_ns / stn_ns;
    }
    bench::emit(cli, table);
    checks.push_back(
        {"STN advantage over UDN at 1 hop (no route computation)",
         ratio_1hop, 3.4, "x"});
  }

  bench::print_checks("Extension: accelerators & STN", checks);
  return 0;
}
