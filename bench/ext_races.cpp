// Extension — tshmem-check race gallery (src/analysis/, docs/ANALYSIS.md).
//
// A curated set of classic OpenSHMEM synchronization bugs, each run twice:
// the racy form, which the virtual-time happens-before detector must flag,
// and the corrected form, which must come back clean. The gallery doubles
// as living documentation of what a RaceReport looks like and as the
// dynamic half of the CI `racecheck` stage (tools/ci.sh); the structured
// reports printed here are deterministic across reruns and host schedules
// (canonical endpoint ordering + commutative merging in the detector).
//
// Kernels:
//   put-before-barrier     PE 0 puts into PE 1's buffer; PE 1 reads it with
//                          no intervening barrier or flag wait.
//   missing-quiet-nbi      PE 0 issues shmem_putmem_nbi and reuses the
//                          source buffer before shmem_quiet(); the DMA
//                          engine may still be reading it.
//   unlocked-accumulate    two PEs run a read-modify-write cycle on PE 0's
//                          counter with no lock or atomic.
//
// Host-level determinism note: the racy kernels order their conflicting
// *host* accesses with a plain std::atomic token so the underlying memory
// is never touched concurrently (keeps TSan quiet); the token is invisible
// to the detector, which tracks only modeled SHMEM synchronization, so the
// modeled race is still reported.
#include <atomic>
#include <cstdlib>
#include <functional>
#include <iostream>
#include <string>
#include <vector>

#include "analysis/race.hpp"
#include "bench_common.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::Context;
using tshmem::analysis::RaceReport;

constexpr int kPes = 4;
constexpr std::size_t kWords = 16;  // per-buffer payload (ints)

/// Runs `kernel` under a fresh kReport-mode runtime and returns the
/// detector's canonical report set.
std::vector<RaceReport> run_gallery(
    const tilesim::DeviceConfig& cfg,
    const std::function<void(Context&)>& kernel) {
  tshmem::RuntimeOptions opts;
  opts.racecheck = tshmem::analysis::RaceMode::kReport;
  tshmem::Runtime rt(cfg, opts);
  rt.run(kPes, kernel);
  return rt.race_reports();
}

// --- kernel 1: put with no barrier before the consumer reads -------------

void put_before_barrier(Context& ctx, bool fixed) {
  auto* buf = static_cast<int*>(ctx.shmalloc(kWords * sizeof(int)));
  static std::atomic<int> token;
  if (ctx.my_pe() == 0) token.store(0, std::memory_order_relaxed);
  ctx.barrier_all();

  if (ctx.my_pe() == 0) {
    std::vector<int> payload(kWords, 42);
    ctx.put(buf, payload.data(), kWords * sizeof(int), 1);
    token.store(1, std::memory_order_release);
  }
  if (fixed) ctx.barrier_all();  // the missing sync op
  if (ctx.my_pe() == 1) {
    while (token.load(std::memory_order_acquire) == 0) {
    }
    int sum = 0;
    for (std::size_t i = 0; i < kWords; ++i) sum += ctx.sym_load(&buf[i]);
    (void)sum;
  }
  ctx.shfree(buf);
}

// --- kernel 2: _nbi source buffer reused before quiet --------------------

void missing_quiet_nbi(Context& ctx, bool fixed) {
  auto* dst = static_cast<int*>(ctx.shmalloc(kWords * sizeof(int)));
  auto* src = static_cast<int*>(ctx.shmalloc(kWords * sizeof(int)));
  ctx.barrier_all();

  if (ctx.my_pe() == 0) {
    ctx.put_nbi(dst, src, kWords * sizeof(int), 1);
    if (fixed) ctx.quiet();
    // Reuse the source buffer "for the next iteration".
    for (std::size_t i = 0; i < kWords; ++i) {
      ctx.sym_store(&src[i], static_cast<int>(i));
    }
    if (!fixed) ctx.quiet();  // quiet after the damage is done
  }
  ctx.barrier_all();
  ctx.shfree(src);
  ctx.shfree(dst);
}

// --- kernel 3: read-modify-write on a shared counter with no lock --------

void unlocked_accumulate(Context& ctx, bool fixed) {
  auto* counter = static_cast<long*>(ctx.shmalloc(sizeof(long)));
  auto* lock = static_cast<long*>(ctx.shmalloc(sizeof(long)));
  static std::atomic<int> token;
  if (ctx.my_pe() == 0) {
    ctx.sym_store(counter, 0L);
    ctx.sym_store(lock, 0L);
    token.store(1, std::memory_order_release);
  }
  ctx.barrier_all();

  if (ctx.my_pe() == 1 || ctx.my_pe() == 2) {
    // Host-order the two PEs' turns with the token so the underlying
    // bytes are never written concurrently; the modeled accesses remain
    // unordered (no SHMEM sync between them) unless the lock is taken.
    while (token.load(std::memory_order_acquire) != ctx.my_pe()) {
    }
    if (fixed) ctx.set_lock(lock);
    long v = 0;
    ctx.get(&v, counter, sizeof(long), 0);
    v += ctx.my_pe();
    ctx.put(counter, &v, sizeof(long), 0);
    if (fixed) ctx.clear_lock(lock);
    token.store(ctx.my_pe() + 1, std::memory_order_release);
  }
  ctx.barrier_all();
  ctx.shfree(lock);
  ctx.shfree(counter);
}

// --- harness -------------------------------------------------------------

struct GalleryCase {
  const char* name;
  void (*kernel)(Context&, bool);
};

constexpr GalleryCase kGallery[] = {
    {"put-before-barrier", put_before_barrier},
    {"missing-quiet-nbi", missing_quiet_nbi},
    {"unlocked-accumulate", unlocked_accumulate},
};

}  // namespace

int main(int argc, char** argv) {
  // The gallery sets its own mode per runtime; the CI racecheck stage runs
  // everything else with TSHMEM_RACECHECK=fail, which must not leak in here.
  ::unsetenv("TSHMEM_RACECHECK");

  const tshmem_util::Cli cli(argc, argv, {"csv"});
  tshmem_util::print_banner(
      std::cout, "Extension — race gallery",
      "tshmem-check: racy kernels must be flagged, corrected ones clean");

  int failures = 0;
  for (const auto* cfg : bench::devices_from_cli(cli)) {
    std::cout << "\n=== device " << cfg->name << " ===\n";
    for (const auto& gc : kGallery) {
      const auto racy = run_gallery(
          *cfg, [&gc](Context& ctx) { gc.kernel(ctx, /*fixed=*/false); });
      const auto fixed = run_gallery(
          *cfg, [&gc](Context& ctx) { gc.kernel(ctx, /*fixed=*/true); });

      std::cout << "\n[" << gc.name << "] racy form: " << racy.size()
                << " report(s)\n";
      for (const auto& r : racy) std::cout << "  " << r.describe() << "\n";
      std::cout << "[" << gc.name << "] corrected form: " << fixed.size()
                << " report(s)\n";
      for (const auto& r : fixed) std::cout << "  " << r.describe() << "\n";

      if (racy.empty()) {
        std::cout << "FAIL: racy form of '" << gc.name << "' not flagged\n";
        ++failures;
      }
      if (!fixed.empty()) {
        std::cout << "FAIL: corrected form of '" << gc.name
                  << "' produced reports\n";
        ++failures;
      }
    }
  }

  std::cout << "\next_races: " << (failures == 0 ? "PASS" : "FAIL") << "\n";
  return failures == 0 ? 0 : 1;
}
