// Figure 11 — fast collection (fcollect) aggregate bandwidth versus
// per-tile block size and tile count, on both devices.
//
// Reproduces: the quadratic stage-2 scaling — because every PE receives the
// whole n*M concatenation, performance peaks shift toward *smaller* block
// sizes as the tile count grows (contrast with Fig 9, whose peaks stay put).
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "collective_bench.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  const auto max_bytes =
      static_cast<std::size_t>(cli.get_int("max-bytes", 256 << 10));
  tshmem_util::print_banner(std::cout, "Figure 11",
                            "Fast collection aggregate bandwidth");

  tshmem_util::Table table({"size/tile", "tiles", "device", "agg MB/s"});
  std::vector<bench::PaperCheck> checks;

  bench::Telemetry telemetry(cli);
  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tshmem::RuntimeOptions opts;
    // fcollect target holds n * M on every PE.
    opts.heap_per_pe = 40 * max_bytes + (1 << 20);
    telemetry.configure(opts);
    tshmem::Runtime rt(*cfg, opts);
    telemetry.attach(rt);
    std::size_t peak_size_small_n = 0, peak_size_large_n = 0;
    double peak_small_n = 0, peak_large_n = 0;
    for (const int tiles : bench::collective_tile_counts()) {
      for (const std::size_t size : bench::pow2_sizes(256, max_bytes)) {
        const double mbps = bench::aggregate_mbps(
            rt, bench::CollectiveOp::kFcollect, tiles, size);
        table.add_row({tshmem_util::Table::bytes(size),
                       tshmem_util::Table::integer(tiles), cfg->short_name,
                       tshmem_util::Table::num(mbps, 1)});
        if (tiles == 4 && mbps > peak_small_n) {
          peak_small_n = mbps;
          peak_size_small_n = size;
        }
        if (tiles == 36 && mbps > peak_large_n) {
          peak_large_n = mbps;
          peak_size_large_n = size;
        }
      }
    }
    // "Performance peaks are shifting toward smaller data sizes as the
    // number of tiles increases."
    checks.push_back({std::string(cfg->short_name) + " peak shifts smaller (" +
                          tshmem_util::Table::bytes(peak_size_large_n) +
                          " @36 vs " +
                          tshmem_util::Table::bytes(peak_size_small_n) +
                          " @4 tiles)",
                      peak_size_large_n < peak_size_small_n ? 1.0 : 0.0, 1.0,
                      "bool"});
    telemetry.collect(rt);
  }

  bench::emit(cli, table);
  bench::print_checks("Figure 11", checks);
  telemetry.write();
  return 0;
}
