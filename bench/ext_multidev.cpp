// Extension bench — TSHMEM across two TILE-Gx devices over mPIPE (the
// §VI future-work direction: "expanding the shared-memory abstraction in
// TSHMEM across multiple many-core devices").
//
// Reports: cross-device put/get bandwidth vs size (converging on the
// 10GbE wire rate, ~1250 MB/s), the intra- vs inter-device crossover, the
// cluster-wide barrier cost, and cluster broadcast bandwidth.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "tshmem/cluster.hpp"

namespace {

using tshmem::Cluster;
using tshmem::ClusterContext;

double put_mbps(Cluster& cluster, std::size_t bytes, bool cross_device) {
  double mbps = 0.0;
  cluster.run(2, [&](ClusterContext& ctx) {
    auto* buf = static_cast<std::byte*>(ctx.local().shmalloc(bytes));
    ctx.barrier_all();
    if (ctx.global_pe() == 0) {
      const int dest = cross_device ? 2 : 1;
      ctx.put(buf, buf, bytes, dest);  // warm
      const auto t0 = ctx.local().clock().now();
      ctx.put(buf, buf, bytes, dest);
      mbps = tshmem_util::bandwidth_mbps(bytes,
                                         ctx.local().clock().now() - t0);
    }
    ctx.barrier_all();
    ctx.local().shfree(buf);
  });
  return mbps;
}

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  const auto max_bytes =
      static_cast<std::size_t>(cli.get_int("max-bytes", 8 << 20));
  tshmem_util::print_banner(
      std::cout, "Extension (SVI)",
      "Multi-device TSHMEM over mPIPE: 2x TILE-Gx8036, 10GbE link");

  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 2 * max_bytes + (1 << 20);
  Cluster cluster(tilesim::tile_gx36(), opts);

  tshmem_util::Table table(
      {"size", "intra-device put (MB/s)", "inter-device put (MB/s)"});
  std::vector<bench::PaperCheck> checks;
  double inter_large = 0;
  std::size_t crossover = 0;
  for (const std::size_t size : bench::pow2_sizes(64, max_bytes)) {
    const double intra = put_mbps(cluster, size, false);
    const double inter = put_mbps(cluster, size, true);
    table.add_row({tshmem_util::Table::bytes(size),
                   tshmem_util::Table::num(intra, 1),
                   tshmem_util::Table::num(inter, 1)});
    if (size == max_bytes) inter_large = inter;
    if (crossover == 0 && inter > intra) crossover = size;
  }
  bench::emit(cli, table);

  checks.push_back({"inter-device put at 8 MB (wire-rate bound)",
                    inter_large, 1250.0 * 0.99, "MB/s"});
  checks.push_back({"intra/inter crossover size (link beats DDC copies)",
                    static_cast<double>(crossover), 1 << 20, "bytes"});

  // Cluster-wide barrier cost vs single-device barrier.
  tilesim::ps_t cluster_barrier = 0;
  cluster.run(36, [&](ClusterContext& ctx) {
    ctx.barrier_all();
    ctx.local().harness_sync_reset();
    const auto t0 = ctx.local().clock().now();
    ctx.barrier_all();
    if (ctx.global_pe() == 0) {
      cluster_barrier = ctx.local().clock().now() - t0;
    }
    ctx.local().harness_sync();
  });
  std::cout << "\ncluster barrier over 72 PEs (2 devices): "
            << tshmem_util::Table::num(tshmem_util::ps_to_us(cluster_barrier),
                                       2)
            << " us\n";
  checks.push_back({"cluster barrier (72 PEs, 2 devices)",
                    tshmem_util::ps_to_us(cluster_barrier), 10.0, "us"});

  // Cluster broadcast: 1 MB from global PE 0 to 71 other PEs.
  constexpr std::size_t kBcast = 1 << 20;
  tilesim::ps_t bcast_elapsed = 0;
  cluster.run(36, [&](ClusterContext& ctx) {
    auto* buf = static_cast<std::byte*>(ctx.local().shmalloc(kBcast));
    ctx.barrier_all();
    ctx.broadcast(buf, buf, kBcast, 0);  // warm
    ctx.local().harness_sync_reset();
    const auto t0 = ctx.local().clock().now();
    ctx.broadcast(buf, buf, kBcast, 0);
    ctx.barrier_all();
    if (ctx.global_pe() == 0) {
      bcast_elapsed = ctx.local().clock().now() - t0;
    }
    ctx.local().harness_sync();
    ctx.local().shfree(buf);
  });
  const double agg = tshmem_util::bandwidth_mbps(
      71ull * kBcast, bcast_elapsed) / 1000.0;
  std::cout << "cluster broadcast of 1 MB to 72 PEs: "
            << tshmem_util::Table::num(tshmem_util::ps_to_ms(bcast_elapsed), 2)
            << " ms (aggregate " << tshmem_util::Table::num(agg, 1)
            << " GB/s)\n";
  checks.push_back(
      {"cluster broadcast aggregate (hierarchical, 72 PEs)", agg, 15.0,
       "GB/s"});

  bench::print_checks("Extension: multi-device TSHMEM (SVI)", checks);
  return 0;
}
