// Ablation A — barrier release strategies (paper §IV-C1).
//
// The paper chose the linear-token release after measuring a
// broadcast-release variant at twice the latency. This ablation sweeps both
// designs (plus the TMC-spin-backed §IV-E variant) over tile counts on both
// devices.
#include <iostream>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

tilesim::ps_t worst_latency(tshmem::Runtime& rt, int tiles,
                            tshmem::BarrierAlgo algo) {
  std::mutex mu;
  tilesim::ps_t worst = 0;
  rt.run(tiles, [&](tshmem::Context& ctx) {
    ctx.set_barrier_algo(algo);
    ctx.barrier_all();
    ctx.harness_sync_reset();
    const auto t0 = ctx.clock().now();
    ctx.barrier_all();
    const auto dt = ctx.clock().now() - t0;
    {
      std::scoped_lock lk(mu);
      worst = std::max(worst, dt);
    }
    ctx.harness_sync();
  });
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  tshmem_util::print_banner(
      std::cout, "Ablation A",
      "Barrier release strategy: linear token vs broadcast release vs TMC spin");

  tshmem_util::Table table({"tiles", "device", "linear (us)",
                            "broadcast-release (us)", "tmc-spin (us)",
                            "bcast/linear"});
  std::vector<bench::PaperCheck> checks;

  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tshmem::Runtime rt(*cfg);
    double ratio36 = 0;
    for (int tiles = 4; tiles <= 36; tiles += 8) {
      const auto lin =
          worst_latency(rt, tiles, tshmem::BarrierAlgo::kLinearToken);
      const auto bc =
          worst_latency(rt, tiles, tshmem::BarrierAlgo::kBroadcastRelease);
      const auto spin = worst_latency(rt, tiles, tshmem::BarrierAlgo::kTmcSpin);
      const double ratio =
          static_cast<double>(bc) / static_cast<double>(lin);
      if (tiles == 36) ratio36 = ratio;
      table.add_row({tshmem_util::Table::integer(tiles), cfg->short_name,
                     tshmem_util::Table::num(tshmem_util::ps_to_us(lin), 2),
                     tshmem_util::Table::num(tshmem_util::ps_to_us(bc), 2),
                     tshmem_util::Table::num(tshmem_util::ps_to_us(spin), 2),
                     tshmem_util::Table::num(ratio, 2)});
    }
    checks.push_back({std::string(cfg->short_name) +
                          " broadcast/linear @36 (paper: ~2x)",
                      ratio36, 2.0, "x"});
  }

  bench::emit(cli, table);
  bench::print_checks("Ablation A (SIV-C1)", checks);
  return 0;
}
