// Figure 7 — effective bandwidth of TSHMEM put/get transfers on TILE-Gx36
// for every combination of dynamic and static symmetric variables as
// target/source (legend notation: target-source).
//
// Reproduces: dynamic-static puts and static-dynamic gets match their
// dynamic-dynamic counterparts (the local tile services them directly);
// static-target puts / static-source gets pay the UDN-interrupt redirection
// ("minor performance degradation"); static-static pays the interrupt plus
// the temporary shared bounce buffer ("major performance penalty").
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::Context;

enum class Kind { kDynamic, kStatic };

struct Combo {
  const char* name;  // target-source
  Kind target;
  Kind source;
};

constexpr Combo kCombos[] = {
    {"dynamic-dynamic", Kind::kDynamic, Kind::kDynamic},
    {"dynamic-static", Kind::kDynamic, Kind::kStatic},
    {"static-dynamic", Kind::kStatic, Kind::kDynamic},
    {"static-static", Kind::kStatic, Kind::kStatic},
};

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  const auto max_bytes =
      static_cast<std::size_t>(cli.get_int("max-bytes", 4 << 20));
  tshmem_util::print_banner(
      std::cout, "Figure 7",
      "TSHMEM put/get bandwidth with static symmetric variables (TILE-Gx36)");

  bench::Telemetry telemetry(cli);
  tshmem::RuntimeOptions opts;
  opts.heap_per_pe = 2 * max_bytes + (1 << 20);
  opts.private_per_pe = 2 * max_bytes + (1 << 20);
  telemetry.configure(opts);
  tshmem::Runtime rt(tilesim::tile_gx36(), opts);
  telemetry.attach(rt);

  tshmem_util::Table table({"size", "op", "combo", "MB/s"});
  std::vector<bench::PaperCheck> checks;
  double dd_put_64k = 0, ds_put_64k = 0, sd_put_64k = 0, ss_put_64k = 0;

  for (const bool is_put : {true, false}) {
    for (const Combo& combo : kCombos) {
      for (const std::size_t size : bench::pow2_sizes(64, max_bytes)) {
        double mbps = 0.0;
        rt.run(2, [&](Context& ctx) {
          auto make = [&](Kind kind, const char* tag) -> std::byte* {
            if (kind == Kind::kStatic) {
              return ctx.static_sym<std::byte>(std::string("fig07_") + tag,
                                               max_bytes);
            }
            return static_cast<std::byte*>(ctx.shmalloc(max_bytes));
          };
          std::byte* target = make(combo.target, "t");
          std::byte* source = make(combo.source, "s");
          ctx.barrier_all();
          if (ctx.my_pe() == 0) {
            auto run_once = [&] {
              if (is_put) {
                ctx.put(target, source, size, 1);
              } else {
                ctx.get(target, source, size, 1);
              }
            };
            run_once();  // warm
            const auto t0 = ctx.clock().now();
            run_once();
            mbps = tshmem_util::bandwidth_mbps(size, ctx.clock().now() - t0);
          }
          ctx.barrier_all();
          if (combo.source == Kind::kDynamic) ctx.shfree(source);
          if (combo.target == Kind::kDynamic) ctx.shfree(target);
        });
        table.add_row({tshmem_util::Table::bytes(size),
                       is_put ? "put" : "get", combo.name,
                       tshmem_util::Table::num(mbps, 1)});
        if (is_put && size == 64 * 1024) {
          if (combo.target == Kind::kDynamic && combo.source == Kind::kDynamic)
            dd_put_64k = mbps;
          if (combo.target == Kind::kDynamic && combo.source == Kind::kStatic)
            ds_put_64k = mbps;
          if (combo.target == Kind::kStatic && combo.source == Kind::kDynamic)
            sd_put_64k = mbps;
          if (combo.target == Kind::kStatic && combo.source == Kind::kStatic)
            ss_put_64k = mbps;
        }
      }
    }
  }

  bench::emit(cli, table);
  // Fig 7's qualitative relations at a representative size.
  checks.push_back(
      {"put dyn-static / dyn-dyn @64kB (same)", ds_put_64k / dd_put_64k, 1.0,
       "x"});
  checks.push_back({"put static-dyn / dyn-dyn @64kB (minor penalty)",
                    sd_put_64k / dd_put_64k, 0.9, "x"});
  checks.push_back({"put static-static / dyn-dyn @64kB (major penalty)",
                    ss_put_64k / dd_put_64k, 0.5, "x"});
  bench::print_checks("Figure 7", checks);
  telemetry.collect(rt);
  telemetry.write();
  return 0;
}
