// Figure 9 — push-based broadcast aggregate bandwidth versus transfer size
// and tile count, on both devices.
//
// Reproduces: the scalability failure — aggregate bandwidth does not grow
// as tiles are added (all work serializes on the root), and the size of
// peak performance does not shift with the tile count.
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "collective_bench.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  const auto max_bytes =
      static_cast<std::size_t>(cli.get_int("max-bytes", 1 << 20));
  tshmem_util::print_banner(std::cout, "Figure 9",
                            "Push-based broadcast aggregate bandwidth");

  tshmem_util::Table table({"size/tile", "tiles", "device", "agg MB/s"});
  std::vector<bench::PaperCheck> checks;
  bench::Telemetry telemetry(cli);

  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tshmem::RuntimeOptions opts;
    opts.heap_per_pe = 4 * max_bytes + (1 << 20);
    telemetry.configure(opts);
    tshmem::Runtime rt(*cfg, opts);
    telemetry.attach(rt);
    double at8 = 0, at36 = 0;
    for (const int tiles : bench::collective_tile_counts()) {
      for (const std::size_t size : bench::pow2_sizes(256, max_bytes)) {
        const double mbps = bench::aggregate_mbps(
            rt, bench::CollectiveOp::kBroadcastPush, tiles, size);
        table.add_row({tshmem_util::Table::bytes(size),
                       tshmem_util::Table::integer(tiles), cfg->short_name,
                       tshmem_util::Table::num(mbps, 1)});
        if (size == 32 * 1024 && tiles == 8) at8 = mbps;
        if (size == 32 * 1024 && tiles == 36) at36 = mbps;
      }
    }
    checks.push_back({std::string(cfg->short_name) +
                          " agg @36 / @8 tiles (no scaling)",
                      at36 / at8, 1.0, "x"});
    telemetry.collect(rt);
  }

  bench::emit(cli, table);
  bench::print_checks("Figure 9", checks);
  telemetry.write();
  return 0;
}
