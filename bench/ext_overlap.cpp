// Extension — communication/computation overlap with non-blocking puts
// (sim/dma.hpp + shmem_putmem_nbi; docs/NBI.md).
//
// Sweeps message size x compute grain on both devices. For each cell, PE 0
// pushes one message to PE 1 and then computes for `grain x transfer-cost`
// virtual time, once with a blocking put (communication serializes before
// the compute) and once with put_nbi + shmem_quiet (the DMA engine moves
// the data underneath the compute). The speedup column is the blocking
// virtual time over the non-blocking one: it approaches
// (1 + grain) / max(1, grain) as the fixed issue/setup costs amortize, i.e.
// ~2x at grain 1.0 for large messages.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/mem_model.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::Context;
using tshmem_util::ps_t;

struct Cell {
  ps_t blocking_ps = 0;
  ps_t nbi_ps = 0;
};

Cell measure(tshmem::Runtime& rt, std::size_t bytes, std::uint64_t int_ops) {
  Cell cell;
  rt.run(2, [&](Context& ctx) {
    auto* dst = static_cast<std::byte*>(ctx.shmalloc(bytes));
    auto* src = static_cast<std::byte*>(ctx.shmalloc(bytes));
    ctx.barrier_all();

    // Blocking baseline: put, then compute, then quiet.
    ctx.harness_sync_reset();
    if (ctx.my_pe() == 0) {
      const ps_t t0 = ctx.clock().now();
      ctx.put(dst, src, bytes, 1);
      ctx.charge_int_ops(int_ops);
      ctx.quiet();
      cell.blocking_ps = ctx.clock().now() - t0;
    }

    // Non-blocking: the DMA engine carries the transfer under the compute.
    ctx.harness_sync_reset();
    if (ctx.my_pe() == 0) {
      const ps_t t0 = ctx.clock().now();
      ctx.put_nbi(dst, src, bytes, 1);
      ctx.charge_int_ops(int_ops);
      ctx.quiet();
      cell.nbi_ps = ctx.clock().now() - t0;
    }

    ctx.harness_sync_reset();
    ctx.shfree(src);
    ctx.shfree(dst);
  });
  return cell;
}

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  const auto max_bytes =
      static_cast<std::size_t>(cli.get_int("max-bytes", 4 << 20));
  tshmem_util::print_banner(
      std::cout, "Extension — overlap",
      "comm/compute overlap: blocking put vs shmem_putmem_nbi + quiet");

  tshmem_util::Table table({"size", "device", "grain", "blocking (us)",
                            "nbi (us)", "speedup"});
  std::vector<bench::PaperCheck> checks;
  bench::Telemetry telemetry(cli);

  // Compute grain as a fraction of the modeled transfer cost.
  const double grains[] = {0.25, 0.5, 1.0, 2.0};

  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tshmem::RuntimeOptions opts;
    opts.heap_per_pe = 2 * max_bytes + (1 << 20);
    telemetry.configure(opts);
    tshmem::Runtime rt(*cfg, opts);
    telemetry.attach(rt);
    const tilesim::MemModel& mm = rt.device().mem_model();

    for (const std::size_t size : bench::pow2_sizes(4096, max_bytes)) {
      tilesim::CopyRequest req;
      req.bytes = size;
      req.src = tilesim::MemSpace::kShared;
      req.dst = tilesim::MemSpace::kShared;
      req.homing = opts.partition_homing;
      const ps_t xfer_ps = mm.copy_cost_ps(req);

      for (const double grain : grains) {
        const auto int_ops = static_cast<std::uint64_t>(
            grain * static_cast<double>(xfer_ps) /
            static_cast<double>(cfg->compute.int_op_ps));
        const Cell cell = measure(rt, size, int_ops);
        const double speedup = static_cast<double>(cell.blocking_ps) /
                               static_cast<double>(std::max<ps_t>(cell.nbi_ps, 1));
        table.add_row({tshmem_util::Table::bytes(size), cfg->short_name,
                       tshmem_util::Table::num(grain, 2),
                       tshmem_util::Table::num(cell.blocking_ps / 1e6, 2),
                       tshmem_util::Table::num(cell.nbi_ps / 1e6, 2),
                       tshmem_util::Table::num(speedup, 2)});
        if (size == max_bytes && grain == 1.0) {
          // Ideal overlap at grain 1.0 halves the total once the descriptor
          // post + engine arm costs amortize; the acceptance floor is 1.3x.
          checks.push_back({std::string(cfg->short_name) +
                                " overlap speedup @" +
                                tshmem_util::Table::bytes(size) + " grain 1.0",
                            speedup, 2.0, "x"});
        }
      }
    }
    telemetry.collect(rt);
  }

  bench::emit(cli, table);
  bench::print_checks("Extension overlap", checks);
  telemetry.write();
  return 0;
}
