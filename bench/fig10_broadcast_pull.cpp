// Figure 10 — pull-based broadcast aggregate bandwidth versus transfer
// size and tile count, on both devices.
//
// Reproduces: aggregate bandwidth scales with tile count by distributing
// the work to all PEs; on the TILE-Gx36 it peaks at ~46 GB/s at 29 tiles
// and delivers ~37 GB/s at 36 tiles; on the TILEPro64 it peaks at
// ~5.1 GB/s at 36 tiles.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "collective_bench.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  const auto max_bytes =
      static_cast<std::size_t>(cli.get_int("max-bytes", 1 << 20));
  tshmem_util::print_banner(std::cout, "Figure 10",
                            "Pull-based broadcast aggregate bandwidth");

  tshmem_util::Table table({"size/tile", "tiles", "device", "agg MB/s"});
  std::vector<bench::PaperCheck> checks;

  // Includes 29 tiles: the Gx peak the paper calls out.
  std::vector<int> tile_counts = bench::collective_tile_counts();
  tile_counts.push_back(29);
  std::sort(tile_counts.begin(), tile_counts.end());

  bench::Telemetry telemetry(cli);
  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tshmem::RuntimeOptions opts;
    opts.heap_per_pe = 4 * max_bytes + (1 << 20);
    telemetry.configure(opts);
    tshmem::Runtime rt(*cfg, opts);
    telemetry.attach(rt);
    double best_at29 = 0, best_at36 = 0;
    for (const int tiles : tile_counts) {
      for (const std::size_t size : bench::pow2_sizes(256, max_bytes)) {
        const double mbps = bench::aggregate_mbps(
            rt, bench::CollectiveOp::kBroadcastPull, tiles, size);
        table.add_row({tshmem_util::Table::bytes(size),
                       tshmem_util::Table::integer(tiles), cfg->short_name,
                       tshmem_util::Table::num(mbps, 1)});
        if (tiles == 29) best_at29 = std::max(best_at29, mbps);
        if (tiles == 36) best_at36 = std::max(best_at36, mbps);
      }
    }
    if (cfg->short_name == "gx36") {
      checks.push_back(
          {"gx36 peak aggregate @29 tiles", best_at29 / 1000.0, 46.0, "GB/s"});
      checks.push_back(
          {"gx36 peak aggregate @36 tiles", best_at36 / 1000.0, 37.0, "GB/s"});
    } else {
      checks.push_back(
          {"pro64 peak aggregate @36 tiles", best_at36 / 1000.0, 5.1, "GB/s"});
    }
    telemetry.collect(rt);
  }

  bench::emit(cli, table);
  bench::print_checks("Figure 10", checks);
  telemetry.write();
  return 0;
}
