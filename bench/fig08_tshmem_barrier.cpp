// Figure 8 — latencies of the TSHMEM barrier (linear UDN token design)
// versus tile count: best-case and worst-case exit latency per barrier,
// on both devices, with the TMC spin barrier curve for reference.
//
// Reproduces: TSHMEM barrier ~3 us @ 36 tiles on the TILEPro64, crushing
// its 47.2-us TMC spin barrier; on the TILE-Gx36 the TMC spin barrier
// (1.5 us) stays *below* the TSHMEM barrier — the §IV-E observation that
// motivates adopting TMC spin for the Gx.
#include <algorithm>
#include <iostream>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "tmc/barrier.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::Context;

struct BarrierSample {
  tilesim::ps_t best;
  tilesim::ps_t worst;
};

BarrierSample measure(tshmem::Runtime& rt, int tiles) {
  std::mutex mu;
  tilesim::ps_t best = ~tilesim::ps_t{0};
  tilesim::ps_t worst = 0;
  rt.run(tiles, [&](Context& ctx) {
    ctx.barrier_all();  // warm: allocates per-set state
    ctx.harness_sync_reset();
    const auto t0 = ctx.clock().now();
    ctx.barrier_all();
    const auto dt = ctx.clock().now() - t0;
    {
      std::scoped_lock lk(mu);
      best = std::min(best, dt);
      worst = std::max(worst, dt);
    }
    ctx.harness_sync();
  });
  return {best, worst};
}

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  tshmem_util::print_banner(
      std::cout, "Figure 8",
      "Latencies of the TSHMEM barrier (best/worst case) vs TMC spin");

  tshmem_util::Table table({"tiles", "device", "tshmem best (us)",
                            "tshmem worst (us)", "tmc spin (us)"});
  std::vector<bench::PaperCheck> checks;
  bench::Telemetry telemetry(cli);

  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tshmem::RuntimeOptions opts;
    telemetry.configure(opts);
    tshmem::Runtime rt(*cfg, opts);
    telemetry.attach(rt);
    for (int tiles = 2; tiles <= 36; tiles += 2) {
      const auto s = measure(rt, tiles);
      const auto spin = tmc::SpinBarrier::model_latency_ps(*cfg, tiles);
      table.add_row(
          {tshmem_util::Table::integer(tiles), cfg->short_name,
           tshmem_util::Table::num(tshmem_util::ps_to_us(s.best), 2),
           tshmem_util::Table::num(tshmem_util::ps_to_us(s.worst), 2),
           tshmem_util::Table::num(tshmem_util::ps_to_us(spin), 2)});
      if (tiles == 36) {
        if (cfg->short_name == "pro64") {
          checks.push_back({"pro64 tshmem barrier @36 (worst)",
                            tshmem_util::ps_to_us(s.worst), 3.0, "us"});
          checks.push_back({"pro64 tshmem vs tmc spin @36 (<<1)",
                            static_cast<double>(s.worst) /
                                static_cast<double>(spin),
                            3.0 / 47.2, "x"});
        } else {
          checks.push_back({"gx36 tmc spin stays faster (spin/tshmem < 1)",
                            static_cast<double>(spin) /
                                static_cast<double>(s.worst),
                            0.4, "x"});
        }
      }
    }
    telemetry.collect(rt);
  }

  bench::emit(cli, table);
  bench::print_checks("Figure 8", checks);
  telemetry.write();
  return 0;
}
