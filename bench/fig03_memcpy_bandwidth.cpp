// Figure 3 — effective bandwidth of memcpy() between statically allocated
// private heap memory and TMC common-memory segments, on the TILE-Gx36 and
// TILEPro64, for transfer sizes 8 B .. 64 MB.
//
// Reproduces: the three Gx36 performance transitions (L1d at 32 kB, L2 at
// 256 kB, DDC past 1 MB -> 320 MB/s memory-to-memory) and the flatter
// TILEPro64 profile (~500 MB/s through the caches, 370 MB/s at memory) —
// including the one crossover where the Pro wins (memory-to-memory).
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "sim/device.hpp"
#include "tmc/common_memory.hpp"

namespace {

using tilesim::CopyRequest;
using tilesim::MemSpace;

struct Pairing {
  const char* name;
  MemSpace src;
  MemSpace dst;
};

constexpr Pairing kPairings[] = {
    {"private->shared", MemSpace::kPrivate, MemSpace::kShared},
    {"shared->private", MemSpace::kShared, MemSpace::kPrivate},
    {"shared->shared", MemSpace::kShared, MemSpace::kShared},
};

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  const auto max_bytes =
      static_cast<std::size_t>(cli.get_int("max-bytes", 64 << 20));
  tshmem_util::print_banner(
      std::cout, "Figure 3",
      "Effective bandwidth for shared-memory copy operations");

  tshmem_util::Table table({"size", "device", "pairing", "MB/s"});
  std::vector<bench::PaperCheck> checks;
  bench::Telemetry telemetry(cli);

  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tilesim::Device device(*cfg);
    telemetry.attach(device);
    tmc::CommonMemory cmem(2 * max_bytes + (1 << 20));
    auto* shared_src = static_cast<std::byte*>(
        cmem.map("src", max_bytes, tilesim::Homing::kHashForHome, 0));
    auto* shared_dst = static_cast<std::byte*>(
        cmem.map("dst", max_bytes, tilesim::Homing::kHashForHome, 0));
    std::vector<std::byte> private_buf(max_bytes);

    device.run(1, [&](tilesim::Tile& tile) {
      for (const std::size_t size : bench::pow2_sizes(8, max_bytes)) {
        for (const Pairing& p : kPairings) {
          std::byte* dst = p.dst == MemSpace::kShared ? shared_dst
                                                      : private_buf.data();
          const std::byte* src =
              p.src == MemSpace::kShared ? shared_src : private_buf.data();
          if (p.src == MemSpace::kShared && p.dst == MemSpace::kShared) {
            src = shared_src;
            dst = shared_dst;
          }
          CopyRequest req;
          req.bytes = size;
          req.src = p.src;
          req.dst = p.dst;
          const auto t0 = tile.clock().now();
          tile.charge_copy(req);
          std::memcpy(dst, src, size);  // the copy actually happens
          const auto elapsed = tile.clock().now() - t0;
          const double mbps = tshmem_util::bandwidth_mbps(size, elapsed);
          table.add_row({tshmem_util::Table::bytes(size), cfg->short_name,
                         p.name, tshmem_util::Table::num(mbps, 1)});
          if (p.src == MemSpace::kShared && p.dst == MemSpace::kShared) {
            if (cfg->short_name == "gx36") {
              if (size == 32 * 1024) {
                checks.push_back({"gx36 L1d plateau", mbps, 3100, "MB/s"});
              } else if (size == 256 * 1024) {
                checks.push_back({"gx36 at L2 capacity", mbps, 1900, "MB/s"});
              } else if (size == (1 << 20)) {
                checks.push_back({"gx36 at 1 MB (DDC)", mbps, 1000, "MB/s"});
              } else if (size == max_bytes) {
                checks.push_back({"gx36 memory-to-memory", mbps, 320, "MB/s"});
              }
            } else if (cfg->short_name == "pro64") {
              if (size == 8 * 1024) {
                checks.push_back({"pro64 cache plateau", mbps, 500, "MB/s"});
              } else if (size == max_bytes) {
                checks.push_back({"pro64 memory-to-memory", mbps, 370, "MB/s"});
              }
            }
          }
        }
      }
    });
    telemetry.collect(device, std::string(cfg->short_name));
  }

  bench::emit(cli, table);
  bench::print_checks("Figure 3", checks);
  telemetry.write();
  return 0;
}
