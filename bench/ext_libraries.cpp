// Extension bench — TSHMEM vs message passing vs fork-join (the paper's
// §VI plan: "Benchmarking will be expanded to include TSHMEM comparisons
// with other libraries such as OpenMP and MPI").
//
// Three workloads, identical per model:
//   1. point-to-point: move M bytes PE0 -> PE1
//        TSHMEM one-sided put   vs  two-sided send/recv (staging + ack)
//   2. barrier latency over N tiles
//        TSHMEM UDN token       vs  dissemination (MPI)  vs  OpenMP join
//   3. allreduce of 16k longs over N tiles
//        TSHMEM reduce+bcast    vs  MPI tree reduce+bcast vs fork-join
#include <iostream>
#include <mutex>
#include <numeric>
#include <vector>

#include "bench_common.hpp"
#include "compare/fork_join.hpp"
#include "compare/msg_passing.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using compare::ForkJoin;
using compare::MsgPassing;
using tilesim::Device;
using tilesim::Tile;
using tshmem::Context;

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  const int tiles = static_cast<int>(cli.get_int("tiles", 32));
  constexpr std::size_t kP2pBytes = 256 * 1024;
  constexpr std::size_t kReduceElems = 16 * 1024;
  tshmem_util::print_banner(
      std::cout, "Extension (SVI)",
      "TSHMEM vs message passing vs fork-join, " + std::to_string(tiles) +
          " tiles");

  tshmem_util::Table table({"workload", "model", "device", "time (us)"});
  std::vector<bench::PaperCheck> checks;

  for (const auto* cfg : bench::devices_from_cli(cli)) {
    // --- 1. point-to-point --------------------------------------------------
    tilesim::ps_t shmem_p2p = 0, mpi_p2p = 0;
    {
      tshmem::Runtime rt(*cfg);
      rt.run(2, [&](Context& ctx) {
        auto* sym = static_cast<std::byte*>(ctx.shmalloc(kP2pBytes));
        std::vector<std::byte> local(kP2pBytes);
        ctx.barrier_all();
        ctx.harness_sync_reset();
        if (ctx.my_pe() == 0) {
          ctx.put(sym, local.data(), kP2pBytes, 1);
          shmem_p2p = ctx.clock().now();
        }
        ctx.harness_sync();
        ctx.shfree(sym);
      });
    }
    {
      Device device(*cfg);
      tmc::CommonMemory cmem(8 << 20);
      MsgPassing mp(device, cmem, 2, kP2pBytes);
      device.run(2, [&](Tile& tile) {
        std::vector<std::byte> buf(kP2pBytes);
        device.sync_and_reset_clocks();
        if (tile.id() == 0) {
          mp.send(tile, 1, 0, buf);
          mpi_p2p = tile.clock().now();
        } else {
          (void)mp.recv(tile, 0, 0, buf);
        }
        device.host_sync();
      });
    }
    table.add_row({"p2p 256 kB", "tshmem put", cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(shmem_p2p), 1)});
    table.add_row({"p2p 256 kB", "mpi send/recv", cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(mpi_p2p), 1)});

    // --- 2. barrier ----------------------------------------------------------
    tilesim::ps_t shmem_bar = 0, mpi_bar = 0, omp_bar = 0;
    {
      tshmem::Runtime rt(*cfg);
      std::mutex mu;
      rt.run(tiles, [&](Context& ctx) {
        ctx.barrier_all();
        ctx.harness_sync_reset();
        const auto t0 = ctx.clock().now();
        ctx.barrier_all();
        const auto dt = ctx.clock().now() - t0;
        std::scoped_lock lk(mu);
        shmem_bar = std::max(shmem_bar, dt);
      });
    }
    {
      Device device(*cfg);
      tmc::CommonMemory cmem(1 << 20);
      MsgPassing mp(device, cmem, tiles, 64);
      std::mutex mu;
      device.run(tiles, [&](Tile& tile) {
        mp.barrier(tile);
        device.sync_and_reset_clocks();
        const auto t0 = tile.clock().now();
        mp.barrier(tile);
        const auto dt = tile.clock().now() - t0;
        {
          std::scoped_lock lk(mu);
          mpi_bar = std::max(mpi_bar, dt);
        }
        device.host_sync();
      });
    }
    {
      Device device(*cfg);
      ForkJoin fj(device, tiles);
      std::mutex mu;
      device.run(tiles, [&](Tile& tile) {
        device.sync_and_reset_clocks();
        const auto t0 = tile.clock().now();
        fj.barrier(tile);
        const auto dt = tile.clock().now() - t0;
        {
          std::scoped_lock lk(mu);
          omp_bar = std::max(omp_bar, dt);
        }
        device.host_sync();
      });
    }
    table.add_row({"barrier", "tshmem (UDN token)", cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(shmem_bar), 2)});
    table.add_row({"barrier", "mpi (dissemination)", cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(mpi_bar), 2)});
    table.add_row({"barrier", "openmp (sync join)", cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(omp_bar), 2)});

    // --- 3. allreduce ---------------------------------------------------------
    tilesim::ps_t shmem_red = 0, mpi_red = 0, omp_red = 0;
    {
      tshmem::Runtime rt(*cfg);
      std::mutex mu;
      rt.run(tiles, [&](Context& ctx) {
        long* src = ctx.shmalloc_n<long>(kReduceElems);
        long* dst = ctx.shmalloc_n<long>(kReduceElems);
        for (std::size_t i = 0; i < kReduceElems; ++i) src[i] = ctx.my_pe();
        ctx.barrier_all();
        ctx.harness_sync_reset();
        const auto t0 = ctx.clock().now();
        ctx.reduce(dst, src, kReduceElems, tshmem::RedOp::kSum, ctx.world(),
                   tshmem::ReduceAlgo::kRecursiveDoubling);
        const auto dt = ctx.clock().now() - t0;
        {
          std::scoped_lock lk(mu);
          shmem_red = std::max(shmem_red, dt);
        }
        ctx.harness_sync();
        ctx.shfree(dst);
        ctx.shfree(src);
      });
    }
    {
      Device device(*cfg);
      // Staging is O(ranks^2 * message): 32^2 * 128 kB = 128 MB.
      tmc::CommonMemory cmem(std::size_t{256} << 20);
      MsgPassing mp(device, cmem, tiles, kReduceElems * sizeof(long));
      std::mutex mu;
      device.run(tiles, [&](Tile& tile) {
        std::vector<long> vals(kReduceElems, tile.id());
        device.sync_and_reset_clocks();
        const auto t0 = tile.clock().now();
        mp.reduce_sum(tile, 0, vals);
        auto* bytes = reinterpret_cast<std::byte*>(vals.data());
        mp.bcast(tile, 0,
                 std::span<std::byte>(bytes, kReduceElems * sizeof(long)));
        const auto dt = tile.clock().now() - t0;
        {
          std::scoped_lock lk(mu);
          mpi_red = std::max(mpi_red, dt);
        }
        device.host_sync();
      });
    }
    {
      // Fork-join: shared array, per-thread partials, master combines.
      Device device(*cfg);
      ForkJoin fj(device, tiles);
      std::vector<long> partials(static_cast<std::size_t>(tiles), 0);
      std::mutex mu;
      device.run(tiles, [&](Tile& tile) {
        device.sync_and_reset_clocks();
        const auto t0 = tile.clock().now();
        fj.parallel_for(tile, kReduceElems,
                        [&](std::size_t b, std::size_t e, Tile& t) {
                          // Each thread folds its chunk (value = tile id).
                          partials[static_cast<std::size_t>(t.id())] =
                              static_cast<long>(e - b) * t.id();
                          t.charge_int_ops(e - b);
                        });
        if (tile.id() == 0) {
          long total = 0;
          for (const long p : partials) total += p;
          tile.charge_int_ops(partials.size());
          (void)total;
        }
        fj.barrier(tile);
        const auto dt = tile.clock().now() - t0;
        {
          std::scoped_lock lk(mu);
          omp_red = std::max(omp_red, dt);
        }
        device.host_sync();
      });
    }
    table.add_row({"allreduce 16k longs", "tshmem (recursive doubling)",
                   cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(shmem_red), 1)});
    table.add_row({"allreduce 16k longs", "mpi (tree + bcast)",
                   cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(mpi_red), 1)});
    table.add_row({"allreduce 16k longs", "openmp (fork-join partials)",
                   cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(omp_red), 1)});

    checks.push_back({std::string(cfg->short_name) +
                          " p2p: two-sided / one-sided overhead",
                      static_cast<double>(mpi_p2p) /
                          static_cast<double>(shmem_p2p),
                      2.0, "x"});
    const double omp_ratio =
        static_cast<double>(omp_bar) / static_cast<double>(shmem_bar);
    checks.push_back({std::string(cfg->short_name) +
                          " barrier: openmp >> tshmem (" +
                          tshmem_util::Table::num(omp_ratio, 0) + "x)",
                      omp_ratio > 10.0 ? 1.0 : 0.0, 1.0, "bool"});
    checks.push_back({std::string(cfg->short_name) +
                          " barrier: mpi dissemination / tshmem token",
                      static_cast<double>(mpi_bar) /
                          static_cast<double>(shmem_bar),
                      0.6, "x"});
  }

  bench::emit(cli, table);
  bench::print_checks("Extension: library comparison (SVI)", checks);
  return 0;
}
