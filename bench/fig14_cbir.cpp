// Figure 14 — CBIR (color autocorrelogram feature extraction + retrieval)
// over 8-bit 128x128 images: execution time and speedup versus tile count,
// on both devices.
//
// The paper's database holds 22,000 images; the default here is quarter
// scale (5,500) to keep the harness fast — speedup is independent of the
// database size, and the table reports both the measured execution time and
// its extrapolation to the full 22,000-image database. Pass --full for the
// paper-scale run.
//
// Reproduces: near-linear speedup to 16 tiles; 25x (Gx36) / 27x (Pro64) at
// 32 tiles, the Pro scaling slightly better because its slower integer
// cores shrink the relative weight of the serial gather/merge/re-rank tail.
#include <iostream>
#include <vector>

#include "apps/cbir.hpp"
#include "bench_common.hpp"
#include "tshmem/runtime.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv", "full"});
  apps::cbir::Params params;
  params.images = cli.get_flag("full")
                      ? 22000
                      : static_cast<int>(cli.get_int("images", 5500));
  const double scale = 22000.0 / params.images;
  tshmem_util::print_banner(
      std::cout, "Figure 14",
      "CBIR on " + std::to_string(params.images) + " 8-bit images of 128x128" +
          (params.images == 22000
               ? ""
               : " (paper scale 22,000; exec extrapolated x" +
                     tshmem_util::Table::num(scale, 1) + ")"));

  tshmem_util::Table table({"tiles", "device", "exec (s)", "exec @22k (s)",
                            "speedup", "extract (s)", "rank (s)"});
  std::vector<bench::PaperCheck> checks;
  const std::vector<int> tile_counts{1, 2, 4, 8, 16, 32};

  bench::Telemetry telemetry(cli);
  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tshmem::RuntimeOptions opts;
    opts.heap_per_pe =
        static_cast<std::size_t>(params.images) * 128 * 128 + (64 << 20);
    telemetry.configure(opts);
    tshmem::Runtime rt(*cfg, opts);
    telemetry.attach(rt);
    double serial_s = 0.0;
    double at16_s = 0.0, at32_s = 0.0;
    for (const int tiles : tile_counts) {
      apps::cbir::QueryResult r;
      rt.run(tiles, [&](tshmem::Context& ctx) {
        const auto out = apps::cbir::run_query(ctx, params);
        if (ctx.my_pe() == 0) r = out;
      });
      const double secs = tshmem_util::ps_to_sec(r.elapsed_ps);
      if (tiles == 1) serial_s = secs;
      if (tiles == 16) at16_s = secs;
      if (tiles == 32) at32_s = secs;
      table.add_row(
          {tshmem_util::Table::integer(tiles), cfg->short_name,
           tshmem_util::Table::num(secs, 3),
           tshmem_util::Table::num(secs * scale, 3),
           tshmem_util::Table::num(serial_s / secs, 2),
           tshmem_util::Table::num(tshmem_util::ps_to_sec(r.extract_ps), 3),
           tshmem_util::Table::num(tshmem_util::ps_to_sec(r.rank_ps), 3)});
    }
    const bool gx = cfg->short_name == "gx36";
    checks.push_back({std::string(cfg->short_name) + " speedup @32",
                      serial_s / at32_s, gx ? 25.0 : 27.0, "x"});
    checks.push_back({std::string(cfg->short_name) + " speedup @16 (linear)",
                      serial_s / at16_s, 15.0, "x"});
    telemetry.collect(rt);
  }

  bench::emit(cli, table);
  bench::print_checks("Figure 14", checks);
  telemetry.write();
  return 0;
}
