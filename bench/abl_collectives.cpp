// Ablation B — the §IV-E future-work collective algorithms against the
// paper's implemented designs: binomial vs push/pull broadcast,
// recursive-doubling vs naive reduction, ring vs naive fcollect.
#include <iostream>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::Context;

/// Worst participant elapsed time for one collective invocation.
template <typename Fn>
tilesim::ps_t worst_elapsed(tshmem::Runtime& rt, int tiles, std::size_t bytes,
                            std::size_t dst_factor, Fn&& op) {
  std::mutex mu;
  tilesim::ps_t worst = 0;
  rt.run(tiles, [&](Context& ctx) {
    auto* src = static_cast<std::byte*>(ctx.shmalloc(bytes));
    auto* dst = static_cast<std::byte*>(ctx.shmalloc(bytes * dst_factor));
    ctx.barrier_all();
    op(ctx, dst, src, bytes);  // warm
    ctx.harness_sync_reset();
    const auto t0 = ctx.clock().now();
    op(ctx, dst, src, bytes);
    const auto dt = ctx.clock().now() - t0;
    {
      std::scoped_lock lk(mu);
      worst = std::max(worst, dt);
    }
    ctx.harness_sync();
    ctx.shfree(dst);
    ctx.shfree(src);
  });
  return worst;
}

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  const std::size_t bytes =
      static_cast<std::size_t>(cli.get_int("bytes", 64 << 10));
  const int tiles = static_cast<int>(cli.get_int("tiles", 32));
  tshmem_util::print_banner(
      std::cout, "Ablation B",
      "Collective algorithms (paper designs vs SIV-E extensions), " +
          tshmem_util::Table::bytes(bytes) + " per tile, " +
          std::to_string(tiles) + " tiles");

  tshmem_util::Table table({"collective", "algorithm", "device", "time (us)"});
  std::vector<bench::PaperCheck> checks;

  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tshmem::RuntimeOptions opts;
    opts.heap_per_pe = (bytes * static_cast<std::size_t>(tiles) + bytes) * 2 +
                       (1 << 20);
    tshmem::Runtime rt(*cfg, opts);
    auto bcast = [&](tshmem::BcastAlgo algo) {
      return worst_elapsed(rt, tiles, bytes, 1,
                           [algo](Context& ctx, std::byte* dst,
                                  const std::byte* src, std::size_t n) {
                             ctx.broadcast(dst, src, n, 0, ctx.world(), algo);
                           });
    };
    const auto push = bcast(tshmem::BcastAlgo::kPush);
    const auto pull = bcast(tshmem::BcastAlgo::kPull);
    const auto binom = bcast(tshmem::BcastAlgo::kBinomial);
    table.add_row({"broadcast", "push (SIV-D1)", cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(push), 1)});
    table.add_row({"broadcast", "pull (SIV-D1)", cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(pull), 1)});
    table.add_row({"broadcast", "binomial (SIV-E)", cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(binom), 1)});

    auto reduce = [&](tshmem::ReduceAlgo algo) {
      return worst_elapsed(
          rt, tiles, bytes, 1,
          [algo](Context& ctx, std::byte* dst, const std::byte* src,
                 std::size_t n) {
            ctx.reduce(reinterpret_cast<int*>(dst),
                       reinterpret_cast<const int*>(src), n / sizeof(int),
                       tshmem::RedOp::kSum, ctx.world(), algo);
          });
    };
    const auto naive_red = reduce(tshmem::ReduceAlgo::kNaive);
    const auto rd_red = reduce(tshmem::ReduceAlgo::kRecursiveDoubling);
    table.add_row({"reduce", "naive (SIV-D3)", cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(naive_red), 1)});
    table.add_row({"reduce", "recursive-doubling (SIV-E)", cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(rd_red), 1)});

    auto collect = [&](tshmem::CollectAlgo algo) {
      return worst_elapsed(
          rt, tiles, bytes, static_cast<std::size_t>(tiles),
          [algo](Context& ctx, std::byte* dst, const std::byte* src,
                 std::size_t n) { ctx.fcollect(dst, src, n, ctx.world(), algo); });
    };
    const auto naive_col = collect(tshmem::CollectAlgo::kNaive);
    const auto ring_col = collect(tshmem::CollectAlgo::kRing);
    table.add_row({"fcollect", "naive (SIV-D2)", cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(naive_col), 1)});
    table.add_row({"fcollect", "ring (extension)", cfg->short_name,
                   tshmem_util::Table::num(tshmem_util::ps_to_us(ring_col), 1)});

    checks.push_back({std::string(cfg->short_name) + " pull/push speedup",
                      static_cast<double>(push) / static_cast<double>(pull),
                      static_cast<double>(tiles - 1) / 2.5, "x"});
    checks.push_back(
        {std::string(cfg->short_name) + " recursive-doubling/naive speedup",
         static_cast<double>(naive_red) / static_cast<double>(rd_red), 3.0,
         "x"});
  }

  bench::emit(cli, table);
  bench::print_checks("Ablation B (SIV-E)", checks);
  return 0;
}
