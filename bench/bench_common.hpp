// Shared helpers for the figure/table reproduction benches: device
// selection, size sweeps, and the paper-vs-measured summary block each
// bench prints (the numbers EXPERIMENTS.md records).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/exporters.hpp"
#include "obs/profiler.hpp"
#include "sim/config.hpp"
#include "sim/trace.hpp"
#include "tshmem/runtime.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace bench {

using tilesim::DeviceConfig;
using tshmem_util::Cli;
using tshmem_util::Table;

/// Devices selected by --device (gx36|pro64|both; default both).
std::vector<const DeviceConfig*> devices_from_cli(const Cli& cli);

/// Power-of-two byte sizes in [lo, hi].
std::vector<std::size_t> pow2_sizes(std::size_t lo, std::size_t hi);

/// Tile counts used by the collective figures (2..36).
std::vector<int> collective_tile_counts();

/// One paper-anchor comparison line; `tolerance` is relative.
struct PaperCheck {
  std::string what;
  double measured;
  double paper;
  std::string unit;
};

/// Prints the "reproduction check" block: measured vs paper value and the
/// ratio. These rows are what EXPERIMENTS.md records per experiment.
void print_checks(const std::string& experiment,
                  const std::vector<PaperCheck>& checks);

/// Prints a table in text or CSV per the --csv flag.
void emit(const Cli& cli, const Table& table);

/// Telemetry flags every Runtime-based bench accepts:
///   --metrics-json <path>    metrics snapshot dump (schema tshmem.metrics.v1)
///   --trace-json <path>      Chrome trace-event / Perfetto JSON timeline
///   --profile-json <path>    critical-path profile (schema tshmem.profile.v1)
///   --profile-folded <path>  collapsed stacks for flamegraph.pl / speedscope
///   --timeseries-json <path> windowed virtual-time telemetry
///                            (schema tshmem.timeseries.v1)
///   --timeseries-window-ps <n>  window width (default 1e9 ps = 1 ms)
///   --blackbox-json <path>   flight-recorder dump (schema tshmem.blackbox.v1;
///                            also the Runtime's crash-dump path, so an Error
///                            mid-run leaves a post-mortem there)
///
/// Usage per Runtime (benches sweeping devices create several):
///   bench::Telemetry telemetry(cli);
///   ...
///   telemetry.configure(opts);          // before constructing the Runtime
///   tshmem::Runtime rt(*cfg, opts);
///   telemetry.attach(rt);               // right after construction
///   ... rt.run(...) as usual ...
///   telemetry.collect(rt);              // after the runtime's last run()
///   ...
///   telemetry.write();                  // once, at the end of main()
///
/// Raw-Device benches (no Runtime) use the Device overloads instead:
///   telemetry.attach(device);
///   ... workload ...
///   telemetry.collect(device, cfg->short_name);
///
/// When both --trace-json and a profile flag are given, the trace JSON also
/// carries the critical path's wait edges as Perfetto flow arrows.
///
/// Without the flags every call is a cheap no-op, and instrumentation is
/// host-side only, so measured virtual times are identical either way.
class Telemetry {
 public:
  explicit Telemetry(const Cli& cli);

  [[nodiscard]] bool metrics_requested() const noexcept {
    return !metrics_path_.empty();
  }
  [[nodiscard]] bool trace_requested() const noexcept {
    return !trace_path_.empty();
  }
  [[nodiscard]] bool profile_requested() const noexcept {
    return !profile_json_path_.empty() || !profile_folded_path_.empty();
  }
  [[nodiscard]] bool timeseries_requested() const noexcept {
    return !timeseries_path_.empty();
  }
  [[nodiscard]] bool blackbox_requested() const noexcept {
    return !blackbox_path_.empty();
  }

  /// Turns on RuntimeOptions::metrics / ::profile per the flags passed.
  void configure(tshmem::RuntimeOptions& opts) const;

  /// Attaches a virtual-time tracer to the runtime's device when
  /// --trace-json was passed. (The profiler is owned by the Runtime itself,
  /// enabled via configure().)
  void attach(tshmem::Runtime& rt);

  /// Harvests the runtime's metrics snapshot, profile report, and timeline,
  /// detaching the tracer. Call once per Runtime, after its last run().
  void collect(tshmem::Runtime& rt);

  /// Raw-Device variant: attaches a tracer and/or a Telemetry-owned
  /// profiler directly to `device` (for benches with no Runtime).
  void attach(tilesim::Device& device);

  /// Harvests and detaches what attach(Device&) installed. `name` labels
  /// the trace track / profile run (use the device short name).
  void collect(tilesim::Device& device, const std::string& name);

  /// Writes any requested files and prints one line per file written.
  void write();

 private:
  std::string metrics_path_;
  std::string trace_path_;
  std::string profile_json_path_;
  std::string profile_folded_path_;
  std::string timeseries_path_;
  std::string blackbox_path_;
  tilesim::ps_t timeseries_window_ps_ = 0;
  std::vector<std::pair<std::string, obs::TimeSeriesReport>> timeseries_;
  std::string blackbox_doc_;  ///< last collected runtime's dump
  std::vector<obs::MetricsSnapshot> snapshots_;
  std::vector<obs::TraceTrack> tracks_;
  std::vector<obs::TraceFlow> flows_;
  std::vector<std::pair<std::string, obs::ProfileReport>> reports_;
  std::unique_ptr<tilesim::TraceRecorder> recorder_;
  std::unique_ptr<obs::Profiler> device_profiler_;
  tshmem::Runtime* attached_ = nullptr;
  tilesim::Device* attached_device_ = nullptr;
  int next_pid_ = 0;
  std::uint64_t next_flow_id_ = 0;
};

}  // namespace bench
