// Shared helpers for the figure/table reproduction benches: device
// selection, size sweeps, and the paper-vs-measured summary block each
// bench prints (the numbers EXPERIMENTS.md records).
#pragma once

#include <cstddef>
#include <iostream>
#include <string>
#include <vector>

#include "sim/config.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace bench {

using tilesim::DeviceConfig;
using tshmem_util::Cli;
using tshmem_util::Table;

/// Devices selected by --device (gx36|pro64|both; default both).
std::vector<const DeviceConfig*> devices_from_cli(const Cli& cli);

/// Power-of-two byte sizes in [lo, hi].
std::vector<std::size_t> pow2_sizes(std::size_t lo, std::size_t hi);

/// Tile counts used by the collective figures (2..36).
std::vector<int> collective_tile_counts();

/// One paper-anchor comparison line; `tolerance` is relative.
struct PaperCheck {
  std::string what;
  double measured;
  double paper;
  std::string unit;
};

/// Prints the "reproduction check" block: measured vs paper value and the
/// ratio. These rows are what EXPERIMENTS.md records per experiment.
void print_checks(const std::string& experiment,
                  const std::vector<PaperCheck>& checks);

/// Prints a table in text or CSV per the --csv flag.
void emit(const Cli& cli, const Table& table);

}  // namespace bench
