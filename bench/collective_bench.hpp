// Shared measurement harness for the collective-communication figures
// (Figs 9-12): runs one collective across `tiles` PEs with synchronized
// virtual clocks and reports the aggregate effective bandwidth
// (total bytes moved / slowest participant's elapsed virtual time).
#pragma once

#include <mutex>

#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"
#include "util/units.hpp"

namespace bench {

enum class CollectiveOp { kBroadcastPush, kBroadcastPull, kFcollect, kReduce };

/// Bytes accounted as "moved" by one operation (drives aggregate BW).
inline std::uint64_t moved_bytes(CollectiveOp op, int tiles,
                                 std::size_t bytes_per_tile) {
  const auto n = static_cast<std::uint64_t>(tiles);
  const auto m = static_cast<std::uint64_t>(bytes_per_tile);
  switch (op) {
    case CollectiveOp::kBroadcastPush:
    case CollectiveOp::kBroadcastPull:
      return (n - 1) * m;  // each non-root receives M
    case CollectiveOp::kFcollect:
      // Stage 1: n-1 blocks into the root; stage 2: n*M out to each member.
      return (n - 1) * m + (n - 1) * n * m;
    case CollectiveOp::kReduce:
      return n * m;  // each tile's M elements enter the reduction
  }
  return 0;
}

/// Runs the op once (after a warm-up round) and returns aggregate MB/s.
inline double aggregate_mbps(tshmem::Runtime& rt, CollectiveOp op, int tiles,
                             std::size_t bytes_per_tile) {
  std::mutex mu;
  tilesim::ps_t slowest = 0;
  rt.run(tiles, [&](tshmem::Context& ctx) {
    const tshmem::ActiveSet world = ctx.world();
    const auto n = static_cast<std::size_t>(tiles);
    std::byte* src = nullptr;
    std::byte* dst = nullptr;
    auto run_once = [&] {
      switch (op) {
        case CollectiveOp::kBroadcastPush:
          ctx.broadcast(dst, src, bytes_per_tile, 0, world,
                        tshmem::BcastAlgo::kPush);
          break;
        case CollectiveOp::kBroadcastPull:
          ctx.broadcast(dst, src, bytes_per_tile, 0, world,
                        tshmem::BcastAlgo::kPull);
          break;
        case CollectiveOp::kFcollect:
          ctx.fcollect(dst, src, bytes_per_tile, world);
          break;
        case CollectiveOp::kReduce:
          ctx.reduce(reinterpret_cast<int*>(dst),
                     reinterpret_cast<const int*>(src),
                     bytes_per_tile / sizeof(int), tshmem::RedOp::kSum, world);
          break;
      }
    };
    const std::size_t dst_bytes =
        op == CollectiveOp::kFcollect ? n * bytes_per_tile : bytes_per_tile;
    src = static_cast<std::byte*>(ctx.shmalloc(bytes_per_tile));
    dst = static_cast<std::byte*>(ctx.shmalloc(dst_bytes));
    ctx.barrier_all();
    run_once();  // warm-up (collective sequence numbers, bounce paths)
    ctx.harness_sync_reset();
    const auto t0 = ctx.clock().now();
    run_once();
    const auto dt = ctx.clock().now() - t0;
    {
      std::scoped_lock lk(mu);
      slowest = std::max(slowest, dt);
    }
    ctx.harness_sync();
    ctx.shfree(dst);
    ctx.shfree(src);
  });
  return tshmem_util::bandwidth_mbps(moved_bytes(op, tiles, bytes_per_tile),
                                     slowest);
}

}  // namespace bench
