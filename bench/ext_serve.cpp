// Extension bench — sharded CBIR query serving over the mPIPE cluster
// (docs/SERVING.md; the ROADMAP's production-scale serving scenario).
//
// Not a paper figure: the TSHMEM paper benchmarks one device under a
// single SPMD job. This bench stands up the src/svc/ serving subsystem —
// one shard per cluster device, each holding a block of the image
// database as a precomputed ShardIndex — calibrates the per-shard batch
// cost on the real cluster, then drives a seeded virtual-time query load
// (default one million arrivals) through router -> LRU cache -> batcher
// -> shards and reports sustained QPS plus p50/p99/p999 latency.
//
// Everything printed to stdout is virtual-time-deterministic: one
// (seed, fault plan) pair produces bit-identical output across runs and
// under the race detector / profiler (tools/ci.sh diffs them).
//
// Replication (docs/SERVING.md failover): --replicas R gives every shard
// slice R independently calibrated replicas (cluster devices = shards * R;
// replica r of shard s is device r*shards+s). The router prefers the
// primary, fails over on degradation or crash, and fails back on recovery.
// Deadline / CoDel admission control (--deadline-ps, --codel-target-ps)
// sheds excess queueing at admission instead of letting the tail grow.
//
// Flags: --devices N       shard slices (default 2)
//        --replicas R      replicas per shard slice (default 1; the
//                          cluster holds N*R devices)
//        --pes N           PEs per shard (default 4)
//        --images N        database size (default 5500, as fig14)
//        --queries N       arrivals to generate (default 1000000)
//        --qps R           arrival rate at the first query (default 10000)
//        --end-qps R       ramp target rate (default 150000; 0 = flat).
//                          The default ramp starts below cold-cache
//                          capacity and climbs as the LRU warms.
//        --zipf S          key skew exponent (default 0.9)
//        --batch N         max batch size (default 8)
//        --batch-timeout-ns N   partial-batch close timeout (default 2000)
//        --cache N         LRU result-cache entries (default 4096)
//        --policy P        reject|reroute on a degraded shard
//        --seed N          load-generator seed (default 1)
//        --closed          closed-loop drive (fixed in-flight window)
//        --concurrency N   closed-loop window (default 64)
//        --unhealthy-us N  degrade a shard above this backlog (default 5000)
//        --recover-us N    recover below this backlog (default 1000)
//        --deadline-ps N   per-query completion deadline; queries whose
//                          replica backlog overruns it are refused with
//                          kDeadlineExceeded (default 0 = off)
//        --codel-target-ps N   CoDel sojourn target per batcher queue
//                          (default 0 = off)
//        --codel-interval-ps N CoDel interval (default 1e10 = 10 ms)
//        --fault-plan SPEC FaultPlan spec (else $TSHMEM_FAULT_PLAN, e.g.
//                          "seed=3,shard_stall=0.3:40000000,shard_stall_shard=1"
//                          or "seed=7,shard_crash=1.0,shard_crash_shard=1")
//        --json PATH       write the tshmem.serve.v2 report
//        --metrics-json PATH  write the svc.* metrics snapshot
//        --timeseries-json PATH  write the windowed svc.* timeline
//                          (tshmem.timeseries.v1: per-window QPS, latency
//                          quantiles, shed/degrade/recover rates). The
//                          window sums are reconciled exactly against the
//                          end-of-run svc.* totals; any mismatch fails the
//                          bench.
//        --timeseries-window-ps N  window width (default 1e9 = 1 ms)
//        --blackbox-json PATH  flight-recorder post-mortem
//                          (tshmem.blackbox.v1). Written by the service on
//                          the first shard degradation; if nothing
//                          degraded, an end-of-run snapshot is written
//                          instead.
//        --profile-json PATH  per-shard critical-path profiles of the real
//                          calibration jobs (tshmem.profile.v1 wrapper form,
//                          as tools/perf_run.py harvests)
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>

#include "bench_common.hpp"
#include "obs/exporters.hpp"
#include "obs/profiler.hpp"
#include "svc/report.hpp"
#include "svc/service.hpp"
#include "tshmem/cluster.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv", "closed"});
  tshmem_util::print_banner(
      std::cout, "Extension (serving)",
      "Sharded CBIR query serving over the mPIPE cluster");

  svc::ServiceConfig cfg;
  const int shards = static_cast<int>(cli.get_int("devices", 2));
  cfg.replicas = static_cast<int>(cli.get_int("replicas", 1));
  if (cfg.replicas < 1) {
    std::cerr << "--replicas must be >= 1\n";
    return 2;
  }
  const int devices = shards * cfg.replicas;
  cfg.pes_per_shard = static_cast<int>(cli.get_int("pes", 4));
  cfg.db.images = static_cast<int>(cli.get_int("images", 5500));
  cfg.load.queries =
      static_cast<std::uint64_t>(cli.get_int("queries", 1'000'000));
  cfg.load.start_qps = cli.get_double("qps", 10'000.0);
  cfg.load.end_qps = cli.get_double("end-qps", 150'000.0);
  cfg.load.zipf_s = cli.get_double("zipf", 0.9);
  cfg.load.seed = static_cast<std::uint64_t>(cli.get_int("seed", 1));
  cfg.load.key_space = cfg.db.images;
  cfg.batch.max_batch = static_cast<int>(cli.get_int("batch", 8));
  cfg.batch.timeout_ps =
      static_cast<svc::ps_t>(cli.get_int("batch-timeout-ns", 2000)) * 1000;
  cfg.cache_capacity =
      static_cast<std::size_t>(cli.get_int("cache", 4096));
  cfg.closed_loop = cli.get_flag("closed");
  cfg.concurrency = static_cast<int>(cli.get_int("concurrency", 64));
  cfg.unhealthy_backlog_ps =
      static_cast<svc::ps_t>(cli.get_int("unhealthy-us", 5000)) * 1'000'000;
  cfg.recover_backlog_ps =
      static_cast<svc::ps_t>(cli.get_int("recover-us", 1000)) * 1'000'000;
  cfg.deadline_ps = static_cast<svc::ps_t>(cli.get_int("deadline-ps", 0));
  cfg.codel.target_ps =
      static_cast<svc::ps_t>(cli.get_int("codel-target-ps", 0));
  cfg.codel.interval_ps = static_cast<svc::ps_t>(
      cli.get_int("codel-interval-ps", 10'000'000'000));
  const std::string policy = cli.get_string("policy", "reject");
  if (policy == "reject") {
    cfg.policy = svc::ShedPolicy::kReject;
  } else if (policy == "reroute") {
    cfg.policy = svc::ShedPolicy::kReroute;
  } else {
    std::cerr << "unknown --policy " << policy << " (reject|reroute)\n";
    return 2;
  }
  const std::string ts_path = cli.get_string("timeseries-json", "");
  const std::string bb_path = cli.get_string("blackbox-json", "");
  if (!ts_path.empty()) {
    cfg.timeseries_window_ps = static_cast<svc::ps_t>(
        cli.get_int("timeseries-window-ps", 1'000'000'000));
  }
  cfg.blackbox_path = bb_path;
  std::string plan_spec = cli.get_string("fault-plan", "");
  if (plan_spec.empty()) {
    if (const char* env = std::getenv("TSHMEM_FAULT_PLAN")) plan_spec = env;
  }
  if (!plan_spec.empty()) {
    cfg.fault_plan = tilesim::FaultPlan::parse(plan_spec);
  }

  // The cluster expansion is TILE-Gx only (mPIPE), as in ext_multidev.
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 64 << 20;
  const std::string profile_path = cli.get_string("profile-json", "");
  if (!profile_path.empty()) opts.runtime.profile = true;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, devices);

  svc::Service service(cluster, cfg);
  const svc::ServiceReport rep = service.run();
  svc::print_summary(std::cout, rep, cfg);

  const std::string json_path = cli.get_string("json", "");
  if (!json_path.empty()) {
    std::ofstream out(json_path);
    svc::write_report_json(out, rep, cfg);
    std::cout << "wrote " << json_path << "\n";
  }
  const std::string metrics_path = cli.get_string("metrics-json", "");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path);
    obs::write_metrics_json(out, service.metrics().snapshot("serve"));
    std::cout << "wrote " << metrics_path << "\n";
  }
  if (!profile_path.empty()) {
    // Wrapper form (several runtimes in one process), as bench_common's
    // Telemetry writes for device sweeps: one report per replica device,
    // covering the real calibration jobs that ran on it.
    std::ofstream out(profile_path);
    out << "{\n  \"schema\": \"" << obs::kProfileSchema
        << "\",\n  \"runs\": [";
    for (int d = 0; d < devices; ++d) {
      out << (d == 0 ? "\n" : ",\n") << "    {\"name\": \"shard"
          << d % shards;
      if (cfg.replicas > 1) out << "r" << d / shards;
      out << "\", \"profile\": ";
      obs::write_profile_json(out, cluster.runtime(d).profiler()->report());
      out << "}";
    }
    out << "\n  ]\n}\n";
    std::cout << "wrote " << profile_path << "\n";
  }

  if (!ts_path.empty() && service.timeseries() != nullptr) {
    const obs::TimeSeriesReport tsrep = service.timeseries()->report();
    {
      std::ofstream out(ts_path);
      obs::write_timeseries_json(out, tsrep);
      std::cout << "wrote " << ts_path << "\n";
    }
    // Exact reconciliation: every per-window count must sum back to the
    // end-of-run svc.* totals — a dropped or double-counted window is a
    // telemetry bug, not noise.
    auto series_total = [&](const std::string& name) -> std::uint64_t {
      for (const auto& s : tsrep.series) {
        if (s.name != name) continue;
        std::uint64_t windows = 0;
        for (const auto& w : s.windows) windows += w.count;
        if (windows != s.total_count) return ~0ull;  // internal mismatch
        return s.total_count;
      }
      return 0;
    };
    bool ok = true;
    auto check = [&](const char* name, std::uint64_t expect) {
      const std::uint64_t got = series_total(name);
      if (got != expect) {
        std::cerr << "FAIL: timeseries " << name << " windows sum to "
                  << got << ", end-of-run total is " << expect << "\n";
        ok = false;
      }
    };
    check("svc.offered", rep.offered);
    check("svc.completed", rep.completed);
    check("svc.shed", rep.shed);
    check("svc.latency.ps", rep.completed);
    if (!ok) return 1;
    std::cout << "timeseries reconciliation: OK (offered " << rep.offered
              << ", completed " << rep.completed << ", shed " << rep.shed
              << " across " << tsrep.series.size() << " series)\n";
  }
  if (!bb_path.empty()) {
    // The service dumps on the first degradation; quiet runs still get an
    // end-of-run snapshot so the triage tooling always has input.
    std::ifstream probe(bb_path);
    if (!probe.good()) {
      std::ofstream out(bb_path);
      service.write_blackbox(out, "serve snapshot (end of run)", 0);
    }
    std::cout << "wrote " << bb_path << "\n";
  }

  // Shed-not-hang invariant: every offered query was answered or refused.
  if (rep.hung != 0) {
    std::cerr << "FAIL: " << rep.hung << " hung queries\n";
    return 1;
  }
  return 0;
}
