// Host-time microbenchmarks of TSHMEM implementation internals (google-
// benchmark). Unlike the figure benches, these measure *wall-clock* cost of
// the library's own machinery: symmetric-heap operations, UDN queue
// round-trips, address classification, and the virtual-clock primitives.
#include <benchmark/benchmark.h>

#include <vector>

#include "sim/cache_sim.hpp"
#include "sim/clock.hpp"
#include "sim/mem_model.hpp"
#include "sim/topology.hpp"
#include "tshmem/symheap.hpp"
#include "util/rng.hpp"

namespace {

void BM_SymHeapAllocFree(benchmark::State& state) {
  const auto block = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> storage(8 << 20);
  tshmem::SymHeap heap(storage.data(), storage.size());
  for (auto _ : state) {
    void* p = heap.alloc(block);
    benchmark::DoNotOptimize(p);
    heap.free(p);
  }
}
BENCHMARK(BM_SymHeapAllocFree)->Arg(64)->Arg(4096)->Arg(1 << 20);

void BM_SymHeapFragmentedAlloc(benchmark::State& state) {
  std::vector<std::byte> storage(8 << 20);
  tshmem::SymHeap heap(storage.data(), storage.size());
  // Build a fragmented heap: allocate many, free every other block.
  std::vector<void*> blocks;
  for (int i = 0; i < 512; ++i) blocks.push_back(heap.alloc(4096));
  for (std::size_t i = 0; i < blocks.size(); i += 2) heap.free(blocks[i]);
  for (auto _ : state) {
    void* p = heap.alloc(2048);  // fits in a freed slot (first fit scan)
    benchmark::DoNotOptimize(p);
    heap.free(p);
  }
}
BENCHMARK(BM_SymHeapFragmentedAlloc);

void BM_RouteComputation(benchmark::State& state) {
  const tilesim::Topology topo(6, 6);
  tshmem_util::Xoshiro256 rng(1);
  for (auto _ : state) {
    const int a = static_cast<int>(rng.below(36));
    const int b = static_cast<int>(rng.below(36));
    benchmark::DoNotOptimize(topo.hops(a, b));
  }
}
BENCHMARK(BM_RouteComputation);

void BM_MemModelCopyCost(benchmark::State& state) {
  const tilesim::MemModel model(tilesim::tile_gx36());
  tilesim::CopyRequest req;
  req.bytes = static_cast<std::size_t>(state.range(0));
  req.src = tilesim::MemSpace::kShared;
  req.dst = tilesim::MemSpace::kShared;
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.copy_cost_ps(req));
  }
}
BENCHMARK(BM_MemModelCopyCost)->Arg(64)->Arg(1 << 20);

void BM_SimClockAdvance(benchmark::State& state) {
  tilesim::SimClock clock;
  for (auto _ : state) {
    clock.advance(1000);
    benchmark::DoNotOptimize(clock.now());
  }
}
BENCHMARK(BM_SimClockAdvance);

void BM_CacheSimAccess(benchmark::State& state) {
  tilesim::CacheSim sim(tilesim::tile_gx36());
  std::uint64_t addr = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.access(addr, tilesim::Homing::kHashForHome));
    addr += 64;
    if (addr > (1 << 22)) addr = 0;
  }
}
BENCHMARK(BM_CacheSimAccess);

void BM_Xoshiro(benchmark::State& state) {
  tshmem_util::Xoshiro256 rng(9);
  for (auto _ : state) benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_Xoshiro);

}  // namespace

BENCHMARK_MAIN();
