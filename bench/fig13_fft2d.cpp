// Figure 13 — 2D-FFT on 1024x1024 complex floats: execution time and
// speedup versus tile count, on both devices.
//
// Reproduces: Gx speedup leveling off around 5 (computational serialization
// of the final transpose); execution times near 0.23 s (Gx36) / 0.62 s
// (Pro64) at 32 tiles; the roughly order-of-magnitude serial-time gap from
// the Pro's software floating point.
#include <iostream>
#include <vector>

#include "apps/fft.hpp"
#include "bench_common.hpp"
#include "tshmem/runtime.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  const auto n = static_cast<std::size_t>(cli.get_int("n", 1024));
  tshmem_util::print_banner(
      std::cout, "Figure 13",
      "2D-FFT on " + std::to_string(n) + "x" + std::to_string(n) +
          " complex floats");

  tshmem_util::Table table({"tiles", "device", "exec (s)", "speedup",
                            "row fft (s)", "transpose (s)", "col fft (s)",
                            "final transpose (s)"});
  std::vector<bench::PaperCheck> checks;
  const std::vector<int> tile_counts{1, 2, 4, 8, 16, 32};

  bench::Telemetry telemetry(cli);
  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tshmem::RuntimeOptions opts;
    opts.heap_per_pe = 2 * n * n * sizeof(apps::cfloat) + (4 << 20);
    telemetry.configure(opts);
    tshmem::Runtime rt(*cfg, opts);
    telemetry.attach(rt);
    double serial_s = 0.0;
    double at32_s = 0.0;
    for (const int tiles : tile_counts) {
      apps::Fft2dTiming t{};
      rt.run(tiles, [&](tshmem::Context& ctx) {
        const auto r = apps::fft2d_run(ctx, n, /*seed=*/2013);
        if (ctx.my_pe() == 0) t = r.timing;
      });
      const double secs = tshmem_util::ps_to_sec(t.total_ps);
      if (tiles == 1) serial_s = secs;
      if (tiles == 32) at32_s = secs;
      table.add_row(
          {tshmem_util::Table::integer(tiles), cfg->short_name,
           tshmem_util::Table::num(secs, 3),
           tshmem_util::Table::num(serial_s / secs, 2),
           tshmem_util::Table::num(tshmem_util::ps_to_sec(t.row_fft_ps), 3),
           tshmem_util::Table::num(tshmem_util::ps_to_sec(t.transpose_ps), 3),
           tshmem_util::Table::num(tshmem_util::ps_to_sec(t.col_fft_ps), 3),
           tshmem_util::Table::num(
               tshmem_util::ps_to_sec(t.final_transpose_ps), 3)});
    }
    if (n == 1024) {
      const bool gx = cfg->short_name == "gx36";
      checks.push_back({std::string(cfg->short_name) + " exec @32 tiles",
                        at32_s, gx ? 0.23 : 0.62, "s"});
      checks.push_back({std::string(cfg->short_name) + " speedup @32",
                        serial_s / at32_s, gx ? 5.0 : 16.0, "x"});
    }
    telemetry.collect(rt);
  }

  bench::emit(cli, table);
  bench::print_checks("Figure 13", checks);
  telemetry.write();
  return 0;
}
