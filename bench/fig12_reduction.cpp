// Figure 12 — integer summation reduction aggregate bandwidth versus
// per-tile array size and tile count, on both devices.
//
// Reproduces: serialization of data retrieval and reduction processing on
// the root tile keeps aggregate bandwidth flat in the tile count, peaking
// around 150 MB/s at 36 tiles on the TILE-Gx36.
#include <algorithm>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "collective_bench.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  const auto max_bytes =
      static_cast<std::size_t>(cli.get_int("max-bytes", 1 << 20));
  tshmem_util::print_banner(std::cout, "Figure 12",
                            "Integer summation reduction aggregate bandwidth");

  tshmem_util::Table table({"size/tile", "tiles", "device", "agg MB/s"});
  std::vector<bench::PaperCheck> checks;

  bench::Telemetry telemetry(cli);
  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tshmem::RuntimeOptions opts;
    opts.heap_per_pe = 4 * max_bytes + (1 << 20);
    telemetry.configure(opts);
    tshmem::Runtime rt(*cfg, opts);
    telemetry.attach(rt);
    double peak36 = 0, at8 = 0, at36 = 0;
    for (const int tiles : bench::collective_tile_counts()) {
      for (const std::size_t size : bench::pow2_sizes(256, max_bytes)) {
        const double mbps = bench::aggregate_mbps(
            rt, bench::CollectiveOp::kReduce, tiles, size);
        table.add_row({tshmem_util::Table::bytes(size),
                       tshmem_util::Table::integer(tiles), cfg->short_name,
                       tshmem_util::Table::num(mbps, 1)});
        if (tiles == 36) peak36 = std::max(peak36, mbps);
        if (size == 64 * 1024 && tiles == 8) at8 = mbps;
        if (size == 64 * 1024 && tiles == 36) at36 = mbps;
      }
    }
    if (cfg->short_name == "gx36") {
      checks.push_back({"gx36 peak aggregate @36 tiles", peak36, 150, "MB/s"});
    }
    checks.push_back({std::string(cfg->short_name) +
                          " flat scaling (agg @36 / @8)",
                      at36 / at8, 1.0, "x"});
    telemetry.collect(rt);
  }

  bench::emit(cli, table);
  bench::print_checks("Figure 12", checks);
  telemetry.write();
  return 0;
}
