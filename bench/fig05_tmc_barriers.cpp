// Figure 5 — latencies of TMC spin and sync barriers versus the number of
// participating tiles, on both devices.
//
// Reproduces: spin << sync everywhere; Gx spin (1.5 us @ 36) far below Pro
// spin (47.2 us @ 36); sync barriers at 321 us (Gx) / 786 us (Pro) @ 36.
#include <iostream>
#include <mutex>
#include <vector>

#include "bench_common.hpp"
#include "sim/device.hpp"
#include "tmc/barrier.hpp"

namespace {

template <typename Barrier>
tilesim::ps_t measured_latency(tilesim::Device& device, int tiles) {
  Barrier barrier(device, tiles);
  tilesim::ps_t latency = 0;
  device.run(tiles, [&](tilesim::Tile& tile) {
    barrier.wait(tile);  // warm-up round
    device.sync_and_reset_clocks();
    const auto t0 = tile.clock().now();
    barrier.wait(tile);
    if (tile.id() == 0) latency = tile.clock().now() - t0;
    device.host_sync();
  });
  return latency;
}

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"csv"});
  tshmem_util::print_banner(std::cout, "Figure 5",
                            "Latencies of TMC spin and sync barriers");

  tshmem_util::Table table(
      {"tiles", "device", "spin (us)", "sync (us)"});
  std::vector<bench::PaperCheck> checks;
  bench::Telemetry telemetry(cli);

  for (const auto* cfg : bench::devices_from_cli(cli)) {
    tilesim::Device device(*cfg);
    telemetry.attach(device);
    for (int tiles = 2; tiles <= 36; tiles += 2) {
      const auto spin = measured_latency<tmc::SpinBarrier>(device, tiles);
      const auto sync = measured_latency<tmc::SyncBarrier>(device, tiles);
      table.add_row({tshmem_util::Table::integer(tiles), cfg->short_name,
                     tshmem_util::Table::num(tshmem_util::ps_to_us(spin), 2),
                     tshmem_util::Table::num(tshmem_util::ps_to_us(sync), 1)});
      if (tiles == 36) {
        const bool gx = cfg->short_name == "gx36";
        checks.push_back({std::string(cfg->short_name) + " spin @36",
                          tshmem_util::ps_to_us(spin), gx ? 1.5 : 47.2, "us"});
        checks.push_back({std::string(cfg->short_name) + " sync @36",
                          tshmem_util::ps_to_us(sync), gx ? 321.0 : 786.0,
                          "us"});
      }
    }
    telemetry.collect(device, std::string(cfg->short_name));
  }

  bench::emit(cli, table);
  bench::print_checks("Figure 5", checks);
  telemetry.write();
  return 0;
}
