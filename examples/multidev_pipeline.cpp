// Multi-device pipeline example: two TILE-Gx8036 devices joined by an
// mPIPE 10GbE link run a two-stage processing pipeline — device 0's PEs
// produce and pre-process data blocks, push them to partner PEs on device 1
// with cross-device one-sided puts, and device 1's PEs reduce them; the
// final verdict returns with a cluster-wide broadcast.
//
// This exercises the paper's §VI future-work direction end to end:
//   ./multidev_pipeline --pes 8 --blocks 16 --block-kb 64
#include <cstdio>
#include <numeric>
#include <vector>

#include "tshmem/cluster.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv);
  const int pes = static_cast<int>(cli.get_int("pes", 8));
  const int blocks = static_cast<int>(cli.get_int("blocks", 16));
  const std::size_t block_elems =
      static_cast<std::size_t>(cli.get_int("block-kb", 64)) * 1024 /
      sizeof(long);
  std::printf(
      "pipeline: 2 x TILE-Gx8036 over mPIPE, %d PEs/device, %d blocks of "
      "%zu KB\n",
      pes, blocks, block_elems * sizeof(long) / 1024);

  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe =
      2 * block_elems * sizeof(long) + (std::size_t{4} << 20);
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts);

  long expected = 0;
  long actual = -1;
  tilesim::ps_t elapsed = 0;
  cluster.run(pes, [&](tshmem::ClusterContext& ctx) {
    auto& sh = ctx.local();
    long* inbox = sh.shmalloc_n<long>(block_elems);
    long* flag = sh.shmalloc_n<long>(1);
    long* ack = sh.shmalloc_n<long>(1);  // consumer -> producer flow control
    long* partial = sh.shmalloc_n<long>(1);
    long* verdict = sh.shmalloc_n<long>(1);
    *flag = 0;
    *ack = 0;
    *partial = 0;
    ctx.barrier_all();
    sh.harness_sync_reset();
    const auto t0 = sh.clock().now();

    const int me = ctx.global_pe();
    if (ctx.device_index() == 0) {
      // Producer: generate blocks, pre-process (square each element), push
      // to my partner PE on device 1, then raise its flag.
      const int partner = me + pes;
      std::vector<long> block(block_elems);
      for (int b = 0; b < blocks; ++b) {
        for (std::size_t i = 0; i < block_elems; ++i) {
          block[i] = (me + 1) * (b + 1);
        }
        for (auto& v : block) v = v * v;
        sh.charge_int_ops(block_elems * 2);
        ctx.put(inbox, block.data(), block_elems * sizeof(long), partner);
        const long ready = b + 1;
        ctx.put(flag, &ready, sizeof(long), partner);
        // Flow control: the inbox is a single buffer — wait until the
        // consumer acknowledges this block before overwriting it.
        sh.wait_until(ack, tshmem::Cmp::kGe, ready);
      }
    } else {
      // Consumer: wait for each block, fold it into my partial sum.
      long sum = 0;
      for (int b = 0; b < blocks; ++b) {
        sh.wait_until(flag, tshmem::Cmp::kGe, static_cast<long>(b + 1));
        for (std::size_t i = 0; i < block_elems; ++i) sum += inbox[i];
        sh.charge_int_ops(block_elems);
        const long done = b + 1;
        ctx.put(ack, &done, sizeof(long), me - pes);
      }
      *partial = sum;
      sh.quiet();
    }
    ctx.barrier_all();

    // Device-1 PE 0 combines the partials and broadcasts the verdict
    // cluster-wide.
    if (ctx.device_index() == 1 && sh.my_pe() == 0) {
      long total = 0;
      for (int p = 0; p < pes; ++p) {
        long v = 0;
        ctx.get(&v, partial, sizeof(long), pes + p);
        total += v;
      }
      *verdict = total;
      sh.quiet();
    }
    ctx.barrier_all();
    ctx.broadcast(verdict, verdict, sizeof(long), pes);
    ctx.barrier_all();

    if (me == 0) {
      actual = *verdict;
      elapsed = sh.clock().now() - t0;
    }
    sh.harness_sync();
    sh.shfree(verdict);
    sh.shfree(partial);
    sh.shfree(ack);
    sh.shfree(flag);
    sh.shfree(inbox);
  });

  // Expected: sum over producers p (1..pes) and blocks b (1..blocks) of
  // block_elems * (p*b)^2.
  for (int p = 1; p <= pes; ++p) {
    for (int b = 1; b <= blocks; ++b) {
      expected += static_cast<long>(block_elems) * static_cast<long>(p) * p *
                  b * b;
    }
  }
  std::printf("pipeline verdict: %ld (expected %ld) %s\n", actual, expected,
              actual == expected ? "(OK)" : "(FAILED)");
  std::printf("virtual device time: %.3f ms (includes %d x %d cross-device "
              "block transfers over the 10G link)\n",
              tshmem_util::ps_to_ms(elapsed), pes, blocks);
  return actual == expected ? 0 : 1;
}
