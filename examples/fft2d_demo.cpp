// 2D-FFT demo (the paper's §V-A case study as a standalone application):
// runs the row-distributed parallel FFT with its distributed transpose on
// a chosen device and PE count, verifies the result against the serial
// reference, and reports the per-phase virtual-time breakdown.
//
//   ./fft2d_demo --device pro64 --pes 16 --n 256
//
// Pass --trace <file.csv> to dump the per-tile virtual-time timeline
// (compute/copy events) for offline visualization.
#include <cmath>
#include <cstdio>
#include <fstream>
#include <vector>

#include "apps/fft.hpp"
#include "sim/trace.hpp"
#include "tshmem/runtime.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv, {"no-verify"});
  const auto& device =
      tilesim::device_by_name(cli.get_string("device", "gx36"));
  const int npes = static_cast<int>(cli.get_int("pes", 8));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 256));
  const std::uint64_t seed = static_cast<std::uint64_t>(cli.get_int("seed", 7));
  const bool verify = !cli.get_flag("no-verify");
  std::printf("2D-FFT %zux%zu complex floats, %d PEs on %s\n", n, n, npes,
              device.name.c_str());

  tshmem::RuntimeOptions opts;
  opts.heap_per_pe = 2 * n * n * sizeof(apps::cfloat) + (4 << 20);
  tshmem::Runtime rt(device, opts);
  const std::string trace_path = cli.get_string("trace", "");
  tilesim::TraceRecorder tracer(rt.device().tile_count());
  if (!trace_path.empty()) rt.device().attach_tracer(&tracer);
  apps::Fft2dResult result;
  rt.run(npes, [&](tshmem::Context& ctx) {
    auto r = apps::fft2d_run(ctx, n, seed);
    if (ctx.my_pe() == 0) result = std::move(r);
  });
  if (!trace_path.empty()) {
    rt.device().attach_tracer(nullptr);
    std::ofstream out(trace_path);
    tracer.dump_csv(out);
    std::printf("wrote %zu trace events to %s\n", tracer.event_count(),
                trace_path.c_str());
  }

  const auto& t = result.timing;
  std::printf("phase breakdown (virtual device time):\n");
  std::printf("  row FFTs          %10.3f ms\n", tshmem_util::ps_to_ms(t.row_fft_ps));
  std::printf("  distributed transpose %6.3f ms\n",
              tshmem_util::ps_to_ms(t.transpose_ps));
  std::printf("  column FFTs       %10.3f ms\n", tshmem_util::ps_to_ms(t.col_fft_ps));
  std::printf("  final transpose   %10.3f ms   <- serialized on PE 0 (Fig 13)\n",
              tshmem_util::ps_to_ms(t.final_transpose_ps));
  std::printf("  total             %10.3f ms\n", tshmem_util::ps_to_ms(t.total_ps));

  if (verify) {
    std::vector<apps::cfloat> reference(n * n);
    for (std::size_t r = 0; r < n; ++r) {
      for (std::size_t c = 0; c < n; ++c) {
        reference[r * n + c] = apps::fft2d_input(r, c, seed);
      }
    }
    apps::fft2d_reference(reference, n);
    double max_err = 0;
    for (std::size_t i = 0; i < n * n; ++i) {
      max_err =
          std::max<double>(max_err, std::abs(result.output[i] - reference[i]));
    }
    std::printf("verification vs serial reference: max |err| = %.3g %s\n",
                max_err, max_err < 1e-2 ? "(OK)" : "(FAILED)");
    return max_err < 1e-2 ? 0 : 1;
  }
  return 0;
}
