// SUMMA matrix multiplication: C = A x B on a 2D process grid, the classic
// PGAS collective workout. Each PE owns one block of each matrix; every
// step k broadcasts an A-panel along its process *row* and a B-panel along
// its process *column* — both are strided OpenSHMEM active sets
// (PE_start, logPE_stride, PE_size), exercising exactly the active-set
// machinery of paper Table I on non-trivial strides.
//
//   ./matmul_summa --device gx36 --rows 2 --cols 2 --n 128
//
// The grid must be square with power-of-two dims (active-set strides are
// log2-based and SUMMA steps equal the grid order).
#include <cmath>
#include <cstdio>
#include <vector>

#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"

namespace {

bool is_pow2(int v) { return v > 0 && (v & (v - 1)) == 0; }

int log2_of(int v) {
  int k = 0;
  while ((1 << k) < v) ++k;
  return k;
}

double elem(std::size_t r, std::size_t c, std::uint64_t seed) {
  tshmem_util::SplitMix64 sm(seed ^ (r * 1315423911u) ^ (c * 2654435761u));
  return static_cast<double>(sm.next() % 1000) / 500.0 - 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv);
  const auto& device =
      tilesim::device_by_name(cli.get_string("device", "gx36"));
  const int pr = static_cast<int>(cli.get_int("rows", 2));
  const int pc = static_cast<int>(cli.get_int("cols", 2));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 128));
  if (!is_pow2(pr) || !is_pow2(pc) || pr != pc) {
    std::fprintf(stderr, "grid must be square with power-of-two dims\n");
    return 2;
  }
  if (n % static_cast<std::size_t>(pr) != 0 ||
      n % static_cast<std::size_t>(pc) != 0) {
    std::fprintf(stderr, "n must be divisible by both grid dims\n");
    return 2;
  }
  const int npes = pr * pc;
  const std::size_t br = n / static_cast<std::size_t>(pr);  // block rows
  const std::size_t bc = n / static_cast<std::size_t>(pc);  // block cols
  std::printf("SUMMA %zux%zu on a %dx%d grid (%d PEs), %s\n", n, n, pr, pc,
              npes, device.name.c_str());

  tshmem::RuntimeOptions opts;
  opts.heap_per_pe = 6 * n * n * sizeof(double) / static_cast<std::size_t>(npes) +
                     (8 << 20);
  tshmem::Runtime rt(device, opts);
  std::vector<double> result(n * n);
  tilesim::ps_t elapsed = 0;

  rt.run(npes, [&](tshmem::Context& ctx) {
    const int me = ctx.my_pe();
    const int my_r = me / pc;
    const int my_c = me % pc;
    // Blocks are stored row-major; A block is br x bc, B block br x bc,
    // C block br x bc (square grid blocks over the k dimension use the
    // full-width panels below).
    auto* a = ctx.shmalloc_n<double>(br * bc);
    auto* b = ctx.shmalloc_n<double>(br * bc);
    auto* c = ctx.shmalloc_n<double>(br * bc);
    auto* a_panel = ctx.shmalloc_n<double>(br * bc);
    auto* b_panel = ctx.shmalloc_n<double>(br * bc);
    for (std::size_t i = 0; i < br; ++i) {
      for (std::size_t j = 0; j < bc; ++j) {
        const std::size_t gr = static_cast<std::size_t>(my_r) * br + i;
        const std::size_t gc = static_cast<std::size_t>(my_c) * bc + j;
        a[i * bc + j] = elem(gr, gc, 0xaaaa);
        b[i * bc + j] = elem(gr, gc, 0xbbbb);
        c[i * bc + j] = 0.0;
      }
    }
    ctx.barrier_all();
    ctx.harness_sync_reset();
    const auto t0 = ctx.clock().now();

    // SUMMA super-steps: in step k, the PE in column k of each process row
    // broadcasts its A block along the row; the PE in row k of each
    // process column broadcasts its B block down the column.
    const tshmem::ActiveSet my_row{my_r * pc, 0, pc};
    const tshmem::ActiveSet my_col{my_c, log2_of(pc), pr};
    for (int k = 0; k < pc; ++k) {
      // Row broadcast of A(my_r, k).
      if (my_c == k) {
        std::memcpy(a_panel, a, br * bc * sizeof(double));
        ctx.charge_mem_ops(br * bc);
      }
      ctx.broadcast(a_panel, a_panel, br * bc * sizeof(double), k, my_row);
      // Column broadcast of B(k, my_c).
      if (my_r == k) {
        std::memcpy(b_panel, b, br * bc * sizeof(double));
        ctx.charge_mem_ops(br * bc);
      }
      ctx.broadcast(b_panel, b_panel, br * bc * sizeof(double), k, my_col);
      // Local GEMM: C += A_panel * B_panel (square br x br blocks).
      for (std::size_t i = 0; i < br; ++i) {
        for (std::size_t kk = 0; kk < bc; ++kk) {
          const double av = a_panel[i * bc + kk];
          for (std::size_t j = 0; j < bc; ++j) {
            c[i * bc + j] += av * b_panel[kk * bc + j];
          }
        }
      }
      ctx.charge_fp_ops(2 * br * bc * bc);
      ctx.barrier_all();
    }
    const auto t1 = ctx.clock().now();

    // Gather C on PE 0 for verification.
    if (me == 0) {
      for (int pe = 0; pe < npes; ++pe) {
        std::vector<double> blk(br * bc);
        ctx.get(blk.data(), c, br * bc * sizeof(double), pe);
        const int r0 = (pe / pc) * static_cast<int>(br);
        const int c0 = (pe % pc) * static_cast<int>(bc);
        for (std::size_t i = 0; i < br; ++i) {
          for (std::size_t j = 0; j < bc; ++j) {
            result[(static_cast<std::size_t>(r0) + i) * n +
                   static_cast<std::size_t>(c0) + j] = blk[i * bc + j];
          }
        }
      }
      elapsed = t1 - t0;
    }
    ctx.barrier_all();
    ctx.shfree(b_panel);
    ctx.shfree(a_panel);
    ctx.shfree(c);
    ctx.shfree(b);
    ctx.shfree(a);
  });

  // Serial verification.
  double max_err = 0.0;
  for (std::size_t i = 0; i < n; i += std::max<std::size_t>(1, n / 16)) {
    for (std::size_t j = 0; j < n; j += std::max<std::size_t>(1, n / 16)) {
      double acc = 0.0;
      for (std::size_t k = 0; k < n; ++k) {
        acc += elem(i, k, 0xaaaa) * elem(k, j, 0xbbbb);
      }
      max_err = std::max(max_err, std::abs(acc - result[i * n + j]));
    }
  }
  std::printf("virtual device time: %.3f ms; sampled max |err| = %.3g %s\n",
              tshmem_util::ps_to_ms(elapsed), max_err,
              max_err < 1e-9 ? "(OK)" : "(FAILED)");
  return max_err < 1e-9 ? 0 : 1;
}
