// Heat-diffusion stencil: a fourth example exercising the halo-exchange
// pattern SHMEM was designed for — each PE owns a slab of a 2D grid and
// exchanges boundary rows with its neighbors via one-sided puts plus
// point-to-point synchronization (shmem_wait), then the PEs jointly track
// convergence with a max-reduction.
//
//   ./heat_stencil --device gx36 --pes 8 --n 256 --iters 200
#include <cmath>
#include <cstdio>
#include <vector>

#include "tshmem/api.hpp"
#include "tshmem/runtime.hpp"
#include "util/cli.hpp"

namespace {

/// Serial reference for verification.
std::vector<double> serial_heat(std::size_t n, int iters) {
  std::vector<double> grid(n * n, 0.0), next(n * n, 0.0);
  for (std::size_t c = 0; c < n; ++c) grid[c] = next[c] = 100.0;  // hot top edge
  for (int it = 0; it < iters; ++it) {
    for (std::size_t r = 1; r + 1 < n; ++r) {
      for (std::size_t c = 1; c + 1 < n; ++c) {
        next[r * n + c] = 0.25 * (grid[(r - 1) * n + c] + grid[(r + 1) * n + c] +
                                  grid[r * n + c - 1] + grid[r * n + c + 1]);
      }
    }
    std::swap(grid, next);
    next = grid;  // keep boundaries
  }
  return grid;
}

}  // namespace

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv);
  const auto& device =
      tilesim::device_by_name(cli.get_string("device", "gx36"));
  const int npes = static_cast<int>(cli.get_int("pes", 8));
  const auto n = static_cast<std::size_t>(cli.get_int("n", 128));
  const int iters = static_cast<int>(cli.get_int("iters", 100));
  if (n % static_cast<std::size_t>(npes) != 0) {
    std::fprintf(stderr, "n (%zu) must be divisible by pes (%d)\n", n, npes);
    return 2;
  }
  std::printf("heat stencil %zux%zu, %d iterations, %d PEs on %s\n", n, n,
              iters, npes, device.name.c_str());

  std::vector<double> result(n * n);
  tilesim::ps_t elapsed = 0;
  tshmem::run_spmd(device, npes, [&](tshmem::Context& ctx) {
    using namespace tshmem::api;
    start_pes(0);
    const int me = _my_pe();
    const int np = _num_pes();
    const std::size_t rows = n / static_cast<std::size_t>(np);

    // Slab with one halo row above and below.
    auto* slab = static_cast<double*>(shmalloc((rows + 2) * n * sizeof(double)));
    auto* next = static_cast<double*>(shmalloc((rows + 2) * n * sizeof(double)));
    auto* halo_flags = static_cast<long*>(shmalloc(2 * sizeof(long)));
    halo_flags[0] = halo_flags[1] = 0;
    for (std::size_t i = 0; i < (rows + 2) * n; ++i) slab[i] = next[i] = 0.0;
    if (me == 0) {
      for (std::size_t c = 0; c < n; ++c) slab[1 * n + c] = next[1 * n + c] = 100.0;
    }
    shmem_barrier_all();
    ctx.harness_sync_reset();
    const auto t0 = ctx.clock().now();

    for (int it = 0; it < iters; ++it) {
      // Halo exchange: push my edge rows into my neighbors' halo rows,
      // then raise their flag (fence orders data before flag).
      if (me > 0) {
        shmem_putmem(&slab[(rows + 1) * n], &slab[1 * n], n * sizeof(double),
                     me - 1);
        shmem_fence();
        shmem_long_p(&halo_flags[1], it + 1, me - 1);
      }
      if (me < np - 1) {
        shmem_putmem(&slab[0], &slab[rows * n], n * sizeof(double), me + 1);
        shmem_fence();
        shmem_long_p(&halo_flags[0], it + 1, me + 1);
      }
      if (me > 0) shmem_long_wait_until(&halo_flags[0], SHMEM_CMP_GE, it + 1);
      if (me < np - 1) {
        shmem_long_wait_until(&halo_flags[1], SHMEM_CMP_GE, it + 1);
      }

      // Jacobi update over my interior rows (global boundary rows fixed).
      const std::size_t gr0 = static_cast<std::size_t>(me) * rows;
      for (std::size_t lr = 1; lr <= rows; ++lr) {
        const std::size_t gr = gr0 + lr - 1;
        if (gr == 0 || gr == n - 1) continue;
        for (std::size_t c = 1; c + 1 < n; ++c) {
          next[lr * n + c] =
              0.25 * (slab[(lr - 1) * n + c] + slab[(lr + 1) * n + c] +
                      slab[lr * n + c - 1] + slab[lr * n + c + 1]);
        }
      }
      ctx.charge_fp_ops(rows * (n - 2) * 4);
      for (std::size_t i = n; i < (rows + 1) * n; ++i) slab[i] = next[i];
      ctx.charge_mem_ops(rows * n);
      shmem_barrier_all();
    }
    const auto t1 = ctx.clock().now();

    // Gather the slabs on PE 0 for verification.
    if (me == 0) {
      for (int pe = 0; pe < np; ++pe) {
        shmem_getmem(&result[static_cast<std::size_t>(pe) * rows * n],
                     &slab[1 * n], rows * n * sizeof(double), pe);
      }
      elapsed = t1 - t0;
    }
    shmem_barrier_all();
    shfree(halo_flags);
    shfree(next);
    shfree(slab);
    shmem_finalize();
  });

  const auto reference = serial_heat(n, iters);
  double max_err = 0.0;
  for (std::size_t i = 0; i < n * n; ++i) {
    max_err = std::max(max_err, std::abs(result[i] - reference[i]));
  }
  std::printf("virtual device time: %.3f ms; max |err| vs serial = %.3g %s\n",
              tshmem_util::ps_to_ms(elapsed), max_err,
              max_err < 1e-9 ? "(OK)" : "(FAILED)");
  return max_err < 1e-9 ? 0 : 1;
}
