// CBIR demo (the paper's §V-B case study as a standalone application):
// builds a synthetic image database, distributes it across PEs, runs one
// autocorrelogram retrieval query, and prints the top matches with the
// parallel/serial phase split behind Fig 14's speedup ceiling.
//
//   ./cbir_search --device gx36 --pes 16 --images 2000 --query 123
#include <cstdio>

#include "apps/cbir.hpp"
#include "tshmem/runtime.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv);
  const auto& device =
      tilesim::device_by_name(cli.get_string("device", "gx36"));
  const int npes = static_cast<int>(cli.get_int("pes", 8));
  apps::cbir::Params params;
  params.images = static_cast<int>(cli.get_int("images", 1000));
  params.query_index = static_cast<int>(cli.get_int("query", 123));
  params.seed = static_cast<std::uint64_t>(cli.get_int("seed", 0x7351));
  std::printf("CBIR over %d synthetic %dx%d images, %d PEs on %s\n",
              params.images, params.width, params.height, npes,
              device.name.c_str());

  tshmem::RuntimeOptions opts;
  opts.heap_per_pe =
      static_cast<std::size_t>(params.images) * 128 * 128 + (16 << 20);
  tshmem::Runtime rt(device, opts);
  apps::cbir::QueryResult result;
  rt.run(npes, [&](tshmem::Context& ctx) {
    auto r = apps::cbir::run_query(ctx, params);
    if (ctx.my_pe() == 0) result = std::move(r);
  });

  std::printf("query image: #%d\n", params.query_index % params.images);
  std::printf("best match:  #%d (distance %.4f)%s\n", result.best_image,
              result.best_distance,
              result.best_image == params.query_index % params.images
                  ? "  <- query retrieved itself"
                  : "");
  std::printf("top matches:");
  for (const int idx : result.top(5)) std::printf(" #%d", idx);
  std::printf("\n");
  std::printf("virtual device time: %.3f ms total = %.3f ms parallel extract "
              "+ %.3f ms serial gather/merge/re-rank\n",
              tshmem_util::ps_to_ms(result.elapsed_ps),
              tshmem_util::ps_to_ms(result.extract_ps),
              tshmem_util::ps_to_ms(result.rank_ps));
  return result.best_image == params.query_index % params.images ? 0 : 1;
}
