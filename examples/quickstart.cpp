// Quickstart: the canonical TSHMEM "hello world" — launch PEs on a
// simulated Tilera device, allocate symmetric memory, pass data around a
// ring with one-sided puts, synchronize with barriers, and reduce.
//
//   ./quickstart --device gx36 --pes 8
//
// The code inside run_spmd() is plain OpenSHMEM v1.0 (paper Table I): it
// would compile against any compliant SHMEM library with the namespace
// qualifier removed.
#include <cstdio>

#include "tshmem/api.hpp"
#include "tshmem/runtime.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  const tshmem_util::Cli cli(argc, argv);
  const auto& device =
      tilesim::device_by_name(cli.get_string("device", "gx36"));
  const int npes = static_cast<int>(cli.get_int("pes", 8));
  std::printf("quickstart: %d PEs on %s\n", npes, device.name.c_str());

  tshmem::run_spmd(device, npes, [](tshmem::Context& ctx) {
    using namespace tshmem::api;
    start_pes(0);
    const int me = _my_pe();
    const int n = _num_pes();

    // --- one-sided ring put ------------------------------------------------
    auto* slot = static_cast<long*>(shmalloc(sizeof(long)));
    *slot = -1;
    shmem_barrier_all();
    shmem_long_p(slot, 100L + me, (me + 1) % n);  // put my id to my neighbor
    shmem_barrier_all();
    std::printf("PE %d received token %ld from PE %d\n", me, *slot,
                (me + n - 1) % n);

    // --- atomic ticket counter ----------------------------------------------
    auto* tickets = static_cast<long*>(shmalloc(sizeof(long)));
    if (me == 0) *tickets = 0;
    shmem_barrier_all();
    const long my_ticket = shmem_long_finc(tickets, 0);
    std::printf("PE %d drew ticket %ld\n", me, my_ticket);
    shmem_barrier_all();

    // --- reduction -----------------------------------------------------------
    auto* psync = static_cast<long*>(
        shmalloc(SHMEM_REDUCE_SYNC_SIZE * sizeof(long)));
    auto* pwrk = static_cast<int*>(
        shmalloc(SHMEM_REDUCE_MIN_WRKDATA_SIZE * sizeof(int)));
    auto* src = static_cast<int*>(shmalloc(sizeof(int)));
    auto* sum = static_cast<int*>(shmalloc(sizeof(int)));
    *src = me + 1;
    shmem_barrier_all();
    shmem_int_sum_to_all(sum, src, 1, 0, 0, n, pwrk, psync);
    if (me == 0) {
      std::printf("sum over PEs of (pe+1) = %d (expected %d)\n", *sum,
                  n * (n + 1) / 2);
      std::printf("virtual device time elapsed: %.2f us\n",
                  tshmem_util::ps_to_us(ctx.clock().now()));
    }
    shmem_barrier_all();

    shfree(sum);
    shfree(src);
    shfree(pwrk);
    shfree(psync);
    shfree(tickets);
    shfree(slot);
    shmem_finalize();  // the paper's proposed teardown extension (SIV-E)
  });
  return 0;
}
