// Tests for the analytic memory model: curve selection, homing factors,
// contention adjustments, and cost accounting.
#include <gtest/gtest.h>

#include "sim/mem_model.hpp"
#include "util/units.hpp"

namespace {

using tilesim::CopyRequest;
using tilesim::Homing;
using tilesim::MemModel;
using tilesim::MemSpace;

CopyRequest req(std::size_t bytes, MemSpace src, MemSpace dst,
                Homing homing = Homing::kHashForHome, int readers = 1,
                int writers = 1) {
  CopyRequest r;
  r.bytes = bytes;
  r.src = src;
  r.dst = dst;
  r.homing = homing;
  r.concurrent_readers = readers;
  r.concurrent_writers = writers;
  return r;
}

TEST(MemModel, CurveSelectionBySpaces) {
  const MemModel m(tilesim::tile_gx36());
  EXPECT_EQ(&m.curve_for(MemSpace::kShared, MemSpace::kShared),
            &tilesim::tile_gx36().bw_shared_to_shared);
  EXPECT_EQ(&m.curve_for(MemSpace::kPrivate, MemSpace::kShared),
            &tilesim::tile_gx36().bw_private_to_shared);
  EXPECT_EQ(&m.curve_for(MemSpace::kShared, MemSpace::kPrivate),
            &tilesim::tile_gx36().bw_shared_to_private);
  EXPECT_EQ(&m.curve_for(MemSpace::kPrivate, MemSpace::kPrivate),
            &tilesim::tile_gx36().bw_private_to_private);
}

TEST(MemModel, CostIncludesCallOverhead) {
  const MemModel m(tilesim::tile_gx36());
  const auto zero = m.copy_cost_ps(req(0, MemSpace::kShared, MemSpace::kShared));
  EXPECT_EQ(zero, tilesim::tile_gx36().copy_call_overhead_ps);
  const auto some = m.copy_cost_ps(req(4096, MemSpace::kShared, MemSpace::kShared));
  EXPECT_GT(some, zero);
}

TEST(MemModel, CostGrowsMonotonicallyWithSize) {
  const MemModel m(tilesim::tile_gx36());
  tilesim::ps_t prev = 0;
  for (std::size_t bytes = 8; bytes <= (64 << 20); bytes *= 4) {
    const auto cost =
        m.copy_cost_ps(req(bytes, MemSpace::kShared, MemSpace::kShared));
    EXPECT_GT(cost, prev) << "bytes=" << bytes;
    prev = cost;
  }
}

TEST(MemModel, LocalHomingBoostsSmallPenalizesLarge) {
  const MemModel m(tilesim::tile_gx36());
  // Cache-resident: local homing is faster than hash-for-home.
  const double hash_small = m.effective_mbps(
      req(64 * 1024, MemSpace::kShared, MemSpace::kShared, Homing::kHashForHome));
  const double local_small = m.effective_mbps(
      req(64 * 1024, MemSpace::kShared, MemSpace::kShared, Homing::kLocal));
  EXPECT_GT(local_small, hash_small);
  // Beyond L2: local homing loses the DDC (paper §III-A).
  const double hash_big = m.effective_mbps(
      req(4 << 20, MemSpace::kShared, MemSpace::kShared, Homing::kHashForHome));
  const double local_big = m.effective_mbps(
      req(4 << 20, MemSpace::kShared, MemSpace::kShared, Homing::kLocal));
  EXPECT_LT(local_big, hash_big);
}

TEST(MemModel, RemoteHomingSlightPenalty) {
  const MemModel m(tilesim::tile_gx36());
  const double hash = m.effective_mbps(
      req(64 * 1024, MemSpace::kShared, MemSpace::kShared));
  const double remote = m.effective_mbps(
      req(64 * 1024, MemSpace::kShared, MemSpace::kShared, Homing::kRemote));
  EXPECT_LT(remote, hash);
  EXPECT_GT(remote, hash * 0.8);
}

TEST(MemModel, ReadContentionOnlyOnSharedSource) {
  const MemModel m(tilesim::tile_gx36());
  const double solo = m.effective_mbps(
      req(32 * 1024, MemSpace::kShared, MemSpace::kPrivate));
  const double contended = m.effective_mbps(req(
      32 * 1024, MemSpace::kShared, MemSpace::kPrivate, Homing::kHashForHome,
      /*readers=*/16));
  EXPECT_LT(contended, solo);
  // Private sources see no read contention.
  const double priv = m.effective_mbps(req(32 * 1024, MemSpace::kPrivate,
                                           MemSpace::kPrivate,
                                           Homing::kHashForHome, 16));
  const double priv_solo = m.effective_mbps(
      req(32 * 1024, MemSpace::kPrivate, MemSpace::kPrivate));
  EXPECT_DOUBLE_EQ(priv, priv_solo);
}

TEST(MemModel, WriteContentionOnlyOnSharedTarget) {
  const MemModel m(tilesim::tile_pro64());
  const double solo = m.effective_mbps(
      req(32 * 1024, MemSpace::kPrivate, MemSpace::kShared));
  const double contended = m.effective_mbps(
      req(32 * 1024, MemSpace::kPrivate, MemSpace::kShared,
          Homing::kHashForHome, 1, /*writers=*/16));
  EXPECT_LT(contended, solo);
}

TEST(MemModel, BandwidthNeverBelowFloor) {
  const MemModel m(tilesim::tile_pro64());
  const double v = m.effective_mbps(req(8, MemSpace::kShared, MemSpace::kShared,
                                        Homing::kLocal, 64, 64));
  EXPECT_GE(v, 1.0);
}

TEST(MemModel, CostMatchesBandwidthArithmetic) {
  const MemModel m(tilesim::tile_gx36());
  const auto r = req(1 << 20, MemSpace::kShared, MemSpace::kShared);
  const double mbps = m.effective_mbps(r);
  const auto expect = tilesim::tile_gx36().copy_call_overhead_ps +
                      tshmem_util::transfer_time_ps(r.bytes, mbps);
  EXPECT_EQ(m.copy_cost_ps(r), expect);
}

// Cross-check: the analytic curve and the mechanistic cache simulator agree
// on where performance transitions happen (both are driven by the same
// capacities), even though their absolute numbers differ.
TEST(MemModel, AgreesWithCacheSimOnTransitionDirection) {
  const MemModel m(tilesim::tile_gx36());
  auto ratio = [&](std::size_t a, std::size_t b) {
    return m.effective_mbps(req(a, MemSpace::kShared, MemSpace::kShared)) /
           m.effective_mbps(req(b, MemSpace::kShared, MemSpace::kShared));
  };
  // L1 -> L2 transition: = >20% drop between 32 kB and 256 kB.
  EXPECT_GT(ratio(32 * 1024, 256 * 1024), 1.2);
  // L2 -> DDC transition: = >50% drop between 256 kB and 2 MB.
  EXPECT_GT(ratio(256 * 1024, 2 << 20), 1.5);
  // DDC -> DRAM: another >50% drop between 2 MB and 32 MB.
  EXPECT_GT(ratio(2 << 20, 32 << 20), 1.5);
}

}  // namespace
