// Tests for the virtual-time flight recorder + windowed time series
// (obs/flightrec, obs/timeseries — ISSUE 9 tentpole): ring wraparound,
// deterministic ring contents across host schedules, window-boundary and
// epoch-fold edge cases, the tshmem.timeseries.v1 / tshmem.blackbox.v1
// JSON shapes, post-mortem dumps on watchdog timeouts and shard
// degradation, and the zero-virtual-cost contract (bit-identical end
// clocks recorder on/off).
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/flightrec.hpp"
#include "obs/json.hpp"
#include "obs/timeseries.hpp"
#include "sim/device.hpp"
#include "sim/fault.hpp"
#include "sim/flight_hook.hpp"
#include "svc/service.hpp"
#include "tshmem/cluster.hpp"
#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"
#include "util/error.hpp"

namespace {

using obs::FlightRecorder;
using obs::FrEvent;
using obs::JsonValue;
using obs::TimeSeries;
using obs::TimeSeriesReport;
using tilesim::FlightKind;
using tilesim::ps_t;
using tshmem::Context;

// ===========================================================================
// Ring mechanics (recorder driven directly)
// ===========================================================================

TEST(FlightRecorder, RingWrapsKeepingNewest) {
  FlightRecorder fr(1, 4);
  for (int i = 0; i < 10; ++i) {
    fr.record_event(0, FlightKind::kPut, "put", 100 * i, i % 3, 8, 0);
  }
  EXPECT_EQ(fr.total_recorded(0), 10u);
  const std::vector<FrEvent> snap = fr.snapshot(0);
  ASSERT_EQ(snap.size(), 4u);
  // Oldest to newest: the last four of the ten recorded events.
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(snap[static_cast<std::size_t>(i)].seq,
              static_cast<std::uint64_t>(6 + i));
    EXPECT_EQ(snap[static_cast<std::size_t>(i)].vt, 100 * (6 + i));
  }
}

TEST(FlightRecorder, MergedOrdersByTimePeSeq) {
  FlightRecorder fr(3, 8);
  fr.record_event(2, FlightKind::kBarrier, "bar", 500, -1, 0, 0);
  fr.record_event(0, FlightKind::kPut, "put", 500, 1, 8, 0);
  fr.record_event(1, FlightKind::kGet, "get", 100, 0, 8, 0);
  const std::vector<FrEvent> merged = fr.merged();
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].pe, 1);  // earliest vt first
  EXPECT_EQ(merged[1].pe, 0);  // vt tie broken by pe
  EXPECT_EQ(merged[2].pe, 2);
}

// The ring's contract: events arrive per PE in program order with that
// PE's own virtual clock, so ring contents are a pure function of the
// (deterministic) protocol — identical across host thread schedules.
TEST(FlightRecorder, RingContentsDeterministicAcrossRuns) {
  auto run_once = [] {
    tshmem::RuntimeOptions opts;
    opts.flightrec = true;
    opts.flightrec_capacity = 64;
    tshmem::Runtime rt(tilesim::tile_gx36(), opts);
    rt.run(4, [](Context& ctx) {
      int* buf = ctx.shmalloc_n<int>(64);
      ctx.barrier_all();
      for (int round = 0; round < 3; ++round) {
        const int peer = (ctx.my_pe() + 1) % ctx.num_pes();
        std::vector<int> src(64, ctx.my_pe());
        ctx.put(buf, src.data(), 64 * sizeof(int), peer);
        ctx.barrier_all();
      }
      ctx.shfree(buf);
    });
    std::vector<std::string> lines;
    for (const FrEvent& e : rt.flightrec()->merged()) {
      std::ostringstream os;
      os << e.vt << " " << e.pe << " " << e.seq << " "
         << tilesim::fr_kind_name(e.kind) << " " << e.site << " " << e.peer
         << " " << e.bytes << " " << e.errc;
      lines.push_back(os.str());
    }
    return lines;
  };
  const std::vector<std::string> a = run_once();
  const std::vector<std::string> b = run_once();
  ASSERT_FALSE(a.empty());
  EXPECT_EQ(a, b);
}

// ===========================================================================
// Epoch folding (Device::reset_clocks boundaries)
// ===========================================================================

TEST(FlightRecorder, DeviceAttachedFoldsEpochAtClockReset) {
  tilesim::Device device(tilesim::tile_gx36());
  FlightRecorder fr(device, 16);
  device.attach_flight(&fr);
  device.tile(0).clock().advance(300);
  device.tile(1).clock().advance(750);  // epoch extent = max tile clock
  tilesim::flight_event(device, 0, FlightKind::kPut, "put", 300, 1, 8, 0);
  device.reset_clocks();
  EXPECT_EQ(fr.epoch_base_ps(), 750);
  // Post-reset events arrive epoch-local and are folded onto the
  // monotone run timeline.
  tilesim::flight_event(device, 0, FlightKind::kGet, "get", 10, 1, 8, 0);
  const std::vector<FrEvent> snap = fr.snapshot(0);
  ASSERT_EQ(snap.size(), 2u);
  EXPECT_EQ(snap[0].vt, 300);
  EXPECT_EQ(snap[1].vt, 760);
  device.attach_flight(nullptr);
}

TEST(TimeSeries, EpochFoldOffsetsLaterObservations) {
  TimeSeries ts(100);
  ts.series_add("x", 40, 1);   // window 0
  ts.fold_epoch(250);
  ts.series_add("x", 40, 1);   // folded to 290 -> window 2
  ts.fold_epoch(60);           // base 310
  ts.series_add("x", 0, 1);    // folded to 310 -> window 3
  const TimeSeriesReport rep = ts.report();
  ASSERT_EQ(rep.series.size(), 1u);
  ASSERT_EQ(rep.series[0].windows.size(), 3u);
  EXPECT_EQ(rep.series[0].windows[0].index, 0u);
  EXPECT_EQ(rep.series[0].windows[1].index, 2u);
  EXPECT_EQ(rep.series[0].windows[1].start_ps, 200);
  EXPECT_EQ(rep.series[0].windows[2].index, 3u);
  EXPECT_EQ(rep.series[0].total_count, 3u);
}

// ===========================================================================
// Window aggregation
// ===========================================================================

TEST(TimeSeries, WindowBoundariesAreHalfOpen) {
  TimeSeries ts(100);
  ts.series_add("x", 0, 1);
  ts.series_add("x", 99, 1);   // still window 0
  ts.series_add("x", 100, 1);  // first vt of window 1
  ts.series_add("x", 199, 1);
  ts.series_add("x", 200, 1);  // window 2
  const TimeSeriesReport rep = ts.report();
  ASSERT_EQ(rep.series.size(), 1u);
  const auto& w = rep.series[0].windows;
  ASSERT_EQ(w.size(), 3u);
  EXPECT_EQ(w[0].count, 2u);
  EXPECT_EQ(w[1].count, 2u);
  EXPECT_EQ(w[1].start_ps, 100);
  EXPECT_EQ(w[2].count, 1u);
  EXPECT_EQ(rep.series[0].total_count, 5u);
}

TEST(TimeSeries, SamplesCarryQuantilesAndCounts) {
  TimeSeries ts(1000);
  for (std::uint64_t v : {10u, 20u, 30u, 40u, 1000u}) {
    ts.series_sample("lat", 500, v);
  }
  const TimeSeriesReport rep = ts.report();
  ASSERT_EQ(rep.series.size(), 1u);
  ASSERT_EQ(rep.series[0].windows.size(), 1u);
  const obs::SeriesWindow& w = rep.series[0].windows[0];
  EXPECT_TRUE(w.has_samples);
  EXPECT_EQ(w.count, 5u);  // samples count toward the window count
  EXPECT_EQ(w.sum, 1100u);
  EXPECT_EQ(w.min, 10u);
  EXPECT_EQ(w.max, 1000u);
  EXPECT_GE(w.p99, w.p50);
  EXPECT_GE(w.p999, w.p99);
}

TEST(TimeSeries, JsonReportHasSchemaAndReconcilesCounts) {
  TimeSeries ts(100);
  ts.series_add("a", 10, 2);
  ts.series_sample("b", 150, 7);
  std::ostringstream os;
  obs::write_timeseries_json(os, ts.report());
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.at("schema").as_string(), "tshmem.timeseries.v1");
  EXPECT_EQ(doc.at("window_ps").as_int(), 100);
  const auto& series = doc.at("series").as_array();
  ASSERT_EQ(series.size(), 2u);
  for (const JsonValue& s : series) {
    std::uint64_t windows = 0;
    for (const JsonValue& w : s.at("windows").as_array()) {
      windows += w.at("count").as_uint();
    }
    EXPECT_EQ(windows, s.at("total_count").as_uint()) << s.at("name").as_string();
  }
}

// The recorder tap: every recorded event lands in the aggregator as an
// "event.<kind>" count, and epoch folds are forwarded.
TEST(TimeSeries, RecorderTapCountsEvents) {
  TimeSeries ts(100);
  FlightRecorder fr(2, 8);
  fr.set_tap(&ts);
  fr.record_event(0, FlightKind::kPut, "put", 10, 1, 8, 0);
  fr.record_event(1, FlightKind::kPut, "put", 110, 0, 8, 0);
  fr.record_event(0, FlightKind::kBarrier, "bar", 120, -1, 0, 0);
  const TimeSeriesReport rep = ts.report();
  ASSERT_EQ(rep.series.size(), 2u);
  EXPECT_EQ(rep.series[0].name, "event.barrier");
  EXPECT_EQ(rep.series[0].total_count, 1u);
  EXPECT_EQ(rep.series[1].name, "event.put");
  EXPECT_EQ(rep.series[1].total_count, 2u);
  ASSERT_EQ(rep.series[1].windows.size(), 2u);
}

// ===========================================================================
// Post-mortem dumps
// ===========================================================================

TEST(Blackbox, WatchdogTimeoutDumpNamesTheStuckOp) {
  tshmem::RuntimeOptions opts;
  opts.flightrec = true;
  opts.watchdog_ms = 200;
  tshmem::Runtime rt(tilesim::tile_gx36(), opts);
  bool threw = false;
  try {
    rt.run(2, [](Context& ctx) {
      long* flag = ctx.shmalloc_n<long>(1);
      *flag = 0;
      ctx.barrier_all();
      if (ctx.my_pe() == 0) {
        ctx.wait_until(flag, tshmem::Cmp::kNe, 0L);  // never satisfied
      }
    });
  } catch (const tshmem::Error& e) {
    threw = true;
    EXPECT_EQ(e.code(), tshmem::Errc::kWatchdogTimeout);
  }
  ASSERT_TRUE(threw);
  std::ostringstream os;
  ASSERT_TRUE(rt.write_blackbox(os, "unit test", 7));
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.at("schema").as_string(), "tshmem.blackbox.v1");
  EXPECT_EQ(doc.at("source").as_string(), "runtime");
  EXPECT_EQ(doc.at("errc_name").as_string(), "watchdog_timeout");
  // The aborting PE recorded a kError event at the throw site.
  bool found_error = false;
  for (const JsonValue& e : doc.at("merged").as_array()) {
    if (e.at("kind").as_string() == "error") {
      found_error = true;
      EXPECT_EQ(e.at("site").as_string(), "shmem_wait_until");
      EXPECT_EQ(e.at("pe").as_int(), 0);
      EXPECT_EQ(e.at("errc").as_int(), 7);
    }
  }
  EXPECT_TRUE(found_error);
}

TEST(Blackbox, ShardDegradationDumpsFromTheService) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  svc::ServiceConfig cfg;
  cfg.pes_per_shard = 2;
  cfg.db.images = 64;
  cfg.db.width = 32;
  cfg.db.height = 32;
  cfg.load.seed = 7;
  cfg.load.queries = 4000;
  cfg.load.start_qps = 20'000.0;
  cfg.load.end_qps = 120'000.0;
  cfg.load.key_space = 64;
  cfg.batch.max_batch = 4;
  cfg.batch.timeout_ps = 2'000'000;
  cfg.cache_capacity = 32;
  cfg.flightrec = true;
  // The degrade event fires early in the run; a ring deep enough to hold
  // the whole campaign keeps it visible to the end-of-run dump below.
  cfg.flightrec_capacity = 16384;
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,shard_stall=1.0:30000000000,shard_stall_shard=1");
  svc::Service service(cluster, cfg);
  const svc::ServiceReport rep = service.run();
  EXPECT_GT(rep.shed, 0u);
  std::ostringstream os;
  ASSERT_TRUE(service.write_blackbox(os, "unit test", 12));
  const JsonValue doc = JsonValue::parse(os.str());
  EXPECT_EQ(doc.at("schema").as_string(), "tshmem.blackbox.v1");
  EXPECT_EQ(doc.at("source").as_string(), "svc");
  EXPECT_EQ(doc.at("errc_name").as_string(), "shard_degraded");
  bool degraded = false;
  bool shed = false;
  for (const JsonValue& e : doc.at("merged").as_array()) {
    if (e.at("kind").as_string() == "svc_degraded") degraded = true;
    if (e.at("kind").as_string() == "svc_shed") shed = true;
  }
  EXPECT_TRUE(degraded);
  EXPECT_TRUE(shed);
}

// ===========================================================================
// Zero virtual cost (the contract tools/ci.sh enforces end to end)
// ===========================================================================

TEST(FlightRecorder, EndClocksBitIdenticalRecorderOnAndOff) {
  auto end_clocks = [](bool record) {
    tshmem::RuntimeOptions opts;
    opts.flightrec = record;
    if (record) opts.timeseries_window_ps = 1'000'000;
    tshmem::Runtime rt(tilesim::tile_gx36(), opts);
    std::vector<ps_t> clocks(4, 0);
    rt.run(4, [&](Context& ctx) {
      int* buf = ctx.shmalloc_n<int>(128);
      ctx.barrier_all();
      for (int round = 0; round < 4; ++round) {
        const int peer = (ctx.my_pe() + 1) % ctx.num_pes();
        std::vector<int> src(128, round);
        ctx.put(buf, src.data(), 128 * sizeof(int), peer);
        ctx.put_nbi(buf, src.data(), 64 * sizeof(int), peer);
        ctx.quiet();
        ctx.barrier_all();
      }
      ctx.shfree(buf);
      clocks[static_cast<std::size_t>(ctx.my_pe())] = ctx.clock().now();
    });
    return clocks;
  };
  const std::vector<ps_t> off = end_clocks(false);
  const std::vector<ps_t> on = end_clocks(true);
  ASSERT_EQ(off.size(), on.size());
  EXPECT_EQ(off, on);
}

}  // namespace
