// Tests for TSHMEM synchronization: the linear UDN token barrier (all
// algorithms), active sets, fence/quiet, wait/wait_until, and locks.
#include <gtest/gtest.h>

#include <atomic>

#include "tshmem/context.hpp"
#include "tshmem/runtime.hpp"

namespace {

using tshmem::ActiveSet;
using tshmem::BarrierAlgo;
using tshmem::Cmp;
using tshmem::Context;
using tshmem::Runtime;

TEST(ActiveSet, MembershipAndIndexing) {
  const ActiveSet as{2, 1, 4};  // PEs 2, 4, 6, 8
  EXPECT_TRUE(as.contains(2));
  EXPECT_TRUE(as.contains(8));
  EXPECT_FALSE(as.contains(3));
  EXPECT_FALSE(as.contains(10));
  EXPECT_FALSE(as.contains(0));
  EXPECT_EQ(as.index_of(6), 2);
  EXPECT_EQ(as.pe_at(3), 8);
  EXPECT_THROW((void)as.index_of(5), std::invalid_argument);
  EXPECT_THROW((void)as.pe_at(4), std::out_of_range);
  EXPECT_EQ(as.members(), (std::vector<int>{2, 4, 6, 8}));
}

TEST(ActiveSet, IdsDifferAcrossShapes) {
  EXPECT_NE((ActiveSet{0, 0, 4}).id(), (ActiveSet{0, 0, 8}).id());
  EXPECT_NE((ActiveSet{0, 1, 4}).id(), (ActiveSet{0, 0, 4}).id());
  EXPECT_NE((ActiveSet{1, 0, 4}).id(), (ActiveSet{0, 0, 4}).id());
}

class BarrierAlgoTest : public ::testing::TestWithParam<BarrierAlgo> {};

TEST_P(BarrierAlgoTest, BarrierAllIsARealRendezvous) {
  Runtime rt(tilesim::tile_gx36());
  std::atomic<int> phase_count{0};
  rt.run(8, [&](Context& ctx) {
    ctx.set_barrier_algo(GetParam());
    for (int round = 1; round <= 10; ++round) {
      phase_count.fetch_add(1);
      ctx.barrier_all();
      EXPECT_GE(phase_count.load(), round * 8);
    }
  });
  EXPECT_EQ(phase_count.load(), 80);
}

TEST_P(BarrierAlgoTest, OrdersPutsBeforeReads) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(6, [&](Context& ctx) {
    ctx.set_barrier_algo(GetParam());
    long* data = ctx.shmalloc_n<long>(1);
    *data = -1;
    ctx.barrier_all();
    for (long round = 0; round < 20; ++round) {
      ctx.p(data, round * 100 + ctx.my_pe(), (ctx.my_pe() + 1) % 6);
      ctx.barrier_all();
      EXPECT_EQ(*data, round * 100 + (ctx.my_pe() + 5) % 6);
      ctx.barrier_all();
    }
    ctx.shfree(data);
  });
}

INSTANTIATE_TEST_SUITE_P(AllAlgos, BarrierAlgoTest,
                         ::testing::Values(BarrierAlgo::kLinearToken,
                                           BarrierAlgo::kBroadcastRelease,
                                           BarrierAlgo::kTmcSpin));

TEST(Barrier, ActiveSetSubsetOnlySyncsMembers) {
  Runtime rt(tilesim::tile_gx36());
  std::atomic<int> inside{0};
  rt.run(8, [&](Context& ctx) {
    const ActiveSet evens{0, 1, 4};  // PEs 0, 2, 4, 6
    if (evens.contains(ctx.my_pe())) {
      inside.fetch_add(1);
      ctx.barrier(evens);
      EXPECT_GE(inside.load(), 4);
    }
    // Odd PEs proceed without ever entering the barrier.
    ctx.harness_sync();
  });
}

TEST(Barrier, StridedActiveSet) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(9, [&](Context& ctx) {
    const ActiveSet quads{0, 2, 3};  // PEs 0, 4, 8
    if (quads.contains(ctx.my_pe())) {
      for (int i = 0; i < 5; ++i) ctx.barrier(quads);
    }
    ctx.harness_sync();
  });
}

TEST(Barrier, NonMemberCallThrows) {
  Runtime rt(tilesim::tile_gx36());
  EXPECT_THROW(rt.run(4,
                      [](Context& ctx) {
                        const ActiveSet as{0, 0, 2};
                        ctx.barrier(as);  // PEs 2 and 3 are not members
                      }),
               std::invalid_argument);
}

TEST(Barrier, SinglePeBarrierIsLocal) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(3, [](Context& ctx) {
    const ActiveSet self{ctx.my_pe(), 0, 1};
    ctx.barrier(self);  // must not deadlock or message anyone
    ctx.barrier_all();
  });
}

TEST(Barrier, VirtualLatencyBestWorstSpread) {
  // Fig 8 shape: the start tile exits last (worst case ~ 2(n-1) links), a
  // mid-chain tile exits earlier (best case), with roughly 2x spread.
  Runtime rt(tilesim::tile_gx36());
  std::vector<tilesim::ps_t> elapsed(16);
  rt.run(16, [&](Context& ctx) {
    ctx.barrier_all();  // warm
    ctx.harness_sync_reset();
    const auto t0 = ctx.clock().now();
    ctx.barrier_all();
    elapsed[static_cast<std::size_t>(ctx.my_pe())] = ctx.clock().now() - t0;
    ctx.harness_sync();
  });
  const auto [mn, mx] = std::minmax_element(elapsed.begin(), elapsed.end());
  EXPECT_GT(*mx, *mn);
  EXPECT_EQ(elapsed[0], *mx);  // the start tile leaves last
  EXPECT_NEAR(static_cast<double>(*mx) / static_cast<double>(*mn), 2.0, 0.6);
}

TEST(Barrier, TshmemBeatsTmcSpinOnProButNotOnGx) {
  // Fig 8: on the TILEPro the UDN token barrier (~3 us @ 36 tiles) crushes
  // the TMC spin barrier (47.2 us); on the Gx, TMC spin stays faster.
  auto worst_latency = [](const tilesim::DeviceConfig& cfg, BarrierAlgo algo) {
    Runtime rt(cfg);
    tilesim::ps_t worst = 0;
    std::mutex mu;
    const int npes = 36;
    rt.run(npes, [&](Context& ctx) {
      ctx.set_barrier_algo(algo);
      ctx.barrier_all();
      ctx.harness_sync_reset();
      const auto t0 = ctx.clock().now();
      ctx.barrier_all();
      const auto dt = ctx.clock().now() - t0;
      std::scoped_lock lk(mu);
      worst = std::max(worst, dt);
    });
    return worst;
  };
  const auto pro_token =
      worst_latency(tilesim::tile_pro64(), BarrierAlgo::kLinearToken);
  const auto pro_spin =
      worst_latency(tilesim::tile_pro64(), BarrierAlgo::kTmcSpin);
  EXPECT_LT(pro_token * 5, pro_spin);
  const auto gx_token =
      worst_latency(tilesim::tile_gx36(), BarrierAlgo::kLinearToken);
  const auto gx_spin =
      worst_latency(tilesim::tile_gx36(), BarrierAlgo::kTmcSpin);
  EXPECT_LT(gx_spin, gx_token);
  // Anchor: Pro token barrier ~3 us at 36 tiles.
  EXPECT_NEAR(static_cast<double>(pro_token) / 1e6, 3.0, 1.0);
}

TEST(Barrier, BroadcastReleaseIsRoughlyTwiceSlower) {
  // §IV-C1: "Another design was evaluated whereby the start tile broadcasts
  // the release signal; however, latencies were two times slower."
  Runtime rt(tilesim::tile_gx36());
  tilesim::ps_t linear = 0, bcast = 0;
  rt.run(36, [&](Context& ctx) {
    for (const auto algo :
         {BarrierAlgo::kLinearToken, BarrierAlgo::kBroadcastRelease}) {
      ctx.set_barrier_algo(algo);
      ctx.barrier_all();  // warm
      ctx.harness_sync_reset();
      const auto t0 = ctx.clock().now();
      ctx.barrier_all();
      const auto dt = ctx.clock().now() - t0;
      if (ctx.my_pe() == 0) {
        (algo == BarrierAlgo::kLinearToken ? linear : bcast) = dt;
      }
      ctx.harness_sync();
    }
  });
  EXPECT_NEAR(static_cast<double>(bcast) / static_cast<double>(linear), 2.0,
              0.7);
}

// --- fence / quiet -------------------------------------------------------------

TEST(FenceQuiet, AdvanceClockAndKeepSemantics) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long* flag = ctx.shmalloc_n<long>(1);
    long* data = ctx.shmalloc_n<long>(1);
    *flag = 0;
    *data = 0;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      ctx.p(data, 42L, 1);
      ctx.fence();  // data must arrive before flag
      ctx.p(flag, 1L, 1);
    } else {
      ctx.wait(flag, 0L);       // block while flag == 0
      EXPECT_EQ(*data, 42L);    // fence ordered the puts
    }
    ctx.barrier_all();
    ctx.shfree(data);
    ctx.shfree(flag);
  });
}

// --- wait / wait_until ----------------------------------------------------------

TEST(WaitUntil, AllComparisons) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    int* v = ctx.shmalloc_n<int>(6);
    for (int i = 0; i < 6; ++i) v[i] = 0;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      ctx.p(&v[0], 5, 1);   // EQ 5
      ctx.p(&v[1], 9, 1);   // NE 0
      ctx.p(&v[2], 7, 1);   // GT 3
      ctx.p(&v[3], -2, 1);  // LE 0 (already true? starts 0 -> LE 0 true)
      ctx.p(&v[4], -1, 1);  // LT 0
      ctx.p(&v[5], 3, 1);   // GE 3
    } else {
      ctx.wait_until(&v[0], Cmp::kEq, 5);
      ctx.wait_until(&v[1], Cmp::kNe, 0);
      ctx.wait_until(&v[2], Cmp::kGt, 3);
      ctx.wait_until(&v[3], Cmp::kLe, 0);
      ctx.wait_until(&v[4], Cmp::kLt, 0);
      ctx.wait_until(&v[5], Cmp::kGe, 3);
      EXPECT_EQ(v[0], 5);
      EXPECT_EQ(v[4], -1);
    }
    ctx.barrier_all();
    ctx.shfree(v);
  });
}

TEST(WaitUntil, VirtualClockOrdersAfterDelivery) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long* flag = ctx.shmalloc_n<long>(1);
    *flag = 0;
    ctx.barrier_all();
    ctx.harness_sync_reset();
    if (ctx.my_pe() == 0) {
      ctx.clock().advance(10'000'000);  // writer is 10 us into its work
      ctx.p(flag, 1L, 1);
      ctx.harness_sync();
    } else {
      ctx.wait(flag, 0L);
      // The waiter cannot observe the flag "before" it was written.
      EXPECT_GE(ctx.clock().now(), 10'000'000u);
      ctx.harness_sync();
    }
    ctx.barrier_all();
    ctx.shfree(flag);
  });
}

TEST(WaitUntil, LongLongAndShortVariants) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long long* a = ctx.shmalloc_n<long long>(1);
    *a = 0;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      ctx.p(a, 0x1234567890LL, 1);
    } else {
      ctx.wait_until(a, Cmp::kEq, 0x1234567890LL);
    }
    ctx.barrier_all();
    ctx.shfree(a);
  });
}

// --- locks ----------------------------------------------------------------------

TEST(Locks, MutualExclusionUnderContention) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(8, [](Context& ctx) {
    long* lock = ctx.shmalloc_n<long>(1);
    long* counter = ctx.shmalloc_n<long>(1);
    if (ctx.my_pe() == 0) {
      *lock = 0;
      *counter = 0;
    }
    ctx.barrier_all();
    for (int i = 0; i < 25; ++i) {
      ctx.set_lock(lock);
      // Unprotected read-modify-write on PE 0's counter: correct only if
      // the lock really excludes.
      const long v = ctx.g(counter, 0);
      ctx.p(counter, v + 1, 0);
      ctx.quiet();
      ctx.clear_lock(lock);
    }
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      EXPECT_EQ(*counter, 8 * 25);
    }
    ctx.barrier_all();
    ctx.shfree(counter);
    ctx.shfree(lock);
  });
}

TEST(Locks, TestLockReportsState) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long* lock = ctx.shmalloc_n<long>(1);
    if (ctx.my_pe() == 0) *lock = 0;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      EXPECT_EQ(ctx.test_lock(lock), 0);  // acquired
      ctx.harness_sync();
      ctx.harness_sync();
      ctx.clear_lock(lock);
    } else {
      ctx.harness_sync();
      EXPECT_EQ(ctx.test_lock(lock), 1);  // busy
      ctx.harness_sync();
    }
    ctx.barrier_all();
    ctx.shfree(lock);
  });
}

TEST(Locks, ClearByNonOwnerThrows) {
  Runtime rt(tilesim::tile_gx36());
  rt.run(2, [](Context& ctx) {
    long* lock = ctx.shmalloc_n<long>(1);
    if (ctx.my_pe() == 0) *lock = 0;
    ctx.barrier_all();
    if (ctx.my_pe() == 0) {
      ctx.set_lock(lock);
      ctx.harness_sync();
      ctx.harness_sync();
      ctx.clear_lock(lock);
    } else {
      ctx.harness_sync();
      EXPECT_THROW(ctx.clear_lock(lock), std::logic_error);
      ctx.harness_sync();
    }
    ctx.barrier_all();
    ctx.shfree(lock);
  });
}

}  // namespace
