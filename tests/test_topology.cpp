// Tests for the 2D mesh topology and dimension-order routing, including the
// paper's virtual-CPU mapping for the 6x6 test area on the 8x8 TILEPro64.
#include <gtest/gtest.h>

#include "sim/config.hpp"
#include "sim/topology.hpp"

namespace {

using tilesim::Coord;
using tilesim::Dir;
using tilesim::Topology;

TEST(Topology, CoordinateRoundTrip) {
  Topology t(6, 6);
  for (int tile = 0; tile < t.tile_count(); ++tile) {
    EXPECT_EQ(t.tile_at(t.coord_of(tile)), tile);
  }
}

TEST(Topology, DimensionsAndCounts) {
  Topology gx(tilesim::tile_gx36());
  EXPECT_EQ(gx.width(), 6);
  EXPECT_EQ(gx.height(), 6);
  EXPECT_EQ(gx.tile_count(), 36);
  Topology pro(tilesim::tile_pro64());
  EXPECT_EQ(pro.tile_count(), 64);
}

TEST(Topology, RejectsBadDimensions) {
  EXPECT_THROW(Topology(0, 4), std::invalid_argument);
  EXPECT_THROW(Topology(4, -1), std::invalid_argument);
}

TEST(Topology, RejectsOutOfRangeTiles) {
  Topology t(6, 6);
  EXPECT_THROW((void)t.coord_of(-1), std::out_of_range);
  EXPECT_THROW((void)t.coord_of(36), std::out_of_range);
  EXPECT_THROW((void)t.hops(0, 36), std::out_of_range);
}

TEST(Topology, HopCountsMatchPaperCases) {
  // Paper §III-C: in a 6x6 mesh, neighbor = 1 hop, side-to-side = 5,
  // corner-to-corner = 10.
  Topology t(6, 6);
  EXPECT_EQ(t.hops(14, 13), 1);   // neighbors (Table III row 1)
  EXPECT_EQ(t.hops(14, 15), 1);
  EXPECT_EQ(t.hops(14, 8), 1);    // up
  EXPECT_EQ(t.hops(14, 20), 1);   // down
  EXPECT_EQ(t.hops(6, 11), 5);    // side-to-side, row 1
  EXPECT_EQ(t.hops(1, 31), 5);    // side-to-side, vertical
  EXPECT_EQ(t.hops(0, 35), 10);   // corners
  EXPECT_EQ(t.hops(5, 30), 10);
  EXPECT_EQ(t.hops(7, 7), 0);     // self
}

TEST(Topology, HopsAreSymmetric) {
  Topology t(6, 6);
  for (int a = 0; a < 36; a += 5) {
    for (int b = 0; b < 36; b += 3) {
      EXPECT_EQ(t.hops(a, b), t.hops(b, a));
    }
  }
}

TEST(Topology, RouteLengthEqualsHops) {
  Topology t(8, 8);
  for (int a = 0; a < 64; a += 7) {
    for (int b = 0; b < 64; b += 5) {
      EXPECT_EQ(static_cast<int>(t.route(a, b).size()), t.hops(a, b));
    }
  }
}

TEST(Topology, RouteIsDimensionOrderXFirst) {
  Topology t(6, 6);
  // 0 -> 35: all X steps (right) must precede all Y steps (down).
  const auto route = t.route(0, 35);
  ASSERT_EQ(route.size(), 10u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(route[i], Dir::kRight);
  for (int i = 5; i < 10; ++i) EXPECT_EQ(route[i], Dir::kDown);
}

TEST(Topology, RouteTurnsOnlyWhenBothDimsChange) {
  Topology t(6, 6);
  EXPECT_FALSE(t.route_turns(6, 11));  // straight horizontal
  EXPECT_FALSE(t.route_turns(1, 31));  // straight vertical
  EXPECT_TRUE(t.route_turns(0, 35));   // corner: one turn
  EXPECT_FALSE(t.route_turns(3, 3));   // self
}

TEST(Topology, FirstDirection) {
  Topology t(6, 6);
  EXPECT_EQ(t.first_direction(14, 13), Dir::kLeft);
  EXPECT_EQ(t.first_direction(14, 15), Dir::kRight);
  EXPECT_EQ(t.first_direction(14, 8), Dir::kUp);
  EXPECT_EQ(t.first_direction(14, 20), Dir::kDown);
  EXPECT_EQ(t.first_direction(0, 35), Dir::kRight);  // X resolved first
  EXPECT_THROW((void)t.first_direction(3, 3), std::invalid_argument);
}

TEST(Topology, DirToString) {
  EXPECT_EQ(tilesim::to_string(Dir::kLeft), "left");
  EXPECT_EQ(tilesim::to_string(Dir::kRight), "right");
  EXPECT_EQ(tilesim::to_string(Dir::kUp), "up");
  EXPECT_EQ(tilesim::to_string(Dir::kDown), "down");
}

TEST(VirtualCpuMapping, IdentityOnGx36) {
  // Paper: "The virtual CPU numbers are equal to the physical CPU numbers
  // on the TILE-Gx36, as the chip dimensions are equal to the test area".
  for (int v = 0; v < 36; ++v) {
    EXPECT_EQ(tilesim::virtual_to_physical(v, 6, 6), v);
  }
}

TEST(VirtualCpuMapping, PaperExampleOnPro64) {
  // Paper: "virtual tile 6 is physical tile 8" on the 8x8 TILEPro64.
  EXPECT_EQ(tilesim::virtual_to_physical(6, 6, 8), 8);
  EXPECT_EQ(tilesim::virtual_to_physical(0, 6, 8), 0);
  EXPECT_EQ(tilesim::virtual_to_physical(5, 6, 8), 5);
  EXPECT_EQ(tilesim::virtual_to_physical(35, 6, 8), 45);
}

TEST(VirtualCpuMapping, RoundTrip) {
  for (int v = 0; v < 36; ++v) {
    const int p = tilesim::virtual_to_physical(v, 6, 8);
    EXPECT_EQ(tilesim::physical_to_virtual(p, 6, 8), v);
  }
}

TEST(VirtualCpuMapping, RejectsOutsideArea) {
  EXPECT_THROW((void)tilesim::physical_to_virtual(6, 6, 8), std::out_of_range);
  EXPECT_THROW((void)tilesim::virtual_to_physical(-1, 6, 8),
               std::invalid_argument);
}

// Parameterized sweep: every pair in the 6x6 test area obeys the triangle
// property |route| = |dx| + |dy| and routing never leaves the mesh.
class RoutePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RoutePropertyTest, RoutesStayInMeshAndTerminate) {
  Topology t(6, 6);
  const int from = GetParam();
  for (int to = 0; to < 36; ++to) {
    Coord pos = t.coord_of(from);
    for (const Dir d : t.route(from, to)) {
      switch (d) {
        case Dir::kLeft: --pos.x; break;
        case Dir::kRight: ++pos.x; break;
        case Dir::kUp: --pos.y; break;
        case Dir::kDown: ++pos.y; break;
      }
      ASSERT_TRUE(t.contains(pos));
    }
    EXPECT_EQ(t.tile_at(pos), to);
  }
}

INSTANTIATE_TEST_SUITE_P(AllSources, RoutePropertyTest,
                         ::testing::Range(0, 36));

}  // namespace
