// Tests for the mPIPE packet-engine model: classification rules, flow-hash
// load balancing, link timing, jumbo limits, and device gating.
#include <gtest/gtest.h>

#include "sim/device.hpp"
#include "tmc/mpipe.hpp"

namespace {

using tilesim::Device;
using tilesim::Tile;
using tmc::MpipeConfig;
using tmc::MpipeEngine;
using tmc::MpipeLink;
using tmc::MpipePacket;

class MpipeTest : public ::testing::Test {
 protected:
  Device dev_a_{tilesim::tile_gx36()};
  Device dev_b_{tilesim::tile_gx36()};
  MpipeEngine a_{dev_a_, 0};
  MpipeEngine b_{dev_b_, 1};
  MpipeLink link_{a_, b_};

  MpipePacket make_packet(std::uint32_t tag, std::size_t bytes,
                          std::uint64_t flow = 0) {
    MpipePacket p;
    p.l2_tag = tag;
    p.flow_hash = flow;
    p.payload.resize(bytes, std::byte{0x5a});
    return p;
  }
};

TEST_F(MpipeTest, RequiresMpipeCapableDevice) {
  Device pro(tilesim::tile_pro64());
  EXPECT_THROW(MpipeEngine(pro, 2), std::invalid_argument);
}

TEST_F(MpipeTest, LinkValidation) {
  Device c(tilesim::tile_gx36());
  MpipeEngine e(c, 3);
  EXPECT_THROW(MpipeLink(e, e), std::invalid_argument);
  // One engine may carry one link per *distinct* remote device...
  MpipeLink extra(a_, e);
  EXPECT_EQ(a_.link_count(), 2);
  // ...but not a second link to the same pair, nor a link between engines
  // claiming the same device index.
  EXPECT_THROW(MpipeLink(a_, b_), std::logic_error);
  Device d2(tilesim::tile_gx36());
  MpipeEngine same_index(d2, 0);
  EXPECT_THROW(MpipeLink(same_index, a_), std::invalid_argument);
}

TEST_F(MpipeTest, PacketCrossesLinkWithPayload) {
  dev_a_.run(1, [&](Tile& tile) { a_.egress(tile, make_packet(42, 128)); });
  dev_b_.run(1, [&](Tile& tile) {
    const int ring = static_cast<int>(0 % 16);
    const auto pkt = b_.recv(tile, ring);
    EXPECT_EQ(pkt.src_device, 0);
    EXPECT_EQ(pkt.l2_tag, 42u);
    EXPECT_EQ(pkt.payload.size(), 128u);
    EXPECT_EQ(pkt.payload[100], std::byte{0x5a});
  });
  EXPECT_EQ(b_.packets_ingressed(), 1u);
}

TEST_F(MpipeTest, ExactMatchRuleOverridesFlowHash) {
  b_.add_rule(0x99, 7);
  dev_a_.run(1, [&](Tile& tile) {
    a_.egress(tile, make_packet(0x99, 64, /*flow=*/3));  // hash says ring 3
  });
  EXPECT_EQ(b_.queued(7), 1u);
  EXPECT_EQ(b_.queued(3), 0u);
}

TEST_F(MpipeTest, FlowHashLoadBalancesAcrossRings) {
  dev_a_.run(1, [&](Tile& tile) {
    for (std::uint64_t f = 0; f < 32; ++f) {
      a_.egress(tile, make_packet(1, 64, f));
    }
  });
  int occupied = 0;
  for (int r = 0; r < 16; ++r) occupied += b_.queued(r) > 0;
  EXPECT_EQ(occupied, 16);  // 32 flows over 16 rings: every ring hit
  for (int r = 0; r < 16; ++r) EXPECT_EQ(b_.queued(r), 2u);
}

TEST_F(MpipeTest, SerializationTimeMatchesLinkRate) {
  // 10 Gbps: 1250 bytes/us.
  EXPECT_EQ(a_.serialization_ps(1250), 1'000'000u);
  EXPECT_EQ(a_.serialization_ps(0), 0u);
  const auto one_way = a_.one_way_ps(1250);
  EXPECT_EQ(one_way, a_.config().egress_dma_ps + 1'000'000u +
                         a_.config().classify_ps + a_.config().notif_ps);
}

TEST_F(MpipeTest, ArrivalTimestampIncludesPipeline) {
  dev_a_.run(1, [&](Tile& tile) {
    tile.clock().advance(5'000'000);
    a_.egress(tile, make_packet(1, 1250, 0));
    // Sender pays only the eDMA post.
    EXPECT_EQ(tile.clock().now(), 5'000'000u + a_.config().egress_dma_ps);
  });
  dev_b_.run(1, [&](Tile& tile) {
    const auto pkt = b_.recv(tile, 0);
    EXPECT_EQ(pkt.arrival_ps,
              5'000'000u + a_.config().egress_dma_ps + 1'000'000u +
                  b_.config().classify_ps + b_.config().notif_ps);
    EXPECT_EQ(tile.clock().now(), pkt.arrival_ps);
  });
}

TEST_F(MpipeTest, JumboLimitEnforced) {
  dev_a_.run(1, [&](Tile& tile) {
    EXPECT_THROW(a_.egress(tile, make_packet(1, 9001)), std::invalid_argument);
    a_.egress(tile, make_packet(1, 9000));  // exactly at the limit is fine
  });
}

TEST_F(MpipeTest, EgressWithoutLinkThrows) {
  Device c(tilesim::tile_gx36());
  MpipeEngine unlinked(c, 5);
  c.run(1, [&](Tile& tile) {
    MpipePacket p;
    p.payload.resize(8);
    EXPECT_THROW(unlinked.egress(tile, p), std::logic_error);
  });
}

TEST_F(MpipeTest, TryRecvAndValidation) {
  dev_b_.run(1, [&](Tile& tile) {
    EXPECT_FALSE(b_.try_recv(tile, 0).has_value());
    EXPECT_THROW((void)b_.recv(tile, 99), std::invalid_argument);
    EXPECT_THROW((void)b_.queued(-1), std::invalid_argument);
  });
  EXPECT_THROW(b_.add_rule(1, 16), std::invalid_argument);
}

TEST_F(MpipeTest, FifoWithinRing) {
  b_.add_rule(5, 2);
  dev_a_.run(1, [&](Tile& tile) {
    for (int i = 0; i < 10; ++i) {
      auto p = make_packet(5, 8);
      p.payload[0] = static_cast<std::byte>(i);
      a_.egress(tile, p);
    }
  });
  dev_b_.run(1, [&](Tile& tile) {
    for (int i = 0; i < 10; ++i) {
      EXPECT_EQ(b_.recv(tile, 2).payload[0], static_cast<std::byte>(i));
    }
  });
}

}  // namespace
