// Tests for the serving subsystem (src/svc, docs/SERVING.md): load
// generator determinism, batcher coalescing and timeout arming, LRU
// hit/eviction behavior, router shed/reroute policy, ShardIndex
// correctness on a real runtime, and end-to-end serve runs over a real
// 2-device cluster — including bit-identical replay per (seed, fault
// plan) and shed-not-hang under an injected shard stall.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <sstream>
#include <vector>

#include "apps/cbir.hpp"
#include "sim/config.hpp"
#include "sim/fault.hpp"
#include "svc/batcher.hpp"
#include "svc/cache.hpp"
#include "svc/loadgen.hpp"
#include "svc/report.hpp"
#include "svc/router.hpp"
#include "svc/service.hpp"
#include "tshmem/cluster.hpp"
#include "tshmem/runtime.hpp"

namespace {

using apps::cbir::Feature;
using apps::cbir::FeatureCache;
using apps::cbir::Hit;
using svc::Arrival;
using svc::Batcher;
using svc::BatcherConfig;
using svc::LoadGen;
using svc::LoadGenConfig;
using svc::LruCache;
using svc::PendingQuery;
using svc::Router;
using svc::ServiceConfig;
using svc::ServiceReport;
using svc::ShedPolicy;

// ===========================================================================
// Load generator
// ===========================================================================

TEST(LoadGen, DeterministicPerSeed) {
  LoadGenConfig cfg;
  cfg.seed = 42;
  cfg.queries = 5000;
  cfg.start_qps = 50'000.0;
  cfg.end_qps = 200'000.0;
  cfg.key_space = 300;
  LoadGen a(cfg);
  LoadGen b(cfg);
  for (int i = 0; i < 5000; ++i) {
    const Arrival x = a.next();
    const Arrival y = b.next();
    EXPECT_EQ(x.at_ps, y.at_ps);
    EXPECT_EQ(x.key, y.key);
    EXPECT_EQ(x.id, y.id);
  }
  EXPECT_TRUE(a.exhausted());
  EXPECT_THROW(a.next(), std::logic_error);
}

TEST(LoadGen, DifferentSeedsDiverge) {
  LoadGenConfig cfg;
  cfg.queries = 100;
  LoadGen a(cfg);
  cfg.seed = 2;
  LoadGen b(cfg);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next().at_ps == b.next().at_ps) ++same;
  }
  EXPECT_LT(same, 100);
}

TEST(LoadGen, ArrivalsAreMonotoneAndKeysInRange) {
  LoadGenConfig cfg;
  cfg.queries = 2000;
  cfg.key_space = 64;
  LoadGen gen(cfg);
  tilesim::ps_t last = 0;
  while (!gen.exhausted()) {
    const Arrival a = gen.next();
    EXPECT_GT(a.at_ps, last);
    last = a.at_ps;
    EXPECT_GE(a.key, 0);
    EXPECT_LT(a.key, 64);
  }
}

TEST(LoadGen, RampInterpolatesRates) {
  LoadGenConfig cfg;
  cfg.queries = 1001;
  cfg.start_qps = 10'000.0;
  cfg.end_qps = 110'000.0;
  LoadGen gen(cfg);
  EXPECT_DOUBLE_EQ(gen.rate_at(0), 10'000.0);
  EXPECT_DOUBLE_EQ(gen.rate_at(500), 60'000.0);
  EXPECT_DOUBLE_EQ(gen.rate_at(1000), 110'000.0);
}

TEST(LoadGen, ZipfSkewsTowardLowKeys) {
  LoadGenConfig cfg;
  cfg.queries = 20'000;
  cfg.key_space = 1000;
  cfg.zipf_s = 1.0;
  LoadGen gen(cfg);
  std::uint64_t head = 0;
  while (!gen.exhausted()) {
    if (gen.next().key < 100) ++head;
  }
  // Under Zipf(1.0) the top 10% of keys carry well over half the mass.
  EXPECT_GT(head, 10'000u);
}

// ===========================================================================
// Batcher
// ===========================================================================

TEST(Batcher, ClosesWhenFull) {
  Batcher b(BatcherConfig{3, 1'000'000});
  const auto r1 = b.add(PendingQuery{0, 10, 100}, 100);
  EXPECT_TRUE(r1.arm_timer);
  EXPECT_FALSE(r1.full);
  EXPECT_EQ(r1.deadline_ps, 1'000'100u);
  const auto r2 = b.add(PendingQuery{1, 11, 200}, 200);
  EXPECT_FALSE(r2.arm_timer);
  EXPECT_FALSE(r2.full);
  const auto r3 = b.add(PendingQuery{2, 12, 300}, 300);
  EXPECT_TRUE(r3.full);
  const auto batch = b.close();
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].key, 10);
  EXPECT_EQ(batch[2].arrival_ps, 300u);
  EXPECT_EQ(b.open_size(), 0u);
}

TEST(Batcher, GenerationInvalidatesStaleTimers) {
  Batcher b(BatcherConfig{2, 5'000});
  const auto r1 = b.add(PendingQuery{0, 1, 0}, 0);
  const std::uint64_t gen0 = r1.generation;
  b.add(PendingQuery{1, 2, 10}, 10);  // full
  (void)b.close();
  EXPECT_NE(b.generation(), gen0);  // the armed timer for gen0 is stale
  // A fresh batch arms a fresh timer under the new generation.
  const auto r2 = b.add(PendingQuery{2, 3, 20}, 20);
  EXPECT_TRUE(r2.arm_timer);
  EXPECT_EQ(r2.generation, b.generation());
}

TEST(Batcher, CloseOfEmptyThrows) {
  Batcher b(BatcherConfig{4, 1000});
  EXPECT_THROW(b.close(), std::logic_error);
}

// ===========================================================================
// LRU cache
// ===========================================================================

TEST(LruCache, HitPromotesAndEvictsLeastRecent) {
  LruCache c(2);
  c.put(1, Hit{1, 0.0f});
  c.put(2, Hit{2, 0.0f});
  ASSERT_NE(c.get(1), nullptr);  // promotes key 1
  c.put(3, Hit{3, 0.0f});        // evicts key 2 (least recent)
  EXPECT_EQ(c.get(2), nullptr);
  EXPECT_NE(c.get(1), nullptr);
  EXPECT_NE(c.get(3), nullptr);
  EXPECT_EQ(c.evictions(), 1u);
  EXPECT_EQ(c.hits(), 3u);
  EXPECT_EQ(c.misses(), 1u);
}

TEST(LruCache, ZeroCapacityIsDisabled) {
  LruCache c(0);
  c.put(1, Hit{1, 0.0f});
  EXPECT_EQ(c.get(1), nullptr);
  EXPECT_EQ(c.size(), 0u);
}

TEST(LruCache, PutRefreshesExistingKey) {
  LruCache c(2);
  c.put(1, Hit{1, 1.0f});
  c.put(2, Hit{2, 0.0f});
  c.put(1, Hit{1, 0.5f});  // refresh: key 1 becomes most recent
  c.put(3, Hit{3, 0.0f});  // evicts key 2
  const Hit* h = c.get(1);
  ASSERT_NE(h, nullptr);
  EXPECT_FLOAT_EQ(h->distance, 0.5f);
  EXPECT_EQ(c.get(2), nullptr);
}

// ===========================================================================
// Router
// ===========================================================================

TEST(Router, HashSpreadsKeysAcrossShards) {
  Router r(4, ShedPolicy::kReject);
  std::set<int> seen;
  for (int k = 0; k < 256; ++k) {
    const int s = r.home_shard(k);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 4);
    seen.insert(s);
    EXPECT_EQ(s, r.home_shard(k));  // stable
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(Router, RejectShedsDegradedHome) {
  Router r(2, ShedPolicy::kReject);
  int key = 0;
  while (r.home_shard(key) != 1) ++key;
  r.set_health(1, false);
  const auto route = r.route(key);
  EXPECT_EQ(route.shard, -1);
  r.set_health(1, true);
  EXPECT_EQ(r.route(key).shard, 1);
}

TEST(Router, RerouteFindsNextHealthyShardOrSheds) {
  Router r(3, ShedPolicy::kReroute);
  int key = 0;
  while (r.home_shard(key) != 0) ++key;
  r.set_health(0, false);
  const auto route = r.route(key);
  EXPECT_EQ(route.shard, 1);
  EXPECT_TRUE(route.rerouted);
  r.set_health(1, false);
  EXPECT_EQ(r.route(key).shard, 2);
  r.set_health(2, false);
  EXPECT_EQ(r.route(key).shard, -1);  // whole fleet degraded
}

// ===========================================================================
// ShardIndex on a real runtime
// ===========================================================================

TEST(ShardIndex, SelfRetrievalAtDistanceZero) {
  apps::cbir::Params p;
  p.images = 24;
  p.width = 32;
  p.height = 32;
  tshmem::Runtime rt(tilesim::tile_gx36());
  rt.run(4, [&](tshmem::Context& ctx) {
    apps::cbir::ShardIndex index(ctx, p, 0, p.images);
    std::vector<std::uint8_t> img(static_cast<std::size_t>(p.width) *
                                  p.height);
    // Query with the exact feature of images 5 and 17: the index must
    // return them at distance 0 on every PE.
    std::vector<Feature> queries;
    for (const int k : {5, 17}) {
      apps::cbir::generate_image(img, p.width, p.height,
                                 p.seed + static_cast<std::uint64_t>(k));
      queries.push_back(FeatureCache::shared()
                            .seeded(img, p.width, p.height,
                                    p.seed + static_cast<std::uint64_t>(k))
                            .feature);
    }
    std::vector<Hit> out(2);
    index.query_batch(ctx, queries, out);
    EXPECT_EQ(out[0].image, 5);
    EXPECT_FLOAT_EQ(out[0].distance, 0.0f);
    EXPECT_EQ(out[1].image, 17);
    EXPECT_FLOAT_EQ(out[1].distance, 0.0f);
    const Hit single = index.query(ctx, queries[0]);
    EXPECT_EQ(single.image, 5);
    index.destroy(ctx);
  });
}

// ===========================================================================
// End-to-end service over a real 2-device cluster
// ===========================================================================

ServiceConfig small_service_config() {
  ServiceConfig cfg;
  cfg.pes_per_shard = 2;
  cfg.db.images = 64;
  cfg.db.width = 32;
  cfg.db.height = 32;
  cfg.load.seed = 7;
  cfg.load.queries = 4000;
  cfg.load.start_qps = 20'000.0;
  cfg.load.end_qps = 120'000.0;
  cfg.load.key_space = 64;
  cfg.batch.max_batch = 4;
  cfg.batch.timeout_ps = 2'000'000;
  cfg.cache_capacity = 32;
  return cfg;
}

std::string report_fingerprint(const ServiceReport& rep,
                               const ServiceConfig& cfg) {
  std::ostringstream os;
  svc::write_report_json(os, rep, cfg);
  return os.str();
}

TEST(Service, HealthyRunCompletesEverything) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  const ServiceConfig cfg = small_service_config();
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.offered, 4000u);
  EXPECT_EQ(rep.completed + rep.shed, rep.offered);
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_GT(rep.qps, 0.0);
  EXPECT_GT(rep.cache_hits, 0u);
  EXPECT_LE(rep.latency.p50, rep.latency.p99);
  EXPECT_LE(rep.latency.p99, rep.latency.p999);
  EXPECT_EQ(rep.fault_events, 0u);
  ASSERT_EQ(rep.calibration.size(), 2u);
  EXPECT_GT(rep.calibration[0].per_query_ps, 0);
  EXPECT_EQ(rep.calibration[0].count, 32);
  EXPECT_EQ(rep.calibration[1].first, 32);
}

TEST(Service, ReplayIsBitIdenticalPerSeedAndPlan) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  ServiceConfig cfg = small_service_config();
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,shard_stall=0.1:30000000000");
  svc::Service s1(cluster, cfg);
  const std::string a = report_fingerprint(s1.run(), cfg);
  svc::Service s2(cluster, cfg);
  const std::string b = report_fingerprint(s2.run(), cfg);
  EXPECT_EQ(a, b);
  // A different load seed must change the outcome.
  cfg.load.seed = 8;
  svc::Service s3(cluster, cfg);
  const std::string c = report_fingerprint(s3.run(), cfg);
  EXPECT_NE(a, c);
}

TEST(Service, StalledShardShedsInsteadOfHanging) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  ServiceConfig cfg = small_service_config();
  // Every batch on shard 1 loses 30 ms: far past the 5 ms backlog
  // watchdog, so the router must shed its traffic and record recoveries
  // once the backlog drains.
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,shard_stall=1.0:30000000000,shard_stall_shard=1");
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_GT(rep.shed, 0u);
  EXPECT_EQ(rep.completed + rep.shed, rep.offered);
  const svc::ShardStats& stalled = rep.shard_stats[1];
  EXPECT_GT(stalled.stall_events, 0u);
  EXPECT_GT(stalled.degraded_episodes, 0u);
  EXPECT_GT(stalled.recoveries, 0u);
  EXPECT_EQ(rep.shard_stats[0].stall_events, 0u);
  EXPECT_FALSE(rep.shed_error.empty());
  EXPECT_NE(rep.shed_error.find("shard_degraded"), std::string::npos);
  // Accepted queries drain with bounded tail latency: a handful of
  // 30 ms stalled batches at most, never an unbounded hang.
  EXPECT_LT(rep.max_latency_ps, 200'000'000'000u);  // 200 ms
}

TEST(Service, RerouteSendsTrafficToHealthyShard) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  ServiceConfig cfg = small_service_config();
  cfg.policy = ShedPolicy::kReroute;
  cfg.fault_plan = tilesim::FaultPlan::parse(
      "seed=3,shard_stall=1.0:30000000000,shard_stall_shard=1");
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.hung, 0u);
  EXPECT_GT(rep.rerouted, 0u);
  EXPECT_EQ(rep.completed + rep.shed, rep.offered);
  // The healthy shard absorbs the degraded shard's traffic.
  EXPECT_GT(rep.shard_stats[0].queries, rep.shard_stats[1].queries);
}

TEST(Service, ClosedLoopKeepsWindowAndCompletes) {
  tshmem::ClusterOptions opts;
  opts.runtime.heap_per_pe = 8 << 20;
  tshmem::Cluster cluster(tilesim::tile_gx36(), opts, 2);
  ServiceConfig cfg = small_service_config();
  cfg.closed_loop = true;
  cfg.concurrency = 16;
  cfg.load.queries = 2000;
  svc::Service service(cluster, cfg);
  const ServiceReport rep = service.run();
  EXPECT_EQ(rep.offered, 2000u);
  EXPECT_EQ(rep.completed + rep.shed, rep.offered);
  EXPECT_EQ(rep.hung, 0u);
}

}  // namespace
